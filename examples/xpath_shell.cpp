// Interactive XPath shell: load one or more XML files into a store and
// query them from a prompt. Demonstrates the full public API surface:
// loading, compiled-query reuse, plan explain, result serialization.
//
//   ./example_xpath_shell file.xml [more.xml ...]
//   ./example_xpath_shell                (loads a built-in demo document)
//
// Commands at the prompt:
//   <xpath>            evaluate against the first document
//   \doc <name>        switch the context document
//   \explain <xpath>   show the translated logical algebra
//   \canonical <xpath> show the canonical (Sec. 3) translation instead
//   \docs              list loaded documents
//   \quit
#include <cstdio>
#include <iostream>
#include <string>

#include "api/database.h"
#include "xml/writer.h"

namespace {

const char* kDemo = R"(<menu>
  <dish kind="starter" price="6"><name>Soup</name></dish>
  <dish kind="main" price="14"><name>Risotto</name><veggie/></dish>
  <dish kind="main" price="19"><name>Steak</name></dish>
  <dish kind="dessert" price="7"><name>Tiramisu</name><veggie/></dish>
</menu>)";

void Evaluate(natix::Database& db, const std::string& doc,
              const std::string& query) {
  auto root = db.Root(doc);
  if (!root.ok()) {
    std::printf("error: %s\n", root.status().ToString().c_str());
    return;
  }
  auto compiled = db.Compile(query);
  if (!compiled.ok()) {
    std::printf("error: %s\n", compiled.status().ToString().c_str());
    return;
  }
  if ((*compiled)->result_type() == natix::xpath::ExprType::kNodeSet) {
    auto nodes = (*compiled)->EvaluateNodes(root->id());
    if (!nodes.ok()) {
      std::printf("error: %s\n", nodes.status().ToString().c_str());
      return;
    }
    std::printf("%zu node(s):\n", nodes->size());
    size_t shown = 0;
    for (const auto& node : *nodes) {
      if (++shown > 20) {
        std::printf("  ... (%zu more)\n", nodes->size() - 20);
        break;
      }
      auto xml = natix::xml::OuterXml(node);
      std::string rendered = xml.ok() ? *xml : "<?>";
      if (rendered.size() > 100) rendered = rendered.substr(0, 97) + "...";
      std::printf("  %s\n", rendered.c_str());
    }
  } else {
    auto value = (*compiled)->EvaluateString(root->id());
    if (!value.ok()) {
      std::printf("error: %s\n", value.status().ToString().c_str());
      return;
    }
    std::printf("= %s\n", value->c_str());
  }
}

void Explain(natix::Database& db, const std::string& query,
             bool canonical) {
  auto compiled = db.Compile(
      query, canonical ? natix::translate::TranslatorOptions::Canonical()
                       : natix::translate::TranslatorOptions::Improved());
  if (!compiled.ok()) {
    std::printf("error: %s\n", compiled.status().ToString().c_str());
    return;
  }
  std::printf("%s", (*compiled)->ExplainLogical().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto db = natix::Database::CreateTemp();
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  std::string current;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::string path = argv[i];
      auto slash = path.find_last_of('/');
      std::string name =
          slash == std::string::npos ? path : path.substr(slash + 1);
      auto info = (*db)->LoadDocumentFile(name, path);
      if (!info.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                     info.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded '%s' (%llu nodes)\n", name.c_str(),
                  static_cast<unsigned long long>(info->node_count));
      if (current.empty()) current = name;
    }
  } else {
    auto info = (*db)->LoadDocument("demo", kDemo);
    if (!info.ok()) return 1;
    current = "demo";
    std::printf("no file given; loaded built-in 'demo' document\n");
  }

  std::printf("XPath shell — \\quit to exit, \\explain <q> for plans\n");
  std::string line;
  while (true) {
    std::printf("%s> ", current.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\docs") {
      for (const auto& doc : (*db)->store()->documents()) {
        std::printf("  %s (%llu nodes)\n", doc.name.c_str(),
                    static_cast<unsigned long long>(doc.node_count));
      }
      continue;
    }
    if (line.rfind("\\doc ", 0) == 0) {
      std::string name = line.substr(5);
      if ((*db)->store()->FindDocument(name).ok()) {
        current = name;
      } else {
        std::printf("no such document '%s'\n", name.c_str());
      }
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      Explain(**db, line.substr(9), /*canonical=*/false);
      continue;
    }
    if (line.rfind("\\canonical ", 0) == 0) {
      Explain(**db, line.substr(11), /*canonical=*/true);
      continue;
    }
    Evaluate(**db, current, line);
  }
  return 0;
}
