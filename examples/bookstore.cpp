// A small "application": persistent catalog with ad-hoc XPath reporting.
// Demonstrates persistence (create, flush, reopen), multiple documents in
// one store, and the breadth of XPath 1.0 the engine covers.
//
//   ./example_bookstore [store-path]    (default: ./bookstore.natix)
#include <cstdio>
#include <string>

#include "api/database.h"

namespace {

const char* kCatalog = R"(<catalog>
  <book id="bk101"><author>Gambardella, Matthew</author>
    <title>XML Developer's Guide</title><genre>Computer</genre>
    <price>44.95</price><publish_date>2000-10-01</publish_date></book>
  <book id="bk102"><author>Ralls, Kim</author>
    <title>Midnight Rain</title><genre>Fantasy</genre>
    <price>5.95</price><publish_date>2000-12-16</publish_date></book>
  <book id="bk103"><author>Corets, Eva</author>
    <title>Maeve Ascendant</title><genre>Fantasy</genre>
    <price>5.95</price><publish_date>2000-11-17</publish_date></book>
  <book id="bk104"><author>Corets, Eva</author>
    <title>Oberon's Legacy</title><genre>Fantasy</genre>
    <price>5.95</price><publish_date>2001-03-10</publish_date></book>
  <book id="bk105"><author>Corets, Eva</author>
    <title>The Sundered Grail</title><genre>Fantasy</genre>
    <price>5.95</price><publish_date>2001-09-10</publish_date></book>
</catalog>)";

const char* kOrders = R"(<orders>
  <order no="1"><item ref="bk103"/><item ref="bk101"/></order>
  <order no="2"><item ref="bk104"/></order>
  <order no="3"><item ref="bk103"/><item ref="bk103"/><item ref="bk105"/></order>
</orders>)";

void Report(const natix::Database& db, const char* label, const char* doc,
            const char* query) {
  auto result = db.QueryString(doc, query);
  std::printf("%-46s %s\n", label,
              result.ok() ? result->c_str()
                          : result.status().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "bookstore.natix";

  {
    auto db = natix::Database::Create(path);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    if (!(*db)->LoadDocument("catalog", kCatalog).ok()) return 1;
    if (!(*db)->LoadDocument("orders", kOrders).ok()) return 1;
    if (!(*db)->Flush().ok()) return 1;
    std::printf("created store '%s' with 2 documents\n\n", path.c_str());
  }

  // Reopen the persisted store and report against it.
  auto db = natix::Database::Open(path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  Report(**db, "number of books:", "catalog", "string(count(//book))");
  Report(**db, "fantasy titles in stock:", "catalog",
         "string(count(//book[genre='Fantasy']))");
  Report(**db, "most recent fantasy title:", "catalog",
         "string(//book[genre='Fantasy'][last()]/title)");
  Report(**db, "price of the whole catalog:", "catalog",
         "string(sum(//price))");
  Report(**db, "cheapest price:", "catalog",
         "string(//book[not(//book/price < price)]/price)");
  Report(**db, "authors with more than one book:", "catalog",
         "string(count(//book[author = preceding-sibling::book/author]))");
  Report(**db, "books by Corets, id() round-trip:", "catalog",
         "string(count(id('bk103 bk104 bk105')))");
  Report(**db, "first title, normalized:", "catalog",
         "normalize-space(string((//title)[1]))");

  Report(**db, "orders placed:", "orders", "string(count(/orders/order))");
  Report(**db, "items in order 3:", "orders",
         "string(count(/orders/order[@no='3']/item))");
  Report(**db, "orders containing bk103:", "orders",
         "string(count(/orders/order[item/@ref='bk103']))");

  std::remove(path.c_str());
  return 0;
}
