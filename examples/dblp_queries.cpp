// The Fig. 10 workload end to end: generates a synthetic DBLP document,
// loads it, and runs the paper's thirteen bibliography queries, printing
// result counts and timings.
//
//   ./example_dblp_queries [publications]   (default 20000)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "api/database.h"
#include "gen/dblp_generator.h"

int main(int argc, char** argv) {
  uint64_t publications = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 20000;

  natix::gen::DblpOptions gen_options;
  gen_options.publications = publications;
  std::printf("generating synthetic DBLP with %llu publications...\n",
              static_cast<unsigned long long>(publications));
  std::string xml = natix::gen::GenerateDblp(gen_options);
  std::printf("document size: %.1f MB\n", xml.size() / 1e6);

  auto db = natix::Database::CreateTemp();
  if (!db.ok()) return 1;
  auto load_begin = std::chrono::steady_clock::now();
  auto info = (*db)->LoadDocument("dblp", xml);
  if (!info.ok()) {
    std::fprintf(stderr, "load: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::chrono::duration<double> load_time =
      std::chrono::steady_clock::now() - load_begin;
  std::printf("loaded %llu nodes in %.2fs\n\n",
              static_cast<unsigned long long>(info->node_count),
              load_time.count());

  const char* queries[] = {
      "/dblp/article/title",
      "/dblp/*/title",
      "/dblp/article[position() = 3]/title",
      "/dblp/article[position() < 100]/title",
      "/dblp/article[position() = last()]/title",
      "/dblp/article[position()=last()-10]/title",
      "/dblp/article/title | /dblp/inproceedings/title",
      "/dblp/article[count(author)=4]/@key",
      "/dblp/article[year='1991']/@key",
      "/dblp/inproceedings[year='1991']/@key",
      "/dblp/*[author='Guido Moerkotte']/@key",
      "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
      "/dblp/inproceedings[author='Guido Moerkotte']"
      "[position()=last()]/title",
  };

  std::printf("%-64s %10s %9s\n", "query", "results", "time[s]");
  for (const char* q : queries) {
    auto compiled = (*db)->Compile(q);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", q,
                   compiled.status().ToString().c_str());
      continue;
    }
    auto begin = std::chrono::steady_clock::now();
    auto nodes = (*compiled)->EvaluateNodes(info->root);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    if (!nodes.ok()) {
      std::fprintf(stderr, "run %s: %s\n", q,
                   nodes.status().ToString().c_str());
      continue;
    }
    std::printf("%-64s %10zu %9.4f\n", q, nodes->size(), elapsed.count());
  }
  return 0;
}
