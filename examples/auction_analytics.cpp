// Auction-site analytics: the XMark-flavored domain example. Shows
// id()-joins across sections of a document, numeric aggregation, and
// compiled-query reuse for per-entity drill-downs.
//
//   ./example_auction_analytics [people items auctions]
#include <cstdio>
#include <cstdlib>

#include "api/database.h"
#include "gen/auction_generator.h"

int main(int argc, char** argv) {
  natix::gen::AuctionOptions options;
  if (argc == 4) {
    options.people = std::strtoull(argv[1], nullptr, 10);
    options.items = std::strtoull(argv[2], nullptr, 10);
    options.auctions = std::strtoull(argv[3], nullptr, 10);
  }
  auto db = natix::Database::CreateTemp();
  if (!db.ok()) return 1;
  auto info = (*db)->LoadDocument(
      "site", natix::gen::GenerateAuctionSite(options));
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  auto report = [&](const char* label, const char* query) {
    auto value = (*db)->QueryString("site", query);
    std::printf("%-52s %s\n", label,
                value.ok() ? value->c_str()
                           : value.status().ToString().c_str());
  };

  std::printf("auction site: %llu people, %llu items, %llu auctions\n\n",
              static_cast<unsigned long long>(options.people),
              static_cast<unsigned long long>(options.items),
              static_cast<unsigned long long>(options.auctions));

  report("auctions with at least one bid:",
         "string(count(//auction[bid]))");
  report("closed auctions:", "string(count(//auction/closed))");
  report("total volume of closed finals:", "string(sum(//closed/final))");
  report("highest closing price:",
         "string(//closed/final[not(//closed/final > .)])");
  report("auctions on 'books' items (id join):",
         "string(count(//auction[id(@item)/@category = 'books']))");
  report("bids by people from Mannheim (id join):",
         "string(count(//bid[id(@person)/city = 'Mannheim']))");
  report("sellers without income on record:",
         "string(count(//auction[not(id(@seller)/income)]))");
  report("average bids per auction (x1000):",
         "string(round(count(//bid) div count(//auction) * 1000))");

  // Per-person drill-down with one compiled query.
  auto drill = (*db)->Compile("count(//bid[@person = $p])");
  if (!drill.ok()) return 1;
  std::printf("\nbids placed by the first three people:\n");
  for (int i = 0; i < 3; ++i) {
    std::string pid = "person" + std::to_string(i);
    (*drill)->SetVariable("p", natix::runtime::Value::String(pid));
    auto root = (*db)->Root("site");
    auto bids = (*drill)->EvaluateValue(root->id());
    if (bids.ok()) {
      std::printf("  %-10s %g\n", pid.c_str(), bids->AsNumber());
    }
  }
  return 0;
}
