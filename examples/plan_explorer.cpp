// Plan explorer: shows how the translator maps an XPath expression onto
// the algebra — canonical translation (Sec. 3) next to the improved one
// (Sec. 4) — and runs it against a generated document.
//
//   ./example_plan_explorer "<xpath>"
//   ./example_plan_explorer            (uses the Fig. 4 showcase query)
#include <cstdio>
#include <string>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "gen/xdoc_generator.h"

int main(int argc, char** argv) {
  // The paper's Fig. 4 expression exercises nested paths and full
  // positional predicates at once.
  std::string query = argc > 1
                          ? argv[1]
                          : "/xdoc/n[n/n][position() = last()]/n";

  // Run every compiled plan through the static verifier so the explorer
  // demonstrates the verdict even in release builds.
  natix::analysis::SetVerificationEnabled(true);

  natix::gen::XDocOptions gen_options;
  gen_options.max_elements = 400;
  gen_options.fanout = 3;
  gen_options.depth = 5;
  auto db = natix::Database::CreateTemp();
  if (!db.ok()) return 1;
  auto info = (*db)->LoadDocument("xdoc", natix::gen::GenerateXDoc(gen_options));
  if (!info.ok()) return 1;

  std::printf("query: %s\n", query.c_str());

  auto canonical = (*db)->Compile(
      query, natix::translate::TranslatorOptions::Canonical());
  if (!canonical.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 canonical.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== canonical translation (Sec. 3) ===\n%s",
              (*canonical)->ExplainLogical().c_str());

  auto improved = (*db)->Compile(
      query, natix::translate::TranslatorOptions::Improved());
  if (!improved.ok()) return 1;
  std::printf("\n=== improved translation (Sec. 4) ===\n%s",
              (*improved)->ExplainLogical().c_str());
  std::printf("\n=== physical plan (register assignments) ===\n%s",
              (*improved)->ExplainPhysical().c_str());
  std::printf("\n=== static verification ===\ncanonical: %s\nimproved:  %s\n",
              (*canonical)->VerificationReport().c_str(),
              (*improved)->VerificationReport().c_str());

  if ((*improved)->result_type() == natix::xpath::ExprType::kNodeSet) {
    auto canonical_nodes = (*canonical)->EvaluateNodes(info->root);
    auto improved_nodes = (*improved)->EvaluateNodes(info->root);
    if (canonical_nodes.ok() && improved_nodes.ok()) {
      std::printf("\nresults: canonical=%zu nodes, improved=%zu nodes%s\n",
                  canonical_nodes->size(), improved_nodes->size(),
                  canonical_nodes->size() == improved_nodes->size()
                      ? " (agree)"
                      : " (MISMATCH!)");
    }
  } else {
    auto value = (*improved)->EvaluateString(info->root);
    if (value.ok()) std::printf("\nresult: %s\n", value->c_str());
  }
  return 0;
}
