// Quickstart: load an XML document into a Natix store and run XPath
// queries through the algebraic pipeline.
//
//   ./example_quickstart
#include <cstdio>

#include "api/database.h"

int main() {
  // 1. Create a scratch database (use Database::Create(path) for a
  //    persistent one).
  auto db = natix::Database::CreateTemp();
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Load a document. The loader streams parser events straight into
  //    the page-based store; no DOM is built.
  const char* xml = R"(<library>
    <shelf topic="databases">
      <book id="k1"><title>Transaction Processing</title><copies>2</copies></book>
      <book id="k2"><title>Readings in Database Systems</title><copies>5</copies></book>
    </shelf>
    <shelf topic="compilers">
      <book id="k3"><title>The Dragon Book</title><copies>1</copies></book>
    </shelf>
  </library>)";
  if (auto info = (*db)->LoadDocument("library", xml); !info.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }

  // 3. Node-set queries return stored-node handles in document order.
  auto titles = (*db)->QueryNodes("library", "//book/title");
  if (!titles.ok()) return 1;
  std::printf("all titles:\n");
  for (const auto& title : *titles) {
    std::printf("  - %s\n", title.string_value()->c_str());
  }

  // 4. Predicates, axes, and functions work exactly as XPath 1.0
  //    specifies.
  auto scarce = (*db)->QueryNodes(
      "library", "//shelf[@topic='databases']/book[copies < 3]/title");
  std::printf("scarce database books:\n");
  for (const auto& title : *scarce) {
    std::printf("  - %s\n", title.string_value()->c_str());
  }

  // 5. Scalar queries produce atomic values.
  auto count = (*db)->QueryNumber("library", "count(//book)");
  auto total = (*db)->QueryNumber("library", "sum(//copies)");
  std::printf("%g books, %g copies in stock\n", *count, *total);

  // 6. Compile once, evaluate many times — with a different context node
  //    or different $variable bindings per run.
  auto query = (*db)->Compile("//book[@id = $which]/title");
  if (!query.ok()) return 1;
  for (const char* id : {"k1", "k3"}) {
    (*query)->SetVariable("which", natix::runtime::Value::String(id));
    auto root = (*db)->Root("library");
    auto result = (*query)->EvaluateNodes(root->id());
    std::printf("book %s: %s\n", id,
                result->empty()
                    ? "(none)"
                    : result->front().string_value()->c_str());
  }

  // 7. Inspect the translated algebra of a query.
  auto explain = (*db)->Compile("//book[position() = last()]");
  std::printf("\nlogical plan of //book[position() = last()]:\n%s",
              (*explain)->ExplainLogical().c_str());
  return 0;
}
