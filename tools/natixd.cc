// natixd — the Natix query daemon: a long-running multi-tenant HTTP
// server over one database, serving XPath over pre-loaded documents
// with per-request deadlines, admission control and the observability
// plane (/metrics Prometheus exposition, /statusz, slow-query log).
//
// Usage:
//   natixd [options] [--doc name=FILE]... [--gen name=SPEC]...
//   options:
//     --port=N            listen on 127.0.0.1:N (default 0: ephemeral,
//                         the bound port is printed on stdout)
//     --doc name=FILE     load FILE as document `name`
//     --gen name=SPEC     generate a synthetic document; SPEC is
//                         dblp:N (N publications), auction:N
//                         (N people), or xdoc:N (N elements)
//     --max-concurrency=N executions allowed to run at once (default 4)
//     --queue=N           admission queue capacity (default 16)
//     --max-connections=N open connections bound (default 128)
//     --deadline-ms=N     default per-request budget, queue wait
//                         included (default 0: none)
//     --slow-log=MS       log queries running >= MS milliseconds with
//                         EXPLAIN ANALYZE trees (visible in /statusz)
//     --buffer-pages=N    buffer pool size in pages (default 4096)
//     --shards=N          buffer pool stripes (default: hardware)
//     --plan-cache=N      plan cache capacity (default 64)
//
// Protocol and endpoint reference: docs/SERVING.md.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/database.h"
#include "gen/auction_generator.h"
#include "gen/dblp_generator.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: natixd [--port=N] [--max-concurrency=N] [--queue=N]\n"
      "              [--max-connections=N] [--deadline-ms=N]\n"
      "              [--slow-log=MS] [--buffer-pages=N] [--shards=N]\n"
      "              [--plan-cache=N] [--doc name=FILE]...\n"
      "              [--gen name=dblp:N|auction:N|xdoc:N]...\n");
  return 2;
}

bool ParseSize(const char* s, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// "name=payload" pairs of --doc / --gen.
bool SplitNameValue(const std::string& arg, std::string* name,
                    std::string* value) {
  size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *name = arg.substr(0, eq);
  *value = arg.substr(eq + 1);
  return !value->empty();
}

/// Generates "dblp:N" / "auction:N" / "xdoc:N" document text.
bool GenerateDocument(const std::string& spec, std::string* xml) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos) return false;
  std::string kind = spec.substr(0, colon);
  uint64_t n = 0;
  if (!ParseSize(spec.c_str() + colon + 1, &n) || n == 0) return false;
  if (kind == "dblp") {
    natix::gen::DblpOptions options;
    options.publications = static_cast<size_t>(n);
    *xml = natix::gen::GenerateDblp(options);
    return true;
  }
  if (kind == "auction") {
    natix::gen::AuctionOptions options;
    options.people = static_cast<size_t>(n);
    *xml = natix::gen::GenerateAuctionSite(options);
    return true;
  }
  if (kind == "xdoc") {
    natix::gen::XDocOptions options;
    options.max_elements = static_cast<size_t>(n);
    *xml = natix::gen::GenerateXDoc(options);
    return true;
  }
  return false;
}

// SIGINT/SIGTERM flip this; the main thread polls it and shuts down.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  natix::Database::Options db_options;
  natix::server::ServerOptions server_options;
  uint64_t slow_log_ms = natix::obs::SlowQueryLog::kDisabled;
  // (name, payload, is_generated) triples, loaded in argument order.
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<std::pair<std::string, std::string>> generated;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t n = 0;
    if (std::strncmp(arg, "--port=", 7) == 0 && ParseSize(arg + 7, &n)) {
      server_options.port = static_cast<uint16_t>(n);
    } else if (std::strncmp(arg, "--max-concurrency=", 18) == 0 &&
               ParseSize(arg + 18, &n) && n > 0) {
      server_options.max_concurrency = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--queue=", 8) == 0 &&
               ParseSize(arg + 8, &n)) {
      server_options.queue_capacity = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--max-connections=", 18) == 0 &&
               ParseSize(arg + 18, &n) && n > 0) {
      server_options.max_connections = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0 &&
               ParseSize(arg + 14, &n)) {
      server_options.default_deadline_ms = n;
    } else if (std::strncmp(arg, "--slow-log=", 11) == 0 &&
               ParseSize(arg + 11, &n)) {
      slow_log_ms = n;
      server_options.collect_stats = true;
    } else if (std::strncmp(arg, "--buffer-pages=", 15) == 0 &&
               ParseSize(arg + 15, &n) && n > 0) {
      db_options.buffer_pages = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--shards=", 9) == 0 &&
               ParseSize(arg + 9, &n)) {
      db_options.buffer_shards = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--plan-cache=", 13) == 0 &&
               ParseSize(arg + 13, &n)) {
      db_options.plan_cache_capacity = static_cast<size_t>(n);
    } else if (std::strncmp(arg, "--doc=", 6) == 0 ||
               std::strcmp(arg, "--doc") == 0) {
      std::string pair =
          std::strncmp(arg, "--doc=", 6) == 0
              ? std::string(arg + 6)
              : (i + 1 < argc ? std::string(argv[++i]) : std::string());
      std::string name, file;
      if (!SplitNameValue(pair, &name, &file)) return Usage();
      files.emplace_back(std::move(name), std::move(file));
    } else if (std::strncmp(arg, "--gen=", 6) == 0 ||
               std::strcmp(arg, "--gen") == 0) {
      std::string pair =
          std::strncmp(arg, "--gen=", 6) == 0
              ? std::string(arg + 6)
              : (i + 1 < argc ? std::string(argv[++i]) : std::string());
      std::string name, spec;
      if (!SplitNameValue(pair, &name, &spec)) return Usage();
      generated.emplace_back(std::move(name), std::move(spec));
    } else {
      return Usage();
    }
  }
  if (files.empty() && generated.empty()) {
    std::fprintf(stderr, "natixd: no documents (--doc / --gen)\n");
    return Usage();
  }

  auto db = natix::Database::CreateTemp(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "natixd: %s\n", db.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, file] : files) {
    auto loaded = (*db)->LoadDocumentFile(name, file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "natixd: %s: %s\n", file.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "natixd: loaded %s from %s\n", name.c_str(),
                 file.c_str());
  }
  for (const auto& [name, spec] : generated) {
    std::string xml;
    if (!GenerateDocument(spec, &xml)) {
      std::fprintf(stderr, "natixd: bad --gen spec '%s'\n", spec.c_str());
      return Usage();
    }
    auto loaded = (*db)->LoadDocument(name, xml);
    if (!loaded.ok()) {
      std::fprintf(stderr, "natixd: generate %s: %s\n", name.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "natixd: generated %s (%s, %zu bytes)\n",
                 name.c_str(), spec.c_str(), xml.size());
  }

  if (slow_log_ms != natix::obs::SlowQueryLog::kDisabled) {
    natix::Database::SetSlowQueryThresholdNs(slow_log_ms * 1000000ull);
  }

  natix::server::Server server(db->get(), server_options);
  natix::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "natixd: %s\n", started.ToString().c_str());
    return 1;
  }
  // The contract scripts key on: "listening on 127.0.0.1:<port>".
  std::printf("listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    // sigsuspend parks the main thread until a signal arrives — no
    // polling loop, and EINTR wakes us exactly when needed.
    sigsuspend(&empty);
  }
  std::fprintf(stderr, "natixd: shutting down (%llu requests served)\n",
               static_cast<unsigned long long>(server.requests_served()));
  server.Shutdown();
  return 0;
}
