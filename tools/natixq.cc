// natixq — command-line XPath for XML files (xmllint --xpath flavored),
// running the full algebraic pipeline.
//
// Usage:
//   natixq [options] <file.xml> <xpath>
//   natixq [options] --queries-file=F <file.xml> [<xpath>]
//   options:
//     --explain       print logical + physical plans, inferred stream
//                     properties, and property-justified rewrites
//                     instead of evaluating
//     --explain-json  print the operator tree with its inferred
//                     properties as JSON instead of evaluating
//     --canonical     use the canonical (Sec. 3) translation
//     --values        print string-values instead of XML serialization
//     --count         print only the number of result nodes
//     --stats         print execution statistics to stderr after running
//     --analyze       run the query with per-operator instrumentation and
//                     print the EXPLAIN ANALYZE tree (counters, timings,
//                     page I/O) to stdout after the result summary
//     --verify-plans  statically verify the compiled plan (logical,
//                     register dataflow, NVM subscripts); on by default
//                     in debug builds
//     --dump-nvm[=before|after|both]
//                     print the symbolic NVM disassembly of every
//                     compiled subscript program (basic-block labels,
//                     operand roles) before/after the bytecode
//                     optimizer, with static instruction counts and the
//                     analysis-justified rewrites, instead of evaluating
//     --no-nvm-opt    disable the NVM bytecode optimizer (ablation)
//     --var k=v       bind $k to the string v (repeatable)
//     --trace=FILE    trace the compile/execution pipeline and write
//                     Chrome trace_event JSON (Perfetto-loadable) to FILE
//     --metrics       print the process-wide metrics registry (latency
//                     histograms with p50/p90/p99, counters) after running
//     --metrics-json=FILE
//                     write the metrics snapshot as JSON to FILE
//     --slow-log[=MS] log queries running >= MS milliseconds (default 0:
//                     log everything) and dump the slow-query log at exit;
//                     implies per-operator instrumentation
//     --queries-file=F
//                     batch mode: additionally run every non-empty,
//                     non-'#' line of F as a query against <file.xml>
//     --jobs=N        batch mode: execute the queries on N worker
//                     threads (shared plan cache, striped buffer pool);
//                     prints the batch wall time and queries/sec
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "obs/metrics.h"
#include "xml/writer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: natixq [--explain] [--explain-json] [--analyze] "
               "[--canonical] [--dump-nvm[=before|after|both]] "
               "[--no-nvm-opt] "
               "[--values] [--count] [--verify-plans] [--var k=v]... "
               "[--trace=FILE] [--metrics] [--metrics-json=FILE] "
               "[--slow-log[=MS]] [--queries-file=F] [--jobs=N] "
               "<file.xml> [<xpath>]\n");
  return 2;
}

bool WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << text)) {
    std::fprintf(stderr, "natixq: cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

/// Compiles and evaluates one query of the batch, discarding results.
/// Returns false (after a diagnostic) on compile or execution failure.
bool RunBatchQuery(natix::Database* db, natix::storage::NodeId root,
                   const std::string& xpath,
                   const natix::translate::TranslatorOptions& options,
                   bool collect_stats) {
  auto query = db->Compile(xpath, options, collect_stats);
  if (!query.ok()) {
    std::fprintf(stderr, "natixq: %s: %s\n", xpath.c_str(),
                 query.status().ToString().c_str());
    return false;
  }
  if ((*query)->result_type() == natix::xpath::ExprType::kNodeSet) {
    auto nodes = (*query)->EvaluateNodes(root);
    if (!nodes.ok()) {
      std::fprintf(stderr, "natixq: %s: %s\n", xpath.c_str(),
                   nodes.status().ToString().c_str());
      return false;
    }
  } else {
    auto value = (*query)->EvaluateString(root);
    if (!value.ok()) {
      std::fprintf(stderr, "natixq: %s: %s\n", xpath.c_str(),
                   value.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool explain_json = false;
  bool analyze = false;
  bool canonical = false;
  bool dump_nvm = false;
  bool no_nvm_opt = false;
  std::string dump_nvm_which = "both";
  bool values = false;
  bool count_only = false;
  bool stats = false;
  bool metrics = false;
  bool slow_log = false;
  double slow_log_ms = 0.0;
  long jobs = 1;
  std::string trace_path;
  std::string metrics_json_path;
  std::string queries_file;
  std::vector<std::pair<std::string, std::string>> variables;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-json") {
      explain_json = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--canonical") {
      canonical = true;
    } else if (arg == "--dump-nvm") {
      dump_nvm = true;
    } else if (arg.rfind("--dump-nvm=", 0) == 0) {
      dump_nvm = true;
      dump_nvm_which = arg.substr(std::strlen("--dump-nvm="));
      if (dump_nvm_which != "before" && dump_nvm_which != "after" &&
          dump_nvm_which != "both") {
        return Usage();
      }
    } else if (arg == "--no-nvm-opt") {
      no_nvm_opt = true;
    } else if (arg == "--values") {
      values = true;
    } else if (arg == "--count") {
      count_only = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = arg.substr(std::strlen("--metrics-json="));
      if (metrics_json_path.empty()) return Usage();
    } else if (arg == "--slow-log") {
      slow_log = true;
    } else if (arg.rfind("--slow-log=", 0) == 0) {
      slow_log = true;
      slow_log_ms = std::strtod(arg.c_str() + std::strlen("--slow-log="),
                                nullptr);
      if (slow_log_ms < 0) return Usage();
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
      if (trace_path.empty()) return Usage();
    } else if (arg.rfind("--queries-file=", 0) == 0) {
      queries_file = arg.substr(std::strlen("--queries-file="));
      if (queries_file.empty()) return Usage();
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      jobs = std::strtol(arg.c_str() + std::strlen("--jobs="), &end, 10);
      if (jobs < 1 || (end != nullptr && *end != '\0')) return Usage();
    } else if (arg == "--verify-plans") {
      natix::analysis::SetVerificationEnabled(true);
    } else if (arg == "--var") {
      if (++i >= argc) return Usage();
      std::string binding = argv[i];
      auto eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      variables.emplace_back(binding.substr(0, eq), binding.substr(eq + 1));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  // Batch mode needs only the document; the inline query is optional then.
  if (queries_file.empty() ? positional.size() != 2
                           : (positional.empty() || positional.size() > 2)) {
    return Usage();
  }

  auto db = natix::Database::CreateTemp();
  if (!db.ok()) {
    std::fprintf(stderr, "natixq: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto info = (*db)->LoadDocumentFile("doc", positional[0]);
  if (!info.ok()) {
    std::fprintf(stderr, "natixq: %s\n", info.status().ToString().c_str());
    return 1;
  }

  if (slow_log) {
    natix::Database::SetSlowQueryThresholdNs(
        static_cast<uint64_t>(slow_log_ms * 1e6));
  }
  if (!trace_path.empty()) natix::Database::StartTrace();

  auto options = canonical ? natix::translate::TranslatorOptions::Canonical()
                           : natix::translate::TranslatorOptions::Improved();
  if (no_nvm_opt) options.optimize_nvm = false;
  // Slow-log entries carry the EXPLAIN ANALYZE tree, so the log implies
  // per-operator instrumentation.
  const bool collect_stats = analyze || slow_log;

  // Runs at every exit path below once querying has started.
  auto finish = [&]() -> int {
    if (!trace_path.empty()) {
      if (!WriteFileOrWarn(trace_path, natix::Database::StopTrace())) {
        return 1;
      }
    }
    if (!metrics_json_path.empty()) {
      if (!WriteFileOrWarn(metrics_json_path,
                           natix::Database::MetricsSnapshot())) {
        return 1;
      }
    }
    if (metrics) {
      std::printf("=== metrics ===\n%s",
                  natix::obs::MetricsRegistry::Global().RenderText().c_str());
    }
    if (slow_log) {
      std::printf("=== slow-query log ===\n%s",
                  natix::Database::SlowQueryLogText().c_str());
    }
    return 0;
  };

  int batch_failures = 0;
  if (!queries_file.empty()) {
    std::ifstream in(queries_file);
    if (!in) {
      std::fprintf(stderr, "natixq: cannot open '%s'\n",
                   queries_file.c_str());
      return 1;
    }
    std::vector<std::string> batch;
    std::string line;
    while (std::getline(in, line)) {
      // Trim trailing CR (queries files may be CRLF) and skip comments.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      batch.push_back(line);
    }

    const auto batch_begin = std::chrono::steady_clock::now();
    if (jobs <= 1) {
      for (const std::string& xpath : batch) {
        if (!RunBatchQuery(db->get(), info->root, xpath, options,
                           collect_stats)) {
          ++batch_failures;
        }
      }
    } else {
      // Worker pool over the batch: each worker claims queries off one
      // shared cursor. Compiles are served by the database's plan cache,
      // so repeated queries are prepared once and executed everywhere.
      std::atomic<size_t> cursor{0};
      std::atomic<int> failures{0};
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(jobs));
      for (long t = 0; t < jobs; ++t) {
        workers.emplace_back([&] {
          for (size_t i = cursor.fetch_add(1); i < batch.size();
               i = cursor.fetch_add(1)) {
            if (!RunBatchQuery(db->get(), info->root, batch[i], options,
                               collect_stats)) {
              failures.fetch_add(1);
            }
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      batch_failures = failures.load();
    }
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_begin)
            .count();
    std::printf("batch: %zu queries, %d failed, %ld jobs, %.3f s, "
                "%.1f queries/sec\n",
                batch.size(), batch_failures, jobs, batch_seconds,
                batch_seconds > 0 ? batch.size() / batch_seconds : 0.0);
    if (positional.size() < 2) {
      int rc = finish();
      return rc != 0 ? rc : (batch_failures != 0 ? 1 : 0);
    }
  }

  auto query = (*db)->Compile(positional[1], options, collect_stats);
  if (!query.ok()) {
    // Verifier violations (any layer) are kInternal: surface them as a
    // verification failure with a distinct exit code so release-build
    // --verify-plans runs fail loudly instead of hiding behind debug
    // asserts.
    if (natix::analysis::VerificationEnabled() &&
        query.status().code() == natix::StatusCode::kInternal) {
      std::fprintf(stderr,
                   "natixq: plan verification FAILED\n%s\n",
                   query.status().ToString().c_str());
      finish();
      return 4;
    }
    std::fprintf(stderr, "natixq: %s\n", query.status().ToString().c_str());
    finish();
    return 1;
  }
  for (const auto& [name, value] : variables) {
    (*query)->SetVariable(name, natix::runtime::Value::String(value));
  }

  if (explain_json) {
    std::printf("%s", (*query)->ExplainJson().c_str());
    return finish();
  }

  if (dump_nvm) {
    const natix::qe::PlanTemplate& plan = (*query)->prepared().plan();
    if (dump_nvm_which != "after") {
      std::printf("=== nvm before (%zu instructions) ===\n%s",
                  plan.nvm_insns_before(),
                  plan.nvm_listing_before().c_str());
    }
    if (dump_nvm_which != "before") {
      std::printf("=== nvm after (%zu instructions) ===\n%s",
                  plan.nvm_insns_after(), plan.nvm_listing_after().c_str());
    }
    std::string rewrites;
    for (const natix::algebra::RewriteEvent& event : (*query)->rewrites()) {
      if (event.rule.rfind("nvm:", 0) != 0) continue;
      rewrites += event.rule + ": " + event.target + " (" +
                  event.justification + ")\n";
    }
    if (rewrites.empty()) rewrites = "(none)\n";
    std::printf("=== nvm rewrites ===\n%s", rewrites.c_str());
    return finish();
  }

  if (explain) {
    std::string rewrites;
    for (const natix::algebra::RewriteEvent& event : (*query)->rewrites()) {
      rewrites += event.rule + ": " + event.target + " (" +
                  event.justification + ")\n";
    }
    if (rewrites.empty()) rewrites = "(none)\n";
    std::printf("=== logical plan ===\n%s\n=== physical plan ===\n%s"
                "=== stream properties ===\n%s"
                "=== pipeline segments ===\n%s"
                "=== rewrites ===\n%s"
                "=== verification ===\n%s\n",
                (*query)->ExplainLogical().c_str(),
                (*query)->ExplainPhysical().c_str(),
                (*query)->ExplainProperties().c_str(),
                (*query)->ExplainSegments().c_str(),
                rewrites.c_str(),
                (*query)->VerificationReport().c_str());
    return finish();
  }

  auto print_stats = [&] {
    if (!stats) return;
    const natix::ExecutionStats& s = (*query)->last_stats();
    std::fprintf(stderr,
                 "stats: %llu step tuples, %llu page faults, "
                 "%llu nvm insns\n",
                 static_cast<unsigned long long>(s.step_tuples),
                 static_cast<unsigned long long>(s.page_faults),
                 static_cast<unsigned long long>(s.nvm_insns));
  };

  int rc = 0;
  if ((*query)->result_type() == natix::xpath::ExprType::kNodeSet) {
    auto nodes = (*query)->EvaluateNodes(info->root);
    if (!nodes.ok()) {
      std::fprintf(stderr, "natixq: %s\n",
                   nodes.status().ToString().c_str());
      finish();
      return 1;
    }
    print_stats();
    if (analyze) {
      // EXPLAIN ANALYZE mode: the result summary and the instrumented
      // operator tree replace the serialized result (Postgres style).
      std::printf("result: %zu nodes\n=== explain analyze ===\n%s",
                  nodes->size(), (*query)->ExplainAnalyze().c_str());
    } else if (count_only) {
      std::printf("%zu\n", nodes->size());
    } else {
      for (const auto& node : *nodes) {
        if (values) {
          auto text = node.string_value();
          if (text.ok()) std::printf("%s\n", text->c_str());
        } else {
          auto xml = natix::xml::OuterXml(node);
          if (xml.ok()) std::printf("%s\n", xml->c_str());
        }
      }
      if (nodes->empty()) rc = 3;  // xmllint-style: 3 = empty node set
    }
  } else {
    auto result = (*query)->EvaluateString(info->root);
    if (!result.ok()) {
      std::fprintf(stderr, "natixq: %s\n",
                   result.status().ToString().c_str());
      finish();
      return 1;
    }
    print_stats();
    if (analyze) {
      std::printf("result: %s\n=== explain analyze ===\n%s",
                  result->c_str(), (*query)->ExplainAnalyze().c_str());
    } else {
      std::printf("%s\n", result->c_str());
    }
  }

  int finish_rc = finish();
  if (finish_rc != 0) return finish_rc;
  if (batch_failures != 0) return 1;
  return rc;
}
