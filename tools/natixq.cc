// natixq — command-line XPath for XML files (xmllint --xpath flavored),
// running the full algebraic pipeline.
//
// Usage:
//   natixq [options] <file.xml> <xpath>
//   options:
//     --explain       print logical + physical plans instead of evaluating
//     --canonical     use the canonical (Sec. 3) translation
//     --values        print string-values instead of XML serialization
//     --count         print only the number of result nodes
//     --stats         print execution statistics to stderr after running
//     --analyze       run the query with per-operator instrumentation and
//                     print the EXPLAIN ANALYZE tree (counters, timings,
//                     page I/O) to stdout after the result summary
//     --verify-plans  statically verify the compiled plan (logical,
//                     register dataflow, NVM subscripts); on by default
//                     in debug builds
//     --var k=v       bind $k to the string v (repeatable)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "xml/writer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: natixq [--explain] [--analyze] [--canonical] "
               "[--values] [--count] [--verify-plans] [--var k=v]... "
               "<file.xml> <xpath>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool analyze = false;
  bool canonical = false;
  bool values = false;
  bool count_only = false;
  bool stats = false;
  std::vector<std::pair<std::string, std::string>> variables;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--explain") {
      explain = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--canonical") {
      canonical = true;
    } else if (arg == "--values") {
      values = true;
    } else if (arg == "--count") {
      count_only = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--verify-plans") {
      natix::analysis::SetVerificationEnabled(true);
    } else if (arg == "--var") {
      if (++i >= argc) return Usage();
      std::string binding = argv[i];
      auto eq = binding.find('=');
      if (eq == std::string::npos) return Usage();
      variables.emplace_back(binding.substr(0, eq), binding.substr(eq + 1));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage();

  auto db = natix::Database::CreateTemp();
  if (!db.ok()) {
    std::fprintf(stderr, "natixq: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto info = (*db)->LoadDocumentFile("doc", positional[0]);
  if (!info.ok()) {
    std::fprintf(stderr, "natixq: %s\n", info.status().ToString().c_str());
    return 1;
  }

  auto options = canonical ? natix::translate::TranslatorOptions::Canonical()
                           : natix::translate::TranslatorOptions::Improved();
  auto query = (*db)->Compile(positional[1], options, analyze);
  if (!query.ok()) {
    std::fprintf(stderr, "natixq: %s\n", query.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, value] : variables) {
    (*query)->SetVariable(name, natix::runtime::Value::String(value));
  }

  if (explain) {
    std::printf("=== logical plan ===\n%s\n=== physical plan ===\n%s"
                "=== verification ===\n%s\n",
                (*query)->ExplainLogical().c_str(),
                (*query)->ExplainPhysical().c_str(),
                (*query)->VerificationReport().c_str());
    return 0;
  }

  auto print_stats = [&] {
    if (!stats) return;
    const natix::ExecutionStats& s = (*query)->last_stats();
    std::fprintf(stderr,
                 "stats: %llu step tuples, %llu page faults\n",
                 static_cast<unsigned long long>(s.step_tuples),
                 static_cast<unsigned long long>(s.page_faults));
  };

  if ((*query)->result_type() == natix::xpath::ExprType::kNodeSet) {
    auto nodes = (*query)->EvaluateNodes(info->root);
    if (!nodes.ok()) {
      std::fprintf(stderr, "natixq: %s\n",
                   nodes.status().ToString().c_str());
      return 1;
    }
    print_stats();
    if (analyze) {
      // EXPLAIN ANALYZE mode: the result summary and the instrumented
      // operator tree replace the serialized result (Postgres style).
      std::printf("result: %zu nodes\n=== explain analyze ===\n%s",
                  nodes->size(), (*query)->ExplainAnalyze().c_str());
      return 0;
    }
    if (count_only) {
      std::printf("%zu\n", nodes->size());
      return 0;
    }
    for (const auto& node : *nodes) {
      if (values) {
        auto text = node.string_value();
        if (text.ok()) std::printf("%s\n", text->c_str());
      } else {
        auto xml = natix::xml::OuterXml(node);
        if (xml.ok()) std::printf("%s\n", xml->c_str());
      }
    }
    return nodes->empty() ? 3 : 0;  // xmllint-style: 3 = empty node set
  }

  auto result = (*query)->EvaluateString(info->root);
  if (!result.ok()) {
    std::fprintf(stderr, "natixq: %s\n", result.status().ToString().c_str());
    return 1;
  }
  print_stats();
  if (analyze) {
    std::printf("result: %s\n=== explain analyze ===\n%s",
                result->c_str(), (*query)->ExplainAnalyze().c_str());
    return 0;
  }
  std::printf("%s\n", result->c_str());
  return 0;
}
