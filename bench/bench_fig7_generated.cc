// Figure 7 reproduction: query 2 of Fig. 5 over the generated-document
// sweep.
#include "util.h"

int main() {
  natix::benchutil::RunGeneratedFigure(
      "fig7 (query 2)", "/child::xdoc/desc::*/pre-sib::*/fol::*/@id");
  return 0;
}
