// Storage characterization: document load throughput and on-disk size
// relative to the XML text, across document shapes. Supports the paper's
// implementation sections (the store is the substrate everything else
// measures through).
#include <cstdio>

#include "api/database.h"
#include "base/logging.h"
#include "util.h"
#include "gen/dblp_generator.h"
#include "gen/xdoc_generator.h"

namespace {

void Measure(const char* label, const std::string& xml) {
  auto db = natix::Database::CreateTemp();
  NATIX_CHECK(db.ok());
  natix::storage::DocumentInfo info;
  double seconds = natix::benchutil::TimeSeconds([&] {
    auto loaded = (*db)->LoadDocument("doc", xml);
    NATIX_CHECK(loaded.ok());
    info = *loaded;
  });
  uint64_t pages = (*db)->store()->buffer_manager()->capacity();
  (void)pages;
  double mb = xml.size() / 1e6;
  std::printf("%-24s %8.2f MB %10llu nodes %8.3f s %8.1f MB/s\n", label,
              mb, static_cast<unsigned long long>(info.node_count), seconds,
              mb / seconds);
}

}  // namespace

int main() {
  bool small = std::getenv("NATIX_BENCH_SMALL") != nullptr;
  std::printf("# document load throughput\n");

  natix::gen::XDocOptions wide;
  wide.max_elements = small ? 20000 : 200000;
  wide.fanout = 50;
  wide.depth = 4;
  Measure("xdoc wide (fanout 50)", natix::gen::GenerateXDoc(wide));

  natix::gen::XDocOptions deep;
  deep.max_elements = small ? 20000 : 200000;
  deep.fanout = 2;
  deep.depth = 30;
  Measure("xdoc deep (depth 30)", natix::gen::GenerateXDoc(deep));

  natix::gen::DblpOptions dblp;
  dblp.publications = small ? 5000 : 100000;
  Measure("dblp (text heavy)", natix::gen::GenerateDblp(dblp));
  return 0;
}
