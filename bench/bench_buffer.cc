// Out-of-core behaviour: the iterator plans navigate the page buffer
// directly, so query performance degrades gracefully as the buffer pool
// shrinks below the document size — the scalability argument of the
// paper's introduction (main-memory interpreters simply fail instead;
// compare the truncated curves in Figs. 6-9).
#include <cstdio>

#include "api/database.h"
#include "base/logging.h"
#include "util.h"
#include "gen/xdoc_generator.h"

int main() {
  natix::gen::XDocOptions gen_options;
  gen_options.max_elements = 40000;
  gen_options.fanout = 10;
  gen_options.depth = 5;
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) {
    gen_options.max_elements = 8000;
  }
  std::string xml = natix::gen::GenerateXDoc(gen_options);

  const char* query = "/child::xdoc/desc::*/anc::*/desc::*/@id";
  std::printf(
      "# buffer-pool sweep on a %llu-element document, query: %s\n",
      static_cast<unsigned long long>(gen_options.max_elements), query);
  std::printf("%-14s %10s %12s %12s %12s\n", "buffer[pages]", "time[s]",
              "faults", "evictions", "pages");

  for (size_t pages : {16u, 64u, 256u, 1024u, 8192u}) {
    natix::Database::Options options;
    options.buffer_pages = pages;
    auto db = natix::Database::CreateTemp(options);
    NATIX_CHECK(db.ok());
    auto info = (*db)->LoadDocument("doc", xml);
    NATIX_CHECK(info.ok());

    auto compiled = (*db)->Compile(query);
    NATIX_CHECK(compiled.ok());
    const auto* bm = (*db)->store()->buffer_manager();
    uint64_t faults_before = bm->fault_count();
    uint64_t evictions_before = bm->eviction_count();
    double seconds = natix::benchutil::TimeSeconds([&] {
      auto nodes = (*compiled)->EvaluateNodes(info->root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
    });
    std::printf("%-14zu %10.4f %12llu %12llu %12u\n", pages, seconds,
                static_cast<unsigned long long>(bm->fault_count() -
                                                faults_before),
                static_cast<unsigned long long>(bm->eviction_count() -
                                                evictions_before),
                (*db)->store()->buffer_manager()->capacity() != 0
                    ? static_cast<unsigned>(pages)
                    : 0u);
    std::fflush(stdout);
  }
  return 0;
}
