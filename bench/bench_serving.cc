// Closed-loop serving benchmark: an in-process natixd server (the real
// socket path — HTTP parse, admission, execution, serialization) under
// N concurrent keep-alive clients, over a mixed scenario set spanning
// the three generated corpora (DBLP bibliography, auction site, xdoc):
// point lookups, scans, aggregations and positional pages. Each load
// level runs the same request batch and reports throughput plus p50 /
// p99 client-observed latency; the registry snapshot at the end carries
// the server-side histograms for cross-checking.
//
// Writes BENCH_serving.json. NATIX_BENCH_SMALL shrinks documents and
// batch size for CI smoke runs. On a single-core container rising
// client counts mostly measure queueing, not parallelism — the JSON
// records hardware_threads so readers can tell.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "base/clock.h"
#include "base/logging.h"
#include "gen/auction_generator.h"
#include "gen/dblp_generator.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/server.h"

namespace {

/// One request shape of the mix. Targets are pre-encoded once.
struct Scenario {
  const char* name;
  std::string target;
};

std::vector<Scenario> BuildScenarios() {
  auto target = [](const char* doc, const char* xpath, const char* extra) {
    return "/query?doc=" + std::string(doc) +
           "&q=" + natix::server::UrlEncode(xpath) +
           "&deadline_ms=30000" + extra;
  };
  return {
      // Aggregations (scalar plans; count() drains inside the plan).
      {"dblp_agg", target("dblp", "count(//inproceedings)", "")},
      {"auction_agg", target("auction", "count(//item)", "")},
      // Scans serialized as counts (server-side drain, small response).
      {"dblp_scan", target("dblp", "//inproceedings/title", "&mode=count")},
      {"xdoc_scan", target("xdoc", "//*/@id", "&mode=count")},
      // Positional pages: the Limit operator closes the pipeline early.
      {"dblp_page",
       target("dblp", "//inproceedings/title", "&limit=10&mode=values")},
      {"auction_page",
       target("auction", "//person/name", "&limit=10&mode=values")},
      // Point-ish lookups (first match, early exit via limit=1).
      {"xdoc_point", target("xdoc", "/xdoc/n/n/@id", "&limit=1")},
      {"dblp_point",
       target("dblp", "//inproceedings[1]/author", "&mode=values")},
  };
}

struct PhaseResult {
  size_t clients = 0;
  size_t requests = 0;
  size_t failures = 0;
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double PercentileMs(std::vector<uint64_t>& latencies_ns, double q) {
  if (latencies_ns.empty()) return 0;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  size_t rank = static_cast<size_t>(q * (latencies_ns.size() - 1));
  return latencies_ns[rank] / 1e6;
}

PhaseResult RunPhase(int port, const std::vector<Scenario>& scenarios,
                     size_t clients, size_t requests) {
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> failures{0};
  std::vector<std::vector<uint64_t>> latencies(clients);

  const uint64_t begin_ns = natix::MonotonicNanos();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      natix::server::HttpClient client(port);
      std::vector<uint64_t>& mine = latencies[c];
      for (size_t i = cursor.fetch_add(1); i < requests;
           i = cursor.fetch_add(1)) {
        const Scenario& scenario = scenarios[i % scenarios.size()];
        const uint64_t start = natix::MonotonicNanos();
        auto response = client.Get(scenario.target);
        mine.push_back(natix::MonotonicNanos() - start);
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = (natix::MonotonicNanos() - begin_ns) / 1e9;

  std::vector<uint64_t> merged;
  merged.reserve(requests);
  for (const std::vector<uint64_t>& mine : latencies) {
    merged.insert(merged.end(), mine.begin(), mine.end());
  }

  PhaseResult result;
  result.clients = clients;
  result.requests = merged.size();
  result.failures = failures.load();
  result.seconds = seconds;
  result.qps = merged.empty() ? 0 : merged.size() / seconds;
  result.p50_ms = PercentileMs(merged, 0.50);
  result.p99_ms = PercentileMs(merged, 0.99);
  return result;
}

}  // namespace

int main() {
  const bool small = std::getenv("NATIX_BENCH_SMALL") != nullptr;

  natix::gen::DblpOptions dblp;
  dblp.publications = small ? 150 : 600;
  natix::gen::AuctionOptions auction;
  auction.people = small ? 40 : 150;
  natix::gen::XDocOptions xdoc;
  xdoc.max_elements = small ? 400 : 2000;
  xdoc.fanout = 6;
  xdoc.depth = 5;
  const size_t requests_per_phase = small ? 96 : 400;

  natix::Database::Options db_options;
  db_options.buffer_pages = 1024;
  auto db = natix::Database::CreateTemp(db_options);
  NATIX_CHECK(db.ok());
  NATIX_CHECK(
      (*db)->LoadDocument("dblp", natix::gen::GenerateDblp(dblp)).ok());
  NATIX_CHECK(
      (*db)
          ->LoadDocument("auction", natix::gen::GenerateAuctionSite(auction))
          .ok());
  NATIX_CHECK(
      (*db)->LoadDocument("xdoc", natix::gen::GenerateXDoc(xdoc)).ok());

  natix::server::ServerOptions server_options;
  server_options.max_concurrency = 4;
  server_options.queue_capacity = 64;
  natix::server::Server server(db->get(), server_options);
  NATIX_CHECK(server.Start().ok());

  const std::vector<Scenario> scenarios = BuildScenarios();

  // Warm the plan cache and buffer pool once so the measured phases see
  // steady-state hits (the registry still records the cold misses).
  {
    natix::server::HttpClient client(server.port());
    for (const Scenario& scenario : scenarios) {
      auto response = client.Get(scenario.target);
      NATIX_CHECK(response.ok() && response->status == 200);
    }
  }

  std::printf("# serving: %zu requests/phase over %zu scenarios, "
              "%u hardware threads\n",
              requests_per_phase, scenarios.size(),
              std::thread::hardware_concurrency());
  std::printf("%-8s %10s %10s %10s %10s %8s\n", "clients", "time[s]",
              "req/sec", "p50[ms]", "p99[ms]", "fail");

  std::vector<PhaseResult> phases;
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    PhaseResult phase =
        RunPhase(server.port(), scenarios, clients, requests_per_phase);
    std::printf("%-8zu %10.3f %10.1f %10.3f %10.3f %8zu\n", phase.clients,
                phase.seconds, phase.qps, phase.p50_ms, phase.p99_ms,
                phase.failures);
    std::fflush(stdout);
    phases.push_back(phase);

    // Scrape /metrics between phases like a Prometheus would; the body
    // must be non-empty exposition text (or the OBS=OFF stub).
    natix::server::HttpClient client(server.port());
    auto scrape = client.Get("/metrics");
    NATIX_CHECK(scrape.ok() && scrape->status == 200 &&
                !scrape->body.empty());
  }

  std::string out = "{\n  \"bench\": \"serving\",\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"requests_per_phase\": %zu,\n  \"scenarios\": %zu,\n"
                "  \"max_concurrency\": %zu,\n"
                "  \"hardware_threads\": %u,\n  \"rows\": [\n",
                requests_per_phase, scenarios.size(),
                server_options.max_concurrency,
                std::thread::hardware_concurrency());
  out += buf;
  for (size_t i = 0; i < phases.size(); ++i) {
    std::snprintf(
        buf, sizeof(buf),
        "    {\"clients\": %zu, \"requests\": %zu, \"seconds\": %.6f, "
        "\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"failures\": %zu}%s\n",
        phases[i].clients, phases[i].requests, phases[i].seconds,
        phases[i].qps, phases[i].p50_ms, phases[i].p99_ms,
        phases[i].failures, i + 1 < phases.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"metrics\": " +
         natix::obs::MetricsRegistry::Global().SnapshotJson() + "\n}\n";
  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f != nullptr) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("# wrote BENCH_serving.json\n");
  }

  server.Shutdown();
  size_t total_failures = 0;
  for (const PhaseResult& phase : phases) total_failures += phase.failures;
  return total_failures == 0 ? 0 : 1;
}
