#include "util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"

namespace natix::benchutil {

double TimeSeconds(const std::function<void()>& fn) {
  auto begin = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return elapsed.count();
}

double BestOf(int runs, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < runs; ++i) {
    double t = TimeSeconds(fn);
    if (t < best) best = t;
  }
  return best;
}

int BenchReps() {
  if (const char* env = std::getenv("NATIX_BENCH_REPS")) {
    int reps = std::atoi(env);
    if (reps >= 1) return reps;
  }
  return 7;
}

RepTimings TimeRepeated(int runs, const std::function<void()>& fn) {
  if (runs < 1) runs = 1;
  std::vector<double> samples;
  samples.reserve(runs);
  for (int i = 0; i < runs; ++i) samples.push_back(TimeSeconds(fn));
  std::sort(samples.begin(), samples.end());
  RepTimings out;
  out.runs = runs;
  out.min_s = samples.front();
  out.median_s = samples[samples.size() / 2];
  // Nearest-rank p95 (for the default 7 reps this is the max).
  size_t rank = static_cast<size_t>(0.95 * (samples.size() - 1) + 0.5);
  out.p95_s = samples[rank];
  return out;
}

LoadedDocument LoadAll(const std::string& xml) {
  LoadedDocument out;
  auto db = Database::CreateTemp();
  NATIX_CHECK(db.ok());
  out.db = std::move(db.value());
  auto info = out.db->LoadDocument("doc", xml);
  NATIX_CHECK(info.ok());
  out.root = info->root;
  auto dom = dom::ParseDocument(xml);
  NATIX_CHECK(dom.ok());
  out.dom = std::move(dom.value());
  return out;
}

double TimeNatix(LoadedDocument& doc, const std::string& query,
                 bool canonical) {
  auto compiled = doc.db->Compile(
      query, canonical ? translate::TranslatorOptions::Canonical()
                       : translate::TranslatorOptions::Improved());
  NATIX_CHECK(compiled.ok());
  return TimeSeconds([&] {
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(doc.root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
    } else {
      auto value = (*compiled)->EvaluateValue(doc.root);
      NATIX_CHECK(value.ok());
    }
  });
}

namespace {

RepTimings TimeNatixRepsWith(LoadedDocument& doc, const std::string& query,
                             const translate::TranslatorOptions& options) {
  auto compiled = doc.db->Compile(query, options);
  NATIX_CHECK(compiled.ok());
  return TimeRepeated(BenchReps(), [&] {
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(doc.root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
    } else {
      auto value = (*compiled)->EvaluateValue(doc.root);
      NATIX_CHECK(value.ok());
    }
  });
}

}  // namespace

RepTimings TimeNatixReps(LoadedDocument& doc, const std::string& query,
                         bool canonical) {
  return TimeNatixRepsWith(
      doc, query, canonical ? translate::TranslatorOptions::Canonical()
                            : translate::TranslatorOptions::Improved());
}

RepTimings TimeNatixRepsNoRewrite(LoadedDocument& doc,
                                  const std::string& query) {
  translate::TranslatorOptions options =
      translate::TranslatorOptions::Improved();
  options.simplify_plan = false;
  return TimeNatixRepsWith(doc, query, options);
}

RepTimings TimeNatixRepsNoNvmOpt(LoadedDocument& doc,
                                 const std::string& query) {
  translate::TranslatorOptions options =
      translate::TranslatorOptions::Improved();
  options.optimize_nvm = false;
  return TimeNatixRepsWith(doc, query, options);
}

RepTimings TimeNatixRepsNoLimit(LoadedDocument& doc,
                                const std::string& query) {
  translate::TranslatorOptions options =
      translate::TranslatorOptions::Improved();
  options.limit_pushdown = false;
  return TimeNatixRepsWith(doc, query, options);
}

namespace {

/// One evaluation; returns the NVM instructions it retired.
uint64_t RetiredByOneRun(CompiledQuery* compiled, storage::NodeId root) {
  if (compiled->result_type() == xpath::ExprType::kNodeSet) {
    auto nodes = compiled->EvaluateNodes(root, /*document_order=*/false);
    NATIX_CHECK(nodes.ok());
  } else {
    auto value = compiled->EvaluateValue(root);
    NATIX_CHECK(value.ok());
  }
  return compiled->last_stats().nvm_insns;
}

}  // namespace

NvmCounts CountNvm(LoadedDocument& doc, const std::string& query) {
  NvmCounts out;
  auto optimized =
      doc.db->Compile(query, translate::TranslatorOptions::Improved());
  NATIX_CHECK(optimized.ok());
  const qe::PlanTemplate& plan = (*optimized)->prepared().plan();
  out.insns_before = plan.nvm_insns_before();
  out.insns_after = plan.nvm_insns_after();
  out.retired_opt = RetiredByOneRun(optimized->get(), doc.root);

  translate::TranslatorOptions no_opt =
      translate::TranslatorOptions::Improved();
  no_opt.optimize_nvm = false;
  auto baseline = doc.db->Compile(query, no_opt);
  NATIX_CHECK(baseline.ok());
  out.retired_noopt = RetiredByOneRun(baseline->get(), doc.root);
  return out;
}

StatsRun TimeNatixWithStats(LoadedDocument& doc, const std::string& query) {
  auto compiled = doc.db->Compile(query,
                                  translate::TranslatorOptions::Improved(),
                                  /*collect_stats=*/true);
  NATIX_CHECK(compiled.ok());
  StatsRun run;
  run.seconds = TimeSeconds([&] {
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(doc.root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
    } else {
      auto value = (*compiled)->EvaluateValue(doc.root);
      NATIX_CHECK(value.ok());
    }
  });
  const obs::QueryStats* stats = (*compiled)->Stats();
  NATIX_CHECK(stats != nullptr);
  run.totals = stats->ComputeTotals();
  run.buffer = stats->buffer();
  return run;
}

double TimeInterp(LoadedDocument& doc, const std::string& query,
                  bool memoize) {
  interp::EvaluatorOptions options;
  options.memoize = memoize;
  return TimeSeconds([&] {
    auto result =
        interp::Evaluator::Run(doc.dom.get(), query, doc.dom->root(),
                               options);
    NATIX_CHECK(result.ok());
  });
}

RepTimings TimeInterpReps(LoadedDocument& doc, const std::string& query,
                          bool memoize) {
  interp::EvaluatorOptions options;
  options.memoize = memoize;
  return TimeRepeated(BenchReps(), [&] {
    auto result =
        interp::Evaluator::Run(doc.dom.get(), query, doc.dom->root(),
                               options);
    NATIX_CHECK(result.ok());
  });
}

size_t CountNatix(LoadedDocument& doc, const std::string& query) {
  auto nodes = doc.db->QueryNodes("doc", query);
  NATIX_CHECK(nodes.ok());
  return nodes->size();
}

std::vector<DocPoint> PaperDocSweep() {
  // Paper x-axes: 2000..8000 elements (fanout 6) and 10000..80000
  // (fanout 10). Depth 5 lets the element budget bind exactly (see
  // EXPERIMENTS.md on the paper's depth-4 figure).
  std::vector<DocPoint> sweep = {
      {2000, 6, 5},  {4000, 6, 5},   {6000, 6, 5},   {8000, 6, 5},
      {10000, 10, 5}, {20000, 10, 5}, {40000, 10, 5}, {80000, 10, 5},
  };
  // NATIX_BENCH_SMALL=1 trims the sweep for quick runs / CI.
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) {
    sweep = {{2000, 6, 5}, {8000, 6, 5}, {20000, 10, 5}};
  }
  return sweep;
}

namespace {

/// One sweep point of the JSON emission (runs == 0 / negative timing =
/// skipped system).
struct JsonRow {
  uint64_t elements = 0;
  size_t results = 0;
  RepTimings natix;
  /// Rewrite ablation: same translation with the property-justified
  /// simplifier off (the "before" of the Sort/DupElim elimination).
  RepTimings natix_no_rewrite;
  /// NVM ablation: same translation with the bytecode optimizer off.
  RepTimings natix_no_nvmopt;
  NvmCounts nvm;
  RepTimings interp_memo;
  RepTimings interp_naive;
  StatsRun stats{-1, {}, {}};
};

void AppendTiming(std::string* out, const char* key, double value) {
  char buf[64];
  if (value < 0) {
    std::snprintf(buf, sizeof(buf), "\"%s\": null", key);
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key, value);
  }
  *out += buf;
}

/// Emits <prefix>_min_s / _median_s / _p95_s (null when skipped).
void AppendReps(std::string* out, const char* prefix,
                const RepTimings& reps) {
  const bool ran = reps.runs > 0;
  AppendTiming(out, (std::string(prefix) + "_min_s").c_str(),
               ran ? reps.min_s : -1);
  *out += ", ";
  AppendTiming(out, (std::string(prefix) + "_median_s").c_str(),
               ran ? reps.median_s : -1);
  *out += ", ";
  AppendTiming(out, (std::string(prefix) + "_p95_s").c_str(),
               ran ? reps.p95_s : -1);
}

void AppendCounter(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

/// Writes BENCH_<fig>.json (fig = the figure name up to the first
/// space) into the working directory: per-point timings plus the
/// counter totals of one instrumented run, for dashboards and the
/// counter-based figure analyses in EXPERIMENTS.md.
void WriteBenchJson(const char* figure, const std::string& query,
                    const std::vector<JsonRow>& rows) {
  std::string name(figure);
  auto space = name.find(' ');
  if (space != std::string::npos) name = name.substr(0, space);
  std::string path = "BENCH_" + name + ".json";

  char reps_buf[48];
  std::snprintf(reps_buf, sizeof(reps_buf), "%d", BenchReps());
  std::string out = "{\n  \"figure\": \"" + std::string(figure) +
                    "\",\n  \"query\": \"" + query +
                    "\",\n  \"reps\": " + reps_buf + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    out += "    {";
    AppendCounter(&out, "elements", row.elements);
    out += ", ";
    AppendCounter(&out, "results", row.results);
    out += ",\n     ";
    AppendReps(&out, "natix", row.natix);
    out += ",\n     ";
    AppendReps(&out, "natix_no_rewrite", row.natix_no_rewrite);
    out += ",\n     ";
    AppendReps(&out, "natix_no_nvmopt", row.natix_no_nvmopt);
    out += ", ";
    AppendTiming(&out, "natix_stats_s", row.stats.seconds);
    out += ",\n     ";
    AppendReps(&out, "interp_memo", row.interp_memo);
    out += ",\n     ";
    AppendReps(&out, "interp_naive", row.interp_naive);
    out += ",\n     \"counters\": {";
    const obs::StatsTotals& t = row.stats.totals;
    AppendCounter(&out, "open_calls", t.open_calls);
    out += ", ";
    AppendCounter(&out, "next_calls", t.next_calls);
    out += ", ";
    AppendCounter(&out, "tuples", t.tuples);
    out += ", ";
    AppendCounter(&out, "memo_hits", t.memo_hits);
    out += ", ";
    AppendCounter(&out, "memo_misses", t.memo_misses);
    out += ", ";
    AppendCounter(&out, "spooled_rows", t.spooled_rows);
    out += ", ";
    AppendCounter(&out, "replayed_rows", t.replayed_rows);
    out += ", ";
    AppendCounter(&out, "cache_hits", t.cache_hits);
    out += ", ";
    AppendCounter(&out, "agg_evals", t.agg_evals);
    out += ", ";
    AppendCounter(&out, "agg_input", t.agg_input);
    out += ", ";
    AppendCounter(&out, "early_exits", t.early_exits);
    out += ", ";
    AppendCounter(&out, "page_reads", row.stats.buffer.page_reads);
    out += ", ";
    AppendCounter(&out, "page_hits", row.stats.buffer.page_hits);
    out += ", ";
    AppendCounter(&out, "nvm_insns_static_before", row.nvm.insns_before);
    out += ", ";
    AppendCounter(&out, "nvm_insns_static_after", row.nvm.insns_after);
    out += ", ";
    AppendCounter(&out, "nvm_insns_retired", row.nvm.retired_opt);
    out += ", ";
    AppendCounter(&out, "nvm_insns_retired_noopt", row.nvm.retired_noopt);
    out += "}}";
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  // The process-wide histogram snapshot of the figure's run (the
  // registry is reset when the figure starts).
  out += "  ],\n  \"metrics\": " +
         obs::MetricsRegistry::Global().SnapshotJson() + "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // read-only working dir: skip emission
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

void RunGeneratedFigure(const char* figure, const std::string& query,
                        double budget_s) {
  // A fresh registry scopes the embedded metrics snapshot to this figure.
  obs::MetricsRegistry::Global().Reset();
  std::printf("# %s: %s (%d reps/point, median plotted)\n", figure,
              query.c_str(), BenchReps());
  std::printf("%-9s %9s %12s %12s %12s %14s %14s\n", "elements", "results",
              "natix[s]", "no-rewrite[s]", "no-nvmopt[s]",
              "interp-memo[s]", "interp-naive[s]");
  double last_natix = 0;
  double last_memo = 0;
  double last_naive = 0;
  std::vector<JsonRow> rows;
  for (const DocPoint& point : PaperDocSweep()) {
    gen::XDocOptions options;
    options.max_elements = point.elements;
    options.fanout = point.fanout;
    options.depth = point.depth;
    LoadedDocument doc = LoadAll(gen::GenerateXDoc(options));

    JsonRow row;
    row.elements = point.elements;
    std::printf("%-9llu", static_cast<unsigned long long>(point.elements));
    if (last_natix <= budget_s) {
      size_t results = CountNatix(doc, query);
      row.natix = TimeNatixReps(doc, query);
      last_natix = row.natix.median_s;
      row.results = results;
      row.natix_no_rewrite = TimeNatixRepsNoRewrite(doc, query);
      row.natix_no_nvmopt = TimeNatixRepsNoNvmOpt(doc, query);
      row.nvm = CountNvm(doc, query);
      // A second, instrumented run gathers the per-operator counters
      // without polluting the uninstrumented timings above.
      row.stats = TimeNatixWithStats(doc, query);
      std::printf(" %9zu %12.4f %12.4f %12.4f", results,
                  row.natix.median_s, row.natix_no_rewrite.median_s,
                  row.natix_no_nvmopt.median_s);
    } else {
      std::printf(" %9s %12s %12s %12s", "-", "-", "-", "-");
    }
    if (last_memo <= budget_s) {
      row.interp_memo = TimeInterpReps(doc, query, /*memoize=*/true);
      last_memo = row.interp_memo.median_s;
      std::printf(" %14.4f", row.interp_memo.median_s);
    } else {
      std::printf(" %14s", "-");  // skipped: previous size over budget
    }
    if (last_naive <= budget_s) {
      row.interp_naive = TimeInterpReps(doc, query, /*memoize=*/false);
      last_naive = row.interp_naive.median_s;
      std::printf(" %14.4f\n", row.interp_naive.median_s);
    } else {
      std::printf(" %14s\n", "-");
    }
    std::fflush(stdout);
    rows.push_back(row);
  }
  WriteBenchJson(figure, query, rows);
  std::printf("\n");
}

}  // namespace natix::benchutil
