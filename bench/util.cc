#include "util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"
#include "gen/xdoc_generator.h"

namespace natix::benchutil {

double TimeSeconds(const std::function<void()>& fn) {
  auto begin = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return elapsed.count();
}

double BestOf(int runs, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < runs; ++i) {
    double t = TimeSeconds(fn);
    if (t < best) best = t;
  }
  return best;
}

LoadedDocument LoadAll(const std::string& xml) {
  LoadedDocument out;
  auto db = Database::CreateTemp();
  NATIX_CHECK(db.ok());
  out.db = std::move(db.value());
  auto info = out.db->LoadDocument("doc", xml);
  NATIX_CHECK(info.ok());
  out.root = info->root;
  auto dom = dom::ParseDocument(xml);
  NATIX_CHECK(dom.ok());
  out.dom = std::move(dom.value());
  return out;
}

double TimeNatix(LoadedDocument& doc, const std::string& query,
                 bool canonical) {
  auto compiled = doc.db->Compile(
      query, canonical ? translate::TranslatorOptions::Canonical()
                       : translate::TranslatorOptions::Improved());
  NATIX_CHECK(compiled.ok());
  return TimeSeconds([&] {
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(doc.root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
    } else {
      auto value = (*compiled)->EvaluateValue(doc.root);
      NATIX_CHECK(value.ok());
    }
  });
}

double TimeInterp(LoadedDocument& doc, const std::string& query,
                  bool memoize) {
  interp::EvaluatorOptions options;
  options.memoize = memoize;
  return TimeSeconds([&] {
    auto result =
        interp::Evaluator::Run(doc.dom.get(), query, doc.dom->root(),
                               options);
    NATIX_CHECK(result.ok());
  });
}

size_t CountNatix(LoadedDocument& doc, const std::string& query) {
  auto nodes = doc.db->QueryNodes("doc", query);
  NATIX_CHECK(nodes.ok());
  return nodes->size();
}

std::vector<DocPoint> PaperDocSweep() {
  // Paper x-axes: 2000..8000 elements (fanout 6) and 10000..80000
  // (fanout 10). Depth 5 lets the element budget bind exactly (see
  // EXPERIMENTS.md on the paper's depth-4 figure).
  std::vector<DocPoint> sweep = {
      {2000, 6, 5},  {4000, 6, 5},   {6000, 6, 5},   {8000, 6, 5},
      {10000, 10, 5}, {20000, 10, 5}, {40000, 10, 5}, {80000, 10, 5},
  };
  // NATIX_BENCH_SMALL=1 trims the sweep for quick runs / CI.
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) {
    sweep = {{2000, 6, 5}, {8000, 6, 5}, {20000, 10, 5}};
  }
  return sweep;
}

void RunGeneratedFigure(const char* figure, const std::string& query,
                        double budget_s) {
  std::printf("# %s: %s\n", figure, query.c_str());
  std::printf("%-9s %9s %12s %14s %14s\n", "elements", "results",
              "natix[s]", "interp-memo[s]", "interp-naive[s]");
  double last_natix = 0;
  double last_memo = 0;
  double last_naive = 0;
  for (const DocPoint& point : PaperDocSweep()) {
    gen::XDocOptions options;
    options.max_elements = point.elements;
    options.fanout = point.fanout;
    options.depth = point.depth;
    LoadedDocument doc = LoadAll(gen::GenerateXDoc(options));

    std::printf("%-9llu", static_cast<unsigned long long>(point.elements));
    if (last_natix <= budget_s) {
      size_t results = CountNatix(doc, query);
      last_natix = TimeNatix(doc, query);
      std::printf(" %9zu %12.4f", results, last_natix);
    } else {
      std::printf(" %9s %12s", "-", "-");
    }
    if (last_memo <= budget_s) {
      last_memo = TimeInterp(doc, query, /*memoize=*/true);
      std::printf(" %14.4f", last_memo);
    } else {
      std::printf(" %14s", "-");  // skipped: previous size over budget
    }
    if (last_naive <= budget_s) {
      last_naive = TimeInterp(doc, query, /*memoize=*/false);
      std::printf(" %14.4f\n", last_naive);
    } else {
      std::printf(" %14s\n", "-");
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace natix::benchutil
