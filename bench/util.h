#ifndef NATIX_BENCH_UTIL_H_
#define NATIX_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix::benchutil {

/// Wall-clock seconds of one invocation of `fn` (which must not fail).
double TimeSeconds(const std::function<void()>& fn);

/// Best-of-`runs` timing.
double BestOf(int runs, const std::function<void()>& fn);

/// Order statistics over repeated timings of one measurement point.
/// Single numbers hide run-to-run variance; the drivers report the
/// median (the plotted value), the min (the noise floor) and the p95
/// (the tail) of `runs` repetitions.
struct RepTimings {
  int runs = 0;
  double min_s = 0;
  double median_s = 0;
  double p95_s = 0;
};

/// Repetitions per measurement point: NATIX_BENCH_REPS when set (min 1),
/// otherwise 7.
int BenchReps();

/// Times `runs` invocations of `fn` and returns their order statistics.
RepTimings TimeRepeated(int runs, const std::function<void()>& fn);

/// A document loaded into all three systems under comparison: the Natix
/// store (algebraic engine) and the DOM (interpreters). Load/parse time
/// is excluded from query timings, matching the paper's methodology
/// (Sec. 6.2: "the times do not include the time to parse/load the
/// document").
struct LoadedDocument {
  std::unique_ptr<Database> db;
  storage::NodeId root;
  std::unique_ptr<dom::Document> dom;
};

/// Loads `xml` into a scratch store and a DOM. Aborts on error (bench
/// inputs are generated, so failures are bugs).
LoadedDocument LoadAll(const std::string& xml);

/// Seconds to run `query` through the algebraic engine (improved
/// translation unless `canonical`).
double TimeNatix(LoadedDocument& doc, const std::string& query,
                 bool canonical = false);

/// BenchReps() repetitions of the algebraic engine on `query` (one
/// compile, repeated evaluations).
RepTimings TimeNatixReps(LoadedDocument& doc, const std::string& query,
                         bool canonical = false);

/// Same, but with the property-justified simplifier off
/// (improved translation, simplify_plan = false): the "before" column
/// of the rewrite ablation in the emitted BENCH_*.json.
RepTimings TimeNatixRepsNoRewrite(LoadedDocument& doc,
                                  const std::string& query);

/// Same, but with the NVM bytecode optimizer off (improved translation,
/// optimize_nvm = false): the ablation baseline for the subscript
/// instruction counts in the emitted BENCH_*.json.
RepTimings TimeNatixRepsNoNvmOpt(LoadedDocument& doc,
                                 const std::string& query);

/// Same, but with the positional Limit pushdown off (improved
/// translation, limit_pushdown = false): the "natix_no_limit" ablation
/// column of BENCH_fig10.json (docs/LIMIT-PUSHDOWN.md).
RepTimings TimeNatixRepsNoLimit(LoadedDocument& doc,
                                const std::string& query);

/// NVM subscript instruction counts for `query`: static bytecode sizes
/// before/after optimization (summed over the plan's subscripts) and
/// instructions retired by one evaluation with the optimizer on / off.
struct NvmCounts {
  uint64_t insns_before = 0;
  uint64_t insns_after = 0;
  uint64_t retired_opt = 0;
  uint64_t retired_noopt = 0;
};
NvmCounts CountNvm(LoadedDocument& doc, const std::string& query);

/// One instrumented run of `query`: compiles with stats collection,
/// evaluates once, and returns the wall time plus the plan-wide counter
/// totals and query-level buffer deltas (src/obs).
struct StatsRun {
  double seconds = 0;
  obs::StatsTotals totals;
  obs::BufferCounters buffer;
};
StatsRun TimeNatixWithStats(LoadedDocument& doc, const std::string& query);

/// Seconds to run `query` through the main-memory interpreter.
double TimeInterp(LoadedDocument& doc, const std::string& query,
                  bool memoize);

/// BenchReps() repetitions of the main-memory interpreter on `query`.
RepTimings TimeInterpReps(LoadedDocument& doc, const std::string& query,
                          bool memoize);

/// Result-set size via the algebraic engine (sanity column).
size_t CountNatix(LoadedDocument& doc, const std::string& query);

/// The generated-document sweep of Sec. 6.2.1: 2000-8000 elements
/// (fanout 6) and 10000-80000 (fanout 10).
struct DocPoint {
  uint64_t elements;
  uint32_t fanout;
  uint32_t depth;
};
std::vector<DocPoint> PaperDocSweep();

/// Runs one figure: `query` over the sweep, comparing the algebraic
/// engine against both interpreter flavors, printing one row per
/// document size. A system whose previous point exceeded `budget_s`
/// seconds is skipped for larger documents (mirroring the interpreter
/// curves in the paper that stop before the end of the x-axis).
void RunGeneratedFigure(const char* figure, const std::string& query,
                        double budget_s = 20.0);

}  // namespace natix::benchutil

#endif  // NATIX_BENCH_UTIL_H_
