// Worst-case complexity (Sec. 4 / Gottlob et al. [7,8]): on the document
// <a><b/><b/></a>, the path b/parent::a/b/parent::a/... doubles its
// context list at every level unless duplicates are eliminated between
// steps. The canonical translation (one final duplicate elimination,
// Sec. 3.1.1) and the textbook recursive interpreter are exponential in
// the query length k; the improved translation (pushed duplicate
// elimination, Sec. 4.1) and the consolidating/memoizing interpreter are
// polynomial.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util.h"

namespace {

std::string DoublingQuery(int k) {
  std::string q = "/a/b";
  for (int i = 0; i < k; ++i) q += "/parent::a/b";
  return q;
}

}  // namespace

int main() {
  natix::benchutil::LoadedDocument doc =
      natix::benchutil::LoadAll("<a><b/><b/></a>");

  int max_k = std::getenv("NATIX_BENCH_SMALL") != nullptr ? 16 : 22;
  double budget = 15.0;

  std::printf(
      "# exponential-vs-polynomial: b/parent::a/b ... chains on "
      "<a><b/><b/></a>\n");
  std::printf("%-3s %14s %12s %14s %14s\n", "k", "natix-canon[s]",
              "natix[s]", "interp-naive[s]", "interp-memo[s]");
  double last_canon = 0;
  double last_naive = 0;
  for (int k = 2; k <= max_k; k += 2) {
    std::string query = DoublingQuery(k);
    std::printf("%-3d", k);
    if (last_canon <= budget) {
      last_canon = natix::benchutil::TimeNatix(doc, query,
                                               /*canonical=*/true);
      std::printf(" %14.4f", last_canon);
    } else {
      std::printf(" %14s", "-");
    }
    double improved = natix::benchutil::TimeNatix(doc, query);
    std::printf(" %12.4f", improved);
    if (last_naive <= budget) {
      natix::interp::EvaluatorOptions naive;
      naive.memoize = false;
      naive.consolidate_steps = false;
      last_naive = natix::benchutil::TimeSeconds([&] {
        auto result = natix::interp::Evaluator::Run(
            doc.dom.get(), query, doc.dom->root(), naive);
        NATIX_CHECK(result.ok());
      });
      std::printf(" %14.4f", last_naive);
    } else {
      std::printf(" %14s", "-");
    }
    double memo = natix::benchutil::TimeInterp(doc, query, true);
    std::printf(" %14.4f\n", memo);
    std::fflush(stdout);
  }
  return 0;
}
