// Ablation of the Sec. 4 translation improvements: each query isolates
// one optimization; the table reports canonical vs improved times (the
// DESIGN.md experiment ids abl-dup, abl-stack, abl-memo).
#include <cstdio>
#include <string>

#include "util.h"
#include "gen/xdoc_generator.h"
#include "translate/translator.h"

namespace {

using natix::benchutil::LoadAll;
using natix::benchutil::LoadedDocument;
using natix::benchutil::TimeSeconds;
using natix::translate::TranslatorOptions;

double TimeWith(LoadedDocument& doc, const std::string& query,
                const TranslatorOptions& options) {
  auto compiled = doc.db->Compile(query, options);
  NATIX_CHECK(compiled.ok());
  return TimeSeconds([&] {
    auto nodes = (*compiled)->EvaluateNodes(doc.root,
                                            /*document_order=*/false);
    NATIX_CHECK(nodes.ok());
  });
}

void Run(LoadedDocument& doc, const char* label, const std::string& query,
         void (*tweak)(TranslatorOptions*)) {
  TranslatorOptions canonical = TranslatorOptions::Canonical();
  TranslatorOptions single = TranslatorOptions::Canonical();
  tweak(&single);
  TranslatorOptions improved = TranslatorOptions::Improved();
  std::printf("%-10s %-52s %12.4f %14.4f %12.4f\n", label, query.c_str(),
              TimeWith(doc, query, canonical),
              TimeWith(doc, query, single),
              TimeWith(doc, query, improved));
  std::fflush(stdout);
}

}  // namespace

int main() {
  natix::gen::XDocOptions options;
  options.max_elements = 20000;
  options.fanout = 10;
  options.depth = 5;
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) {
    options.max_elements = 4000;
  }
  LoadedDocument doc = LoadAll(natix::gen::GenerateXDoc(options));
  // A smaller, deeper document for the memoization ablation (inner-path
  // evaluation is quadratic in document size).
  natix::gen::XDocOptions memo_options;
  memo_options.max_elements =
      std::getenv("NATIX_BENCH_SMALL") != nullptr ? 400 : 1500;
  memo_options.fanout = 3;
  memo_options.depth = 8;
  LoadedDocument memo_doc = LoadAll(natix::gen::GenerateXDoc(memo_options));
  std::printf("# ablation of the Sec. 4 improvements (%llu elements)\n",
              static_cast<unsigned long long>(options.max_elements));
  std::printf("%-10s %-52s %12s %14s %12s\n", "ablation", "query",
              "canonical[s]", "only-this[s]", "improved[s]");

  // abl-dup (Sec. 4.1): ppd chains multiply duplicates without pushed
  // duplicate elimination.
  Run(doc, "abl-dup", "/child::xdoc/desc::*/anc::*/anc::*/@id",
      [](TranslatorOptions* o) { o->push_duplicate_elimination = true; });
  Run(doc, "abl-dup", "/child::xdoc/child::*/par::*/desc::*/@id",
      [](TranslatorOptions* o) { o->push_duplicate_elimination = true; });

  // abl-stack (Sec. 4.2.1): long outer child chains — stacked pipeline vs
  // a chain of d-joins.
  Run(doc, "abl-stack", "/xdoc/n/n/n/n/n",
      [](TranslatorOptions* o) { o->stacked_outer_paths = true; });
  Run(doc, "abl-stack", "/xdoc/n/n/n/parent::*/parent::*/n/n",
      [](TranslatorOptions* o) { o->stacked_outer_paths = true; });

  // abl-memo (Sec. 4.2.2): the paper's inner-path example. The outer
  // contexts (descendant::*) nest, so the inner desc::n sets overlap and
  // the same nodes' following::n walks repeat across predicate
  // evaluations — exactly what the MemoX operator collapses.
  Run(memo_doc, "abl-memo",
      "/desc::n[count(./desc::n/fol::n) > 200]/@id",
      [](TranslatorOptions* o) { o->memoize_inner_paths = true; });

  // abl-split (Sec. 4.3.2): cheap-first conjunct ordering with chi^mat.
  Run(doc, "abl-split",
      "/xdoc/n/n[count(desc::n) > 5 and @id='3']/@id",
      [](TranslatorOptions* o) { o->split_expensive_predicates = true; });

  // abl-simplify (extension): order inference removes the Sort of a
  // positional filter expression over an ordered (stacked) pipeline, so
  // the comparison is improved-without-simplifier vs improved.
  {
    std::string query = "(/xdoc/n/n/n/n)[last()]";
    TranslatorOptions no_simplify = TranslatorOptions::Improved();
    no_simplify.simplify_plan = false;
    std::printf("%-10s %-52s %12.4f %14s %12.4f\n", "abl-simpl",
                query.c_str(), TimeWith(doc, query, no_simplify), "-",
                TimeWith(doc, query, TranslatorOptions::Improved()));
  }
  return 0;
}
