// Micro-benchmarks of the physical algebra (google-benchmark): one
// benchmark per operator family, isolated through queries whose plans are
// dominated by that operator, plus the smart-aggregation early-exit
// ablation of Sec. 5.2.5 (exists vs count over the same input).
#include <benchmark/benchmark.h>

#include <memory>

#include "api/database.h"
#include "base/logging.h"
#include "gen/xdoc_generator.h"

namespace {

using natix::Database;
using natix::CompiledQuery;

struct Fixture {
  std::unique_ptr<Database> db;
  natix::storage::NodeId root;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto f = new Fixture();
    natix::gen::XDocOptions options;
    options.max_elements = 20000;
    options.fanout = 10;
    options.depth = 5;
    auto db = Database::CreateTemp();
    NATIX_CHECK(db.ok());
    f->db = std::move(db.value());
    auto info = f->db->LoadDocument("doc",
                                    natix::gen::GenerateXDoc(options));
    NATIX_CHECK(info.ok());
    f->root = info->root;
    return f;
  }();
  return *fixture;
}

void RunQuery(benchmark::State& state, const char* query) {
  Fixture& fixture = GetFixture();
  auto compiled = fixture.db->Compile(query);
  NATIX_CHECK(compiled.ok());
  size_t results = 0;
  for (auto _ : state) {
    if ((*compiled)->result_type() == natix::xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(fixture.root,
                                              /*document_order=*/false);
      NATIX_CHECK(nodes.ok());
      results = nodes->size();
    } else {
      auto value = (*compiled)->EvaluateValue(fixture.root);
      NATIX_CHECK(value.ok());
    }
  }
  state.counters["results"] = static_cast<double>(results);
}

// Unnest-map (location steps) — child chain and descendant walk.
void BM_UnnestMap_ChildChain(benchmark::State& state) {
  RunQuery(state, "/xdoc/n/n/n");
}
BENCHMARK(BM_UnnestMap_ChildChain);

void BM_UnnestMap_Descendant(benchmark::State& state) {
  RunQuery(state, "/descendant::n");
}
BENCHMARK(BM_UnnestMap_Descendant);

void BM_UnnestMap_Following(benchmark::State& state) {
  RunQuery(state, "/xdoc/n[1]/n[1]/following::n[position() < 500]");
}
BENCHMARK(BM_UnnestMap_Following);

// Selection with an NVM predicate over attributes.
void BM_Select_AttributeEquality(benchmark::State& state) {
  RunQuery(state, "//n[@id='12345']");
}
BENCHMARK(BM_Select_AttributeEquality);

// Duplicate elimination dominates parent-fan-in plans.
void BM_DupElim_ParentFanIn(benchmark::State& state) {
  RunQuery(state, "//n/parent::n");
}
BENCHMARK(BM_DupElim_ParentFanIn);

// Counter + positional selection (pipelined, no materialization).
void BM_Counter_Position(benchmark::State& state) {
  RunQuery(state, "/xdoc/n/n[position() = 3]");
}
BENCHMARK(BM_Counter_Position);

// Tmp^cs: context-size materialization.
void BM_TmpCs_Last(benchmark::State& state) {
  RunQuery(state, "/xdoc/n/n[position() = last()]");
}
BENCHMARK(BM_TmpCs_Last);

// Sort: filter expression with positional predicate forces document
// order on the whole intermediate set.
void BM_Sort_FilterExpr(benchmark::State& state) {
  RunQuery(state, "(//n)[last()]");
}
BENCHMARK(BM_Sort_FilterExpr);

// Smart aggregation (Sec. 5.2.5): exists() stops at the first tuple,
// count() drains 20k elements. The gap is the early-exit win.
void BM_Aggregate_ExistsEarlyExit(benchmark::State& state) {
  RunQuery(state, "boolean(//n)");
}
BENCHMARK(BM_Aggregate_ExistsEarlyExit);

void BM_Aggregate_CountFullDrain(benchmark::State& state) {
  RunQuery(state, "count(//n)");
}
BENCHMARK(BM_Aggregate_CountFullDrain);

void BM_Aggregate_Sum(benchmark::State& state) {
  RunQuery(state, "sum(/xdoc/n/@id)");
}
BENCHMARK(BM_Aggregate_Sum);

// Semi-join: node-set comparison with existential semantics.
void BM_SemiJoin_NodeSetEquality(benchmark::State& state) {
  RunQuery(state, "boolean(/xdoc/n/@id = /xdoc/n/n/@id)");
}
BENCHMARK(BM_SemiJoin_NodeSetEquality);

// MemoX: repeated inner-path evaluation with shared contexts.
void BM_MemoX_InnerPath(benchmark::State& state) {
  RunQuery(state, "/xdoc/n/n[count(desc::n/fol-sib::n) > 3]");
}
BENCHMARK(BM_MemoX_InnerPath);

// id() dereferencing through the lazily built id index.
void BM_IdDeref(benchmark::State& state) {
  RunQuery(state, "id('500 501 502 503')");
}
BENCHMARK(BM_IdDeref);

// NVM string machinery.
void BM_Nvm_StringFunctions(benchmark::State& state) {
  RunQuery(state,
           "count(//n[starts-with(@id, '1') and "
           "string-length(@id) > 3])");
}
BENCHMARK(BM_Nvm_StringFunctions);

}  // namespace

BENCHMARK_MAIN();
