// Multi-threaded query throughput over shared prepared plans: the
// compile-once / execute-many split (PreparedQuery + per-thread
// Execution) combined with the striped buffer pool. Each measurement
// point runs a fixed batch of executions of the five paper queries
// (Figs. 6-10 shapes) round-robin across N worker threads and reports
// queries/sec; the shard sweep isolates the pool-latch ablation
// (1 shard = the classic single-lock pool).
//
// Writes BENCH_throughput.json. Numbers are honest for the machine the
// bench runs on: on a single-core container the thread sweep shows
// latch overhead rather than parallel speedup (hardware_concurrency is
// recorded in the JSON so readers can tell).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "base/logging.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"
#include "util.h"

namespace {

const char* kQueries[] = {
    "/child::xdoc/desc::*/anc::*/desc::*/@id",   // fig6 (query 1)
    "/child::xdoc/desc::*/pre-sib::*/fol::*/@id",  // fig7 (query 2)
    "/child::xdoc/desc::*/anc::*/anc::*/@id",    // fig8 (query 3)
    "/child::xdoc/child::*/par::*/desc::*/@id",  // fig9 (query 4)
    "/xdoc/n[position() = last()]/@id",          // fig10-style positional
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

struct Point {
  size_t shards = 0;
  size_t threads = 0;
  size_t executions = 0;
  double seconds = 0;
  double qps = 0;
};

Point RunPoint(const std::string& xml, size_t shards, size_t threads,
               size_t executions) {
  natix::Database::Options options;
  options.buffer_pages = 1024;
  options.buffer_shards = shards;
  auto db = natix::Database::CreateTemp(options);
  NATIX_CHECK(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  NATIX_CHECK(info.ok());

  // Compile each plan exactly once; every worker shares the immutable
  // templates and instantiates its own executions.
  std::vector<std::shared_ptr<const natix::PreparedQuery>> prepared;
  for (const char* query : kQueries) {
    auto plan = (*db)->Prepare(query);
    NATIX_CHECK(plan.ok());
    prepared.push_back(std::move(plan).value());
  }

  std::atomic<size_t> cursor{0};
  Point point;
  point.shards = shards;
  point.threads = threads;
  point.executions = executions;
  point.seconds = natix::benchutil::TimeSeconds([&] {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        // One private execution per plan per worker, reused across the
        // worker's share of the batch.
        std::vector<std::unique_ptr<natix::PreparedQuery::Execution>> execs;
        for (const auto& plan : prepared) {
          auto exec = plan->NewExecution();
          NATIX_CHECK(exec.ok());
          execs.push_back(std::move(exec).value());
        }
        for (size_t i = cursor.fetch_add(1); i < executions;
             i = cursor.fetch_add(1)) {
          auto nodes = execs[i % kNumQueries]->EvaluateNodes(info->root);
          NATIX_CHECK(nodes.ok());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  });
  point.qps = point.executions / point.seconds;
  return point;
}

}  // namespace

int main() {
  natix::gen::XDocOptions gen_options;
  gen_options.max_elements = 2000;
  gen_options.fanout = 6;
  gen_options.depth = 5;
  size_t executions = 160;
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) {
    gen_options.max_elements = 500;
    executions = 48;
  }
  const std::string xml = natix::gen::GenerateXDoc(gen_options);

  std::printf("# throughput over %llu-element document, %zu executions "
              "per point, %u hardware threads\n",
              static_cast<unsigned long long>(gen_options.max_elements),
              executions, std::thread::hardware_concurrency());
  std::printf("%-8s %-8s %12s %14s\n", "shards", "threads", "time[s]",
              "queries/sec");

  std::vector<Point> points;
  for (size_t shards : {1u, 8u}) {
    for (size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      Point point = RunPoint(xml, shards, threads, executions);
      std::printf("%-8zu %-8zu %12.4f %14.1f\n", point.shards,
                  point.threads, point.seconds, point.qps);
      std::fflush(stdout);
      points.push_back(point);
    }
  }

  std::string out = "{\n  \"bench\": \"throughput\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"elements\": %llu,\n  \"executions\": %zu,\n"
                "  \"hardware_threads\": %u,\n  \"rows\": [\n",
                static_cast<unsigned long long>(gen_options.max_elements),
                executions, std::thread::hardware_concurrency());
  out += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"shards\": %zu, \"threads\": %zu, "
                  "\"seconds\": %.6f, \"qps\": %.2f}%s\n",
                  points[i].shards, points[i].threads, points[i].seconds,
                  points[i].qps, i + 1 < points.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"metrics\": " +
         natix::obs::MetricsRegistry::Global().SnapshotJson() + "\n}\n";
  std::FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f != nullptr) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("# wrote BENCH_throughput.json\n");
  }
  return 0;
}
