// id()-join workload (supporting experiment): the XMark-flavored auction
// document exercises the id() dereference operator and the lazily built
// id indexes — a query class the paper's Fig. 5/10 workloads do not
// cover. Compared against the memoized interpreter baseline.
#include <cstdio>
#include <cstdlib>

#include "util.h"
#include "gen/auction_generator.h"

int main() {
  natix::gen::AuctionOptions options;
  bool small = std::getenv("NATIX_BENCH_SMALL") != nullptr;
  options.people = small ? 500 : 5000;
  options.items = small ? 1000 : 10000;
  options.auctions = small ? 800 : 8000;

  natix::benchutil::LoadedDocument doc =
      natix::benchutil::LoadAll(natix::gen::GenerateAuctionSite(options));

  const char* queries[] = {
      "//auction[id(@item)/@category = 'books']",
      "//bid[id(@person)/city = 'Mannheim']",
      "//auction[not(id(@seller)/income)]",
      "//auction[id(@item)/reserve < bid[last()]/amount]",
      "count(//auction[id(@seller)/city = id(@item)/../../"
      "people/person[1]/city])",
      "sum(//auction[id(@item)/@category='art']/closed/final)",
  };

  std::printf(
      "# auction id()-join workload (%llu people, %llu items, %llu "
      "auctions)\n",
      static_cast<unsigned long long>(options.people),
      static_cast<unsigned long long>(options.items),
      static_cast<unsigned long long>(options.auctions));
  std::printf("%-64s %9s %10s %10s\n", "query", "results", "interp[s]",
              "natix[s]");
  for (const char* query : queries) {
    size_t results = 0;
    auto compiled = doc.db->Compile(query);
    NATIX_CHECK(compiled.ok());
    if ((*compiled)->result_type() == natix::xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(doc.root, false);
      NATIX_CHECK(nodes.ok());
      results = nodes->size();
    }
    double interp = natix::benchutil::TimeInterp(doc, query, true);
    double natix = natix::benchutil::TimeNatix(doc, query);
    std::printf("%-64s %9zu %10.4f %10.4f\n", query, results, interp,
                natix);
    std::fflush(stdout);
  }
  return 0;
}
