// Figure 8 reproduction: query 3 of Fig. 5 over the generated-document
// sweep.
#include "util.h"

int main() {
  natix::benchutil::RunGeneratedFigure(
      "fig8 (query 3)", "/child::xdoc/desc::*/anc::*/anc::*/@id");
  return 0;
}
