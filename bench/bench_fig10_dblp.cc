// Figure 10 reproduction: the thirteen DBLP queries, run on a synthetic
// DBLP document (see gen/dblp_generator.h for the substitution of the
// real 216 MB dump), comparing the algebraic engine against the memoized
// main-memory interpreter (the Xalan stand-in).
//
// Environment: NATIX_DBLP_PUBS overrides the document scale (default
// 50000 publications, ~11 MB of XML; the paper's document holds roughly
// 400k publications at 216 MB).
#include <cstdio>
#include <cstdlib>

#include "util.h"
#include "gen/dblp_generator.h"

int main() {
  uint64_t publications = 50000;
  if (const char* env = std::getenv("NATIX_DBLP_PUBS")) {
    publications = std::strtoull(env, nullptr, 10);
  }
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) publications = 5000;

  natix::gen::DblpOptions options;
  options.publications = publications;
  std::string xml = natix::gen::GenerateDblp(options);
  std::printf(
      "# fig10: DBLP queries on a synthetic document "
      "(%llu publications, %.1f MB)\n",
      static_cast<unsigned long long>(publications), xml.size() / 1e6);

  natix::benchutil::LoadedDocument doc = natix::benchutil::LoadAll(xml);

  const char* queries[] = {
      "/dblp/article/title",
      "/dblp/*/title",
      "/dblp/article[position() = 3]/title",
      "/dblp/article[position() < 100]/title",
      "/dblp/article[position() = last()]/title",
      "/dblp/article[position()=last()-10]/title",
      "/dblp/article/title | /dblp/inproceedings/title",
      "/dblp/article[count(author)=4]/@key",
      "/dblp/article[year='1991']/@key",
      "/dblp/inproceedings[year='1991']/@key",
      "/dblp/*[author='Guido Moerkotte']/@key",
      "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
      "/dblp/inproceedings[author='Guido Moerkotte']"
      "[position()=last()]/title",
  };

  std::printf("%-64s %9s %10s %10s\n", "query", "results", "interp[s]",
              "natix[s]");
  for (const char* query : queries) {
    size_t results = natix::benchutil::CountNatix(doc, query);
    double interp =
        natix::benchutil::TimeInterp(doc, query, /*memoize=*/true);
    double natix = natix::benchutil::TimeNatix(doc, query);
    std::printf("%-64s %9zu %10.4f %10.4f\n", query, results, interp,
                natix);
    std::fflush(stdout);
  }
  return 0;
}
