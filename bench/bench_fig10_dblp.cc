// Figure 10 reproduction: the thirteen DBLP queries, run on a synthetic
// DBLP document (see gen/dblp_generator.h for the substitution of the
// real 216 MB dump), comparing the algebraic engine against the memoized
// main-memory interpreter (the Xalan stand-in).
//
// Each query runs NATIX_BENCH_REPS times (default 7) per system; the
// table shows medians and BENCH_fig10.json carries min/median/p95 plus
// the process-wide metrics snapshot of the whole run.
//
// Environment: NATIX_DBLP_PUBS overrides the document scale (default
// 50000 publications, ~11 MB of XML; the paper's document holds roughly
// 400k publications at 216 MB).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util.h"
#include "gen/dblp_generator.h"
#include "obs/metrics.h"

namespace {

struct Row {
  const char* query;
  size_t results;
  natix::benchutil::RepTimings interp;
  natix::benchutil::RepTimings natix;
  // The final-sort ablation (document-ordered results): "presort"
  // forces the final result sort — what every ordered evaluation paid
  // before property inference; "ordered" lets inference skip the sort
  // when the result stream is provably document-ordered already.
  natix::benchutil::RepTimings natix_presort;
  natix::benchutil::RepTimings natix_ordered;
  // The positional early-exit ablation (docs/LIMIT-PUSHDOWN.md):
  // "no_limit" compiles with the Limit pushdown off, so positional
  // rows drain the full article scan; the default run above ("natix",
  // re-emitted as "natix_limit") closes the pipeline after the k-th
  // binding. early_exits counts the Limit-triggered pipeline closes of
  // one instrumented evaluation (0 when no Limit fired).
  natix::benchutil::RepTimings natix_no_limit;
  uint64_t early_exits = 0;
};

natix::benchutil::RepTimings TimeOrdered(
    natix::benchutil::LoadedDocument& doc, const char* query,
    bool presort) {
  auto compiled = doc.db->Compile(query);
  NATIX_CHECK(compiled.ok());
  (*compiled)->SetForceResultSort(presort);
  return natix::benchutil::TimeRepeated(natix::benchutil::BenchReps(), [&] {
    auto nodes =
        (*compiled)->EvaluateNodes(doc.root, /*document_order=*/true);
    NATIX_CHECK(nodes.ok());
  });
}

void AppendReps(std::string* out, const char* prefix,
                const natix::benchutil::RepTimings& reps) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"%s_min_s\": %.6f, \"%s_median_s\": %.6f, "
                "\"%s_p95_s\": %.6f",
                prefix, reps.min_s, prefix, reps.median_s, prefix,
                reps.p95_s);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void WriteJson(uint64_t publications, const std::vector<Row>& rows) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"figure\": \"fig10\",\n  \"publications\": %llu,\n"
                "  \"reps\": %d,\n  \"rows\": [\n",
                static_cast<unsigned long long>(publications),
                natix::benchutil::BenchReps());
  std::string out = buf;
  for (size_t i = 0; i < rows.size(); ++i) {
    out += "    {\"query\": \"" + JsonEscape(rows[i].query) + "\", ";
    std::snprintf(buf, sizeof(buf), "\"results\": %zu,\n     ",
                  rows[i].results);
    out += buf;
    AppendReps(&out, "interp_memo", rows[i].interp);
    out += ",\n     ";
    AppendReps(&out, "natix", rows[i].natix);
    out += ",\n     ";
    AppendReps(&out, "natix_presort", rows[i].natix_presort);
    out += ",\n     ";
    AppendReps(&out, "natix_ordered", rows[i].natix_ordered);
    out += ",\n     ";
    // natix_limit aliases the default run: the pushdown is on unless
    // ablated, so the "natix" timings ARE the limit-on side.
    AppendReps(&out, "natix_limit", rows[i].natix);
    out += ",\n     ";
    AppendReps(&out, "natix_no_limit", rows[i].natix_no_limit);
    std::snprintf(buf, sizeof(buf), ", \"early_exits\": %llu",
                  static_cast<unsigned long long>(rows[i].early_exits));
    out += buf;
    out += "}";
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  out += "  ],\n  \"metrics\": " +
         natix::obs::MetricsRegistry::Global().SnapshotJson() + "\n}\n";
  std::FILE* f = std::fopen("BENCH_fig10.json", "w");
  if (f == nullptr) return;  // read-only working dir: skip emission
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("# wrote BENCH_fig10.json\n");
}

}  // namespace

int main() {
  uint64_t publications = 50000;
  if (const char* env = std::getenv("NATIX_DBLP_PUBS")) {
    publications = std::strtoull(env, nullptr, 10);
  }
  if (std::getenv("NATIX_BENCH_SMALL") != nullptr) publications = 5000;

  natix::gen::DblpOptions options;
  options.publications = publications;
  std::string xml = natix::gen::GenerateDblp(options);
  std::printf(
      "# fig10: DBLP queries on a synthetic document "
      "(%llu publications, %.1f MB, %d reps/query)\n",
      static_cast<unsigned long long>(publications), xml.size() / 1e6,
      natix::benchutil::BenchReps());

  natix::obs::MetricsRegistry::Global().Reset();
  natix::benchutil::LoadedDocument doc = natix::benchutil::LoadAll(xml);

  const char* queries[] = {
      "/dblp/article/title",
      "/dblp/*/title",
      "/dblp/article[position() = 3]/title",
      "/dblp/article[position() < 100]/title",
      "/dblp/article[position() = last()]/title",
      "/dblp/article[position()=last()-10]/title",
      "/dblp/article/title | /dblp/inproceedings/title",
      "/dblp/article[count(author)=4]/@key",
      "/dblp/article[year='1991']/@key",
      "/dblp/inproceedings[year='1991']/@key",
      "/dblp/*[author='Guido Moerkotte']/@key",
      "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
      "/dblp/inproceedings[author='Guido Moerkotte']"
      "[position()=last()]/title",
  };

  std::vector<Row> rows;
  std::printf("%-64s %9s %10s %10s %10s %10s %10s %6s\n", "query",
              "results", "interp[s]", "natix[s]", "presort[s]",
              "ordered[s]", "nolimit[s]", "exits");
  for (const char* query : queries) {
    Row row;
    row.query = query;
    row.results = natix::benchutil::CountNatix(doc, query);
    row.interp =
        natix::benchutil::TimeInterpReps(doc, query, /*memoize=*/true);
    row.natix = natix::benchutil::TimeNatixReps(doc, query);
    row.natix_presort = TimeOrdered(doc, query, /*presort=*/true);
    row.natix_ordered = TimeOrdered(doc, query, /*presort=*/false);
    row.natix_no_limit = natix::benchutil::TimeNatixRepsNoLimit(doc, query);
    row.early_exits =
        natix::benchutil::TimeNatixWithStats(doc, query).totals.early_exits;
    std::printf("%-64s %9zu %10.4f %10.4f %10.4f %10.4f %10.4f %6llu\n",
                query, row.results, row.interp.median_s,
                row.natix.median_s, row.natix_presort.median_s,
                row.natix_ordered.median_s, row.natix_no_limit.median_s,
                static_cast<unsigned long long>(row.early_exits));
    std::fflush(stdout);
    rows.push_back(row);
  }
  WriteJson(publications, rows);
  return 0;
}
