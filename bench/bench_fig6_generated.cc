// Figure 6 reproduction: query 1 of Fig. 5 over the generated-document
// sweep of Sec. 6.2.1, comparing the algebraic engine against the
// main-memory interpreters (stand-ins for xsltproc/Xalan).
#include "util.h"

int main() {
  natix::benchutil::RunGeneratedFigure(
      "fig6 (query 1)", "/child::xdoc/desc::*/anc::*/desc::*/@id");
  return 0;
}
