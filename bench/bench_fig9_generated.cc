// Figure 9 reproduction: query 4 of Fig. 5 over the generated-document
// sweep (the pattern where the paper reports the main-memory
// interpreters winning by a constant factor).
#include "util.h"

int main() {
  natix::benchutil::RunGeneratedFigure(
      "fig9 (query 4)", "/child::xdoc/child::*/par::*/desc::*/@id");
  return 0;
}
