// Negative tests for Layer 4 of the static plan verifier: hand-built
// physical models with injected resource-effect defects (a pin leak, a
// missing Close on the abort path, a mislabeled-fusable segment) must be
// rejected with a diagnostic naming the offending operator — and the
// matching runtime ledger must catch the same classes of defect when an
// execution leaks. Positive coverage (every compiler-produced plan
// passes Layer 4) is enforced binary-wide by verify_env_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "analysis/fusability.h"
#include "analysis/plan_verifier.h"
#include "translate/translator.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::analysis {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

PhysNodePtr Node(PhysNodeKind kind, const std::string& label) {
  auto node = std::make_unique<PhysNode>();
  node->kind = kind;
  node->label = label;
  return node;
}

PhysicalModel WrapRoot(PhysNodePtr root) {
  PhysicalModel model;
  model.root = std::move(root);
  model.register_count = 1;
  model.context_regs = {0};
  model.result_reg = 0;
  return model;
}

void ExpectRejected(const Status& status, const std::string& fragment) {
  ASSERT_FALSE(status.ok()) << "expected a Layer-4 violation";
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "diagnostic was: " << status.message();
}

// ---------------------------------------------------------------------------
// Injected resource-effect defects
// ---------------------------------------------------------------------------

TEST(ResourceVerifierTest, RejectsInjectedPinLeak) {
  // An UnnestMap that declares a storage cursor but no release on Close:
  // its page pins would survive a Limit early-exit.
  PhysNodePtr scan = Node(PhysNodeKind::kLeaf, "SingletonScan");
  PhysNodePtr step = Node(PhysNodeKind::kPipeline, "UnnestMap[c2@r1]");
  step->effects.holds_cursor = true;
  step->effects.cursor_released_on_close = false;
  step->effects.child_close = {ChildClose::kOnClose};
  step->children.push_back(std::move(scan));
  ExpectRejected(VerifyResources(WrapRoot(std::move(step))),
                 "UnnestMap[c2@r1]: holds a storage cursor but does not "
                 "release it on Close");
}

TEST(ResourceVerifierTest, RejectsMissingCloseOnAbortPath) {
  // A join whose Close ignores its right side while that side keeps a
  // full spool: a deadline abort between Next calls leaks the spool.
  PhysNodePtr spooler = Node(PhysNodeKind::kPipeline, "Sort[r1]");
  spooler->effects.spool = SpoolKind::kFull;
  spooler->effects.spool_released_on_close = true;
  spooler->effects.child_close = {ChildClose::kOnClose};
  spooler->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr join = Node(PhysNodeKind::kDependent, "DJoin");
  join->effects.child_close = {ChildClose::kOnClose, ChildClose::kNone};
  join->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  join->children.push_back(std::move(spooler));
  ExpectRejected(VerifyResources(WrapRoot(std::move(join))),
                 "Sort[r1]: subtree holds resources but no Close reaches "
                 "it on the abort path (close-on-all-paths violation)");
}

TEST(ResourceVerifierTest, RejectsUncontainedSpool) {
  PhysNodePtr spooler = Node(PhysNodeKind::kPipeline, "TmpCs[cs3]");
  spooler->effects.spool = SpoolKind::kGroup;
  spooler->effects.spool_released_on_close = false;
  spooler->effects.child_close = {ChildClose::kOnClose};
  spooler->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  ExpectRejected(VerifyResources(WrapRoot(std::move(spooler))),
                 "TmpCs[cs3]: keeps a group spool that Close does not drop "
                 "(spool-containment violation)");
}

TEST(ResourceVerifierTest, RejectsEffectArityMismatch) {
  PhysNodePtr join = Node(PhysNodeKind::kDependent, "DJoin");
  join->effects.child_close = {ChildClose::kOnClose};  // two children
  join->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  join->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  ExpectRejected(VerifyResources(WrapRoot(std::move(join))),
                 "DJoin: declares 1 child-close modes for 2 children");
}

TEST(ResourceVerifierTest, MemoSpoolsMayOutliveClose) {
  // MemoX keeps its keyed table across re-Opens by design; the verifier
  // must not demand release-on-close for kMemo.
  PhysNodePtr memo = Node(PhysNodeKind::kPipeline, "MemoX[c4]");
  memo->effects.spool = SpoolKind::kMemo;
  memo->effects.spool_released_on_close = false;
  memo->effects.child_close = {ChildClose::kOnClose};
  memo->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  EXPECT_TRUE(VerifyResources(WrapRoot(std::move(memo))).ok());
}

TEST(ResourceVerifierTest, ProbeContainedChildIsSafeWithoutCloseForwarding) {
  // A semi-join probe side holding a cursor is fine: each probe balances
  // within one Next, so an external Close never finds it open.
  PhysNodePtr probe = Node(PhysNodeKind::kPipeline, "UnnestMap[probe]");
  probe->effects.holds_cursor = true;
  probe->effects.cursor_released_on_close = true;
  probe->effects.child_close = {ChildClose::kOnClose};
  probe->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr semi = Node(PhysNodeKind::kDependentLeft, "SemiJoin");
  semi->effects.child_close = {ChildClose::kOnClose,
                               ChildClose::kProbeContained};
  semi->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  semi->children.push_back(std::move(probe));
  EXPECT_TRUE(VerifyResources(WrapRoot(std::move(semi))).ok());
}

// ---------------------------------------------------------------------------
// Mislabeled fusability segmentation
// ---------------------------------------------------------------------------

/// Parses, normalizes and translates `query` into its algebra plan.
translate::TranslationResult Translate(const std::string& query) {
  auto ast = xpath::ParseXPath(query);
  NATIX_CHECK(ast.ok());
  NATIX_CHECK(xpath::Analyze(ast->get()).ok());
  xpath::FoldConstants(ast->get());
  xpath::Normalize(ast->get());
  auto result =
      translate::Translate(**ast, translate::TranslatorOptions::Improved());
  NATIX_CHECK(result.ok());
  return std::move(result.value());
}

TEST(SegmentVerifierTest, RejectsMislabeledFusableSegment) {
  // Take the real segmentation of a plan with a DupElim boundary and flip
  // the boundary segment to "fusable": the verifier re-derives the truth
  // and names the operator.
  auto result = Translate("/child::xdoc/desc::*/anc::*/desc::*/@id");
  const algebra::Operator& plan = *result.plan;
  Segmentation seg = SegmentPlan(plan);
  ASSERT_GT(seg.segments.size(), 1u);
  bool flipped = false;
  for (PipelineSegment& s : seg.segments) {
    if (!s.fusable) {
      s.fusable = true;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "expected at least one boundary segment";
  Status st = VerifySegments(plan, seg);
  ExpectRejected(st, "is mislabeled fusable — operator is a");
  EXPECT_NE(st.message().find("DupElim"), std::string::npos)
      << "diagnostic was: " << st.message();
}

TEST(SegmentVerifierTest, RejectsMislabeledBoundarySegment) {
  auto result = Translate("/child::xdoc/desc::*/anc::*/desc::*/@id");
  const algebra::Operator& plan = *result.plan;
  Segmentation seg = SegmentPlan(plan);
  bool flipped = false;
  for (PipelineSegment& s : seg.segments) {
    if (s.fusable) {
      s.fusable = false;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  ExpectRejected(VerifySegments(plan, seg),
                 "is mislabeled non-fusable — all operators are effect-free");
}

TEST(SegmentVerifierTest, RejectsSegmentCountMismatch) {
  auto result = Translate("/child::xdoc/desc::*/@id");
  const algebra::Operator& plan = *result.plan;
  Segmentation seg = SegmentPlan(plan);
  seg.segments.pop_back();
  ExpectRejected(VerifySegments(plan, seg), "segmentation claims");
}

}  // namespace
}  // namespace natix::analysis
