// Golden EXPLAIN ANALYZE snapshots for the five paper benchmark query
// shapes (Figs. 6-10). Counter values are normalized away ("=N" -> "=_")
// so the goldens pin the operator tree STRUCTURE, the counter NAMES and
// the inferred stream-property tags ("{card:..., ord:doc(...), ...}",
// which contain no '=') — the stable output contract of
// obs::QueryStats::RenderAnalyze — without depending on timings or
// document scale. Note Figs. 6-8: the DupElim above the first
// descendant step is gone, removed by the property-justified
// simplifier (the step runs over a duplicate-free non-nested context).

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "api/database.h"

namespace natix {
namespace {

/// Replaces every "=<digits/dots>" with "=_", leaving everything else
/// (labels, register-qualified attribute names, counter names) intact.
std::string Normalize(const std::string& analyze) {
  std::string out;
  out.reserve(analyze.size());
  size_t i = 0;
  while (i < analyze.size()) {
    char c = analyze[i];
    out += c;
    ++i;
    if (c != '=') continue;
    size_t j = i;
    while (j < analyze.size() &&
           (std::isdigit(static_cast<unsigned char>(analyze[j])) ||
            analyze[j] == '.')) {
      ++j;
    }
    if (j > i) {
      out += '_';
      i = j;
    }
  }
  return out;
}

std::string AnalyzeQuery(const std::string& xml, const std::string& query) {
  auto db = Database::CreateTemp();
  EXPECT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  EXPECT_TRUE(info.ok());
  auto compiled = (*db)->Compile(
      query, translate::TranslatorOptions::Improved(),
      /*collect_stats=*/true);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto nodes = (*compiled)->EvaluateNodes(info->root);
  EXPECT_TRUE(nodes.ok());
  return Normalize((*compiled)->ExplainAnalyze());
}

constexpr char kXdoc[] =
    "<xdoc id=\"d0\"><a id=\"n1\"><b id=\"n2\"/><c id=\"n3\"/></a>"
    "<a id=\"n4\"><b id=\"n5\"><c id=\"n6\"/></b></a></xdoc>";

constexpr char kDblp[] =
    "<dblp><article key=\"a1\"><author>A</author><title>T1</title>"
    "</article><article key=\"a2\"><author>B</author><author>C</author>"
    "<title>T2</title></article><inproceedings key=\"p1\">"
    "<title>T3</title></inproceedings></dblp>";

TEST(ExplainAnalyzeGoldenTest, Fig6Query1) {
  EXPECT_EQ(
      AnalyzeQuery(kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id"),
      R"(UnnestMap[c6 := c5/attribute::id] {card:n, dup-free(c6), non-nested(c6), class:attribute} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
  DupElim[c5] {card:n, dup-free(c5), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
    UnnestMap[c5 := c4/descendant::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
      DupElim[c4] {card:n, dup-free(c4), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
        UnnestMap[c4 := c3/ancestor::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
          UnnestMap[c3 := c2/descendant::*] {card:n, ord:doc(c3), dup-free(c3), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
            UnnestMap[c2 := c1/child::xdoc] {card:<=_, ord:doc(c2), dup-free(c2), non-nested(c2), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
              Map[c1 := root*(cn)] {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
                SingletonScan (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
buffer: page_reads=_ page_hits=_ page_writes=_ evictions=_
)");
}

TEST(ExplainAnalyzeGoldenTest, Fig7Query2) {
  EXPECT_EQ(
      AnalyzeQuery(kXdoc, "/child::xdoc/desc::*/pre-sib::*/fol::*/@id"),
      R"(UnnestMap[c6 := c5/attribute::id] {card:n, dup-free(c6), non-nested(c6), class:attribute} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
  DupElim[c5] {card:n, dup-free(c5), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
    UnnestMap[c5 := c4/following::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
      DupElim[c4] {card:n, dup-free(c4), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
        UnnestMap[c4 := c3/preceding-sibling::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
          UnnestMap[c3 := c2/descendant::*] {card:n, ord:doc(c3), dup-free(c3), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
            UnnestMap[c2 := c1/child::xdoc] {card:<=_, ord:doc(c2), dup-free(c2), non-nested(c2), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
              Map[c1 := root*(cn)] {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
                SingletonScan (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
buffer: page_reads=_ page_hits=_ page_writes=_ evictions=_
)");
}

TEST(ExplainAnalyzeGoldenTest, Fig8Query3) {
  EXPECT_EQ(
      AnalyzeQuery(kXdoc, "/child::xdoc/desc::*/anc::*/anc::*/@id"),
      R"(UnnestMap[c6 := c5/attribute::id] {card:n, dup-free(c6), non-nested(c6), class:attribute} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
  DupElim[c5] {card:n, dup-free(c5), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
    UnnestMap[c5 := c4/ancestor::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
      DupElim[c4] {card:n, dup-free(c4), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
        UnnestMap[c4 := c3/ancestor::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
          UnnestMap[c3 := c2/descendant::*] {card:n, ord:doc(c3), dup-free(c3), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
            UnnestMap[c2 := c1/child::xdoc] {card:<=_, ord:doc(c2), dup-free(c2), non-nested(c2), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
              Map[c1 := root*(cn)] {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
                SingletonScan (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
buffer: page_reads=_ page_hits=_ page_writes=_ evictions=_
)");
}

TEST(ExplainAnalyzeGoldenTest, Fig9Query4) {
  EXPECT_EQ(
      AnalyzeQuery(kXdoc, "/child::xdoc/child::*/par::*/desc::*/@id"),
      R"(UnnestMap[c6 := c5/attribute::id] {card:n, dup-free(c6), non-nested(c6), class:attribute} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
  DupElim[c5] {card:n, dup-free(c5), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
    UnnestMap[c5 := c4/descendant::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
      DupElim[c4] {card:n, dup-free(c4), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
        UnnestMap[c4 := c3/parent::*] {card:n, class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
          UnnestMap[c3 := c2/child::*] {card:n, ord:doc(c3), dup-free(c3), non-nested(c3), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
            UnnestMap[c2 := c1/child::xdoc] {card:<=_, ord:doc(c2), dup-free(c2), non-nested(c2), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
              Map[c1 := root*(cn)] {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
                SingletonScan (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
buffer: page_reads=_ page_hits=_ page_writes=_ evictions=_
)");
}

// Fig. 10 representative (DBLP positional query): pins the Counter /
// Tmp^cs_c materialization pipeline and its spool/replay counter names.
// The spool counters only render when nonzero, so this golden needs the
// instrumentation compiled in.
TEST(ExplainAnalyzeGoldenTest, Fig10DblpPositional) {
#if defined(NATIX_OBS_DISABLED)
  GTEST_SKIP() << "observability compiled out (NATIX_OBS=OFF)";
#endif
  EXPECT_EQ(
      AnalyzeQuery(kDblp, "/dblp/article[position() = last()]/title"),
      R"(UnnestMap[c6 := c3/child::title] {card:n, ord:doc(c6), dup-free(c6), non-nested(c6), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
  Select[(cp4 = cs5)] (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
    TmpCs[cs5; context c2] {card:n, ord:grouped(cs5), non-nested(cs5), class:value} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_ spooled=_ replayed=_ groups=_)
      Counter[cp4, reset on c2] (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
        UnnestMap[c3 := c2/child::article] {card:n, ord:doc(c3), dup-free(c3), non-nested(c3), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
          UnnestMap[c2 := c1/child::dblp] {card:<=_, ord:doc(c2), dup-free(c2), non-nested(c2), class:element} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
            Map[c1 := root*(cn)] {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root} (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
              SingletonScan (open=_ next=_ tuples=_ exclusive_ms=_ page_reads=_ page_hits=_)
buffer: page_reads=_ page_hits=_ page_writes=_ evictions=_
)");
}

}  // namespace
}  // namespace natix
