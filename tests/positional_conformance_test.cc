// Positional-semantics conformance for the Limit pushdown (ISSUE 7,
// docs/LIMIT-PUSHDOWN.md): a matrix of positional predicate shapes —
// position() = / < / <= / > / != k, the numeric-literal sugar [3],
// last()-relative forms, nested predicates, reverse axes — is run
// through the algebraic engine with the pushdown on, with it off, and
// with the canonical translation, and cross-checked against both
// main-memory interpreters (memoized and naive). On top of the value
// check, the matrix pins *when the rewrite may fire*: every query
// carries an expectation of whether limit:positional-pushdown appears
// in its rewrite log, so an unsound widening of the gate (reverse
// axes, last()-dependence, repeating reset boundaries) fails here even
// if the results happen to agree on the test documents.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

constexpr char kDoc[] =
    "<r><a id='a1'><b>1</b><b>2</b><b>3</b></a>"
    "<a id='a2'><b>4</b></a>"
    "<a id='a3'><b>5</b><b>6</b></a>"
    "<c><a id='a4'><b>7</b><b>8</b></a></c></r>";

/// Whether the limit:positional-pushdown rewrite must fire for a query
/// under the improved translation. kEither marks shapes where the gate
/// decision is not part of the pinned contract (the value cross-check
/// still applies).
enum class Fires { kYes, kNo, kEither };

struct Case {
  const char* query;
  Fires fires;
};

const Case kMatrix[] = {
    // Literal subscripts and the equivalent explicit forms: the reset
    // boundary is the document element (provably at-most-one), the
    // producing child step is doc-ordered and duplicate-free.
    {"/r/a[2]", Fires::kYes},
    {"/r/a[1]", Fires::kYes},
    {"/r/a[position() = 3]", Fires::kYes},
    {"/r/a[position() < 3]", Fires::kYes},
    {"/r/a[position() <= 2]", Fires::kYes},
    {"/r/a[3 >= position()]", Fires::kYes},
    {"/r/a[2 = position()]", Fires::kYes},
    {"/r/a[position() = 2]/b[1]", Fires::kYes},
    // Out-of-range and boundary constants: statically empty or
    // full-stream shapes the rewrite leaves alone or caps trivially.
    {"/r/a[position() < 1]", Fires::kNo},
    {"/r/a[position() = 99]", Fires::kYes},
    // Upper/inequality comparisons need the tail: no early exit.
    {"/r/a[position() > 2]", Fires::kNo},
    {"/r/a[position() >= 2]", Fires::kNo},
    {"/r/a[position() != 2]", Fires::kNo},
    // last()-dependent predicates must keep the full stream (TmpCs sits
    // between the Select and the Counter).
    {"/r/a[last()]", Fires::kNo},
    {"/r/a[position() = last()]", Fires::kNo},
    {"/r/a[position() = last() - 1]", Fires::kNo},
    // The counter resets per parent on a repeating boundary: a global
    // cap would starve later groups.
    {"//a[2]", Fires::kNo},
    {"//a/b[1]", Fires::kNo},
    {"/r/*/a[1]", Fires::kNo},
    // Reverse axes: the step stream is not doc-ordered, the gate blocks.
    {"/r/a/preceding-sibling::*[1]", Fires::kNo},
    {"//b/ancestor::*[1]", Fires::kNo},
    // Whole-nodeset positionals and nested predicates: fire only when
    // the inference proves the stream; not pinned either way.
    {"(//a)[2]", Fires::kEither},
    {"(//a | //b)[3]", Fires::kEither},
    {"//a[b[1]]", Fires::kEither},
    {"//a[b[position() = 2]]/@id", Fires::kEither},
};

std::string RenderInterp(const interp::Object& v) {
  std::string out = "nodes:";
  if (v.kind != interp::Object::Kind::kNodeSet) return "non-nodeset";
  for (const dom::Node* n : v.nodes) {
    out += " " + std::to_string(n->order);
  }
  return out;
}

StatusOr<std::string> RunAlgebraic(Database* db, storage::NodeId root,
                                   const std::string& query,
                                   const translate::TranslatorOptions& options,
                                   bool* fired = nullptr) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled,
                         db->Compile(query, options));
  if (fired != nullptr) {
    *fired = false;
    for (const algebra::RewriteEvent& event : compiled->rewrites()) {
      if (event.rule == "limit:positional-pushdown") *fired = true;
    }
  }
  NATIX_ASSIGN_OR_RETURN(std::vector<storage::StoredNode> nodes,
                         compiled->EvaluateNodes(root));
  std::string out = "nodes:";
  for (const storage::StoredNode& n : nodes) {
    NATIX_ASSIGN_OR_RETURN(uint64_t order, n.order());
    out += " " + std::to_string(order);
  }
  return out;
}

TEST(PositionalConformanceTest, MatrixAgreesAcrossEnginesAndPinsTheGate) {
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", kDoc);
  ASSERT_TRUE(info.ok());
  auto dom_doc = dom::ParseDocument(kDoc);
  ASSERT_TRUE(dom_doc.ok());

  for (const Case& c : kMatrix) {
    // Reference: memoized interpreter.
    interp::EvaluatorOptions memo;
    auto expected = interp::Evaluator::Run(dom_doc->get(), c.query,
                                           (*dom_doc)->root(), memo);
    ASSERT_TRUE(expected.ok()) << c.query;
    std::string expected_str = RenderInterp(*expected);

    // Second interpreter: naive (no memoization).
    interp::EvaluatorOptions naive;
    naive.memoize = false;
    auto naive_result = interp::Evaluator::Run(dom_doc->get(), c.query,
                                               (*dom_doc)->root(), naive);
    ASSERT_TRUE(naive_result.ok()) << c.query;
    EXPECT_EQ(RenderInterp(*naive_result), expected_str)
        << "naive interpreter diverges on " << c.query;

    // Algebraic engine with the pushdown on (the default)…
    bool fired = false;
    auto with_limit =
        RunAlgebraic(db->get(), info->root, c.query,
                     translate::TranslatorOptions::Improved(), &fired);
    ASSERT_TRUE(with_limit.ok())
        << c.query << ": " << with_limit.status().ToString();
    EXPECT_EQ(*with_limit, expected_str)
        << "pushdown-on plan diverges on " << c.query;
    switch (c.fires) {
      case Fires::kYes:
        EXPECT_TRUE(fired)
            << "limit:positional-pushdown must fire on " << c.query;
        break;
      case Fires::kNo:
        EXPECT_FALSE(fired)
            << "limit:positional-pushdown must NOT fire on " << c.query;
        break;
      case Fires::kEither:
        break;
    }

    // …with it off (the ablation)…
    translate::TranslatorOptions no_limit;
    no_limit.limit_pushdown = false;
    bool fired_off = true;
    auto without_limit =
        RunAlgebraic(db->get(), info->root, c.query, no_limit, &fired_off);
    ASSERT_TRUE(without_limit.ok()) << c.query;
    EXPECT_FALSE(fired_off) << c.query;
    EXPECT_EQ(*without_limit, expected_str)
        << "pushdown-off plan diverges on " << c.query;

    // …and the canonical textbook translation.
    auto canonical =
        RunAlgebraic(db->get(), info->root, c.query,
                     translate::TranslatorOptions::Canonical());
    ASSERT_TRUE(canonical.ok()) << c.query;
    EXPECT_EQ(*canonical, expected_str)
        << "canonical plan diverges on " << c.query;
  }

  analysis::SetVerificationEnabled(was_enabled);
}

TEST(PositionalConformanceTest, TmpCsReplayFreshCounterPerOuterBinding) {
  // Regression: the position() counter inside a last()-carrying
  // predicate is materialized through Tmp^cs (spool/replay in
  // materialize_ops); each outer binding replays its own group, so the
  // counter must restart at 1 per group. A leaked counter would pick
  // the wrong "last" sibling for every group after the first.
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  constexpr char kGroups[] =
      "<r><a><b>1</b><b>2</b></a><a><b>3</b></a>"
      "<a><b>4</b><b>5</b><b>6</b></a></r>";
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", kGroups);
  ASSERT_TRUE(info.ok());

  const struct {
    const char* query;
    const char* expected;
  } cases[] = {
      // The last b of each group: 2, 3, 6 — three matches, one per
      // group, so each replayed group saw position() restart.
      {"//a/b[position() = last()]", "2|3|6"},
      {"//a/b[last()]", "2|3|6"},
      // Second-from-last: only the 2-element and 3-element groups have
      // one.
      {"//a/b[position() = last() - 1]", "1|5"},
      // Every a has a last b, so the filter keeps all three groups.
      {"string(count(//a[b[position() = last()]]))", "3"},
      // Plain per-group positional under replay: fresh counter per a.
      {"//a/b[2]", "2|5"},
  };
  for (const auto& c : cases) {
    auto compiled = (*db)->Compile(c.query);
    ASSERT_TRUE(compiled.ok()) << c.query;
    std::string actual;
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(info->root);
      ASSERT_TRUE(nodes.ok())
          << c.query << ": " << nodes.status().ToString();
      for (const storage::StoredNode& n : *nodes) {
        auto text = n.string_value();
        ASSERT_TRUE(text.ok());
        if (!actual.empty()) actual += "|";
        actual += *text;
      }
    } else {
      auto value = (*compiled)->EvaluateString(info->root);
      ASSERT_TRUE(value.ok()) << c.query;
      actual = *value;
    }
    EXPECT_EQ(actual, c.expected) << c.query;
  }

  analysis::SetVerificationEnabled(was_enabled);
}

TEST(PositionalConformanceTest, ApiResultLimitCapsOrderedResults) {
  // Paginated serving: result_limit wraps the plan in a top-level Limit.
  // The result stream of /r/a/b is provably doc-ordered, so the cap is
  // a pure early exit — and must return exactly the first k of the full
  // result.
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", kDoc);
  ASSERT_TRUE(info.ok());

  auto full = (*db)->Compile("/r/a/b");
  ASSERT_TRUE(full.ok());
  auto full_nodes = (*full)->EvaluateNodes(info->root);
  ASSERT_TRUE(full_nodes.ok());
  ASSERT_EQ(full_nodes->size(), 6u);

  for (uint64_t k : {1u, 2u, 6u, 99u}) {
    translate::TranslatorOptions options;
    options.result_limit = k;
    auto capped = (*db)->Compile("/r/a/b", options);
    ASSERT_TRUE(capped.ok()) << "k=" << k;
    bool logged = false;
    for (const algebra::RewriteEvent& event : (*capped)->rewrites()) {
      if (event.rule == "limit:api-result-limit") logged = true;
    }
    EXPECT_TRUE(logged) << "k=" << k;
    auto nodes = (*capped)->EvaluateNodes(info->root);
    ASSERT_TRUE(nodes.ok()) << "k=" << k;
    size_t expect = std::min<size_t>(k, full_nodes->size());
    ASSERT_EQ(nodes->size(), expect) << "k=" << k;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(*(*nodes)[i].order(), *(*full_nodes)[i].order())
          << "k=" << k << " index " << i;
    }
  }

  analysis::SetVerificationEnabled(was_enabled);
}

TEST(PositionalConformanceTest, ApiResultLimitSortsUnorderedResults) {
  // A plan whose result stream is NOT provably doc-ordered (ancestor
  // steps destroy the order claim) gains an in-plan sort below the cap:
  // the capped result must still be the first k of the *document-order*
  // full result, not the first k the plan happened to produce.
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", kDoc);
  ASSERT_TRUE(info.ok());

  const char* query = "//b/ancestor::*";
  auto full = (*db)->Compile(query);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE((*full)->ResultDocumentOrdered());
  auto full_nodes = (*full)->EvaluateNodes(info->root);  // API-sorted
  ASSERT_TRUE(full_nodes.ok());
  ASSERT_GE(full_nodes->size(), 3u);

  for (uint64_t k : {1u, 2u, 3u}) {
    translate::TranslatorOptions options;
    options.result_limit = k;
    auto capped = (*db)->Compile(query, options);
    ASSERT_TRUE(capped.ok()) << "k=" << k;
    auto nodes = (*capped)->EvaluateNodes(info->root);
    ASSERT_TRUE(nodes.ok()) << "k=" << k;
    ASSERT_EQ(nodes->size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(*(*nodes)[i].order(), *(*full_nodes)[i].order())
          << "k=" << k << " index " << i;
    }
  }

  analysis::SetVerificationEnabled(was_enabled);
}

}  // namespace
}  // namespace natix
