// Every combination of the Sec. 4 translation switches must produce the
// same results — the improvements are performance rewrites, never
// semantic ones. Runs a query corpus under all 2^5 option combinations
// and requires agreement with the all-off (canonical) baseline.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/database.h"
#include "obs/lock_ledger.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "server/server.h"

namespace natix {
namespace {

constexpr char kDoc[] =
    "<r><a i='1'><b/><b><c/></b></a><a i='2'><b><c/><c/></b></a>"
    "<a i='3'/>t<a i='4'><b/><b/><b/></a></r>";
// (note: intentionally includes nesting, text, repeated names)

const char* kQueries[] = {
    "//b",
    "//a/b/c",
    "//c/ancestor::a/@i",
    "//b[1]",
    "//b[last()]",
    "//a[b][2]/@i",
    "//a[count(b) > 1]/@i",
    "//a[b/c]/@i",
    "(//b)[3]",
    "(//b/ancestor::a)[last()]/@i",
    "//a[.//c and @i != '9']/@i",
    "count(//a[descendant::c]/following::b)",
    "sum(//@i)",
};

TEST(OptionMatrixTest, AllCombinationsAgree) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("d", kDoc);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  for (const char* query : kQueries) {
    std::vector<std::string> results;
    for (int mask = 0; mask < 32; ++mask) {
      translate::TranslatorOptions options;
      options.stacked_outer_paths = (mask & 1) != 0;
      options.push_duplicate_elimination = (mask & 2) != 0;
      options.memoize_inner_paths = (mask & 4) != 0;
      options.split_expensive_predicates = (mask & 8) != 0;
      options.simplify_plan = (mask & 16) != 0;
      auto compiled = (*db)->Compile(query, options);
      ASSERT_TRUE(compiled.ok())
          << query << " mask=" << mask << ": "
          << compiled.status().ToString();
      std::string rendered;
      if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
        auto nodes = (*compiled)->EvaluateNodes(info->root);
        ASSERT_TRUE(nodes.ok()) << query << " mask=" << mask;
        for (const auto& node : *nodes) {
          rendered += std::to_string(*node.order()) + " ";
        }
      } else {
        auto value = (*compiled)->EvaluateString(info->root);
        ASSERT_TRUE(value.ok()) << query << " mask=" << mask;
        rendered = *value;
      }
      results.push_back(std::move(rendered));
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i], results[0])
          << query << " diverges at option mask " << i;
    }
  }
}

// The observability surface (tracer, metrics registry, slow-query log)
// is config-agnostic at call sites: the same code compiles under
// NATIX_OBS=ON and =OFF, where every instrument becomes an inline
// no-op. This test runs in both CI configurations.
TEST(OptionMatrixTest, ObservabilitySurfaceWorksInBothBuildConfigs) {
  obs::Tracer::Global().Start();
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("d", kDoc);
  ASSERT_TRUE(info.ok());
  auto nodes = (*db)->QueryNodes("d", "//b");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 6u);
  {
    obs::ScopedSpan named("test/span");
    obs::ScopedSpan detailed("test/span", "payload");
  }
  std::string json = Database::StopTrace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.exec_ns.Record(5);
  metrics.queries_executed.Add();
  EXPECT_FALSE(metrics.SnapshotJson().empty());
  EXPECT_FALSE(metrics.RenderText().empty());
#if defined(NATIX_OBS_DISABLED)
  // Every instrument must have compiled to nothing.
  EXPECT_EQ(obs::MonotonicNowNs(), 0u);
  EXPECT_EQ(metrics.exec_ns.count(), 0u);
  EXPECT_EQ(metrics.queries_executed.value(), 0u);
  EXPECT_FALSE(metrics.slow_log().ShouldLog(~uint64_t{0}));
  EXPECT_NE(metrics.RenderText().find("disabled"), std::string::npos);
  obs::Tracer::Global().Start();
  EXPECT_TRUE(obs::Tracer::Global().Stop().empty());
#else
  EXPECT_GT(obs::MonotonicNowNs(), 0u);
  EXPECT_GE(metrics.exec_ns.count(), 1u);
#endif
}

// The serving-plane additions obey the same discipline: gauges, the
// admission/deadline counters, the queue-wait histogram and the
// Prometheus renderer all compile and behave in both configurations.
TEST(OptionMatrixTest, ServingObservabilitySurfaceWorksInBothConfigs) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.queue_depth.Add(2);
  metrics.queue_depth.Sub(1);
  metrics.requests_in_flight.Set(3);
  metrics.http_requests.Add();
  metrics.requests_rejected.Add();
  metrics.deadline_exceeded.Add();
  metrics.queries_cancelled.Add();
  metrics.queue_wait_ns.Record(1500);

  const std::string exposition = obs::RenderPrometheus(metrics);
#if defined(NATIX_OBS_DISABLED)
  EXPECT_EQ(exposition, "{\"disabled\":true}");
  EXPECT_EQ(metrics.queue_depth.value(), 0);
  EXPECT_EQ(metrics.http_requests.value(), 0u);
  EXPECT_EQ(metrics.queue_wait_ns.count(), 0u);
#else
  EXPECT_EQ(metrics.queue_depth.value(), 1);
  EXPECT_EQ(metrics.requests_in_flight.value(), 3);
  EXPECT_GE(metrics.http_requests.value(), 1u);
  EXPECT_GE(metrics.queue_wait_ns.count(), 1u);
  EXPECT_NE(exposition.find("natix_queue_wait_ns_bucket"),
            std::string::npos);
  EXPECT_NE(exposition.find("natix_deadline_exceeded_total"),
            std::string::npos);
  // A gauge forced negative by a racy Sub clamps at zero for rendering.
  obs::GaugeCell gauge;
  gauge.Sub(5);
  EXPECT_EQ(gauge.value(), 0);
  metrics.requests_in_flight.Set(0);
  metrics.queue_depth.Set(0);
#endif

  // The in-process renderings behind /metrics and /statusz work without
  // a socket in either config.
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", kDoc).ok());
  server::Server server(db->get(), server::ServerOptions());
  const std::string rendered = server.RenderMetrics();
  EXPECT_FALSE(rendered.empty());
#if defined(NATIX_OBS_DISABLED)
  EXPECT_EQ(rendered, "{\"disabled\":true}");
#else
  EXPECT_NE(rendered.find("natix_uptime_seconds"), std::string::npos);
#endif
  EXPECT_NE(server.RenderStatus().find("\"documents\":[\"d\"]"),
            std::string::npos);
}

// The Layer-4 static analyses (resource verifier, fusability
// segmentation, lock-order ledger) compile cleanly and keep their
// surfaces with observability off — analysis is a compiler concern, not
// an obs feature; only the ledger's runtime recording is obs-gated.
TEST(OptionMatrixTest, StaticAnalysisSurfaceWorksInBothConfigs) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", kDoc).ok());
  auto compiled = (*db)->Compile("//a/b/c");
  ASSERT_TRUE(compiled.ok());
  // Verification (including the Layer-4 resource pass) ran or was
  // skipped per build mode, never rejected a compiler-produced plan.
  EXPECT_FALSE((*compiled)->VerificationReport().empty());
  // Segmentation is pure analysis: present in both configs.
  const std::string& segments = (*compiled)->ExplainSegments();
  EXPECT_NE(segments.find("pipeline segments:"), std::string::npos);
  EXPECT_NE((*compiled)->ExplainJson().find("\"segments\":["),
            std::string::npos);

  // The lock ledger keeps its surface in both configs; under
  // NATIX_OBS_DISABLED it is a no-op.
  obs::LockLedger& ledger = obs::LockLedger::Global();
  const std::string graph = ledger.GraphJson();
  EXPECT_EQ(graph.front(), '{');
#if defined(NATIX_OBS_DISABLED)
  EXPECT_EQ(graph, "{\"disabled\":true}");
#else
  EXPECT_NE(graph.find("\"mode\":"), std::string::npos);
#endif
  EXPECT_FALSE(ledger.HasCycle() && ledger.Cycles().empty());
  EXPECT_NE(server::Server(db->get(), server::ServerOptions())
                .RenderStatus()
                .find("\"lock_ledger\":{"),
            std::string::npos);
}

}  // namespace
}  // namespace natix
