#include "xpath/sema.h"

#include <gtest/gtest.h>

#include <string>

#include "xpath/fold.h"
#include "xpath/functions.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"

namespace natix::xpath {
namespace {

/// Runs parse + sema and renders the annotated AST.
std::string Annotated(const std::string& query) {
  auto expr = ParseXPath(query);
  if (!expr.ok()) return "ERROR " + expr.status().ToString();
  Status st = Analyze(expr->get());
  if (!st.ok()) return "ERROR " + st.ToString();
  return (*expr)->ToString();
}

ExprType TypeOf(const std::string& query) {
  auto expr = ParseXPath(query);
  NATIX_CHECK(expr.ok());
  NATIX_CHECK(Analyze(expr->get()).ok());
  return (*expr)->type;
}

TEST(SemaTest, DerivesTypes) {
  EXPECT_EQ(TypeOf("1 + 2"), ExprType::kNumber);
  EXPECT_EQ(TypeOf("'x'"), ExprType::kString);
  EXPECT_EQ(TypeOf("1 = 2"), ExprType::kBoolean);
  EXPECT_EQ(TypeOf("a/b"), ExprType::kNodeSet);
  EXPECT_EQ(TypeOf("a | b"), ExprType::kNodeSet);
  EXPECT_EQ(TypeOf("count(a)"), ExprType::kNumber);
  EXPECT_EQ(TypeOf("concat('a', 'b')"), ExprType::kString);
  EXPECT_EQ(TypeOf("not(a)"), ExprType::kBoolean);
  EXPECT_EQ(TypeOf("$v"), ExprType::kUnknown);
}

TEST(SemaTest, NumberPredicateBecomesPositionTest) {
  EXPECT_EQ(Annotated("a[3]"), "child::a[(position() = 3)]");
  EXPECT_EQ(Annotated("a[last()]"), "child::a[(position() = last())]");
  EXPECT_EQ(Annotated("a[last() - 1]"),
            "child::a[(position() = (last() - 1))]");
}

TEST(SemaTest, NodeSetPredicateGetsBooleanConversion) {
  EXPECT_EQ(Annotated("a[b]"), "child::a[boolean(child::b)]");
}

TEST(SemaTest, StringPredicateGetsBooleanConversion) {
  EXPECT_EQ(Annotated("a['x']"), "child::a[boolean('x')]");
}

TEST(SemaTest, BooleanPredicateUnchanged) {
  EXPECT_EQ(Annotated("a[b = 'x']"),
            "child::a[(child::b = 'x')]");
}

TEST(SemaTest, ArithmeticOperandsGetNumberConversion) {
  EXPECT_EQ(Annotated("'1' + 2"), "(number('1') + 2)");
  EXPECT_EQ(Annotated("a + 1"), "(number(child::a) + 1)");
}

TEST(SemaTest, LogicalOperandsGetBooleanConversion) {
  EXPECT_EQ(Annotated("a and 1"),
            "(boolean(child::a) and boolean(1))");
}

TEST(SemaTest, StringFunctionArgsGetStringConversion) {
  EXPECT_EQ(Annotated("contains(a, 1)"),
            "contains(string(child::a), string(1))");
}

TEST(SemaTest, OptionalContextArgumentsExpanded) {
  EXPECT_EQ(Annotated("string()"), "string(self::node())");
  EXPECT_EQ(Annotated("number()"), "number(self::node())");
  EXPECT_EQ(Annotated("string-length()"),
            "string-length(string(self::node()))");
  EXPECT_EQ(Annotated("normalize-space()"),
            "normalize-space(string(self::node()))");
  EXPECT_EQ(Annotated("name()"), "name(self::node())");
  EXPECT_EQ(Annotated("local-name()"), "local-name(self::node())");
}

TEST(SemaTest, ComparisonOperandsKeptForTranslator) {
  // Node-set comparisons keep node-set operands.
  EXPECT_EQ(Annotated("a = 'x'"), "(child::a = 'x')");
  EXPECT_EQ(Annotated("a < b"), "(child::a < child::b)");
}

TEST(SemaTest, Errors) {
  EXPECT_TRUE(Annotated("frobnicate()").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("count()").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("count(1, 2)").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("count(1)").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("sum('x')").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("1 | 2").starts_with("ERROR"));
  EXPECT_TRUE(Annotated("count($v)").starts_with("ERROR NotSupported"));
  EXPECT_TRUE(Annotated("$v/a").starts_with("ERROR NotSupported"));
  EXPECT_TRUE(Annotated("$v[1]").starts_with("ERROR NotSupported"));
}

TEST(SemaTest, FunctionIdsResolved) {
  auto expr = ParseXPath("count(a)");
  ASSERT_TRUE(expr.ok());
  ASSERT_TRUE(Analyze(expr->get()).ok());
  EXPECT_EQ(static_cast<FunctionId>((*expr)->function_id),
            FunctionId::kCount);
}

/// Parse + sema + normalize, then inspect the first step's first
/// predicate classification.
PredicateInfo FirstPredicateInfo(const std::string& query) {
  auto expr = ParseXPath(query);
  NATIX_CHECK(expr.ok());
  NATIX_CHECK(Analyze(expr->get()).ok());
  Normalize(expr->get());
  NATIX_CHECK(!(*expr)->steps.empty());
  NATIX_CHECK(!(*expr)->steps[0].predicate_info.empty());
  return (*expr)->steps[0].predicate_info[0];
}

TEST(NormalizerTest, PositionDetected) {
  PredicateInfo info = FirstPredicateInfo("a[position() = 2]");
  EXPECT_TRUE(info.uses_position);
  EXPECT_FALSE(info.uses_last);
  EXPECT_FALSE(info.has_nested_path);
}

TEST(NormalizerTest, NumberPredicateCountsAsPositional) {
  PredicateInfo info = FirstPredicateInfo("a[2]");
  EXPECT_TRUE(info.uses_position);
  EXPECT_FALSE(info.uses_last);
}

TEST(NormalizerTest, LastDetectedAndImpliesPosition) {
  PredicateInfo info = FirstPredicateInfo("a[last()]");
  EXPECT_TRUE(info.uses_last);
  EXPECT_TRUE(info.uses_position);
}

TEST(NormalizerTest, NestedPathDetected) {
  PredicateInfo info = FirstPredicateInfo("a[b/c]");
  EXPECT_TRUE(info.has_nested_path);
  EXPECT_TRUE(info.expensive);
  EXPECT_FALSE(info.uses_position);
}

TEST(NormalizerTest, PositionInsideNestedPredicateDoesNotCount) {
  // The position() belongs to the nested step b's context.
  PredicateInfo info = FirstPredicateInfo("a[b[position() = 1]]");
  EXPECT_FALSE(info.uses_position);
  EXPECT_TRUE(info.has_nested_path);
}

TEST(NormalizerTest, PositionInFunctionArgCounts) {
  PredicateInfo info = FirstPredicateInfo("a[position() + 1 = 2]");
  EXPECT_TRUE(info.uses_position);
}

TEST(NormalizerTest, AtomicComparisonIsCheap) {
  PredicateInfo info = FirstPredicateInfo("a[position() = 2]");
  EXPECT_FALSE(info.expensive);
}

/// Full pipeline then fold; render.
std::string Folded(const std::string& query) {
  auto expr = ParseXPath(query);
  NATIX_CHECK(expr.ok());
  NATIX_CHECK(Analyze(expr->get()).ok());
  FoldConstants(expr->get());
  return (*expr)->ToString();
}

TEST(FoldTest, Arithmetic) {
  EXPECT_EQ(Folded("1 + 2 * 3"), "7");
  EXPECT_EQ(Folded("10 div 4"), "2.5");
  EXPECT_EQ(Folded("7 mod 3"), "1");
  EXPECT_EQ(Folded("-(2 + 3)"), "-5");
  EXPECT_EQ(Folded("1 div 0"), "Infinity");
  EXPECT_EQ(Folded("0 div 0"), "NaN");
}

TEST(FoldTest, Comparisons) {
  EXPECT_EQ(Folded("1 < 2"), "true()");
  EXPECT_EQ(Folded("'a' = 'b'"), "false()");
  EXPECT_EQ(Folded("2 >= 2"), "true()");
}

TEST(FoldTest, BooleanFunctionsAndOperators) {
  EXPECT_EQ(Folded("true() and false()"), "false()");
  EXPECT_EQ(Folded("true() or false()"), "true()");
  EXPECT_EQ(Folded("not(true())"), "false()");
  // Short-circuit folding with a non-literal operand.
  EXPECT_EQ(Folded("false() and a"), "false()");
  EXPECT_EQ(Folded("true() or a"), "true()");
}

TEST(FoldTest, StringFunctions) {
  EXPECT_EQ(Folded("concat('a', 'b', 'c')"), "'abc'");
  EXPECT_EQ(Folded("contains('hello', 'ell')"), "true()");
  EXPECT_EQ(Folded("string-length('four')"), "4");
  EXPECT_EQ(Folded("normalize-space('  a  b ')"), "'a b'");
  EXPECT_EQ(Folded("translate('bar', 'abc', 'ABC')"), "'BAr'");
  EXPECT_EQ(Folded("substring-before('1999/04', '/')"), "'1999'");
  EXPECT_EQ(Folded("starts-with('abc', 'ab')"), "true()");
}

TEST(FoldTest, NumberFunctions) {
  EXPECT_EQ(Folded("floor(2.7)"), "2");
  EXPECT_EQ(Folded("ceiling(2.1)"), "3");
  EXPECT_EQ(Folded("round(2.5)"), "3");
  EXPECT_EQ(Folded("number('12')"), "12");
  EXPECT_EQ(Folded("string(12)"), "'12'");
}

TEST(FoldTest, FoldsInsidePredicates) {
  EXPECT_EQ(Folded("a[position() = 1 + 1]"),
            "child::a[(position() = 2)]");
}

TEST(FoldTest, LeavesContextDependentAlone) {
  EXPECT_EQ(Folded("position() + 1"), "(position() + 1)");
  EXPECT_EQ(Folded("count(a) + 1"), "(count(child::a) + 1)");
  EXPECT_EQ(Folded("$v + 1"), "(number($v) + 1)");
}

}  // namespace
}  // namespace natix::xpath
