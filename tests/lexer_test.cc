#include "xpath/lexer.h"

#include <gtest/gtest.h>

#include <string>

namespace natix::xpath {
namespace {

/// Renders the token stream compactly for assertions.
std::string Lex(const std::string& input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return "ERROR";
  std::string out;
  for (const Token& t : *tokens) {
    if (!out.empty()) out += " ";
    switch (t.kind) {
      case TokenKind::kEnd:
        out += "$";
        break;
      case TokenKind::kName:
        out += "N(" + t.text + ")";
        break;
      case TokenKind::kNumber:
        out += "#(" + t.text + ")";
        break;
      case TokenKind::kLiteral:
        out += "L(" + t.text + ")";
        break;
      case TokenKind::kVariable:
        out += "$(" + t.text + ")";
        break;
      case TokenKind::kLParen:
        out += "(";
        break;
      case TokenKind::kRParen:
        out += ")";
        break;
      case TokenKind::kLBracket:
        out += "[";
        break;
      case TokenKind::kRBracket:
        out += "]";
        break;
      case TokenKind::kDot:
        out += ".";
        break;
      case TokenKind::kDotDot:
        out += "..";
        break;
      case TokenKind::kAt:
        out += "@";
        break;
      case TokenKind::kComma:
        out += ",";
        break;
      case TokenKind::kDoubleColon:
        out += "::";
        break;
      case TokenKind::kSlash:
        out += "/";
        break;
      case TokenKind::kDoubleSlash:
        out += "//";
        break;
      case TokenKind::kPipe:
        out += "|";
        break;
      case TokenKind::kPlus:
        out += "+";
        break;
      case TokenKind::kMinus:
        out += "-";
        break;
      case TokenKind::kEq:
        out += "=";
        break;
      case TokenKind::kNe:
        out += "!=";
        break;
      case TokenKind::kLt:
        out += "<";
        break;
      case TokenKind::kLe:
        out += "<=";
        break;
      case TokenKind::kGt:
        out += ">";
        break;
      case TokenKind::kGe:
        out += ">=";
        break;
      case TokenKind::kStar:
        out += "*";
        break;
    }
  }
  return out;
}

TEST(LexerTest, PathTokens) {
  EXPECT_EQ(Lex("/a//b"), "/ N(a) // N(b) $");
  EXPECT_EQ(Lex("child::a"), "N(child) :: N(a) $");
  EXPECT_EQ(Lex("@id"), "@ N(id) $");
  EXPECT_EQ(Lex(".."), ".. $");
  EXPECT_EQ(Lex("."), ". $");
}

TEST(LexerTest, NamesWithDashesAndDots) {
  EXPECT_EQ(Lex("pre-sib"), "N(pre-sib) $");
  EXPECT_EQ(Lex("a.b-c"), "N(a.b-c) $");
  // A freestanding minus is an operator; inside a name it is part of it.
  EXPECT_EQ(Lex("a - b"), "N(a) - N(b) $");
  EXPECT_EQ(Lex("a -b"), "N(a) - N(b) $");
}

TEST(LexerTest, QNamesKeepSingleColons) {
  EXPECT_EQ(Lex("xml:lang"), "N(xml:lang) $");
  // "axis::test" splits at the double colon, even after a QName.
  EXPECT_EQ(Lex("ns:a::b"), "N(ns:a) :: N(b) $");
  EXPECT_EQ(Lex("ancestor::x"), "N(ancestor) :: N(x) $");
}

TEST(LexerTest, NumbersAndLiterals) {
  EXPECT_EQ(Lex("3.14"), "#(3.14) $");
  EXPECT_EQ(Lex(".5"), "#(.5) $");
  EXPECT_EQ(Lex("10."), "#(10.) $");
  EXPECT_EQ(Lex("'abc'"), "L(abc) $");
  EXPECT_EQ(Lex("\"x y\""), "L(x y) $");
  EXPECT_EQ(Lex("''"), "L() $");
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Lex("a=b!=c<d<=e>f>=g"),
            "N(a) = N(b) != N(c) < N(d) <= N(e) > N(f) >= N(g) $");
  EXPECT_EQ(Lex("a+b*c|d"), "N(a) + N(b) * N(c) | N(d) $");
}

TEST(LexerTest, Variables) {
  EXPECT_EQ(Lex("$x + $long-name"), "$(x) + $(long-name) $");
}

TEST(LexerTest, Whitespace) {
  EXPECT_EQ(Lex("  a \t\n /  b  "), "N(a) / N(b) $");
  EXPECT_EQ(Lex(""), "$");
}

TEST(LexerTest, Positions) {
  auto tokens = Tokenize("ab + cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 3u);
  EXPECT_EQ((*tokens)[2].position, 5u);
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Lex("'unterminated"), "ERROR");
  EXPECT_EQ(Lex("$"), "ERROR");
  EXPECT_EQ(Lex("!"), "ERROR");
  EXPECT_EQ(Lex("#"), "ERROR");
}

}  // namespace
}  // namespace natix::xpath
