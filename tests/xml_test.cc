#include "xml/reader.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/escape.h"

namespace natix::xml {
namespace {

/// Drains the reader, rendering events compactly for assertions:
/// "S:name(attrs) E:name T:text C:comment P:target|data".
std::string Render(std::string_view input) {
  Reader reader(input);
  std::string out;
  while (true) {
    Reader::Event event;
    Status st = reader.Next(&event);
    if (!st.ok()) return "ERROR " + st.ToString();
    switch (event.kind) {
      case EventKind::kEndDocument:
        return out;
      case EventKind::kStartElement: {
        out += "S:" + event.name;
        if (!event.attributes.empty()) {
          out += "(";
          for (size_t i = 0; i < event.attributes.size(); ++i) {
            if (i > 0) out += ",";
            out += event.attributes[i].name + "=" + event.attributes[i].value;
          }
          out += ")";
        }
        out += " ";
        break;
      }
      case EventKind::kEndElement:
        out += "E:" + event.name + " ";
        break;
      case EventKind::kText:
        out += "T:" + event.text + " ";
        break;
      case EventKind::kComment:
        out += "C:" + event.text + " ";
        break;
      case EventKind::kProcessingInstruction:
        out += "P:" + event.name + "|" + event.text + " ";
        break;
    }
  }
}

TEST(XmlReaderTest, SimpleElement) {
  EXPECT_EQ(Render("<a/>"), "S:a E:a ");
  EXPECT_EQ(Render("<a></a>"), "S:a E:a ");
}

TEST(XmlReaderTest, NestedElementsAndText) {
  EXPECT_EQ(Render("<a><b>hi</b>x</a>"), "S:a S:b T:hi E:b T:x E:a ");
}

TEST(XmlReaderTest, Attributes) {
  EXPECT_EQ(Render("<a x=\"1\" y='two'/>"), "S:a(x=1,y=two) E:a ");
}

TEST(XmlReaderTest, AttributeValueNormalization) {
  // Tabs and newlines in attribute values become spaces.
  EXPECT_EQ(Render("<a x=\"p\tq\nr\"/>"), "S:a(x=p q r) E:a ");
}

TEST(XmlReaderTest, BuiltinEntities) {
  EXPECT_EQ(Render("<a>&lt;&gt;&amp;&apos;&quot;</a>"), "S:a T:<>&'\" E:a ");
}

TEST(XmlReaderTest, CharacterReferences) {
  EXPECT_EQ(Render("<a>&#65;&#x42;</a>"), "S:a T:AB E:a ");
  EXPECT_EQ(Render("<a>&#233;</a>"), "S:a T:\xC3\xA9 E:a ");
}

TEST(XmlReaderTest, EntitiesInAttributes) {
  EXPECT_EQ(Render("<a x=\"&amp;&#48;\"/>"), "S:a(x=&0) E:a ");
}

TEST(XmlReaderTest, CData) {
  EXPECT_EQ(Render("<a><![CDATA[<not> &markup;]]></a>"),
            "S:a T:<not> &markup; E:a ");
}

TEST(XmlReaderTest, EmptyCDataProducesNoEvent) {
  EXPECT_EQ(Render("<a><![CDATA[]]></a>"), "S:a E:a ");
}

TEST(XmlReaderTest, Comment) {
  EXPECT_EQ(Render("<a><!-- hello --></a>"), "S:a C: hello  E:a ");
}

TEST(XmlReaderTest, CommentBeforeRoot) {
  EXPECT_EQ(Render("<!--top--><a/>"), "C:top S:a E:a ");
}

TEST(XmlReaderTest, ProcessingInstruction) {
  EXPECT_EQ(Render("<a><?php echo 1; ?></a>"), "S:a P:php|echo 1;  E:a ");
}

TEST(XmlReaderTest, XmlDeclarationIsSkipped) {
  EXPECT_EQ(Render("<?xml version=\"1.0\"?><a/>"), "S:a E:a ");
}

TEST(XmlReaderTest, DoctypeIsSkipped) {
  EXPECT_EQ(Render("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>"), "S:a E:a ");
}

TEST(XmlReaderTest, WhitespaceAroundRootIgnored) {
  EXPECT_EQ(Render("  \n<a/>\n  "), "S:a E:a ");
}

TEST(XmlReaderTest, MismatchedTagFails) {
  EXPECT_TRUE(Render("<a><b></a></b>").starts_with("ERROR"));
}

TEST(XmlReaderTest, UnclosedElementFails) {
  EXPECT_TRUE(Render("<a><b>").starts_with("ERROR"));
}

TEST(XmlReaderTest, MultipleRootsFail) {
  EXPECT_TRUE(Render("<a/><b/>").starts_with("ERROR"));
}

TEST(XmlReaderTest, TextOutsideRootFails) {
  EXPECT_TRUE(Render("<a/>junk").starts_with("ERROR"));
  EXPECT_TRUE(Render("junk<a/>").starts_with("ERROR"));
}

TEST(XmlReaderTest, UnknownEntityFails) {
  EXPECT_TRUE(Render("<a>&unknown;</a>").starts_with("ERROR"));
}

TEST(XmlReaderTest, DuplicateAttributeFails) {
  EXPECT_TRUE(Render("<a x='1' x='2'/>").starts_with("ERROR"));
}

TEST(XmlReaderTest, LtInAttributeFails) {
  EXPECT_TRUE(Render("<a x='<'/>").starts_with("ERROR"));
}

TEST(XmlReaderTest, EmptyInputFails) {
  EXPECT_TRUE(Render("").starts_with("ERROR"));
  EXPECT_TRUE(Render("   ").starts_with("ERROR"));
}

TEST(XmlReaderTest, CDataEndMarkerInTextFails) {
  EXPECT_TRUE(Render("<a>x]]>y</a>").starts_with("ERROR"));
}

TEST(XmlReaderTest, ErrorsIncludeLineNumbers) {
  Reader reader("<a>\n<b>\n</c>\n</a>");
  Reader::Event event;
  Status st;
  do {
    st = reader.Next(&event);
  } while (st.ok() && event.kind != EventKind::kEndDocument);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
}

TEST(XmlEscapeTest, EscapeText) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
}

TEST(XmlEscapeTest, EscapeAttribute) {
  EXPECT_EQ(EscapeAttribute("a\"b<c&d"), "a&quot;b&lt;c&amp;d");
}

TEST(XmlEscapeTest, RoundTripThroughReader) {
  std::string payload = "x < y & \"z\"";
  std::string doc = "<a t=\"" + EscapeAttribute(payload) + "\">" +
                    EscapeText(payload) + "</a>";
  EXPECT_EQ(Render(doc), "S:a(t=" + payload + ") T:" + payload + " E:a ");
}

}  // namespace
}  // namespace natix::xml
