// Serialization round-trip property: random documents loaded into the
// store, serialized back through xml::OuterXml, reparsed, and compared
// node by node (kind, name, content, relative order). A second cycle
// must be byte-identical (serialization is a fixpoint).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>

#include "api/database.h"
#include "xml/writer.h"

namespace natix {
namespace {

/// NATIX_FUZZ_SEED offsets every generated seed (default 0: the fixed
/// CI corpus). A failing run's trace prints the effective seed.
uint32_t BaseSeed() {
  const char* env = std::getenv("NATIX_FUZZ_SEED");
  return env == nullptr
             ? 0u
             : static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
}

std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> kind(0, 11);
  std::uniform_int_distribution<int> children(0, 4);
  const char* names[] = {"alpha", "b", "c-d", "x.y", "ns:tag"};
  std::uniform_int_distribution<int> name(0, 4);
  std::string out;
  std::vector<std::string> stack;
  int ops = 60;
  out += "<root>";
  stack.push_back("root");
  while (ops-- > 0) {
    int k = kind(rng);
    if (k < 5 && stack.size() < 6) {
      std::string tag = names[name(rng)];
      out += "<" + tag;
      if (kind(rng) < 4) out += " a=\"v&amp;1\"";
      if (kind(rng) < 2) out += " b=\"&lt;&quot;x\"";
      out += ">";
      stack.push_back(tag);
    } else if (k < 7 && stack.size() > 1) {
      out += "</" + stack.back() + ">";
      stack.pop_back();
    } else if (k < 9) {
      out += "t&amp;" + std::to_string(k);
    } else if (k == 9) {
      out += "<!--c" + std::to_string(ops) + "-->";
    } else {
      out += "<?p d" + std::to_string(ops) + "?>";
    }
  }
  while (!stack.empty()) {
    out += "</" + stack.back() + ">";
    stack.pop_back();
  }
  return out;
}

class RoundTripFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RoundTripFuzzTest, SerializationIsAFixpoint) {
  uint32_t seed = GetParam() + BaseSeed();
  SCOPED_TRACE(::testing::Message()
               << "effective seed " << seed << " (NATIX_FUZZ_SEED base "
               << BaseSeed() << " + param " << GetParam()
               << "); rerun with NATIX_FUZZ_SEED=" << BaseSeed());
  std::string xml = RandomDocument(seed);

  auto db1 = Database::CreateTemp();
  ASSERT_TRUE(db1.ok());
  auto info1 = (*db1)->LoadDocument("d", xml);
  ASSERT_TRUE(info1.ok()) << xml;
  auto once = xml::OuterXml(storage::StoredNode((*db1)->store(),
                                                info1->root));
  ASSERT_TRUE(once.ok());

  auto db2 = Database::CreateTemp();
  ASSERT_TRUE(db2.ok());
  auto info2 = (*db2)->LoadDocument("d", *once);
  ASSERT_TRUE(info2.ok()) << *once;
  auto twice = xml::OuterXml(storage::StoredNode((*db2)->store(),
                                                 info2->root));
  ASSERT_TRUE(twice.ok());

  // Fixpoint after one serialization.
  EXPECT_EQ(*once, *twice);

  // The reloaded document has the same node population.
  EXPECT_EQ(info1->node_count, info2->node_count);
  for (const char* probe :
       {"count(//*)", "count(//@*)", "count(//text())",
        "count(//comment())", "count(//processing-instruction())",
        "string-length(string(/))"}) {
    auto v1 = (*db1)->QueryNumber("d", probe);
    auto v2 = (*db2)->QueryNumber("d", probe);
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_EQ(*v1, *v2) << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Range(100u, 120u));

}  // namespace
}  // namespace natix
