// Structural tests of the translation itself: the shapes of the produced
// algebra plans must match the paper's translation schemes — d-join
// chains for the canonical translation (Sec. 3), stacked pipelines,
// pushed duplicate elimination, MemoX placement and the predicate
// pipeline for the improved translation (Sec. 4).

#include "translate/translator.h"

#include <gtest/gtest.h>

#include "algebra/properties.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::translate {
namespace {

using algebra::Operator;
using algebra::OpKind;

TranslationResult TranslateQuery(const std::string& query,
                                 const TranslatorOptions& options) {
  auto ast = xpath::ParseXPath(query);
  NATIX_CHECK(ast.ok());
  NATIX_CHECK(xpath::Analyze(ast->get()).ok());
  xpath::FoldConstants(ast->get());
  xpath::Normalize(ast->get());
  auto result = Translate(**ast, options);
  NATIX_CHECK(result.ok());
  return std::move(result.value());
}

/// Counts operators of `kind` in the plan, including nested subplans.
size_t CountOps(const Operator& op, OpKind kind);

size_t CountOpsInScalar(const algebra::Scalar& s, OpKind kind) {
  size_t n = 0;
  if (s.kind == algebra::ScalarKind::kNested) n += CountOps(*s.plan, kind);
  for (const auto& child : s.children) n += CountOpsInScalar(*child, kind);
  return n;
}

size_t CountOps(const Operator& op, OpKind kind) {
  size_t n = op.kind == kind ? 1 : 0;
  if (op.scalar != nullptr) n += CountOpsInScalar(*op.scalar, kind);
  for (const auto& child : op.children) n += CountOps(*child, kind);
  return n;
}

TEST(TranslatorTest, CanonicalPathIsDJoinChain) {
  auto result = TranslateQuery("/a/b/c", TranslatorOptions::Canonical());
  // Three steps -> three d-joins; no dedup needed (child axes only).
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDJoin), 3u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kUnnestMap), 3u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDupElim), 0u);
  // Dependent sides are singleton scans (3) plus none at the top.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kSingletonScan), 4u);
}

TEST(TranslatorTest, ImprovedPathIsStackedPipeline) {
  auto result = TranslateQuery("/a/b/c", TranslatorOptions::Improved());
  // Stacked: no d-joins, the unnest-maps chain directly.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDJoin), 0u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kUnnestMap), 3u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kSingletonScan), 1u);
}

TEST(TranslatorTest, CanonicalDedupOnlyAtTheEnd) {
  auto result =
      TranslateQuery("//a/ancestor::b/c", TranslatorOptions::Canonical());
  // One final duplicate elimination, at the root of the plan.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDupElim), 1u);
  EXPECT_EQ(result.plan->kind, OpKind::kDupElim);
}

TEST(TranslatorTest, ImprovedPushesDuplicateElimination) {
  auto result =
      TranslateQuery("//a/ancestor::b/c", TranslatorOptions::Improved());
  // descendant-or-self (//) and ancestor are both ppd, but property
  // inference proves two of the three dedups redundant: // expands the
  // non-nested root, and child::c over the deduplicated ancestor
  // context stays duplicate-free. Only the ancestor dedup survives.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDupElim), 1u);
}

TEST(TranslatorTest, NoDedupForNonPpdPaths) {
  auto result = TranslateQuery("/a/b/@x", TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDupElim), 0u);
}

TEST(TranslatorTest, PositionalPredicateAddsCounter) {
  auto result = TranslateQuery("/a/b[position() = 2]",
                               TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*result.plan, OpKind::kCounter), 1u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kTmpCs), 0u);
}

TEST(TranslatorTest, LastPredicateAddsTmpCs) {
  auto result = TranslateQuery("/a/b[position() = last()]",
                               TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*result.plan, OpKind::kCounter), 1u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kTmpCs), 1u);
}

TEST(TranslatorTest, EachPredicateGetsItsOwnCounter) {
  auto result = TranslateQuery("/a/b[position() = 1][position() = 1]",
                               TranslatorOptions::Improved());
  // The second predicate renumbers the survivors of the first.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kCounter), 2u);
}

TEST(TranslatorTest, FilterExpressionSortsBeforeCounting) {
  auto positional = TranslateQuery("(//a | //b)[2]",
                                   TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*positional.plan, OpKind::kSort), 1u);
  auto plain = TranslateQuery("(//a | //b)[@x]",
                              TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*plain.plan, OpKind::kSort), 0u);
}

TEST(TranslatorTest, UnionIsConcatPlusDedup) {
  auto result = TranslateQuery("a | b | c", TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*result.plan, OpKind::kConcat), 1u);
  EXPECT_EQ(result.plan->kind, OpKind::kDupElim);
  EXPECT_EQ(result.plan->children[0]->kind, OpKind::kConcat);
  EXPECT_EQ(result.plan->children[0]->children.size(), 3u);
}

TEST(TranslatorTest, InnerPathsUseMemoXAfterPpdSteps) {
  auto improved = TranslateQuery("/a[count(descendant::c/following::d) = 1]",
                                 TranslatorOptions::Improved());
  // The following:: step's dependent side is memoized (its input context
  // — a descendant — can repeat across outer evaluations).
  EXPECT_EQ(CountOps(*improved.plan, OpKind::kMemoX), 1u);

  auto canonical = TranslateQuery(
      "/a[count(descendant::c/following::d) = 1]",
      TranslatorOptions::Canonical());
  EXPECT_EQ(CountOps(*canonical.plan, OpKind::kMemoX), 0u);
}

TEST(TranslatorTest, InnerChildChainsAreNotMemoized) {
  auto result = TranslateQuery("/a[count(b/c) = 1]",
                               TranslatorOptions::Improved());
  // child steps produce no duplicate contexts: no MemoX.
  EXPECT_EQ(CountOps(*result.plan, OpKind::kMemoX), 0u);
}

TEST(TranslatorTest, ExpensiveConjunctsMaterialize) {
  auto result = TranslateQuery("/a/b[count(.//c) > 1 and @x = '1']",
                               TranslatorOptions::Improved());
  // The expensive count() conjunct runs through chi^mat + select; the
  // cheap attribute test runs first as a plain select.
  size_t materializing_maps = 0;
  std::function<void(const Operator&)> scan = [&](const Operator& op) {
    if (op.kind == OpKind::kMap && op.materialize) ++materializing_maps;
    for (const auto& child : op.children) scan(*child);
    if (op.scalar && op.scalar->kind == algebra::ScalarKind::kNested) {
      scan(*op.scalar->plan);
    }
  };
  scan(*result.plan);
  EXPECT_EQ(materializing_maps, 1u);

  // Without the optimization, no materializing maps appear.
  auto canonical = TranslateQuery("/a/b[count(.//c) > 1 and @x = '1']",
                                  TranslatorOptions::Canonical());
  size_t canonical_mat = 0;
  std::function<void(const Operator&)> scan2 = [&](const Operator& op) {
    if (op.kind == OpKind::kMap && op.materialize) ++canonical_mat;
    for (const auto& child : op.children) scan2(*child);
  };
  scan2(*canonical.plan);
  EXPECT_EQ(canonical_mat, 0u);
}

TEST(TranslatorTest, NodeSetComparisonsBecomeExistentialPlans) {
  auto semi = TranslateQuery("a = b", TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*semi.plan, OpKind::kSemiJoin), 1u);
  auto rel = TranslateQuery("a < b", TranslatorOptions::Improved());
  // Relational: select over a d-join with the max/min bound.
  EXPECT_EQ(CountOps(*rel.plan, OpKind::kSemiJoin), 0u);
  EXPECT_GE(CountOps(*rel.plan, OpKind::kSelect), 1u);
}

TEST(TranslatorTest, ScalarQueryIsSingleMapOverSingleton) {
  auto result = TranslateQuery("1 + 2", TranslatorOptions::Improved());
  EXPECT_EQ(result.type, xpath::ExprType::kNumber);
  EXPECT_EQ(result.plan->kind, OpKind::kMap);
  EXPECT_EQ(result.plan->children[0]->kind, OpKind::kSingletonScan);
}

TEST(TranslatorTest, AbsolutePathBindsRoot) {
  auto result = TranslateQuery("/a", TranslatorOptions::Improved());
  // The deepest operator maps c := root(cn) over the singleton scan.
  const Operator* op = result.plan.get();
  while (!op->children.empty()) op = op->children[0].get();
  EXPECT_EQ(op->kind, OpKind::kSingletonScan);
  // And the plan's free attributes are exactly the reserved context.
  auto free = algebra::FreeAttributes(*result.plan);
  EXPECT_TRUE(free.count(kContextNodeAttr) == 1 || free.empty());
}

TEST(TranslatorTest, RelativePathsDependOnContextAttribute) {
  auto result = TranslateQuery("b/c", TranslatorOptions::Improved());
  auto free = algebra::FreeAttributes(*result.plan);
  EXPECT_EQ(free.count(kContextNodeAttr), 1u);
}

TEST(TranslatorTest, IdFunctionPlans) {
  auto from_string = TranslateQuery("id('x')",
                                    TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*from_string.plan, OpKind::kIdDeref), 1u);
  auto from_nodes = TranslateQuery("id(//ref)",
                                   TranslatorOptions::Improved());
  EXPECT_EQ(CountOps(*from_nodes.plan, OpKind::kIdDeref), 1u);
  EXPECT_GE(CountOps(*from_nodes.plan, OpKind::kUnnestMap), 1u);
}

TEST(TranslatorTest, PaperFigure4Expression) {
  // The showcase expression of Fig. 4:
  //   /a1::t1/a2::t2[a4::t4/a5::t5][position() = last()]/a3::t3
  // instantiated with concrete axes. Its improved plan must contain:
  // the nested-path predicate as an existential nested subplan, the
  // position counter, the Tmp^cs_c with context boundary, and three
  // outer unnest-maps stacked without d-joins.
  auto result = TranslateQuery(
      "/child::t1/descendant::t2[child::t4/child::t5]"
      "[position() = last()]/child::t3",
      TranslatorOptions::Improved());
  // The inner path is translated with d-joins (one per inner step).
  EXPECT_EQ(CountOps(*result.plan, OpKind::kDJoin), 2u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kCounter), 1u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kTmpCs), 1u);
  EXPECT_EQ(CountOps(*result.plan, OpKind::kUnnestMap), 5u);  // 3 + 2 inner

  // The canonical plan uses d-joins throughout (3 outer + 2 inner).
  auto canonical = TranslateQuery(
      "/child::t1/descendant::t2[child::t4/child::t5]"
      "[position() = last()]/child::t3",
      TranslatorOptions::Canonical());
  EXPECT_EQ(CountOps(*canonical.plan, OpKind::kDJoin), 5u);
  EXPECT_EQ(CountOps(*canonical.plan, OpKind::kTmpCs), 1u);
}

TEST(TranslatorTest, PlanSizesAreReasonable) {
  // The improved translation should not be larger than the canonical one
  // for plain paths (it drops the d-joins and their singleton scans).
  auto canonical = TranslateQuery("/a/b/c/d", TranslatorOptions::Canonical());
  auto improved = TranslateQuery("/a/b/c/d", TranslatorOptions::Improved());
  EXPECT_LT(algebra::PlanSize(*improved.plan),
            algebra::PlanSize(*canonical.plan));
}

}  // namespace
}  // namespace natix::translate
