// Direct physical-operator tests: logical plans are built by hand (not
// through the XPath translator) and compiled, exercising the operators of
// Fig. 1 that the translator uses rarely or not at all (cross product,
// unnest, binary grouping, standalone aggregation) plus the memo/cache
// behaviour of MemoX and chi^mat.

#include <gtest/gtest.h>

#include <memory>

#include "algebra/operator.h"
#include "api/database.h"
#include "qe/codegen.h"
#include "qe/exec_context.h"
#include "qe/operators.h"
#include "translate/translator.h"

namespace natix::qe {
namespace {

using algebra::AggKind;
using algebra::MakeOp;
using algebra::MakeScalar;
using algebra::OpPtr;
using algebra::OpKind;
using algebra::ScalarKind;
using algebra::ScalarPtr;

ScalarPtr Num(double v) {
  ScalarPtr s = MakeScalar(ScalarKind::kNumberConst);
  s->number = v;
  return s;
}

ScalarPtr Attr(const std::string& name) {
  ScalarPtr s = MakeScalar(ScalarKind::kAttrRef);
  s->name = name;
  return s;
}

/// chi_{attr := scalar}(child)
OpPtr Map(std::string attr, ScalarPtr scalar, OpPtr child) {
  OpPtr op = MakeOp(OpKind::kMap);
  op->attr = std::move(attr);
  op->scalar = std::move(scalar);
  op->children.push_back(std::move(child));
  return op;
}

OpPtr Scan() { return MakeOp(OpKind::kSingletonScan); }

/// A d-join-shaped enumerator: produces tuples with `attr` = 1..n by
/// concatenating n maps over singleton scans.
OpPtr Numbers(const std::string& attr, int n) {
  OpPtr concat = MakeOp(OpKind::kConcat);
  for (int i = 1; i <= n; ++i) {
    concat->children.push_back(Map(attr, Num(i), Scan()));
  }
  return concat;
}

struct Harness {
  Harness() {
    auto database = Database::CreateTemp();
    NATIX_CHECK(database.ok());
    db = std::move(database.value());
    auto info = db->LoadDocument("doc", "<r><a>1</a><a>2</a><b>9</b></r>");
    NATIX_CHECK(info.ok());
    root = info->root;
  }

  /// Compiles a hand-built plan and collects the values of result_attr.
  std::vector<std::string> Run(OpPtr plan, const std::string& result_attr,
                               xpath::ExprType type =
                                   xpath::ExprType::kNodeSet) {
    translate::TranslationResult translation;
    translation.plan = std::move(plan);
    translation.result_attr = result_attr;
    translation.type = type;
    auto prepared = Codegen::Prepare(std::move(translation), db->store());
    NATIX_CHECK(prepared.ok());
    auto context = (*prepared)->NewContext();
    NATIX_CHECK(context.ok());
    storage::NodeRecord record;
    NATIX_CHECK(db->store()->ReadNode(root, &record).ok());
    (*context)->SetContextNode(runtime::NodeRef::Make(root, record.order));
    // Drain through the generic node path or value path by hand.
    std::vector<std::string> out;
    // Use ExecuteNodes only for node results; otherwise inspect values by
    // running through a scalar single-tuple execution. For generality we
    // re-execute through the plan API when the type is node-set.
    if (type == xpath::ExprType::kNodeSet) {
      auto nodes = (*context)->ExecuteNodes();
      NATIX_CHECK(nodes.ok());
      for (const runtime::NodeRef& ref : *nodes) {
        out.push_back(std::to_string(ref.order));
      }
    } else {
      auto value = (*context)->ExecuteValue();
      NATIX_CHECK(value.ok());
      out.push_back(value->DebugString());
    }
    return out;
  }

  /// Runs a plan whose result attribute holds arbitrary values, rendering
  /// each produced tuple's result value.
  std::vector<std::string> RunValues(OpPtr plan,
                                     const std::string& result_attr) {
    // Wrap: aggregate count forces nothing; instead execute manually via
    // a scalar... simplest: mark as node-set is wrong for numbers, so we
    // execute the raw iterator through a throwaway Plan with value kind.
    // The public Plan API restricts to the two shapes above, so tests for
    // multi-tuple value streams wrap the value into a count aggregate
    // where needed. Here: collect via DebugString through ExecuteNodes is
    // impossible; instead we attach a kAggregate when a single value is
    // enough. For streams we use EncodeValueKey? Keep it simple: the
    // callers below only need multi-tuple *numeric* streams, so we sum
    // them through kAggregate and compare sums.
    OpPtr agg = MakeOp(OpKind::kAggregate);
    agg->attr = "sum_out";
    agg->ctx_attr = result_attr;
    agg->agg = AggKind::kSum;
    agg->children.push_back(std::move(plan));
    return Run(std::move(agg), "sum_out", xpath::ExprType::kNumber);
  }

  std::unique_ptr<Database> db;
  storage::NodeId root;
};

TEST(QeOperatorTest, SingletonScanProducesOneTuple) {
  Harness h;
  OpPtr plan = Map("v", Num(7), Scan());
  EXPECT_EQ(h.RunValues(std::move(plan), "v"), std::vector<std::string>{"7"});
}

TEST(QeOperatorTest, ConcatEnumerates) {
  Harness h;
  // 1+2+3+4 = 10.
  EXPECT_EQ(h.RunValues(Numbers("n", 4), "n"),
            std::vector<std::string>{"10"});
}

TEST(QeOperatorTest, CrossProductPairsAllTuples) {
  Harness h;
  OpPtr cross = MakeOp(OpKind::kCross);
  cross->children.push_back(Numbers("x", 3));
  cross->children.push_back(Numbers("y", 2));
  // sum over pairs of (x*10 + y): each x appears twice -> 20(x1+x2+x3)
  // wait: sum(x*10+y) = 2*10*(1+2+3) + 3*(1+2) = 120 + 9 = 129.
  OpPtr value = Map("v", nullptr, std::move(cross));
  ScalarPtr mul = MakeScalar(ScalarKind::kArith);
  mul->op = xpath::BinaryOp::kMul;
  mul->children.push_back(Attr("x"));
  mul->children.push_back(Num(10));
  ScalarPtr add = MakeScalar(ScalarKind::kArith);
  add->op = xpath::BinaryOp::kAdd;
  add->children.push_back(std::move(mul));
  add->children.push_back(Attr("y"));
  value->scalar = std::move(add);
  EXPECT_EQ(h.RunValues(std::move(value), "v"),
            std::vector<std::string>{"129"});
}

TEST(QeOperatorTest, SelectFilters) {
  Harness h;
  OpPtr select = MakeOp(OpKind::kSelect);
  ScalarPtr cmp = MakeScalar(ScalarKind::kCompare);
  cmp->cmp = runtime::CompareOp::kGt;
  cmp->children.push_back(Attr("n"));
  cmp->children.push_back(Num(2));
  select->scalar = std::move(cmp);
  select->children.push_back(Numbers("n", 5));
  // 3+4+5 = 12.
  EXPECT_EQ(h.RunValues(std::move(select), "n"),
            std::vector<std::string>{"12"});
}

TEST(QeOperatorTest, UnnestExplodesSequences) {
  Harness h;
  // Build a tuple with a sequence attribute via a nested plan is not
  // expressible in the scalar IR without kNested; construct the sequence
  // as a constant instead.
  auto seq = std::make_shared<std::vector<runtime::Value>>();
  seq->push_back(runtime::Value::Number(5));
  seq->push_back(runtime::Value::Number(6));
  seq->push_back(runtime::Value::Number(7));
  // There is no "sequence constant" scalar; emulate by a custom konst:
  // the scalar IR stores constants as Value, so extend via kStringConst is
  // wrong. Instead: the unnest test drives the iterator through a map
  // whose subscript is a nested count... Simplest honest test: unnest of
  // a sequence produced by a nested plan aggregated into... not
  // available. So exercise UnnestIterator directly.
  ExecutionContext state;
  state.registers.Resize(2);
  state.registers[0] = runtime::Value::Sequence(seq);
  auto scan = std::make_unique<SingletonScanIterator>();
  UnnestIterator unnest(&state, std::move(scan), 0, 1);
  ASSERT_TRUE(unnest.Open().ok());
  std::vector<double> got;
  while (true) {
    bool has = false;
    ASSERT_TRUE(unnest.Next(&has).ok());
    if (!has) break;
    got.push_back(state.registers[1].AsNumber());
  }
  EXPECT_EQ(got, (std::vector<double>{5, 6, 7}));
}

TEST(QeOperatorTest, BinaryGroupAggregatesMatches) {
  Harness h;
  // left: x in 1..3; right: y in 1..4 with key y mod 2... build right as
  // values 1..4 and group on equality x = y: count of matches per x is 1
  // for x in 1..3? y ranges 1..4 so each x matches exactly one y.
  OpPtr group = MakeOp(OpKind::kBinaryGroup);
  group->attr = "g";
  group->agg = AggKind::kCount;
  group->left_attr = "x";
  group->right_attr = "y";
  group->ctx_attr = "y";
  group->children.push_back(Numbers("x", 3));
  group->children.push_back(Numbers("y", 4));
  // sum of g over left = 3.
  EXPECT_EQ(h.RunValues(std::move(group), "g"),
            std::vector<std::string>{"3"});
}

TEST(QeOperatorTest, AggregateCountsInput) {
  Harness h;
  OpPtr agg = MakeOp(OpKind::kAggregate);
  agg->attr = "c";
  agg->ctx_attr = "n";
  agg->agg = AggKind::kCount;
  agg->children.push_back(Numbers("n", 6));
  EXPECT_EQ(h.Run(std::move(agg), "c", xpath::ExprType::kNumber),
            std::vector<std::string>{"6"});
}

TEST(QeOperatorTest, ProjectIsTransparent) {
  Harness h;
  OpPtr project = MakeOp(OpKind::kProject);
  project->attrs = {"n"};
  project->children.push_back(Numbers("n", 3));
  EXPECT_EQ(h.RunValues(std::move(project), "n"),
            std::vector<std::string>{"6"});
}

}  // namespace
}  // namespace natix::qe
