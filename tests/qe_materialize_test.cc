// Direct tests of the materializing operators' internal behaviour:
// MemoX hit/miss accounting and partial-drain safety, Tmp^cs grouping
// edges, and the semi-/anti-join probe semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "qe/exec_context.h"
#include "qe/operators.h"
#include "qe/subscripts.h"
#include "nvm/assembler.h"

namespace natix::qe {
namespace {

using runtime::RegisterId;
using runtime::Value;

/// An iterator producing a fixed list of numbers into one register, and
/// counting how often it is opened (to observe memoization).
class NumbersIterator : public Iterator {
 public:
  NumbersIterator(ExecutionContext* state, RegisterId out,
                  std::vector<double> values)
      : state_(state), out_(out), values_(std::move(values)) {}

  Status OpenImpl() override {
    ++open_count_;
    pos_ = 0;
    return Status::OK();
  }
  Status NextImpl(bool* has) override {
    if (pos_ >= values_.size()) {
      *has = false;
      return Status::OK();
    }
    state_->registers[out_] = Value::Number(values_[pos_++]);
    *has = true;
    return Status::OK();
  }
  Status CloseImpl() override { return Status::OK(); }

  int open_count() const { return open_count_; }

 private:
  ExecutionContext* state_;
  RegisterId out_;
  std::vector<double> values_;
  size_t pos_ = 0;
  int open_count_ = 0;
};

std::vector<double> Drain(Iterator* iter, ExecutionContext* state,
                          RegisterId reg) {
  NATIX_CHECK(iter->Open().ok());
  std::vector<double> out;
  while (true) {
    bool has = false;
    NATIX_CHECK(iter->Next(&has).ok());
    if (!has) break;
    out.push_back(state->registers[reg].AsNumber());
  }
  NATIX_CHECK(iter->Close().ok());
  return out;
}

TEST(MemoXIteratorTest, HitsReplayWithoutReopeningChild) {
  ExecutionContext state;
  state.registers.Resize(2);
  // Register 0 is the memo key; register 1 the child's output.
  auto numbers = std::make_unique<NumbersIterator>(
      &state, 1, std::vector<double>{7, 8, 9});
  NumbersIterator* child = numbers.get();
  MemoXIterator memo(&state, std::move(numbers), {0}, {1});

  state.registers[0] = Value::String("keyA");
  EXPECT_EQ(Drain(&memo, &state, 1), (std::vector<double>{7, 8, 9}));
  EXPECT_EQ(child->open_count(), 1);
  EXPECT_EQ(memo.miss_count(), 1u);

  // Same key again: replayed from the table, child untouched.
  state.registers[0] = Value::String("keyA");
  EXPECT_EQ(Drain(&memo, &state, 1), (std::vector<double>{7, 8, 9}));
  EXPECT_EQ(child->open_count(), 1);
  EXPECT_EQ(memo.hit_count(), 1u);

  // Different key: the child runs again.
  state.registers[0] = Value::String("keyB");
  EXPECT_EQ(Drain(&memo, &state, 1), (std::vector<double>{7, 8, 9}));
  EXPECT_EQ(child->open_count(), 2);
}

TEST(MemoXIteratorTest, PartialDrainIsNotCommitted) {
  ExecutionContext state;
  state.registers.Resize(2);
  auto numbers = std::make_unique<NumbersIterator>(
      &state, 1, std::vector<double>{1, 2, 3});
  NumbersIterator* child = numbers.get();
  MemoXIterator memo(&state, std::move(numbers), {0}, {1});

  state.registers[0] = Value::String("k");
  ASSERT_TRUE(memo.Open().ok());
  bool has = false;
  ASSERT_TRUE(memo.Next(&has).ok());
  ASSERT_TRUE(has);  // consumed only one tuple
  ASSERT_TRUE(memo.Close().ok());  // early close: entry must not commit

  // The next evaluation with the same key recomputes.
  state.registers[0] = Value::String("k");
  EXPECT_EQ(Drain(&memo, &state, 1), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(child->open_count(), 2);
  EXPECT_EQ(memo.hit_count(), 0u);
}

TEST(TmpCsIteratorTest, WholeInputIsOneContextWithoutBoundary) {
  ExecutionContext state;
  state.registers.Resize(2);
  auto numbers = std::make_unique<NumbersIterator>(
      &state, 0, std::vector<double>{4, 5, 6, 7});
  TmpCsIterator tmp(&state, std::move(numbers), 1, std::nullopt, {0});
  ASSERT_TRUE(tmp.Open().ok());
  int count = 0;
  while (true) {
    bool has = false;
    ASSERT_TRUE(tmp.Next(&has).ok());
    if (!has) break;
    ++count;
    EXPECT_EQ(state.registers[1].AsNumber(), 4);  // cs = 4 for every tuple
  }
  EXPECT_EQ(count, 4);
}

TEST(TmpCsIteratorTest, GroupsByBoundaryRuns) {
  ExecutionContext state;
  state.registers.Resize(3);
  // Register 0: boundary values 1,1,2,2,2,3 (runs of sizes 2,3,1).
  auto numbers = std::make_unique<NumbersIterator>(
      &state, 0, std::vector<double>{1, 1, 2, 2, 2, 3});
  TmpCsIterator tmp(&state, std::move(numbers), 1,
                    std::optional<RegisterId>{0}, {0});
  ASSERT_TRUE(tmp.Open().ok());
  std::vector<std::pair<double, double>> rows;  // (boundary, cs)
  while (true) {
    bool has = false;
    ASSERT_TRUE(tmp.Next(&has).ok());
    if (!has) break;
    rows.emplace_back(state.registers[0].AsNumber(),
                      state.registers[1].AsNumber());
  }
  std::vector<std::pair<double, double>> expected = {
      {1, 2}, {1, 2}, {2, 3}, {2, 3}, {2, 3}, {3, 1}};
  EXPECT_EQ(rows, expected);
}

TEST(TmpCsIteratorTest, EmptyInput) {
  ExecutionContext state;
  state.registers.Resize(2);
  auto numbers =
      std::make_unique<NumbersIterator>(&state, 0, std::vector<double>{});
  TmpCsIterator tmp(&state, std::move(numbers), 1, std::nullopt, {0});
  ASSERT_TRUE(tmp.Open().ok());
  bool has = true;
  ASSERT_TRUE(tmp.Next(&has).ok());
  EXPECT_FALSE(has);
}

/// Compiles "left < right" over two number registers.
SubscriptPtr LessThan(ExecutionContext* state, NestedTable* nested,
                      RegisterId left, RegisterId right) {
  auto lhs = algebra::MakeScalar(algebra::ScalarKind::kAttrRef);
  lhs->name = "l";
  auto rhs = algebra::MakeScalar(algebra::ScalarKind::kAttrRef);
  rhs->name = "r";
  auto cmp = algebra::MakeScalar(algebra::ScalarKind::kCompare);
  cmp->cmp = runtime::CompareOp::kLt;
  cmp->children.push_back(std::move(lhs));
  cmp->children.push_back(std::move(rhs));
  nvm::AttrResolver resolver =
      [&](const std::string& name) -> StatusOr<RegisterId> {
    return name == "l" ? left : right;
  };
  nvm::NestedRegistrar registrar =
      [](const algebra::Scalar&) -> StatusOr<size_t> {
    return Status::Internal("none");
  };
  auto program = nvm::CompileScalar(*cmp, resolver, registrar);
  NATIX_CHECK(program.ok());
  return std::make_unique<Subscript>(std::move(*program), state, nested);
}

TEST(SemiJoinIteratorTest, SemiAndAntiAreComplements) {
  for (auto mode :
       {SemiJoinIterator::Mode::kSemi, SemiJoinIterator::Mode::kAnti}) {
    ExecutionContext state;
    state.registers.Resize(2);
    NestedTable nested;
    auto left = std::make_unique<NumbersIterator>(
        &state, 0, std::vector<double>{1, 5, 9});
    auto right = std::make_unique<NumbersIterator>(
        &state, 1, std::vector<double>{4, 6});
    SemiJoinIterator join(mode, std::move(left), std::move(right),
                          LessThan(&state, &nested, 0, 1));
    // Semi: left values with SOME right value greater: 1 (<4), 5 (<6).
    // Anti: left values with NO right value greater: 9.
    std::vector<double> got = Drain(&join, &state, 0);
    if (mode == SemiJoinIterator::Mode::kSemi) {
      EXPECT_EQ(got, (std::vector<double>{1, 5}));
    } else {
      EXPECT_EQ(got, (std::vector<double>{9}));
    }
  }
}

TEST(AggregateTest, MaxMinOverNumbers) {
  for (auto agg : {algebra::AggKind::kMax, algebra::AggKind::kMin}) {
    ExecutionContext state;
    state.registers.Resize(2);
    NestedPlan plan;
    plan.iter = std::make_unique<NumbersIterator>(
        &state, 0, std::vector<double>{3, -2, 8, 0});
    plan.agg = agg;
    plan.input_reg = 0;
    auto value = RunNestedAggregate(&plan, &state);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->AsNumber(), agg == algebra::AggKind::kMax ? 8 : -2);
  }
}

TEST(AggregateTest, EmptyExtremaAreNaN) {
  ExecutionContext state;
  state.registers.Resize(1);
  NestedPlan plan;
  plan.iter =
      std::make_unique<NumbersIterator>(&state, 0, std::vector<double>{});
  plan.agg = algebra::AggKind::kMax;
  plan.input_reg = 0;
  auto value = RunNestedAggregate(&plan, &state);
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(std::isnan(value->AsNumber()));
}

}  // namespace
}  // namespace natix::qe
