// Differential rewrite fuzzing (NATIX_FUZZ_DIFF_REWRITE): random XPath
// queries over random documents, each compiled twice — with the
// property-justified simplifying rewrites and with them disabled — and
// executed with plan verification on, which arms the runtime property
// oracle on every stream the inference engine makes claims about. The
// two plans must agree with each other and with the src/interp oracle;
// any unsound Sort/DupElim removal shows up either as a result
// divergence or as a property-oracle violation.
//
// NATIX_FUZZ_DIFF_REWRITE re-rolls the corpus: its value offsets every
// generated seed (unset or 0: the fixed CI corpus).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

uint32_t BaseSeed() {
  const char* env = std::getenv("NATIX_FUZZ_DIFF_REWRITE");
  return env == nullptr
             ? 0u
             : static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
}

/// Path generator biased toward the step combinations the rewriter acts
/// on: ordered child chains (Sort removal), ppd steps (DupElim removal),
/// sibling/reverse axes (claims must be withheld), attribute and text
/// steps (static-emptiness compositions), and positional filters (Sort
/// placement).
class RewritePathGen {
 public:
  explicit RewritePathGen(uint32_t seed) : rng_(seed) {}

  std::string TopLevel() {
    switch (Int(6)) {
      case 0:
        return "(" + Path() + ")[" + std::to_string(1 + Int(3)) + "]";
      case 1:
        return "(" + Path() + ")[last()]";
      case 2:
        return "count(" + Path() + ")";
      default:
        return Path();
    }
  }

 private:
  int Int(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  std::string Pick(std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, Int(static_cast<int>(options.size())));
    return *it;
  }

  std::string Step() {
    std::string axis =
        Pick({"", "", "", "descendant::", "descendant-or-self::",
              "ancestor::", "parent::", "self::", "following::",
              "following-sibling::", "preceding-sibling::"});
    std::string test = Pick({"a", "b", "c", "*", "node()", "text()"});
    if (Int(8) == 0) return "@" + Pick({"id", "x", "*"});
    return axis + test;
  }

  std::string Path() {
    std::string out = Pick({"/", "", "//"});
    int steps = 1 + Int(4);
    for (int i = 0; i < steps; ++i) {
      if (i > 0) out += Pick({"/", "/", "//"});
      out += Step();
    }
    return out;
  }

  std::mt19937 rng_;
};

std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  const char* names[] = {"a", "b", "c"};
  std::uniform_int_distribution<int> name_dist(0, 2);
  std::uniform_int_distribution<int> children_dist(0, 3);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  int id = 0;
  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* name = names[name_dist(rng)];
    out += "<";
    out += name;
    if (kind_dist(rng) < 5) out += " id='n" + std::to_string(id++) + "'";
    if (kind_dist(rng) < 3) {
      out += " x='" + std::to_string(kind_dist(rng) % 4) + "'";
    }
    out += ">";
    int children = depth >= 4 ? 0 : children_dist(rng);
    for (int i = 0; i < children; ++i) {
      if (kind_dist(rng) < 7) {
        emit(depth + 1);
      } else {
        out += "t" + std::to_string(kind_dist(rng));
      }
    }
    out += "</";
    out += name;
    out += ">";
  };
  out += "<root>";
  for (int i = 0; i < 3; ++i) emit(1);
  out += "</root>";
  return out;
}

/// Evaluates through the algebraic engine, rendering node results as an
/// ordered list of document-order keys and scalars via string().
StatusOr<std::string> RunAlgebraic(Database* db, storage::NodeId root,
                                   const std::string& query,
                                   bool simplify) {
  translate::TranslatorOptions options;  // improved
  options.simplify_plan = simplify;
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled,
                         db->Compile(query, options));
  if (compiled->result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<storage::StoredNode> nodes,
                           compiled->EvaluateNodes(root));
    std::string out = "nodes:";
    for (const storage::StoredNode& n : nodes) {
      NATIX_ASSIGN_OR_RETURN(uint64_t order, n.order());
      out += " " + std::to_string(order);
    }
    return out;
  }
  NATIX_ASSIGN_OR_RETURN(std::string value, compiled->EvaluateString(root));
  return "str: " + value;
}

class FuzzDiffRewriteTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDiffRewriteTest, RewrittenPlansAgreeUnderOracle) {
  uint32_t seed = GetParam() + BaseSeed();
  SCOPED_TRACE(::testing::Message()
               << "effective seed " << seed
               << "; rerun with NATIX_FUZZ_DIFF_REWRITE=" << BaseSeed());
  std::string xml = RandomDocument(seed * 1877 + 7);

  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  ASSERT_TRUE(info.ok());
  auto dom_doc = dom::ParseDocument(xml);
  ASSERT_TRUE(dom_doc.ok());

  RewritePathGen gen(seed);
  for (int i = 0; i < 80; ++i) {
    std::string query = gen.TopLevel();

    auto rewritten = RunAlgebraic(db->get(), info->root, query,
                                  /*simplify=*/true);
    ASSERT_TRUE(rewritten.ok())
        << query << ": " << rewritten.status().ToString()
        << "\ndocument: " << xml;
    auto baseline = RunAlgebraic(db->get(), info->root, query,
                                 /*simplify=*/false);
    ASSERT_TRUE(baseline.ok())
        << query << ": " << baseline.status().ToString();
    ASSERT_EQ(*rewritten, *baseline)
        << "rewrites diverge on " << query << "\ndocument: " << xml;

    // Cross-check node results against the interpreter oracle (string
    // results go through different conversion paths; the plan-vs-plan
    // check above already covers them).
    if (rewritten->rfind("nodes:", 0) == 0) {
      interp::EvaluatorOptions oracle_options;
      auto oracle = interp::Evaluator::Run(dom_doc->get(), query,
                                           (*dom_doc)->root(),
                                           oracle_options);
      ASSERT_TRUE(oracle.ok()) << query;
      if (oracle->kind == interp::Object::Kind::kNodeSet) {
        std::string expected = "nodes:";
        for (const dom::Node* n : oracle->nodes) {
          expected += " " + std::to_string(n->order);
        }
        ASSERT_EQ(*rewritten, expected)
            << "interp oracle diverges on " << query
            << "\ndocument: " << xml;
      }
    }
  }

  analysis::SetVerificationEnabled(was_enabled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDiffRewriteTest,
                         ::testing::Range(1u, 7u));

}  // namespace
}  // namespace natix
