// Runtime layer unit tests: values, conversions with XPath semantics,
// atomic comparison promotion, and the register file.

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/conversions.h"
#include "runtime/register_file.h"
#include "runtime/value.h"
#include "storage/document_loader.h"

namespace natix::runtime {
namespace {

struct StoreFixture {
  StoreFixture() {
    storage::NodeStore::Options options;
    options.buffer_pages = 16;
    auto created = storage::NodeStore::CreateTemp(options);
    NATIX_CHECK(created.ok());
    store = std::move(created.value());
    auto info =
        storage::LoadDocument(store.get(), "doc", "<a>12<b>34</b></a>");
    NATIX_CHECK(info.ok());
    root = info->root;
    ctx.store = store.get();
  }

  NodeRef RootRef() const { return NodeRef::Make(root, 0); }

  std::unique_ptr<storage::NodeStore> store;
  storage::NodeId root;
  EvalContext ctx;
};

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Boolean(true).AsBoolean(), true);
  EXPECT_EQ(Value::Number(3.5).AsNumber(), 3.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  NodeRef node = NodeRef::Make(storage::NodeId{3, 7}, 42);
  EXPECT_EQ(Value::Node(node).AsNode().order, 42u);
  EXPECT_EQ(Value::Node(node).AsNode().node_id().page, 3u);
}

TEST(ValueTest, DebugStrings) {
  EXPECT_EQ(Value().DebugString(), "null");
  EXPECT_EQ(Value::Boolean(false).DebugString(), "false");
  EXPECT_EQ(Value::Number(2).DebugString(), "2");
  EXPECT_EQ(Value::String("s").DebugString(), "\"s\"");
}

TEST(ConversionsTest, ToBoolean) {
  EvalContext ctx;
  EXPECT_FALSE(*ToBoolean(Value(), ctx));
  EXPECT_TRUE(*ToBoolean(Value::Number(1), ctx));
  EXPECT_FALSE(*ToBoolean(Value::Number(0), ctx));
  EXPECT_FALSE(*ToBoolean(Value::Number(std::nan("")), ctx));
  EXPECT_TRUE(*ToBoolean(Value::Number(-0.5), ctx));
  EXPECT_TRUE(*ToBoolean(Value::String("x"), ctx));
  EXPECT_FALSE(*ToBoolean(Value::String(""), ctx));
  // "false" is a non-empty string: true!
  EXPECT_TRUE(*ToBoolean(Value::String("false"), ctx));
}

TEST(ConversionsTest, ToNumber) {
  EvalContext ctx;
  EXPECT_TRUE(std::isnan(*ToNumber(Value(), ctx)));
  EXPECT_EQ(*ToNumber(Value::Boolean(true), ctx), 1);
  EXPECT_EQ(*ToNumber(Value::Boolean(false), ctx), 0);
  EXPECT_EQ(*ToNumber(Value::String(" 42 "), ctx), 42);
  EXPECT_TRUE(std::isnan(*ToNumber(Value::String("42x"), ctx)));
}

TEST(ConversionsTest, NodeConversionsUseStringValue) {
  StoreFixture f;
  Value node = Value::Node(f.RootRef());
  EXPECT_EQ(*ToStringValue(node, f.ctx), "1234");
  EXPECT_EQ(*ToNumber(node, f.ctx), 1234);
  EXPECT_TRUE(*ToBoolean(node, f.ctx));
}

TEST(ConversionsTest, SequenceStringIsFirstInDocOrder) {
  StoreFixture f;
  // Sequence holding (b, a) out of document order: string() must pick a
  // (the document node, order 0).
  storage::NodeRecord record;
  NATIX_CHECK(f.store->ReadNode(f.root, &record).ok());
  auto seq = std::make_shared<std::vector<Value>>();
  seq->push_back(Value::Node(NodeRef::Make(record.first_child, 5)));
  seq->push_back(Value::Node(f.RootRef()));
  Value sequence = Value::Sequence(seq);
  EXPECT_EQ(*ToStringValue(sequence, f.ctx), "1234");
  EXPECT_TRUE(*ToBoolean(sequence, f.ctx));
  auto empty = std::make_shared<std::vector<Value>>();
  EXPECT_EQ(*ToStringValue(Value::Sequence(empty), f.ctx), "");
  EXPECT_FALSE(*ToBoolean(Value::Sequence(empty), f.ctx));
}

TEST(ConversionsTest, CompareAtomicPromotion) {
  EvalContext ctx;
  auto eq = [&](const Value& a, const Value& b) {
    return *CompareAtomic(CompareOp::kEq, a, b, ctx);
  };
  // boolean dominates =.
  EXPECT_TRUE(eq(Value::Boolean(true), Value::String("anything")));
  EXPECT_TRUE(eq(Value::Boolean(false), Value::String("")));
  // number next.
  EXPECT_TRUE(eq(Value::Number(7), Value::String("7")));
  EXPECT_FALSE(eq(Value::Number(7), Value::String("seven")));
  // strings otherwise.
  EXPECT_TRUE(eq(Value::String("a"), Value::String("a")));
  // Relational always numeric.
  EXPECT_TRUE(*CompareAtomic(CompareOp::kLt, Value::String("9"),
                             Value::String("10"), ctx));
  EXPECT_FALSE(*CompareAtomic(CompareOp::kLt, Value::String("b"),
                              Value::String("a"), ctx));  // NaN < NaN
}

TEST(ConversionsTest, NaNComparisonRules) {
  EvalContext ctx;
  Value nan = Value::Number(std::nan(""));
  EXPECT_FALSE(*CompareAtomic(CompareOp::kEq, nan, nan, ctx));
  EXPECT_TRUE(*CompareAtomic(CompareOp::kNe, nan, nan, ctx));
  EXPECT_FALSE(*CompareAtomic(CompareOp::kLt, nan, Value::Number(1), ctx));
  EXPECT_FALSE(*CompareAtomic(CompareOp::kGe, nan, Value::Number(1), ctx));
}

TEST(RegisterFileTest, SaveRestoreRows) {
  RegisterFile registers(4);
  registers[0] = Value::Number(1);
  registers[2] = Value::String("x");
  std::vector<RegisterId> regs = {0, 2};
  Row row;
  registers.SaveRow(regs, &row);
  registers[0] = Value::Number(99);
  registers[2] = Value::String("clobbered");
  registers.RestoreRow(regs, row);
  EXPECT_EQ(registers[0].AsNumber(), 1);
  EXPECT_EQ(registers[2].AsString(), "x");
}

TEST(RegisterFileTest, ResizePreservesExisting) {
  RegisterFile registers(1);
  registers[0] = Value::Number(5);
  registers.Resize(8);
  EXPECT_EQ(registers[0].AsNumber(), 5);
  EXPECT_TRUE(registers[7].is_null());
}

TEST(NodeRefTest, IdentityAndOrder) {
  NodeRef a = NodeRef::Make(storage::NodeId{1, 2}, 10);
  NodeRef b = NodeRef::Make(storage::NodeId{1, 2}, 10);
  NodeRef c = NodeRef::Make(storage::NodeId{1, 3}, 11);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(NodeRef().valid());
}

}  // namespace
}  // namespace natix::runtime
