// Tests for the lock-order ledger (src/obs/lock_ledger.h): opposing
// acquisition orders across threads must surface as a cycle in the
// class-level acquisition graph, same-class instances taken out of
// ascending order must count as violations, and the /statusz JSON
// export must carry the evidence. Threads use private mutex instances
// (no real contention) so the test records the deadlock-prone *order*
// without ever being able to deadlock itself.

#include "obs/lock_ledger.h"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace natix::obs {
namespace {

#if !defined(NATIX_OBS_DISABLED)

class LockLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ledger_ = &LockLedger::Global();
    saved_mode_ = ledger_->mode();
    ledger_->set_mode(LockLedger::Mode::kRecord);
    ledger_->Reset();
  }
  void TearDown() override {
    ledger_->Reset();
    ledger_->set_mode(saved_mode_);
  }

  LockLedger* ledger_ = nullptr;
  LockLedger::Mode saved_mode_ = LockLedger::Mode::kOff;
};

TEST_F(LockLedgerTest, OpposingOrdersAcrossEightThreadsReportACycle) {
  // Half the threads acquire shard-A -> plan-cache -> shard-B, the other
  // half shard-B -> plan-cache -> shard-A: class-level edges
  // buffer_shard -> plan_cache and plan_cache -> buffer_shard, a cycle
  // (and a latent deadlock) no single execution exhibits.
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      std::mutex shard_a, cache, shard_b;
      for (int i = 0; i < 100; ++i) {
        if (t % 2 == 0) {
          LedgeredMutexLock a(shard_a, LockClass::kBufferShard, 1);
          LedgeredMutexLock c(cache, LockClass::kPlanCache);
          LedgeredMutexLock b(shard_b, LockClass::kBufferShard, 2);
        } else {
          LedgeredMutexLock b(shard_b, LockClass::kBufferShard, 2);
          LedgeredMutexLock c(cache, LockClass::kPlanCache);
          LedgeredMutexLock a(shard_a, LockClass::kBufferShard, 1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(ledger_->HasCycle());
  const std::vector<std::string> cycles = ledger_->Cycles();
  ASSERT_FALSE(cycles.empty());
  bool named = false;
  for (const std::string& cycle : cycles) {
    if (cycle.find("buffer_shard") != std::string::npos &&
        cycle.find("plan_cache") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "cycle listing: " << cycles.front();
  // The odd threads also took shard instance 1 while holding instance 2.
  EXPECT_GT(ledger_->order_violations(), 0u);

  const std::string json = ledger_->GraphJson();
  EXPECT_NE(json.find("\"cycles\":[\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"from\":\"plan_cache\",\"to\":\"buffer_shard\""),
            std::string::npos)
      << json;
}

TEST_F(LockLedgerTest, NestedOrderWithoutOpposersIsClean) {
  std::mutex alloc, shard, cache;
  for (int i = 0; i < 10; ++i) {
    LedgeredMutexLock a(alloc, LockClass::kBufferAlloc);
    LedgeredMutexLock s(shard, LockClass::kBufferShard, 1);
  }
  {
    LedgeredMutexLock c(cache, LockClass::kPlanCache);
  }
  EXPECT_FALSE(ledger_->HasCycle());
  EXPECT_TRUE(ledger_->Cycles().empty());
  EXPECT_EQ(ledger_->order_violations(), 0u);
  const std::string json = ledger_->GraphJson();
  EXPECT_NE(json.find("\"from\":\"buffer_alloc\",\"to\":\"buffer_shard\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cycles\":[]"), std::string::npos) << json;
}

TEST_F(LockLedgerTest, AscendingSameClassInstancesAreSanctioned) {
  // BufferManager::Snapshot's pattern: every shard, in index order.
  std::mutex shards[4];
  {
    std::vector<std::unique_ptr<LedgeredMutexLock>> locks;
    for (int s = 0; s < 4; ++s) {
      locks.push_back(std::make_unique<LedgeredMutexLock>(
          shards[s], LockClass::kBufferShard,
          static_cast<uintptr_t>(s + 1)));
    }
  }
  EXPECT_EQ(ledger_->order_violations(), 0u);
  EXPECT_FALSE(ledger_->HasCycle());
}

TEST_F(LockLedgerTest, DescendingSameClassInstancesViolate) {
  std::mutex shard_hi, shard_lo;
  {
    LedgeredMutexLock hi(shard_hi, LockClass::kBufferShard, 2);
    LedgeredMutexLock lo(shard_lo, LockClass::kBufferShard, 1);
  }
  EXPECT_EQ(ledger_->order_violations(), 1u);
}

TEST_F(LockLedgerTest, OffModeRecordsNothing) {
  ledger_->set_mode(LockLedger::Mode::kOff);
  std::mutex a, b;
  {
    LedgeredMutexLock l1(a, LockClass::kPlanCache);
    LedgeredMutexLock l2(b, LockClass::kAdmission);
  }
  ledger_->set_mode(LockLedger::Mode::kRecord);
  const std::string json = ledger_->GraphJson();
  EXPECT_NE(json.find("\"edges\":[]"), std::string::npos) << json;
}

#else  // NATIX_OBS_DISABLED

TEST(LockLedgerTest, DisabledBuildKeepsTheSurface) {
  std::mutex mu;
  {
    LedgeredMutexLock lock(mu, LockClass::kPlanCache);
  }
  EXPECT_FALSE(LockLedger::Global().HasCycle());
  EXPECT_EQ(LockLedger::Global().GraphJson(), "{\"disabled\":true}");
}

#endif  // NATIX_OBS_DISABLED

}  // namespace
}  // namespace natix::obs
