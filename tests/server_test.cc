// End-to-end tests of the natixd serving core (src/server): query
// endpoints over real sockets, the observability plane (/metrics,
// /statusz), per-request deadlines with early pipeline close, and
// admission control. One shared server (default options) covers the
// happy paths; the admission test builds its own tiny-queue server
// over the same database.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "api/database.h"
#include "base/clock.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "server/http.h"
#include "server/server.h"

namespace natix {
namespace {

constexpr char kBooksXml[] =
    "<catalog>"
    "<book id=\"b1\"><title>First</title><author>Ann</author>"
    "<price>10</price></book>"
    "<book id=\"b2\"><title>Second</title><author>Bob</author>"
    "<price>20</price></book>"
    "</catalog>";

// Quadratic axis navigation over the generated document — slow enough
// (tens of milliseconds and up) that a 1 ms deadline reliably expires
// mid-drain and an execution slot stays visibly occupied.
constexpr char kHeavyQuery[] = "/child::xdoc/desc::*/anc::*/desc::*/@id";

struct ServerFixture {
  std::unique_ptr<Database> db;
  storage::NodeId books_root;
  storage::NodeId xdoc_root;
  std::unique_ptr<server::Server> server;
};

ServerFixture& Fixture() {
  static ServerFixture* fixture = [] {
    auto* f = new ServerFixture();
    auto db = Database::CreateTemp();
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    f->db = std::move(db).value();

    auto books = f->db->LoadDocument("books", kBooksXml);
    EXPECT_TRUE(books.ok()) << books.status().ToString();
    f->books_root = books->root;

    gen::XDocOptions options;
    options.max_elements = 2500;
    options.fanout = 6;
    options.depth = 5;
    auto xdoc = f->db->LoadDocument("xdoc", gen::GenerateXDoc(options));
    EXPECT_TRUE(xdoc.ok()) << xdoc.status().ToString();
    f->xdoc_root = xdoc->root;

    f->server = std::make_unique<server::Server>(f->db.get(),
                                                 server::ServerOptions());
    Status started = f->server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return f;
  }();
  return *fixture;
}

std::string QueryTarget(const std::string& doc, const std::string& xpath,
                        const std::string& extra = "") {
  return "/query?doc=" + doc + "&q=" + server::UrlEncode(xpath) + extra;
}

TEST(ServerTest, HealthzOverKeepAliveConnection) {
  server::HttpClient client(Fixture().server->port());
  for (int i = 0; i < 2; ++i) {
    auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, "ok\n");
  }
}

TEST(ServerTest, QueryStringValues) {
  server::HttpClient client(Fixture().server->port());
  auto response = client.Get(QueryTarget("books", "//title"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->content_type, "application/json");
  EXPECT_NE(response->body.find("\"count\":2"), std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"results\":[\"First\",\"Second\"]"),
            std::string::npos)
      << response->body;
}

TEST(ServerTest, QueryXmlMode) {
  server::HttpClient client(Fixture().server->port());
  auto response =
      client.Get(QueryTarget("books", "//book[@id='b2']/title",
                             "&mode=xml"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("<title>Second</title>"),
            std::string::npos)
      << response->body;
}

TEST(ServerTest, QueryCountModeOmitsResults) {
  server::HttpClient client(Fixture().server->port());
  auto response =
      client.Get(QueryTarget("books", "//book", "&mode=count"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"count\":2"), std::string::npos);
  EXPECT_EQ(response->body.find("\"results\""), std::string::npos)
      << response->body;
}

TEST(ServerTest, ScalarQueryReturnsValue) {
  server::HttpClient client(Fixture().server->port());
  auto response = client.Get(QueryTarget("books", "count(//book)"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"value\":\"2\""), std::string::npos)
      << response->body;
}

TEST(ServerTest, LimitCapsResultAndClosesPipelineEarly) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const uint64_t early_before = metrics.early_exits.value();
  server::HttpClient client(Fixture().server->port());
  auto response =
      client.Get(QueryTarget("xdoc", "//*/@id", "&limit=3&mode=values"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"count\":3"), std::string::npos)
      << response->body;
#if !defined(NATIX_OBS_DISABLED)
  // The Limit operator reached its bound and closed the input pipeline;
  // the process-wide counter sees it even though the serving execution
  // runs uninstrumented.
  EXPECT_GT(metrics.early_exits.value(), early_before);
#else
  (void)early_before;
#endif
}

TEST(ServerTest, BadRequestsGetStructuredErrors) {
  server::HttpClient client(Fixture().server->port());

  auto missing = client.Get("/query?doc=books");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
  EXPECT_NE(missing->body.find("\"code\":\"InvalidArgument\""),
            std::string::npos);

  auto unknown_doc = client.Get(QueryTarget("nosuch", "//a"));
  ASSERT_TRUE(unknown_doc.ok());
  EXPECT_EQ(unknown_doc->status, 404);

  auto bad_xpath = client.Get(QueryTarget("books", "//["));
  ASSERT_TRUE(bad_xpath.ok());
  EXPECT_EQ(bad_xpath->status, 400);

  auto bad_mode = client.Get(QueryTarget("books", "//a", "&mode=wat"));
  ASSERT_TRUE(bad_mode.ok());
  EXPECT_EQ(bad_mode->status, 400);

  auto bad_endpoint = client.Get("/nosuch");
  ASSERT_TRUE(bad_endpoint.ok());
  EXPECT_EQ(bad_endpoint->status, 404);
  EXPECT_NE(bad_endpoint->body.find("\"code\":\"NotFound\""),
            std::string::npos);
}

TEST(ServerTest, MetricsEndpointServesExposition) {
  server::HttpClient client(Fixture().server->port());
  // At least one query first so the histograms are populated.
  auto warm = client.Get(QueryTarget("books", "//title"));
  ASSERT_TRUE(warm.ok());
  auto response = client.Get("/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
#if !defined(NATIX_OBS_DISABLED)
  EXPECT_EQ(response->content_type, obs::kPrometheusContentType);
  EXPECT_NE(response->body.find("# TYPE natix_exec_ns histogram"),
            std::string::npos);
  EXPECT_NE(response->body.find("natix_exec_ns_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(response->body.find("natix_exec_ns_sum "), std::string::npos);
  EXPECT_NE(response->body.find("natix_exec_ns_count "),
            std::string::npos);
  EXPECT_NE(response->body.find("# TYPE natix_http_requests_total "
                                "counter"),
            std::string::npos);
  EXPECT_NE(response->body.find("# TYPE natix_queue_wait_ns histogram"),
            std::string::npos);
  EXPECT_NE(response->body.find("# TYPE natix_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(response->body.find("natix_buffer_resident_pages"),
            std::string::npos);
#else
  // The zero-cost configuration keeps the endpoint but serves the
  // explicit stub instead of empty exposition.
  EXPECT_EQ(response->content_type, "application/json");
  EXPECT_EQ(response->body, "{\"disabled\":true}");
#endif
}

TEST(ServerTest, StatuszReportsServerState) {
  server::HttpClient client(Fixture().server->port());
  auto response = client.Get("/statusz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->content_type, "application/json");
  EXPECT_NE(response->body.find("\"documents\":[\"books\",\"xdoc\"]"),
            std::string::npos)
      << response->body;
  EXPECT_NE(response->body.find("\"plan_cache\":{\"capacity\":"),
            std::string::npos);
  EXPECT_NE(response->body.find("\"buffer_pool\":{\"pages\":"),
            std::string::npos);
  EXPECT_NE(response->body.find("\"resident_pages\":"), std::string::npos);
  EXPECT_NE(response->body.find("\"admission\":{\"max_concurrency\":"),
            std::string::npos);
  EXPECT_NE(response->body.find("\"slow_queries\":["), std::string::npos);
}

TEST(ServerTest, DeadlineExceededRequestGets504) {
#if !defined(NATIX_OBS_DISABLED)
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const uint64_t deadline_before = metrics.deadline_exceeded.value();
#endif
  server::HttpClient client(Fixture().server->port());
  auto response = client.Get(
      QueryTarget("xdoc", kHeavyQuery, "&deadline_ms=1&mode=count"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  EXPECT_NE(response->body.find("\"code\":\"DeadlineExceeded\""),
            std::string::npos)
      << response->body;
#if !defined(NATIX_OBS_DISABLED)
  EXPECT_GT(metrics.deadline_exceeded.value(), deadline_before);
#endif
}

#if !defined(NATIX_OBS_DISABLED)
// The acceptance check behind the 504: an expired deadline doesn't just
// fail the request, it closes the iterator pipeline after the first
// drain-loop check instead of draining the plan to exhaustion.
TEST(ServerTest, DeadlineClosesPipelineEarly) {
  ServerFixture& f = Fixture();
  auto prepared = f.db->Prepare(kHeavyQuery);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto full = (*prepared)->NewExecution(/*collect_stats=*/true);
  ASSERT_TRUE(full.ok());
  auto full_nodes = (*full)->EvaluateNodes(f.xdoc_root);
  ASSERT_TRUE(full_nodes.ok()) << full_nodes.status().ToString();
  const uint64_t full_next = (*full)->Stats()->ComputeTotals().next_calls;
  ASSERT_GT(full_next, 0u);

  auto aborted = (*prepared)->NewExecution(/*collect_stats=*/true);
  ASSERT_TRUE(aborted.ok());
  // An absolute deadline in the distant past: Open and the first Next
  // still run (the checks live in the drain loop), then the first check
  // aborts and cascades Close() down the pipeline.
  (*aborted)->SetDeadlineNs(1);
  auto result = (*aborted)->EvaluateNodes(f.xdoc_root);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const uint64_t aborted_next =
      (*aborted)->Stats()->ComputeTotals().next_calls;
  // "Provably early": producing the first tuple costs a sliver of the
  // full drain. Factor 4 leaves headroom for plan-shape changes.
  EXPECT_LT(aborted_next * 4, full_next)
      << "aborted=" << aborted_next << " full=" << full_next;
}

TEST(ServerTest, CancelFlagAbortsExecution) {
  ServerFixture& f = Fixture();
  auto prepared = f.db->Prepare(kHeavyQuery);
  ASSERT_TRUE(prepared.ok());
  auto execution = (*prepared)->NewExecution();
  ASSERT_TRUE(execution.ok());
  std::atomic<bool> cancel{true};
  (*execution)->SetCancelFlag(&cancel);
  auto result = (*execution)->EvaluateNodes(f.xdoc_root);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}
#endif  // !NATIX_OBS_DISABLED

TEST(ServerTest, AdmissionRejectsWhenQueueIsFull) {
  ServerFixture& f = Fixture();
  server::ServerOptions options;
  options.max_concurrency = 1;
  options.queue_capacity = 0;
  server::Server small(f.db.get(), options);
  ASSERT_TRUE(small.Start().ok());

  // One busy thread re-issues the heavy query back-to-back over a
  // keep-alive connection, occupying the only execution slot almost
  // continuously; the probe's cheap query must then hit the full
  // (zero-capacity) queue and bounce with 503. Retried because a probe
  // can land in the sliver between two heavy executions.
  const std::string heavy =
      QueryTarget("xdoc", kHeavyQuery, "&mode=count");
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    server::HttpClient client(small.port());
    while (!stop.load(std::memory_order_relaxed)) {
      auto response = client.Get(heavy);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->status, 200);
    }
  });

  server::HttpClient probe(small.port());
  server::HttpResponse rejected;
  bool saw_rejection = false;
  for (int i = 0; i < 5000 && !saw_rejection; ++i) {
    auto response = probe.Get(QueryTarget("books", "//title"));
    if (!response.ok()) break;
    if (response->status == 503) {
      rejected = *response;
      saw_rejection = true;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  busy.join();

  ASSERT_TRUE(saw_rejection);
  EXPECT_NE(rejected.body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos)
      << rejected.body;
#if !defined(NATIX_OBS_DISABLED)
  EXPECT_GT(obs::MetricsRegistry::Global().requests_rejected.value(), 0u);
#endif
  small.Shutdown();
}

TEST(ServerTest, UrlCodecRoundTrips) {
  EXPECT_EQ(server::UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(server::UrlDecode("%2F%2Fbook%5B%40id%3D%27b1%27%5D"),
            "//book[@id='b1']");
  const std::string raw = "//n[@id='x 1']/desc::*";
  EXPECT_EQ(server::UrlDecode(server::UrlEncode(raw)), raw);
}

}  // namespace
}  // namespace natix
