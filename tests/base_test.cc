#include <cmath>

#include <gtest/gtest.h>

#include "base/status.h"
#include "base/statusor.h"
#include "base/strings.h"
#include "base/xpath_number.h"

namespace natix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad query");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad query");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad query");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> sor = 42;
  ASSERT_TRUE(sor.ok());
  EXPECT_EQ(*sor, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> sor = Status::NotFound("nope");
  ASSERT_FALSE(sor.ok());
  EXPECT_EQ(sor.status().code(), StatusCode::kNotFound);
}

TEST(XPathNumberTest, ParseBasics) {
  EXPECT_DOUBLE_EQ(StringToXPathNumber("12"), 12.0);
  EXPECT_DOUBLE_EQ(StringToXPathNumber("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(StringToXPathNumber("  7.25  "), 7.25);
  EXPECT_DOUBLE_EQ(StringToXPathNumber(".5"), 0.5);
  EXPECT_DOUBLE_EQ(StringToXPathNumber("5."), 5.0);
}

TEST(XPathNumberTest, ParseRejectsGarbage) {
  EXPECT_TRUE(std::isnan(StringToXPathNumber("")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber("  ")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber("abc")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber("12a")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber("1e3")));  // no exponents
  EXPECT_TRUE(std::isnan(StringToXPathNumber("+1")));   // no unary plus
  EXPECT_TRUE(std::isnan(StringToXPathNumber("-")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber(".")));
  EXPECT_TRUE(std::isnan(StringToXPathNumber("1 2")));
}

TEST(XPathNumberTest, FormatSpecials) {
  EXPECT_EQ(XPathNumberToString(std::nan("")), "NaN");
  EXPECT_EQ(XPathNumberToString(HUGE_VAL), "Infinity");
  EXPECT_EQ(XPathNumberToString(-HUGE_VAL), "-Infinity");
  EXPECT_EQ(XPathNumberToString(0.0), "0");
  EXPECT_EQ(XPathNumberToString(-0.0), "0");
}

TEST(XPathNumberTest, FormatIntegers) {
  EXPECT_EQ(XPathNumberToString(17), "17");
  EXPECT_EQ(XPathNumberToString(-4), "-4");
  EXPECT_EQ(XPathNumberToString(1e15), "1000000000000000");
}

TEST(XPathNumberTest, FormatDecimalsWithoutExponent) {
  EXPECT_EQ(XPathNumberToString(0.5), "0.5");
  EXPECT_EQ(XPathNumberToString(-2.25), "-2.25");
  EXPECT_EQ(XPathNumberToString(1e-7), "0.0000001");
  EXPECT_EQ(XPathNumberToString(1.5e21), "1500000000000000000000");
}

TEST(XPathNumberTest, FormatRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 123.456, 1e-12, 3.14159265358979}) {
    EXPECT_EQ(StringToXPathNumber(XPathNumberToString(v)), v) << v;
  }
}

TEST(XPathNumberTest, RoundHalfTowardsPositiveInfinity) {
  EXPECT_DOUBLE_EQ(XPathRound(2.5), 3.0);
  EXPECT_DOUBLE_EQ(XPathRound(-2.5), -2.0);
  EXPECT_DOUBLE_EQ(XPathRound(2.4), 2.0);
  EXPECT_DOUBLE_EQ(XPathRound(-2.6), -3.0);
  EXPECT_TRUE(std::isnan(XPathRound(std::nan(""))));
  EXPECT_EQ(XPathRound(HUGE_VAL), HUGE_VAL);
  // -0.2 rounds to negative zero.
  double r = XPathRound(-0.2);
  EXPECT_EQ(r, 0.0);
  EXPECT_TRUE(std::signbit(r));
}

TEST(StringsTest, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  a  b \t\n c  "), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace("   "), "");
  EXPECT_EQ(NormalizeSpace("x"), "x");
}

TEST(StringsTest, TranslateChars) {
  EXPECT_EQ(TranslateChars("bar", "abc", "ABC"), "BAr");
  EXPECT_EQ(TranslateChars("--aaa--", "abc-", "ABC"), "AAA");
  // First occurrence in `from` wins.
  EXPECT_EQ(TranslateChars("a", "aa", "xy"), "x");
}

TEST(StringsTest, SubstringBeforeAfter) {
  EXPECT_EQ(SubstringBefore("1999/04/01", "/"), "1999");
  EXPECT_EQ(SubstringAfter("1999/04/01", "/"), "04/01");
  EXPECT_EQ(SubstringBefore("abc", "x"), "");
  EXPECT_EQ(SubstringAfter("abc", "x"), "");
  EXPECT_EQ(SubstringAfter("abc", ""), "abc");
}

TEST(StringsTest, Utf8LengthCountsCodepoints) {
  EXPECT_EQ(Utf8Length("abc"), 3u);
  EXPECT_EQ(Utf8Length(""), 0u);
  EXPECT_EQ(Utf8Length("\xC3\xA9"), 1u);          // é
  EXPECT_EQ(Utf8Length("a\xE2\x82\xACz"), 3u);    // a€z
}

TEST(StringsTest, Utf8Substring) {
  EXPECT_EQ(Utf8Substring("12345", 1, 3), "234");
  EXPECT_EQ(Utf8Substring("a\xE2\x82\xACz", 1, 1), "\xE2\x82\xAC");
  EXPECT_EQ(Utf8Substring("abc", 5, 2), "");
  EXPECT_EQ(Utf8Substring("abc", 0, 100), "abc");
}

TEST(StringsTest, SplitWhitespace) {
  auto tokens = SplitWhitespace("  id1 \t id2\nid3 ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "id1");
  EXPECT_EQ(tokens[1], "id2");
  EXPECT_EQ(tokens[2], "id3");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

}  // namespace
}  // namespace natix
