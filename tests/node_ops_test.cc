#include "runtime/node_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dom/dom.h"
#include "dom/dom_builder.h"
#include "storage/document_loader.h"
#include "storage/stored_node.h"

namespace natix::runtime {
namespace {

using dom::Node;
using dom::NodeKind;

/// Test fixture loading the same XML both into the page-based store and
/// into a DOM, so every axis result from AxisCursor can be verified
/// against an independently computed reference. Node identity is matched
/// through document-order ranks, which both loaders assign identically
/// (element, then its attributes, then its children).
class AxisConformance {
 public:
  explicit AxisConformance(const std::string& xml) {
    storage::NodeStore::Options options;
    options.buffer_pages = 64;
    auto store = storage::NodeStore::CreateTemp(options);
    NATIX_CHECK(store.ok());
    store_ = std::move(store.value());
    auto info = storage::LoadDocument(store_.get(), "doc", xml);
    NATIX_CHECK(info.ok());
    root_id_ = info->root;

    auto doc = dom::ParseDocument(xml);
    NATIX_CHECK(doc.ok());
    doc_ = std::move(doc.value());

    IndexDom(doc_->root());
    IndexStore(root_id_);
    NATIX_CHECK(dom_by_order_.size() == store_by_order_.size());
  }

  /// All document-order ranks, ascending.
  std::vector<uint64_t> AllOrders() const {
    std::vector<uint64_t> out;
    for (const auto& [order, node] : dom_by_order_) out.push_back(order);
    return out;
  }

  const Node* DomNode(uint64_t order) const {
    return dom_by_order_.at(order);
  }
  storage::NodeId StoreNode(uint64_t order) const {
    return store_by_order_.at(order);
  }

  /// Runs the cursor and returns the produced order ranks (in cursor
  /// order).
  std::vector<uint64_t> RunCursor(Axis axis, const NodeTest& test,
                                  uint64_t context_order) const {
    AxisCursor cursor(store_.get());
    NATIX_CHECK(cursor.Open(axis, test, StoreNode(context_order)).ok());
    std::vector<uint64_t> out;
    while (true) {
      bool has = false;
      NodeRef node;
      NATIX_CHECK(cursor.Next(&has, &node).ok());
      if (!has) break;
      out.push_back(node.order);
    }
    return out;
  }

  /// Reference axis evaluation over the DOM; returns order ranks in axis
  /// order (reverse axes: descending document order).
  std::vector<uint64_t> Reference(Axis axis, uint64_t context_order) const {
    const Node* ctx = DomNode(context_order);
    std::vector<const Node*> result;
    auto is_ancestor_of_ctx = [&](const Node* n) {
      for (const Node* a = ctx->parent; a != nullptr; a = a->parent) {
        if (a == n) return true;
      }
      return false;
    };
    auto is_descendant_of_ctx = [&](const Node* n) {
      for (const Node* a = n->parent; a != nullptr; a = a->parent) {
        if (a == ctx) return true;
      }
      return false;
    };
    switch (axis) {
      case Axis::kSelf:
        result.push_back(ctx);
        break;
      case Axis::kChild:
        for (const Node* c : ctx->children) result.push_back(c);
        break;
      case Axis::kAttribute:
        for (const Node* a : ctx->attributes) result.push_back(a);
        break;
      case Axis::kParent:
        if (ctx->parent != nullptr) result.push_back(ctx->parent);
        break;
      case Axis::kAncestor:
        for (const Node* a = ctx->parent; a != nullptr; a = a->parent) {
          result.push_back(a);
        }
        break;
      case Axis::kAncestorOrSelf:
        for (const Node* a = ctx; a != nullptr; a = a->parent) {
          result.push_back(a);
        }
        break;
      case Axis::kFollowingSibling: {
        if (ctx->kind == NodeKind::kAttribute) break;
        for (const Node* s = ctx->NextSibling(); s != nullptr;
             s = s->NextSibling()) {
          result.push_back(s);
        }
        break;
      }
      case Axis::kPrecedingSibling: {
        if (ctx->kind == NodeKind::kAttribute) break;
        for (const Node* s = ctx->PreviousSibling(); s != nullptr;
             s = s->PreviousSibling()) {
          result.push_back(s);
        }
        break;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        for (const auto& [order, n] : dom_by_order_) {
          if (n == ctx) {
            // The context itself is on descendant-or-self even when it is
            // an attribute node.
            if (axis == Axis::kDescendantOrSelf) result.push_back(n);
            continue;
          }
          if (n->kind == NodeKind::kAttribute) continue;
          if (is_descendant_of_ctx(n)) result.push_back(n);
        }
        break;
      case Axis::kFollowing:
        for (const auto& [order, n] : dom_by_order_) {
          if (n->kind == NodeKind::kAttribute) continue;
          if (order <= context_order) continue;
          if (is_descendant_of_ctx(n)) continue;
          result.push_back(n);
        }
        break;
      case Axis::kPreceding:
        for (const auto& [order, n] : dom_by_order_) {
          if (n->kind == NodeKind::kAttribute) continue;
          if (order >= context_order) continue;
          if (is_ancestor_of_ctx(n)) continue;
          result.push_back(n);
        }
        break;
    }
    std::vector<uint64_t> orders;
    for (const Node* n : result) orders.push_back(n->order);
    // Membership loops above yield ascending order; reverse axes iterate
    // descending. Parent/ancestor chains are already descending.
    if (axis == Axis::kPreceding) {
      std::sort(orders.rbegin(), orders.rend());
    } else if (!AxisIsReverse(axis)) {
      std::sort(orders.begin(), orders.end());
    }
    return orders;
  }

 private:
  void IndexDom(const Node* node) {
    dom_by_order_[node->order] = node;
    for (const Node* a : node->attributes) dom_by_order_[a->order] = a;
    for (const Node* c : node->children) IndexDom(c);
  }
  void IndexStore(storage::NodeId id) {
    storage::StoredNode node(store_.get(), id);
    store_by_order_[*node.order()] = id;
    auto attr = *node.first_attribute();
    while (attr.valid()) {
      store_by_order_[*attr.order()] = attr.id();
      attr = *attr.next_sibling();
    }
    auto child = *node.first_child();
    while (child.valid()) {
      IndexStore(child.id());
      child = *child.next_sibling();
    }
  }

  std::unique_ptr<storage::NodeStore> store_;
  std::unique_ptr<dom::Document> doc_;
  storage::NodeId root_id_;
  std::map<uint64_t, const Node*> dom_by_order_;
  std::map<uint64_t, storage::NodeId> store_by_order_;
};

constexpr Axis kAllAxes[] = {
    Axis::kChild,         Axis::kDescendant,      Axis::kDescendantOrSelf,
    Axis::kParent,        Axis::kAncestor,        Axis::kAncestorOrSelf,
    Axis::kFollowing,     Axis::kFollowingSibling, Axis::kPreceding,
    Axis::kPrecedingSibling, Axis::kAttribute,    Axis::kSelf};

const char* kDocuments[] = {
    // Deeply mixed content with attributes, comments, PIs.
    "<a p='1' q='2'><b><c r='3'>t1</c><d/>t2</b><!--x--><e><f>t3<g/>"
    "</f></e><?pi data?></a>",
    // Wide flat document.
    "<r><x/><x/><x/><x/><x/><y/><x/><z/><x/><x/></r>",
    // Deep chain.
    "<d1><d2><d3><d4><d5>leaf</d5></d4></d3></d2></d1>",
    // Single element.
    "<only/>",
    // Text-heavy siblings.
    "<m>alpha<n>beta</n>gamma<n>delta</n>epsilon</m>",
};

class AxisConformanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AxisConformanceTest, EveryAxisFromEveryNodeMatchesReference) {
  AxisConformance fixture(GetParam());
  NodeTest any;
  any.kind = NodeTest::Kind::kAnyKind;
  for (uint64_t context : fixture.AllOrders()) {
    for (Axis axis : kAllAxes) {
      EXPECT_EQ(fixture.RunCursor(axis, any, context),
                fixture.Reference(axis, context))
          << "axis=" << AxisName(axis) << " context order=" << context;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Documents, AxisConformanceTest,
                         ::testing::ValuesIn(kDocuments));

TEST(AxisCursorTest, NameTestFiltersByDictionaryId) {
  AxisConformance fixture("<r><a/><b/><a><a/></a></r>");
  // The store interned names during load; find the id of "a" through a
  // second fixture-independent load is overkill — reuse cursor output:
  // descendant::node() from root and check names via the reference DOM.
  NodeTest any;
  any.kind = NodeTest::Kind::kAnyKind;
  auto all = fixture.RunCursor(Axis::kDescendant, any, 0);
  EXPECT_EQ(all.size(), 5u);  // r, a, b, a, a
}

TEST(AxisCursorTest, TextTestSelectsOnlyText) {
  AxisConformance fixture("<m>alpha<n>beta</n>gamma</m>");
  NodeTest text;
  text.kind = NodeTest::Kind::kText;
  auto texts = fixture.RunCursor(Axis::kDescendant, text, 0);
  EXPECT_EQ(texts.size(), 3u);
  NodeTest any_name;
  any_name.kind = NodeTest::Kind::kAnyName;
  auto elements = fixture.RunCursor(Axis::kDescendant, any_name, 0);
  EXPECT_EQ(elements.size(), 2u);  // m, n
}

TEST(AxisCursorTest, StarOnAttributeAxisMatchesAttributes) {
  AxisConformance fixture("<r a='1' b='2'><c d='3'/></r>");
  NodeTest any_name;
  any_name.kind = NodeTest::Kind::kAnyName;
  // Attribute axis from element r (order 1).
  auto attrs = fixture.RunCursor(Axis::kAttribute, any_name, 1);
  EXPECT_EQ(attrs.size(), 2u);
  // node() on the attribute axis also yields the attributes.
  NodeTest any;
  any.kind = NodeTest::Kind::kAnyKind;
  EXPECT_EQ(fixture.RunCursor(Axis::kAttribute, any, 1).size(), 2u);
}

TEST(AxisCursorTest, InvalidContextYieldsNothing) {
  AxisConformance fixture("<r/>");
  AxisCursor cursor(nullptr);
  NodeTest any;
  // Open with an invalid node id: cursor must be immediately exhausted.
  EXPECT_TRUE(cursor.Open(Axis::kChild, any, storage::kInvalidNodeId).ok());
  bool has = true;
  NodeRef out;
  EXPECT_TRUE(cursor.Next(&has, &out).ok());
  EXPECT_FALSE(has);
}

TEST(NodeOpsTest, PpdClassificationMatchesPaper) {
  EXPECT_TRUE(AxisIsPpd(Axis::kFollowing));
  EXPECT_TRUE(AxisIsPpd(Axis::kFollowingSibling));
  EXPECT_TRUE(AxisIsPpd(Axis::kPreceding));
  EXPECT_TRUE(AxisIsPpd(Axis::kPrecedingSibling));
  EXPECT_TRUE(AxisIsPpd(Axis::kParent));
  EXPECT_TRUE(AxisIsPpd(Axis::kAncestor));
  EXPECT_TRUE(AxisIsPpd(Axis::kAncestorOrSelf));
  EXPECT_TRUE(AxisIsPpd(Axis::kDescendant));
  EXPECT_TRUE(AxisIsPpd(Axis::kDescendantOrSelf));
  EXPECT_FALSE(AxisIsPpd(Axis::kChild));
  EXPECT_FALSE(AxisIsPpd(Axis::kAttribute));
  EXPECT_FALSE(AxisIsPpd(Axis::kSelf));
}

TEST(NodeOpsTest, ReverseAxisClassification) {
  EXPECT_TRUE(AxisIsReverse(Axis::kAncestor));
  EXPECT_TRUE(AxisIsReverse(Axis::kAncestorOrSelf));
  EXPECT_TRUE(AxisIsReverse(Axis::kParent));
  EXPECT_TRUE(AxisIsReverse(Axis::kPreceding));
  EXPECT_TRUE(AxisIsReverse(Axis::kPrecedingSibling));
  EXPECT_FALSE(AxisIsReverse(Axis::kChild));
  EXPECT_FALSE(AxisIsReverse(Axis::kDescendant));
  EXPECT_FALSE(AxisIsReverse(Axis::kFollowing));
  EXPECT_FALSE(AxisIsReverse(Axis::kSelf));
}

}  // namespace
}  // namespace natix::runtime
