// NVM unit tests: scalar expressions are compiled through the assembler
// and executed by the VM directly, without the surrounding iterator
// machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "algebra/operator.h"
#include "algebra/rewriter.h"
#include "analysis/nvm_optimizer.h"
#include "analysis/plan_verifier.h"
#include "nvm/assembler.h"
#include "nvm/vm.h"
#include "storage/document_loader.h"

namespace natix::nvm {
namespace {

using algebra::MakeScalar;
using algebra::Scalar;
using algebra::ScalarKind;
using algebra::ScalarPtr;
using runtime::Value;

ScalarPtr Num(double v) {
  ScalarPtr s = MakeScalar(ScalarKind::kNumberConst);
  s->number = v;
  return s;
}
ScalarPtr Str(std::string v) {
  ScalarPtr s = MakeScalar(ScalarKind::kStringConst);
  s->string_value = std::move(v);
  return s;
}
ScalarPtr Boolean(bool v) {
  ScalarPtr s = MakeScalar(ScalarKind::kBoolConst);
  s->boolean = v;
  return s;
}
ScalarPtr Arith(xpath::BinaryOp op, ScalarPtr a, ScalarPtr b) {
  ScalarPtr s = MakeScalar(ScalarKind::kArith);
  s->op = op;
  s->children.push_back(std::move(a));
  s->children.push_back(std::move(b));
  return s;
}
ScalarPtr Logical(xpath::BinaryOp op, ScalarPtr a, ScalarPtr b) {
  ScalarPtr s = MakeScalar(ScalarKind::kLogical);
  s->op = op;
  s->children.push_back(std::move(a));
  s->children.push_back(std::move(b));
  return s;
}
ScalarPtr Compare(runtime::CompareOp op, ScalarPtr a, ScalarPtr b) {
  ScalarPtr s = MakeScalar(ScalarKind::kCompare);
  s->cmp = op;
  s->children.push_back(std::move(a));
  s->children.push_back(std::move(b));
  return s;
}
ScalarPtr Call(xpath::FunctionId id, std::vector<ScalarPtr> args) {
  ScalarPtr s = MakeScalar(ScalarKind::kFunc);
  s->function = id;
  s->children = std::move(args);
  return s;
}
ScalarPtr AttrRef(const std::string& name) {
  ScalarPtr s = MakeScalar(ScalarKind::kAttrRef);
  s->name = name;
  return s;
}
ScalarPtr VarRef(const std::string& name) {
  ScalarPtr s = MakeScalar(ScalarKind::kVarRef);
  s->name = name;
  return s;
}

// Helper because brace-init of vector<unique_ptr> is painful.
std::vector<ScalarPtr> MakeVector(ScalarPtr a) {
  std::vector<ScalarPtr> v;
  v.push_back(std::move(a));
  return v;
}
std::vector<ScalarPtr> MakeVector(ScalarPtr a, ScalarPtr b) {
  std::vector<ScalarPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}
std::vector<ScalarPtr> MakeVector(ScalarPtr a, ScalarPtr b, ScalarPtr c) {
  std::vector<ScalarPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  v.push_back(std::move(c));
  return v;
}


/// Evaluates a scalar over a one-attribute tuple {"attr0": tuple_value}.
StatusOr<Value> Evaluate(const Scalar& scalar, const Value& tuple_value,
                         const storage::NodeStore* store = nullptr) {
  AttrResolver resolver =
      [](const std::string& name) -> StatusOr<runtime::RegisterId> {
    if (name == "attr0") return runtime::RegisterId{0};
    return Status::Internal("unknown attribute " + name);
  };
  NestedRegistrar registrar =
      [](const Scalar&) -> StatusOr<size_t> {
    return Status::Internal("no nested plans in this test");
  };
  NATIX_ASSIGN_OR_RETURN(Program program,
                         CompileScalar(scalar, resolver, registrar));
  Vm vm(&program);
  runtime::RegisterFile registers(1);
  registers[0] = tuple_value;
  runtime::EvalContext ctx;
  ctx.store = store;
  std::unordered_map<std::string, Value> variables;
  variables["v"] = Value::Number(42);
  return vm.Run(registers, ctx, variables,
                [](size_t) -> StatusOr<Value> {
                  return Status::Internal("no nested plans");
                });
}

double EvalNumber(ScalarPtr s) {
  auto v = Evaluate(*s, Value());
  NATIX_CHECK(v.ok());
  return v->AsNumber();
}
std::string EvalString(ScalarPtr s) {
  auto v = Evaluate(*s, Value());
  NATIX_CHECK(v.ok());
  return v->AsString();
}
bool EvalBool(ScalarPtr s) {
  auto v = Evaluate(*s, Value());
  NATIX_CHECK(v.ok());
  return v->AsBoolean();
}

TEST(NvmTest, Arithmetic) {
  using xpath::BinaryOp;
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kAdd, Num(2), Num(3))), 5);
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kSub, Num(2), Num(3))), -1);
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kMul, Num(2), Num(3))), 6);
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kDiv, Num(7), Num(2))), 3.5);
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kMod, Num(7), Num(3))), 1);
  // XPath mod keeps the dividend's sign; div by zero is IEEE.
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kMod, Num(-7), Num(3))), -1);
  EXPECT_TRUE(std::isinf(EvalNumber(Arith(BinaryOp::kDiv, Num(1), Num(0)))));
  EXPECT_TRUE(std::isnan(EvalNumber(Arith(BinaryOp::kDiv, Num(0), Num(0)))));
}

TEST(NvmTest, ArithmeticConvertsOperands) {
  using xpath::BinaryOp;
  EXPECT_EQ(EvalNumber(Arith(BinaryOp::kAdd, Str("4"), Boolean(true))), 5);
  EXPECT_TRUE(
      std::isnan(EvalNumber(Arith(BinaryOp::kAdd, Str("x"), Num(1)))));
}

TEST(NvmTest, ShortCircuitLogical) {
  using xpath::BinaryOp;
  EXPECT_TRUE(EvalBool(Logical(BinaryOp::kOr, Boolean(true),
                               Boolean(false))));
  EXPECT_FALSE(EvalBool(Logical(BinaryOp::kAnd, Boolean(false),
                                Boolean(true))));
  // The right operand of a decided and/or is skipped: an unbound
  // variable there must not fault.
  ScalarPtr skipped = Logical(BinaryOp::kOr, Boolean(true),
                              VarRef("unbound"));
  auto v = Evaluate(*skipped, Value());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->AsBoolean());
  // And when it is not skipped, the fault shows.
  ScalarPtr taken = Logical(BinaryOp::kOr, Boolean(false),
                            VarRef("unbound"));
  EXPECT_FALSE(Evaluate(*taken, Value()).ok());
}

TEST(NvmTest, Comparisons) {
  using runtime::CompareOp;
  EXPECT_TRUE(EvalBool(Compare(CompareOp::kLt, Num(1), Num(2))));
  EXPECT_FALSE(EvalBool(Compare(CompareOp::kGe, Num(1), Num(2))));
  // Type promotion: number vs string compares numerically.
  EXPECT_TRUE(EvalBool(Compare(CompareOp::kEq, Num(5), Str("5"))));
  // Boolean dominates equality.
  EXPECT_TRUE(EvalBool(Compare(CompareOp::kEq, Boolean(true), Str("x"))));
  // NaN compares false to everything with =.
  EXPECT_FALSE(EvalBool(Compare(CompareOp::kEq,
                                Call(xpath::FunctionId::kNumber,
                                     MakeVector(Str("x"))),
                                Num(1))));
  EXPECT_TRUE(EvalBool(Compare(CompareOp::kNe,
                               Call(xpath::FunctionId::kNumber,
                                    MakeVector(Str("x"))),
                               Num(1))));
}

TEST(NvmTest, StringFunctions) {
  using xpath::FunctionId;
  EXPECT_EQ(EvalString(Call(FunctionId::kConcat,
                            MakeVector(Str("a"), Str("b"), Str("c")))),
            "abc");
  EXPECT_TRUE(EvalBool(Call(FunctionId::kStartsWith,
                            MakeVector(Str("hello"), Str("he")))));
  EXPECT_TRUE(EvalBool(Call(FunctionId::kContains,
                            MakeVector(Str("hello"), Str("ell")))));
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstringBefore,
                            MakeVector(Str("a/b"), Str("/")))),
            "a");
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstringAfter,
                            MakeVector(Str("a/b"), Str("/")))),
            "b");
  EXPECT_EQ(EvalString(Call(FunctionId::kNormalizeSpace,
                            MakeVector(Str("  x  y ")))),
            "x y");
  EXPECT_EQ(EvalString(Call(FunctionId::kTranslate,
                            MakeVector(Str("bar"), Str("abc"), Str("ABC")))),
            "BAr");
  EXPECT_EQ(EvalNumber(Call(FunctionId::kStringLength,
                            MakeVector(Str("four")))),
            4);
}

TEST(NvmTest, SubstringEdgeCases) {
  using xpath::FunctionId;
  // The recommendation's examples (Sec. 4.2).
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstring,
                            MakeVector(Str("12345"), Num(2), Num(3)))),
            "234");
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstring,
                            MakeVector(Str("12345"), Num(1.5), Num(2.6)))),
            "234");
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstring,
                            MakeVector(Str("12345"), Num(0), Num(3)))),
            "12");
  EXPECT_EQ(EvalString(Call(
                FunctionId::kSubstring,
                MakeVector(Str("12345"), Arith(xpath::BinaryOp::kDiv,
                                               Num(0), Num(0)),
                           Num(3)))),
            "");
  EXPECT_EQ(EvalString(Call(FunctionId::kSubstring,
                            MakeVector(Str("12345"), Num(2)))),
            "2345");
  EXPECT_EQ(EvalString(Call(
                FunctionId::kSubstring,
                MakeVector(Str("12345"), Num(-42),
                           Arith(xpath::BinaryOp::kDiv, Num(1), Num(0))))),
            "12345");
  // -Infinity start with +Infinity length: the bound sum is NaN, nothing
  // qualifies (the recommendation's last substring() example).
  EXPECT_EQ(EvalString(Call(
                FunctionId::kSubstring,
                MakeVector(Str("12345"),
                           Arith(xpath::BinaryOp::kDiv, Num(-1), Num(0)),
                           Arith(xpath::BinaryOp::kDiv, Num(1), Num(0))))),
            "");
}

TEST(NvmTest, NumberFunctions) {
  using xpath::FunctionId;
  EXPECT_EQ(EvalNumber(Call(FunctionId::kFloor, MakeVector(Num(2.6)))), 2);
  EXPECT_EQ(EvalNumber(Call(FunctionId::kCeiling, MakeVector(Num(2.2)))), 3);
  EXPECT_EQ(EvalNumber(Call(FunctionId::kRound, MakeVector(Num(2.5)))), 3);
  EXPECT_EQ(EvalNumber(Call(FunctionId::kRound, MakeVector(Num(-2.5)))), -2);
}

TEST(NvmTest, VariablesAndAttributes) {
  auto v = Evaluate(*VarRef("v"), Value());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsNumber(), 42);

  auto a = Evaluate(*Arith(xpath::BinaryOp::kAdd, AttrRef("attr0"), Num(1)),
                    Value::Number(9));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->AsNumber(), 10);

  EXPECT_FALSE(Evaluate(*VarRef("missing"), Value()).ok());
}

TEST(NvmTest, NodeNavigation) {
  storage::NodeStore::Options options;
  options.buffer_pages = 16;
  auto store = storage::NodeStore::CreateTemp(options);
  ASSERT_TRUE(store.ok());
  auto info = storage::LoadDocument(
      store->get(), "doc",
      "<outer xml:lang='en'><ns:inner/>text</outer>");
  ASSERT_TRUE(info.ok());

  // Find the outer element.
  storage::NodeRecord root_record;
  ASSERT_TRUE((*store)->ReadNode(info->root, &root_record).ok());
  storage::NodeId outer = root_record.first_child;
  storage::NodeRecord outer_record;
  ASSERT_TRUE((*store)->ReadNode(outer, &outer_record).ok());
  storage::NodeId inner = outer_record.first_child;
  storage::NodeRecord inner_record;
  ASSERT_TRUE((*store)->ReadNode(inner, &inner_record).ok());

  Value inner_node = Value::Node(
      runtime::NodeRef::Make(inner, inner_record.order));

  // name / local-name.
  auto name = Evaluate(*Call(xpath::FunctionId::kRootInternal,
                             MakeVector(AttrRef("attr0"))),
                       inner_node, store->get());
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->AsNode().node_id(), info->root);

  // lang() climbs to the xml:lang on <outer>.
  auto lang = Evaluate(*Call(xpath::FunctionId::kLang,
                             MakeVector(Str("en"), AttrRef("attr0"))),
                       inner_node, store->get());
  ASSERT_TRUE(lang.ok());
  EXPECT_TRUE(lang->AsBoolean());
  auto lang_de = Evaluate(*Call(xpath::FunctionId::kLang,
                                MakeVector(Str("de"), AttrRef("attr0"))),
                          inner_node, store->get());
  ASSERT_TRUE(lang_de.ok());
  EXPECT_FALSE(lang_de->AsBoolean());
}

// --- assembler jump-target fixup regressions ------------------------------
//
// The assembler patches forward-jump placeholders after emission; these
// pin the edge cases of that fixup: a target that lands exactly on the
// last instruction, an empty-body self-loop, and a backward branch. All
// three must satisfy the Layer-3 verifier and survive the bytecode
// optimizer (whose jump-chain chasing must not spin on a self-loop).

TEST(NvmJumpFixupTest, ShortCircuitTargetsStayInRange) {
  // Short-circuit or: the taken edge jumps over the rhs evaluation,
  // close to the end of the program.
  ScalarPtr expr = Logical(xpath::BinaryOp::kOr, Boolean(true),
                           VarRef("unbound"));
  AttrResolver resolver =
      [](const std::string&) -> StatusOr<runtime::RegisterId> {
    return Status::Internal("no attributes");
  };
  NestedRegistrar registrar = [](const Scalar&) -> StatusOr<size_t> {
    return Status::Internal("no nested plans");
  };
  auto program = CompileScalar(*expr, resolver, registrar);
  ASSERT_TRUE(program.ok());
  for (const Instruction& ins : program->code) {
    if (ins.op == OpCode::kJump || ins.op == OpCode::kJumpIfTrue ||
        ins.op == OpCode::kJumpIfFalse) {
      EXPECT_LT(ins.b, program->code.size());
    }
  }
  EXPECT_TRUE(analysis::VerifyProgram(*program, 0, 0).ok());
}

TEST(NvmJumpFixupTest, JumpToLastInstructionIsValid) {
  // The conditional jump targets the final halt — the largest legal
  // target. One past it must be rejected.
  Program program;
  program.code = {Instruction{OpCode::kLoadConst, 0, 0, 0, 0},
                  Instruction{OpCode::kJumpIfTrue, 0, 2, 0, 0},
                  Instruction{OpCode::kHalt, 0, 0, 0, 0}};
  program.register_count = 1;
  program.constants = {Value::Boolean(true)};
  EXPECT_TRUE(analysis::VerifyProgram(program, 0, 0).ok());

  auto result = Vm(&program).Run(
      runtime::RegisterFile(0), runtime::EvalContext{}, {},
      [](size_t) -> StatusOr<Value> {
        return Status::Internal("no nested plans");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->AsBoolean());

  program.code[1].b = 3;  // one past the end
  auto status = analysis::VerifyProgram(program, 0, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(NvmJumpFixupTest, EmptyBodySelfLoopVerifiesAndOptimizerTerminates) {
  // `0: jump 0` — an empty-body loop. Structurally legal (it cannot
  // fall off the end); both the verifier's dataflow worklist and the
  // optimizer's jump-chain chasing must terminate on the cycle.
  Program program;
  program.code = {Instruction{OpCode::kJump, 0, 0, 0, 0},
                  Instruction{OpCode::kHalt, 0, 0, 0, 0}};
  program.register_count = 1;
  EXPECT_TRUE(analysis::VerifyProgram(program, 0, 0).ok());

  algebra::RewriteLog log;
  ASSERT_TRUE(
      analysis::OptimizeNvmProgram(&program, "test", 0, 0, &log).ok());
  // Whatever the passes did (the unreachable halt may be dropped), the
  // result must still verify and still loop on pc 0.
  EXPECT_TRUE(analysis::VerifyProgram(program, 0, 0).ok());
  ASSERT_FALSE(program.code.empty());
  EXPECT_EQ(program.code[0].op, OpCode::kJump);
  EXPECT_EQ(program.code[0].b, 0);
}

TEST(NvmJumpFixupTest, BackwardBranchVerifiesAndOptimizes) {
  Program program;
  program.code = {Instruction{OpCode::kLoadConst, 0, 0, 0, 0},
                  Instruction{OpCode::kJumpIfTrue, 0, 0, 0, 0},
                  Instruction{OpCode::kHalt, 0, 0, 0, 0}};
  program.register_count = 1;
  program.constants = {Value::Boolean(false)};
  EXPECT_TRUE(analysis::VerifyProgram(program, 0, 0).ok());

  algebra::RewriteLog log;
  ASSERT_TRUE(
      analysis::OptimizeNvmProgram(&program, "test", 0, 0, &log).ok());
  EXPECT_TRUE(analysis::VerifyProgram(program, 0, 0).ok());
  auto result = Vm(&program).Run(
      runtime::RegisterFile(0), runtime::EvalContext{}, {},
      [](size_t) -> StatusOr<Value> {
        return Status::Internal("no nested plans");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->AsBoolean());
}

TEST(NvmTest, DisassemblerIsReadable) {
  ScalarPtr expr = Arith(xpath::BinaryOp::kAdd, Num(1), AttrRef("attr0"));
  AttrResolver resolver =
      [](const std::string&) -> StatusOr<runtime::RegisterId> {
    return runtime::RegisterId{0};
  };
  NestedRegistrar registrar = [](const Scalar&) -> StatusOr<size_t> {
    return 0;
  };
  auto program = CompileScalar(*expr, resolver, registrar);
  ASSERT_TRUE(program.ok());
  std::string text = program->Disassemble();
  EXPECT_NE(text.find("load_const"), std::string::npos);
  EXPECT_NE(text.find("load_attr"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace natix::nvm
