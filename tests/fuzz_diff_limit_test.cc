// Differential limit-pushdown fuzzing (NATIX_FUZZ_DIFF_LIMIT): random
// positional-heavy XPath queries over random documents, each compiled
// twice — with the Limit pushdown on (the default) and off — and
// executed with plan verification enabled, so every Limit the rewrite
// inserts also runs under the oracle's <= k / order contract. The two
// plans must agree with each other, and node results must agree with
// the src/interp oracle; an unsound pushdown (a cap that fires past a
// repeating reset boundary, a reverse axis, or a last()-dependent
// predicate) shows up as a truncated or reordered result.
//
// The query generator is biased toward what the rewrite acts on:
// numeric-literal subscripts, position() compared against small
// constants in both orientations and all six comparators, last()-
// relative forms that must block the rewrite, and positional
// predicates on nested paths and whole-nodeset parentheses.
//
// NATIX_FUZZ_DIFF_LIMIT re-rolls the corpus: its value offsets every
// generated seed (unset or 0: the fixed CI corpus).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

uint32_t BaseSeed() {
  const char* env = std::getenv("NATIX_FUZZ_DIFF_LIMIT");
  return env == nullptr
             ? 0u
             : static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
}

class PositionalQueryGen {
 public:
  explicit PositionalQueryGen(uint32_t seed) : rng_(seed) {}

  std::string TopLevel() {
    switch (Int(8)) {
      case 0:  // whole-nodeset positional
        return "(" + Path() + ")[" + Subscript() + "]";
      case 1:
        return "count(" + Path() + ")";
      default:
        return Path();
    }
  }

 private:
  int Int(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  std::string Pick(std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, Int(static_cast<int>(options.size())));
    return *it;
  }

  std::string K() { return std::to_string(1 + Int(4)); }

  /// A positional predicate body: the shapes the pushdown gate must
  /// classify — equality/range against constants (both orientations),
  /// bare subscripts, last()-relative forms, and mixtures that must
  /// block the rewrite.
  std::string Subscript() {
    switch (Int(12)) {
      case 0:
        return K();  // numeric-literal sugar
      case 1:
        return "position() = " + K();
      case 2:
        return "position() < " + K();
      case 3:
        return "position() <= " + K();
      case 4:
        return "position() > " + K();
      case 5:
        return "position() >= " + K();
      case 6:
        return "position() != " + K();
      case 7:  // mirrored orientation
        return K() + " " + Pick({"=", ">=", ">", "<", "<="}) +
               " position()";
      case 8:
        return "last()";
      case 9:
        return "position() = last()";
      case 10:
        return "position() = last() - " + std::to_string(Int(3));
      default:  // positional conjoined with a value test
        return "position() " + Pick({"=", "<", "<="}) + " " + K() +
               (Int(2) == 0 ? " and @id" : " or @x = '1'");
    }
  }

  std::string Step() {
    std::string axis = Pick({"", "", "", "", "descendant::", "self::",
                             "preceding-sibling::", "following-sibling::",
                             "ancestor::"});
    std::string step = axis + Pick({"a", "b", "c", "*"});
    switch (Int(4)) {
      case 0:
        step += "[" + Subscript() + "]";
        break;
      case 1:  // nested path predicate with its own positional
        step += "[" + Pick({"a", "b", "c"}) + "[" + Subscript() + "]]";
        break;
      default:
        break;
    }
    return step;
  }

  std::string Path() {
    std::string out = Pick({"/", "", "//"});
    int steps = 1 + Int(3);
    for (int i = 0; i < steps; ++i) {
      if (i > 0) out += Pick({"/", "/", "//"});
      out += Step();
    }
    return out;
  }

  std::mt19937 rng_;
};

std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  const char* names[] = {"a", "b", "c"};
  std::uniform_int_distribution<int> name_dist(0, 2);
  std::uniform_int_distribution<int> children_dist(0, 4);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  int id = 0;
  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* name = names[name_dist(rng)];
    out += "<";
    out += name;
    if (kind_dist(rng) < 4) out += " id='n" + std::to_string(id++) + "'";
    if (kind_dist(rng) < 3) {
      out += " x='" + std::to_string(kind_dist(rng) % 3) + "'";
    }
    out += ">";
    int children = depth >= 4 ? 0 : children_dist(rng);
    for (int i = 0; i < children; ++i) {
      if (kind_dist(rng) < 8) {
        emit(depth + 1);
      } else {
        out += "t" + std::to_string(kind_dist(rng));
      }
    }
    out += "</";
    out += name;
    out += ">";
  };
  out += "<root>";
  for (int i = 0; i < 4; ++i) emit(1);
  out += "</root>";
  return out;
}

/// Evaluates through the algebraic engine, rendering node results as an
/// ordered list of document-order keys and scalars via string().
StatusOr<std::string> RunAlgebraic(Database* db, storage::NodeId root,
                                   const std::string& query,
                                   bool limit_pushdown) {
  translate::TranslatorOptions options;
  options.limit_pushdown = limit_pushdown;
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled,
                         db->Compile(query, options));
  if (compiled->result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<storage::StoredNode> nodes,
                           compiled->EvaluateNodes(root));
    std::string out = "nodes:";
    for (const storage::StoredNode& n : nodes) {
      NATIX_ASSIGN_OR_RETURN(uint64_t order, n.order());
      out += " " + std::to_string(order);
    }
    return out;
  }
  NATIX_ASSIGN_OR_RETURN(std::string value, compiled->EvaluateString(root));
  return "str: " + value;
}

class FuzzDiffLimitTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDiffLimitTest, CappedPlansAgreeWithBaseline) {
  uint32_t seed = GetParam() + BaseSeed();
  SCOPED_TRACE(::testing::Message()
               << "effective seed " << seed
               << "; rerun with NATIX_FUZZ_DIFF_LIMIT=" << BaseSeed());
  std::string xml = RandomDocument(seed * 1549 + 7);

  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  ASSERT_TRUE(info.ok());
  auto dom_doc = dom::ParseDocument(xml);
  ASSERT_TRUE(dom_doc.ok());

  PositionalQueryGen gen(seed);
  for (int i = 0; i < 80; ++i) {
    std::string query = gen.TopLevel();

    auto with_limit = RunAlgebraic(db->get(), info->root, query,
                                   /*limit_pushdown=*/true);
    ASSERT_TRUE(with_limit.ok())
        << query << ": " << with_limit.status().ToString()
        << "\ndocument: " << xml;
    auto without_limit = RunAlgebraic(db->get(), info->root, query,
                                      /*limit_pushdown=*/false);
    ASSERT_TRUE(without_limit.ok())
        << query << ": " << without_limit.status().ToString();
    ASSERT_EQ(*with_limit, *without_limit)
        << "limit pushdown diverges on " << query << "\ndocument: " << xml;

    // Cross-check node results against the interpreter oracle (string
    // results go through different conversion paths; the plan-vs-plan
    // check above already covers them).
    if (with_limit->rfind("nodes:", 0) == 0) {
      interp::EvaluatorOptions oracle_options;
      auto oracle = interp::Evaluator::Run(dom_doc->get(), query,
                                           (*dom_doc)->root(),
                                           oracle_options);
      ASSERT_TRUE(oracle.ok()) << query;
      if (oracle->kind == interp::Object::Kind::kNodeSet) {
        std::string expected = "nodes:";
        for (const dom::Node* n : oracle->nodes) {
          expected += " " + std::to_string(n->order);
        }
        ASSERT_EQ(*with_limit, expected)
            << "interp oracle diverges on " << query
            << "\ndocument: " << xml;
      }
    }
  }

  analysis::SetVerificationEnabled(was_enabled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDiffLimitTest, ::testing::Range(1u, 7u));

}  // namespace
}  // namespace natix
