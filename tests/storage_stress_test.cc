// Randomized stress tests of the storage layer: the buffer manager
// against a shadow model, and page-spanning documents navigated under
// heavy eviction.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/document_loader.h"
#include "storage/node_store.h"
#include "storage/paged_file.h"
#include "storage/stored_node.h"

namespace natix::storage {
namespace {

TEST(BufferManagerStressTest, MatchesShadowModel) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 8);

  std::mt19937 rng(1234);
  std::map<PageId, uint8_t> shadow;  // page -> expected first byte
  std::vector<PageId> pages;

  for (int step = 0; step < 5000; ++step) {
    int action = std::uniform_int_distribution<int>(0, 9)(rng);
    if (pages.empty() || action == 0) {
      // Allocate a new page and stamp it.
      auto page = bm.NewPage();
      ASSERT_TRUE(page.ok());
      uint8_t stamp = static_cast<uint8_t>(rng());
      page->mutable_data()[0] = stamp;
      shadow[page->page_id()] = stamp;
      pages.push_back(page->page_id());
    } else if (action < 7) {
      // Read a random page and verify its stamp.
      PageId id = pages[std::uniform_int_distribution<size_t>(
          0, pages.size() - 1)(rng)];
      auto page = bm.FixPage(id);
      ASSERT_TRUE(page.ok());
      EXPECT_EQ(page->data()[0], shadow[id]) << "page " << id;
    } else {
      // Overwrite a random page's stamp.
      PageId id = pages[std::uniform_int_distribution<size_t>(
          0, pages.size() - 1)(rng)];
      auto page = bm.FixPage(id);
      ASSERT_TRUE(page.ok());
      uint8_t stamp = static_cast<uint8_t>(rng());
      page->mutable_data()[0] = stamp;
      shadow[id] = stamp;
    }
  }
  // Everything must be readable after a flush, straight from the file.
  ASSERT_TRUE(bm.FlushAll().ok());
  for (const auto& [id, stamp] : shadow) {
    uint8_t buffer[kPageSize];
    ASSERT_TRUE((*file)->ReadPage(id, buffer).ok());
    EXPECT_EQ(buffer[0], stamp) << "page " << id;
  }
  EXPECT_GT(bm.eviction_count(), 100u);  // the pool really was tiny
}

TEST(StorageStressTest, RandomTreeSurvivesTinyPoolNavigation) {
  NodeStore::Options options;
  options.buffer_pages = 4;  // brutal
  auto store = NodeStore::CreateTemp(options);
  ASSERT_TRUE(store.ok());

  // A random document with text of many sizes (hitting the overflow
  // threshold from both sides).
  std::mt19937 rng(99);
  std::string xml = "<root>";
  std::vector<size_t> sizes;
  for (int i = 0; i < 200; ++i) {
    size_t len = std::uniform_int_distribution<size_t>(0, 6000)(rng);
    sizes.push_back(len);
    xml += "<t n='" + std::to_string(i) + "'>" + std::string(len, 'x') +
           "</t>";
  }
  xml += "</root>";
  auto info = LoadDocument(store->get(), "doc", xml);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  // Forward navigation with content checks.
  StoredNode root(store->get(), info->root);
  StoredNode t = *(*root.first_child()).first_child();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.valid()) << i;
    EXPECT_EQ(*(*t.first_attribute()).content(), std::to_string(i));
    EXPECT_EQ(t.string_value()->size(), sizes[static_cast<size_t>(i)]);
    t = *t.next_sibling();
  }
  EXPECT_FALSE(t.valid());

  // Backward navigation via prev links.
  StoredNode last = *(*root.first_child()).first_child();
  while ((*last.next_sibling()).valid()) last = *last.next_sibling();
  for (int i = 199; i >= 0; --i) {
    ASSERT_TRUE(last.valid());
    EXPECT_EQ(*(*last.first_attribute()).content(), std::to_string(i));
    last = *last.prev_sibling();
  }
}

TEST(StorageStressTest, ManySmallDocuments) {
  NodeStore::Options options;
  options.buffer_pages = 32;
  auto store = NodeStore::CreateTemp(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    std::string name = "doc" + std::to_string(i);
    std::string xml =
        "<d n='" + std::to_string(i) + "'><v>" + std::to_string(i * i) +
        "</v></d>";
    ASSERT_TRUE(LoadDocument(store->get(), name, xml).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  // All documents remain reachable and correct.
  for (int i = 0; i < 100; ++i) {
    auto info = (*store)->FindDocument("doc" + std::to_string(i));
    ASSERT_TRUE(info.ok());
    StoredNode root(store->get(), info->root);
    EXPECT_EQ(*root.string_value(), std::to_string(i * i));
  }
  EXPECT_EQ((*store)->documents().size(), 100u);
}

TEST(StorageStressTest, PinnedCursorOverflowFailsCleanly) {
  // Every open axis cursor keeps one page pinned. A plan deeper than the
  // buffer pool must fail with ResourceExhausted — never crash or
  // corrupt.
  NodeStore::Options options;
  options.buffer_pages = 2;
  auto store = NodeStore::CreateTemp(options);
  ASSERT_TRUE(store.ok());
  // Build a deep chain so navigation needs several concurrently pinned
  // pages (each element's subtree spills onto later pages).
  std::string xml;
  for (int i = 0; i < 40; ++i) {
    xml += "<e" + std::to_string(i) + " pad='" + std::string(500, 'p') +
           "'>";
  }
  for (int i = 39; i >= 0; --i) xml += "</e" + std::to_string(i) + ">";
  auto info = LoadDocument(store->get(), "doc", xml);
  // Either the load or a deep navigation may exhaust the pool; both must
  // surface a clean status.
  if (!info.ok()) {
    EXPECT_EQ(info.status().code(), StatusCode::kResourceExhausted);
    return;
  }
  StoredNode node(store->get(), info->root);
  // Walk down keeping every handle alive to force concurrent pins.
  std::vector<StoredNode> held;
  Status last = Status::OK();
  while (node.valid()) {
    held.push_back(node);
    auto child = node.first_child();
    if (!child.ok()) {
      last = child.status();
      break;
    }
    node = *child;
  }
  // Holding StoredNode values does not pin pages (they re-fix on use), so
  // the walk usually succeeds; the invariant under test is simply that
  // nothing crashed and any failure is the documented one.
  if (!last.ok()) {
    EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace natix::storage
