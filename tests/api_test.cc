// Tests of the public facade (natix::Database / natix::CompiledQuery):
// the API surface a downstream user programs against.

#include "api/database.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

namespace natix {
namespace {

TEST(DatabaseTest, QueryHelpersCoverAllResultTypes) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r><x>5</x><x>7</x></r>").ok());

  auto nodes = (*db)->QueryNodes("d", "//x");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 2u);

  EXPECT_EQ(*(*db)->QueryString("d", "string(//x[2])"), "7");
  EXPECT_EQ(*(*db)->QueryNumber("d", "sum(//x)"), 12);
  EXPECT_TRUE(*(*db)->QueryBoolean("d", "//x = 5"));
  EXPECT_FALSE(*(*db)->QueryBoolean("d", "//x = 6"));

  // Node-set queries through scalar helpers convert per XPath rules.
  EXPECT_EQ(*(*db)->QueryString("d", "//x"), "5");  // first in doc order
  EXPECT_EQ(*(*db)->QueryNumber("d", "//x"), 5);
  EXPECT_TRUE(*(*db)->QueryBoolean("d", "//x"));
  EXPECT_FALSE(*(*db)->QueryBoolean("d", "//nope"));
}

TEST(DatabaseTest, ErrorsSurfaceAsStatuses) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r/>").ok());

  EXPECT_FALSE((*db)->QueryNodes("nope", "//x").ok());
  EXPECT_FALSE((*db)->QueryNodes("d", "//x[").ok());
  EXPECT_FALSE((*db)->QueryNodes("d", "frob()").ok());
  EXPECT_FALSE((*db)->LoadDocument("d", "<r/>").ok());  // duplicate name
  EXPECT_FALSE((*db)->LoadDocument("bad", "<a><b></a>").ok());
  EXPECT_FALSE((*db)->LoadDocumentFile("f", "/no/such/file.xml").ok());
}

TEST(DatabaseTest, CompiledQueryIsReusableAcrossContexts) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->LoadDocument("d", "<r><g><i/><i/></g><g><i/></g></r>").ok());
  auto query = (*db)->Compile("count(i)");
  ASSERT_TRUE(query.ok());
  auto groups = (*db)->QueryNodes("d", "//g");
  ASSERT_TRUE(groups.ok());
  auto v0 = (*query)->EvaluateValue((*groups)[0].id());
  auto v1 = (*query)->EvaluateValue((*groups)[1].id());
  ASSERT_TRUE(v0.ok() && v1.ok());
  EXPECT_EQ(v0->AsNumber(), 2);
  EXPECT_EQ(v1->AsNumber(), 1);
}

TEST(DatabaseTest, ResultTypeIsExposed) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r/>").ok());
  EXPECT_EQ((*(*db)->Compile("//a"))->result_type(),
            xpath::ExprType::kNodeSet);
  EXPECT_EQ((*(*db)->Compile("count(//a)"))->result_type(),
            xpath::ExprType::kNumber);
  EXPECT_EQ((*(*db)->Compile("'s'"))->result_type(),
            xpath::ExprType::kString);
  EXPECT_EQ((*(*db)->Compile("1 = 1"))->result_type(),
            xpath::ExprType::kBoolean);
}

TEST(DatabaseTest, WrongShapeExecutionIsRejected) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("d", "<r/>");
  ASSERT_TRUE(info.ok());
  auto nodes_query = (*db)->Compile("//a");
  ASSERT_TRUE(nodes_query.ok());
  EXPECT_FALSE((*nodes_query)->EvaluateValue(info->root).ok());
  auto scalar_query = (*db)->Compile("1 + 1");
  ASSERT_TRUE(scalar_query.ok());
  EXPECT_FALSE((*scalar_query)->EvaluateNodes(info->root).ok());
}

TEST(DatabaseTest, DocumentOrderToggle) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("d", "<r><a/><b/><c/></r>");
  ASSERT_TRUE(info.ok());
  auto query = (*db)->Compile("//c | //a | //b");
  ASSERT_TRUE(query.ok());
  auto sorted = (*query)->EvaluateNodes(info->root);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(*(*sorted)[0].name(), "a");
  EXPECT_EQ(*(*sorted)[2].name(), "c");
}

TEST(DatabaseTest, PersistAndReopenThroughApi) {
  std::string path = std::string(::testing::TempDir()) + "/api_persist.db";
  {
    auto db = Database::Create(path);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->LoadDocument("d", "<r><k>value</k></r>").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(*(*db)->QueryString("d", "string(//k)"), "value");
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, PhysicalExplainShowsRegisters) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r/>").ok());
  auto query = (*db)->Compile("//a[count(b) = 1]");
  ASSERT_TRUE(query.ok());
  const std::string& plan = (*query)->ExplainPhysical();
  EXPECT_NE(plan.find("registers:"), std::string::npos);
  EXPECT_NE(plan.find("@r"), std::string::npos);       // register mapping
  EXPECT_NE(plan.find("nested"), std::string::npos);   // nested subplan
}

TEST(DatabaseTest, PhysicalExplainMarksAliases) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r/>").ok());
  // Union branches share one output attribute through rename maps; at
  // least the first compiles to a register alias.
  auto query = (*db)->Compile("//a | //b");
  ASSERT_TRUE(query.ok());
  EXPECT_NE((*query)->ExplainPhysical().find("register alias"),
            std::string::npos);
}

TEST(DatabaseTest, ExecutionStatsTrackWork) {
  Database::Options options;
  options.buffer_pages = 16;  // smallest valid pool: force faults
  options.buffer_shards = 1;
  auto db = Database::CreateTemp(options);
  ASSERT_TRUE(db.ok());
  std::string xml = "<r>";
  for (int i = 0; i < 2000; ++i) xml += "<a><b/></a>";
  xml += "</r>";
  auto info = (*db)->LoadDocument("d", xml);
  ASSERT_TRUE(info.ok());

  auto big = (*db)->Compile("//b");
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE((*big)->EvaluateNodes(info->root).ok());
  ExecutionStats big_stats = (*big)->last_stats();
  // The descendant walk + child::b steps touch every node.
  EXPECT_GT(big_stats.step_tuples, 4000u);
  EXPECT_GT(big_stats.page_faults, 0u);

  auto small = (*db)->Compile("/r/a[1]/b");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE((*small)->EvaluateNodes(info->root).ok());
  EXPECT_LT((*small)->last_stats().step_tuples, big_stats.step_tuples);
}

TEST(DatabaseTest, MemoizedQueryReuseStaysCorrect) {
  // MemoX tables persist across evaluations of one compiled query (the
  // store is immutable, so cached inner-path results stay valid). The
  // second run must return identical results.
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument(
      "d", "<r><a><c/><c/></a><a><c/></a><a/></r>");
  ASSERT_TRUE(info.ok());
  auto query =
      (*db)->Compile("/r/a[count(descendant::c/following::c) > 0]");
  ASSERT_TRUE(query.ok());
  auto first = (*query)->EvaluateNodes(info->root);
  auto second = (*query)->EvaluateNodes(info->root);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(*(*first)[i].order(), *(*second)[i].order());
  }
  // Only the first a qualifies: its c's have later c's following them.
  EXPECT_EQ(first->size(), 1u);
}

TEST(DatabaseTest, EvaluateNumberAndBooleanHelpers) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("d", "<r><x>5</x><x>7</x></r>");
  ASSERT_TRUE(info.ok());
  auto nodes = (*db)->Compile("//x");
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*(*nodes)->EvaluateNumber(info->root), 5);  // first node
  EXPECT_TRUE(*(*nodes)->EvaluateBoolean(info->root));
  auto scalar = (*db)->Compile("count(//x) * 2");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*(*scalar)->EvaluateNumber(info->root), 4);
  EXPECT_TRUE(*(*scalar)->EvaluateBoolean(info->root));
  auto empty = (*db)->Compile("//zzz");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*(*empty)->EvaluateBoolean(info->root));
  EXPECT_TRUE(std::isnan(*(*empty)->EvaluateNumber(info->root)));
}

TEST(DatabaseTest, ExplainShowsThePlan) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r/>").ok());
  auto query = (*db)->Compile("//a[2]");
  ASSERT_TRUE(query.ok());
  const std::string& plan = (*query)->ExplainLogical();
  EXPECT_NE(plan.find("UnnestMap"), std::string::npos);
  EXPECT_NE(plan.find("Counter"), std::string::npos);
  EXPECT_NE(plan.find("Select"), std::string::npos);
}

}  // namespace
}  // namespace natix
