// Tests for the runtime property oracle: the debug-mode iterator wrapper
// that asserts statically inferred document-order / duplicate-freedom
// claims against the tuples an operator actually produces. Streams here
// are hand-built and deliberately lie, so the oracle must catch them;
// honest streams must pass untouched.

#include "qe/exec_context.h"
#include "qe/property_oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "runtime/value.h"

namespace natix::qe {
namespace {

/// Emits a fixed list of values into one register.
class VectorIterator : public Iterator {
 public:
  VectorIterator(ExecutionContext* state, runtime::RegisterId reg,
                 std::vector<runtime::Value> values)
      : state_(state), reg_(reg), values_(std::move(values)) {}

 protected:
  Status OpenImpl() override {
    at_ = 0;
    return Status::OK();
  }

  Status NextImpl(bool* has) override {
    if (at_ >= values_.size()) {
      *has = false;
      return Status::OK();
    }
    state_->registers[reg_] = values_[at_++];
    *has = true;
    return Status::OK();
  }

  Status CloseImpl() override { return Status::OK(); }

 private:
  ExecutionContext* state_;
  runtime::RegisterId reg_;
  std::vector<runtime::Value> values_;
  size_t at_ = 0;
};

runtime::Value Node(uint32_t page, uint64_t order) {
  return runtime::Value::Node(
      runtime::NodeRef::Make(storage::NodeId{page, 0}, order));
}

/// Drains `iter` to completion, returning the first non-OK status.
Status Drain(Iterator* iter, size_t* tuples = nullptr) {
  NATIX_RETURN_IF_ERROR(iter->Open());
  bool has = true;
  size_t n = 0;
  while (true) {
    NATIX_RETURN_IF_ERROR(iter->Next(&has));
    if (!has) break;
    ++n;
  }
  if (tuples != nullptr) *tuples = n;
  return iter->Close();
}

struct OracleHarness {
  ExecutionContext state;

  OracleHarness() { state.registers.Resize(1); }

  Status Run(std::vector<runtime::Value> values, bool check_order,
             bool check_duplicate_free, size_t* tuples = nullptr) {
    PropertyOracleIterator oracle(
        &state, std::make_unique<VectorIterator>(&state, 0,
                                                 std::move(values)),
        0, check_order, check_duplicate_free, "test stream");
    return Drain(&oracle, tuples);
  }
};

TEST(PropertyOracleTest, HonestOrderedStreamPasses) {
  OracleHarness h;
  size_t tuples = 0;
  Status status = h.Run({Node(1, 10), Node(2, 20), Node(3, 30)},
                        /*check_order=*/true, /*check_duplicate_free=*/true,
                        &tuples);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(tuples, 3u);
}

TEST(PropertyOracleTest, NonStrictOrderAllowsEqualRuns) {
  // kDocOrdered is non-strict: repeated order keys are legal as long as
  // duplicate-freedom is not also claimed.
  OracleHarness h;
  Status status = h.Run({Node(1, 10), Node(1, 10), Node(2, 20)},
                        /*check_order=*/true, /*check_duplicate_free=*/false);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PropertyOracleTest, OrderViolationIsCaught) {
  OracleHarness h;
  Status status = h.Run({Node(1, 10), Node(3, 30), Node(2, 20)},
                        /*check_order=*/true, /*check_duplicate_free=*/false);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("document-order claim"),
            std::string::npos);
  EXPECT_NE(status.ToString().find("test stream"), std::string::npos);
}

TEST(PropertyOracleTest, DuplicateNodeIsCaught) {
  OracleHarness h;
  Status status = h.Run({Node(1, 10), Node(2, 20), Node(1, 10)},
                        /*check_order=*/false, /*check_duplicate_free=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("duplicate-freedom claim"),
            std::string::npos);
}

TEST(PropertyOracleTest, DuplicateAtomicValueIsCaught) {
  OracleHarness h;
  Status status = h.Run(
      {runtime::Value::Number(1), runtime::Value::Number(2),
       runtime::Value::Number(1)},
      /*check_order=*/false, /*check_duplicate_free=*/true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("duplicate-freedom claim"),
            std::string::npos);
}

TEST(PropertyOracleTest, ReopenResetsTheClaimWindow) {
  // Dependent subplans re-open per outer tuple; claims hold per Open, so
  // the same node may reappear across re-openings.
  OracleHarness h;
  std::vector<runtime::Value> values = {Node(1, 10), Node(2, 20)};
  PropertyOracleIterator oracle(
      &h.state, std::make_unique<VectorIterator>(&h.state, 0, values), 0,
      /*check_order=*/true, /*check_duplicate_free=*/true, "reopened");
  EXPECT_TRUE(Drain(&oracle).ok());
  EXPECT_TRUE(Drain(&oracle).ok());
}

TEST(PropertyOracleTest, LimitContractHonestStreamPasses) {
  // A stream that honors its cap passes; the bound is inclusive.
  OracleHarness h;
  std::vector<runtime::Value> values = {Node(1, 10), Node(2, 20),
                                        Node(3, 30)};
  PropertyOracleIterator oracle(
      &h.state, std::make_unique<VectorIterator>(&h.state, 0, values), 0,
      /*check_order=*/true, /*check_duplicate_free=*/false, "Limit[3]");
  oracle.set_max_tuples(3);
  size_t tuples = 0;
  Status status = Drain(&oracle, &tuples);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(tuples, 3u);
}

TEST(PropertyOracleTest, LimitContractOverproductionAborts) {
  // A deliberately unsound pushdown: the plan claims at most 2 tuples
  // but the capped pipeline leaks a third. The oracle must abort the
  // execution rather than let the truncated-wrong result escape.
  OracleHarness h;
  std::vector<runtime::Value> values = {Node(1, 10), Node(2, 20),
                                        Node(3, 30)};
  PropertyOracleIterator oracle(
      &h.state, std::make_unique<VectorIterator>(&h.state, 0, values), 0,
      /*check_order=*/false, /*check_duplicate_free=*/false, "Limit[2]");
  oracle.set_max_tuples(2);
  Status status = Drain(&oracle);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("limit contract"), std::string::npos);
  EXPECT_NE(status.ToString().find("Limit[2]"), std::string::npos);
}

TEST(PropertyOracleTest, LimitContractResetsPerOpen) {
  // Dependent branches re-open per outer binding; the cap is per Open,
  // so two full drains of a compliant stream must both pass.
  OracleHarness h;
  std::vector<runtime::Value> values = {Node(1, 10), Node(2, 20)};
  PropertyOracleIterator oracle(
      &h.state, std::make_unique<VectorIterator>(&h.state, 0, values), 0,
      /*check_order=*/true, /*check_duplicate_free=*/false, "Limit[2]");
  oracle.set_max_tuples(2);
  EXPECT_TRUE(Drain(&oracle).ok());
  EXPECT_TRUE(Drain(&oracle).ok());
}

TEST(PropertyOracleTest, PositionalQueriesPassWithLimitContractArmed) {
  // End-to-end: positional queries whose plans gain a Limit run with
  // verification on, so the oracle checks the <= k contract and the
  // preserved-order claim on every tuple of the capped stream.
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument(
      "doc", "<r><a>1</a><a>2</a><a>3</a><a>4</a></r>");
  ASSERT_TRUE(info.ok());
  for (const char* query :
       {"/r/a[2]", "/r/a[position() = 3]", "/r/a[position() < 3]",
        "/r/a[position() <= 2]"}) {
    auto compiled = (*db)->Compile(query);
    ASSERT_TRUE(compiled.ok()) << query;
    bool has_limit = false;
    for (const algebra::RewriteEvent& event : (*compiled)->rewrites()) {
      if (event.rule == "limit:positional-pushdown") has_limit = true;
    }
    EXPECT_TRUE(has_limit) << query;
    auto nodes = (*compiled)->EvaluateNodes(info->root);
    EXPECT_TRUE(nodes.ok()) << query << ": " << nodes.status().ToString();
  }
  analysis::SetVerificationEnabled(was_enabled);
}

TEST(PropertyOracleTest, EndToEndQueriesPassWithOracleArmed) {
  // Compile + run real queries with verification (and thus the oracle)
  // on: every claim the inference engine makes must hold on the actual
  // tuple streams.
  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument(
      "doc",
      "<r><a id='1'><b/><a id='2'><b/></a></a><a id='3'><b/></a></r>");
  ASSERT_TRUE(info.ok());
  for (const char* query :
       {"//a/b", "/r/a", "/descendant::a", "//a//b", "(//a/b)[1]",
        "/r/a/@id", "count(//a)", "//a[b]/@id",
        "/r/child::a/descendant::b"}) {
    auto compiled = (*db)->Compile(query);
    ASSERT_TRUE(compiled.ok()) << query;
    if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
      auto nodes = (*compiled)->EvaluateNodes(info->root);
      EXPECT_TRUE(nodes.ok()) << query << ": " << nodes.status().ToString();
    } else {
      auto value = (*compiled)->EvaluateString(info->root);
      EXPECT_TRUE(value.ok()) << query << ": " << value.status().ToString();
    }
  }
  analysis::SetVerificationEnabled(was_enabled);
}

}  // namespace
}  // namespace natix::qe
