// Grammar-based query fuzzing: random (but valid) XPath queries over
// random documents, cross-checked between the algebraic engine (both
// translations) and the interpreter oracle. Complements the fixed corpus
// in conformance_test.cc with coverage of operator combinations nobody
// thought to write down.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>

#include "api/database.h"
#include "base/xpath_number.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

/// NATIX_FUZZ_SEED offsets every generated seed, so one environment
/// variable re-rolls the whole suite (default 0: the fixed CI corpus).
/// The trace below prints the effective seed of a failing run.
uint32_t BaseSeed() {
  const char* env = std::getenv("NATIX_FUZZ_SEED");
  return env == nullptr
             ? 0u
             : static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
}

class QueryGen {
 public:
  explicit QueryGen(uint32_t seed) : rng_(seed) {}

  std::string Path(int max_steps) {
    std::string out = Pick({"/", "", "//"});
    int steps = 1 + Int(max_steps);
    for (int i = 0; i < steps; ++i) {
      if (i > 0) out += Pick({"/", "//"});
      out += Step(/*depth=*/0);
    }
    return out;
  }

  std::string TopLevel() {
    switch (Int(8)) {
      case 0:
        return "count(" + Path(3) + ")";
      case 1:
        return "boolean(" + Path(3) + ")";
      case 2:
        return "string(" + Path(2) + ")";
      case 3:
        return "sum(" + Path(2) + "/@id)";
      case 4:
        // Filter expressions exercise Sort placement and its removal.
        return "(" + Path(2) + ")[" + std::to_string(1 + Int(4)) + "]";
      case 5:
        return "(" + Path(2) + ")[last()" + Pick({"", " - 1"}) + "]";
      default:
        return Path(4);
    }
  }

 private:
  int Int(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }
  std::string Pick(std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, Int(static_cast<int>(options.size())));
    return *it;
  }

  std::string Axis() {
    return Pick({"child::", "descendant::", "descendant-or-self::",
                 "parent::", "ancestor::", "ancestor-or-self::",
                 "following::", "following-sibling::", "preceding::",
                 "preceding-sibling::", "self::", "", ""});
  }

  std::string NodeTest() {
    return Pick({"a", "b", "c", "*", "node()", "text()"});
  }

  std::string Step(int depth) {
    std::string out;
    if (Int(10) == 0) {
      out = Pick({".", ".."});
    } else if (Int(12) == 0) {
      out = "@" + Pick({"id", "x", "*"});
    } else {
      out = Axis() + NodeTest();
    }
    // Predicates (not on abbreviated . / .. steps for readability).
    if (out != "." && out != ".." && depth < 2) {
      int predicates = Int(3) == 0 ? 1 + Int(2) : 0;
      for (int i = 0; i < predicates; ++i) {
        out += "[" + Predicate(depth + 1) + "]";
      }
    }
    return out;
  }

  std::string Predicate(int depth) {
    switch (Int(8)) {
      case 0:
        return std::to_string(1 + Int(3));
      case 1:
        return "position() " + Pick({"=", "<", ">", "<=", ">=", "!="}) +
               " " + std::to_string(1 + Int(3));
      case 2:
        return "last()" + Pick({"", " - 1"});
      case 3:
        return "@" + Pick({"id", "x"});
      case 4:
        return "@x " + Pick({"=", "!=", "<", ">"}) + " '" +
               std::to_string(Int(4)) + "'";
      case 5:
        return "count(" + RelativePath(depth) + ") " +
               Pick({">", "=", "<"}) + " " + std::to_string(Int(3));
      case 6:
        return RelativePath(depth);
      default:
        return Pick({"starts-with(@id, 'n1')", "contains(string(.), '1')",
                     "not(@id)", "string-length(string(@x)) = 1",
                     ". = ../*"});
    }
  }

  std::string RelativePath(int depth) {
    std::string out = Step(depth);
    if (Int(2) == 0) out += "/" + Step(depth);
    return out;
  }

  std::mt19937 rng_;
};

/// Same generator as conformance_test.cc, kept independent on purpose.
std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  const char* names[] = {"a", "b", "c"};
  std::uniform_int_distribution<int> name_dist(0, 2);
  std::uniform_int_distribution<int> children_dist(0, 3);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  int id = 0;
  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* name = names[name_dist(rng)];
    out += "<";
    out += name;
    if (kind_dist(rng) < 5) out += " id='n" + std::to_string(id++) + "'";
    if (kind_dist(rng) < 3) {
      out += " x='" + std::to_string(kind_dist(rng) % 4) + "'";
    }
    out += ">";
    int children = depth >= 4 ? 0 : children_dist(rng);
    for (int i = 0; i < children; ++i) {
      if (kind_dist(rng) < 7) {
        emit(depth + 1);
      } else {
        out += "t" + std::to_string(kind_dist(rng));
      }
    }
    out += "</";
    out += name;
    out += ">";
  };
  out += "<root>";
  for (int i = 0; i < 3; ++i) emit(1);
  out += "</root>";
  return out;
}

std::string RenderInterp(const interp::Object& v) {
  switch (v.kind) {
    case interp::Object::Kind::kNodeSet: {
      std::string out = "nodes:";
      for (const dom::Node* n : v.nodes) {
        out += " " + std::to_string(n->order);
      }
      return out;
    }
    case interp::Object::Kind::kBoolean:
      return v.boolean ? "bool: true" : "bool: false";
    case interp::Object::Kind::kNumber:
      return "num: " + XPathNumberToString(v.number);
    case interp::Object::Kind::kString:
      return "str: " + v.string;
  }
  return "?";
}

class FuzzConformanceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzConformanceTest, RandomQueriesAgree) {
  uint32_t seed = GetParam() + BaseSeed();
  SCOPED_TRACE(::testing::Message()
               << "effective seed " << seed << " (NATIX_FUZZ_SEED base "
               << BaseSeed() << " + param " << GetParam()
               << "); rerun with NATIX_FUZZ_SEED=" << BaseSeed());
  std::string xml = RandomDocument(seed * 977 + 11);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  ASSERT_TRUE(info.ok());
  auto dom_doc = dom::ParseDocument(xml);
  ASSERT_TRUE(dom_doc.ok());

  QueryGen gen(seed);
  int checked = 0;
  for (int i = 0; i < 120; ++i) {
    std::string query = gen.TopLevel();
    interp::EvaluatorOptions oracle_options;
    auto oracle = interp::Evaluator::Run(dom_doc->get(), query,
                                         (*dom_doc)->root(),
                                         oracle_options);
    ASSERT_TRUE(oracle.ok()) << query << ": "
                             << oracle.status().ToString();
    std::string expected = RenderInterp(*oracle);

    for (bool improved : {false, true}) {
      auto options = improved ? translate::TranslatorOptions::Improved()
                              : translate::TranslatorOptions::Canonical();
      auto compiled = (*db)->Compile(query, options);
      ASSERT_TRUE(compiled.ok())
          << query << ": " << compiled.status().ToString();
      std::string actual;
      if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
        auto nodes = (*compiled)->EvaluateNodes(info->root);
        ASSERT_TRUE(nodes.ok()) << query;
        actual = "nodes:";
        for (const storage::StoredNode& n : *nodes) {
          actual += " " + std::to_string(*n.order());
        }
      } else {
        auto value = (*compiled)->EvaluateValue(info->root);
        ASSERT_TRUE(value.ok()) << query;
        switch (value->kind()) {
          case runtime::ValueKind::kBoolean:
            actual = value->AsBoolean() ? "bool: true" : "bool: false";
            break;
          case runtime::ValueKind::kNumber:
            actual = "num: " + XPathNumberToString(value->AsNumber());
            break;
          default:
            actual = "str: " + value->AsString();
        }
      }
      ASSERT_EQ(actual, expected)
          << (improved ? "improved" : "canonical") << " diverges on "
          << query << "\ndocument: " << xml;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConformanceTest,
                         ::testing::Range(1u, 9u));

}  // namespace
}  // namespace natix
