#include "dom/dom.h"

#include <gtest/gtest.h>

#include "dom/dom_builder.h"

namespace natix::dom {
namespace {

TEST(DomBuilderTest, BuildsTree) {
  auto doc = ParseDocument("<a><b>one</b><c x='1'>two</c></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Node* root = (*doc)->root();
  ASSERT_EQ(root->children.size(), 1u);
  const Node* a = root->children[0];
  EXPECT_EQ(a->kind, NodeKind::kElement);
  EXPECT_EQ(a->name, "a");
  ASSERT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->children[0]->name, "b");
  EXPECT_EQ(a->children[1]->name, "c");
  ASSERT_EQ(a->children[1]->attributes.size(), 1u);
  EXPECT_EQ(a->children[1]->attributes[0]->name, "x");
  EXPECT_EQ(a->children[1]->attributes[0]->value, "1");
}

TEST(DomBuilderTest, MergesAdjacentText) {
  auto doc = ParseDocument("<a>one<![CDATA[two]]>three</a>");
  ASSERT_TRUE(doc.ok());
  const Node* a = (*doc)->root()->children[0];
  ASSERT_EQ(a->children.size(), 1u);
  EXPECT_EQ(a->children[0]->kind, NodeKind::kText);
  EXPECT_EQ(a->children[0]->value, "onetwothree");
}

TEST(DomBuilderTest, ParseErrorPropagates) {
  auto doc = ParseDocument("<a><b></a>");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(DomTest, StringValueConcatenatesDescendants) {
  auto doc = ParseDocument("<a>x<b>y<c>z</c></b>w</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root()->StringValue(), "xyzw");
  EXPECT_EQ((*doc)->root()->children[0]->StringValue(), "xyzw");
  EXPECT_EQ((*doc)->root()->children[0]->children[1]->StringValue(), "yz");
}

TEST(DomTest, StringValueOfLeafKinds) {
  auto doc = ParseDocument("<a p='v'><!--c--><?t d?></a>");
  ASSERT_TRUE(doc.ok());
  const Node* a = (*doc)->root()->children[0];
  EXPECT_EQ(a->attributes[0]->StringValue(), "v");
  EXPECT_EQ(a->children[0]->StringValue(), "c");
  EXPECT_EQ(a->children[1]->StringValue(), "d");
}

TEST(DomTest, DocumentOrderIsTotalAndAttributesFollowElement) {
  auto doc = ParseDocument("<a x='1' y='2'><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  const Node* root = (*doc)->root();
  const Node* a = root->children[0];
  EXPECT_LT(root->order, a->order);
  EXPECT_LT(a->order, a->attributes[0]->order);
  EXPECT_LT(a->attributes[0]->order, a->attributes[1]->order);
  EXPECT_LT(a->attributes[1]->order, a->children[0]->order);
  EXPECT_LT(a->children[0]->order, a->children[1]->order);
}

TEST(DomTest, Siblings) {
  auto doc = ParseDocument("<a><b/><c/><d/></a>");
  ASSERT_TRUE(doc.ok());
  const Node* a = (*doc)->root()->children[0];
  Node* b = a->children[0];
  Node* c = a->children[1];
  Node* d = a->children[2];
  EXPECT_EQ(b->NextSibling(), c);
  EXPECT_EQ(c->NextSibling(), d);
  EXPECT_EQ(d->NextSibling(), nullptr);
  EXPECT_EQ(d->PreviousSibling(), c);
  EXPECT_EQ(b->PreviousSibling(), nullptr);
  EXPECT_EQ((*doc)->root()->NextSibling(), nullptr);
}

TEST(DomTest, SizeCountsAllNodes) {
  auto doc = ParseDocument("<a x='1'><b>t</b></a>");
  ASSERT_TRUE(doc.ok());
  // document + a + @x + b + text
  EXPECT_EQ((*doc)->size(), 5u);
}

}  // namespace
}  // namespace natix::dom
