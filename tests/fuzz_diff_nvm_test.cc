// Differential NVM-optimizer fuzzing (NATIX_FUZZ_DIFF_NVM): random
// scalar-heavy XPath queries over random documents, each compiled twice
// — with the bytecode optimizer on (the default) and off — and executed
// with plan verification enabled, so every optimized program has also
// passed the Layer-3 re-verification after each pass. The two plans
// must agree with each other, and node results must agree with the
// src/interp oracle; an unsound fold, fusion, or dead-store removal
// shows up as a divergence.
//
// The query generator is biased toward what the optimizer acts on:
// comparisons of attributes against literals (cmp_attr_const fusion),
// constant arithmetic and string subexpressions (const-fold), chained
// conversions (conversion-elim), and short-circuit logicals (jump
// threading over the assembler's branch scaffolding).
//
// NATIX_FUZZ_DIFF_NVM re-rolls the corpus: its value offsets every
// generated seed (unset or 0: the fixed CI corpus).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>

#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

uint32_t BaseSeed() {
  const char* env = std::getenv("NATIX_FUZZ_DIFF_NVM");
  return env == nullptr
             ? 0u
             : static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
}

class NvmQueryGen {
 public:
  explicit NvmQueryGen(uint32_t seed) : rng_(seed) {}

  std::string TopLevel() {
    switch (Int(8)) {
      case 0:
        return "count(" + Path() + ") + " + Scalar(1);
      case 1:
        return "string(" + Path() + ")";
      case 2:
        return Scalar(0);  // pure scalar: the whole query const-folds
      default:
        return Path();
    }
  }

 private:
  int Int(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  std::string Pick(std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, Int(static_cast<int>(options.size())));
    return *it;
  }

  std::string Attr() { return std::string("@") + Pick({"id", "x", "y"}); }

  std::string Literal() {
    if (Int(2) == 0) return "'" + std::to_string(Int(4)) + "'";
    return std::to_string(Int(4));
  }

  /// A scalar expression; depth limits the recursion.
  std::string Scalar(int depth) {
    if (depth >= 2) return Literal();
    switch (Int(10)) {
      case 0:
        return Scalar(depth + 1) + " + " + Scalar(depth + 1);
      case 1:
        return Scalar(depth + 1) + " * " + Scalar(depth + 1);
      case 2:
        return "string-length(" + Str(depth + 1) + ")";
      case 3:
        return "number(" + Scalar(depth + 1) + ")";
      case 4:
        return "floor(" + Scalar(depth + 1) + " div 2)";
      case 5:
        return "substring(" + Str(depth + 1) + ", 1 + 1, 2)";
      case 6:
        return "concat(" + Str(depth + 1) + ", 'z')";
      default:
        return Literal();
    }
  }

  std::string Str(int depth) {
    switch (Int(4)) {
      case 0:
        return "'hello'";
      case 1:
        return "string(" + Attr() + ")";
      default:
        return "'" + std::to_string(Int(100)) + "'";
    }
  }

  /// Predicates shaped for the peephole and const-fold passes.
  std::string Predicate() {
    std::string cmp = Pick({"=", "!=", "<", "<=", ">", ">="});
    switch (Int(10)) {
      case 0:  // attr-vs-literal, both orientations: cmp_attr_const
      case 1:
        return Attr() + " " + cmp + " " + Literal();
      case 2:
        return Literal() + " " + cmp + " " + Attr();
      case 3:  // constant condition: jump threading kills a branch arm
        return Scalar(1) + " " + cmp + " " + Scalar(1);
      case 4:
        return "not(" + Attr() + " " + cmp + " " + Literal() + ")";
      case 5:  // short-circuit scaffolding around a fusable compare
        return Attr() + " " + cmp + " " + Literal() + " " +
               Pick({"and", "or"}) + " " + Scalar(1) + " " + cmp + " " +
               Literal();
      case 6:
        return "boolean(" + Attr() + ")";
      case 7:
        return "position() " + cmp + " " + std::to_string(1 + Int(3));
      default:
        return Attr();
    }
  }

  std::string Step() {
    std::string axis = Pick({"", "", "", "descendant::", "self::"});
    std::string step = axis + Pick({"a", "b", "c", "*"});
    if (Int(2) == 0) step += "[" + Predicate() + "]";
    return step;
  }

  std::string Path() {
    std::string out = Pick({"/", "", "//"});
    int steps = 1 + Int(3);
    for (int i = 0; i < steps; ++i) {
      if (i > 0) out += Pick({"/", "/", "//"});
      out += Step();
    }
    return out;
  }

  std::mt19937 rng_;
};

std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  const char* names[] = {"a", "b", "c"};
  std::uniform_int_distribution<int> name_dist(0, 2);
  std::uniform_int_distribution<int> children_dist(0, 3);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  int id = 0;
  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* name = names[name_dist(rng)];
    out += "<";
    out += name;
    if (kind_dist(rng) < 5) out += " id='n" + std::to_string(id++) + "'";
    if (kind_dist(rng) < 4) {
      out += " x='" + std::to_string(kind_dist(rng) % 4) + "'";
    }
    if (kind_dist(rng) < 2) {
      out += " y='" + std::to_string(kind_dist(rng) % 4) + "'";
    }
    out += ">";
    int children = depth >= 4 ? 0 : children_dist(rng);
    for (int i = 0; i < children; ++i) {
      if (kind_dist(rng) < 7) {
        emit(depth + 1);
      } else {
        out += "t" + std::to_string(kind_dist(rng));
      }
    }
    out += "</";
    out += name;
    out += ">";
  };
  out += "<root>";
  for (int i = 0; i < 3; ++i) emit(1);
  out += "</root>";
  return out;
}

/// Evaluates through the algebraic engine, rendering node results as an
/// ordered list of document-order keys and scalars via string().
StatusOr<std::string> RunAlgebraic(Database* db, storage::NodeId root,
                                   const std::string& query,
                                   bool optimize_nvm) {
  translate::TranslatorOptions options;
  options.optimize_nvm = optimize_nvm;
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled,
                         db->Compile(query, options));
  if (compiled->result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<storage::StoredNode> nodes,
                           compiled->EvaluateNodes(root));
    std::string out = "nodes:";
    for (const storage::StoredNode& n : nodes) {
      NATIX_ASSIGN_OR_RETURN(uint64_t order, n.order());
      out += " " + std::to_string(order);
    }
    return out;
  }
  NATIX_ASSIGN_OR_RETURN(std::string value, compiled->EvaluateString(root));
  return "str: " + value;
}

class FuzzDiffNvmTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzDiffNvmTest, OptimizedProgramsAgreeWithBaseline) {
  uint32_t seed = GetParam() + BaseSeed();
  SCOPED_TRACE(::testing::Message()
               << "effective seed " << seed
               << "; rerun with NATIX_FUZZ_DIFF_NVM=" << BaseSeed());
  std::string xml = RandomDocument(seed * 2027 + 11);

  bool was_enabled = analysis::VerificationEnabled();
  analysis::SetVerificationEnabled(true);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  ASSERT_TRUE(info.ok());
  auto dom_doc = dom::ParseDocument(xml);
  ASSERT_TRUE(dom_doc.ok());

  NvmQueryGen gen(seed);
  for (int i = 0; i < 80; ++i) {
    std::string query = gen.TopLevel();

    auto optimized = RunAlgebraic(db->get(), info->root, query,
                                  /*optimize_nvm=*/true);
    ASSERT_TRUE(optimized.ok())
        << query << ": " << optimized.status().ToString()
        << "\ndocument: " << xml;
    auto baseline = RunAlgebraic(db->get(), info->root, query,
                                 /*optimize_nvm=*/false);
    ASSERT_TRUE(baseline.ok())
        << query << ": " << baseline.status().ToString();
    ASSERT_EQ(*optimized, *baseline)
        << "nvm optimizer diverges on " << query << "\ndocument: " << xml;

    // Cross-check node results against the interpreter oracle (string
    // results go through different conversion paths; the plan-vs-plan
    // check above already covers them).
    if (optimized->rfind("nodes:", 0) == 0) {
      interp::EvaluatorOptions oracle_options;
      auto oracle = interp::Evaluator::Run(dom_doc->get(), query,
                                           (*dom_doc)->root(),
                                           oracle_options);
      ASSERT_TRUE(oracle.ok()) << query;
      if (oracle->kind == interp::Object::Kind::kNodeSet) {
        std::string expected = "nodes:";
        for (const dom::Node* n : oracle->nodes) {
          expected += " " + std::to_string(n->order);
        }
        ASSERT_EQ(*optimized, expected)
            << "interp oracle diverges on " << query
            << "\ndocument: " << xml;
      }
    }
  }

  analysis::SetVerificationEnabled(was_enabled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDiffNvmTest, ::testing::Range(1u, 7u));

}  // namespace
}  // namespace natix
