// Conformance cross-check: the paper's central claim is a complete,
// semantics-preserving translation of XPath 1.0 into the algebra. These
// property tests generate pseudo-random documents and run a broad query
// corpus through four evaluators — the algebraic engine with the
// canonical and the improved translation, and the main-memory interpreter
// with and without memoization — requiring identical results.

#include <gtest/gtest.h>

#include <memory>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "api/database.h"
#include "base/xpath_number.h"
#include "dom/dom_builder.h"
#include "interp/evaluator.h"

namespace natix {
namespace {

/// Deterministic random XML generator.
std::string RandomDocument(uint32_t seed) {
  std::mt19937 rng(seed);
  const char* names[] = {"a", "b", "c", "d"};
  std::uniform_int_distribution<int> name_dist(0, 3);
  std::uniform_int_distribution<int> children_dist(0, 4);
  std::uniform_int_distribution<int> kind_dist(0, 9);
  int id = 0;

  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* name = names[name_dist(rng)];
    out += "<";
    out += name;
    if (kind_dist(rng) < 4) {
      out += " id='n" + std::to_string(id++) + "'";
    }
    if (kind_dist(rng) < 2) {
      out += " x='" + std::to_string(kind_dist(rng)) + "'";
    }
    out += ">";
    int children = depth >= 4 ? 0 : children_dist(rng);
    for (int i = 0; i < children; ++i) {
      int kind = kind_dist(rng);
      if (kind < 6) {
        emit(depth + 1);
      } else if (kind < 8) {
        out += "t" + std::to_string(kind_dist(rng));
      } else if (kind == 8) {
        out += "<!--c-->";
      } else {
        out += "<?pi d?>";
      }
    }
    out += "</";
    out += name;
    out += ">";
  };
  out += "<root>";
  for (int i = 0; i < 3; ++i) emit(1);
  out += "</root>";
  return out;
}

const char* kQueryCorpus[] = {
    "/root/a",
    "//a",
    "//a/b",
    "//*[@id]",
    "//*[@x='1']",
    "/root//c/d",
    "//a/ancestor::*",
    "//b/ancestor-or-self::*",
    "//c/parent::*",
    "//d/preceding-sibling::*",
    "//a/following-sibling::b",
    "//b/following::c",
    "//c/preceding::a",
    "//a/descendant-or-self::b",
    "//a[1]",
    "//a[last()]",
    "//a[position() = 2]",
    "//b[position() < 3]",
    "//a[position() = last()]",
    "//a[position() = last() - 1]",
    "//*[b][c]",
    "//*[b or c]",
    "//*[b and @id]",
    "//a[b[position()=1]]",
    "//a[count(b) > 1]",
    "//a[count(.//b) >= 2]",
    "//*[not(@id)]",
    "//a/text()",
    "//comment()",
    "//processing-instruction()",
    "//node()",
    "//a/@*",
    "//a[@id]/@id",
    "(//a)[2]",
    "(//b)[last()]",
    "(//a | //b)[3]",
    "//a | //b/c | //d",
    "//a[.//text()]",
    "//*[starts-with(@id, 'n1')]",
    "//*[contains(string(@x), '1')]",
    "//a[string-length(string(.)) > 2]",
    "//b[. = ../c]",
    "//a[@x = //b/@x]",
    "//a[@x < //b/@x]",
    "//*[sum(.//@x) > 2]",
    "count(//a)",
    "count(//a/b) + count(//b)",
    "sum(//@x)",
    "string(//a)",
    "string(//a/@id)",
    "boolean(//a[@x])",
    "not(//zzz)",
    "name(//*[@id][1])",
    "normalize-space(string(/root))",
    "count(//a[descendant::b]/following::c)",
    "//a[following::b[position()=2]]",
    "//*[self::a or self::b][@id]",
    "//a/..",
    "//a/../b",
    "id('n1')",
    "id('n0 n2')/b",
    "//a[../b]",
};

/// Renders an interpreter result for comparison.
std::string RenderInterp(const interp::Object& v) {
  switch (v.kind) {
    case interp::Object::Kind::kNodeSet: {
      std::string out = "nodes:";
      for (const dom::Node* n : v.nodes) {
        out += " " + std::to_string(n->order);
      }
      return out;
    }
    case interp::Object::Kind::kBoolean:
      return v.boolean ? "bool: true" : "bool: false";
    case interp::Object::Kind::kNumber:
      return "num: " + XPathNumberToString(v.number);
    case interp::Object::Kind::kString:
      return "str: " + v.string;
  }
  return "?";
}

class ConformanceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ConformanceTest, FourEvaluatorsAgree) {
  std::string xml = RandomDocument(GetParam());

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto dom_doc = dom::ParseDocument(xml);
  ASSERT_TRUE(dom_doc.ok());

  for (const char* query : kQueryCorpus) {
    // Reference: memoized interpreter.
    interp::EvaluatorOptions memo;
    auto expected = interp::Evaluator::Run(dom_doc->get(), query,
                                           (*dom_doc)->root(), memo);
    ASSERT_TRUE(expected.ok())
        << query << ": " << expected.status().ToString();
    std::string expected_str = RenderInterp(*expected);

    // Naive interpreter must agree.
    interp::EvaluatorOptions naive;
    naive.memoize = false;
    auto naive_result = interp::Evaluator::Run(dom_doc->get(), query,
                                               (*dom_doc)->root(), naive);
    ASSERT_TRUE(naive_result.ok()) << query;
    EXPECT_EQ(RenderInterp(*naive_result), expected_str)
        << "naive interpreter diverges on " << query;

    // The straw-man (no step consolidation) is exponential on adversarial
    // inputs but must still be *correct* on this corpus.
    interp::EvaluatorOptions straw;
    straw.memoize = false;
    straw.consolidate_steps = false;
    auto straw_result = interp::Evaluator::Run(dom_doc->get(), query,
                                               (*dom_doc)->root(), straw);
    ASSERT_TRUE(straw_result.ok()) << query;
    EXPECT_EQ(RenderInterp(*straw_result), expected_str)
        << "straw-man interpreter diverges on " << query;

    // Algebraic engine, both translations.
    for (bool improved : {false, true}) {
      auto options = improved ? translate::TranslatorOptions::Improved()
                              : translate::TranslatorOptions::Canonical();
      auto compiled = (*db)->Compile(query, options);
      ASSERT_TRUE(compiled.ok())
          << query << ": " << compiled.status().ToString();
      std::string actual;
      if ((*compiled)->result_type() == xpath::ExprType::kNodeSet) {
        auto nodes = (*compiled)->EvaluateNodes(info->root);
        ASSERT_TRUE(nodes.ok())
            << query << ": " << nodes.status().ToString();
        actual = "nodes:";
        for (const storage::StoredNode& n : *nodes) {
          actual += " " + std::to_string(*n.order());
        }
      } else {
        auto value = (*compiled)->EvaluateValue(info->root);
        ASSERT_TRUE(value.ok())
            << query << ": " << value.status().ToString();
        switch (value->kind()) {
          case runtime::ValueKind::kBoolean:
            actual = value->AsBoolean() ? "bool: true" : "bool: false";
            break;
          case runtime::ValueKind::kNumber:
            actual = "num: " + XPathNumberToString(value->AsNumber());
            break;
          default:
            actual = "str: " + value->AsString();
        }
      }
      EXPECT_EQ(actual, expected_str)
          << (improved ? "improved" : "canonical")
          << " translation diverges on " << query << "\ndocument: " << xml;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceTest,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace natix
