// Database::Options validation: configurations that would thrash (a
// pool below the root-to-leaf working set) or starve (shards of fewer
// than two pages) are rejected at open time with InvalidArgument,
// instead of surfacing later as mysterious eviction livelock.

#include <gtest/gtest.h>

#include "api/database.h"

namespace natix {
namespace {

TEST(DatabaseOptionsTest, RejectsPoolBelowWorkingSet) {
  Database::Options options;
  options.buffer_pages = 8;
  EXPECT_FALSE(options.Validate().ok());
  auto db = Database::CreateTemp(options);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseOptionsTest, RejectsShardsWithFewerThanTwoPagesEach) {
  Database::Options options;
  options.buffer_pages = 16;
  options.buffer_shards = 16;  // 1 page per shard: a pinned page blocks
                               // every other fault through that stripe
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_FALSE(Database::CreateTemp(options).ok());

  options.buffer_shards = 8;  // 2 pages per shard: the floor
  EXPECT_TRUE(options.Validate().ok());
  auto db = Database::CreateTemp(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->store()->buffer_manager()->shard_count(), 8u);
}

TEST(DatabaseOptionsTest, AutoShardSelectionAlwaysValidates) {
  // buffer_shards = 0 never turns a valid pool size invalid: the
  // hardware-derived default is clamped to >= 2 pages per shard.
  for (size_t pages : {16u, 17u, 64u, 4096u}) {
    Database::Options options;
    options.buffer_pages = pages;
    EXPECT_TRUE(options.Validate().ok()) << pages;
    size_t shards = options.EffectiveShards();
    EXPECT_GE(shards, 1u);
    EXPECT_LE(2 * shards, pages);
    auto db = Database::CreateTemp(options);
    ASSERT_TRUE(db.ok()) << pages;
    EXPECT_EQ((*db)->store()->buffer_manager()->shard_count(), shards);
  }
}

TEST(DatabaseOptionsTest, MinimumValidPoolStillAnswersQueries) {
  Database::Options options;
  options.buffer_pages = 16;
  options.buffer_shards = 1;
  auto db = Database::CreateTemp(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("doc", "<r><a/><a/></r>").ok());
  auto count = (*db)->QueryNumber("doc", "count(//a)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2.0);
}

}  // namespace
}  // namespace natix
