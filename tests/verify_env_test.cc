// Forces the static plan verifier on for the whole test binary, so every
// plan compiled by any suite (conformance, e2e, option matrix, fuzz, ...)
// is verified regardless of build type. A verifier violation then fails
// the compiling test with the diagnostic as its error status.

#include <gtest/gtest.h>

#include "analysis/plan_verifier.h"

namespace {

class PlanVerificationEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    natix::analysis::SetVerificationEnabled(true);
  }
};

const ::testing::Environment* const kPlanVerificationEnvironment =
    ::testing::AddGlobalTestEnvironment(new PlanVerificationEnvironment);

}  // namespace
