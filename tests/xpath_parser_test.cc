#include "xpath/parser.h"

#include <gtest/gtest.h>

#include <string>

namespace natix::xpath {
namespace {

/// Parses and renders back; the renderer prints fully explicit axes and
/// parenthesized operators, so expectations are canonicalized strings.
std::string Roundtrip(const std::string& query) {
  auto expr = ParseXPath(query);
  if (!expr.ok()) return "ERROR " + expr.status().ToString();
  return (*expr)->ToString();
}

TEST(XPathParserTest, SimplePaths) {
  EXPECT_EQ(Roundtrip("/a"), "/child::a");
  EXPECT_EQ(Roundtrip("a/b"), "child::a/child::b");
  EXPECT_EQ(Roundtrip("/"), "/");
  EXPECT_EQ(Roundtrip("child::a/child::b"), "child::a/child::b");
}

TEST(XPathParserTest, AbbreviatedSteps) {
  EXPECT_EQ(Roundtrip("."), "self::node()");
  EXPECT_EQ(Roundtrip(".."), "parent::node()");
  EXPECT_EQ(Roundtrip("@id"), "attribute::id");
  EXPECT_EQ(Roundtrip("a/@*"), "child::a/attribute::*");
}

TEST(XPathParserTest, DoubleSlashExpands) {
  EXPECT_EQ(Roundtrip("//a"), "/descendant-or-self::node()/child::a");
  EXPECT_EQ(Roundtrip("a//b"),
            "child::a/descendant-or-self::node()/child::b");
}

TEST(XPathParserTest, AllAxes) {
  EXPECT_EQ(Roundtrip("ancestor::a"), "ancestor::a");
  EXPECT_EQ(Roundtrip("ancestor-or-self::a"), "ancestor-or-self::a");
  EXPECT_EQ(Roundtrip("descendant::a"), "descendant::a");
  EXPECT_EQ(Roundtrip("descendant-or-self::a"), "descendant-or-self::a");
  EXPECT_EQ(Roundtrip("following::a"), "following::a");
  EXPECT_EQ(Roundtrip("following-sibling::a"), "following-sibling::a");
  EXPECT_EQ(Roundtrip("preceding::a"), "preceding::a");
  EXPECT_EQ(Roundtrip("preceding-sibling::a"), "preceding-sibling::a");
  EXPECT_EQ(Roundtrip("self::a"), "self::a");
  EXPECT_EQ(Roundtrip("parent::a"), "parent::a");
  EXPECT_EQ(Roundtrip("attribute::a"), "attribute::a");
}

TEST(XPathParserTest, PaperAxisAbbreviations) {
  // Fig. 5 of the paper writes desc::, anc::, pre-sib::, fol::, par::.
  EXPECT_EQ(Roundtrip("/child::xdoc/desc::*/anc::*/desc::*/@id"),
            "/child::xdoc/descendant::*/ancestor::*/descendant::*/"
            "attribute::id");
  EXPECT_EQ(Roundtrip("pre-sib::*/fol::*"),
            "preceding-sibling::*/following::*");
  EXPECT_EQ(Roundtrip("par::*"), "parent::*");
}

TEST(XPathParserTest, NamespaceAxisRejected) {
  EXPECT_TRUE(Roundtrip("namespace::*").starts_with("ERROR NotSupported"));
}

TEST(XPathParserTest, NodeTests) {
  EXPECT_EQ(Roundtrip("text()"), "child::text()");
  EXPECT_EQ(Roundtrip("comment()"), "child::comment()");
  EXPECT_EQ(Roundtrip("node()"), "child::node()");
  EXPECT_EQ(Roundtrip("processing-instruction()"),
            "child::processing-instruction()");
  EXPECT_EQ(Roundtrip("processing-instruction('php')"),
            "child::processing-instruction('php')");
  EXPECT_EQ(Roundtrip("*"), "child::*");
}

TEST(XPathParserTest, Predicates) {
  EXPECT_EQ(Roundtrip("a[1]"), "child::a[1]");
  EXPECT_EQ(Roundtrip("a[b][c]"), "child::a[child::b][child::c]");
  EXPECT_EQ(Roundtrip("a[@id='x']"),
            "child::a[(attribute::id = 'x')]");
}

TEST(XPathParserTest, Operators) {
  EXPECT_EQ(Roundtrip("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Roundtrip("1 = 2 or 3 != 4 and 5 < 6"),
            "((1 = 2) or ((3 != 4) and (5 < 6)))");
  EXPECT_EQ(Roundtrip("8 div 2 mod 3"), "((8 div 2) mod 3)");
  EXPECT_EQ(Roundtrip("-5"), "-(5)");
  EXPECT_EQ(Roundtrip("--5"), "-(-(5))");
  EXPECT_EQ(Roundtrip("1 <= 2"), "(1 <= 2)");
  EXPECT_EQ(Roundtrip("1 >= 2"), "(1 >= 2)");
  EXPECT_EQ(Roundtrip("6 > 5"), "(6 > 5)");
}

TEST(XPathParserTest, OperatorNamesAsElementNames) {
  // "and", "or", "div", "mod" are legal element names at operand position.
  EXPECT_EQ(Roundtrip("and"), "child::and");
  EXPECT_EQ(Roundtrip("div or mod"), "(child::div or child::mod)");
  EXPECT_EQ(Roundtrip("or/and"), "child::or/child::and");
}

TEST(XPathParserTest, StarDisambiguation) {
  EXPECT_EQ(Roundtrip("* * *"), "(child::* * child::*)");
  EXPECT_EQ(Roundtrip("a * b"), "(child::a * child::b)");
  EXPECT_EQ(Roundtrip("a/*"), "child::a/child::*");
}

TEST(XPathParserTest, Unions) {
  EXPECT_EQ(Roundtrip("a | b | c"), "(child::a | child::b | child::c)");
}

TEST(XPathParserTest, FunctionCalls) {
  EXPECT_EQ(Roundtrip("count(a)"), "count(child::a)");
  EXPECT_EQ(Roundtrip("concat('x', 'y', 'z')"), "concat('x', 'y', 'z')");
  EXPECT_EQ(Roundtrip("position() = last()"), "(position() = last())");
  EXPECT_EQ(Roundtrip("string-length(normalize-space(.))"),
            "string-length(normalize-space(self::node()))");
}

TEST(XPathParserTest, Variables) {
  EXPECT_EQ(Roundtrip("$x + 1"), "($x + 1)");
  EXPECT_EQ(Roundtrip("$var/a"), "$var/child::a");
}

TEST(XPathParserTest, FilterExpressions) {
  EXPECT_EQ(Roundtrip("(a | b)[1]"), "(child::a | child::b)[1]");
  EXPECT_EQ(Roundtrip("$x[2]"), "$x[2]");
  EXPECT_EQ(Roundtrip("(//a)[position() = last()]"),
            "/descendant-or-self::node()/child::a[(position() = last())]");
}

TEST(XPathParserTest, PathExprAfterFilter) {
  EXPECT_EQ(Roundtrip("id('a')/b"), "id('a')/child::b");
  EXPECT_EQ(Roundtrip("$x//y"),
            "$x/descendant-or-self::node()/child::y");
}

TEST(XPathParserTest, NestedPredicatePaths) {
  EXPECT_EQ(
      Roundtrip("a[count(./descendant::c/following::*) = 1000]"),
      "child::a[(count(self::node()/descendant::c/following::*) = 1000)]");
}

TEST(XPathParserTest, NumberLiterals) {
  EXPECT_EQ(Roundtrip("3.25"), "3.25");
  EXPECT_EQ(Roundtrip(".5"), "0.5");
  EXPECT_EQ(Roundtrip("10."), "10");
}

TEST(XPathParserTest, StringLiterals) {
  EXPECT_EQ(Roundtrip("\"dq\""), "'dq'");
  EXPECT_EQ(Roundtrip("'sq'"), "'sq'");
  EXPECT_EQ(Roundtrip("''"), "''");
}

TEST(XPathParserTest, Errors) {
  EXPECT_TRUE(Roundtrip("").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("a[").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("a]").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("a/").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("foo(").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("1 +").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("!").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("$").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("'unterminated").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("bogus::a").starts_with("ERROR"));
  EXPECT_TRUE(Roundtrip("a b").starts_with("ERROR"));
}

TEST(XPathParserTest, DblpBenchmarkQueriesParse) {
  // The Fig. 10 workload must be accepted verbatim.
  const char* queries[] = {
      "/dblp/article/title",
      "/dblp/*/title",
      "/dblp/article[position() = 3]/title",
      "/dblp/article[position() < 100]/title",
      "/dblp/article[position() = last()]/title",
      "/dblp/article[position()=last()-10]/title",
      "/dblp/article/title | /dblp/inproceedings/title",
      "/dblp/article[count(author)=4]/@key",
      "/dblp/article[year='1991']/@key",
      "/dblp/inproceedings[year='1991']/@key",
      "/dblp/*[author='Guido Moerkotte']/@key",
      "/dblp/inproceedings[@key='conf/er/LockemannM91']/title",
      "/dblp/inproceedings[author='Guido Moerkotte'][position()=last()]"
      "/title",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(ParseXPath(q).ok()) << q;
  }
}

}  // namespace
}  // namespace natix::xpath
