// Buffer-manager counter semantics: the page hit/miss/write/eviction
// counters surfaced by the observability layer (src/obs) must match a
// hand-computed trace. A 4-frame pool is driven through allocation,
// re-fix, and eviction; every counter is asserted exactly.

#include <gtest/gtest.h>

#include "obs/stats.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"

namespace natix::storage {
namespace {

TEST(BufferCountersTest, HandComputedTraceUnderFourPagePool) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 4);

  // Phase 1: allocate six pages p0..p5, dropping each pin immediately.
  // NewPage marks frames dirty, so the two evictions (p4 evicts p0, p5
  // evicts p1 — LRU order is creation order) each write back a page.
  // Fresh allocations are not faults: nothing is read from the file.
  PageId ids[6];
  for (int i = 0; i < 6; ++i) {
    auto page = bm.NewPage();
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    page->mutable_data()[0] = static_cast<uint8_t>(i + 1);
    ids[i] = page->page_id();
  }
  EXPECT_EQ(bm.fault_count(), 0u);
  EXPECT_EQ(bm.hit_count(), 0u);
  EXPECT_EQ(bm.eviction_count(), 2u);
  EXPECT_EQ(bm.write_count(), 2u);

  // Phase 2: p0 left the pool, so fixing it faults it back in, evicting
  // the LRU frame p2 (dirty: third write-back). Pool: {p0, p3, p4, p5}.
  {
    auto page = bm.FixPage(ids[0]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], 1);  // written back at eviction, reloaded
  }
  EXPECT_EQ(bm.fault_count(), 1u);
  EXPECT_EQ(bm.eviction_count(), 3u);
  EXPECT_EQ(bm.write_count(), 3u);

  // Phase 3: p0 and p3 are resident — two hits, no I/O.
  { auto page = bm.FixPage(ids[0]); ASSERT_TRUE(page.ok()); }
  { auto page = bm.FixPage(ids[3]); ASSERT_TRUE(page.ok()); }
  EXPECT_EQ(bm.hit_count(), 2u);
  EXPECT_EQ(bm.fault_count(), 1u);

  // Phase 4: p1 is not resident. LRU order is now p4, p5, p0, p3 (the
  // two hits refreshed p0 and p3), so the fault evicts dirty p4.
  {
    auto page = bm.FixPage(ids[1]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], 2);
  }
  EXPECT_EQ(bm.fault_count(), 2u);
  EXPECT_EQ(bm.eviction_count(), 4u);
  EXPECT_EQ(bm.write_count(), 4u);

  // Phase 5: FlushAll writes exactly the dirty residents. p5 and p3 are
  // dirty since creation; p0 and p1 were reloaded from disk (clean).
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(bm.write_count(), 6u);
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_EQ(bm.write_count(), 6u);  // second flush: nothing dirty

  // The obs snapshot mirrors the four counters field by field.
  obs::BufferCounters snap = obs::CaptureBufferCounters(&bm);
  EXPECT_EQ(snap.page_reads, bm.fault_count());
  EXPECT_EQ(snap.page_hits, bm.hit_count());
  EXPECT_EQ(snap.page_writes, bm.write_count());
  EXPECT_EQ(snap.evictions, bm.eviction_count());
}

TEST(BufferCountersTest, NullBufferCapturesZero) {
  obs::BufferCounters snap = obs::CaptureBufferCounters(nullptr);
  EXPECT_EQ(snap.page_reads, 0u);
  EXPECT_EQ(snap.page_hits, 0u);
  EXPECT_EQ(snap.page_writes, 0u);
  EXPECT_EQ(snap.evictions, 0u);
}

}  // namespace
}  // namespace natix::storage
