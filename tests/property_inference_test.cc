// Tests for the static property-inference engine: the per-attribute
// ordering / duplicate-freedom / nesting lattice, cardinality bounds,
// the static-emptiness table for axis/node-test compositions, and the
// Layer-1.5 property-preservation check used by the checked rewriter.

#include "analysis/property_inference.h"

#include <gtest/gtest.h>

#include "algebra/properties.h"
#include "algebra/rewriter.h"
#include "translate/translator.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::analysis {
namespace {

using algebra::MakeOp;
using algebra::MakeScalar;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::ScalarKind;
using runtime::Axis;

translate::TranslationResult Translate(const std::string& query,
                                       bool simplify = false) {
  auto ast = xpath::ParseXPath(query);
  NATIX_CHECK(ast.ok());
  NATIX_CHECK(xpath::Analyze(ast->get()).ok());
  xpath::FoldConstants(ast->get());
  xpath::Normalize(ast->get());
  translate::TranslatorOptions options;  // improved
  options.simplify_plan = simplify;
  auto result = translate::Translate(**ast, options);
  NATIX_CHECK(result.ok());
  return std::move(result.value());
}

/// Properties of the translated (unsimplified) plan's result attribute.
AttrProperties ResultProperties(const std::string& query) {
  auto result = Translate(query);
  return InferPlanProperties(*result.plan).Lookup(result.result_attr);
}

/// Properties of the raw UnnestMap step with the given axis, before any
/// downstream Sort/DupElim cleans the stream up.
AttrProperties StepProperties(const std::string& query, Axis axis) {
  auto result = Translate(query);
  PropertyMap map = AnnotatePlan(*result.plan);
  for (const auto& [op, props] : map) {
    if (op->kind == OpKind::kUnnestMap && op->axis == axis) {
      return props.Lookup(op->attr);
    }
  }
  ADD_FAILURE() << "no UnnestMap with the requested axis in " << query;
  return AttrProperties();
}

TEST(PropertyLatticeTest, CardinalityRefinement) {
  EXPECT_TRUE(CardinalityRefines(Cardinality::kEmpty, Cardinality::kMany));
  EXPECT_TRUE(
      CardinalityRefines(Cardinality::kExactlyOne, Cardinality::kAtMostOne));
  EXPECT_TRUE(
      CardinalityRefines(Cardinality::kAtMostOne, Cardinality::kMany));
  EXPECT_FALSE(
      CardinalityRefines(Cardinality::kMany, Cardinality::kAtMostOne));
  EXPECT_FALSE(
      CardinalityRefines(Cardinality::kAtMostOne, Cardinality::kExactlyOne));
  EXPECT_TRUE(CardinalityAtMostOne(Cardinality::kEmpty));
  EXPECT_TRUE(CardinalityAtMostOne(Cardinality::kExactlyOne));
  EXPECT_FALSE(CardinalityAtMostOne(Cardinality::kMany));
}

TEST(PropertyLatticeTest, OrderRefinement) {
  EXPECT_TRUE(OrderRefines(OrderState::kDocOrdered, OrderState::kGrouped));
  EXPECT_TRUE(OrderRefines(OrderState::kGrouped, OrderState::kUnknown));
  EXPECT_FALSE(OrderRefines(OrderState::kGrouped, OrderState::kDocOrdered));
  EXPECT_FALSE(OrderRefines(OrderState::kUnknown, OrderState::kGrouped));
}

TEST(PropertyInferenceTest, SingletonScanIsExactlyOne) {
  OpPtr scan = MakeOp(OpKind::kSingletonScan);
  PlanProperties props = InferPlanProperties(*scan);
  EXPECT_EQ(props.cardinality, Cardinality::kExactlyOne);
  // On a <=1-tuple stream every claim holds trivially, even for unbound
  // attributes.
  AttrProperties any = props.Lookup("whatever");
  EXPECT_EQ(any.order, OrderState::kDocOrdered);
  EXPECT_TRUE(any.duplicate_free);
  EXPECT_TRUE(any.non_nested);
}

TEST(PropertyInferenceTest, RootMapIsOrderedSingletonRoot) {
  // Map[c1 := root*(cn)] over the singleton scan.
  OpPtr scan = MakeOp(OpKind::kSingletonScan);
  OpPtr map = MakeOp(OpKind::kMap);
  map->attr = "c1";
  map->scalar = MakeScalar(ScalarKind::kFunc);
  map->scalar->function = xpath::FunctionId::kRootInternal;
  auto arg = MakeScalar(ScalarKind::kAttrRef);
  arg->name = "cn";
  map->scalar->children.push_back(std::move(arg));
  map->children.push_back(std::move(scan));

  PlanProperties props = InferPlanProperties(*map);
  EXPECT_EQ(props.cardinality, Cardinality::kExactlyOne);
  AttrProperties c1 = props.Lookup("c1");
  EXPECT_EQ(c1.order, OrderState::kDocOrdered);
  EXPECT_TRUE(c1.duplicate_free);
  EXPECT_TRUE(c1.non_nested);
  EXPECT_EQ(c1.node_class, NodeClass::kRoot);
}

TEST(PropertyInferenceTest, ChildChainStaysOrderedAndNonNested) {
  AttrProperties out = ResultProperties("/a/b/c");
  EXPECT_EQ(out.order, OrderState::kDocOrdered);
  EXPECT_TRUE(out.duplicate_free);
  EXPECT_TRUE(out.non_nested);
  EXPECT_EQ(out.node_class, NodeClass::kElement);
}

TEST(PropertyInferenceTest, DescendantOfRootIsOrderedButNested) {
  AttrProperties out = ResultProperties("/descendant::a");
  EXPECT_EQ(out.order, OrderState::kDocOrdered);
  EXPECT_TRUE(out.duplicate_free);
  // Descendants of one context can nest: a//a is possible.
  EXPECT_FALSE(out.non_nested);
}

TEST(PropertyInferenceTest, ChildOverNestedContextLosesOrder) {
  // //a can nest; child runs over nested contexts interleave in document
  // order, but each child still has a unique parent.
  auto result = Translate("//a/b", /*simplify=*/true);
  AttrProperties out =
      InferPlanProperties(*result.plan).Lookup(result.result_attr);
  EXPECT_EQ(out.order, OrderState::kUnknown);
  EXPECT_TRUE(out.duplicate_free);
}

TEST(PropertyInferenceTest, DescendantOverNestedContextLosesDistinctness) {
  auto result = Translate("//a/descendant::b", /*simplify=*/true);
  // The final dedup survives simplification exactly because descendant
  // over a nested context cannot claim duplicate-freedom; check the
  // stream feeding it.
  ASSERT_EQ(result.plan->kind, OpKind::kDupElim);
  AttrProperties in = InferPlanProperties(*result.plan->children[0])
                          .Lookup(result.result_attr);
  EXPECT_FALSE(in.duplicate_free);
}

TEST(PropertyInferenceTest, ReverseAxisClaimsNothing) {
  // The raw step claims nothing (the translator's Sort/DupElim above it
  // is what re-establishes order and distinctness — and is therefore
  // never removed here).
  AttrProperties out = StepProperties("/a/b/ancestor::*", Axis::kAncestor);
  EXPECT_EQ(out.order, OrderState::kUnknown);
  EXPECT_FALSE(out.duplicate_free);
}

TEST(PropertyInferenceTest, AttributeStepIsAlwaysNonNested) {
  AttrProperties out = ResultProperties("/a/b/@x");
  EXPECT_EQ(out.order, OrderState::kDocOrdered);
  EXPECT_TRUE(out.duplicate_free);
  EXPECT_TRUE(out.non_nested);
  EXPECT_EQ(out.node_class, NodeClass::kAttribute);
}

TEST(PropertyInferenceTest, FollowingSiblingOverManyContextsIsUnordered) {
  // Distinct contexts share their siblings: neither order nor
  // duplicate-freedom survives on the raw step (the unsound-removal
  // case — the cleanup above it must stay).
  AttrProperties out =
      StepProperties("/a/b/following-sibling::*", Axis::kFollowingSibling);
  EXPECT_EQ(out.order, OrderState::kUnknown);
  EXPECT_FALSE(out.duplicate_free);
}

TEST(PropertyInferenceTest, FreeAttributeIsConstantPerEvaluation) {
  auto result = Translate("a/b");
  PlanProperties props = InferPlanProperties(*result.plan);
  ASSERT_EQ(props.cardinality, Cardinality::kMany);
  // cn is never bound by the plan: constant per evaluation, so ordered
  // and non-nested, but full of repeats.
  AttrProperties cn = props.Lookup(translate::kContextNodeAttr);
  EXPECT_EQ(cn.order, OrderState::kDocOrdered);
  EXPECT_FALSE(cn.duplicate_free);
  EXPECT_TRUE(cn.non_nested);
}

TEST(PropertyInferenceTest, BoundAttributeWithoutClaimsStaysConservative) {
  // c1 of /a//b repeats across the descendant fan-out: bound attributes
  // must NOT inherit the free-attribute constancy claims.
  auto result = Translate("/a//b");
  PlanProperties props = InferPlanProperties(*result.plan);
  AttrProperties c1 = props.Lookup("c1");
  EXPECT_FALSE(c1.duplicate_free);
}

TEST(StaticallyEmptyStepTest, AttributesHaveNoChildrenOrSiblings) {
  xpath::AstNodeTest any;
  any.kind = xpath::AstNodeTest::Kind::kAnyName;
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kAttribute, Axis::kChild, any));
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kAttribute, Axis::kDescendant, any));
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kAttribute, Axis::kAttribute, any));
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kAttribute,
                                  Axis::kFollowingSibling, any));
  // self::* on an attribute: the name test matches the principal node
  // kind (element), never an attribute.
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kAttribute, Axis::kSelf, any));
  // ...but self::node() matches the attribute itself.
  xpath::AstNodeTest node;
  node.kind = xpath::AstNodeTest::Kind::kAnyKind;
  EXPECT_FALSE(StaticallyEmptyStep(NodeClass::kAttribute, Axis::kSelf, node));
  // parent:: is never empty for attributes.
  EXPECT_FALSE(
      StaticallyEmptyStep(NodeClass::kAttribute, Axis::kParent, any));
}

TEST(StaticallyEmptyStepTest, LeavesHaveNoChildren) {
  xpath::AstNodeTest any;
  any.kind = xpath::AstNodeTest::Kind::kAnyName;
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kLeafText, Axis::kChild, any));
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kLeafText, Axis::kDescendant, any));
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kLeafText, Axis::kAttribute, any));
  // descendant-or-self reaches only the leaf itself — never an element.
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kLeafText,
                                  Axis::kDescendantOrSelf, any));
  EXPECT_FALSE(
      StaticallyEmptyStep(NodeClass::kLeafText, Axis::kFollowingSibling, any));
}

TEST(StaticallyEmptyStepTest, RootHasNoParentSiblingsOrAttributes) {
  xpath::AstNodeTest any;
  any.kind = xpath::AstNodeTest::Kind::kAnyName;
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kParent, any));
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kAncestor, any));
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kFollowing, any));
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kRoot, Axis::kPrecedingSibling, any));
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kAttribute, any));
  EXPECT_TRUE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kSelf, any));
  EXPECT_FALSE(StaticallyEmptyStep(NodeClass::kRoot, Axis::kChild, any));
}

TEST(StaticallyEmptyStepTest, TextTestOnAttributeAxisIsEmpty) {
  xpath::AstNodeTest text;
  text.kind = xpath::AstNodeTest::Kind::kText;
  EXPECT_TRUE(
      StaticallyEmptyStep(NodeClass::kElement, Axis::kAttribute, text));
}

TEST(StaticallyEmptyStepTest, UnknownClassesNeverClaimEmptiness) {
  xpath::AstNodeTest any;
  any.kind = xpath::AstNodeTest::Kind::kAnyName;
  for (Axis axis : {Axis::kChild, Axis::kParent, Axis::kDescendant,
                    Axis::kAttribute, Axis::kSelf}) {
    EXPECT_FALSE(StaticallyEmptyStep(NodeClass::kAnyNode, axis, any));
    EXPECT_FALSE(StaticallyEmptyStep(NodeClass::kElement, axis, any));
  }
}

TEST(PropertyInferenceTest, StaticallyEmptyCompositionPropagates) {
  // Children of an attribute node: the whole plan is provably empty.
  auto result = Translate("/a/@x/b");
  PlanProperties props = InferPlanProperties(*result.plan);
  EXPECT_EQ(props.cardinality, Cardinality::kEmpty);
}

TEST(PropertyInferenceTest, EmptyPlanPrunesToSelectFalseMarker) {
  auto result = Translate("/a/@x/b");
  size_t removed = algebra::SimplifyPlan(&result.plan);
  EXPECT_GE(removed, 1u);
  // The canonical statically-empty marker survives as the plan.
  PlanProperties props = InferPlanProperties(*result.plan);
  EXPECT_EQ(props.cardinality, Cardinality::kEmpty);
}

TEST(PropertyInferenceTest, CounterWithoutResetIsDuplicateFree) {
  auto result = Translate("(/a/b)[2]");
  PropertyMap map = AnnotatePlan(*result.plan);
  bool found = false;
  for (const auto& [op, props] : map) {
    if (op->kind != OpKind::kCounter) continue;
    found = true;
    AttrProperties cp = props.Lookup(op->attr);
    if (op->ctx_attr.empty()) {
      EXPECT_TRUE(cp.duplicate_free);
      EXPECT_EQ(cp.node_class, NodeClass::kNonNode);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PropertyInferenceTest, AnnotatePlanCoversNestedSubplans) {
  auto result = Translate("/a[count(b) = 1]/c");
  PropertyMap map = AnnotatePlan(*result.plan);
  // Every operator including those inside nested scalar subplans gets an
  // entry; the nested count(b) plan adds at least one UnnestMap beyond
  // the outer chain.
  size_t outer = algebra::PlanSize(*result.plan);
  EXPECT_GT(map.size(), outer);
}

TEST(PropertyRenderTest, SummaryAndTagFormats) {
  auto result = Translate("/a/b");
  PlanProperties props = InferPlanProperties(*result.plan);
  EXPECT_EQ(OperatorSummary(*result.plan),
            "UnnestMap[" + result.result_attr + " := " +
                result.plan->ctx_attr + "/child::b]");
  std::string tag = RenderProperties(props, result.result_attr);
  EXPECT_NE(tag.find("{card:n"), std::string::npos);
  EXPECT_NE(tag.find("ord:doc(" + result.result_attr + ")"),
            std::string::npos);
  EXPECT_NE(tag.find("dup-free(" + result.result_attr + ")"),
            std::string::npos);
  // No '=' anywhere: EXPLAIN goldens normalize "=<digits>" counters.
  EXPECT_EQ(tag.find('='), std::string::npos);
}

TEST(PropertyRenderTest, JsonContainsPerAttributeClaims) {
  auto result = Translate("/a/b");
  std::string json = PlanToJson(*result.plan);
  EXPECT_NE(json.find("\"op\":\"UnnestMap\""), std::string::npos);
  EXPECT_NE(json.find("\"cardinality\":\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"order\":\"doc\""), std::string::npos);
  EXPECT_NE(json.find("\"duplicate_free\":true"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(PropertyPreservationTest, RefinementIsAccepted) {
  PlanProperties before;
  before.cardinality = Cardinality::kMany;
  before.attrs["c"] = AttrProperties{};
  PlanProperties after;
  after.cardinality = Cardinality::kAtMostOne;
  EXPECT_TRUE(CheckPropertyPreservation(before, after, "test-rule").ok());
}

TEST(PropertyPreservationTest, WeakenedCardinalityIsRejected) {
  PlanProperties before;
  before.cardinality = Cardinality::kAtMostOne;
  PlanProperties after;
  after.cardinality = Cardinality::kMany;
  Status status = CheckPropertyPreservation(before, after, "bad-rule");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bad-rule"), std::string::npos);
}

TEST(PropertyPreservationTest, WeakenedOrderIsRejected) {
  PlanProperties before;
  before.attrs["c"].order = OrderState::kDocOrdered;
  before.attrs["c"].duplicate_free = true;
  PlanProperties after;
  after.attrs["c"].order = OrderState::kUnknown;
  after.attrs["c"].duplicate_free = true;
  Status status = CheckPropertyPreservation(before, after, "order-loss");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("order-loss"), std::string::npos);
}

TEST(PropertyPreservationTest, WeakenedDistinctnessIsRejected) {
  PlanProperties before;
  before.attrs["c"].duplicate_free = true;
  PlanProperties after;
  after.attrs["c"] = AttrProperties{};
  EXPECT_FALSE(CheckPropertyPreservation(before, after, "dup-loss").ok());
}

}  // namespace
}  // namespace natix::analysis
