// Concurrent executions over shared prepared plans: the central claim
// of the plan/execution split is that one immutable PreparedQuery can
// back any number of simultaneous executions. Eight threads hammer the
// same five paper-shaped plans (and the same striped buffer pool) and
// every result must byte-for-byte match the single-threaded golden.
// The tsan CI job runs this binary with -fsanitize=thread, so latent
// races in the template, the plan cache, or the pool surface here.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "base/logging.h"
#include "gen/xdoc_generator.h"

namespace natix {
namespace {

/// The five query shapes of the paper's evaluation (Figs. 6-10): the
/// four generated-document axis cascades plus a positional predicate.
const char* kPaperQueries[] = {
    "/child::xdoc/desc::*/anc::*/desc::*/@id",
    "/child::xdoc/desc::*/pre-sib::*/fol::*/@id",
    "/child::xdoc/desc::*/anc::*/anc::*/@id",
    "/child::xdoc/child::*/par::*/desc::*/@id",
    "/xdoc/n[position() = last()]/@id",
};

struct SharedFixture {
  std::unique_ptr<Database> db;
  storage::NodeId root;
  std::vector<std::shared_ptr<const PreparedQuery>> plans;
  /// Golden node-id sequences, computed single-threaded.
  std::vector<std::vector<storage::NodeId>> golden;
};

SharedFixture MakeFixture() {
  SharedFixture f;
  Database::Options options;
  options.buffer_pages = 16;  // minimum pool: eviction traffic even on
                              // a small document
  options.buffer_shards = 8;
  auto db = Database::CreateTemp(options);
  NATIX_CHECK(db.ok());
  f.db = std::move(db).value();

  // Small document: the stress lies in 1600 concurrent executions, not
  // in per-query work — tsan runs this binary and multiplies every
  // evaluation's cost by an order of magnitude.
  gen::XDocOptions gen_options;
  gen_options.max_elements = 120;
  gen_options.fanout = 4;
  gen_options.depth = 4;
  auto info = f.db->LoadDocument("doc", gen::GenerateXDoc(gen_options));
  NATIX_CHECK(info.ok());
  f.root = info->root;

  for (const char* query : kPaperQueries) {
    auto plan = f.db->Prepare(query);
    NATIX_CHECK(plan.ok());
    f.plans.push_back(std::move(plan).value());
  }
  for (const auto& plan : f.plans) {
    auto exec = plan->NewExecution();
    NATIX_CHECK(exec.ok());
    auto nodes = (*exec)->EvaluateNodes(f.root);
    NATIX_CHECK(nodes.ok());
    std::vector<storage::NodeId> ids;
    ids.reserve(nodes->size());
    for (const storage::StoredNode& node : *nodes) ids.push_back(node.id());
    NATIX_CHECK(!ids.empty());  // golden must exercise real work
    f.golden.push_back(std::move(ids));
  }
  return f;
}

TEST(ConcurrentExecTest, EightThreadsMatchSequentialGoldens) {
  SharedFixture f = MakeFixture();

  constexpr int kThreads = 8;
  constexpr int kExecutionsPerThread = 200;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each worker instantiates its own executions once and reuses
      // them, the intended steady-state shape of the API.
      std::vector<std::unique_ptr<PreparedQuery::Execution>> execs;
      for (const auto& plan : f.plans) {
        auto exec = plan->NewExecution();
        if (!exec.ok()) {
          ++errors;
          return;
        }
        execs.push_back(std::move(exec).value());
      }
      for (int round = 0; round < kExecutionsPerThread; ++round) {
        size_t i = static_cast<size_t>(t + round) % execs.size();
        auto nodes = execs[i]->EvaluateNodes(f.root);
        if (!nodes.ok()) {
          ++errors;
          return;
        }
        if (nodes->size() != f.golden[i].size()) {
          ++mismatches;
          return;
        }
        for (size_t k = 0; k < nodes->size(); ++k) {
          if ((*nodes)[k].id() != f.golden[i][k]) {
            ++mismatches;
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentExecTest, SharedPlanOutlivesItsDatabaseHandleHolders) {
  // Executions pin their PreparedQuery via shared_ptr: dropping every
  // other reference (including the plan cache's, via reload) must leave
  // in-flight executions valid.
  SharedFixture f = MakeFixture();
  auto exec = f.plans[4]->NewExecution();
  ASSERT_TRUE(exec.ok());
  auto golden = f.golden[4];
  f.plans.clear();  // only the execution's internal pin remains
  auto nodes = (*exec)->EvaluateNodes(f.root);
  ASSERT_TRUE(nodes.ok());
  ASSERT_EQ(nodes->size(), golden.size());
  for (size_t k = 0; k < nodes->size(); ++k) {
    EXPECT_EQ((*nodes)[k].id(), golden[k]);
  }
}

TEST(ConcurrentExecTest, CoherentSnapshotsNeverTearUnderLoad) {
  // A sampler thread takes coherent Snapshot()s while eight readers
  // fault and evict through the striped pool. Coherence invariants:
  // both sums are monotone between snapshots, and on a pool whose
  // capacity is far below the document, faults imply evictions once
  // the pool is full (never more evictions than faults).
  SharedFixture f = MakeFixture();
  const storage::BufferManager* bm = f.db->store()->buffer_manager();

  std::atomic<bool> stop{false};
  std::atomic<int> sampler_failures{0};
  std::thread sampler([&] {
    storage::BufferManager::CounterSnapshot prev = bm->Snapshot();
    while (!stop.load()) {
      storage::BufferManager::CounterSnapshot snap = bm->Snapshot();
      if (snap.faults < prev.faults || snap.hits < prev.hits ||
          snap.evictions < prev.evictions || snap.writes < prev.writes ||
          snap.evictions > snap.faults) {
        ++sampler_failures;
        break;
      }
      prev = snap;
    }
  });

  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      auto exec = f.plans[static_cast<size_t>(t) % f.plans.size()]
                      ->NewExecution();
      if (!exec.ok()) {
        ++errors;
        return;
      }
      for (int round = 0; round < 25; ++round) {
        if (!(*exec)->EvaluateNodes(f.root).ok()) {
          ++errors;
          return;
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true);
  sampler.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(sampler_failures.load(), 0);
}

}  // namespace
}  // namespace natix
