// Direct tests of the baseline main-memory interpreter (beyond the
// conformance cross-checks): result types, context semantics, and the
// work-saving behaviour of memoization / step consolidation that the
// complexity benches rely on.

#include "interp/evaluator.h"

#include <gtest/gtest.h>

#include <string>

#include "dom/dom_builder.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::interp {
namespace {

struct Fixture {
  explicit Fixture(const std::string& xml) {
    auto parsed = dom::ParseDocument(xml);
    NATIX_CHECK(parsed.ok());
    doc = std::move(parsed.value());
  }

  Object Run(const std::string& query,
             EvaluatorOptions options = EvaluatorOptions()) {
    auto result = Evaluator::Run(doc.get(), query, doc->root(), options);
    NATIX_CHECK(result.ok());
    return std::move(result.value());
  }

  std::unique_ptr<dom::Document> doc;
};

TEST(InterpTest, NodeSetResultsAreSortedAndUnique) {
  Fixture f("<r><a><b/></a><a><b/></a></r>");
  Object result = f.Run("//b/ancestor::r");
  ASSERT_EQ(result.kind, Object::Kind::kNodeSet);
  EXPECT_EQ(result.nodes.size(), 1u);
  Object all = f.Run("//a | //b | //a");
  EXPECT_EQ(all.nodes.size(), 4u);
  for (size_t i = 1; i < all.nodes.size(); ++i) {
    EXPECT_LT(all.nodes[i - 1]->order, all.nodes[i]->order);
  }
}

TEST(InterpTest, ScalarResults) {
  Fixture f("<r><a>3</a><a>4</a></r>");
  Object count = f.Run("count(//a)");
  ASSERT_EQ(count.kind, Object::Kind::kNumber);
  EXPECT_EQ(count.number, 2);
  Object sum = f.Run("sum(//a)");
  EXPECT_EQ(sum.number, 7);
  Object text = f.Run("string(//a[2])");
  ASSERT_EQ(text.kind, Object::Kind::kString);
  EXPECT_EQ(text.string, "4");
  Object has = f.Run("boolean(//a[. = '3'])");
  ASSERT_EQ(has.kind, Object::Kind::kBoolean);
  EXPECT_TRUE(has.boolean);
}

TEST(InterpTest, PositionAndLastInPredicates) {
  Fixture f("<r><a/><a/><a/></r>");
  EXPECT_EQ(f.Run("//a[2]").nodes.size(), 1u);
  EXPECT_EQ(f.Run("//a[last()]").nodes.front()->order,
            f.Run("//a[3]").nodes.front()->order);
  EXPECT_EQ(f.Run("count(//a[position() != last()])").number, 2);
}

TEST(InterpTest, VariablesBind) {
  Fixture f("<r><a x='1'/><a x='2'/></r>");
  auto ast = xpath::ParseXPath("//a[@x = $v]");
  ASSERT_TRUE(ast.ok());
  ASSERT_TRUE(xpath::Analyze(ast->get()).ok());
  Evaluator evaluator(f.doc.get(), EvaluatorOptions());
  evaluator.SetVariable("v", Object::String("2"));
  auto result = evaluator.Evaluate(**ast, f.doc->root());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 1u);
}

TEST(InterpTest, UnboundVariableFails) {
  Fixture f("<r/>");
  auto result =
      Evaluator::Run(f.doc.get(), "$nope", f.doc->root(),
                     EvaluatorOptions());
  EXPECT_FALSE(result.ok());
}

TEST(InterpTest, MemoizationSavesStepEvaluations) {
  // Each b's ancestor chain re-reaches the same nodes; the memoized
  // interpreter evaluates (step, context) pairs once.
  std::string xml = "<r>";
  for (int i = 0; i < 10; ++i) xml += "<a><b/><b/><b/></a>";
  xml += "</r>";
  Fixture f(xml);

  auto ast = xpath::ParseXPath("//b[count(ancestor::*/descendant::b) > 0]");
  ASSERT_TRUE(ast.ok());
  ASSERT_TRUE(xpath::Analyze(ast->get()).ok());
  xpath::Normalize(ast->get());

  EvaluatorOptions memo;
  Evaluator with_memo(f.doc.get(), memo);
  ASSERT_TRUE(with_memo.Evaluate(**ast, f.doc->root()).ok());

  EvaluatorOptions no_memo;
  no_memo.memoize = false;
  Evaluator without_memo(f.doc.get(), no_memo);
  ASSERT_TRUE(without_memo.Evaluate(**ast, f.doc->root()).ok());

  EXPECT_LT(with_memo.steps_evaluated(), without_memo.steps_evaluated());
}

TEST(InterpTest, UnconsolidatedStepsMultiplyWork) {
  Fixture f("<a><b/><b/></a>");
  std::string query = "/a/b";
  for (int i = 0; i < 8; ++i) query += "/parent::a/b";

  EvaluatorOptions straw;
  straw.memoize = false;
  straw.consolidate_steps = false;
  Evaluator straw_eval(f.doc.get(), straw);
  auto ast = xpath::ParseXPath(query);
  ASSERT_TRUE(ast.ok());
  ASSERT_TRUE(xpath::Analyze(ast->get()).ok());
  auto straw_result = straw_eval.Evaluate(**ast, f.doc->root());
  ASSERT_TRUE(straw_result.ok());
  // The result is still correct (two b nodes)...
  EXPECT_EQ(straw_result->nodes.size(), 2u);

  EvaluatorOptions consolidated;
  consolidated.memoize = false;
  Evaluator cons_eval(f.doc.get(), consolidated);
  auto cons_result = cons_eval.Evaluate(**ast, f.doc->root());
  ASSERT_TRUE(cons_result.ok());
  EXPECT_EQ(cons_result->nodes.size(), 2u);

  // ...but the straw-man evaluated exponentially more steps (2^k).
  EXPECT_GT(straw_eval.steps_evaluated(),
            cons_eval.steps_evaluated() * 20);
}

TEST(InterpTest, ComparisonSemantics) {
  Fixture f("<r><a>1</a><a>2</a><b>2</b></r>");
  EXPECT_TRUE(f.Run("boolean(//a = //b)").boolean);   // 2 == 2
  EXPECT_TRUE(f.Run("boolean(//a != //b)").boolean);  // 1 != 2
  EXPECT_FALSE(f.Run("boolean(//b != //b)").boolean); // single value
  EXPECT_TRUE(f.Run("boolean(//a < //b)").boolean);
  EXPECT_FALSE(f.Run("boolean(//b < //a)").boolean);  // 2 < max(1,2)? no
  EXPECT_TRUE(f.Run("boolean(//b <= //a)").boolean);
  EXPECT_TRUE(f.Run("boolean(//a = 1)").boolean);
  EXPECT_TRUE(f.Run("boolean(//a = '1')").boolean);
  // node-set vs boolean compares boolean(node-set).
  EXPECT_TRUE(f.Run("boolean(//a = true())").boolean);
  EXPECT_TRUE(f.Run("boolean(//zzz = false())").boolean);
}

TEST(InterpTest, IdFunction) {
  Fixture f("<r><x id='one'/><x id='two'><y id='three'/></x></r>");
  EXPECT_EQ(f.Run("count(id('one two three'))").number, 3);
  EXPECT_EQ(f.Run("string(id('three')/../@id)").string, "two");
  EXPECT_EQ(f.Run("count(id('nope'))").number, 0);
}

}  // namespace
}  // namespace natix::interp
