// Goldens for the property-annotated EXPLAIN surfaces on the five paper
// benchmark query shapes (Figs. 6-10): the per-operator property tags of
// ExplainProperties() pin which claims the inference engine derives (and
// hence which DupElim/Sort operators the rewriter may remove), and
// ExplainJson() is checked for structure and content. These five goldens
// are the contract of the paper-query win: Figs. 6-8 lose the dedup
// after the initial descendant step, Fig. 10's result stream is proven
// document-ordered so the API skips its final sort.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/database.h"

namespace natix {
namespace {

constexpr char kXdoc[] =
    "<xdoc id=\"d0\"><a id=\"n1\"><b id=\"n2\"/><c id=\"n3\"/></a>"
    "<a id=\"n4\"><b id=\"n5\"><c id=\"n6\"/></b></a></xdoc>";

constexpr char kDblp[] =
    "<dblp><article key=\"a1\"><author>A</author><title>T1</title>"
    "</article><article key=\"a2\"><author>B</author><author>C</author>"
    "<title>T2</title></article><inproceedings key=\"p1\">"
    "<title>T3</title></inproceedings></dblp>";

/// Keeps the database alive alongside the compiled query (the query
/// holds a raw store pointer).
struct Compiled {
  std::unique_ptr<Database> db;
  std::unique_ptr<CompiledQuery> query;
  CompiledQuery* operator->() const { return query.get(); }
};

Compiled CompileQuery(const std::string& xml, const std::string& query) {
  auto db = Database::CreateTemp();
  NATIX_CHECK(db.ok());
  auto info = (*db)->LoadDocument("doc", xml);
  NATIX_CHECK(info.ok());
  auto compiled = (*db)->Compile(query);
  NATIX_CHECK(compiled.ok());
  return Compiled{std::move(db.value()), std::move(compiled.value())};
}

TEST(ExplainPropertiesGoldenTest, Fig6Query1) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id");
  EXPECT_EQ(
      q->ExplainProperties(),
      R"(UnnestMap[c6 := c5/attribute::id]  {card:n, dup-free(c6), non-nested(c6), class:attribute}
  DupElim[c5]  {card:n, dup-free(c5), class:element}
    UnnestMap[c5 := c4/descendant::*]  {card:n, class:element}
      DupElim[c4]  {card:n, dup-free(c4), class:element}
        UnnestMap[c4 := c3/ancestor::*]  {card:n, class:element}
          UnnestMap[c3 := c2/descendant::*]  {card:n, ord:doc(c3), dup-free(c3), class:element}
            UnnestMap[c2 := c1/child::xdoc]  {card:<=1, ord:doc(c2), dup-free(c2), non-nested(c2), class:element}
              Map[c1 := root*(cn)]  {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root}
                SingletonScan  {card:1}
)");
  EXPECT_FALSE(q->ResultDocumentOrdered());
}

TEST(ExplainPropertiesGoldenTest, Fig7Query2) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/desc::*/pre-sib::*/fol::*/@id");
  EXPECT_EQ(
      q->ExplainProperties(),
      R"(UnnestMap[c6 := c5/attribute::id]  {card:n, dup-free(c6), non-nested(c6), class:attribute}
  DupElim[c5]  {card:n, dup-free(c5), class:element}
    UnnestMap[c5 := c4/following::*]  {card:n, class:element}
      DupElim[c4]  {card:n, dup-free(c4), class:element}
        UnnestMap[c4 := c3/preceding-sibling::*]  {card:n, class:element}
          UnnestMap[c3 := c2/descendant::*]  {card:n, ord:doc(c3), dup-free(c3), class:element}
            UnnestMap[c2 := c1/child::xdoc]  {card:<=1, ord:doc(c2), dup-free(c2), non-nested(c2), class:element}
              Map[c1 := root*(cn)]  {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root}
                SingletonScan  {card:1}
)");
}

TEST(ExplainPropertiesGoldenTest, Fig8Query3) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/desc::*/anc::*/anc::*/@id");
  EXPECT_EQ(
      q->ExplainProperties(),
      R"(UnnestMap[c6 := c5/attribute::id]  {card:n, dup-free(c6), non-nested(c6), class:attribute}
  DupElim[c5]  {card:n, dup-free(c5), class:element}
    UnnestMap[c5 := c4/ancestor::*]  {card:n, class:element}
      DupElim[c4]  {card:n, dup-free(c4), class:element}
        UnnestMap[c4 := c3/ancestor::*]  {card:n, class:element}
          UnnestMap[c3 := c2/descendant::*]  {card:n, ord:doc(c3), dup-free(c3), class:element}
            UnnestMap[c2 := c1/child::xdoc]  {card:<=1, ord:doc(c2), dup-free(c2), non-nested(c2), class:element}
              Map[c1 := root*(cn)]  {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root}
                SingletonScan  {card:1}
)");
  // The descendant-step dedup is proven redundant; its removal is logged
  // with the proving property.
  bool found = false;
  for (const algebra::RewriteEvent& event : q->rewrites()) {
    if (event.rule != "drop-redundant-duplicate-elimination") continue;
    if (event.target != "DupElim[c3]") continue;
    found = true;
    EXPECT_NE(event.justification.find("dup-free(c3)"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(ExplainPropertiesGoldenTest, Fig9Query4) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/child::*/par::*/desc::*/@id");
  EXPECT_EQ(
      q->ExplainProperties(),
      R"(UnnestMap[c6 := c5/attribute::id]  {card:n, dup-free(c6), non-nested(c6), class:attribute}
  DupElim[c5]  {card:n, dup-free(c5), class:element}
    UnnestMap[c5 := c4/descendant::*]  {card:n, class:element}
      DupElim[c4]  {card:n, dup-free(c4), class:element}
        UnnestMap[c4 := c3/parent::*]  {card:n, class:element}
          UnnestMap[c3 := c2/child::*]  {card:n, ord:doc(c3), dup-free(c3), non-nested(c3), class:element}
            UnnestMap[c2 := c1/child::xdoc]  {card:<=1, ord:doc(c2), dup-free(c2), non-nested(c2), class:element}
              Map[c1 := root*(cn)]  {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root}
                SingletonScan  {card:1}
)");
}

TEST(ExplainPropertiesGoldenTest, Fig10DblpPositional) {
  auto q = CompileQuery(kDblp, "/dblp/article[position() = last()]/title");
  EXPECT_EQ(
      q->ExplainProperties(),
      R"(UnnestMap[c6 := c3/child::title]  {card:n, ord:doc(c6), dup-free(c6), non-nested(c6), class:element}
  Select[(cp4 = cs5)]  {card:n}
    TmpCs[cs5; context c2]  {card:n, ord:grouped(cs5), non-nested(cs5), class:value}
      Counter[cp4, reset on c2]  {card:n, class:value}
        UnnestMap[c3 := c2/child::article]  {card:n, ord:doc(c3), dup-free(c3), non-nested(c3), class:element}
          UnnestMap[c2 := c1/child::dblp]  {card:<=1, ord:doc(c2), dup-free(c2), non-nested(c2), class:element}
            Map[c1 := root*(cn)]  {card:1, ord:doc(c1), dup-free(c1), non-nested(c1), class:root}
              SingletonScan  {card:1}
)");
  // The proven result order lets the API skip its final sort.
  EXPECT_TRUE(q->ResultDocumentOrdered());
}

/// Minimal well-formedness scan: balanced braces/brackets outside
/// strings, and strings properly terminated.
bool JsonBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(ExplainJsonGoldenTest, PaperQueriesEmitWellFormedJson) {
  const struct {
    const char* xml;
    const char* query;
  } cases[] = {
      {kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id"},
      {kXdoc, "/child::xdoc/desc::*/pre-sib::*/fol::*/@id"},
      {kXdoc, "/child::xdoc/desc::*/anc::*/anc::*/@id"},
      {kXdoc, "/child::xdoc/child::*/par::*/desc::*/@id"},
      {kDblp, "/dblp/article[position() = last()]/title"},
  };
  for (const auto& c : cases) {
    auto q = CompileQuery(c.xml, c.query);
    const std::string& json = q->ExplainJson();
    EXPECT_TRUE(JsonBalanced(json)) << c.query;
    // Single line, trailing newline only.
    EXPECT_EQ(json.find('\n'), json.size() - 1) << c.query;
    EXPECT_NE(json.find("\"op\":\"UnnestMap\""), std::string::npos)
        << c.query;
    EXPECT_NE(json.find("\"cardinality\":"), std::string::npos) << c.query;
    EXPECT_NE(json.find("\"attrs\":{"), std::string::npos) << c.query;
  }
}

TEST(ExplainJsonGoldenTest, PaperQueriesCarrySegments) {
  // Every paper query's --explain-json carries the fusability
  // segmentation next to the plan, and Figs. 6-8 each keep a
  // multi-operator fusable segment (the navigation spine below the last
  // DupElim) — the NVM fusion compiler's work list.
  const struct {
    const char* xml;
    const char* query;
    const char* spine;  // first op of the multi-operator fusable segment
  } cases[] = {
      {kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id",
       "\"UnnestMap[c4 := c3/ancestor::*]\",\"UnnestMap[c3 := "
       "c2/descendant::*]\""},
      {kXdoc, "/child::xdoc/desc::*/pre-sib::*/fol::*/@id",
       "\"UnnestMap[c4 := c3/preceding-sibling::*]\",\"UnnestMap[c3 := "
       "c2/descendant::*]\""},
      {kXdoc, "/child::xdoc/desc::*/anc::*/anc::*/@id",
       "\"UnnestMap[c4 := c3/ancestor::*]\",\"UnnestMap[c3 := "
       "c2/descendant::*]\""},
  };
  for (const auto& c : cases) {
    auto q = CompileQuery(c.xml, c.query);
    const std::string& json = q->ExplainJson();
    EXPECT_NE(json.find("\"segments\":[{"), std::string::npos) << c.query;
    EXPECT_NE(json.find("\"barrier\":\"stateful: duplicate seen-set\""),
              std::string::npos)
        << c.query;
    // The fusable spine stays one segment: consecutive ops in one array.
    EXPECT_NE(json.find(c.spine), std::string::npos) << c.query;
  }
}

TEST(ExplainSegmentsGoldenTest, Fig6Segments) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id");
  EXPECT_EQ(q->ExplainSegments(),
            R"(pipeline segments: 5 (3 fusable)
  segment 0 [fusable]
    UnnestMap[c6 := c5/attribute::id]
  segment 1 [boundary: stateful: duplicate seen-set]
    DupElim[c5]
  segment 2 [fusable]
    UnnestMap[c5 := c4/descendant::*]
  segment 3 [boundary: stateful: duplicate seen-set]
    DupElim[c4]
  segment 4 [fusable]
    UnnestMap[c4 := c3/ancestor::*]
    UnnestMap[c3 := c2/descendant::*]
    UnnestMap[c2 := c1/child::xdoc]
    Map[c1 := root*(cn)]
    SingletonScan
)");
}

TEST(ExplainSegmentsGoldenTest, Fig10DblpSegments) {
  auto q = CompileQuery(kDblp, "/dblp/article[position() = last()]/title");
  EXPECT_EQ(q->ExplainSegments(),
            R"(pipeline segments: 3 (2 fusable)
  segment 0 [fusable]
    UnnestMap[c6 := c3/child::title]
    Select[(cp4 = cs5)]
  segment 1 [boundary: materializes one context group (Tmp^cs spool)]
    TmpCs[cs5; context c2]
  segment 2 [fusable]
    Counter[cp4, reset on c2]
    UnnestMap[c3 := c2/child::article]
    UnnestMap[c2 := c1/child::dblp]
    Map[c1 := root*(cn)]
    SingletonScan
)");
}

TEST(ExplainJsonGoldenTest, Fig6JsonCarriesDescendantClaims) {
  auto q = CompileQuery(kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id");
  const std::string& json = q->ExplainJson();
  // The descendant step's output claims order and duplicate-freedom…
  EXPECT_NE(
      json.find("\"c3\":{\"order\":\"doc\",\"duplicate_free\":true"),
      std::string::npos);
  // …and the summaries match the rendered plan.
  EXPECT_NE(json.find("\"summary\":\"UnnestMap[c3 := c2/descendant::*]\""),
            std::string::npos);
}

}  // namespace
}  // namespace natix
