// The database-level prepared-plan cache: Compile()/Prepare() serve
// repeated queries from an LRU keyed by (translation options, xpath
// text); document loads invalidate everything (plans bake in name
// dictionary ids resolved at compile time).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/database.h"
#include "base/logging.h"
#include "api/plan_cache.h"

namespace natix {
namespace {

std::unique_ptr<Database> MakeDb(size_t cache_capacity) {
  Database::Options options;
  options.plan_cache_capacity = cache_capacity;
  auto db = Database::CreateTemp(options);
  NATIX_CHECK(db.ok());
  auto info =
      (*db)->LoadDocument("doc", "<r><a>1</a><a>2</a><b>9</b></r>");
  NATIX_CHECK(info.ok());
  return std::move(db).value();
}

TEST(PlanCacheTest, RepeatedPrepareSharesOnePlan) {
  auto db = MakeDb(8);
  auto first = db->Prepare("//a");
  ASSERT_TRUE(first.ok());
  auto second = db->Prepare("//a");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(db->plan_cache().size(), 1u);
  EXPECT_EQ(db->plan_cache().hit_count(), 1u);
  EXPECT_EQ(db->plan_cache().miss_count(), 1u);
}

TEST(PlanCacheTest, CompileIsServedFromTheCacheToo) {
  auto db = MakeDb(8);
  ASSERT_TRUE(db->Compile("//a").ok());
  ASSERT_TRUE(db->Compile("//a").ok());
  ASSERT_TRUE(db->Compile("//b").ok());
  EXPECT_EQ(db->plan_cache().size(), 2u);
  EXPECT_EQ(db->plan_cache().hit_count(), 1u);
  EXPECT_EQ(db->plan_cache().miss_count(), 2u);
  // Shim executions over one cached plan stay independent.
  auto q1 = db->Compile("//a");
  auto q2 = db->Compile("//a");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(&(*q1)->prepared(), &(*q2)->prepared());
  EXPECT_NE((*q1)->execution(), (*q2)->execution());
}

TEST(PlanCacheTest, LruEvictionDropsTheColdestPlan) {
  auto db = MakeDb(2);
  ASSERT_TRUE(db->Prepare("//a").ok());        // miss {a}
  ASSERT_TRUE(db->Prepare("//b").ok());        // miss {b,a}
  ASSERT_TRUE(db->Prepare("//a").ok());        // hit  {a,b}
  ASSERT_TRUE(db->Prepare("count(//a)").ok()); // miss, evicts //b
  EXPECT_EQ(db->plan_cache().size(), 2u);
  EXPECT_EQ(db->plan_cache().eviction_count(), 1u);
  ASSERT_TRUE(db->Prepare("//b").ok());        // miss again (evicted)
  EXPECT_EQ(db->plan_cache().hit_count(), 1u);
  EXPECT_EQ(db->plan_cache().miss_count(), 4u);
}

TEST(PlanCacheTest, KeyDistinguishesTranslatorOptions) {
  auto db = MakeDb(8);
  auto improved = db->Prepare("//a/b",
                              translate::TranslatorOptions::Improved());
  auto canonical = db->Prepare("//a/b",
                               translate::TranslatorOptions::Canonical());
  ASSERT_TRUE(improved.ok());
  ASSERT_TRUE(canonical.ok());
  EXPECT_NE(improved->get(), canonical->get());
  EXPECT_EQ(db->plan_cache().size(), 2u);
  EXPECT_EQ(db->plan_cache().hit_count(), 0u);

  EXPECT_NE(
      PlanCache::MakeKey("//a/b", translate::TranslatorOptions::Improved()),
      PlanCache::MakeKey("//a/b",
                         translate::TranslatorOptions::Canonical()));
  // The option fingerprint cannot collide with query text: "1//a" under
  // some options must not alias "//a" under others.
  EXPECT_NE(
      PlanCache::MakeKey("1//a", translate::TranslatorOptions::Improved()),
      PlanCache::MakeKey("//a", translate::TranslatorOptions::Improved()));
}

TEST(PlanCacheTest, DocumentLoadInvalidatesCachedPlans) {
  auto db = MakeDb(8);
  auto before = db->Prepare("//a");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(db->plan_cache().size(), 1u);

  // "//c" compiles against a dictionary with no "c": zero results.
  auto none = db->QueryNumber("doc", "count(//c)");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0.0);

  // The reload introduces "c". A stale cached plan would still carry
  // the unresolved name id and keep returning zero.
  auto info = db->LoadDocument("doc2", "<r><c/><c/></r>");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(db->plan_cache().size(), 0u);
  auto two = db->QueryNumber("doc2", "count(//c)");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, 2.0);

  auto after = db->Prepare("//a");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  auto db = MakeDb(0);
  auto first = db->Prepare("//a");
  auto second = db->Prepare("//a");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->get(), second->get());
  EXPECT_EQ(db->plan_cache().size(), 0u);
  EXPECT_EQ(db->plan_cache().hit_count(), 0u);
}

TEST(PlanCacheTest, CompileErrorsAreNotCached) {
  auto db = MakeDb(8);
  EXPECT_FALSE(db->Prepare("//(((").ok());
  EXPECT_FALSE(db->Prepare("//(((").ok());
  EXPECT_EQ(db->plan_cache().size(), 0u);
  EXPECT_EQ(db->plan_cache().miss_count(), 2u);
}

}  // namespace
}  // namespace natix
