// Satellite: the slow-query ring under concurrency. Eight threads
// hammer Record while a reader Dumps mid-flight; the ring must keep
// exactly the last kDefaultCapacity admissions and Dump must return a
// stable ascending sequence order regardless of interleaving.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace natix::obs {
namespace {

SlowQueryEntry MakeEntry(int thread, int i) {
  SlowQueryEntry entry;
  entry.xpath = "//t" + std::to_string(thread) + "/q" + std::to_string(i);
  entry.exec_ns = static_cast<uint64_t>(i) * 1000;
  entry.page_faults = static_cast<uint64_t>(i);
  entry.tuples = static_cast<uint64_t>(i) * 2;
  return entry;
}

#if !defined(NATIX_OBS_DISABLED)

TEST(SlowQueryLogTest, ThresholdGatesAdmission) {
  SlowQueryLog log;
  EXPECT_FALSE(log.ShouldLog(~uint64_t{0} - 1));  // disabled by default
  log.set_threshold_ns(1000);
  EXPECT_FALSE(log.ShouldLog(999));
  EXPECT_TRUE(log.ShouldLog(1000));
  log.set_threshold_ns(0);
  EXPECT_TRUE(log.ShouldLog(0));  // zero logs everything
}

TEST(SlowQueryLogTest, SequencesAreMonotonicAndDense) {
  SlowQueryLog log;
  log.set_threshold_ns(0);
  for (int i = 0; i < 5; ++i) log.Record(MakeEntry(0, i));
  const std::vector<SlowQueryEntry> dump = log.Dump();
  ASSERT_EQ(dump.size(), 5u);
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].sequence, i + 1);
  }
  EXPECT_EQ(log.total_logged(), 5u);
}

TEST(SlowQueryLogTest, RingKeepsLastCapacityEntries) {
  SlowQueryLog log;
  log.set_threshold_ns(0);
  const size_t total = SlowQueryLog::kDefaultCapacity + 40;
  for (size_t i = 0; i < total; ++i) {
    log.Record(MakeEntry(0, static_cast<int>(i)));
  }
  const std::vector<SlowQueryEntry> dump = log.Dump();
  ASSERT_EQ(dump.size(), SlowQueryLog::kDefaultCapacity);
  EXPECT_EQ(log.total_logged(), total);
  // Oldest surviving admission is total - capacity + 1.
  EXPECT_EQ(dump.front().sequence,
            total - SlowQueryLog::kDefaultCapacity + 1);
  EXPECT_EQ(dump.back().sequence, total);
}

TEST(SlowQueryLogTest, ConcurrentRecordsKeepStableDumpOrder) {
  SlowQueryLog log;
  log.set_threshold_ns(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(MakeEntry(t, i));
        // Interleave reads with writes: every mid-flight Dump must
        // already be sorted and hold at most the ring capacity.
        if (t == 0 && i % 10 == 0) {
          const std::vector<SlowQueryEntry> mid = log.Dump();
          EXPECT_LE(mid.size(), SlowQueryLog::kDefaultCapacity);
          for (size_t k = 1; k < mid.size(); ++k) {
            EXPECT_LT(mid[k - 1].sequence, mid[k].sequence);
          }
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(log.total_logged(), kTotal);
  const std::vector<SlowQueryEntry> dump = log.Dump();
  ASSERT_EQ(dump.size(), SlowQueryLog::kDefaultCapacity);
  // The ring retains exactly the final capacity-sized window of the
  // global admission order: sequences are dense, ascending, and end at
  // the total — no entry lost, duplicated, or reordered.
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].sequence,
              kTotal - SlowQueryLog::kDefaultCapacity + 1 + i);
  }
}

TEST(SlowQueryLogTest, ClearEmptiesRingButKeepsThreshold) {
  SlowQueryLog log;
  log.set_threshold_ns(7);
  log.Record(MakeEntry(0, 0));
  log.Clear();
  EXPECT_TRUE(log.Dump().empty());
  EXPECT_EQ(log.threshold_ns(), 7u);
}

#else  // NATIX_OBS_DISABLED

TEST(SlowQueryLogTest, DisabledConfigIsInertButLinkable) {
  SlowQueryLog log;
  log.set_threshold_ns(0);
  EXPECT_FALSE(log.ShouldLog(12345));
  log.Record(MakeEntry(0, 1));
  EXPECT_TRUE(log.Dump().empty());
  EXPECT_EQ(log.total_logged(), 0u);
  EXPECT_NE(log.RenderText().find("disabled"), std::string::npos);
}

#endif  // NATIX_OBS_DISABLED

}  // namespace
}  // namespace natix::obs
