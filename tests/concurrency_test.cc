// Concurrent read-only queries sharing one store: each thread owns its
// compiled plan (plans are not thread-safe), but all plans hammer the
// same buffer manager, whose bookkeeping is serialized internally.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "gen/xdoc_generator.h"

namespace natix {
namespace {

TEST(ConcurrencyTest, ParallelQueriesShareOneTinyBufferPool) {
  Database::Options options;
  options.buffer_pages = 64;  // still far below the document size, but
                              // enough frames for 8 threads' worth of pins
  auto db = Database::CreateTemp(options);
  ASSERT_TRUE(db.ok());
  gen::XDocOptions gen_options;
  gen_options.max_elements = 4000;
  gen_options.fanout = 6;
  gen_options.depth = 6;
  auto info = (*db)->LoadDocument("doc", gen::GenerateXDoc(gen_options));
  ASSERT_TRUE(info.ok());

  const char* workloads[] = {
      "count(//n)",
      "count(//*[@id])",
      "count(/xdoc/n)",
      "count(//n/parent::*)",
      "count(//*[@id='17'])",
      "sum(/xdoc/n/@id)",
  };
  // Expected values computed single-threaded; all threads must agree.
  std::vector<double> expected(std::size(workloads));
  for (size_t i = 0; i < std::size(workloads); ++i) {
    auto value = (*db)->QueryNumber("doc", workloads[i]);
    ASSERT_TRUE(value.ok());
    expected[i] = *value;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        size_t i = static_cast<size_t>(t + round) % std::size(workloads);
        auto query = (*db)->Compile(workloads[i]);
        if (!query.ok()) {
          ++failures;
          return;
        }
        auto value = (*query)->EvaluateValue(info->root);
        if (!value.ok()) {
          ++failures;
          return;
        }
        runtime::EvalContext ctx;
        ctx.store = (*db)->store();
        auto number = runtime::ToNumber(*value, ctx);
        if (!number.ok() || *number != expected[i]) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace natix
