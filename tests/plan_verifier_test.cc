// Tests for the three-layer static plan verifier: hand-built malformed
// plans/models/programs must be rejected with a diagnostic naming the
// offending operator, register, or opcode; everything the real compiler
// produces must verify cleanly (also enforced binary-wide by
// verify_env_test.cc, which turns verification on for all suites).

#include "analysis/plan_verifier.h"

#include <gtest/gtest.h>

#include "algebra/rewriter.h"
#include "api/database.h"
#include "translate/translator.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::analysis {
namespace {

using algebra::MakeOp;
using algebra::MakeScalar;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::ScalarKind;
using nvm::Instruction;
using nvm::OpCode;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

OpPtr Singleton() { return MakeOp(OpKind::kSingletonScan); }

/// χ_attr:1 over `child` — binds `attr` with a constant subscript.
OpPtr BindConst(OpPtr child, const std::string& attr) {
  OpPtr map = MakeOp(OpKind::kMap);
  map->attr = attr;
  map->scalar = MakeScalar(ScalarKind::kNumberConst);
  map->scalar->number = 1;
  map->children.push_back(std::move(child));
  return map;
}

void ExpectRejected(const Status& status, const std::string& fragment) {
  ASSERT_FALSE(status.ok()) << "expected a verifier violation";
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "diagnostic was: " << status.message();
}

translate::TranslationResult Translate(const std::string& query,
                                       bool canonical = false) {
  auto ast = xpath::ParseXPath(query);
  NATIX_CHECK(ast.ok());
  NATIX_CHECK(xpath::Analyze(ast->get()).ok());
  xpath::FoldConstants(ast->get());
  xpath::Normalize(ast->get());
  auto options = canonical ? translate::TranslatorOptions::Canonical()
                           : translate::TranslatorOptions::Improved();
  auto result = translate::Translate(**ast, options);
  NATIX_CHECK(result.ok());
  return std::move(result.value());
}

// ---------------------------------------------------------------------------
// Layer 1: logical plans
// ---------------------------------------------------------------------------

TEST(LogicalVerifierTest, RejectsUnboundContextAttribute) {
  OpPtr step = MakeOp(OpKind::kUnnestMap);
  step->attr = "c1";
  step->ctx_attr = "nowhere";
  step->children.push_back(Singleton());
  ExpectRejected(VerifyLogicalPlan(*step, {}),
                 "unbound context attribute 'nowhere'");
}

TEST(LogicalVerifierTest, OuterBindingsCoverFreeAttributes) {
  OpPtr step = MakeOp(OpKind::kUnnestMap);
  step->attr = "c1";
  step->ctx_attr = "cn";
  step->children.push_back(Singleton());
  EXPECT_TRUE(VerifyLogicalPlan(*step, {"cn"}).ok());
}

TEST(LogicalVerifierTest, RejectsUncoveredDependentBranchFreeVariable) {
  // DJoin whose dependent right branch steps from an attribute neither
  // the left branch nor the outer context binds.
  OpPtr right = MakeOp(OpKind::kUnnestMap);
  right->attr = "c2";
  right->ctx_attr = "missing";
  right->children.push_back(Singleton());

  OpPtr join = MakeOp(OpKind::kDJoin);
  join->children.push_back(BindConst(Singleton(), "a"));
  join->children.push_back(std::move(right));
  ExpectRejected(VerifyLogicalPlan(*join, {}),
                 "unbound context attribute 'missing'");
}

TEST(LogicalVerifierTest, DependentBranchSeesLeftBindings) {
  OpPtr right = MakeOp(OpKind::kUnnestMap);
  right->attr = "c2";
  right->ctx_attr = "a";  // bound by the left branch
  right->children.push_back(Singleton());

  OpPtr join = MakeOp(OpKind::kDJoin);
  join->children.push_back(BindConst(Singleton(), "a"));
  join->children.push_back(std::move(right));
  EXPECT_TRUE(VerifyLogicalPlan(*join, {}).ok());
}

TEST(LogicalVerifierTest, RejectsUnboundSubscriptAttribute) {
  OpPtr select = MakeOp(OpKind::kSelect);
  select->scalar = MakeScalar(ScalarKind::kAttrRef);
  select->scalar->name = "ghost";
  select->children.push_back(Singleton());
  ExpectRejected(VerifyLogicalPlan(*select, {}),
                 "subscript reads unbound attribute 'ghost'");
}

TEST(LogicalVerifierTest, RejectsDuplicateProjectionAttribute) {
  OpPtr project = MakeOp(OpKind::kProject);
  project->attrs = {"a", "a"};
  project->children.push_back(BindConst(Singleton(), "a"));
  ExpectRejected(VerifyLogicalPlan(*project, {}),
                 "projection list repeats attribute 'a'");
}

TEST(LogicalVerifierTest, RejectsRebindingALiveAttribute) {
  ExpectRejected(
      VerifyLogicalPlan(*BindConst(BindConst(Singleton(), "a"), "a"), {}),
      "rebinds live attribute 'a'");
}

TEST(LogicalVerifierTest, RejectsArityViolation) {
  OpPtr select = MakeOp(OpKind::kSelect);
  select->scalar = MakeScalar(ScalarKind::kBoolConst);
  ExpectRejected(VerifyLogicalPlan(*select, {}), "expects 1 child(ren)");
}

TEST(LogicalVerifierTest, RejectsMissingSubscript) {
  OpPtr select = MakeOp(OpKind::kSelect);
  select->children.push_back(Singleton());
  ExpectRejected(VerifyLogicalPlan(*select, {}), "missing scalar subscript");
}

TEST(LogicalVerifierTest, RejectsUngroupedContextForTmpCs) {
  // Tmp^cs_c requires runs of equal context values; a concatenation of
  // two branches interleaves no more, but it destroys the guarantee.
  OpPtr concat = MakeOp(OpKind::kConcat);
  concat->children.push_back(BindConst(Singleton(), "a"));
  concat->children.push_back(BindConst(Singleton(), "a"));

  OpPtr tmpcs = MakeOp(OpKind::kTmpCs);
  tmpcs->attr = "cs";
  tmpcs->ctx_attr = "a";
  tmpcs->children.push_back(std::move(concat));
  ExpectRejected(VerifyLogicalPlan(*tmpcs, {}),
                 "grouping on 'a' is not established");
}

TEST(LogicalVerifierTest, BinderEstablishesGroupingForTmpCs) {
  OpPtr tmpcs = MakeOp(OpKind::kTmpCs);
  tmpcs->attr = "cs";
  tmpcs->ctx_attr = "a";
  tmpcs->children.push_back(BindConst(Singleton(), "a"));
  EXPECT_TRUE(VerifyLogicalPlan(*tmpcs, {}).ok());
}

TEST(LogicalVerifierTest, RealTranslationsVerify) {
  for (const char* query :
       {"/a/b", "//a[b/c]", "/a/b[position() = last()]/c",
        "count(//a) + 1", "//a[@id = 'x']", "id('k')/b",
        "/a/b[2]/preceding-sibling::c"}) {
    EXPECT_TRUE(VerifyTranslation(Translate(query)).ok()) << query;
    EXPECT_TRUE(VerifyTranslation(Translate(query, true)).ok())
        << query << " (canonical)";
  }
}

TEST(LogicalVerifierTest, SimplifyPlanCheckedAcceptsRealPlans) {
  bool was_enabled = VerificationEnabled();
  SetVerificationEnabled(true);
  auto result = Translate("//a[b]/c[1]");
  auto removed = algebra::SimplifyPlanChecked(&result.plan);
  EXPECT_TRUE(removed.ok());
  SetVerificationEnabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Layer 2: physical register dataflow
// ---------------------------------------------------------------------------

PhysNodePtr Node(PhysNodeKind kind, const std::string& label) {
  auto node = std::make_unique<PhysNode>();
  node->kind = kind;
  node->label = label;
  return node;
}

PhysicalModel LeafModel(size_t register_count) {
  PhysicalModel model;
  model.root = Node(PhysNodeKind::kLeaf, "SingletonScan");
  model.register_count = register_count;
  model.context_regs = {0};
  model.result_reg = 0;
  return model;
}

TEST(PhysicalVerifierTest, RejectsOutOfBoundsRead) {
  PhysicalModel model = LeafModel(2);
  PhysNodePtr pipe = Node(PhysNodeKind::kPipeline, "UnnestMap");
  pipe->reads = {5};
  pipe->children.push_back(std::move(model.root));
  model.root = std::move(pipe);
  ExpectRejected(VerifyPhysical(model),
                 "UnnestMap: read register r5 is out of bounds");
}

TEST(PhysicalVerifierTest, RejectsReadOfNeverWrittenRegister) {
  PhysicalModel model = LeafModel(2);
  PhysNodePtr pipe = Node(PhysNodeKind::kPipeline, "DupElim");
  pipe->reads = {1};  // nothing writes r1
  pipe->children.push_back(std::move(model.root));
  model.root = std::move(pipe);
  ExpectRejected(VerifyPhysical(model),
                 "DupElim: reads register r1 before any write dominates it");
}

TEST(PhysicalVerifierTest, RejectsUndefinedResultRegister) {
  PhysicalModel model = LeafModel(2);
  model.result_reg = 1;
  ExpectRejected(VerifyPhysical(model),
                 "result register r1 is not defined at the plan root");
}

TEST(PhysicalVerifierTest, ConcatConsumersSeeOnlyTheIntersection) {
  // Branch 0 writes r1, branch 1 does not: a consumer of r1 above the
  // concat reads garbage whenever branch 1 produced the tuple.
  PhysicalModel model = LeafModel(3);
  PhysNodePtr writer = Node(PhysNodeKind::kPipeline, "Map");
  writer->writes = {1};
  writer->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr concat = Node(PhysNodeKind::kConcat, "Concat");
  concat->children.push_back(std::move(writer));
  concat->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr consumer = Node(PhysNodeKind::kPipeline, "Sort");
  consumer->reads = {1};
  consumer->children.push_back(std::move(concat));
  model.root = std::move(consumer);
  ExpectRejected(VerifyPhysical(model),
                 "Sort: reads register r1 before any write dominates it");
}

TEST(PhysicalVerifierTest, DependentRightSideSeesLeftDefinitions) {
  PhysicalModel model = LeafModel(3);
  PhysNodePtr left = Node(PhysNodeKind::kPipeline, "Map");
  left->writes = {1};
  left->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr right = Node(PhysNodeKind::kPipeline, "UnnestMap");
  right->reads = {1};  // the left side's binding
  right->writes = {2};
  right->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr join = Node(PhysNodeKind::kDependent, "DJoin");
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));
  model.root = std::move(join);
  model.result_reg = 2;
  EXPECT_TRUE(VerifyPhysical(model).ok());
}

TEST(PhysicalVerifierTest, ProbeSideDefinitionsDoNotSurviveSemiJoin) {
  // The probe (right) side of a semi-join writes r1; only the left tuple
  // survives, so a consumer above the join must not rely on r1.
  PhysicalModel model = LeafModel(3);
  PhysNodePtr probe = Node(PhysNodeKind::kPipeline, "UnnestMap");
  probe->writes = {1};
  probe->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));

  PhysNodePtr join = Node(PhysNodeKind::kDependentLeft, "SemiJoin");
  join->children.push_back(Node(PhysNodeKind::kLeaf, "SingletonScan"));
  join->children.push_back(std::move(probe));

  PhysNodePtr consumer = Node(PhysNodeKind::kPipeline, "DupElim");
  consumer->reads = {1};
  consumer->children.push_back(std::move(join));
  model.root = std::move(consumer);
  ExpectRejected(VerifyPhysical(model),
                 "DupElim: reads register r1 before any write dominates it");
}

TEST(PhysicalVerifierTest, RowSnapshotListsOnlyNeedBounds) {
  PhysicalModel model = LeafModel(2);
  PhysNodePtr sort = Node(PhysNodeKind::kPipeline, "Sort");
  sort->reads = {0};
  sort->row_regs = {0, 1};  // r1 never written: legal (null round-trips)
  sort->children.push_back(std::move(model.root));
  model.root = std::move(sort);
  EXPECT_TRUE(VerifyPhysical(model).ok());

  PhysNodePtr bad = Node(PhysNodeKind::kPipeline, "TmpCs");
  bad->row_regs = {9};
  bad->children.push_back(std::move(model.root));
  model.root = std::move(bad);
  ExpectRejected(VerifyPhysical(model),
                 "TmpCs: row register r9 is out of bounds");
}

// ---------------------------------------------------------------------------
// Layer 3: NVM subscript programs
// ---------------------------------------------------------------------------

nvm::Program MakeProgram(std::vector<Instruction> code,
                         uint16_t register_count,
                         size_t constant_count = 0) {
  nvm::Program program;
  program.code = std::move(code);
  program.register_count = register_count;
  for (size_t i = 0; i < constant_count; ++i) {
    program.constants.push_back(runtime::Value::Number(0));
  }
  return program;
}

Instruction Ins(OpCode op, uint16_t a = 0, uint16_t b = 0, uint16_t c = 0,
                uint16_t d = 0) {
  return Instruction{op, a, b, c, d};
}

TEST(NvmVerifierTest, RejectsEmptyProgram) {
  ExpectRejected(VerifyProgram(nvm::Program{}, 0, 0), "empty program");
}

TEST(NvmVerifierTest, RejectsOutOfRangeJumpTarget) {
  auto program = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJump, 0, 7),
       Ins(OpCode::kHalt, 0)},
      1, 1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "pc 1 jump: jump target 7 out of range");
}

TEST(NvmVerifierTest, RejectsReadBeforeWrite) {
  auto program =
      MakeProgram({Ins(OpCode::kAdd, 0, 0, 0), Ins(OpCode::kHalt, 0)}, 1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "pc 0 add: reads register r0 before it is written");
}

TEST(NvmVerifierTest, RejectsReadWrittenOnOnlyOnePath) {
  // r1 is written on the fall-through path only; the halt reads it.
  auto program = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 3),
       Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kHalt, 1)},
      2, 1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "pc 3 halt: reads register r1 before it is written");
}

TEST(NvmVerifierTest, AcceptsWritesOnBothPaths) {
  auto program = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kHalt, 1)},
      2, 1);
  EXPECT_TRUE(VerifyProgram(program, 0, 0).ok());
}

TEST(NvmVerifierTest, RejectsOutOfRangeFrameRegister) {
  auto program =
      MakeProgram({Ins(OpCode::kLoadConst, 5, 0), Ins(OpCode::kHalt, 0)}, 1,
                  1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "pc 0 load_const: writes register r5 outside the frame");
}

TEST(NvmVerifierTest, RejectsOutOfRangeConstantIndex) {
  auto program =
      MakeProgram({Ins(OpCode::kLoadConst, 0, 3), Ins(OpCode::kHalt, 0)}, 1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "pc 0 load_const: constant index 3 out of range");
}

TEST(NvmVerifierTest, RejectsOutOfRangeTupleRegister) {
  auto program =
      MakeProgram({Ins(OpCode::kLoadAttr, 0, 99), Ins(OpCode::kHalt, 0)}, 1);
  ExpectRejected(VerifyProgram(program, 4, 0),
                 "pc 0 load_attr: tuple register r99 outside the plan "
                 "register file");
}

TEST(NvmVerifierTest, RejectsOutOfRangeNestedPlanIndex) {
  auto program = MakeProgram(
      {Ins(OpCode::kEvalNested, 0, 2), Ins(OpCode::kHalt, 0)}, 1);
  ExpectRejected(VerifyProgram(program, 0, 2),
                 "pc 0 eval_nested: nested plan index 2 out of range");
}

TEST(NvmVerifierTest, RejectsFallingOffTheEnd) {
  auto program = MakeProgram({Ins(OpCode::kLoadConst, 0, 0)}, 1, 1);
  ExpectRejected(VerifyProgram(program, 0, 0),
                 "program can fall off the end");
}

TEST(NvmVerifierTest, RejectsInvalidComparisonCode) {
  auto program = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kCompare, 1, 0, 0, 200),
       Ins(OpCode::kHalt, 1)},
      2, 1);
  ExpectRejected(VerifyProgram(program, 0, 0), "invalid comparison code 200");
}

// ---------------------------------------------------------------------------
// End to end: compiled queries report VERIFIED
// ---------------------------------------------------------------------------

TEST(PlanVerifierE2eTest, CompiledQueriesReportVerified) {
  bool was_enabled = VerificationEnabled();
  SetVerificationEnabled(true);
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->LoadDocument("d", "<r><a id='x'><b/></a><a><b/><b/></a></r>")
          .ok());
  for (const char* query :
       {"//a/b", "/r/a[b][position() = last()]", "count(//b) > 1",
        "string(//a[@id = 'x'])"}) {
    auto compiled = (*db)->Compile(query);
    ASSERT_TRUE(compiled.ok()) << query;
    EXPECT_EQ((*compiled)->VerificationReport().rfind("VERIFIED", 0), 0u)
        << query << ": " << (*compiled)->VerificationReport();
  }
  SetVerificationEnabled(was_enabled);
}

}  // namespace
}  // namespace natix::analysis
