#include "storage/node_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/buffer_manager.h"
#include "storage/document_loader.h"
#include "storage/paged_file.h"
#include "storage/slotted_page.h"
#include "storage/stored_node.h"

namespace natix::storage {
namespace {

TEST(PagedFileTest, AllocateReadWrite) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  auto p0 = (*file)->AllocatePage();
  auto p1 = (*file)->AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ((*file)->page_count(), 2u);

  char out[kPageSize];
  char in[kPageSize] = {};
  in[0] = 'x';
  in[kPageSize - 1] = 'y';
  ASSERT_TRUE((*file)->WritePage(1, in).ok());
  ASSERT_TRUE((*file)->ReadPage(1, out).ok());
  EXPECT_EQ(out[0], 'x');
  EXPECT_EQ(out[kPageSize - 1], 'y');
}

TEST(PagedFileTest, OutOfRangeRejected) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  char buf[kPageSize];
  EXPECT_FALSE((*file)->ReadPage(0, buf).ok());
  EXPECT_FALSE((*file)->WritePage(7, buf).ok());
}

TEST(SlottedPageTest, InsertAndRead) {
  uint8_t page[kPageSize];
  SlottedPage::Init(page);
  EXPECT_EQ(SlottedPage::slot_count(page), 0u);
  uint16_t s0 = SlottedPage::Insert(page, "hello", 5);
  uint16_t s1 = SlottedPage::Insert(page, "world!", 6);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  auto [p0, l0] = SlottedPage::Read(page, s0);
  auto [p1, l1] = SlottedPage::Read(page, s1);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p0), l0), "hello");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p1), l1), "world!");
}

TEST(SlottedPageTest, FreeSpaceAccounting) {
  uint8_t page[kPageSize];
  SlottedPage::Init(page);
  size_t before = SlottedPage::FreeSpace(page);
  SlottedPage::Insert(page, "abcd", 4);
  EXPECT_EQ(SlottedPage::FreeSpace(page),
            before - 4 - SlottedPage::kSlotEntrySize);
}

TEST(SlottedPageTest, FillsUpAndReportsNoRoom) {
  uint8_t page[kPageSize];
  SlottedPage::Init(page);
  std::string rec(100, 'r');
  int inserted = 0;
  while (SlottedPage::HasRoomFor(page, rec.size())) {
    SlottedPage::Insert(page, rec.data(), static_cast<uint16_t>(rec.size()));
    ++inserted;
  }
  EXPECT_GT(inserted, 70);  // ~8KB / 104B
  EXPECT_FALSE(SlottedPage::HasRoomFor(page, rec.size()));
  // Everything still readable.
  auto [p, l] = SlottedPage::Read(page, static_cast<uint16_t>(inserted - 1));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p), l), rec);
}

TEST(SlottedPageTest, MaxRecordFitsExactly) {
  uint8_t page[kPageSize];
  SlottedPage::Init(page);
  std::string rec(SlottedPage::kMaxRecordSize, 'm');
  ASSERT_TRUE(SlottedPage::HasRoomFor(page, rec.size()));
  uint16_t slot =
      SlottedPage::Insert(page, rec.data(), static_cast<uint16_t>(rec.size()));
  auto [p, l] = SlottedPage::Read(page, slot);
  EXPECT_EQ(l, rec.size());
  EXPECT_EQ(p[0], 'm');
  EXPECT_FALSE(SlottedPage::HasRoomFor(page, 1));
}

TEST(BufferManagerTest, CachesPages) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 4);
  auto page = bm.NewPage();
  ASSERT_TRUE(page.ok());
  page->mutable_data()[0] = 42;
  PageId id = page->page_id();
  page->Release();
  auto again = bm.FixPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 42);
  EXPECT_EQ(bm.fault_count(), 0u);  // never left the pool
}

TEST(BufferManagerTest, EvictsLruAndWritesBack) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 2);
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto page = bm.NewPage();
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    page->mutable_data()[0] = static_cast<uint8_t>(i + 1);
    ids[i] = page->page_id();
  }
  EXPECT_GE(bm.eviction_count(), 1u);
  // The first page was evicted; re-reading it faults it back in with its
  // written-back contents.
  auto page = bm.FixPage(ids[0]);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->data()[0], 1);
  EXPECT_GE(bm.fault_count(), 1u);
}

TEST(BufferManagerTest, AllPinnedExhaustsPool) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 2);
  auto a = bm.NewPage();
  auto b = bm.NewPage();
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = bm.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  a->Release();
  auto d = bm.NewPage();
  EXPECT_TRUE(d.ok());
}

TEST(BufferManagerTest, CopyingHandleAddsPin) {
  auto file = PagedFile::OpenTemp();
  ASSERT_TRUE(file.ok());
  BufferManager bm(file->get(), 2);
  auto a = bm.NewPage();
  ASSERT_TRUE(a.ok());
  PageHandle copy = *a;
  a->Release();
  // Frame is still pinned by `copy`; allocating two more pages must fail
  // on the second one.
  auto b = bm.NewPage();
  ASSERT_TRUE(b.ok());
  auto c = bm.NewPage();
  EXPECT_FALSE(c.ok());
}

NodeStore::Options SmallOptions() {
  NodeStore::Options options;
  options.buffer_pages = 64;
  return options;
}

TEST(NodeStoreTest, LoadsSimpleDocument) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto info = LoadDocument(store->get(), "doc",
                           "<a x='1'><b>text</b><!--c--></a>");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // document + a + @x + b + text + comment
  EXPECT_EQ(info->node_count, 6u);

  StoredNode root(store->get(), info->root);
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(*root.kind(), StoredNodeKind::kDocument);
  StoredNode a = *root.first_child();
  EXPECT_EQ(*a.kind(), StoredNodeKind::kElement);
  EXPECT_EQ(*a.name(), "a");
  StoredNode x = *a.first_attribute();
  EXPECT_EQ(*x.kind(), StoredNodeKind::kAttribute);
  EXPECT_EQ(*x.name(), "x");
  EXPECT_EQ(*x.content(), "1");
  StoredNode b = *a.first_child();
  EXPECT_EQ(*b.name(), "b");
  EXPECT_EQ(*b.string_value(), "text");
  StoredNode comment = *b.next_sibling();
  EXPECT_EQ(*comment.kind(), StoredNodeKind::kComment);
  EXPECT_EQ(*comment.content(), "c");
  EXPECT_FALSE(comment.next_sibling()->valid());
  EXPECT_EQ(*comment.prev_sibling(), b);
  EXPECT_EQ(*b.parent(), a);
}

TEST(NodeStoreTest, StringValueOfNestedElement) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  auto info = LoadDocument(store->get(), "doc", "<a>x<b>y<c>z</c></b>w</a>");
  ASSERT_TRUE(info.ok());
  StoredNode root(store->get(), info->root);
  EXPECT_EQ(*root.string_value(), "xyzw");
  EXPECT_EQ(*(*root.first_child()).string_value(), "xyzw");
}

TEST(NodeStoreTest, OrderKeysFollowDocumentOrder) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  auto info = LoadDocument(store->get(), "doc", "<a p='v'><b/><c/></a>");
  ASSERT_TRUE(info.ok());
  StoredNode root(store->get(), info->root);
  StoredNode a = *root.first_child();
  StoredNode p = *a.first_attribute();
  StoredNode b = *a.first_child();
  StoredNode c = *b.next_sibling();
  EXPECT_LT(*root.order(), *a.order());
  EXPECT_LT(*a.order(), *p.order());
  EXPECT_LT(*p.order(), *b.order());
  EXPECT_LT(*b.order(), *c.order());
}

TEST(NodeStoreTest, LongTextUsesOverflowChain) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  std::string long_text(100000, 't');
  long_text[0] = 'H';
  long_text[99999] = 'T';
  auto info =
      LoadDocument(store->get(), "doc", "<a>" + long_text + "</a>");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  StoredNode root(store->get(), info->root);
  StoredNode a = *root.first_child();
  auto value = a.string_value();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, long_text);
}

TEST(NodeStoreTest, ManyNodesSpanManyPages) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  std::string xml = "<root>";
  for (int i = 0; i < 5000; ++i) xml += "<item id='" + std::to_string(i) + "'/>";
  xml += "</root>";
  auto info = LoadDocument(store->get(), "doc", xml);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->node_count, 1u + 1u + 2u * 5000u);
  // Walk all children and verify names + attribute values round-trip.
  StoredNode root(store->get(), info->root);
  StoredNode item = *(*root.first_child()).first_child();
  int count = 0;
  while (item.valid()) {
    EXPECT_EQ(*item.name(), "item");
    EXPECT_EQ(*(*item.first_attribute()).content(), std::to_string(count));
    ++count;
    item = *item.next_sibling();
  }
  EXPECT_EQ(count, 5000);
}

TEST(NodeStoreTest, MultipleDocumentsInOneStore) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(LoadDocument(store->get(), "one", "<a>1</a>").ok());
  ASSERT_TRUE(LoadDocument(store->get(), "two", "<b>2</b>").ok());
  auto one = (*store)->FindDocument("one");
  auto two = (*store)->FindDocument("two");
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_EQ(*StoredNode(store->get(), one->root).string_value(), "1");
  EXPECT_EQ(*StoredNode(store->get(), two->root).string_value(), "2");
  EXPECT_FALSE((*store)->FindDocument("three").ok());
}

TEST(NodeStoreTest, DuplicateDocumentNameRejected) {
  auto store = NodeStore::CreateTemp(SmallOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(LoadDocument(store->get(), "doc", "<a/>").ok());
  auto again = LoadDocument(store->get(), "doc", "<b/>");
  EXPECT_FALSE(again.ok());
}

TEST(NodeStoreTest, PersistsAcrossReopen) {
  std::string path = std::string(::testing::TempDir()) + "/natix_persist.db";
  {
    auto store = NodeStore::Create(path, SmallOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        LoadDocument(store->get(), "doc", "<a x='7'><b>persisted</b></a>")
            .ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = NodeStore::Open(path, SmallOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto info = (*store)->FindDocument("doc");
    ASSERT_TRUE(info.ok());
    StoredNode root(store->get(), info->root);
    StoredNode a = *root.first_child();
    EXPECT_EQ(*a.name(), "a");
    EXPECT_EQ(*(*a.first_attribute()).content(), "7");
    EXPECT_EQ(*a.string_value(), "persisted");
  }
  std::remove(path.c_str());
}

TEST(NodeStoreTest, WorksWithTinyBufferPool) {
  // Loading + navigating with only 8 frames exercises eviction heavily.
  NodeStore::Options options;
  options.buffer_pages = 8;
  auto store = NodeStore::CreateTemp(options);
  ASSERT_TRUE(store.ok());
  std::string xml = "<root>";
  for (int i = 0; i < 2000; ++i) {
    xml += "<item><sub>" + std::to_string(i) + "</sub></item>";
  }
  xml += "</root>";
  auto info = LoadDocument(store->get(), "doc", xml);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  StoredNode root(store->get(), info->root);
  StoredNode item = *(*root.first_child()).first_child();
  int i = 0;
  while (item.valid()) {
    EXPECT_EQ(*item.string_value(), std::to_string(i));
    ++i;
    item = *item.next_sibling();
  }
  EXPECT_EQ(i, 2000);
  EXPECT_GT((*store)->buffer_manager()->eviction_count(), 0u);
}

TEST(NodeStoreTest, OpenRejectsGarbageFiles) {
  std::string path = std::string(::testing::TempDir()) + "/garbage.db";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string junk(kPageSize, 'j');
    fwrite(junk.data(), 1, junk.size(), f);
    fclose(f);
  }
  auto store = NodeStore::Open(path, SmallOptions());
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(NodeStoreTest, OpenRejectsTruncatedFiles) {
  std::string path = std::string(::testing::TempDir()) + "/truncated.db";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string partial(kPageSize / 2, 'x');  // not a page multiple
    fwrite(partial.data(), 1, partial.size(), f);
    fclose(f);
  }
  auto store = NodeStore::Open(path, SmallOptions());
  EXPECT_FALSE(store.ok());
  std::remove(path.c_str());
}

TEST(NodeStoreTest, OpenRejectsEmptyFiles) {
  std::string path = std::string(::testing::TempDir()) + "/empty.db";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fclose(f);
  }
  auto store = NodeStore::Open(path, SmallOptions());
  EXPECT_FALSE(store.ok());
  std::remove(path.c_str());
}

TEST(NodeIdTest, PackUnpackRoundTrips) {
  NodeId id{12345, 678};
  EXPECT_EQ(NodeId::Unpack(id.Pack()), id);
  EXPECT_FALSE(kInvalidNodeId.valid());
  EXPECT_TRUE(id.valid());
}

}  // namespace
}  // namespace natix::storage
