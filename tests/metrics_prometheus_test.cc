// Satellite: pins the LatencyHistogram::Percentile estimator and its
// agreement with Prometheus's histogram_quantile() over the exposition
// rendering. The two must compute (near-)identical quantiles or
// dashboards and /statusz disagree about the same traffic.
//
// The exposition tests also pin the empty-boundary-bucket rule: every
// populated bucket is preceded by the `le` boundary just below it, so
// scrape-side interpolation spans the true bucket and not the gap back
// to the previous populated one.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace natix::obs {
namespace {

#if !defined(NATIX_OBS_DISABLED)

/// Reimplements promql histogram_quantile() over the exact bucket list
/// the renderer emits: (le, cumulative) pairs including the empty
/// boundary lines, linear interpolation between adjacent boundaries.
/// Kept independent of the production code on purpose — it is the
/// scrape-side contract, not a refactoring mirror.
double PromQuantile(const LatencyHistogram& h, double q) {
  struct Boundary {
    uint64_t le;
    uint64_t cumulative;
  };
  std::vector<Boundary> boundaries;
  uint64_t cumulative = 0;
  int last_emitted = -1;
  for (const auto& [bucket, count] : h.NonZeroBuckets()) {
    if (bucket > 0 && last_emitted != bucket - 1) {
      boundaries.push_back(
          {LatencyHistogram::BucketUpperBound(bucket - 1), cumulative});
    }
    cumulative += count;
    last_emitted = bucket;
    if (bucket >= LatencyHistogram::kBuckets - 1) continue;
    boundaries.push_back(
        {LatencyHistogram::BucketUpperBound(bucket), cumulative});
  }
  if (cumulative == 0) return 0;
  const double rank = q * static_cast<double>(cumulative);
  uint64_t previous_le = 0;
  uint64_t previous_cumulative = 0;
  for (const Boundary& boundary : boundaries) {
    if (static_cast<double>(boundary.cumulative) >= rank) {
      const double in_bucket =
          static_cast<double>(boundary.cumulative - previous_cumulative);
      const double fraction =
          in_bucket == 0
              ? 0
              : (rank - static_cast<double>(previous_cumulative)) /
                    in_bucket;
      return static_cast<double>(previous_le) +
             static_cast<double>(boundary.le - previous_le) * fraction;
    }
    previous_le = boundary.le;
    previous_cumulative = boundary.cumulative;
  }
  // Rank landed in +Inf: promql returns the highest finite boundary.
  return static_cast<double>(previous_le);
}

TEST(LatencyHistogramTest, PercentileInterpolatesInsideBucket) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 1024; ++v) h.Record(v);
  ASSERT_EQ(h.count(), 1024u);
  ASSERT_EQ(h.sum(), 1024u * 1023u / 2);
  ASSERT_EQ(h.max(), 1023u);

  // Continuous rank 512 lands exactly on the upper edge of bucket 9
  // ([256, 511], cumulative 512): fraction 1.0, no bucket-edge collapse.
  EXPECT_EQ(h.Percentile(0.50), 511u);
  // Rank 1013.76 in bucket 10 ([512, 1023], 512 wide): 512 + 0.98*511.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 1012.0, 1.0);
  // q = 1 reaches the top of the last bucket, clamped to observed max.
  EXPECT_EQ(h.Percentile(1.0), 1023u);
}

TEST(LatencyHistogramTest, PercentileOfEmptyAndSingleton) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);
  h.Record(42);
  // One sample: every quantile is that sample (clamped to max).
  EXPECT_EQ(h.Percentile(0.5), 42u);
  EXPECT_EQ(h.Percentile(0.99), 42u);
}

TEST(LatencyHistogramTest, NativeAgreesWithPromQuantileUniform) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 1024; ++v) h.Record(v);
  for (double q : {0.50, 0.90, 0.99}) {
    // The renderer's `le` is the bucket's inclusive upper value, so the
    // scrape-side lower edge sits one below the native lower bound:
    // systematic disagreement is bounded by ~1 plus truncation.
    EXPECT_NEAR(static_cast<double>(h.Percentile(q)), PromQuantile(h, q),
                2.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, NativeAgreesWithPromQuantileSkewed) {
  // A gap-heavy shape: a fast mode, a slow mode three decades away, and
  // one outlier. Without the empty boundary lines, promql would stretch
  // the p99 interpolation from le=127 up to le=8191.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(5000);
  h.Record(1000000);
  for (double q : {0.50, 0.90, 0.99}) {
    const double native = static_cast<double>(h.Percentile(q));
    const double prom = PromQuantile(h, q);
    EXPECT_NEAR(native, prom, 2.0) << "q=" << q;
  }
}

TEST(PrometheusRenderTest, HistogramExpositionExactCounts) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(3);
  h.Record(1000);
  std::string out;
  AppendPrometheusHistogram(&out, "t", "test histogram", h);

  EXPECT_NE(out.find("# HELP t test histogram\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t histogram\n"), std::string::npos);
  // Populated buckets, cumulative.
  EXPECT_NE(out.find("t_bucket{le=\"0\"} 1\n"), std::string::npos) << out;
  EXPECT_NE(out.find("t_bucket{le=\"1\"} 2\n"), std::string::npos) << out;
  EXPECT_NE(out.find("t_bucket{le=\"3\"} 3\n"), std::string::npos) << out;
  // The empty boundary just below the 1000-bucket ([512, 1023]): still
  // cumulative 3, giving histogram_quantile its true lower edge.
  EXPECT_NE(out.find("t_bucket{le=\"511\"} 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("t_bucket{le=\"1023\"} 4\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("t_bucket{le=\"+Inf\"} 4\n"), std::string::npos)
      << out;
  // Exact, not bucket-approximated.
  EXPECT_NE(out.find("t_sum 1004\n"), std::string::npos) << out;
  EXPECT_NE(out.find("t_count 4\n"), std::string::npos) << out;
  // No boundary for buckets whose predecessor is populated.
  EXPECT_EQ(out.find("le=\"7\""), std::string::npos) << out;
}

TEST(PrometheusRenderTest, TopBucketFoldsIntoInf) {
  LatencyHistogram h;
  h.Record(~uint64_t{0});  // bucket 63: no finite upper bound
  std::string out;
  AppendPrometheusHistogram(&out, "t", "h", h);
  // Only the boundary below it and +Inf carry the count.
  EXPECT_NE(out.find("t_bucket{le=\"+Inf\"} 1\n"), std::string::npos)
      << out;
  EXPECT_EQ(out.find("le=\"18446744073709551615\""), std::string::npos)
      << out;
}

TEST(PrometheusRenderTest, CounterAndGaugeLines) {
  std::string out;
  AppendPrometheusCounter(&out, "natix_widgets_total", "widgets", 7);
  AppendPrometheusGauge(&out, "natix_depth", "depth", 3);
  EXPECT_NE(out.find("# TYPE natix_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("natix_widgets_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE natix_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("natix_depth 3\n"), std::string::npos);
}

TEST(PrometheusRenderTest, RegistryRenderCoversContractInstruments) {
  const std::string out = RenderPrometheus(MetricsRegistry::Global());
  for (const char* needle :
       {"# TYPE natix_compile_ns histogram",
        "# TYPE natix_exec_ns histogram",
        "# TYPE natix_queue_wait_ns histogram",
        "# TYPE natix_queries_executed_total counter",
        "# TYPE natix_plan_cache_hits_total counter",
        "# TYPE natix_nvm_insns_retired_total counter",
        "# TYPE natix_early_exits_total counter",
        "# TYPE natix_deadline_exceeded_total counter",
        "# TYPE natix_requests_rejected_total counter",
        "# TYPE natix_queue_depth gauge",
        "# TYPE natix_requests_in_flight gauge"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

#else  // NATIX_OBS_DISABLED

TEST(PrometheusRenderTest, DisabledConfigServesStub) {
  EXPECT_EQ(RenderPrometheus(MetricsRegistry::Global()),
            "{\"disabled\":true}");
  LatencyHistogram h;
  h.Record(5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  std::string out;
  AppendPrometheusHistogram(&out, "t", "h", h);
  EXPECT_TRUE(out.empty());
}

#endif  // NATIX_OBS_DISABLED

}  // namespace
}  // namespace natix::obs
