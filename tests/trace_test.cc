// Span-level tests for the pipeline tracer, the process-wide metrics
// registry and the slow-query log (src/obs/trace.h, src/obs/metrics.h):
// the compile phases of Sec. 5.1 must appear as properly nested spans
// for the paper's query shapes, the registry must survive concurrent
// Executes, and the slow-query log must capture and bound its entries.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "gen/xdoc_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace natix {
namespace {

// Span assertions are meaningless when tracing is compiled out; the
// OFF-configuration no-op surface is covered in option_matrix_test.cc.
#if defined(NATIX_OBS_DISABLED)
#define NATIX_REQUIRE_OBS() \
  GTEST_SKIP() << "observability compiled out (NATIX_OBS=OFF)"
#else
#define NATIX_REQUIRE_OBS() (void)0
#endif

constexpr char kXdoc[] =
    "<xdoc id=\"d0\"><a id=\"n1\"><b id=\"n2\"/><c id=\"n3\"/></a>"
    "<a id=\"n4\"><b id=\"n5\"><c id=\"n6\"/></b></a></xdoc>";

constexpr char kDblp[] =
    "<dblp><article key=\"a1\"><author>A</author><title>T1</title>"
    "</article><article key=\"a2\"><author>B</author><author>C</author>"
    "<title>T2</title></article><inproceedings key=\"p1\">"
    "<title>T3</title></inproceedings></dblp>";

struct Fixture {
  std::unique_ptr<Database> db;
  storage::NodeId root;
};

Fixture Load(const std::string& xml) {
  Fixture f;
  auto db = Database::CreateTemp();
  EXPECT_TRUE(db.ok());
  f.db = std::move(db.value());
  auto info = f.db->LoadDocument("doc", xml);
  EXPECT_TRUE(info.ok());
  f.root = info->root;
  return f;
}

/// Compiles and evaluates `query` under an active trace and returns the
/// collected spans.
std::vector<obs::TraceEvent> TraceQuery(const std::string& xml,
                                        const std::string& query) {
  Fixture f = Load(xml);
  Database::StartTrace();
  auto compiled = f.db->Compile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto nodes = (*compiled)->EvaluateNodes(f.root);
  EXPECT_TRUE(nodes.ok());
  return obs::Tracer::Global().Stop();
}

const obs::TraceEvent* Find(const std::vector<obs::TraceEvent>& events,
                            const std::string& name) {
  for (const obs::TraceEvent& e : events) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

/// True when `inner` lies within `outer` on the same thread ([start,
/// start+dur] containment — how Perfetto infers nesting).
bool Within(const obs::TraceEvent& inner, const obs::TraceEvent& outer) {
  return inner.tid == outer.tid && inner.start_ns >= outer.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

/// The five query shapes of the paper's figures (Fig. 6-10 families).
struct Shape {
  const char* doc;
  const char* query;
  // Whether the API must still sort the result: false when property
  // inference proves the result stream document-ordered already.
  bool sorts;
};
const Shape kPaperShapes[] = {
    {kXdoc, "/child::xdoc/desc::*/anc::*/desc::*/@id", true},
    {kXdoc, "/child::xdoc/desc::*/pre-sib::*/fol::*/@id", true},
    {kXdoc, "/child::xdoc/desc::*/anc::*/anc::*/@id", true},
    {kXdoc, "/child::xdoc/child::*/par::*/desc::*/@id", true},
    {kDblp, "/dblp/article[position() = last()]/title", false},
};

TEST(TraceTest, CompilePhasesNestForPaperQueryShapes) {
  NATIX_REQUIRE_OBS();
  for (const Shape& shape : kPaperShapes) {
    SCOPED_TRACE(shape.query);
    std::vector<obs::TraceEvent> events = TraceQuery(shape.doc, shape.query);

    const obs::TraceEvent* compile = Find(events, "compile");
    ASSERT_NE(compile, nullptr);
    EXPECT_EQ(compile->detail, shape.query);

    // All seven pipeline phases, each nested inside the compile span.
    const char* phases[] = {"compile/parse",     "compile/sema",
                            "compile/fold",      "compile/normalize",
                            "compile/translate", "compile/verify",
                            "compile/codegen"};
    for (const char* phase : phases) {
      SCOPED_TRACE(phase);
      const obs::TraceEvent* span = Find(events, phase);
      ASSERT_NE(span, nullptr);
      EXPECT_TRUE(Within(*span, *compile));
      EXPECT_GT(span->depth, compile->depth);
    }

    // Phase order within the pipeline (by start time). Verify is
    // excluded: its spans float with the build's verification mode
    // (inside translate in debug, inside codegen when layers are
    // skipped).
    const char* ordered[] = {"compile/parse", "compile/sema",
                             "compile/fold", "compile/normalize",
                             "compile/translate", "compile/codegen"};
    for (size_t i = 0; i + 1 < std::size(ordered); ++i) {
      const obs::TraceEvent* a = Find(events, ordered[i]);
      const obs::TraceEvent* b = Find(events, ordered[i + 1]);
      EXPECT_LE(a->start_ns, b->start_ns)
          << ordered[i] << " must start before " << ordered[i + 1];
    }

    // The plan-simplification rewrite runs inside translation.
    const obs::TraceEvent* rewrite = Find(events, "compile/rewrite");
    ASSERT_NE(rewrite, nullptr);
    EXPECT_TRUE(Within(*rewrite, *Find(events, "compile/translate")));

    // Execution: open / first-next / drain / close inside exec/nodes.
    const obs::TraceEvent* exec = Find(events, "exec/nodes");
    ASSERT_NE(exec, nullptr);
    for (const char* span_name :
         {"exec/open", "exec/first-next", "exec/drain", "exec/close"}) {
      SCOPED_TRACE(span_name);
      const obs::TraceEvent* span = Find(events, span_name);
      ASSERT_NE(span, nullptr);
      EXPECT_TRUE(Within(*span, *exec));
    }
    if (shape.sorts) {
      EXPECT_NE(Find(events, "exec/sort"), nullptr);
    } else {
      EXPECT_EQ(Find(events, "exec/sort"), nullptr)
          << "provably ordered result must skip the final sort";
    }
  }
}

TEST(TraceTest, InactiveTracerRecordsNothing) {
  NATIX_REQUIRE_OBS();
  (void)obs::Tracer::Global().Stop();  // ensure stopped
  Fixture f = Load(kXdoc);
  auto compiled = f.db->Compile("/child::xdoc/desc::*/@id");
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE((*compiled)->EvaluateNodes(f.root).ok());
  EXPECT_TRUE(obs::Tracer::Global().Stop().empty());
}

TEST(TraceTest, StopJsonIsChromeTraceShaped) {
  NATIX_REQUIRE_OBS();
  Fixture f = Load(kXdoc);
  Database::StartTrace();
  ASSERT_TRUE(f.db->QueryNodes("doc", "//a[@id=\"n1\"]").ok());
  std::string json = Database::StopTrace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compile/parse\""), std::string::npos);
  // The query text rides along as args.detail, quotes escaped.
  EXPECT_NE(json.find("//a[@id=\\\"n1\\\"]"), std::string::npos);
}

TEST(TraceTest, ConcurrentExecutesUnderTracingAndRegistry) {
  NATIX_REQUIRE_OBS();
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  gen::XDocOptions gen_options;
  gen_options.max_elements = 2000;
  gen_options.fanout = 6;
  gen_options.depth = 5;
  auto info = (*db)->LoadDocument("doc", gen::GenerateXDoc(gen_options));
  ASSERT_TRUE(info.ok());

  obs::MetricsRegistry::Global().Reset();
  Database::StartTrace();
  const char* workloads[] = {
      "count(//n)",
      "count(//*[@id])",
      "count(//n/parent::*)",
      "sum(/xdoc/n/@id)",
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its compiled plans; the tracer and the
      // registry are the shared state under test.
      for (int round = 0; round < 5; ++round) {
        size_t i = static_cast<size_t>(t + round) % std::size(workloads);
        auto query = (*db)->Compile(workloads[i]);
        if (!query.ok() || !(*query)->EvaluateValue(info->root).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<obs::TraceEvent> events = obs::Tracer::Global().Stop();

  EXPECT_EQ(failures.load(), 0);
  const obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  EXPECT_EQ(metrics.queries_executed.value(), 40u);
  // The plan cache dedupes the 40 Compile calls down to one compile per
  // unique workload, plus however many threads raced past the same miss.
  EXPECT_GE(metrics.queries_compiled.value(), std::size(workloads));
  EXPECT_LE(metrics.queries_compiled.value(), 40u);
  EXPECT_EQ(metrics.plan_cache_hits.value() +
                metrics.plan_cache_misses.value(),
            40u);
  EXPECT_EQ(metrics.plan_cache_misses.value(),
            metrics.queries_compiled.value());
  EXPECT_EQ(metrics.exec_ns.count(), 40u);

  // Every thread's spans are present and self-consistent: exactly one
  // compile span per actual (uncached) compile.
  size_t compiles = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::string("compile") == e.name) ++compiles;
    EXPECT_GT(e.tid, 0u);
  }
  EXPECT_EQ(compiles, metrics.queries_compiled.value());
}

TEST(MetricsTest, HistogramPercentilesAreBucketAccurate) {
  NATIX_REQUIRE_OBS();
  obs::LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Log buckets bound the error by a factor of two around the rank.
  uint64_t p50 = h.Percentile(0.50);
  EXPECT_GE(p50, 250u);
  EXPECT_LE(p50, 1000u);
  EXPECT_LE(h.Percentile(0.50), h.Percentile(0.90));
  EXPECT_LE(h.Percentile(0.90), h.Percentile(0.99));
  EXPECT_LE(h.Percentile(0.99), h.max());

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(0.50), 0u);  // bucket 0 holds the value 0
}

TEST(MetricsTest, RegistrySnapshotAfterQueries) {
  NATIX_REQUIRE_OBS();
  obs::MetricsRegistry::Global().Reset();
  Fixture f = Load(kXdoc);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.db->QueryNodes("doc", "/xdoc/a/b").ok());
  }
  ASSERT_FALSE(f.db->QueryNodes("doc", "/xdoc/(((").ok());

  const obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  // One real compile: the other nine QueryNodes hit the plan cache. The
  // malformed query misses the cache, then fails in the parser.
  EXPECT_EQ(metrics.queries_compiled.value(), 1u);
  EXPECT_EQ(metrics.plan_cache_hits.value(), 9u);
  EXPECT_EQ(metrics.plan_cache_misses.value(), 2u);
  EXPECT_EQ(metrics.queries_executed.value(), 10u);
  EXPECT_EQ(metrics.compile_errors.value(), 1u);
  EXPECT_EQ(metrics.exec_ns.count(), 10u);
  EXPECT_GT(metrics.exec_ns.Percentile(0.50), 0u);
  EXPECT_GT(metrics.compile_ns.Percentile(0.99), 0u);

  std::string json = metrics.SnapshotJson();
  for (const char* key :
       {"\"compile_ns\"", "\"exec_ns\"", "\"pages_per_query\"",
        "\"tuples_per_query\"", "\"queries_compiled\":1",
        "\"queries_executed\":10", "\"compile_errors\":1",
        "\"plan_cache_hits\":9", "\"plan_cache_misses\":2"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  std::string text = metrics.RenderText();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(SlowQueryLogTest, CapturesQueryTextAndAnalyzeTree) {
  NATIX_REQUIRE_OBS();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Reset();
  metrics.slow_log().set_threshold_ns(0);  // log everything

  Fixture f = Load(kDblp);
  const std::string query = "/dblp/article[position() = last()]/title";
  auto compiled = f.db->Compile(
      query, translate::TranslatorOptions::Improved(),
      /*collect_stats=*/true);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE((*compiled)->EvaluateNodes(f.root).ok());

  std::vector<obs::SlowQueryEntry> entries = metrics.slow_log().Dump();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].xpath, query);
  EXPECT_EQ(entries[0].sequence, 1u);
  EXPECT_NE(entries[0].analyze.find("UnnestMap"), std::string::npos);
  EXPECT_EQ(metrics.slow_queries.value(), 1u);

  std::string text = metrics.slow_log().RenderText();
  EXPECT_NE(text.find(query), std::string::npos);
  EXPECT_NE(text.find("UnnestMap"), std::string::npos);

  metrics.slow_log().set_threshold_ns(obs::SlowQueryLog::kDisabled);
}

TEST(SlowQueryLogTest, RingBufferBoundsRetention) {
  NATIX_REQUIRE_OBS();
  obs::SlowQueryLog log;
  log.set_threshold_ns(0);
  const size_t admitted = obs::SlowQueryLog::kDefaultCapacity + 10;
  for (size_t i = 0; i < admitted; ++i) {
    obs::SlowQueryEntry entry;
    entry.xpath = "/q" + std::to_string(i);
    entry.exec_ns = i;
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total_logged(), admitted);
  std::vector<obs::SlowQueryEntry> entries = log.Dump();
  ASSERT_EQ(entries.size(), obs::SlowQueryLog::kDefaultCapacity);
  // Oldest entries were evicted; retained entries stay in admission order.
  EXPECT_EQ(entries.front().xpath, "/q10");
  EXPECT_EQ(entries.back().xpath, "/q" + std::to_string(admitted - 1));
  EXPECT_EQ(entries.front().sequence, 11u);
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  NATIX_REQUIRE_OBS();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Reset();
  // Nothing on this document takes an hour.
  metrics.slow_log().set_threshold_ns(uint64_t{3600} * 1000000000);
  Fixture f = Load(kXdoc);
  ASSERT_TRUE(f.db->QueryNodes("doc", "/xdoc/a").ok());
  EXPECT_EQ(metrics.slow_log().total_logged(), 0u);
  EXPECT_EQ(metrics.slow_queries.value(), 0u);
  metrics.slow_log().set_threshold_ns(obs::SlowQueryLog::kDisabled);
}

TEST(TraceJsonTest, EscapesDetailPayloads) {
  std::vector<obs::TraceEvent> events(1);
  events[0].name = "compile";
  events[0].detail = "//a[@id=\"x\\y\"]\nnext";
  events[0].start_ns = 1500;
  events[0].dur_ns = 2500;
  events[0].tid = 3;
  std::string json = obs::TraceEventsToJson(events);
  EXPECT_NE(json.find("\\\"x\\\\y\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
}

}  // namespace
}  // namespace natix
