#include "gen/auction_generator.h"
#include "gen/dblp_generator.h"
#include "gen/xdoc_generator.h"

#include <gtest/gtest.h>

#include "api/database.h"

namespace natix::gen {
namespace {

TEST(XDocGeneratorTest, CompleteTreeCounts) {
  // fanout 2, depth 2 (levels below the root): 1 + 2 + 4 = 7 elements.
  XDocOptions options;
  options.max_elements = 100;
  options.fanout = 2;
  options.depth = 2;
  EXPECT_EQ(XDocElementCount(options), 7u);
}

TEST(XDocGeneratorTest, ElementBudgetCapsGeneration) {
  XDocOptions options;
  options.max_elements = 5;
  options.fanout = 10;
  options.depth = 10;
  EXPECT_EQ(XDocElementCount(options), 5u);
}

TEST(XDocGeneratorTest, DocumentParsesAndMatchesPaperShape) {
  XDocOptions options;
  options.max_elements = 2000;
  options.fanout = 6;
  options.depth = 5;
  std::string xml = GenerateXDoc(options);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("x", xml).ok());

  // Root is named xdoc.
  auto name = (*db)->QueryString("x", "name(/*)");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "xdoc");

  // Every element has an id attribute; ids are consecutive from 0.
  auto elements = (*db)->QueryNumber("x", "count(//*)");
  auto with_id = (*db)->QueryNumber("x", "count(//*[@id])");
  ASSERT_TRUE(elements.ok() && with_id.ok());
  EXPECT_EQ(*elements, *with_id);
  EXPECT_EQ(*elements, 2000);
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(//*[@id='0'])"), 1);
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(//*[@id='1999'])"), 1);
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(//*[@id='2000'])"), 0);

  // Depth never exceeds the configured limit of 5 levels below the root;
  // the budget runs out while filling level 5 breadth-first.
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(/xdoc/*/*/*/*/*/*)"), 0);
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(/xdoc/*/*/*/*/*)"),
            2000 - 1555);
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(/xdoc/*/*/*/*)"), 1296);

  // Breadth-first fill: the root has exactly `fanout` children.
  EXPECT_EQ(*(*db)->QueryNumber("x", "count(/xdoc/*)"), 6);
}

TEST(XDocGeneratorTest, PaperDocumentSizes) {
  // The paper cites (fanout 6, depth 4) for 2000-8000 elements, but a
  // complete 6-ary tree of depth 4 holds only 1+6+36+216+1296 = 1555
  // elements, so its depth must count one level differently; the bench
  // harness uses depth 5 so the element budget binds and the documents
  // have exactly the sizes on the paper's x-axes (see EXPERIMENTS.md).
  XDocOptions small;
  small.fanout = 6;
  small.depth = 4;
  small.max_elements = 8000;
  EXPECT_EQ(XDocElementCount(small), 1555u);

  XDocOptions small5;
  small5.fanout = 6;
  small5.depth = 5;
  small5.max_elements = 8000;
  EXPECT_EQ(XDocElementCount(small5), 8000u);

  XDocOptions large;
  large.fanout = 10;
  large.depth = 5;
  large.max_elements = 80000;
  EXPECT_EQ(XDocElementCount(large), 80000u);
}

TEST(DblpGeneratorTest, ContainsQueryableWorkload) {
  DblpOptions options;
  options.publications = 500;
  std::string xml = GenerateDblp(options);

  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("dblp", xml).ok());

  EXPECT_EQ(*(*db)->QueryNumber("dblp", "count(/dblp/*)"), 500);
  EXPECT_GT(*(*db)->QueryNumber("dblp", "count(/dblp/article)"), 100);
  EXPECT_GT(*(*db)->QueryNumber("dblp", "count(/dblp/inproceedings)"), 100);
  // Every publication has key, title, year and at least one author
  // (books/phdtheses included).
  EXPECT_EQ(*(*db)->QueryNumber("dblp", "count(/dblp/*[@key])"), 500);
  EXPECT_EQ(*(*db)->QueryNumber("dblp", "count(/dblp/*[title])"), 500);
  EXPECT_EQ(*(*db)->QueryNumber("dblp", "count(/dblp/*[year])"), 500);
  EXPECT_EQ(*(*db)->QueryNumber("dblp", "count(/dblp/*[author])"), 500);

  // The specific records Fig. 10's queries look for are present.
  EXPECT_EQ(*(*db)->QueryNumber(
                "dblp",
                "count(/dblp/inproceedings"
                "[@key='conf/er/LockemannM91'])"),
            1);
  EXPECT_GT(*(*db)->QueryNumber(
                "dblp", "count(/dblp/*[author='Guido Moerkotte'])"),
            0);
  EXPECT_GT(*(*db)->QueryNumber("dblp", "count(/dblp/*[year='1991'])"), 0);
  EXPECT_GT(*(*db)->QueryNumber("dblp",
                                "count(/dblp/article[count(author)=4])"),
            0);
}

TEST(DblpGeneratorTest, DeterministicForSeed) {
  DblpOptions options;
  options.publications = 50;
  EXPECT_EQ(GenerateDblp(options), GenerateDblp(options));
  DblpOptions other = options;
  other.seed = 7;
  EXPECT_NE(GenerateDblp(options), GenerateDblp(other));
}

TEST(AuctionGeneratorTest, CrossReferencesResolve) {
  AuctionOptions options;
  options.people = 40;
  options.items = 60;
  options.auctions = 50;
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->LoadDocument("site", GenerateAuctionSite(options)).ok());

  EXPECT_EQ(*(*db)->QueryNumber("site", "count(//person)"), 40);
  EXPECT_EQ(*(*db)->QueryNumber("site", "count(//item)"), 60);
  EXPECT_EQ(*(*db)->QueryNumber("site", "count(//auction)"), 50);
  // Every auction's item and seller reference resolves through id().
  EXPECT_EQ(*(*db)->QueryNumber("site",
                                "count(//auction[id(@item)/self::item])"),
            50);
  EXPECT_EQ(
      *(*db)->QueryNumber("site",
                          "count(//auction[id(@seller)/self::person])"),
      50);
  // Every bid's person resolves.
  auto bids = (*db)->QueryNumber("site", "count(//bid)");
  auto resolved = (*db)->QueryNumber(
      "site", "count(//bid[id(@person)/self::person])");
  ASSERT_TRUE(bids.ok() && resolved.ok());
  EXPECT_EQ(*bids, *resolved);
  // Bid amounts ascend within an auction: the last bid is the maximum.
  EXPECT_EQ(*(*db)->QueryNumber(
                "site",
                "count(//auction[bid][bid[last()]/amount < "
                "bid/amount])"),
            0);
}

TEST(AuctionGeneratorTest, Deterministic) {
  AuctionOptions options;
  options.people = 10;
  options.items = 10;
  options.auctions = 10;
  EXPECT_EQ(GenerateAuctionSite(options), GenerateAuctionSite(options));
}

}  // namespace
}  // namespace natix::gen
