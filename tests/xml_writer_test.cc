#include "xml/writer.h"

#include <gtest/gtest.h>

#include "api/database.h"

namespace natix::xml {
namespace {

struct Fixture {
  explicit Fixture(const std::string& xml) {
    auto database = Database::CreateTemp();
    NATIX_CHECK(database.ok());
    db = std::move(database.value());
    auto info = db->LoadDocument("doc", xml);
    NATIX_CHECK(info.ok());
    root = storage::StoredNode(db->store(), info->root);
  }
  std::unique_ptr<Database> db;
  storage::StoredNode root;
};

TEST(XmlWriterTest, RoundTripsSimpleDocuments) {
  const char* docs[] = {
      "<a/>",
      "<a><b/><c/></a>",
      "<a x=\"1\" y=\"2\"><b>text</b></a>",
      "<a><!--comment--><?pi data?></a>",
      "<r><a>one</a>two<b/>three</r>",
  };
  for (const char* doc : docs) {
    Fixture f(doc);
    auto out = OuterXml(f.root);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, doc);
  }
}

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  Fixture f("<a x=\"&quot;&amp;&lt;\">&lt;tag&gt; &amp; text</a>");
  auto out = OuterXml(f.root);
  ASSERT_TRUE(out.ok());
  // Reparse the output: the data model must be identical.
  Fixture again(*out);
  EXPECT_EQ(*again.root.string_value(), *f.root.string_value());
  auto attr = *(*f.root.first_child()).first_attribute();
  auto attr2 = *(*again.root.first_child()).first_attribute();
  EXPECT_EQ(*attr.content(), *attr2.content());
}

TEST(XmlWriterTest, SerializesQueryResults) {
  Fixture f("<books><book id=\"1\"><t>A</t></book>"
            "<book id=\"2\"><t>B</t></book></books>");
  auto nodes = f.db->QueryNodes("doc", "//book[@id='2']");
  ASSERT_TRUE(nodes.ok());
  ASSERT_EQ(nodes->size(), 1u);
  auto out = OuterXml(nodes->front());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<book id=\"2\"><t>B</t></book>");
}

TEST(XmlWriterTest, AttributeNodeSerialization) {
  Fixture f("<a x=\"v&quot;\"/>");
  auto attrs = f.db->QueryNodes("doc", "//@x");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 1u);
  auto out = OuterXml(attrs->front());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "x=\"v&quot;\"");
}

TEST(XmlWriterTest, InnerXmlOmitsTheTag) {
  Fixture f("<a><b>x</b><c/></a>");
  auto a = *f.root.first_child();
  auto inner = InnerXml(a);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(*inner, "<b>x</b><c/>");
  auto outer = OuterXml(a);
  EXPECT_EQ(*outer, "<a><b>x</b><c/></a>");
}

TEST(XmlWriterTest, LongContentThroughOverflowChain) {
  std::string long_text(50000, 'z');
  Fixture f("<a>" + long_text + "</a>");
  auto out = OuterXml(f.root);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a>" + long_text + "</a>");
}

}  // namespace
}  // namespace natix::xml
