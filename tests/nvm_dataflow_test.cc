// Tests for the NVM dataflow framework and the analysis-justified
// bytecode optimizer: hand-built CFGs pin the liveness / reaching-defs /
// constant-propagation fixpoints, each optimization pass is exercised on
// a program shaped for it (with the transformed program re-executed on
// the real Vm), and a deliberately broken pass must abort optimization —
// and compilation — through the per-pass Layer-3 re-verification.

#include "analysis/nvm_dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "analysis/nvm_optimizer.h"
#include "analysis/plan_verifier.h"
#include "api/database.h"
#include "nvm/vm.h"
#include "runtime/register_file.h"

namespace natix::analysis {
namespace {

using nvm::Instruction;
using nvm::OpCode;
using nvm::Program;
using runtime::Value;

Instruction Ins(OpCode op, uint16_t a = 0, uint16_t b = 0, uint16_t c = 0,
                uint16_t d = 0) {
  return Instruction{op, a, b, c, d};
}

Program MakeProgram(std::vector<Instruction> code, uint16_t register_count,
                    std::vector<Value> constants = {}) {
  Program program;
  program.code = std::move(code);
  program.register_count = register_count;
  program.constants = std::move(constants);
  return program;
}

StatusOr<Value> RunProgram(
    const Program& program, std::vector<Value> tuple = {},
    std::unordered_map<std::string, Value> variables = {}) {
  nvm::Vm vm(&program);
  runtime::RegisterFile registers(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) registers[i] = tuple[i];
  runtime::EvalContext ctx;
  return vm.Run(registers, ctx, variables,
                [](size_t) -> StatusOr<Value> {
                  return Status::Internal("no nested plans in this test");
                });
}

/// Optimizes in place, asserting success, and returns the rewrite log.
algebra::RewriteLog Optimize(Program* program,
                             size_t tuple_register_count = 0) {
  algebra::RewriteLog log;
  Status st = OptimizeNvmProgram(program, "test", tuple_register_count,
                                 /*nested_count=*/0, &log);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return log;
}

bool LogHasRule(const algebra::RewriteLog& log, const std::string& rule) {
  return std::any_of(log.begin(), log.end(),
                     [&](const algebra::RewriteEvent& e) {
                       return e.rule == rule;
                     });
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

TEST(NvmCfgTest, BlocksLabelsAndReachability) {
  // if (c0) r1 = c1 else r1 = c0 — a diamond of four blocks.
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kHalt, 1)},
      2, {Value::Boolean(true), Value::Number(7)});
  NvmCfg cfg = NvmCfg::Build(p);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  EXPECT_EQ(cfg.block_of[0], cfg.block_of[1]);  // 0-1 share a block
  EXPECT_NE(cfg.block_of[1], cfg.block_of[2]);
  EXPECT_EQ(cfg.LabelAt(0), "L0");
  EXPECT_EQ(cfg.LabelAt(1), "");  // not a leader
  EXPECT_EQ(cfg.LabelAt(4), "L2");
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    EXPECT_TRUE(cfg.Reachable(pc)) << "pc " << pc;
  }
  // The entry block branches to both arms; both arms flow into the exit.
  const NvmCfg::Block& entry = cfg.blocks[cfg.block_of[0]];
  ASSERT_EQ(entry.succs.size(), 2u);
  const NvmCfg::Block& exit = cfg.blocks[cfg.block_of[5]];
  EXPECT_EQ(exit.preds.size(), 2u);
}

TEST(NvmCfgTest, MarksUnreachableBlocks) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJump, 0, 3),
       Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kHalt, 0)},
      1, {Value::Number(1)});
  NvmCfg cfg = NvmCfg::Build(p);
  EXPECT_TRUE(cfg.Reachable(0));
  EXPECT_FALSE(cfg.Reachable(2));
  EXPECT_TRUE(cfg.Reachable(3));
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(NvmLivenessTest, StraightLineFixpoint) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kLoadConst, 1, 1),
       Ins(OpCode::kAdd, 2, 0, 1), Ins(OpCode::kHalt, 2)},
      3, {Value::Number(2), Value::Number(3)});
  NvmLiveness live = NvmLiveness::Compute(p);
  EXPECT_TRUE(live.LiveOut(0, 0));   // r0 flows into the add
  EXPECT_TRUE(live.LiveIn(2, 0));
  EXPECT_FALSE(live.LiveOut(2, 0));  // dead after its last read
  EXPECT_TRUE(live.LiveOut(2, 2));   // the result flows into halt
  EXPECT_FALSE(live.LiveIn(0, 0));   // nothing is live at entry
}

TEST(NvmLivenessTest, BackwardBranchConverges) {
  // r0 is read by the branch and by the halt; the backward edge must
  // carry liveness around the loop without oscillating.
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 0),
       Ins(OpCode::kHalt, 0)},
      1, {Value::Boolean(false)});
  NvmLiveness live = NvmLiveness::Compute(p);
  EXPECT_TRUE(live.LiveOut(0, 0));
  EXPECT_TRUE(live.LiveOut(1, 0));  // live on both branch successors
  EXPECT_FALSE(live.LiveIn(0, 0));  // pc 0 redefines it on the back edge
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

TEST(NvmReachingDefsTest, DefsMergeAtJoin) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kHalt, 1)},
      2, {Value::Boolean(true), Value::Number(7)});
  NvmReachingDefs rd = NvmReachingDefs::Compute(p);
  EXPECT_EQ(rd.DefsReaching(5, 1), (std::vector<size_t>{2, 4}));
  EXPECT_EQ(rd.DefsReaching(5, 0), (std::vector<size_t>{0}));
  // Inside the then-arm only the fall-through def is visible.
  EXPECT_EQ(rd.DefsReaching(3, 1), (std::vector<size_t>{2}));
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(NvmConstantsTest, PropagatesThroughMoves) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kMove, 1, 0),
       Ins(OpCode::kHalt, 1)},
      2, {Value::Number(7)});
  NvmConstants consts = NvmConstants::Compute(p);
  const NvmConst& at_halt = consts.In(2, 1);
  ASSERT_EQ(at_halt.state, NvmConst::State::kConst);
  EXPECT_EQ(at_halt.value.AsNumber(), 7);
}

TEST(NvmConstantsTest, DivergentPathsMeetToVarying) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 2), Ins(OpCode::kHalt, 1)},
      2,
      {Value::Boolean(true), Value::Number(1), Value::Number(2)});
  NvmConstants consts = NvmConstants::Compute(p);
  EXPECT_EQ(consts.In(5, 1).state, NvmConst::State::kVarying);
  // The condition itself is the same constant on every path.
  EXPECT_EQ(consts.In(5, 0).state, NvmConst::State::kConst);
}

TEST(NvmConstantsTest, SameConstantOnBothPathsStaysConstant) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 2), Ins(OpCode::kHalt, 1)},
      2, {Value::Boolean(true), Value::Number(5), Value::Number(5)});
  NvmConstants consts = NvmConstants::Compute(p);
  ASSERT_EQ(consts.In(5, 1).state, NvmConst::State::kConst);
  EXPECT_EQ(consts.In(5, 1).value.AsNumber(), 5);
}

// ---------------------------------------------------------------------------
// Kind propagation and purity
// ---------------------------------------------------------------------------

TEST(NvmKindsTest, TracksConversionResults) {
  Program p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kToStr, 1, 0),
       Ins(OpCode::kHalt, 1)},
      2, {Value::Number(3)});
  NvmKinds kinds = NvmKinds::Compute(p);
  EXPECT_EQ(kinds.In(1, 0), NvmKind::kNumber);
  EXPECT_EQ(kinds.In(2, 1), NvmKind::kString);
}

TEST(NvmKindsTest, DistinctAtomicKindsJoinToAtomic) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kJump, 0, 5),
       Ins(OpCode::kLoadConst, 1, 2), Ins(OpCode::kHalt, 1)},
      2, {Value::Boolean(true), Value::Number(1), Value::String("s")});
  NvmKinds kinds = NvmKinds::Compute(p);
  EXPECT_EQ(kinds.In(5, 1), NvmKind::kAtomic);
  EXPECT_TRUE(NvmKindIsAtomic(kinds.In(5, 1)));
}

TEST(NvmPurityTest, ConversionTotalityAndStoreAccess) {
  Program p;
  p.code = {Ins(OpCode::kLoadVar, 0, 0), Ins(OpCode::kToBool, 1, 0),
            Ins(OpCode::kToNum, 2, 0), Ins(OpCode::kHalt, 2)};
  p.register_count = 3;
  p.variable_names = {"v"};
  NvmKinds kinds = NvmKinds::Compute(p);
  // kLoadVar can fault (unbound variable) — never pure.
  EXPECT_FALSE(NvmInstructionIsPure(p, 0, kinds));
  // boolean() is total for every value kind, even the unknown kAny.
  EXPECT_TRUE(NvmInstructionIsPure(p, 1, kinds));
  // number() of a node reads the store: not pure on a kAny operand.
  EXPECT_FALSE(NvmInstructionIsPure(p, 2, kinds));
}

TEST(NvmConstEvalTest, RunsTheRealVm) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kLoadConst, 1, 1),
       Ins(OpCode::kAdd, 2, 0, 1), Ins(OpCode::kHalt, 2)},
      3, {Value::Number(2), Value::Number(3)});
  auto v = NvmEvaluateConstInstruction(p, 2,
                                       {Value::Number(2), Value::Number(3)});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsNumber(), 5);
}

TEST(NvmRenderTest, ListingCarriesLabelsAndOperands) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 2),
       Ins(OpCode::kHalt, 0)},
      1, {Value::Boolean(true)});
  std::string listing = RenderNvmProgram(p);
  EXPECT_NE(listing.find("L0:"), std::string::npos);
  EXPECT_NE(listing.find("jump_if_true r0 -> L1"), std::string::npos);
  EXPECT_NE(listing.find("load_const r0, true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Optimizer passes
// ---------------------------------------------------------------------------

TEST(NvmOptimizerTest, ConstantFoldsPureArithmetic) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kLoadConst, 1, 1),
       Ins(OpCode::kAdd, 2, 0, 1), Ins(OpCode::kHalt, 2)},
      3, {Value::Number(2), Value::Number(3)});
  algebra::RewriteLog log = Optimize(&p);
  // The add folds to load_const 5; the dead operand loads disappear.
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].op, OpCode::kLoadConst);
  auto v = RunProgram(p);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsNumber(), 5);
  EXPECT_TRUE(LogHasRule(log, "nvm:const-fold"));
  EXPECT_TRUE(LogHasRule(log, "nvm:dce"));
  for (const algebra::RewriteEvent& event : log) {
    EXPECT_EQ(event.rule.rfind("nvm:", 0), 0u);
    EXPECT_FALSE(event.justification.empty()) << event.rule;
  }
}

TEST(NvmOptimizerTest, ConversionElimAndCopyPropagation) {
  Program p;
  p.code = {Ins(OpCode::kLoadVar, 0, 0), Ins(OpCode::kToNum, 1, 0),
            Ins(OpCode::kToNum, 2, 1), Ins(OpCode::kHalt, 2)};
  p.register_count = 3;
  p.variable_names = {"v"};
  algebra::RewriteLog log = Optimize(&p);
  // number(number($v)) is the identity on the inner result: the second
  // conversion becomes a move, the move copy-propagates, and dce drops
  // it.
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[2].op, OpCode::kHalt);
  EXPECT_TRUE(LogHasRule(log, "nvm:conversion-elim"));
  EXPECT_TRUE(LogHasRule(log, "nvm:copy-prop"));
  auto v = RunProgram(p, {}, {{"v", Value::String("42")}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsNumber(), 42);
}

TEST(NvmOptimizerTest, JumpThreadResolvesConstantBranch) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kJumpIfTrue, 0, 4),
       Ins(OpCode::kLoadConst, 1, 1), Ins(OpCode::kHalt, 1),
       Ins(OpCode::kHalt, 0)},
      2, {Value::Boolean(true), Value::Number(9)});
  algebra::RewriteLog log = Optimize(&p);
  // The branch condition is constant true: the never-taken arm and the
  // branch itself go away.
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_TRUE(LogHasRule(log, "nvm:jump-thread"));
  auto v = RunProgram(p);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBoolean());
}

TEST(NvmOptimizerTest, PeepholeFusesCmpAttrConst) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadAttr, 0, 0), Ins(OpCode::kLoadConst, 1, 0),
       Ins(OpCode::kCompare, 2, 0, 1,
           static_cast<uint16_t>(runtime::CompareOp::kEq)),
       Ins(OpCode::kHalt, 2)},
      3, {Value::String("x")});
  algebra::RewriteLog log = Optimize(&p, /*tuple_register_count=*/1);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].op, OpCode::kCmpAttrConst);
  EXPECT_TRUE(LogHasRule(log, "nvm:peephole"));
  auto hit = RunProgram(p, {Value::String("x")});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->AsBoolean());
  auto miss = RunProgram(p, {Value::String("y")});
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->AsBoolean());
}

TEST(NvmOptimizerTest, PeepholeFusedCompareKeepsOperandOrder) {
  // The constant loads first and sits on the left of a < — the fused
  // instruction must preserve the asymmetric comparison via the swap
  // flag.
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 1, 0), Ins(OpCode::kLoadAttr, 0, 0),
       Ins(OpCode::kCompare, 2, 1, 0,
           static_cast<uint16_t>(runtime::CompareOp::kLt)),
       Ins(OpCode::kHalt, 2)},
      3, {Value::Number(5)});
  Optimize(&p, /*tuple_register_count=*/1);
  ASSERT_EQ(p.code.size(), 2u);
  ASSERT_EQ(p.code[0].op, OpCode::kCmpAttrConst);
  EXPECT_NE(p.code[0].d & nvm::kCmpFlagBit, 0);  // constant on the left
  auto lt = RunProgram(p, {Value::Number(7)});   // 5 < 7
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(lt->AsBoolean());
  auto ge = RunProgram(p, {Value::Number(3)});   // 5 < 3 is false
  ASSERT_TRUE(ge.ok());
  EXPECT_FALSE(ge->AsBoolean());
}

TEST(NvmOptimizerTest, PeepholeFusesCmpBranch) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadAttr, 0, 0), Ins(OpCode::kLoadAttr, 1, 1),
       Ins(OpCode::kCompare, 2, 0, 1,
           static_cast<uint16_t>(runtime::CompareOp::kLt)),
       Ins(OpCode::kJumpIfTrue, 2, 6), Ins(OpCode::kLoadConst, 3, 0),
       Ins(OpCode::kHalt, 3), Ins(OpCode::kLoadConst, 3, 1),
       Ins(OpCode::kHalt, 3)},
      4, {Value::Number(10), Value::Number(20)});
  algebra::RewriteLog log = Optimize(&p, /*tuple_register_count=*/2);
  ASSERT_EQ(p.code.size(), 7u);
  EXPECT_EQ(p.code[2].op, OpCode::kCmpBranch);
  EXPECT_TRUE(LogHasRule(log, "nvm:peephole"));
  EXPECT_TRUE(VerifyProgram(p, 2, 0).ok());
  auto taken = RunProgram(p, {Value::Number(1), Value::Number(2)});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->AsNumber(), 20);  // 1 < 2: branch taken
  auto fall = RunProgram(p, {Value::Number(3), Value::Number(2)});
  ASSERT_TRUE(fall.ok());
  EXPECT_EQ(fall->AsNumber(), 10);
}

TEST(NvmOptimizerTest, DceRemovesDeadPureStoresOnly) {
  Program p;
  // The unused to_bool is pure and dies; the unused load_var must stay
  // (an unbound variable is an observable fault).
  p.code = {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kToBool, 1, 0),
            Ins(OpCode::kLoadVar, 2, 0), Ins(OpCode::kHalt, 0)};
  p.register_count = 3;
  p.constants = {Value::Number(1)};
  p.variable_names = {"v"};
  Optimize(&p);
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[1].op, OpCode::kLoadVar);
  // The fault is preserved: running without $v bound still errors.
  EXPECT_FALSE(RunProgram(p).ok());
  auto v = RunProgram(p, {}, {{"v", Value::Number(0)}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsNumber(), 1);
}

TEST(NvmOptimizerTest, ShrinksFrameAndConstantPool) {
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 5, 0), Ins(OpCode::kLoadConst, 6, 1),
       Ins(OpCode::kAdd, 7, 5, 6), Ins(OpCode::kHalt, 7)},
      32, {Value::Number(2), Value::Number(3), Value::String("orphan")});
  Optimize(&p);
  // Folded to load_const + halt; the frame shrinks to the registers
  // actually used and unused pool entries are dropped.
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_LE(p.register_count, 8);
  EXPECT_EQ(p.constants.size(), 1u);
  auto v = RunProgram(p);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsNumber(), 5);
}

// ---------------------------------------------------------------------------
// Broken passes must abort, not execute
// ---------------------------------------------------------------------------

/// A deliberately broken pass: writes a register far outside the frame.
bool BreakFrame(Program* program) {
  program->code.insert(
      program->code.begin(),
      Ins(OpCode::kLoadConst,
          static_cast<uint16_t>(program->register_count + 10), 0));
  return true;
}

TEST(NvmOptimizerNegativeTest, BrokenPassAbortsOptimization) {
  SetNvmOptimizerTestPass(&BreakFrame);
  auto p = MakeProgram(
      {Ins(OpCode::kLoadConst, 0, 0), Ins(OpCode::kHalt, 0)},
      1, {Value::Number(1)});
  algebra::RewriteLog log;
  Status st = OptimizeNvmProgram(&p, "test", 0, 0, &log);
  SetNvmOptimizerTestPass(nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("test-hook"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("plan verifier (nvm)"), std::string::npos)
      << st.message();
}

TEST(NvmOptimizerNegativeTest, BrokenPassAbortsCompilation) {
  auto db = Database::CreateTemp();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->LoadDocument("d", "<r><a x='1'/></r>").ok());

  SetNvmOptimizerTestPass(&BreakFrame);
  auto broken = (*db)->Compile("//a[@x = '1' and 2 > 1]");
  SetNvmOptimizerTestPass(nullptr);
  ASSERT_FALSE(broken.ok()) << "a verifier-rejected program must never "
                               "reach execution";
  EXPECT_NE(broken.status().message().find("test-hook"), std::string::npos)
      << broken.status().message();

  // Distinct query text: the failed compile must not poison the cache,
  // and a clean pipeline must compile the same shape fine.
  auto clean = (*db)->Compile("//a[@x = '1' and 3 > 1]");
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

}  // namespace
}  // namespace natix::analysis
