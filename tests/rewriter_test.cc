// Tests for the logical plan simplifier: the duplicate-freeness analysis
// and the rewrites it licenses. Correctness under the rewrites is also
// covered end-to-end by conformance_test/fuzz_conformance_test (the
// improved translation runs with simplification on).

#include "algebra/rewriter.h"

#include <gtest/gtest.h>

#include "translate/translator.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::algebra {
namespace {

translate::TranslationResult TranslateNoSimplify(const std::string& query) {
  auto ast = xpath::ParseXPath(query);
  NATIX_CHECK(ast.ok());
  NATIX_CHECK(xpath::Analyze(ast->get()).ok());
  xpath::FoldConstants(ast->get());
  xpath::Normalize(ast->get());
  translate::TranslatorOptions options;  // improved
  options.simplify_plan = false;
  auto result = translate::Translate(**ast, options);
  NATIX_CHECK(result.ok());
  return std::move(result.value());
}

size_t CountKind(const Operator& op, OpKind kind) {
  size_t n = op.kind == kind ? 1 : 0;
  for (const OpPtr& child : op.children) n += CountKind(*child, kind);
  return n;
}

TEST(RewriterTest, ChildStepAfterDedupIsDuplicateFree) {
  auto result = TranslateNoSimplify("//a/b");
  // Before: dedup after the ppd // step AND a final dedup.
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), 2u);
  RewriteLog log;
  size_t removed = SimplifyPlan(&result.plan, &log);
  // Both are provably redundant: descendant-or-self expands the
  // non-nested document root (inherently duplicate-free), and the child
  // step runs over that deduplicated context.
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), 0u);
  ASSERT_EQ(log.size(), 2u);
  for (const RewriteEvent& event : log) {
    EXPECT_EQ(event.rule, "drop-redundant-duplicate-elimination");
    EXPECT_FALSE(event.target.empty());
    EXPECT_NE(event.justification.find("dup-free"), std::string::npos);
  }
}

TEST(RewriterTest, DescendantOverNonNestedContextDedupIsRemoved) {
  auto result = TranslateNoSimplify("/a/descendant::b");
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), 1u);
  size_t removed = SimplifyPlan(&result.plan);
  // /a elements are siblings (children of the root), hence non-nested:
  // their descendant sets are disjoint, so the dedup is redundant.
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), 0u);
}

TEST(RewriterTest, DescendantOverNestedContextDedupIsKept) {
  auto result = TranslateNoSimplify("//a/descendant::b");
  size_t before = CountKind(*result.plan, OpKind::kDupElim);
  SimplifyPlan(&result.plan);
  // //a contexts can nest, so distinct contexts may share descendants:
  // the dedup after descendant::b must survive.
  EXPECT_GE(CountKind(*result.plan, OpKind::kDupElim), 1u);
  EXPECT_LT(CountKind(*result.plan, OpKind::kDupElim), before);
}

TEST(RewriterTest, UnionDedupIsKept) {
  auto result = TranslateNoSimplify("a | b");
  size_t before = CountKind(*result.plan, OpKind::kDupElim);
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), before);
  EXPECT_EQ(result.plan->kind, OpKind::kDupElim);
}

TEST(RewriterTest, PropertiesOfSingletonScan) {
  OpPtr scan = MakeOp(OpKind::kSingletonScan);
  SequenceProperties props = InferProperties(*scan);
  EXPECT_TRUE(props.singleton);
}

TEST(RewriterTest, ChildChainFromContextIsDuplicateFree) {
  auto result = TranslateNoSimplify("a/b/c");
  // Stacked pipeline over the free context attribute: everything stays
  // duplicate-free; there is no dedup to begin with.
  EXPECT_EQ(CountKind(*result.plan, OpKind::kDupElim), 0u);
  SequenceProperties props = InferProperties(*result.plan);
  EXPECT_FALSE(props.singleton);
  // Earlier steps' attributes repeat across the fan-out; only the last
  // step's output is duplicate-free.
  EXPECT_EQ(props.duplicate_free,
            std::set<std::string>{result.result_attr});
}

TEST(RewriterTest, ParentStepBreaksDistinctness) {
  auto result = TranslateNoSimplify("a/parent::*/b");
  SequenceProperties props = InferProperties(*result.plan);
  // The final child step runs over a deduplicated parent context, so its
  // output is duplicate-free again.
  auto canonical_ast = TranslateNoSimplify("a/parent::*");
  SequenceProperties parent_props =
      InferProperties(*canonical_ast.plan->children[0]);
  // parent::* output before the dedup may contain duplicates.
  EXPECT_EQ(parent_props.duplicate_free.count(canonical_ast.result_attr),
            0u);
  (void)props;
}

TEST(RewriterTest, ConstantTrueSelectionFoldsAway) {
  // true() folds to a boolean literal, the predicate becomes sigma_true.
  auto result = TranslateNoSimplify("a[true()]");
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSelect), 1u);
  size_t removed = SimplifyPlan(&result.plan);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSelect), 0u);
}

TEST(RewriterTest, SortOnOrderedInputIsRemoved) {
  // A child chain from the (singleton) context is already in document
  // order: the positional filter expression needs no sort.
  auto result = TranslateNoSimplify("(/a/b/c)[2]");
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 1u);
  size_t removed = SimplifyPlan(&result.plan);
  EXPECT_GE(removed, 1u);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 0u);
}

TEST(RewriterTest, SortOnDescendantsIsRemoved) {
  // /descendant::a from the root is emitted in document order.
  auto result = TranslateNoSimplify("(/descendant::a)[last()]");
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 0u);
}

TEST(RewriterTest, SortAfterChildOfNestedContextsIsKept) {
  // //a produces nested contexts; the following child step's output can
  // interleave, so the sort must stay.
  auto result = TranslateNoSimplify("(//a/b)[1]");
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 1u);
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 1u);
}

TEST(RewriterTest, SortAfterUnionIsKept) {
  auto result = TranslateNoSimplify("(/a/b | /a/c)[1]");
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 1u);
}

TEST(RewriterTest, SortAfterReverseAxisIsKept) {
  auto result = TranslateNoSimplify("(/a/b/ancestor::*)[1]");
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 1u);
}

TEST(RewriterTest, AttributeStepsKeepDocumentOrder) {
  auto result = TranslateNoSimplify("(/a/b/@x)[2]");
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), 0u);
}

TEST(RewriterTest, SortAfterDescendantUnderFollowingSiblingIsKept) {
  // following-sibling over a many-node context emits per-context runs
  // that interleave, and distinct contexts share siblings: neither
  // order nor duplicate-freedom can be claimed, so both the dedup and
  // the sort must survive (the unsound-removal regression case).
  auto result =
      TranslateNoSimplify("(/a/b/following-sibling::*/descendant::c)[1]");
  size_t sorts = CountKind(*result.plan, OpKind::kSort);
  ASSERT_GE(sorts, 1u);
  SimplifyPlan(&result.plan);
  EXPECT_EQ(CountKind(*result.plan, OpKind::kSort), sorts);
  EXPECT_GE(CountKind(*result.plan, OpKind::kDupElim), 1u);
}

TEST(RewriterTest, ImprovedDefaultsSimplify) {
  // Through the public options, //a/b needs no dedup at all: the
  // descendant-or-self step expands the non-nested document root.
  auto ast = xpath::ParseXPath("//a/b");
  ASSERT_TRUE(ast.ok());
  ASSERT_TRUE(xpath::Analyze(ast->get()).ok());
  xpath::Normalize(ast->get());
  auto result =
      translate::Translate(**ast, translate::TranslatorOptions::Improved());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CountKind(*result->plan, OpKind::kDupElim), 0u);
  // The applied rewrites are logged with their proving properties.
  EXPECT_EQ(result->rewrites.size(), 2u);
}

TEST(RewriterTest, CheckedSimplifyAcceptsItsOwnRewrites) {
  auto result = TranslateNoSimplify("(//a/b)[1]");
  RewriteLog log;
  auto removed = SimplifyPlanChecked(&result.plan, &log);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_GE(*removed, 1u);
}

}  // namespace
}  // namespace natix::algebra
