#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"

namespace natix {
namespace {

using translate::TranslatorOptions;

constexpr char kBookstore[] = R"(<bookstore>
  <book category="cooking" id="b1">
    <title lang="en" xml:lang="en">Everyday Italian</title>
    <author>Giada De Laurentiis</author>
    <year>2005</year>
    <price>30.00</price>
  </book>
  <book category="children" id="b2">
    <title lang="en" xml:lang="en">Harry Potter</title>
    <author>J K. Rowling</author>
    <year>2005</year>
    <price>29.99</price>
  </book>
  <book category="web" id="b3">
    <title lang="en-US" xml:lang="en-US">XQuery Kick Start</title>
    <author>James McGovern</author>
    <author>Per Bothner</author>
    <year>2003</year>
    <price>49.99</price>
  </book>
  <book category="web" id="b4">
    <title lang="de" xml:lang="de">Learning XML</title>
    <author>Erik T. Ray</author>
    <year>2003</year>
    <price>39.95</price>
  </book>
</bookstore>)";

/// Both translation strategies must agree with the expected results.
class E2EQueryTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    auto db = Database::CreateTemp();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db.value());
    auto info = db_->LoadDocument("books", kBookstore);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    root_ = info->root;
  }

  TranslatorOptions Options() const {
    return GetParam() ? TranslatorOptions::Improved()
                      : TranslatorOptions::Canonical();
  }

  /// Runs a node-set query; returns "name=string-value" per result node
  /// in document order, joined by "; ".
  std::string Nodes(const std::string& query) {
    auto compiled = db_->Compile(query, Options());
    if (!compiled.ok()) return "ERROR " + compiled.status().ToString();
    auto nodes = (*compiled)->EvaluateNodes(root_);
    if (!nodes.ok()) return "ERROR " + nodes.status().ToString();
    std::string out;
    for (const storage::StoredNode& node : *nodes) {
      if (!out.empty()) out += "; ";
      auto name = node.name();
      auto value = node.string_value();
      if (!name.ok() || !value.ok()) return "ERROR accessor";
      out += (name->empty() ? "#" : *name) + "=" + *value;
    }
    return out;
  }

  std::string Str(const std::string& query) {
    auto compiled = db_->Compile(query, Options());
    if (!compiled.ok()) return "ERROR " + compiled.status().ToString();
    auto s = (*compiled)->EvaluateString(root_);
    if (!s.ok()) return "ERROR " + s.status().ToString();
    return *s;
  }

  std::unique_ptr<Database> db_;
  storage::NodeId root_;
};

TEST_P(E2EQueryTest, SimpleChildPaths) {
  EXPECT_EQ(Nodes("/bookstore/book/title"),
            "title=Everyday Italian; title=Harry Potter; "
            "title=XQuery Kick Start; title=Learning XML");
  EXPECT_EQ(Nodes("/bookstore/book/year"),
            "year=2005; year=2005; year=2003; year=2003");
  EXPECT_EQ(Nodes("/nosuch"), "");
}

TEST_P(E2EQueryTest, RootOnly) {
  EXPECT_EQ(Nodes("/"),
            "#=" + Str("string(/)"));
}

TEST_P(E2EQueryTest, Wildcards) {
  EXPECT_EQ(Nodes("/bookstore/book[1]/*"),
            "title=Everyday Italian; author=Giada De Laurentiis; "
            "year=2005; price=30.00");
}

TEST_P(E2EQueryTest, Attributes) {
  EXPECT_EQ(Nodes("/bookstore/book/@category"),
            "category=cooking; category=children; category=web; "
            "category=web");
  EXPECT_EQ(Nodes("/bookstore/book[@category='web']/title"),
            "title=XQuery Kick Start; title=Learning XML");
}

TEST_P(E2EQueryTest, DescendantAxis) {
  EXPECT_EQ(Nodes("//author"),
            "author=Giada De Laurentiis; author=J K. Rowling; "
            "author=James McGovern; author=Per Bothner; author=Erik T. Ray");
  EXPECT_EQ(Nodes("/descendant::price[2]"), "price=29.99");
}

TEST_P(E2EQueryTest, PositionalPredicates) {
  EXPECT_EQ(Nodes("/bookstore/book[1]/title"), "title=Everyday Italian");
  EXPECT_EQ(Nodes("/bookstore/book[position() = 2]/title"),
            "title=Harry Potter");
  EXPECT_EQ(Nodes("/bookstore/book[last()]/title"), "title=Learning XML");
  EXPECT_EQ(Nodes("/bookstore/book[last() - 1]/title"),
            "title=XQuery Kick Start");
  EXPECT_EQ(Nodes("/bookstore/book[position() < 3]/@id"),
            "id=b1; id=b2");
  EXPECT_EQ(Nodes("/bookstore/book[position() = last()]/title"),
            "title=Learning XML");
}

TEST_P(E2EQueryTest, ValuePredicates) {
  EXPECT_EQ(Nodes("/bookstore/book[year='2003']/@id"), "id=b3; id=b4");
  EXPECT_EQ(Nodes("/bookstore/book[price > 35]/title"),
            "title=XQuery Kick Start; title=Learning XML");
  EXPECT_EQ(Nodes("/bookstore/book[author='Per Bothner']/@id"), "id=b3");
}

TEST_P(E2EQueryTest, NestedPathPredicates) {
  EXPECT_EQ(Nodes("/bookstore/book[count(author) = 2]/@id"), "id=b3");
  EXPECT_EQ(Nodes("/bookstore/book[count(author) > 1]/@id"), "id=b3");
  EXPECT_EQ(Nodes("/bookstore/book[author]/@id"),
            "id=b1; id=b2; id=b3; id=b4");
  EXPECT_EQ(Nodes("/bookstore/book[not(author)]/@id"), "");
}

TEST_P(E2EQueryTest, MultiplePredicates) {
  EXPECT_EQ(Nodes("/bookstore/book[year='2003'][2]/@id"), "id=b4");
  EXPECT_EQ(Nodes("/bookstore/book[year='2003'][position()=last()]/@id"),
            "id=b4");
  EXPECT_EQ(Nodes("/bookstore/book[@category='web' and price < 45]/@id"),
            "id=b4");
  EXPECT_EQ(Nodes("/bookstore/book[@category='web' or year='2005']/@id"),
            "id=b1; id=b2; id=b3; id=b4");
}

TEST_P(E2EQueryTest, ReverseAxes) {
  EXPECT_EQ(Nodes("//author/parent::book/@id"),
            "id=b1; id=b2; id=b3; id=b4");
  EXPECT_EQ(Nodes("//price/ancestor::*"),
            "bookstore=" + Str("string(/bookstore)") +
                "; book=" + Str("string(/bookstore/book[1])") +
                "; book=" + Str("string(/bookstore/book[2])") +
                "; book=" + Str("string(/bookstore/book[3])") +
                "; book=" + Str("string(/bookstore/book[4])"));
  EXPECT_EQ(Nodes("/bookstore/book[3]/preceding-sibling::book/@id"),
            "id=b1; id=b2");
  EXPECT_EQ(Nodes("/bookstore/book[2]/following-sibling::book/@id"),
            "id=b3; id=b4");
}

TEST_P(E2EQueryTest, ReverseAxisPositionsCountProximity) {
  // position() on a reverse axis counts in reverse document order.
  EXPECT_EQ(Nodes("/bookstore/book[4]/preceding-sibling::book[1]/@id"),
            "id=b3");
  EXPECT_EQ(Nodes("/bookstore/book[4]/preceding-sibling::book[last()]/@id"),
            "id=b1");
}

TEST_P(E2EQueryTest, FollowingPrecedingAxes) {
  EXPECT_EQ(Nodes("/bookstore/book[3]/following::year"), "year=2003");
  EXPECT_EQ(Nodes("/bookstore/book[2]/preceding::author"),
            "author=Giada De Laurentiis");
}

TEST_P(E2EQueryTest, DuplicateGeneratingPathsStaySets) {
  // Every author's ancestor chain reaches the same bookstore element:
  // the result must contain it once.
  EXPECT_EQ(Nodes("//author/ancestor::bookstore"),
            "bookstore=" + Str("string(/bookstore)"));
  // parent-then-descendant fans out and back in.
  EXPECT_EQ(Nodes("/bookstore/book/parent::*/book[1]/@id"), "id=b1");
}

TEST_P(E2EQueryTest, Unions) {
  EXPECT_EQ(Nodes("/bookstore/book[1]/title | /bookstore/book[2]/title"),
            "title=Everyday Italian; title=Harry Potter");
  // Overlap collapses.
  EXPECT_EQ(Nodes("//book[@id='b1'] | /bookstore/book[1]"),
            "book=" + Str("string(/bookstore/book[1])"));
}

TEST_P(E2EQueryTest, FilterExpressions) {
  EXPECT_EQ(Nodes("(//author)[2]"), "author=J K. Rowling");
  EXPECT_EQ(Nodes("(//author)[last()]"), "author=Erik T. Ray");
  EXPECT_EQ(Nodes("(/bookstore/book/title | /bookstore/book/author)[3]"),
            "title=Harry Potter");
}

TEST_P(E2EQueryTest, FilterOnOrderedPipelines) {
  // These filter expressions are where the simplifier removes the sort
  // (the child chain is provably in document order); results must be
  // unchanged.
  EXPECT_EQ(Nodes("(/bookstore/book/title)[2]"), "title=Harry Potter");
  EXPECT_EQ(Nodes("(/bookstore/book/title)[last()]"),
            "title=Learning XML");
  EXPECT_EQ(Nodes("(/bookstore/book/@id)[3]"), "id=b3");
  EXPECT_EQ(Nodes("(/descendant::author)[2]"), "author=J K. Rowling");
}

TEST_P(E2EQueryTest, PathAfterFilter) {
  EXPECT_EQ(Nodes("(//book)[2]/title"), "title=Harry Potter");
}

TEST_P(E2EQueryTest, IdFunction) {
  EXPECT_EQ(Nodes("id('b2')/title"), "title=Harry Potter");
  EXPECT_EQ(Nodes("id('b4 b1')/year"), "year=2005; year=2003");
  EXPECT_EQ(Nodes("id('nope')"), "");
}

TEST_P(E2EQueryTest, ScalarQueries) {
  EXPECT_EQ(Str("count(//book)"), "4");
  EXPECT_EQ(Str("count(//author)"), "5");
  EXPECT_EQ(Str("sum(/bookstore/book/price)"), "149.93");
  EXPECT_EQ(Str("1 + 2 * 3"), "7");
  EXPECT_EQ(Str("string(/bookstore/book[1]/title)"), "Everyday Italian");
  EXPECT_EQ(Str("concat(name(/bookstore/book[1]/@id), ':', "
                "/bookstore/book[1]/@id)"),
            "id:b1");
  EXPECT_EQ(Str("local-name(/*)"), "bookstore");
  EXPECT_EQ(Str("boolean(//book[price > 100])"), "false");
  EXPECT_EQ(Str("boolean(//book[price > 40])"), "true");
  EXPECT_EQ(Str("string-length(string(/bookstore/book[1]/title))"), "16");
  EXPECT_EQ(Str("normalize-space('  a  b  ')"), "a b");
}

TEST_P(E2EQueryTest, NodeSetComparisons) {
  // Existential semantics.
  EXPECT_EQ(Str("boolean(/bookstore/book/year = '2003')"), "true");
  EXPECT_EQ(Str("boolean(/bookstore/book/year = '1999')"), "false");
  EXPECT_EQ(Str("boolean(/bookstore/book/year != '2003')"), "true");
  EXPECT_EQ(Str("boolean(//price < 30)"), "true");
  EXPECT_EQ(Str("boolean(//price > 49.99)"), "false");
  EXPECT_EQ(Str("boolean(//price >= 49.99)"), "true");
  // Two node sets.
  EXPECT_EQ(Str("boolean(//book[1]/year = //book[2]/year)"), "true");
  EXPECT_EQ(Str("boolean(//book[1]/year = //book[3]/year)"), "false");
  EXPECT_EQ(Str("boolean(//book[1]/price < //book[3]/price)"), "true");
}

TEST_P(E2EQueryTest, StringFunctionsOnNodes) {
  EXPECT_EQ(Nodes("//book[starts-with(title, 'Harry')]/@id"), "id=b2");
  EXPECT_EQ(Nodes("//book[contains(title, 'XML')]/@id"), "id=b4");
  EXPECT_EQ(Str("substring-before(/bookstore/book[1]/price, '.')"), "30");
  EXPECT_EQ(Str("translate(string(//book[1]/@category), 'cokig', 'COKIG')"),
            "COOKInG");
}

TEST_P(E2EQueryTest, LangFunction) {
  EXPECT_EQ(Nodes("//title[lang('en')]"),
            "title=Everyday Italian; title=Harry Potter; "
            "title=XQuery Kick Start");
  EXPECT_EQ(Nodes("//title[lang('de')]"), "title=Learning XML");
  EXPECT_EQ(Nodes("//title[lang('en-US')]"), "title=XQuery Kick Start");
}

TEST_P(E2EQueryTest, SelfAndParentAbbreviations) {
  EXPECT_EQ(Nodes("/bookstore/book[1]/title/.."),
            "book=" + Str("string(/bookstore/book[1])"));
  EXPECT_EQ(Nodes("/bookstore/book[1]/self::book/@id"), "id=b1");
  EXPECT_EQ(Nodes("//title/./."),
            Nodes("//title"));
}

TEST_P(E2EQueryTest, Variables) {
  auto compiled = db_->Compile("/bookstore/book[year = $y]/@id", Options());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  (*compiled)->SetVariable("y", runtime::Value::String("2003"));
  auto nodes = (*compiled)->EvaluateNodes(root_);
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
  ASSERT_EQ(nodes->size(), 2u);
  EXPECT_EQ(*(*nodes)[0].content(), "b3");
  (*compiled)->SetVariable("y", runtime::Value::String("2005"));
  nodes = (*compiled)->EvaluateNodes(root_);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*(*nodes)[0].content(), "b1");
}

TEST_P(E2EQueryTest, RelativePathsFromInnerContext) {
  auto compiled = db_->Compile("title", Options());
  ASSERT_TRUE(compiled.ok());
  // Evaluate relative to the second book element.
  auto books = db_->QueryNodes("books", "/bookstore/book");
  ASSERT_TRUE(books.ok());
  auto titles = (*compiled)->EvaluateNodes((*books)[1].id());
  ASSERT_TRUE(titles.ok());
  ASSERT_EQ(titles->size(), 1u);
  EXPECT_EQ(*(*titles)[0].string_value(), "Harry Potter");
}

TEST_P(E2EQueryTest, AbsolutePathFromInnerContext) {
  auto compiled = db_->Compile("/bookstore/book[1]/@id", Options());
  ASSERT_TRUE(compiled.ok());
  auto books = db_->QueryNodes("books", "/bookstore/book");
  ASSERT_TRUE(books.ok());
  auto ids = (*compiled)->EvaluateNodes((*books)[3].id());
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ(*(*ids)[0].content(), "b1");
}

TEST_P(E2EQueryTest, PaperInnerPathExample) {
  // The memoization showcase of Sec. 4.2.2 (shape, small scale).
  // following::* counts per book: b1 reaches 19 elements, b2 reaches 13,
  // b3 reaches 8 (the union of both authors' following sets), b4 only 2.
  EXPECT_EQ(Nodes("/bookstore/book[count(./descendant::author"
                  "/following::*) > 10]/@id"),
            "id=b1; id=b2");
  EXPECT_EQ(Nodes("/bookstore/book[count(./descendant::author"
                  "/following::*) > 7]/@id"),
            "id=b1; id=b2; id=b3");
}

TEST_P(E2EQueryTest, NonElementNodeResults) {
  // Comments, processing instructions and text nodes are first-class
  // results.
  EXPECT_EQ(Nodes("//book[1]/title/text()"), "#=Everyday Italian");
  EXPECT_EQ(Nodes("count(//text())"),
            "ERROR InvalidArgument: ExecuteNodes called on a non-node-set "
            "query");
  EXPECT_EQ(Str("count(//title/text())"), "4");
}

TEST_P(E2EQueryTest, DeepNesting) {
  EXPECT_EQ(Nodes("//book[author[starts-with(., 'Per')]]/@id"), "id=b3");
  EXPECT_EQ(Nodes("//book[title[@lang='de']]/@id"), "id=b4");
}

INSTANTIATE_TEST_SUITE_P(Translations, E2EQueryTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Improved" : "Canonical";
                         });

}  // namespace
}  // namespace natix
