// Counter-asserted behavioral tests for the observability layer: the
// per-operator counters must prove the paper's evaluation techniques are
// actually firing — smart aggregation stops early (Sec. 5.2.5), Tmp^cs
// spools its input once (Sec. 5.2.4), and MemoX serves repeated d-join
// probes from its memo table (Sec. 4.2.2).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/database.h"
#include "obs/stats.h"

namespace natix {
namespace {

// Counter-asserted tests are meaningless when the instrumentation is
// compiled out; they skip instead of asserting on zeroes.
#if defined(NATIX_OBS_DISABLED)
#define NATIX_REQUIRE_OBS() \
  GTEST_SKIP() << "observability compiled out (NATIX_OBS=OFF)"
#else
#define NATIX_REQUIRE_OBS() (void)0
#endif

struct Fixture {
  std::unique_ptr<Database> db;
  storage::NodeId root;
};

Fixture Load(const std::string& xml) {
  Fixture f;
  auto db = Database::CreateTemp();
  EXPECT_TRUE(db.ok());
  f.db = std::move(db.value());
  auto info = f.db->LoadDocument("doc", xml);
  EXPECT_TRUE(info.ok());
  f.root = info->root;
  return f;
}

std::unique_ptr<CompiledQuery> CompileWithStats(Fixture& f,
                                                const std::string& query) {
  auto compiled = f.db->Compile(
      query, translate::TranslatorOptions::Improved(),
      /*collect_stats=*/true);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled.value());
}

TEST(ObsStatsTest, StatsAreOffByDefault) {
  Fixture f = Load("<xdoc><a/></xdoc>");
  auto compiled = f.db->Compile("/xdoc/a");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ((*compiled)->Stats(), nullptr);
  EXPECT_EQ((*compiled)->ExplainAnalyze(), "");
  auto nodes = (*compiled)->EvaluateNodes(f.root);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 1u);
}

// Smart aggregation (Sec. 5.2.5): for a count(...[exists-predicate])
// query the existential probe must consume strictly fewer input tuples
// than the input cardinality — one b per a, not all nine.
TEST(ObsStatsTest, SmartAggregationConsumesFewerTuplesThanInput) {
  NATIX_REQUIRE_OBS();
  Fixture f = Load(
      "<xdoc>"
      "<a><b/><b/><b/></a>"
      "<a><b/><b/><b/></a>"
      "<a><b/><b/><b/></a>"
      "</xdoc>");
  auto query = CompileWithStats(f, "count(/xdoc/a[b])");
  auto value = query->EvaluateNumber(f.root);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 3.0);

  const obs::QueryStats* stats = query->Stats();
  ASSERT_NE(stats, nullptr);
  const obs::OpStats* exists = stats->FindOp("NestedAgg[exists]");
  ASSERT_NE(exists, nullptr) << stats->RenderAnalyze();
  EXPECT_TRUE(exists->nested);
  // One evaluation per a element; each stops after its first b.
  EXPECT_EQ(exists->agg_evals, 3u);
  EXPECT_EQ(exists->early_exits, 3u);
  EXPECT_EQ(exists->agg_input, 3u);
  const uint64_t input_cardinality = 9;  // b elements in the document
  EXPECT_LT(exists->agg_input, input_cardinality);
}

// Tmp^cs (Sec. 5.2.4): a last() predicate materializes the context
// sequence. The child pipeline must be consumed in a single pass —
// one Open — while every row is spooled once and replayed once.
TEST(ObsStatsTest, TmpCsSpoolsInputExactlyOnce) {
  NATIX_REQUIRE_OBS();
  Fixture f = Load(
      "<xdoc>"
      "<a><b/><b/><b/></a>"
      "<a><b/><b/></a>"
      "</xdoc>");
  auto query = CompileWithStats(f, "/xdoc/a/b[last()]");
  auto nodes = query->EvaluateNodes(f.root);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 2u);  // the last b of each a

  const obs::QueryStats* stats = query->Stats();
  ASSERT_NE(stats, nullptr);
  const obs::OpStats* tmp = stats->FindOp("TmpCs[");
  ASSERT_NE(tmp, nullptr) << stats->RenderAnalyze();
  EXPECT_EQ(tmp->open_calls, 1u);
  EXPECT_EQ(tmp->spooled_rows, 5u);   // every b spooled exactly once
  EXPECT_EQ(tmp->replayed_rows, 5u);  // and replayed with cs attached
  EXPECT_EQ(tmp->groups, 2u);         // one context per a (Tmp^cs_c)
  // Single-pass: the child pipeline under the materialization opened
  // exactly once even though two contexts were replayed.
  ASSERT_FALSE(tmp->children.empty());
  EXPECT_EQ(tmp->children[0]->open_calls, 1u);
}

// MemoX (Sec. 4.2.2): the Fig. 9 step shape — a child step whose input
// repeats through a parent step — as an inner path. Three b siblings
// share one a parent, so repeated d-join probes must hit the memo table
// instead of re-evaluating the dependent subplan.
TEST(ObsStatsTest, MemoXServesRepeatedProbesFromMemoTable) {
  NATIX_REQUIRE_OBS();
  Fixture f = Load(
      "<xdoc>"
      "<a><c/><b/><b/><b/></a>"
      "<a><b/><b/></a>"
      "</xdoc>");
  auto query = CompileWithStats(f, "/xdoc/a/b[count(parent::a/c) > 0]");
  auto nodes = query->EvaluateNodes(f.root);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 3u);  // the three b's whose a has a c

  const obs::QueryStats* stats = query->Stats();
  ASSERT_NE(stats, nullptr);
  const obs::OpStats* memo = stats->FindOp("MemoX[");
  ASSERT_NE(memo, nullptr) << stats->RenderAnalyze();
  EXPECT_GT(memo->memo_hits, 0u);
  EXPECT_GT(memo->memo_misses, 0u);
  // Five probes (one per b), two distinct parent keys: three hits.
  EXPECT_EQ(memo->memo_hits + memo->memo_misses, memo->open_calls);
  EXPECT_EQ(memo->memo_misses, 2u);
  EXPECT_EQ(memo->memo_hits, 3u);
}

// Counters accumulate across evaluations; Reset() zeroes them while the
// tree (and rendering) survives.
TEST(ObsStatsTest, CountersAccumulateAcrossRunsAndReset) {
  Fixture f = Load("<xdoc><a/><a/></xdoc>");
  auto query = CompileWithStats(f, "/xdoc/a");

  ASSERT_TRUE(query->EvaluateNodes(f.root).ok());
  obs::StatsTotals once = query->Stats()->ComputeTotals();
  ASSERT_TRUE(query->EvaluateNodes(f.root).ok());
  obs::StatsTotals twice = query->Stats()->ComputeTotals();
  EXPECT_EQ(query->Stats()->executions(), 2u);
  EXPECT_EQ(twice.next_calls, 2 * once.next_calls);
  EXPECT_EQ(twice.tuples, 2 * once.tuples);

  query->MutableStats()->Reset();
  obs::StatsTotals zero = query->Stats()->ComputeTotals();
  EXPECT_EQ(zero.next_calls, 0u);
  EXPECT_EQ(zero.tuples, 0u);
  EXPECT_EQ(query->Stats()->executions(), 0u);
  EXPECT_NE(query->ExplainAnalyze(), "");  // structure survives

  ASSERT_TRUE(query->EvaluateNodes(f.root).ok());
  obs::StatsTotals again = query->Stats()->ComputeTotals();
  EXPECT_EQ(again.next_calls, once.next_calls);
}

// The query-level buffer section aggregates per-evaluation deltas; a
// query over a resident document sees pool hits, not faults.
TEST(ObsStatsTest, BufferDeltasFeedQueryTotals) {
  Fixture f = Load("<xdoc><a/><a/><a/></xdoc>");
  auto query = CompileWithStats(f, "/xdoc/a");
  ASSERT_TRUE(query->EvaluateNodes(f.root).ok());
  const obs::QueryStats* stats = query->Stats();
  EXPECT_GT(stats->buffer().page_hits, 0u);
  EXPECT_EQ(stats->buffer().page_reads, 0u);  // document is resident
}

// Exclusive time is derived as inclusive minus children, and timer
// granularity can make a child's inclusive time exceed its parent's.
// The subtraction must saturate at zero — never wrap to a huge unsigned
// value — both in the accessor and in the EXPLAIN ANALYZE rendering.
TEST(ObsStatsTest, ExclusiveTimeClampsAtZeroWhenChildExceedsParent) {
  obs::QueryStats stats;
  obs::OpStats* child = stats.NewOp("Child");
  child->inclusive_ns = 5000;
  child->inclusive_page_reads = 7;
  child->inclusive_page_hits = 9;
  obs::OpStats* parent = stats.NewOp("Parent");
  parent->inclusive_ns = 4000;  // less than the child: clamp territory
  parent->inclusive_page_reads = 3;
  parent->inclusive_page_hits = 2;
  parent->children.push_back(child);
  stats.set_root(parent);

  EXPECT_EQ(parent->exclusive_ns(), 0u);
  EXPECT_EQ(parent->exclusive_page_reads(), 0u);
  EXPECT_EQ(parent->exclusive_page_hits(), 0u);
  EXPECT_EQ(child->exclusive_ns(), 5000u);

  std::string rendered = stats.RenderAnalyze();
  EXPECT_NE(rendered.find("exclusive_ms=0.000"), std::string::npos)
      << rendered;
  EXPECT_EQ(rendered.find("exclusive_ms=-"), std::string::npos);
  // A wrapped subtraction would print astronomically many digits.
  EXPECT_EQ(rendered.find("000000000"), std::string::npos) << rendered;
}

// EXPLAIN ANALYZE and the JSON rendering carry the same counters.
TEST(ObsStatsTest, JsonRenderingMatchesTotals) {
  Fixture f = Load("<xdoc><a/></xdoc>");
  auto query = CompileWithStats(f, "/xdoc/a");
  ASSERT_TRUE(query->EvaluateNodes(f.root).ok());
  std::string json = query->Stats()->ToJson();
  EXPECT_NE(json.find("\"label\""), std::string::npos);
  EXPECT_NE(json.find("\"next\""), std::string::npos);
  EXPECT_NE(json.find("\"buffer\""), std::string::npos);
}

}  // namespace
}  // namespace natix
