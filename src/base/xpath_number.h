#ifndef NATIX_BASE_XPATH_NUMBER_H_
#define NATIX_BASE_XPATH_NUMBER_H_

#include <string>
#include <string_view>

namespace natix {

/// Parses `s` using the XPath 1.0 `number()` rules: optional surrounding
/// whitespace, an optional minus sign, and a Number production
/// (`Digits ('.' Digits?)? | '.' Digits`). Any other content yields NaN.
double StringToXPathNumber(std::string_view s);

/// Formats `v` using the XPath 1.0 `string()` rules for numbers:
/// "NaN", "Infinity", "-Infinity", integers without a decimal point
/// (and without a sign for negative zero), and otherwise the shortest
/// decimal representation (never scientific notation) that round-trips.
std::string XPathNumberToString(double v);

/// XPath 1.0 `round()`: returns the integer closest to `v`; ties round
/// towards positive infinity. NaN, infinities, and signed zeros are
/// returned unchanged; values in (-0.5, -0) round to negative zero.
double XPathRound(double v);

}  // namespace natix

#endif  // NATIX_BASE_XPATH_NUMBER_H_
