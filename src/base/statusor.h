#ifndef NATIX_BASE_STATUSOR_H_
#define NATIX_BASE_STATUSOR_H_

#include <optional>
#include <utility>

#include "base/logging.h"
#include "base/status.h"

namespace natix {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    NATIX_CHECK(!status_.ok());
  }
  /// Constructs from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NATIX_CHECK(ok());
    return *value_;
  }
  T& value() & {
    NATIX_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    NATIX_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace natix

#endif  // NATIX_BASE_STATUSOR_H_
