#include "base/status.h"

namespace natix {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace natix
