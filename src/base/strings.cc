#include "base/strings.h"

#include <cstdint>

namespace natix {

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_run = false;
  for (char c : s) {
    if (IsXmlWhitespace(c)) {
      in_run = true;
    } else {
      if (in_run && !out.empty()) out.push_back(' ');
      in_run = false;
      out.push_back(c);
    }
  }
  return out;
}

uint32_t Utf8Decode(std::string_view s, size_t& i) {
  unsigned char b0 = static_cast<unsigned char>(s[i]);
  size_t remaining = s.size() - i;
  uint32_t cp = b0;
  size_t len = 1;
  if (b0 < 0x80) {
    len = 1;
  } else if ((b0 >> 5) == 0x6 && remaining >= 2) {
    cp = b0 & 0x1F;
    len = 2;
  } else if ((b0 >> 4) == 0xE && remaining >= 3) {
    cp = b0 & 0x0F;
    len = 3;
  } else if ((b0 >> 3) == 0x1E && remaining >= 4) {
    cp = b0 & 0x07;
    len = 4;
  } else {
    ++i;
    return b0;  // malformed: decode the single byte as itself
  }
  for (size_t k = 1; k < len; ++k) {
    unsigned char b = static_cast<unsigned char>(s[i + k]);
    if ((b >> 6) != 0x2) {
      ++i;
      return b0;  // malformed continuation
    }
    cp = (cp << 6) | (b & 0x3F);
  }
  i += len;
  return cp;
}

void Utf8Append(uint32_t cp, std::string& out) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string TranslateChars(std::string_view s, std::string_view from,
                           std::string_view to) {
  // Decode `from` and `to` into codepoint arrays once.
  std::vector<uint32_t> from_cps, to_cps;
  for (size_t i = 0; i < from.size();) from_cps.push_back(Utf8Decode(from, i));
  for (size_t i = 0; i < to.size();) to_cps.push_back(Utf8Decode(to, i));

  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    uint32_t cp = Utf8Decode(s, i);
    bool mapped = false;
    for (size_t k = 0; k < from_cps.size(); ++k) {
      if (from_cps[k] == cp) {
        // First occurrence in `from` wins (XPath 1.0 Sec. 4.2).
        if (k < to_cps.size()) Utf8Append(to_cps[k], out);
        mapped = true;
        break;
      }
    }
    if (!mapped) Utf8Append(cp, out);
  }
  return out;
}

std::string SubstringBefore(std::string_view s, std::string_view sub) {
  auto pos = s.find(sub);
  if (pos == std::string_view::npos) return "";
  return std::string(s.substr(0, pos));
}

std::string SubstringAfter(std::string_view s, std::string_view sub) {
  auto pos = s.find(sub);
  if (pos == std::string_view::npos) return "";
  return std::string(s.substr(pos + sub.size()));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool Contains(std::string_view s, std::string_view sub) {
  return s.find(sub) != std::string_view::npos;
}

size_t Utf8Length(std::string_view s) {
  size_t count = 0;
  for (size_t i = 0; i < s.size();) {
    Utf8Decode(s, i);
    ++count;
  }
  return count;
}

std::string Utf8Substring(std::string_view s, size_t start, size_t len) {
  std::string out;
  size_t index = 0;
  for (size_t i = 0; i < s.size() && index < start + len;) {
    size_t before = i;
    Utf8Decode(s, i);
    if (index >= start) out.append(s.substr(before, i - before));
    ++index;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsXmlWhitespace(s[i])) ++i;
    size_t begin = i;
    while (i < s.size() && !IsXmlWhitespace(s[i])) ++i;
    if (i > begin) tokens.emplace_back(s.substr(begin, i - begin));
  }
  return tokens;
}

}  // namespace natix
