#ifndef NATIX_BASE_STATUS_H_
#define NATIX_BASE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace natix {

/// Error categories used across the library. Modeled after the RocksDB /
/// Abseil status idiom: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input supplied by the caller
  kNotFound,          // a requested entity does not exist
  kCorruption,        // on-disk data failed an integrity check
  kIOError,           // the operating system reported an I/O failure
  kNotSupported,      // a feature outside XPath 1.0 / this build
  kInternal,          // an invariant of the library itself was violated
  kResourceExhausted, // a configured limit (e.g. buffer pool) was exceeded
  kDeadlineExceeded,  // a per-request deadline expired before completion
  kCancelled          // the caller cooperatively cancelled the execution
};

/// Stable symbolic name of a code ("InvalidArgument", ...). Serving
/// error payloads and logs key on these, so they are a contract.
const char* StatusCodeName(StatusCode code);

/// A Status is either OK or carries an error code plus a human-readable
/// message. It is cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(StatusCode::kCancelled, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define NATIX_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::natix::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value on success and
/// returning the error otherwise.
#define NATIX_ASSIGN_OR_RETURN(lhs, expr)      \
  auto NATIX_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!NATIX_CONCAT_(_sor_, __LINE__).ok())                \
    return NATIX_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(NATIX_CONCAT_(_sor_, __LINE__)).value()

#define NATIX_CONCAT_IMPL_(a, b) a##b
#define NATIX_CONCAT_(a, b) NATIX_CONCAT_IMPL_(a, b)

}  // namespace natix

#endif  // NATIX_BASE_STATUS_H_
