#ifndef NATIX_BASE_STRINGS_H_
#define NATIX_BASE_STRINGS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace natix {

/// True for the XML/XPath whitespace characters: space, tab, CR, LF.
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// XPath `normalize-space()`: strips leading/trailing whitespace and
/// collapses internal whitespace runs to a single space.
std::string NormalizeSpace(std::string_view s);

/// XPath `translate(s, from, to)`: replaces occurrences of characters in
/// `from` by the character at the same position in `to`; characters in
/// `from` without a counterpart in `to` are removed. Operates on Unicode
/// codepoints of UTF-8 input.
std::string TranslateChars(std::string_view s, std::string_view from,
                           std::string_view to);

/// XPath `substring-before` / `substring-after`. Empty result when `sub`
/// does not occur in `s`.
std::string SubstringBefore(std::string_view s, std::string_view sub);
std::string SubstringAfter(std::string_view s, std::string_view sub);

bool StartsWith(std::string_view s, std::string_view prefix);
bool Contains(std::string_view s, std::string_view sub);

/// Number of Unicode codepoints in UTF-8 string `s` (XPath string-length).
/// Malformed bytes each count as one codepoint.
size_t Utf8Length(std::string_view s);

/// Extracts codepoints [start, start+len) of `s` (0-based; XPath substring
/// uses 1-based positions — the caller converts). Clamped to the string.
std::string Utf8Substring(std::string_view s, size_t start, size_t len);

/// Splits `s` into maximal runs of non-whitespace (XPath id() tokenizing).
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Decodes the UTF-8 codepoint starting at s[i]; advances i past it.
/// Malformed bytes decode as themselves (one byte).
uint32_t Utf8Decode(std::string_view s, size_t& i);

/// Appends codepoint `cp` to `out` as UTF-8.
void Utf8Append(uint32_t cp, std::string& out);

}  // namespace natix

#endif  // NATIX_BASE_STRINGS_H_
