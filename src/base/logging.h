#ifndef NATIX_BASE_LOGGING_H_
#define NATIX_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace natix::internal_logging {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "NATIX_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace natix::internal_logging

/// Aborts the process when `cond` is false. Used for invariants that must
/// hold in release builds too (violations indicate library bugs, never user
/// errors — those are reported through Status).
#define NATIX_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::natix::internal_logging::CheckFailed(#cond, __FILE__, __LINE__);   \
  } while (0)

#ifdef NDEBUG
#define NATIX_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define NATIX_DCHECK(cond) NATIX_CHECK(cond)
#endif

#endif  // NATIX_BASE_LOGGING_H_
