#include "base/xpath_number.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace natix {

namespace {

bool IsXPathWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Converts a printf "%g"-style rendering (which may use scientific
/// notation) into the plain decimal notation XPath requires.
std::string ExpandScientific(const std::string& g) {
  auto e_pos = g.find_first_of("eE");
  if (e_pos == std::string::npos) return g;

  std::string mantissa = g.substr(0, e_pos);
  int exponent = std::atoi(g.c_str() + e_pos + 1);

  bool negative = false;
  if (!mantissa.empty() && (mantissa[0] == '-' || mantissa[0] == '+')) {
    negative = mantissa[0] == '-';
    mantissa.erase(0, 1);
  }
  std::string digits;
  int point = -1;  // index of the decimal point within `digits`
  for (char c : mantissa) {
    if (c == '.') {
      point = static_cast<int>(digits.size());
    } else {
      digits.push_back(c);
    }
  }
  if (point < 0) point = static_cast<int>(digits.size());
  point += exponent;

  std::string out;
  if (negative) out.push_back('-');
  if (point <= 0) {
    out += "0.";
    out.append(-point, '0');
    out += digits;
  } else if (point >= static_cast<int>(digits.size())) {
    out += digits;
    out.append(point - digits.size(), '0');
  } else {
    out += digits.substr(0, point);
    out.push_back('.');
    out += digits.substr(point);
  }
  // Trim a trailing decimal point or trailing fractional zeros.
  if (out.find('.') != std::string::npos) {
    while (out.back() == '0') out.pop_back();
    if (out.back() == '.') out.pop_back();
  }
  return out;
}

}  // namespace

double StringToXPathNumber(std::string_view s) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  size_t i = 0;
  size_t n = s.size();
  while (i < n && IsXPathWhitespace(s[i])) ++i;
  size_t end = n;
  while (end > i && IsXPathWhitespace(s[end - 1])) --end;
  if (i == end) return nan;

  size_t j = i;
  if (s[j] == '-') ++j;
  size_t int_digits = 0;
  while (j < end && IsDigit(s[j])) {
    ++j;
    ++int_digits;
  }
  size_t frac_digits = 0;
  if (j < end && s[j] == '.') {
    ++j;
    while (j < end && IsDigit(s[j])) {
      ++j;
      ++frac_digits;
    }
  }
  if (j != end) return nan;                       // trailing garbage
  if (int_digits == 0 && frac_digits == 0) return nan;  // "-", ".", "-."

  std::string buf(s.substr(i, end - i));
  return std::strtod(buf.c_str(), nullptr);
}

std::string XPathNumberToString(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Infinity" : "-Infinity";
  if (v == 0) return "0";  // covers negative zero, which prints unsigned

  // Integers are printed without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 1e17) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }

  // Shortest "%.*g" rendering that round-trips, expanded to plain decimal.
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return ExpandScientific(buf);
}

double XPathRound(double v) {
  if (std::isnan(v) || std::isinf(v) || v == 0) return v;
  // Ties round towards +Infinity; floor(v + 0.5) implements exactly that.
  double r = std::floor(v + 0.5);
  // Preserve the sign for results in (-0.5, 0]: XPath requires -0.
  if (r == 0 && v < 0) return -0.0;
  return r;
}

}  // namespace natix
