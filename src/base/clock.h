#ifndef NATIX_BASE_CLOCK_H_
#define NATIX_BASE_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace natix {

/// Monotonic steady-clock nanoseconds. Deliberately independent of
/// obs::MonotonicNowNs(): that one compiles to 0 under NATIX_OBS=OFF,
/// while deadlines and admission control (qe cancellation, src/server)
/// must keep real time in every build configuration.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace natix

#endif  // NATIX_BASE_CLOCK_H_
