#ifndef NATIX_OBS_LOCK_LEDGER_H_
#define NATIX_OBS_LOCK_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// Lock-order ledger: a runtime acquisition-order checker over the
// process's long-lived mutex classes (buffer-pool shards, the page
// allocator, the prepared-plan cache, natixd admission/connection state,
// the slow-query log). Every ledgered acquisition records a class-level
// edge held-class -> acquired-class; a cycle in that graph is a
// potential deadlock even if no execution has deadlocked yet. The only
// sanctioned multi-instance acquisition — BufferManager::Snapshot
// locking all shards — is covered by a same-class rule: instances of
// one class must be taken in ascending instance order.
//
// Modes (NATIX_LOCK_LEDGER environment variable, read once):
//   unset/"0"/"off"  kOff     zero work beyond one relaxed load
//   "1"/"record"     kRecord  edges + violations recorded, exported on
//                             /statusz ("lock_ledger")
//   "fail"           kFail    a cycle or same-class order violation
//                             aborts the process (CI hard-fail job)
//
// Zero-cost discipline (src/obs/stats.h): under NATIX_OBS_DISABLED the
// ledger collapses to inline no-ops and the guards become plain locks.

namespace natix::obs {

/// The instrumented mutex classes. Order is the documented acquisition
/// order for classes that nest today (shard after alloc in NewPage;
/// everything else is leaf-level).
enum class LockClass : uint8_t {
  kBufferAlloc = 0,   ///< BufferManager::alloc_mutex_
  kBufferShard = 1,   ///< BufferManager::Shard::mutex (instance = index)
  kPlanCache = 2,     ///< api::PlanCache::mutex_
  kAdmission = 3,     ///< server::Server::admission_mu_
  kServerConn = 4,    ///< server::Server::conn_mu_
  kSlowQueryLog = 5,  ///< obs::SlowQueryLog::mu_
};

inline constexpr int kLockClassCount = 6;

const char* LockClassName(LockClass cls);

#if !defined(NATIX_OBS_DISABLED)

/// The process-wide acquisition-order ledger. Acquired/Released maintain
/// a thread-local stack of held locks; edges and violation counts are
/// relaxed atomics, so recording never introduces ordering of its own.
class LockLedger {
 public:
  enum class Mode : int { kOff = 0, kRecord = 1, kFail = 2 };

  /// The global ledger; mode initialized from NATIX_LOCK_LEDGER on
  /// first use.
  static LockLedger& Global();

  Mode mode() const {
    return static_cast<Mode>(mode_.load(std::memory_order_relaxed));
  }
  void set_mode(Mode mode) {
    mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  }

  /// Records that the calling thread acquired `instance` of `cls`:
  /// one edge per lock currently held by this thread, the same-class
  /// ascending-instance check, and (kFail) the cycle check.
  void Acquired(LockClass cls, uintptr_t instance);

  /// Pops the (most recent) matching hold from the thread's stack.
  void Released(LockClass cls, uintptr_t instance);

  /// Whether the recorded class graph contains a cycle (self-edges
  /// excluded — same-class nesting is policed by instance order).
  bool HasCycle() const;

  /// Every elementary cycle through the recorded edges, rendered as
  /// "a -> b -> a" strings (deterministic order; empty when acyclic).
  std::vector<std::string> Cycles() const;

  /// Same-class acquisitions taken out of ascending instance order.
  uint64_t order_violations() const {
    return order_violations_.load(std::memory_order_relaxed);
  }

  /// JSON for /statusz: mode, recorded edges with counts, cycles,
  /// order-violation count.
  std::string GraphJson() const;

  /// Clears edges and violation counts (tests). Held-stacks of live
  /// threads are untouched.
  void Reset();

 private:
  LockLedger();

  std::atomic<uint64_t> edges_[kLockClassCount][kLockClassCount] = {};
  std::atomic<uint64_t> order_violations_{0};
  std::atomic<int> mode_{0};
};

/// std::lock_guard with ledger bookkeeping. `instance` disambiguates
/// same-class instances (shard index); defaults to the mutex address,
/// which is ascending for shards stored in one vector anyway.
class LedgeredMutexLock {
 public:
  LedgeredMutexLock(std::mutex& mu, LockClass cls, uintptr_t instance = 0)
      : mu_(mu),
        cls_(cls),
        instance_(instance != 0 ? instance
                                : reinterpret_cast<uintptr_t>(&mu)) {
    mu_.lock();
    LockLedger::Global().Acquired(cls_, instance_);
  }
  ~LedgeredMutexLock() {
    LockLedger::Global().Released(cls_, instance_);
    mu_.unlock();
  }
  LedgeredMutexLock(const LedgeredMutexLock&) = delete;
  LedgeredMutexLock& operator=(const LedgeredMutexLock&) = delete;

 private:
  std::mutex& mu_;
  LockClass cls_;
  uintptr_t instance_;
};

/// std::unique_lock variant for condition-variable waits. The hold is
/// ledgered for the full scope: a waiting thread acquires nothing else,
/// so the transient release inside wait() cannot order against anything.
class LedgeredUniqueLock {
 public:
  LedgeredUniqueLock(std::mutex& mu, LockClass cls, uintptr_t instance = 0)
      : lock_(mu),
        cls_(cls),
        instance_(instance != 0 ? instance
                                : reinterpret_cast<uintptr_t>(&mu)) {
    LockLedger::Global().Acquired(cls_, instance_);
  }
  ~LedgeredUniqueLock() { LockLedger::Global().Released(cls_, instance_); }
  LedgeredUniqueLock(const LedgeredUniqueLock&) = delete;
  LedgeredUniqueLock& operator=(const LedgeredUniqueLock&) = delete;

  std::unique_lock<std::mutex>& lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
  LockClass cls_;
  uintptr_t instance_;
};

#else  // NATIX_OBS_DISABLED: plain locks, same surface.

class LockLedger {
 public:
  enum class Mode : int { kOff = 0, kRecord = 1, kFail = 2 };
  static LockLedger& Global() {
    static LockLedger ledger;
    return ledger;
  }
  Mode mode() const { return Mode::kOff; }
  void set_mode(Mode) {}
  void Acquired(LockClass, uintptr_t) {}
  void Released(LockClass, uintptr_t) {}
  bool HasCycle() const { return false; }
  std::vector<std::string> Cycles() const { return {}; }
  uint64_t order_violations() const { return 0; }
  std::string GraphJson() const { return "{\"disabled\":true}"; }
  void Reset() {}
};

class LedgeredMutexLock {
 public:
  LedgeredMutexLock(std::mutex& mu, LockClass, uintptr_t = 0) : lock_(mu) {}

 private:
  std::lock_guard<std::mutex> lock_;
};

class LedgeredUniqueLock {
 public:
  LedgeredUniqueLock(std::mutex& mu, LockClass, uintptr_t = 0) : lock_(mu) {}
  std::unique_lock<std::mutex>& lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

#endif  // NATIX_OBS_DISABLED

}  // namespace natix::obs

#endif  // NATIX_OBS_LOCK_LEDGER_H_
