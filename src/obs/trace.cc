#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace natix::obs {

namespace {

/// JSON string escaping for span details (query text can hold quotes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceEventsToJson(const std::vector<TraceEvent>& events) {
  // Chrome trace_event format, "complete" events: ts/dur are
  // microseconds (fractional part keeps the nanosecond precision).
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"natix\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  JsonEscape(e.name).c_str(), e.tid,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
    if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":\"" + JsonEscape(e.detail) + "\"}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

#if !defined(NATIX_OBS_DISABLED)

namespace {

/// Runaway guard: a trace left running across a long benchmark stops
/// growing at this many events (drops are counted, not silent).
constexpr size_t kMaxEvents = 1u << 20;

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread span-stack depth; lets tests assert nesting without
/// reconstructing containment from timestamps.
thread_local uint32_t t_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: spans may close at exit
  return *tracer;
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(MonotonicNs(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

uint64_t Tracer::NowNs() const {
  uint64_t now = MonotonicNs();
  uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return now >= epoch ? now - epoch : 0;
}

std::vector<TraceEvent> Tracer::Stop() {
  active_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

std::string Tracer::StopJson() { return TraceEventsToJson(Stop()); }

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return;  // stopped mid-span
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

ScopedSpan::ScopedSpan(const char* name, std::string_view detail) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.active()) return;  // the untraced fast path: one load
  name_ = name;
  detail_ = std::string(detail);
  begin_ns_ = tracer.NowNs();
  depth_ = t_span_depth++;
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  --t_span_depth;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = name_;
  event.detail = std::move(detail_);
  event.start_ns = begin_ns_;
  uint64_t end = tracer.NowNs();
  event.dur_ns = end >= begin_ns_ ? end - begin_ns_ : 0;
  event.tid = ThisThreadId();
  event.depth = depth_;
  tracer.Record(std::move(event));
}

#endif  // !NATIX_OBS_DISABLED

}  // namespace natix::obs
