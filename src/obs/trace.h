#ifndef NATIX_OBS_TRACE_H_
#define NATIX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Hierarchical span tracing for the compile pipeline (the Sec. 5.1
// phases: parse, sema, fold, normalize, translate, rewrite, verify,
// codegen) and the executor (open / materialize / first-next / drain),
// exported as Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.
//
// Zero-cost discipline follows src/obs/stats.h: under NATIX_OBS_DISABLED
// every span compiles to an empty object; otherwise a span on an
// untraced process costs one relaxed atomic load per scope (no clock
// read, no allocation). Events are recorded when a span closes, so
// spans still open when tracing stops are dropped.

namespace natix::obs {

/// One completed span: becomes a Chrome trace_event "complete" event
/// ("ph":"X"). Nesting is implied by containment of [start, start+dur)
/// within one thread, which the RAII discipline guarantees.
struct TraceEvent {
  const char* name = "";  ///< static span name (taxonomy in docs/OBSERVABILITY.md)
  std::string detail;     ///< optional payload, rendered as args.detail
  uint64_t start_ns = 0;  ///< relative to Tracer start
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< small sequential thread id, stable per thread
  uint32_t depth = 0;  ///< span-stack depth at entry (0 = top level)
};

/// Renders events as Chrome trace JSON: {"traceEvents": [...]}.
std::string TraceEventsToJson(const std::vector<TraceEvent>& events);

#if !defined(NATIX_OBS_DISABLED)

/// The process-wide span collector. Started/stopped through
/// Database::StartTrace()/StopTrace() or natixq --trace=out.json;
/// thread-safe (spans from concurrent queries interleave by thread id).
class Tracer {
 public:
  static Tracer& Global();

  /// Starts a new trace, discarding any previously collected events.
  void Start();

  /// Acquire pairs with the release store in Start(), making epoch_ns_
  /// visible to spans that observe the trace as active.
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Stops tracing and returns the collected events in emission
  /// (span-close) order. No-op empty result when not tracing.
  std::vector<TraceEvent> Stop();

  /// Stop() rendered as Chrome trace JSON.
  std::string StopJson();

  /// Spans dropped because the event buffer was full (runaway guard).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  friend class ScopedSpan;

  /// Nanoseconds since trace start (monotonic clock).
  uint64_t NowNs() const;
  void Record(TraceEvent event);

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> epoch_ns_{0};  ///< clock value at Start()
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Constructed cheaply when tracing is inactive (one relaxed
/// load, no copy of `detail`); when active it captures the clock on
/// entry and records one TraceEvent on exit. `name` must outlive the
/// trace (string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, {}) {}
  ScopedSpan(const char* name, std::string_view detail);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null: tracing was inactive at entry
  std::string detail_;
  uint64_t begin_ns_ = 0;
  uint32_t depth_ = 0;
};

#else  // NATIX_OBS_DISABLED: every call site compiles to nothing.

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Start() {}
  bool active() const { return false; }
  std::vector<TraceEvent> Stop() { return {}; }
  std::string StopJson() { return TraceEventsToJson({}); }
  uint64_t dropped() const { return 0; }
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const char*, std::string_view) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // NATIX_OBS_DISABLED

}  // namespace natix::obs

#endif  // NATIX_OBS_TRACE_H_
