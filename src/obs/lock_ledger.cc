#include "obs/lock_ledger.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace natix::obs {

const char* LockClassName(LockClass cls) {
  switch (cls) {
    case LockClass::kBufferAlloc:
      return "buffer_alloc";
    case LockClass::kBufferShard:
      return "buffer_shard";
    case LockClass::kPlanCache:
      return "plan_cache";
    case LockClass::kAdmission:
      return "admission";
    case LockClass::kServerConn:
      return "server_conn";
    case LockClass::kSlowQueryLog:
      return "slow_query_log";
  }
  return "unknown";
}

#if !defined(NATIX_OBS_DISABLED)

namespace {

struct HeldLock {
  LockClass cls;
  uintptr_t instance;
};

std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

}  // namespace

LockLedger::LockLedger() {
  const char* env = std::getenv("NATIX_LOCK_LEDGER");
  Mode mode = Mode::kOff;
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0 &&
      std::strcmp(env, "off") != 0) {
    mode = std::strcmp(env, "fail") == 0 ? Mode::kFail : Mode::kRecord;
  }
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
}

LockLedger& LockLedger::Global() {
  static LockLedger ledger;
  return ledger;
}

void LockLedger::Acquired(LockClass cls, uintptr_t instance) {
  if (mode() == Mode::kOff) return;
  std::vector<HeldLock>& held = HeldStack();
  bool out_of_order = false;
  for (const HeldLock& h : held) {
    edges_[static_cast<int>(h.cls)][static_cast<int>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    // Same-class instances must be taken in ascending instance order
    // (BufferManager::Snapshot's shard-index order is the template).
    if (h.cls == cls && instance <= h.instance) out_of_order = true;
  }
  if (out_of_order) {
    order_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (mode() == Mode::kFail && !held.empty() &&
      (out_of_order || HasCycle())) {
    std::fprintf(stderr,
                 "lock ledger: ordering violation acquiring %s"
                 " (instance %zu) while holding %s — %s\n%s\n",
                 LockClassName(cls), static_cast<size_t>(instance),
                 LockClassName(held.back().cls),
                 out_of_order ? "same-class locks out of ascending order"
                              : "acquisition graph has a cycle",
                 GraphJson().c_str());
    std::abort();
  }
  held.push_back({cls, instance});
}

void LockLedger::Released(LockClass cls, uintptr_t instance) {
  if (mode() == Mode::kOff) return;
  std::vector<HeldLock>& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].cls == cls && held[i - 1].instance == instance) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

namespace {

/// DFS three-coloring over the class graph; self-edges are skipped
/// (same-class order is policed by instance, not by the graph).
bool CycleFrom(const std::atomic<uint64_t> (&edges)[kLockClassCount]
                                                   [kLockClassCount],
               int node, int color[kLockClassCount],
               std::vector<int>* path) {
  color[node] = 1;
  if (path != nullptr) path->push_back(node);
  for (int next = 0; next < kLockClassCount; ++next) {
    if (next == node) continue;
    if (edges[node][next].load(std::memory_order_relaxed) == 0) continue;
    if (color[next] == 1) {
      if (path != nullptr) path->push_back(next);
      return true;
    }
    if (color[next] == 0 && CycleFrom(edges, next, color, path)) return true;
  }
  color[node] = 2;
  if (path != nullptr) path->pop_back();
  return false;
}

}  // namespace

bool LockLedger::HasCycle() const {
  int color[kLockClassCount] = {};
  for (int n = 0; n < kLockClassCount; ++n) {
    if (color[n] == 0 && CycleFrom(edges_, n, color, nullptr)) return true;
  }
  return false;
}

std::vector<std::string> LockLedger::Cycles() const {
  std::vector<std::string> out;
  int color[kLockClassCount] = {};
  for (int n = 0; n < kLockClassCount; ++n) {
    if (color[n] != 0) continue;
    std::vector<int> path;
    if (!CycleFrom(edges_, n, color, &path)) continue;
    // The path ends with the node that closed the cycle; trim the
    // acyclic prefix so the rendering is just the loop.
    int closer = path.back();
    size_t start = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == closer) {
        start = i;
        break;
      }
    }
    std::string cycle;
    for (size_t i = start; i < path.size(); ++i) {
      if (i > start) cycle += " -> ";
      cycle += LockClassName(static_cast<LockClass>(path[i]));
    }
    out.push_back(std::move(cycle));
  }
  return out;
}

std::string LockLedger::GraphJson() const {
  std::string out = "{\"mode\":\"";
  switch (mode()) {
    case Mode::kOff:
      out += "off";
      break;
    case Mode::kRecord:
      out += "record";
      break;
    case Mode::kFail:
      out += "fail";
      break;
  }
  out += "\",\"edges\":[";
  bool first = true;
  for (int from = 0; from < kLockClassCount; ++from) {
    for (int to = 0; to < kLockClassCount; ++to) {
      uint64_t count = edges_[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"from\":\"";
      out += LockClassName(static_cast<LockClass>(from));
      out += "\",\"to\":\"";
      out += LockClassName(static_cast<LockClass>(to));
      out += "\",\"count\":" + std::to_string(count) + "}";
    }
  }
  out += "],\"cycles\":[";
  const std::vector<std::string> cycles = Cycles();
  for (size_t i = 0; i < cycles.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + cycles[i] + "\"";
  }
  out += "],\"order_violations\":" + std::to_string(order_violations()) +
         "}";
  return out;
}

void LockLedger::Reset() {
  for (auto& row : edges_) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
  order_violations_.store(0, std::memory_order_relaxed);
}

#endif  // !NATIX_OBS_DISABLED

}  // namespace natix::obs
