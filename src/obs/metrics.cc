#include "obs/metrics.h"

#include "obs/lock_ledger.h"

#if !defined(NATIX_OBS_DISABLED)

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace natix::obs {

namespace {

void AppendHistogramJson(std::string* out, const char* name,
                         const LatencyHistogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                ",\"p99\":%" PRIu64 ",\"buckets\":[",
                name, h.count(), h.sum(), h.max(), h.Percentile(0.50),
                h.Percentile(0.90), h.Percentile(0.99));
  *out += buf;
  bool first = true;
  for (const auto& [bucket, count] : h.NonZeroBuckets()) {
    if (!first) *out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "[%d,%" PRIu64 "]", bucket, count);
    *out += buf;
  }
  *out += "]}";
}

void AppendHistogramText(std::string* out, const char* name,
                         const LatencyHistogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  %-18s count=%-8" PRIu64 " p50=%-10" PRIu64
                " p90=%-10" PRIu64 " p99=%-10" PRIu64 " max=%" PRIu64 "\n",
                name, h.count(), h.Percentile(0.50), h.Percentile(0.90),
                h.Percentile(0.99), h.max());
  *out += buf;
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void LatencyHistogram::Record(uint64_t value) {
  int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket >= kBuckets ? kBuckets - 1 : bucket].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::BucketLowerBound(int b) {
  return b <= 0 ? 0 : uint64_t{1} << (b - 1);
}

uint64_t LatencyHistogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

uint64_t LatencyHistogram::Percentile(double q) const {
  // Snapshot the buckets once; concurrent Records make the answer
  // approximate, which is all a percentile over log buckets claims.
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The continuous rank q * total, interpolated linearly inside the
  // containing bucket — the estimator Prometheus's histogram_quantile()
  // applies to the same buckets, so the native p50/p90/p99 and the
  // scrape-side quantiles agree instead of collapsing to a bucket edge.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double here = static_cast<double>(counts[b]);
    if (cumulative + here >= rank) {
      const uint64_t lower = BucketLowerBound(b);
      const uint64_t upper = BucketUpperBound(b);
      double fraction = (rank - cumulative) / here;
      if (fraction < 0) fraction = 0;
      // Clamped so the top bucket can't overshoot the observed max.
      uint64_t value =
          lower + static_cast<uint64_t>(
                      static_cast<double>(upper - lower) * fraction);
      return value > max() ? max() : value;
    }
    cumulative += here;
  }
  return max();
}

std::vector<std::pair<int, uint64_t>> LatencyHistogram::NonZeroBuckets()
    const {
  std::vector<std::pair<int, uint64_t>> out;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t count = buckets_[b].load(std::memory_order_relaxed);
    if (count > 0) out.emplace_back(b, count);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  LedgeredMutexLock lock(mu_, LockClass::kSlowQueryLog);
  entry.sequence = total_.fetch_add(1, std::memory_order_relaxed) + 1;
  entries_.push_back(std::move(entry));
  while (entries_.size() > kDefaultCapacity) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Dump() const {
  std::vector<SlowQueryEntry> out;
  {
    LedgeredMutexLock lock(mu_, LockClass::kSlowQueryLog);
    out.assign(entries_.begin(), entries_.end());
  }
  // Record appends under the same mutex, so the ring is already ordered;
  // the explicit sort makes the monotonic-order contract independent of
  // that implementation detail (and of future lock-free admission).
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

std::string SlowQueryLog::RenderText() const {
  std::vector<SlowQueryEntry> entries = Dump();
  std::string out;
  char buf[192];
  uint64_t threshold = threshold_ns();
  if (threshold == kDisabled) {
    out += "slow-query log: disabled (no threshold set)\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf),
                "slow-query log: threshold=%.3fms, %" PRIu64
                " logged, %zu retained\n",
                static_cast<double>(threshold) / 1e6, total_logged(),
                entries.size());
  out += buf;
  for (const SlowQueryEntry& e : entries) {
    std::snprintf(buf, sizeof(buf),
                  "#%" PRIu64 " exec=%.3fms page_faults=%" PRIu64
                  " tuples=%" PRIu64 " query: ",
                  e.sequence, static_cast<double>(e.exec_ns) / 1e6,
                  e.page_faults, e.tuples);
    out += buf;
    out += e.xpath;
    out += "\n";
    if (!e.analyze.empty()) {
      // The EXPLAIN ANALYZE tree, indented under its entry.
      size_t start = 0;
      while (start < e.analyze.size()) {
        size_t end = e.analyze.find('\n', start);
        if (end == std::string::npos) end = e.analyze.size();
        out += "    ";
        out.append(e.analyze, start, end - start);
        out += "\n";
        start = end + 1;
      }
    }
  }
  return out;
}

void SlowQueryLog::Clear() {
  LedgeredMutexLock lock(mu_, LockClass::kSlowQueryLog);
  entries_.clear();
  total_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::string out = "{\"histograms\":{";
  AppendHistogramJson(&out, "compile_ns", compile_ns);
  out += ",";
  AppendHistogramJson(&out, "exec_ns", exec_ns);
  out += ",";
  AppendHistogramJson(&out, "pages_per_query", pages_per_query);
  out += ",";
  AppendHistogramJson(&out, "tuples_per_query", tuples_per_query);
  out += ",";
  AppendHistogramJson(&out, "queue_wait_ns", queue_wait_ns);
  out += "},\"counters\":{";
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "\"queries_compiled\":%" PRIu64
                ",\"queries_executed\":%" PRIu64
                ",\"compile_errors\":%" PRIu64 ",\"exec_errors\":%" PRIu64
                ",\"slow_queries\":%" PRIu64
                ",\"plan_cache_hits\":%" PRIu64
                ",\"plan_cache_misses\":%" PRIu64
                ",\"nvm_insns_retired\":%" PRIu64
                ",\"early_exits\":%" PRIu64
                ",\"deadline_exceeded\":%" PRIu64
                ",\"queries_cancelled\":%" PRIu64
                ",\"requests_rejected\":%" PRIu64
                ",\"http_requests\":%" PRIu64
                "},\"gauges\":{\"queue_depth\":%" PRId64
                ",\"requests_in_flight\":%" PRId64 "}}",
                queries_compiled.value(), queries_executed.value(),
                compile_errors.value(), exec_errors.value(),
                slow_queries.value(), plan_cache_hits.value(),
                plan_cache_misses.value(), nvm_insns_retired.value(),
                early_exits.value(), deadline_exceeded.value(),
                queries_cancelled.value(), requests_rejected.value(),
                http_requests.value(), queue_depth.value(),
                requests_in_flight.value());
  out += buf;
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::string out = "metrics (ns unless noted):\n";
  AppendHistogramText(&out, "compile_ns", compile_ns);
  AppendHistogramText(&out, "exec_ns", exec_ns);
  AppendHistogramText(&out, "pages_per_query", pages_per_query);
  AppendHistogramText(&out, "tuples_per_query", tuples_per_query);
  AppendHistogramText(&out, "queue_wait_ns", queue_wait_ns);
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "  counters: queries_compiled=%" PRIu64
                " queries_executed=%" PRIu64 " compile_errors=%" PRIu64
                " exec_errors=%" PRIu64 " slow_queries=%" PRIu64
                " plan_cache_hits=%" PRIu64 " plan_cache_misses=%" PRIu64
                " nvm_insns_retired=%" PRIu64 " early_exits=%" PRIu64
                " deadline_exceeded=%" PRIu64 " queries_cancelled=%" PRIu64
                " requests_rejected=%" PRIu64 " http_requests=%" PRIu64
                "\n  gauges: queue_depth=%" PRId64
                " requests_in_flight=%" PRId64 "\n",
                queries_compiled.value(), queries_executed.value(),
                compile_errors.value(), exec_errors.value(),
                slow_queries.value(), plan_cache_hits.value(),
                plan_cache_misses.value(), nvm_insns_retired.value(),
                early_exits.value(), deadline_exceeded.value(),
                queries_cancelled.value(), requests_rejected.value(),
                http_requests.value(), queue_depth.value(),
                requests_in_flight.value());
  out += buf;
  return out;
}

void MetricsRegistry::Reset() {
  compile_ns.Reset();
  exec_ns.Reset();
  pages_per_query.Reset();
  tuples_per_query.Reset();
  queue_wait_ns.Reset();
  queries_compiled.Reset();
  queries_executed.Reset();
  compile_errors.Reset();
  exec_errors.Reset();
  slow_queries.Reset();
  plan_cache_hits.Reset();
  plan_cache_misses.Reset();
  nvm_insns_retired.Reset();
  early_exits.Reset();
  deadline_exceeded.Reset();
  queries_cancelled.Reset();
  requests_rejected.Reset();
  http_requests.Reset();
  queue_depth.Reset();
  requests_in_flight.Reset();
  slow_log_.Clear();
}

}  // namespace natix::obs

#else  // NATIX_OBS_DISABLED

// TraceEventsToJson lives in trace.cc and stays available; the metrics
// registry is header-only stubs in this configuration.

#endif  // NATIX_OBS_DISABLED
