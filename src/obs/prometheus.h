#ifndef NATIX_OBS_PROMETHEUS_H_
#define NATIX_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

// Prometheus text exposition (format version 0.0.4) of the process-wide
// MetricsRegistry, served by the natixd /metrics endpoint and scrapeable
// by a stock Prometheus. Counters render as `natix_<name>_total`,
// gauges as `natix_<name>`, and LatencyHistograms as native cumulative
// histograms: one `_bucket{le="..."}` series per log2 bucket upper
// bound plus `le="+Inf"`, with exact `_sum` and `_count` so
// histogram_quantile() on the scrape side agrees with the in-process
// Percentile() estimator (both interpolate linearly at rank q * count
// inside the containing bucket).
//
// Zero-cost discipline (src/obs/stats.h): under NATIX_OBS_DISABLED
// RenderPrometheus collapses to the `{"disabled":true}` stub the JSON
// snapshot also serves, and the append helpers become no-ops.

namespace natix::obs {

/// MIME type of the exposition format (the /metrics Content-Type).
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

#if !defined(NATIX_OBS_DISABLED)

/// Appends `# HELP` / `# TYPE` / sample lines for one counter.
void AppendPrometheusCounter(std::string* out, std::string_view name,
                             std::string_view help, uint64_t value);

/// Appends one gauge (instantaneous value, may go down).
void AppendPrometheusGauge(std::string* out, std::string_view name,
                           std::string_view help, int64_t value);

/// Appends one LatencyHistogram as a cumulative Prometheus histogram.
void AppendPrometheusHistogram(std::string* out, std::string_view name,
                               std::string_view help,
                               const LatencyHistogram& histogram);

/// The full registry in exposition format (every histogram, counter and
/// gauge of the MetricsRegistry contract, `natix_` prefixed).
std::string RenderPrometheus(const MetricsRegistry& registry);

#else  // NATIX_OBS_DISABLED: the serving surface stays linkable.

inline void AppendPrometheusCounter(std::string*, std::string_view,
                                    std::string_view, uint64_t) {}
inline void AppendPrometheusGauge(std::string*, std::string_view,
                                  std::string_view, int64_t) {}
inline void AppendPrometheusHistogram(std::string*, std::string_view,
                                      std::string_view,
                                      const LatencyHistogram&) {}
inline std::string RenderPrometheus(const MetricsRegistry&) {
  return "{\"disabled\":true}";
}

#endif  // NATIX_OBS_DISABLED

}  // namespace natix::obs

#endif  // NATIX_OBS_PROMETHEUS_H_
