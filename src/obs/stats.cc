#include "obs/stats.h"

#include <cinttypes>
#include <cstdio>

#include "storage/buffer_manager.h"

namespace natix::obs {

namespace {

uint64_t Saturating(uint64_t total, uint64_t sub) {
  return total >= sub ? total - sub : 0;
}

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, name, value);
  *out += buf;
}

/// JSON string escaping for operator labels (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BufferCounters CaptureBufferCounters(const storage::BufferManager* buffer) {
  BufferCounters out;
  if (buffer == nullptr) return out;
  out.page_reads = buffer->fault_count();
  out.page_hits = buffer->hit_count();
  out.page_writes = buffer->write_count();
  out.evictions = buffer->eviction_count();
  return out;
}

BufferCounters SnapshotBufferCounters(const storage::BufferManager* buffer) {
  BufferCounters out;
  if (buffer == nullptr) return out;
  // One coherent snapshot (all shard locks held) instead of four
  // independent relaxed reads: per-query deltas computed from two
  // captures can't tear across pool stripes while other queries run.
  storage::BufferManager::CounterSnapshot snap = buffer->Snapshot();
  out.page_reads = snap.faults;
  out.page_hits = snap.hits;
  out.page_writes = snap.writes;
  out.evictions = snap.evictions;
  return out;
}

uint64_t OpStats::exclusive_ns() const {
  uint64_t child_ns = 0;
  for (const OpStats* c : children) child_ns += c->inclusive_ns;
  return Saturating(inclusive_ns, child_ns);
}

uint64_t OpStats::exclusive_page_reads() const {
  uint64_t child = 0;
  for (const OpStats* c : children) child += c->inclusive_page_reads;
  return Saturating(inclusive_page_reads, child);
}

uint64_t OpStats::exclusive_page_hits() const {
  uint64_t child = 0;
  for (const OpStats* c : children) child += c->inclusive_page_hits;
  return Saturating(inclusive_page_hits, child);
}

OpStats* QueryStats::NewOp(std::string label) {
  ops_.emplace_back();
  ops_.back().label = std::move(label);
  return &ops_.back();
}

StatsTotals QueryStats::ComputeTotals() const {
  StatsTotals totals;
  for (const OpStats& op : ops_) {
    totals.open_calls += op.open_calls;
    totals.next_calls += op.next_calls;
    totals.tuples += op.tuples;
    totals.memo_hits += op.memo_hits;
    totals.memo_misses += op.memo_misses;
    totals.spooled_rows += op.spooled_rows;
    totals.replayed_rows += op.replayed_rows;
    totals.cache_hits += op.cache_hits;
    totals.agg_evals += op.agg_evals;
    totals.agg_input += op.agg_input;
    totals.early_exits += op.early_exits;
  }
  return totals;
}

namespace {

void RenderNode(const OpStats& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (op.nested) *out += "nested ";
  *out += op.label;
  *out += " (";
  // Always-present generic counters (names are the stable contract).
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "open=%" PRIu64 " next=%" PRIu64 " tuples=%" PRIu64,
                  op.open_calls, op.next_calls, op.tuples);
    *out += buf;
    std::snprintf(buf, sizeof(buf), " exclusive_ms=%.3f",
                  static_cast<double>(op.exclusive_ns()) / 1e6);
    *out += buf;
  }
  AppendCounter(out, "page_reads", op.exclusive_page_reads());
  AppendCounter(out, "page_hits", op.exclusive_page_hits());
  // Family counters, printed only when the operator touched them.
  if (op.memo_hits + op.memo_misses > 0) {
    AppendCounter(out, "memo_hits", op.memo_hits);
    AppendCounter(out, "memo_misses", op.memo_misses);
  }
  if (op.spooled_rows > 0) AppendCounter(out, "spooled", op.spooled_rows);
  if (op.replayed_rows > 0) AppendCounter(out, "replayed", op.replayed_rows);
  if (op.groups > 0) AppendCounter(out, "groups", op.groups);
  if (op.cache_hits + op.cache_misses > 0) {
    AppendCounter(out, "cache_hits", op.cache_hits);
    AppendCounter(out, "cache_misses", op.cache_misses);
  }
  if (op.agg_evals > 0) {
    AppendCounter(out, "agg_evals", op.agg_evals);
    AppendCounter(out, "agg_input", op.agg_input);
  }
  if (op.early_exits > 0) AppendCounter(out, "early_exits", op.early_exits);
  *out += ")\n";
  for (const OpStats* c : op.children) RenderNode(*c, depth + 1, out);
}

void JsonNode(const OpStats& op, std::string* out) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"%s\",\"nested\":%s,\"open\":%" PRIu64
      ",\"next\":%" PRIu64 ",\"close\":%" PRIu64 ",\"tuples\":%" PRIu64
      ",\"inclusive_ns\":%" PRIu64 ",\"exclusive_ns\":%" PRIu64
      ",\"page_reads\":%" PRIu64 ",\"page_hits\":%" PRIu64
      ",\"memo_hits\":%" PRIu64 ",\"memo_misses\":%" PRIu64
      ",\"spooled\":%" PRIu64 ",\"replayed\":%" PRIu64 ",\"groups\":%" PRIu64
      ",\"cache_hits\":%" PRIu64 ",\"cache_misses\":%" PRIu64
      ",\"agg_evals\":%" PRIu64 ",\"agg_input\":%" PRIu64
      ",\"early_exits\":%" PRIu64 ",\"children\":[",
      JsonEscape(op.label).c_str(), op.nested ? "true" : "false",
      op.open_calls, op.next_calls, op.close_calls, op.tuples,
      op.inclusive_ns, op.exclusive_ns(), op.exclusive_page_reads(),
      op.exclusive_page_hits(), op.memo_hits, op.memo_misses,
      op.spooled_rows, op.replayed_rows, op.groups, op.cache_hits,
      op.cache_misses, op.agg_evals, op.agg_input, op.early_exits);
  *out += buf;
  for (size_t i = 0; i < op.children.size(); ++i) {
    if (i > 0) *out += ",";
    JsonNode(*op.children[i], out);
  }
  *out += "]}";
}

}  // namespace

std::string QueryStats::RenderAnalyze() const {
  std::string out;
  if (root_ == nullptr) {
    return "EXPLAIN ANALYZE unavailable (stats collection was off)\n";
  }
  RenderNode(*root_, 0, &out);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "buffer: page_reads=%" PRIu64 " page_hits=%" PRIu64
                " page_writes=%" PRIu64 " evictions=%" PRIu64 "\n",
                buffer_.page_reads, buffer_.page_hits, buffer_.page_writes,
                buffer_.evictions);
  out += buf;
  return out;
}

std::string QueryStats::ToJson() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "{\"executions\":%" PRIu64
                ",\"buffer\":{\"page_reads\":%" PRIu64
                ",\"page_hits\":%" PRIu64 ",\"page_writes\":%" PRIu64
                ",\"evictions\":%" PRIu64 "},\"plan\":",
                executions_, buffer_.page_reads, buffer_.page_hits,
                buffer_.page_writes, buffer_.evictions);
  out += buf;
  if (root_ == nullptr) {
    out += "null";
  } else {
    JsonNode(*root_, &out);
  }
  out += "}";
  return out;
}

void QueryStats::Reset() {
  for (OpStats& op : ops_) {
    // Preserve identity (label, nesting, children, buffer source); zero
    // the counters.
    op.open_calls = op.next_calls = op.close_calls = 0;
    op.tuples = 0;
    op.inclusive_ns = 0;
    op.inclusive_page_reads = op.inclusive_page_hits = 0;
    op.memo_hits = op.memo_misses = 0;
    op.spooled_rows = op.replayed_rows = op.groups = 0;
    op.cache_hits = op.cache_misses = 0;
    op.agg_evals = op.agg_input = op.early_exits = 0;
  }
  buffer_ = BufferCounters{};
  executions_ = 0;
}

const OpStats* QueryStats::FindOp(const std::string& prefix) const {
  for (const OpStats& op : ops_) {
    if (op.label.rfind(prefix, 0) == 0) return &op;
  }
  return nullptr;
}

ScopedOpTimer::ScopedOpTimer(OpStats* stats)
    : stats_(stats), begin_(std::chrono::steady_clock::now()) {
  if (stats_->buffer != nullptr) {
    buffer_begin_ = CaptureBufferCounters(stats_->buffer);
  }
}

ScopedOpTimer::~ScopedOpTimer() {
  auto end = std::chrono::steady_clock::now();
  stats_->inclusive_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin_)
          .count());
  if (stats_->buffer != nullptr) {
    BufferCounters now = CaptureBufferCounters(stats_->buffer);
    stats_->inclusive_page_reads += now.page_reads - buffer_begin_.page_reads;
    stats_->inclusive_page_hits += now.page_hits - buffer_begin_.page_hits;
  }
}

}  // namespace natix::obs
