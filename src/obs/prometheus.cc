#include "obs/prometheus.h"

#if !defined(NATIX_OBS_DISABLED)

#include <cinttypes>
#include <cstdio>

namespace natix::obs {

namespace {

void AppendMeta(std::string* out, std::string_view name,
                std::string_view help, const char* type) {
  *out += "# HELP ";
  *out += name;
  *out += " ";
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " ";
  *out += type;
  *out += "\n";
}

}  // namespace

void AppendPrometheusCounter(std::string* out, std::string_view name,
                             std::string_view help, uint64_t value) {
  AppendMeta(out, name, help, "counter");
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  *out += name;
  *out += buf;
}

void AppendPrometheusGauge(std::string* out, std::string_view name,
                           std::string_view help, int64_t value) {
  AppendMeta(out, name, help, "gauge");
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
  *out += name;
  *out += buf;
}

void AppendPrometheusHistogram(std::string* out, std::string_view name,
                               std::string_view help,
                               const LatencyHistogram& histogram) {
  AppendMeta(out, name, help, "histogram");
  char buf[96];
  // Cumulative counts over the non-empty log2 buckets; the `le` label is
  // the bucket's inclusive upper value bound. The top bucket (index 63)
  // has no finite bound and folds into `+Inf`. Each populated bucket is
  // preceded by the boundary just below it (even when that bucket is
  // empty): histogram_quantile() interpolates between adjacent rendered
  // `le` boundaries, so without the lower edge it would stretch the
  // interpolation back to the previous populated bucket and disagree
  // with the native Percentile() estimator.
  uint64_t cumulative = 0;
  int last_emitted = -1;
  for (const auto& [bucket, count] : histogram.NonZeroBuckets()) {
    if (bucket > 0 && last_emitted != bucket - 1) {
      std::snprintf(buf, sizeof(buf), "_bucket{le=\"%" PRIu64 "\"} %" PRIu64
                    "\n",
                    LatencyHistogram::BucketUpperBound(bucket - 1),
                    cumulative);
      *out += name;
      *out += buf;
    }
    cumulative += count;
    last_emitted = bucket;
    if (bucket >= LatencyHistogram::kBuckets - 1) continue;
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"%" PRIu64 "\"} %" PRIu64
                  "\n",
                  LatencyHistogram::BucketUpperBound(bucket), cumulative);
    *out += name;
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                cumulative);
  *out += name;
  *out += buf;
  std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", histogram.sum());
  *out += name;
  *out += buf;
  std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n",
                histogram.count());
  *out += name;
  *out += buf;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(4096);
  AppendPrometheusHistogram(&out, "natix_compile_ns",
                            "Query compile latency in nanoseconds",
                            registry.compile_ns);
  AppendPrometheusHistogram(&out, "natix_exec_ns",
                            "Query execution latency in nanoseconds",
                            registry.exec_ns);
  AppendPrometheusHistogram(&out, "natix_pages_per_query",
                            "Pages faulted per executed query",
                            registry.pages_per_query);
  AppendPrometheusHistogram(&out, "natix_tuples_per_query",
                            "Location-step tuples per executed query",
                            registry.tuples_per_query);
  AppendPrometheusHistogram(&out, "natix_queue_wait_ns",
                            "Admission-queue wait per request in "
                            "nanoseconds",
                            registry.queue_wait_ns);
  AppendPrometheusCounter(&out, "natix_queries_compiled_total",
                          "Queries compiled through the full pipeline",
                          registry.queries_compiled.value());
  AppendPrometheusCounter(&out, "natix_queries_executed_total",
                          "Query executions completed",
                          registry.queries_executed.value());
  AppendPrometheusCounter(&out, "natix_compile_errors_total",
                          "Compilations that failed",
                          registry.compile_errors.value());
  AppendPrometheusCounter(&out, "natix_exec_errors_total",
                          "Executions that failed",
                          registry.exec_errors.value());
  AppendPrometheusCounter(&out, "natix_slow_queries_total",
                          "Executions admitted to the slow-query log",
                          registry.slow_queries.value());
  AppendPrometheusCounter(&out, "natix_plan_cache_hits_total",
                          "Prepared-plan cache hits",
                          registry.plan_cache_hits.value());
  AppendPrometheusCounter(&out, "natix_plan_cache_misses_total",
                          "Prepared-plan cache misses",
                          registry.plan_cache_misses.value());
  AppendPrometheusCounter(&out, "natix_nvm_insns_retired_total",
                          "NVM bytecode instructions retired",
                          registry.nvm_insns_retired.value());
  AppendPrometheusCounter(&out, "natix_early_exits_total",
                          "Pipelines closed early by the Limit operator",
                          registry.early_exits.value());
  AppendPrometheusCounter(&out, "natix_deadline_exceeded_total",
                          "Executions aborted by an expired deadline",
                          registry.deadline_exceeded.value());
  AppendPrometheusCounter(&out, "natix_queries_cancelled_total",
                          "Executions aborted by cooperative "
                          "cancellation",
                          registry.queries_cancelled.value());
  AppendPrometheusCounter(&out, "natix_requests_rejected_total",
                          "Requests refused at admission control",
                          registry.requests_rejected.value());
  AppendPrometheusCounter(&out, "natix_http_requests_total",
                          "HTTP requests served by natixd",
                          registry.http_requests.value());
  AppendPrometheusGauge(&out, "natix_queue_depth",
                        "Requests waiting for an execution slot",
                        registry.queue_depth.value());
  AppendPrometheusGauge(&out, "natix_requests_in_flight",
                        "Requests currently executing",
                        registry.requests_in_flight.value());
  return out;
}

}  // namespace natix::obs

#else  // NATIX_OBS_DISABLED

// The renderer is header-only stubs in this configuration
// (obs/prometheus.h); nothing to compile.

#endif  // NATIX_OBS_DISABLED
