#ifndef NATIX_OBS_METRICS_H_
#define NATIX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics: lock-free counters and log-bucketed latency
// histograms, fed automatically by every CompiledQuery compile/execute,
// plus a bounded slow-query log. Snapshots render as JSON
// (MetricsRegistry::SnapshotJson) or a p50/p90/p99 table (RenderText);
// natixq surfaces them via --metrics and --slow-log.
//
// Zero-cost discipline (src/obs/stats.h): under NATIX_OBS_DISABLED the
// registry collapses to inline no-ops and every feeding site compiles
// to nothing.

namespace natix::obs {

#if !defined(NATIX_OBS_DISABLED)

/// Monotonic clock in nanoseconds (0 under NATIX_OBS_DISABLED, letting
/// timing call sites compile away without #ifdefs).
uint64_t MonotonicNowNs();

/// A lock-free latency histogram with power-of-two buckets: bucket 0
/// counts the value 0, bucket b >= 1 counts values in
/// [2^(b-1), 2^b - 1]. 64 buckets cover the full uint64 range, so a
/// Record is one bit_width plus one relaxed fetch_add.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Percentile (q in (0, 1]), linearly interpolated inside the
  /// containing log2 bucket at the continuous rank q * count — the same
  /// estimator Prometheus's histogram_quantile() applies to the
  /// exposition-format buckets, so the two renderings agree (verified by
  /// metrics_prometheus_test). 0 when empty; clamped to the observed max.
  uint64_t Percentile(double q) const;

  /// Non-empty buckets as {bucket index, count} pairs (snapshot order).
  std::vector<std::pair<int, uint64_t>> NonZeroBuckets() const;

  /// Value bounds of bucket b: 0 for bucket 0, [2^(b-1), 2^b - 1] for
  /// b >= 1. The upper bound is the Prometheus `le` boundary of the
  /// exposition rendering (obs/prometheus.h).
  static uint64_t BucketLowerBound(int b);
  static uint64_t BucketUpperBound(int b);

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A named process-wide counter cell (relaxed atomics).
class CounterCell {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A process-wide gauge: a value that goes up and down (queue depth,
/// in-flight requests). Signed so a transient Sub past a concurrent Add
/// never wraps; value() clamps at zero for rendering.
class GaugeCell {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const {
    int64_t v = value_.load(std::memory_order_relaxed);
    return v < 0 ? 0 : v;
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One slow-query log entry: everything needed to diagnose the query
/// after the fact without re-running it.
struct SlowQueryEntry {
  uint64_t sequence = 0;  ///< monotonically increasing admission id
  std::string xpath;      ///< the query text
  uint64_t exec_ns = 0;
  uint64_t page_faults = 0;
  uint64_t tuples = 0;
  /// EXPLAIN ANALYZE tree when the query was compiled with stats
  /// collection ("" otherwise).
  std::string analyze;
};

/// A bounded ring buffer of the slowest-threshold-exceeding queries.
/// Disabled until a threshold is set; admission is O(1) under a mutex
/// (the slow path by definition — never taken by fast queries).
class SlowQueryLog {
 public:
  static constexpr uint64_t kDisabled = ~uint64_t{0};
  static constexpr size_t kDefaultCapacity = 64;

  /// Queries with exec time >= ns are logged; kDisabled turns the log
  /// off, 0 logs every query.
  void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  bool ShouldLog(uint64_t exec_ns) const {
    return exec_ns >= threshold_ns();
  }

  void Record(SlowQueryEntry entry);

  /// Retained entries in stable monotonic admission order (ascending
  /// sequence), oldest first — stable under concurrent Record calls.
  std::vector<SlowQueryEntry> Dump() const;

  /// Human-readable dump (natixq --slow-log).
  std::string RenderText() const;

  /// Total admissions, including entries the ring has since evicted.
  uint64_t total_logged() const {
    return total_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  std::atomic<uint64_t> threshold_ns_{kDisabled};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;
};

/// The process-wide registry. Instrument names are a stable contract
/// (tests and dashboards read them): histograms compile_ns, exec_ns,
/// pages_per_query, tuples_per_query, queue_wait_ns; counters
/// queries_compiled, queries_executed, compile_errors, exec_errors,
/// slow_queries, plan_cache_hits, plan_cache_misses, nvm_insns_retired,
/// early_exits, deadline_exceeded, queries_cancelled, requests_rejected,
/// http_requests; gauges queue_depth, requests_in_flight.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  LatencyHistogram compile_ns;
  LatencyHistogram exec_ns;
  LatencyHistogram pages_per_query;
  LatencyHistogram tuples_per_query;
  /// Admission-queue wait per served request (server::Server).
  LatencyHistogram queue_wait_ns;

  CounterCell queries_compiled;
  CounterCell queries_executed;
  CounterCell compile_errors;
  CounterCell exec_errors;
  CounterCell slow_queries;
  /// Prepared-plan cache (api::PlanCache): compilations avoided / paid.
  CounterCell plan_cache_hits;
  CounterCell plan_cache_misses;
  /// NVM bytecode instructions retired by subscript programs.
  CounterCell nvm_insns_retired;
  /// Pipelines closed before exhaustion by the Limit operator
  /// (docs/LIMIT-PUSHDOWN.md) — pages and next() calls saved.
  CounterCell early_exits;
  /// Executions aborted because their deadline expired mid-drain.
  CounterCell deadline_exceeded;
  /// Executions aborted through a cooperative cancel flag.
  CounterCell queries_cancelled;
  /// Requests refused at admission (queue full / shutting down).
  CounterCell requests_rejected;
  /// HTTP requests parsed by the serving plane (all endpoints).
  CounterCell http_requests;

  /// Requests waiting for an execution slot right now.
  GaugeCell queue_depth;
  /// Requests currently executing.
  GaugeCell requests_in_flight;

  SlowQueryLog& slow_log() { return slow_log_; }
  const SlowQueryLog& slow_log() const { return slow_log_; }

  /// JSON snapshot: per-histogram count/sum/max/p50/p90/p99 plus the
  /// non-empty buckets, and the counter values.
  std::string SnapshotJson() const;

  /// Table rendering with p50/p90/p99 per histogram (natixq --metrics).
  std::string RenderText() const;

  /// Zeroes every instrument and clears the slow-query log (threshold
  /// kept). Tests and per-figure bench snapshots.
  void Reset();

 private:
  SlowQueryLog slow_log_;
};

#else  // NATIX_OBS_DISABLED: inline no-op stubs, same surface.

inline uint64_t MonotonicNowNs() { return 0; }

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;
  void Record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  uint64_t Percentile(double) const { return 0; }
  std::vector<std::pair<int, uint64_t>> NonZeroBuckets() const { return {}; }
  static uint64_t BucketLowerBound(int) { return 0; }
  static uint64_t BucketUpperBound(int) { return 0; }
  void Reset() {}
};

class CounterCell {
 public:
  void Add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class GaugeCell {
 public:
  void Add(int64_t = 1) {}
  void Sub(int64_t = 1) {}
  void Set(int64_t) {}
  int64_t value() const { return 0; }
  void Reset() {}
};

struct SlowQueryEntry {
  uint64_t sequence = 0;
  std::string xpath;
  uint64_t exec_ns = 0;
  uint64_t page_faults = 0;
  uint64_t tuples = 0;
  std::string analyze;
};

class SlowQueryLog {
 public:
  static constexpr uint64_t kDisabled = ~uint64_t{0};
  static constexpr size_t kDefaultCapacity = 64;
  void set_threshold_ns(uint64_t) {}
  uint64_t threshold_ns() const { return kDisabled; }
  bool ShouldLog(uint64_t) const { return false; }
  void Record(SlowQueryEntry) {}
  std::vector<SlowQueryEntry> Dump() const { return {}; }
  std::string RenderText() const {
    return "slow-query log disabled (NATIX_OBS=OFF)\n";
  }
  uint64_t total_logged() const { return 0; }
  void Clear() {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }

  LatencyHistogram compile_ns;
  LatencyHistogram exec_ns;
  LatencyHistogram pages_per_query;
  LatencyHistogram tuples_per_query;
  LatencyHistogram queue_wait_ns;

  CounterCell queries_compiled;
  CounterCell queries_executed;
  CounterCell compile_errors;
  CounterCell exec_errors;
  CounterCell slow_queries;
  CounterCell plan_cache_hits;
  CounterCell plan_cache_misses;
  CounterCell nvm_insns_retired;
  CounterCell early_exits;
  CounterCell deadline_exceeded;
  CounterCell queries_cancelled;
  CounterCell requests_rejected;
  CounterCell http_requests;

  GaugeCell queue_depth;
  GaugeCell requests_in_flight;

  SlowQueryLog& slow_log() { return slow_log_; }
  const SlowQueryLog& slow_log() const { return slow_log_; }
  std::string SnapshotJson() const { return "{\"disabled\":true}"; }
  std::string RenderText() const {
    return "metrics disabled (NATIX_OBS=OFF)\n";
  }
  void Reset() {}

 private:
  SlowQueryLog slow_log_;
};

#endif  // NATIX_OBS_DISABLED

}  // namespace natix::obs

#endif  // NATIX_OBS_METRICS_H_
