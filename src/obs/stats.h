#ifndef NATIX_OBS_STATS_H_
#define NATIX_OBS_STATS_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

// Compile-time kill switch for the whole observability layer: with
// NATIX_OBS_DISABLED defined (cmake -DNATIX_OBS=OFF) every
// instrumentation site compiles to nothing and the per-call null check
// in qe::Iterator disappears. The default build keeps the layer compiled
// in but dormant: collection only happens for queries compiled with
// collect_stats, so an uninstrumented query pays one predicted-null
// branch per iterator call.

namespace natix::storage {
class BufferManager;
}  // namespace natix::storage

namespace natix::obs {

/// Snapshot of the buffer manager's global counters. Used both for
/// point-in-time captures (per-operator attribution) and for deltas
/// (per-query totals).
struct BufferCounters {
  uint64_t page_reads = 0;   ///< pages faulted in from the file
  uint64_t page_hits = 0;    ///< fixes served from the pool
  uint64_t page_writes = 0;  ///< dirty pages written back
  uint64_t evictions = 0;    ///< frames reclaimed from the LRU list

  BufferCounters& operator+=(const BufferCounters& o) {
    page_reads += o.page_reads;
    page_hits += o.page_hits;
    page_writes += o.page_writes;
    evictions += o.evictions;
    return *this;
  }
};

/// Reads the current counters of `buffer` (all zero for null) with four
/// independent relaxed loads: cheap enough for the per-operator timer's
/// hot path, but the four values can tear across pool stripes while
/// other queries run. Use SnapshotBufferCounters for per-query deltas.
BufferCounters CaptureBufferCounters(const storage::BufferManager* buffer);

/// Reads the counters as one coherent snapshot (every pool-stripe lock
/// held across the four reads — BufferManager::Snapshot), so deltas of
/// two snapshots never tear across shards.
BufferCounters SnapshotBufferCounters(const storage::BufferManager* buffer);

/// Per-operator counters of one compiled plan, arranged as a tree
/// mirroring the physical iterator tree (nested subscript plans hang off
/// their host operator, marked `nested`). Generic counters are maintained
/// by the Iterator NVI wrapper; family-specific counters by the operators
/// themselves through NATIX_OBS_COUNT.
struct OpStats {
  std::string label;
  /// True for the aggregate node of a subscript-evaluated nested plan
  /// (Sec. 5.2.3/5.2.5) hanging off its host operator.
  bool nested = false;

  // -- generic iterator counters (maintained by qe::Iterator) --
  uint64_t open_calls = 0;
  uint64_t next_calls = 0;
  uint64_t close_calls = 0;
  /// Next() calls that produced a tuple.
  uint64_t tuples = 0;
  /// Wall time spent inside this operator's Open/Next/Close including
  /// its children (exclusive time is derived, see exclusive_ns()).
  uint64_t inclusive_ns = 0;
  uint64_t inclusive_page_reads = 0;
  uint64_t inclusive_page_hits = 0;

  // -- operator-family counters (zero when not applicable) --
  uint64_t memo_hits = 0;       ///< MemoX: evaluations replayed
  uint64_t memo_misses = 0;     ///< MemoX: evaluations computed
  uint64_t spooled_rows = 0;    ///< Tmp^cs / MemoX: rows materialized
  uint64_t replayed_rows = 0;   ///< rows served from a materialization
  uint64_t groups = 0;          ///< Tmp^cs_c: contexts materialized
  uint64_t cache_hits = 0;      ///< chi^mat: per-key cache hits
  uint64_t cache_misses = 0;    ///< chi^mat: per-key cache misses
  uint64_t agg_evals = 0;       ///< nested aggregate: evaluations
  uint64_t agg_input = 0;       ///< nested aggregate: tuples consumed
  uint64_t early_exits = 0;     ///< smart aggregation / existential
                                ///< probes stopped before exhaustion

  /// Source for per-call page I/O attribution (null: skip capture).
  const storage::BufferManager* buffer = nullptr;

  std::vector<OpStats*> children;

  /// Time in this operator minus time in its children.
  uint64_t exclusive_ns() const;
  /// Page I/O issued by this operator itself (children subtracted).
  uint64_t exclusive_page_reads() const;
  uint64_t exclusive_page_hits() const;
};

/// Plan-wide sums used by benchmarks and quick assertions.
struct StatsTotals {
  uint64_t open_calls = 0;
  uint64_t next_calls = 0;
  uint64_t tuples = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t spooled_rows = 0;
  uint64_t replayed_rows = 0;
  uint64_t cache_hits = 0;
  uint64_t agg_evals = 0;
  uint64_t agg_input = 0;
  uint64_t early_exits = 0;
};

/// The query-scoped stats collector: owns the OpStats tree of one
/// compiled plan and the query-level buffer totals. Created by codegen
/// when a query is compiled with stats collection; counters accumulate
/// across evaluations until Reset().
class QueryStats {
 public:
  QueryStats() = default;
  QueryStats(const QueryStats&) = delete;
  QueryStats& operator=(const QueryStats&) = delete;

  /// Allocates a stats node; pointers stay valid for the collector's
  /// lifetime (deque storage).
  OpStats* NewOp(std::string label);

  void set_root(OpStats* root) { root_ = root; }
  const OpStats* root() const { return root_; }

  /// Buffer-manager deltas summed over all evaluations (maintained by
  /// the API layer around each Evaluate* call).
  BufferCounters& buffer() { return buffer_; }
  const BufferCounters& buffer() const { return buffer_; }

  uint64_t executions() const { return executions_; }
  void RecordExecution() { ++executions_; }

  /// Sums the per-operator counters over the whole tree.
  StatsTotals ComputeTotals() const;

  /// The EXPLAIN ANALYZE rendering: the operator tree, one node per
  /// line with its counters, followed by the query-level buffer line.
  /// Counter *names* are part of the stable output contract (golden
  /// tests normalize the values only).
  std::string RenderAnalyze() const;

  /// Structured JSON rendering of the same data (benchmark emission).
  std::string ToJson() const;

  /// Zeroes every counter, keeping the tree structure.
  void Reset();

  /// Finds the first node whose label starts with `prefix` (allocation
  /// order, i.e. bottom-up build order); null when absent. Test/debug
  /// convenience.
  const OpStats* FindOp(const std::string& prefix) const;

 private:
  std::deque<OpStats> ops_;
  OpStats* root_ = nullptr;
  BufferCounters buffer_;
  uint64_t executions_ = 0;
};

/// RAII span accumulating wall time and page I/O into an OpStats node.
/// Constructed only on the instrumented path (stats != nullptr).
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(OpStats* stats);
  ~ScopedOpTimer();

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  OpStats* stats_;
  std::chrono::steady_clock::time_point begin_;
  BufferCounters buffer_begin_;
};

}  // namespace natix::obs

/// Increments an operator-family counter on the instrumented path.
/// Compiles to nothing under NATIX_OBS_DISABLED.
#if defined(NATIX_OBS_DISABLED)
#define NATIX_OBS_COUNT(stats, field, n) \
  do {                                   \
  } while (0)
#else
#define NATIX_OBS_COUNT(stats, field, n)           \
  do {                                             \
    if ((stats) != nullptr) (stats)->field += (n); \
  } while (0)
#endif

#endif  // NATIX_OBS_STATS_H_
