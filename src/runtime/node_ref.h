#ifndef NATIX_RUNTIME_NODE_REF_H_
#define NATIX_RUNTIME_NODE_REF_H_

#include <cstdint>

#include "storage/node_store.h"

namespace natix::runtime {

/// A reference to a stored node as carried in tuple attributes: the packed
/// node id plus its document-order key, cached so duplicate elimination and
/// document-order sorting need no page access.
struct NodeRef {
  uint64_t id = storage::kInvalidNodeId.Pack();
  uint64_t order = 0;

  bool valid() const { return node_id().valid(); }
  storage::NodeId node_id() const { return storage::NodeId::Unpack(id); }

  static NodeRef Make(storage::NodeId node, uint64_t order) {
    return NodeRef{node.Pack(), order};
  }

  friend bool operator==(const NodeRef& a, const NodeRef& b) {
    return a.id == b.id;
  }
};

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_NODE_REF_H_
