#include "runtime/value.h"

#include "base/xpath_number.h"

namespace natix::runtime {

std::string Value::DebugString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBoolean:
      return boolean_ ? "true" : "false";
    case ValueKind::kNumber:
      return XPathNumberToString(number_);
    case ValueKind::kString:
      return "\"" + *string_ + "\"";
    case ValueKind::kNode: {
      storage::NodeId id = node_.node_id();
      return "node(" + std::to_string(id.page) + "." +
             std::to_string(id.slot) + "@" + std::to_string(node_.order) +
             ")";
    }
    case ValueKind::kSequence: {
      std::string out = "[";
      for (size_t i = 0; i < sequence_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*sequence_)[i].DebugString();
      }
      return out + "]";
    }
  }
  return "?";
}

}  // namespace natix::runtime
