#ifndef NATIX_RUNTIME_REGISTER_FILE_H_
#define NATIX_RUNTIME_REGISTER_FILE_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "runtime/value.h"

namespace natix::runtime {

using RegisterId = uint32_t;

/// The plan-wide register file: one Value slot per attribute the compiled
/// plan ever binds. This realizes the paper's "attribute manager"
/// (Sec. 5.1): renaming map/projection operators do not copy — the code
/// generator maps aliased attribute names onto the same register, so
/// iterators communicate simply by writing and reading slots.
class RegisterFile {
 public:
  explicit RegisterFile(size_t size) : registers_(size) {}

  /// Grows the file to `size` slots; used by the code generator once the
  /// attribute manager knows how many registers the plan needs.
  void Resize(size_t size) { registers_.resize(size); }

  Value& operator[](RegisterId id) {
    NATIX_DCHECK(id < registers_.size());
    return registers_[id];
  }
  const Value& operator[](RegisterId id) const {
    NATIX_DCHECK(id < registers_.size());
    return registers_[id];
  }

  size_t size() const { return registers_.size(); }

  /// Snapshots the listed registers into `row` (in list order).
  void SaveRow(const std::vector<RegisterId>& ids, Row* row) const {
    row->clear();
    row->reserve(ids.size());
    for (RegisterId id : ids) row->push_back((*this)[id]);
  }

  /// Restores a snapshot taken with the same register list.
  void RestoreRow(const std::vector<RegisterId>& ids, const Row& row) {
    NATIX_DCHECK(ids.size() == row.size());
    for (size_t i = 0; i < ids.size(); ++i) (*this)[ids[i]] = row[i];
  }

 private:
  std::vector<Value> registers_;
};

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_REGISTER_FILE_H_
