#ifndef NATIX_RUNTIME_REGISTER_FILE_H_
#define NATIX_RUNTIME_REGISTER_FILE_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "runtime/value.h"

namespace natix::runtime {

using RegisterId = uint32_t;

/// The plan-wide register file: one Value slot per attribute the compiled
/// plan ever binds. This realizes the paper's "attribute manager"
/// (Sec. 5.1): renaming map/projection operators do not copy — the code
/// generator maps aliased attribute names onto the same register, so
/// iterators communicate simply by writing and reading slots.
class RegisterFile {
 public:
  explicit RegisterFile(size_t size) : registers_(size) {}

  /// Grows the file to `size` slots; used by the code generator once the
  /// attribute manager knows how many registers the plan needs.
  void Resize(size_t size) { registers_.resize(size); }

  /// Unchecked in release builds: the per-tuple hot path. The static plan
  /// verifier (src/analysis) proves all compiled-plan accesses in-bounds,
  /// so only a DCHECK guards against verifier escapes here.
  Value& operator[](RegisterId id) {
    NATIX_DCHECK(id < registers_.size());
    return registers_[id];
  }
  const Value& operator[](RegisterId id) const {
    NATIX_DCHECK(id < registers_.size());
    return registers_[id];
  }

  /// Bounds-checked in every build. For cold paths (row snapshots,
  /// context binding) where the branch is free relative to the work done.
  Value& At(RegisterId id) {
    NATIX_CHECK(id < registers_.size());
    return registers_[id];
  }
  const Value& At(RegisterId id) const {
    NATIX_CHECK(id < registers_.size());
    return registers_[id];
  }

  size_t size() const { return registers_.size(); }

  /// Snapshots the listed registers into `row` (in list order).
  void SaveRow(const std::vector<RegisterId>& ids, Row* row) const {
    row->clear();
    row->reserve(ids.size());
    for (RegisterId id : ids) row->push_back(At(id));
  }

  /// Restores a snapshot taken with the same register list.
  void RestoreRow(const std::vector<RegisterId>& ids, const Row& row) {
    NATIX_CHECK(ids.size() == row.size());
    for (size_t i = 0; i < ids.size(); ++i) At(ids[i]) = row[i];
  }

 private:
  std::vector<Value> registers_;
};

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_REGISTER_FILE_H_
