#ifndef NATIX_RUNTIME_NODE_OPS_H_
#define NATIX_RUNTIME_NODE_OPS_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "base/statusor.h"
#include "runtime/node_ref.h"
#include "storage/node_store.h"

namespace natix::runtime {

/// The thirteen XPath axes. The namespace axis is not supported (this
/// build, like the paper's evaluation, does not materialize namespace
/// nodes); the compiler rejects it with kNotSupported.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kFollowingSibling,
  kPreceding,
  kPrecedingSibling,
  kAttribute,
  kSelf
};

const char* AxisName(Axis axis);

/// True for reverse axes: their natural iteration order — the order the
/// AxisCursor produces, and the order position() counts in — is reverse
/// document order.
bool AxisIsReverse(Axis axis);

/// ppd classification of Sec. 4.1: axes whose step output can contain
/// duplicates (given duplicate-free input) or break document order.
bool AxisIsPpd(Axis axis);

/// A compiled node test. Names are resolved to dictionary ids at compile
/// time; a name absent from the dictionary can never match.
struct NodeTest {
  enum class Kind : uint8_t {
    kName,      // name test: element/attribute name equals name_id
    kAnyName,   // "*": any node of the axis' principal node type
    kText,      // text()
    kComment,   // comment()
    kPi,        // processing-instruction()
    kPiTarget,  // processing-instruction('target')
    kAnyKind    // node()
  };
  Kind kind = Kind::kAnyKind;
  uint32_t name_id = storage::kInvalidNameId;

  std::string DebugString(const storage::NameDictionary* names) const;
};

/// Whether `header` passes `test` on an axis whose principal node type is
/// attribute (`principal_is_attribute`) or element.
bool MatchesNodeTest(const storage::NodeHeader& header, const NodeTest& test,
                     bool principal_is_attribute);

/// Streaming cursor over one axis from one context node, filtered by a
/// node test — the storage-level navigation primitive behind the
/// unnest-map operator and the NVM navigation commands (Sec. 5.2.2).
///
/// Nodes are produced in axis order: document order for forward axes,
/// reverse document order for reverse axes. The cursor performs O(1)
/// page-buffer accesses per step (descendant walks use parent links, and
/// reverse walks use the stored last-child links).
class AxisCursor {
 public:
  explicit AxisCursor(const storage::NodeStore* store)
      : store_(store), accessor_(store) {}

  /// (Re)positions the cursor at `context` for `axis`/`test`.
  Status Open(Axis axis, const NodeTest& test, storage::NodeId context);

  /// Produces the next matching node. Sets *has to false at the end.
  Status Next(bool* has, NodeRef* out);

 private:
  /// Advances the raw axis walk by one node (pre node-test), storing it in
  /// current_/record_. Sets done_ when exhausted.
  Status Step();

  /// Deepest last descendant of `node` (the node itself if childless).
  StatusOr<storage::NodeId> DeepestLast(storage::NodeId node);

  const storage::NodeStore* store_;
  storage::NodeAccessor accessor_;
  Axis axis_ = Axis::kSelf;
  NodeTest test_;
  bool principal_is_attribute_ = false;

  storage::NodeId context_;
  storage::NodeId current_;
  storage::NodeHeader record_;       // header of current_
  bool done_ = true;
  bool first_ = true;
  /// For kDescendant*: the subtree root we must not escape.
  storage::NodeId subtree_root_;
  /// For kPreceding: the next ancestor of the context to skip.
  storage::NodeId skip_ancestor_;
};

/// Document-order comparison key of a node reference (smaller == earlier).
inline uint64_t DocOrderKey(const NodeRef& node) { return node.order; }

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_NODE_OPS_H_
