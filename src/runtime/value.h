#ifndef NATIX_RUNTIME_VALUE_H_
#define NATIX_RUNTIME_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "runtime/node_ref.h"

namespace natix::runtime {

class Value;

/// A materialized sequence of values (most commonly nodes), shared so that
/// copying a sequence-valued attribute is cheap.
using SequencePtr = std::shared_ptr<const std::vector<Value>>;

/// Strings are shared for the same reason: register snapshots and
/// materializing operators copy values freely.
using SharedString = std::shared_ptr<const std::string>;

enum class ValueKind : uint8_t {
  kNull,      // unset register / absent attribute
  kBoolean,
  kNumber,
  kString,
  kNode,      // a single node reference (e.g. the cn attribute)
  kSequence   // a nested sequence-valued attribute
};

/// A runtime value: the universe of the paper's algebra (atomic XPath
/// types, nodes, and nested tuple sequences) as stored in plan registers.
class Value {
 public:
  Value() = default;

  static Value Boolean(bool b) {
    Value v;
    v.kind_ = ValueKind::kBoolean;
    v.boolean_ = b;
    return v;
  }
  static Value Number(double n) {
    Value v;
    v.kind_ = ValueKind::kNumber;
    v.number_ = n;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = ValueKind::kString;
    v.string_ = std::make_shared<const std::string>(std::move(s));
    return v;
  }
  static Value String(SharedString s) {
    Value v;
    v.kind_ = ValueKind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Value Node(NodeRef node) {
    Value v;
    v.kind_ = ValueKind::kNode;
    v.node_ = node;
    return v;
  }
  static Value Sequence(SequencePtr seq) {
    Value v;
    v.kind_ = ValueKind::kSequence;
    v.sequence_ = std::move(seq);
    return v;
  }

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  bool AsBoolean() const {
    NATIX_DCHECK(kind_ == ValueKind::kBoolean);
    return boolean_;
  }
  double AsNumber() const {
    NATIX_DCHECK(kind_ == ValueKind::kNumber);
    return number_;
  }
  const std::string& AsString() const {
    NATIX_DCHECK(kind_ == ValueKind::kString);
    return *string_;
  }
  SharedString shared_string() const {
    NATIX_DCHECK(kind_ == ValueKind::kString);
    return string_;
  }
  NodeRef AsNode() const {
    NATIX_DCHECK(kind_ == ValueKind::kNode);
    return node_;
  }
  const SequencePtr& AsSequence() const {
    NATIX_DCHECK(kind_ == ValueKind::kSequence);
    return sequence_;
  }

  /// Human-readable rendering for plan explain output and test failures.
  std::string DebugString() const;

 private:
  ValueKind kind_ = ValueKind::kNull;
  bool boolean_ = false;
  double number_ = 0;
  SharedString string_;
  NodeRef node_;
  SequencePtr sequence_;
};

/// A materialized tuple: values in the order of some register list.
using Row = std::vector<Value>;

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_VALUE_H_
