#include "runtime/node_ops.h"

namespace natix::runtime {

using storage::kInvalidNodeId;
using storage::NodeId;
using storage::NodeHeader;
using storage::StoredNodeKind;

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kSelf:
      return "self";
  }
  return "?";
}

bool AxisIsReverse(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
      return true;
    default:
      return false;
  }
}

bool AxisIsPpd(Axis axis) {
  // Sec. 4.1: following, following-sibling, preceding, preceding-sibling,
  // parent, ancestor, ancestor-or-self, descendant, descendant-or-self.
  switch (axis) {
    case Axis::kFollowing:
    case Axis::kFollowingSibling:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      return true;
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kSelf:
      return false;
  }
  return false;
}

std::string NodeTest::DebugString(
    const storage::NameDictionary* names) const {
  switch (kind) {
    case Kind::kName:
      return names != nullptr && name_id != storage::kInvalidNameId
                 ? names->NameOf(name_id)
                 : "name#" + std::to_string(name_id);
    case Kind::kAnyName:
      return "*";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return "processing-instruction()";
    case Kind::kPiTarget:
      return "processing-instruction(" +
             (names != nullptr && name_id != storage::kInvalidNameId
                  ? names->NameOf(name_id)
                  : std::to_string(name_id)) +
             ")";
    case Kind::kAnyKind:
      return "node()";
  }
  return "?";
}

bool MatchesNodeTest(const NodeHeader& record, const NodeTest& test,
                     bool principal_is_attribute) {
  StoredNodeKind principal = principal_is_attribute
                                 ? StoredNodeKind::kAttribute
                                 : StoredNodeKind::kElement;
  switch (test.kind) {
    case NodeTest::Kind::kName:
      return record.kind == principal && record.name_id == test.name_id &&
             test.name_id != storage::kInvalidNameId;
    case NodeTest::Kind::kAnyName:
      return record.kind == principal;
    case NodeTest::Kind::kText:
      return record.kind == StoredNodeKind::kText;
    case NodeTest::Kind::kComment:
      return record.kind == StoredNodeKind::kComment;
    case NodeTest::Kind::kPi:
      return record.kind == StoredNodeKind::kProcessingInstruction;
    case NodeTest::Kind::kPiTarget:
      return record.kind == StoredNodeKind::kProcessingInstruction &&
             record.name_id == test.name_id &&
             test.name_id != storage::kInvalidNameId;
    case NodeTest::Kind::kAnyKind:
      return true;
  }
  return false;
}

Status AxisCursor::Open(Axis axis, const NodeTest& test, NodeId context) {
  axis_ = axis;
  test_ = test;
  context_ = context;
  principal_is_attribute_ = axis == Axis::kAttribute;
  current_ = kInvalidNodeId;
  subtree_root_ = kInvalidNodeId;
  skip_ancestor_ = kInvalidNodeId;
  done_ = !context.valid();
  first_ = true;
  return Status::OK();
}

StatusOr<NodeId> AxisCursor::DeepestLast(NodeId node) {
  NodeHeader record;
  while (true) {
    NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(node, &record));
    if (!record.last_child.valid()) return node;
    node = record.last_child;
  }
}

Status AxisCursor::Step() {
  // Produces the next raw node of the axis walk into current_/record_, or
  // sets done_. All per-axis iteration logic lives here; Next() applies
  // the node test on top.
  NodeHeader ctx_record;

  if (first_) {
    first_ = false;
    NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(context_, &ctx_record));
    const bool ctx_is_attribute =
        ctx_record.kind == StoredNodeKind::kAttribute;
    switch (axis_) {
      case Axis::kSelf:
        current_ = context_;
        record_ = ctx_record;
        return Status::OK();
      case Axis::kChild:
        current_ = ctx_is_attribute ? kInvalidNodeId : ctx_record.first_child;
        break;
      case Axis::kAttribute:
        current_ = ctx_record.first_attr;
        break;
      case Axis::kParent:
      case Axis::kAncestor:
        current_ = ctx_record.parent;
        break;
      case Axis::kAncestorOrSelf:
        current_ = context_;
        record_ = ctx_record;
        return Status::OK();
      case Axis::kDescendantOrSelf:
        subtree_root_ = context_;
        current_ = context_;
        record_ = ctx_record;
        return Status::OK();
      case Axis::kDescendant:
        subtree_root_ = context_;
        current_ = ctx_is_attribute ? kInvalidNodeId : ctx_record.first_child;
        break;
      case Axis::kFollowingSibling:
        current_ =
            ctx_is_attribute ? kInvalidNodeId : ctx_record.next_sibling;
        break;
      case Axis::kPrecedingSibling:
        current_ =
            ctx_is_attribute ? kInvalidNodeId : ctx_record.prev_sibling;
        break;
      case Axis::kFollowing: {
        if (ctx_is_attribute) {
          // Following of an attribute starts with the owning element's
          // subtree (those nodes are after the attribute in document
          // order and are not its descendants).
          NodeHeader owner;
          NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(ctx_record.parent, &owner));
          if (owner.first_child.valid()) {
            current_ = owner.first_child;
            break;
          }
          // Fall through to climbing from the owner.
          ctx_record = owner;
        }
        // Skip the context subtree: climb until a next sibling exists.
        NodeHeader walk = ctx_record;
        current_ = kInvalidNodeId;
        while (true) {
          if (walk.next_sibling.valid()) {
            current_ = walk.next_sibling;
            break;
          }
          if (!walk.parent.valid()) break;
          NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(walk.parent, &walk));
        }
        break;
      }
      case Axis::kPreceding: {
        NodeId base = ctx_is_attribute ? ctx_record.parent : context_;
        NodeHeader base_record;
        NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(base, &base_record));
        skip_ancestor_ = base_record.parent;
        // Position the walk at `base` and run the common reverse step
        // below by falling into the !first_ path.
        current_ = base;
        record_ = base_record;
        return Step();  // not first_ anymore: performs one reverse step
      }
    }
    if (!current_.valid()) {
      done_ = true;
      return Status::OK();
    }
    return accessor_.ReadHeader(current_, &record_);
  }

  // Subsequent steps.
  switch (axis_) {
    case Axis::kSelf:
    case Axis::kParent:
      done_ = true;
      return Status::OK();
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kFollowingSibling:
      current_ = record_.next_sibling;
      break;
    case Axis::kPrecedingSibling:
      current_ = record_.prev_sibling;
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      current_ = record_.parent;
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // Preorder within the subtree, using parent links to climb out of
      // exhausted branches (no explicit stack).
      if (record_.first_child.valid()) {
        current_ = record_.first_child;
        break;
      }
      NodeId node = current_;
      NodeHeader record = record_;
      current_ = kInvalidNodeId;
      while (node != subtree_root_) {
        if (record.next_sibling.valid()) {
          current_ = record.next_sibling;
          break;
        }
        node = record.parent;
        if (!node.valid()) break;
        NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(node, &record));
      }
      break;
    }
    case Axis::kFollowing: {
      // Unbounded preorder successor: descend first, else climb.
      if (record_.first_child.valid()) {
        current_ = record_.first_child;
        break;
      }
      NodeId node = current_;
      NodeHeader record = record_;
      current_ = kInvalidNodeId;
      while (true) {
        if (record.next_sibling.valid()) {
          current_ = record.next_sibling;
          break;
        }
        node = record.parent;
        if (!node.valid()) break;
        NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(node, &record));
      }
      break;
    }
    case Axis::kPreceding: {
      // Reverse preorder, skipping ancestors of the context.
      while (true) {
        if (record_.prev_sibling.valid()) {
          NATIX_ASSIGN_OR_RETURN(current_, DeepestLast(record_.prev_sibling));
          NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(current_, &record_));
          return Status::OK();
        }
        current_ = record_.parent;
        if (!current_.valid()) {
          done_ = true;
          return Status::OK();
        }
        NATIX_RETURN_IF_ERROR(accessor_.ReadHeader(current_, &record_));
        if (current_ == skip_ancestor_) {
          skip_ancestor_ = record_.parent;
          continue;  // ancestors are excluded from the preceding axis
        }
        return Status::OK();
      }
    }
  }

  if (!current_.valid()) {
    done_ = true;
    return Status::OK();
  }
  return accessor_.ReadHeader(current_, &record_);
}

Status AxisCursor::Next(bool* has, NodeRef* out) {
  *has = false;
  while (!done_) {
    NATIX_RETURN_IF_ERROR(Step());
    if (done_) break;
    if (MatchesNodeTest(record_, test_, principal_is_attribute_)) {
      *has = true;
      *out = NodeRef::Make(current_, record_.order);
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace natix::runtime
