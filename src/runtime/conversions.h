#ifndef NATIX_RUNTIME_CONVERSIONS_H_
#define NATIX_RUNTIME_CONVERSIONS_H_

#include <string>

#include "base/statusor.h"
#include "runtime/value.h"
#include "storage/node_store.h"

namespace natix::runtime {

/// Execution-time context shared by conversions, the NVM and iterators:
/// the store whose pages node references point into.
struct EvalContext {
  const storage::NodeStore* store = nullptr;
};

/// XPath string-value of a node.
StatusOr<std::string> NodeStringValue(NodeRef node, const EvalContext& ctx);

/// XPath boolean() applied to an atomic value or a single node/sequence.
/// Nodes convert to true (a one-node node-set); sequences to non-emptiness.
StatusOr<bool> ToBoolean(const Value& v, const EvalContext& ctx);

/// XPath number(): booleans to 0/1, strings via the Number production,
/// nodes via their string-value. Null converts to NaN.
StatusOr<double> ToNumber(const Value& v, const EvalContext& ctx);

/// XPath string(): numbers per the XPath formatting rules, nodes via their
/// string-value, sequences via the first node in document order ("" when
/// empty). Null converts to "".
StatusOr<std::string> ToStringValue(const Value& v, const EvalContext& ctx);

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Comparison of two non-node-set operands with the XPath 1.0 type
/// promotion rules: for = and != booleans dominate, then numbers, then
/// strings; the relational operators always compare numbers. A kNode
/// operand behaves like its string-value.
StatusOr<bool> CompareAtomic(CompareOp op, const Value& a, const Value& b,
                             const EvalContext& ctx);

/// Whether `op` holds under the IEEE semantics XPath requires (NaN makes
/// every comparison but != false).
bool CompareNumbers(CompareOp op, double a, double b);

const char* CompareOpName(CompareOp op);

}  // namespace natix::runtime

#endif  // NATIX_RUNTIME_CONVERSIONS_H_
