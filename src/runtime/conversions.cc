#include "runtime/conversions.h"

#include <cmath>
#include <limits>

#include "base/xpath_number.h"

namespace natix::runtime {

StatusOr<std::string> NodeStringValue(NodeRef node, const EvalContext& ctx) {
  NATIX_DCHECK(ctx.store != nullptr);
  return ctx.store->StringValue(node.node_id());
}

StatusOr<bool> ToBoolean(const Value& v, const EvalContext& ctx) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBoolean:
      return v.AsBoolean();
    case ValueKind::kNumber: {
      double n = v.AsNumber();
      return n != 0 && !std::isnan(n);
    }
    case ValueKind::kString:
      return !v.AsString().empty();
    case ValueKind::kNode:
      (void)ctx;
      return true;  // a one-node node-set is non-empty
    case ValueKind::kSequence:
      return !v.AsSequence()->empty();
  }
  return Status::Internal("unknown value kind");
}

StatusOr<double> ToNumber(const Value& v, const EvalContext& ctx) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return std::numeric_limits<double>::quiet_NaN();
    case ValueKind::kBoolean:
      return v.AsBoolean() ? 1.0 : 0.0;
    case ValueKind::kNumber:
      return v.AsNumber();
    case ValueKind::kString:
      return StringToXPathNumber(v.AsString());
    case ValueKind::kNode: {
      NATIX_ASSIGN_OR_RETURN(std::string s, NodeStringValue(v.AsNode(), ctx));
      return StringToXPathNumber(s);
    }
    case ValueKind::kSequence: {
      NATIX_ASSIGN_OR_RETURN(std::string s, ToStringValue(v, ctx));
      return StringToXPathNumber(s);
    }
  }
  return Status::Internal("unknown value kind");
}

StatusOr<std::string> ToStringValue(const Value& v, const EvalContext& ctx) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return std::string();
    case ValueKind::kBoolean:
      return std::string(v.AsBoolean() ? "true" : "false");
    case ValueKind::kNumber:
      return XPathNumberToString(v.AsNumber());
    case ValueKind::kString:
      return v.AsString();
    case ValueKind::kNode:
      return NodeStringValue(v.AsNode(), ctx);
    case ValueKind::kSequence: {
      // string(node-set) is the string-value of the node first in
      // document order.
      const auto& seq = *v.AsSequence();
      const Value* first = nullptr;
      for (const Value& item : seq) {
        if (item.kind() != ValueKind::kNode) continue;
        if (first == nullptr ||
            item.AsNode().order < first->AsNode().order) {
          first = &item;
        }
      }
      if (first == nullptr) return std::string();
      return NodeStringValue(first->AsNode(), ctx);
    }
  }
  return Status::Internal("unknown value kind");
}

bool CompareNumbers(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

StatusOr<bool> CompareAtomic(CompareOp op, const Value& a, const Value& b,
                             const EvalContext& ctx) {
  // Relational operators always compare numbers (XPath 1.0 Sec. 3.4).
  if (op != CompareOp::kEq && op != CompareOp::kNe) {
    NATIX_ASSIGN_OR_RETURN(double na, ToNumber(a, ctx));
    NATIX_ASSIGN_OR_RETURN(double nb, ToNumber(b, ctx));
    return CompareNumbers(op, na, nb);
  }
  // (In)equality: booleans dominate, then numbers, then strings.
  if (a.kind() == ValueKind::kBoolean || b.kind() == ValueKind::kBoolean) {
    NATIX_ASSIGN_OR_RETURN(bool ba, ToBoolean(a, ctx));
    NATIX_ASSIGN_OR_RETURN(bool bb, ToBoolean(b, ctx));
    bool eq = ba == bb;
    return op == CompareOp::kEq ? eq : !eq;
  }
  if (a.kind() == ValueKind::kNumber || b.kind() == ValueKind::kNumber) {
    NATIX_ASSIGN_OR_RETURN(double na, ToNumber(a, ctx));
    NATIX_ASSIGN_OR_RETURN(double nb, ToNumber(b, ctx));
    return CompareNumbers(op, na, nb);
  }
  NATIX_ASSIGN_OR_RETURN(std::string sa, ToStringValue(a, ctx));
  NATIX_ASSIGN_OR_RETURN(std::string sb, ToStringValue(b, ctx));
  bool eq = sa == sb;
  return op == CompareOp::kEq ? eq : !eq;
}

}  // namespace natix::runtime
