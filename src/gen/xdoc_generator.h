#ifndef NATIX_GEN_XDOC_GENERATOR_H_
#define NATIX_GEN_XDOC_GENERATOR_H_

#include <cstdint>
#include <string>

namespace natix::gen {

/// The paper's document generator (Sec. 6.2.1): "The document generator
/// follows a breadth first algorithm and fills every depth of the
/// document with the given fanout until the maximum number of elements or
/// depth is reached. The root element of every document has the name
/// xdoc. Every element contains an attribute id which is consecutively
/// numbered."
struct XDocOptions {
  uint64_t max_elements = 2000;
  uint32_t fanout = 6;
  uint32_t depth = 4;
};

/// Generates the XML text of such a document. Ids are assigned in breadth
/// first (generation) order, starting at 0 for the xdoc root.
std::string GenerateXDoc(const XDocOptions& options);

/// Number of elements the generator produces for `options` (min of the
/// element budget and the complete tree of the given fanout/depth).
uint64_t XDocElementCount(const XDocOptions& options);

}  // namespace natix::gen

#endif  // NATIX_GEN_XDOC_GENERATOR_H_
