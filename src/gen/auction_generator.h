#ifndef NATIX_GEN_AUCTION_GENERATOR_H_
#define NATIX_GEN_AUCTION_GENERATOR_H_

#include <cstdint>
#include <string>

namespace natix::gen {

/// An XMark-inspired auction-site document generator: `<site>` with
/// `<people>` (person records carrying @id, name, city, optional
/// income), `<items>` (item records with category references and
/// descriptions) and `<auctions>` (open auctions with a bid history
/// referencing people and items by id). Cross-references use `person`/
/// `item` attributes holding ids resolvable with the XPath `id()`
/// function.
///
/// This is the third benchmark/example domain (next to the paper's
/// generated xdoc documents and the synthetic DBLP): it exercises
/// id()-joins, value predicates over numbers, and deeper mixed content.
struct AuctionOptions {
  uint64_t people = 500;
  uint64_t items = 1000;
  uint64_t auctions = 800;
  uint32_t seed = 7;
};

std::string GenerateAuctionSite(const AuctionOptions& options);

}  // namespace natix::gen

#endif  // NATIX_GEN_AUCTION_GENERATOR_H_
