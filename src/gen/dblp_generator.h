#ifndef NATIX_GEN_DBLP_GENERATOR_H_
#define NATIX_GEN_DBLP_GENERATOR_H_

#include <cstdint>
#include <string>

namespace natix::gen {

/// Synthetic stand-in for the DBLP XML dataset [16] used in Fig. 10 of
/// the paper (the real 216 MB dump is neither redistributable nor
/// desirable in a test environment). The generator reproduces the element
/// and attribute schema the Fig. 10 queries touch — `dblp` root with
/// `article` / `inproceedings` (plus some `book` and `phdthesis`)
/// children carrying `@key`, 1-5 `author` elements, `title`, `year`,
/// `pages` and venue elements — and plants the specific values those
/// queries select: publications with year 1991, the author
/// "Guido Moerkotte", four-author articles, and one inproceedings with
/// key "conf/er/LockemannM91".
struct DblpOptions {
  /// Number of publication elements under <dblp>.
  uint64_t publications = 10000;
  uint32_t seed = 42;
};

std::string GenerateDblp(const DblpOptions& options);

}  // namespace natix::gen

#endif  // NATIX_GEN_DBLP_GENERATOR_H_
