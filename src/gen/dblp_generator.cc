#include "gen/dblp_generator.h"

#include <random>
#include <vector>

namespace natix::gen {

namespace {

const char* kAuthors[] = {
    "Guido Moerkotte",  "Sven Helmer",      "Carl-Christian Kanne",
    "Matthias Brantner", "Donald Kossmann", "Daniela Florescu",
    "Georg Gottlob",    "Christoph Koch",   "Reinhard Pichler",
    "Goetz Graefe",     "Nicolas Bruno",    "Nick Koudas",
    "Divesh Srivastava", "Torsten Grust",   "Jennifer Widom",
    "Michael Stonebraker", "David DeWitt",  "Hector Garcia-Molina",
    "Alon Halevy",      "Serge Abiteboul",
};

const char* kTitleWords[] = {
    "Efficient", "Scalable",  "Algebraic", "XPath",     "Query",
    "Evaluation", "Processing", "Optimization", "Indexing", "XML",
    "Databases", "Streams",   "Joins",     "Storage",   "Native",
    "Holistic",  "Structural", "Pattern",  "Matching",  "Systems",
};

const char* kJournals[] = {"VLDB J.", "TODS", "SIGMOD Record",
                           "Inf. Syst.", "TKDE"};
const char* kConferences[] = {"SIGMOD", "VLDB", "ICDE", "EDBT", "ER"};

}  // namespace

std::string GenerateDblp(const DblpOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> author_dist(
      0, static_cast<int>(std::size(kAuthors)) - 1);
  std::uniform_int_distribution<int> word_dist(
      0, static_cast<int>(std::size(kTitleWords)) - 1);
  std::uniform_int_distribution<int> year_dist(1980, 2004);
  std::uniform_int_distribution<int> author_count_dist(1, 5);
  std::uniform_int_distribution<int> kind_dist(0, 99);
  std::uniform_int_distribution<int> journal_dist(
      0, static_cast<int>(std::size(kJournals)) - 1);
  std::uniform_int_distribution<int> conf_dist(
      0, static_cast<int>(std::size(kConferences)) - 1);
  std::uniform_int_distribution<int> pages_dist(1, 900);

  std::string out;
  out.reserve(options.publications * 220);
  out += "<dblp>";

  // The specific record Fig. 10's key-lookup query selects, placed at a
  // pseudo-random position via the loop below.
  uint64_t special_at =
      options.publications > 2 ? options.publications / 3 : 0;

  for (uint64_t i = 0; i < options.publications; ++i) {
    if (i == special_at) {
      out +=
          "<inproceedings key=\"conf/er/LockemannM91\" mdate=\"2002-01-03\">"
          "<author>Peter C. Lockemann</author>"
          "<author>Guido Moerkotte</author>"
          "<title>On the Notion of Concurrency-Related DB Consistency.</title>"
          "<pages>317-334</pages><year>1991</year>"
          "<booktitle>ER</booktitle></inproceedings>";
      continue;
    }
    int kind = kind_dist(rng);
    // Roughly DBLP-like mix: ~45% article, ~45% inproceedings, rest other.
    const char* element = kind < 45               ? "article"
                          : kind < 90             ? "inproceedings"
                          : kind < 95             ? "book"
                                                  : "phdthesis";
    bool is_article = kind < 45;
    int year = year_dist(rng);

    out += "<";
    out += element;
    out += " key=\"";
    if (is_article) {
      out += "journals/j" + std::to_string(journal_dist(rng)) + "/p" +
             std::to_string(i);
    } else {
      out += "conf/c" + std::to_string(conf_dist(rng)) + "/p" +
             std::to_string(i);
    }
    out += "\" mdate=\"2004-0" + std::to_string(1 + (i % 9)) + "-15\">";

    int author_count = author_count_dist(rng);
    for (int a = 0; a < author_count; ++a) {
      out += "<author>";
      out += kAuthors[author_dist(rng)];
      out += "</author>";
    }

    out += "<title>";
    int words = 3 + (kind % 5);
    for (int w = 0; w < words; ++w) {
      if (w > 0) out += " ";
      out += kTitleWords[word_dist(rng)];
    }
    out += ".</title>";

    int first_page = pages_dist(rng);
    out += "<pages>" + std::to_string(first_page) + "-" +
           std::to_string(first_page + 12) + "</pages>";
    out += "<year>" + std::to_string(year) + "</year>";
    if (is_article) {
      out += "<journal>";
      out += kJournals[journal_dist(rng)];
      out += "</journal><volume>" + std::to_string(1 + year - 1980) +
             "</volume>";
    } else {
      out += "<booktitle>";
      out += kConferences[conf_dist(rng)];
      out += "</booktitle>";
    }
    out += "<url>db/";
    out += element;
    out += "/p" + std::to_string(i) + ".html</url>";
    out += "</";
    out += element;
    out += ">";
  }
  out += "</dblp>";
  return out;
}

}  // namespace natix::gen
