#include "gen/xdoc_generator.h"

#include <vector>

namespace natix::gen {

namespace {

/// Builds the tree shape breadth-first: node 0 is the root; each node at
/// depth < max depth receives `fanout` children while the element budget
/// lasts.
struct Shape {
  std::vector<std::vector<uint64_t>> children;
};

Shape BuildShape(const XDocOptions& options) {
  Shape shape;
  shape.children.emplace_back();  // root
  uint64_t created = 1;
  std::vector<std::pair<uint64_t, uint32_t>> frontier = {{0, 1}};  // id,depth
  std::vector<std::pair<uint64_t, uint32_t>> next;
  while (!frontier.empty() && created < options.max_elements) {
    next.clear();
    for (const auto& [node, node_depth] : frontier) {
      if (node_depth > options.depth) continue;
      for (uint32_t i = 0;
           i < options.fanout && created < options.max_elements; ++i) {
        uint64_t child = created++;
        shape.children.emplace_back();
        shape.children[node].push_back(child);
        next.emplace_back(child, node_depth + 1);
      }
      if (created >= options.max_elements) break;
    }
    frontier.swap(next);
  }
  return shape;
}

void Serialize(const Shape& shape, uint64_t node, bool is_root,
               std::string* out) {
  *out += is_root ? "<xdoc id=\"" : "<n id=\"";
  *out += std::to_string(node);
  *out += "\"";
  if (shape.children[node].empty()) {
    *out += "/>";
    return;
  }
  *out += ">";
  for (uint64_t child : shape.children[node]) {
    Serialize(shape, child, false, out);
  }
  *out += is_root ? "</xdoc>" : "</n>";
}

}  // namespace

std::string GenerateXDoc(const XDocOptions& options) {
  Shape shape = BuildShape(options);
  std::string out;
  out.reserve(shape.children.size() * 16);
  Serialize(shape, 0, true, &out);
  return out;
}

uint64_t XDocElementCount(const XDocOptions& options) {
  return BuildShape(options).children.size();
}

}  // namespace natix::gen
