#include "gen/auction_generator.h"

#include <random>

namespace natix::gen {

namespace {

const char* kFirstNames[] = {"Ada",  "Edsger", "Grace", "Alan",
                             "Barbara", "Donald", "Leslie", "Tony",
                             "Frances", "John"};
const char* kLastNames[] = {"Lovelace", "Dijkstra", "Hopper", "Turing",
                            "Liskov",  "Knuth",    "Lamport", "Hoare",
                            "Allen",   "Backus"};
const char* kCities[] = {"Mannheim", "Karlsruhe", "Berlin", "Zurich",
                         "Vienna",   "Paris"};
const char* kCategories[] = {"books", "music", "tools", "art", "sports"};
const char* kAdjectives[] = {"vintage", "rare", "mint", "used", "signed"};
const char* kNouns[] = {"folio", "pressing", "lathe", "print", "racket"};

}  // namespace

std::string GenerateAuctionSite(const AuctionOptions& options) {
  std::mt19937_64 rng(options.seed);
  auto pick = [&rng](auto& array) -> const char* {
    return array[std::uniform_int_distribution<size_t>(
        0, std::size(array) - 1)(rng)];
  };
  std::uniform_int_distribution<int> income_dist(20000, 180000);
  std::uniform_int_distribution<int> price_dist(1, 500);
  std::uniform_int_distribution<int> bid_count_dist(0, 6);
  std::uniform_int_distribution<int> percent(0, 99);

  std::string out;
  out.reserve((options.people + options.items + options.auctions) * 160);
  out += "<site>";

  out += "<people>";
  for (uint64_t i = 0; i < options.people; ++i) {
    out += "<person id=\"person" + std::to_string(i) + "\">";
    out += "<name>" + std::string(pick(kFirstNames)) + " " +
           pick(kLastNames) + "</name>";
    out += "<city>" + std::string(pick(kCities)) + "</city>";
    if (percent(rng) < 70) {
      out += "<income>" + std::to_string(income_dist(rng)) + "</income>";
    }
    out += "</person>";
  }
  out += "</people>";

  out += "<items>";
  for (uint64_t i = 0; i < options.items; ++i) {
    out += "<item id=\"item" + std::to_string(i) + "\" category=\"" +
           pick(kCategories) + "\">";
    out += "<description>A " + std::string(pick(kAdjectives)) + " " +
           pick(kNouns) + ".</description>";
    out += "<reserve>" + std::to_string(price_dist(rng)) + "</reserve>";
    out += "</item>";
  }
  out += "</items>";

  out += "<auctions>";
  for (uint64_t i = 0; i < options.auctions; ++i) {
    uint64_t item = std::uniform_int_distribution<uint64_t>(
        0, options.items - 1)(rng);
    uint64_t seller = std::uniform_int_distribution<uint64_t>(
        0, options.people - 1)(rng);
    out += "<auction item=\"item" + std::to_string(item) + "\" seller=\"" +
           "person" + std::to_string(seller) + "\">";
    int bids = bid_count_dist(rng);
    int price = price_dist(rng);
    for (int b = 0; b < bids; ++b) {
      uint64_t bidder = std::uniform_int_distribution<uint64_t>(
          0, options.people - 1)(rng);
      price += std::uniform_int_distribution<int>(1, 40)(rng);
      out += "<bid person=\"person" + std::to_string(bidder) +
             "\"><amount>" + std::to_string(price) + "</amount></bid>";
    }
    if (bids > 0 && percent(rng) < 50) {
      out += "<closed><final>" + std::to_string(price) + "</final></closed>";
    }
    out += "</auction>";
  }
  out += "</auctions>";

  out += "</site>";
  return out;
}

}  // namespace natix::gen
