#include "dom/dom.h"

namespace natix::dom {

namespace {

void AppendTextValue(const Node* node, std::string* out) {
  if (node->kind == NodeKind::kText) {
    *out += node->value;
    return;
  }
  for (const Node* child : node->children) AppendTextValue(child, out);
}

uint64_t AssignOrderRec(Node* node, uint64_t next) {
  node->order = next++;
  for (Node* attr : node->attributes) attr->order = next++;
  for (Node* child : node->children) next = AssignOrderRec(child, next);
  return next;
}

}  // namespace

std::string Node::StringValue() const {
  switch (kind) {
    case NodeKind::kDocument:
    case NodeKind::kElement: {
      std::string out;
      AppendTextValue(this, &out);
      return out;
    }
    case NodeKind::kAttribute:
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      return value;
  }
  return "";
}

Node* Node::NextSibling() const {
  if (parent == nullptr || kind == NodeKind::kAttribute) return nullptr;
  const std::vector<Node*>& siblings = parent->children;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == this) {
      return i + 1 < siblings.size() ? siblings[i + 1] : nullptr;
    }
  }
  return nullptr;
}

Node* Node::PreviousSibling() const {
  if (parent == nullptr || kind == NodeKind::kAttribute) return nullptr;
  const std::vector<Node*>& siblings = parent->children;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == this) return i > 0 ? siblings[i - 1] : nullptr;
  }
  return nullptr;
}

Document::Document() { root_.kind = NodeKind::kDocument; }

Node* Document::NewNode(NodeKind kind) {
  nodes_.emplace_back();
  nodes_.back().kind = kind;
  return &nodes_.back();
}

void Document::AssignOrder() { AssignOrderRec(&root_, 0); }

}  // namespace natix::dom
