#ifndef NATIX_DOM_DOM_H_
#define NATIX_DOM_DOM_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace natix::dom {

/// XPath 1.0 data-model node kinds (namespace nodes are out of scope for
/// this build; the paper's engine does not materialize them either).
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction
};

/// A node of the main-memory document tree used by the baseline
/// interpreter (the stand-in for xsltproc/Xalan) and by conformance tests.
/// Nodes are owned by their Document and live as long as it does.
struct Node {
  NodeKind kind = NodeKind::kDocument;
  /// Element/attribute name or PI target; empty for other kinds.
  std::string name;
  /// Text/comment content, attribute value, or PI data.
  std::string value;

  Node* parent = nullptr;
  /// Child nodes in document order (elements, text, comments, PIs).
  std::vector<Node*> children;
  /// Attribute nodes (elements only), in document order.
  std::vector<Node*> attributes;

  /// Document-order rank, unique per document; attributes order after
  /// their owning element and before its children.
  uint64_t order = 0;

  bool IsElement() const { return kind == NodeKind::kElement; }
  bool IsAttribute() const { return kind == NodeKind::kAttribute; }

  /// XPath string-value: concatenated descendant text for document and
  /// element nodes; stored value otherwise.
  std::string StringValue() const;

  /// Next / previous sibling among the parent's children (nullptr at the
  /// ends or for attribute / document nodes).
  Node* NextSibling() const;
  Node* PreviousSibling() const;
};

/// An in-memory XML document: owns all of its nodes.
class Document {
 public:
  Document();

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  Node* root() { return &root_; }
  const Node* root() const { return &root_; }

  /// Allocates a node owned by this document.
  Node* NewNode(NodeKind kind);

  /// Number of nodes (including the document node).
  size_t size() const { return nodes_.size() + 1; }

  /// Re-assigns document-order ranks after tree construction/mutation.
  void AssignOrder();

 private:
  Node root_;
  std::deque<Node> nodes_;
};

}  // namespace natix::dom

#endif  // NATIX_DOM_DOM_H_
