#include "dom/dom_builder.h"

#include <utility>
#include <vector>

#include "xml/reader.h"

namespace natix::dom {

StatusOr<std::unique_ptr<Document>> ParseDocument(std::string_view input) {
  auto doc = std::make_unique<Document>();
  xml::Reader reader(input);
  std::vector<Node*> stack = {doc->root()};

  auto append_text = [&](const std::string& text) {
    Node* parent = stack.back();
    // Merge adjacent text (e.g. "a<![CDATA[b]]>c") into one node.
    if (!parent->children.empty() &&
        parent->children.back()->kind == NodeKind::kText) {
      parent->children.back()->value += text;
      return;
    }
    Node* node = doc->NewNode(NodeKind::kText);
    node->value = text;
    node->parent = parent;
    parent->children.push_back(node);
  };

  while (true) {
    xml::Reader::Event event;
    Status st = reader.Next(&event);
    if (!st.ok()) return st;
    switch (event.kind) {
      case xml::EventKind::kEndDocument:
        doc->AssignOrder();
        return doc;
      case xml::EventKind::kStartElement: {
        Node* element = doc->NewNode(NodeKind::kElement);
        element->name = std::move(event.name);
        element->parent = stack.back();
        stack.back()->children.push_back(element);
        for (xml::Attribute& attr : event.attributes) {
          Node* attribute = doc->NewNode(NodeKind::kAttribute);
          attribute->name = std::move(attr.name);
          attribute->value = std::move(attr.value);
          attribute->parent = element;
          element->attributes.push_back(attribute);
        }
        stack.push_back(element);
        break;
      }
      case xml::EventKind::kEndElement:
        stack.pop_back();
        break;
      case xml::EventKind::kText:
        append_text(event.text);
        break;
      case xml::EventKind::kComment: {
        Node* node = doc->NewNode(NodeKind::kComment);
        node->value = std::move(event.text);
        node->parent = stack.back();
        stack.back()->children.push_back(node);
        break;
      }
      case xml::EventKind::kProcessingInstruction: {
        Node* node = doc->NewNode(NodeKind::kProcessingInstruction);
        node->name = std::move(event.name);
        node->value = std::move(event.text);
        node->parent = stack.back();
        stack.back()->children.push_back(node);
        break;
      }
    }
  }
}

}  // namespace natix::dom
