#ifndef NATIX_DOM_DOM_BUILDER_H_
#define NATIX_DOM_DOM_BUILDER_H_

#include <memory>
#include <string_view>

#include "base/statusor.h"
#include "dom/dom.h"

namespace natix::dom {

/// Parses `input` into a main-memory Document. Adjacent text runs
/// (character data + CDATA) are merged into single text nodes, as the
/// XPath data model requires.
StatusOr<std::unique_ptr<Document>> ParseDocument(std::string_view input);

}  // namespace natix::dom

#endif  // NATIX_DOM_DOM_BUILDER_H_
