#include "xml/writer.h"

#include "xml/escape.h"

namespace natix::xml {

namespace {

using storage::StoredNode;
using storage::StoredNodeKind;

Status Append(const StoredNode& node, std::string* out);

Status AppendChildren(const StoredNode& node, std::string* out) {
  NATIX_ASSIGN_OR_RETURN(StoredNode child, node.first_child());
  while (child.valid()) {
    NATIX_RETURN_IF_ERROR(Append(child, out));
    NATIX_ASSIGN_OR_RETURN(child, child.next_sibling());
  }
  return Status::OK();
}

Status Append(const StoredNode& node, std::string* out) {
  NATIX_ASSIGN_OR_RETURN(StoredNodeKind kind, node.kind());
  switch (kind) {
    case StoredNodeKind::kDocument:
      return AppendChildren(node, out);
    case StoredNodeKind::kElement: {
      NATIX_ASSIGN_OR_RETURN(std::string name, node.name());
      *out += "<" + name;
      NATIX_ASSIGN_OR_RETURN(StoredNode attr, node.first_attribute());
      while (attr.valid()) {
        NATIX_ASSIGN_OR_RETURN(std::string attr_name, attr.name());
        NATIX_ASSIGN_OR_RETURN(std::string attr_value, attr.content());
        *out += " " + attr_name + "=\"" + EscapeAttribute(attr_value) + "\"";
        NATIX_ASSIGN_OR_RETURN(attr, attr.next_sibling());
      }
      NATIX_ASSIGN_OR_RETURN(StoredNode first_child, node.first_child());
      if (!first_child.valid()) {
        *out += "/>";
        return Status::OK();
      }
      *out += ">";
      NATIX_RETURN_IF_ERROR(AppendChildren(node, out));
      *out += "</" + name + ">";
      return Status::OK();
    }
    case StoredNodeKind::kAttribute: {
      NATIX_ASSIGN_OR_RETURN(std::string name, node.name());
      NATIX_ASSIGN_OR_RETURN(std::string value, node.content());
      *out += name + "=\"" + EscapeAttribute(value) + "\"";
      return Status::OK();
    }
    case StoredNodeKind::kText: {
      NATIX_ASSIGN_OR_RETURN(std::string text, node.content());
      *out += EscapeText(text);
      return Status::OK();
    }
    case StoredNodeKind::kComment: {
      NATIX_ASSIGN_OR_RETURN(std::string text, node.content());
      *out += "<!--" + text + "-->";
      return Status::OK();
    }
    case StoredNodeKind::kProcessingInstruction: {
      NATIX_ASSIGN_OR_RETURN(std::string target, node.name());
      NATIX_ASSIGN_OR_RETURN(std::string data, node.content());
      *out += "<?" + target + (data.empty() ? "" : " " + data) + "?>";
      return Status::OK();
    }
  }
  return Status::Internal("unknown node kind");
}

}  // namespace

StatusOr<std::string> OuterXml(const StoredNode& node) {
  std::string out;
  NATIX_RETURN_IF_ERROR(Append(node, &out));
  return out;
}

StatusOr<std::string> InnerXml(const StoredNode& node) {
  NATIX_ASSIGN_OR_RETURN(StoredNodeKind kind, node.kind());
  if (kind != StoredNodeKind::kElement &&
      kind != StoredNodeKind::kDocument) {
    return node.content();
  }
  std::string out;
  NATIX_RETURN_IF_ERROR(AppendChildren(node, &out));
  return out;
}

}  // namespace natix::xml
