#ifndef NATIX_XML_READER_H_
#define NATIX_XML_READER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace natix::xml {

/// One attribute of a start-element event.
struct Attribute {
  std::string name;
  std::string value;  // entity references resolved, whitespace normalized
};

/// Event kinds produced by the pull parser, mirroring the XPath 1.0 data
/// model node kinds (document and element structure, text, comments,
/// processing instructions). CDATA sections surface as text.
enum class EventKind {
  kStartElement,
  kEndElement,
  kText,
  kComment,
  kProcessingInstruction,
  kEndDocument
};

/// A non-validating XML 1.0 pull parser over an in-memory buffer.
///
/// Supports elements, attributes, character data, CDATA sections,
/// comments, processing instructions, the five builtin entities, decimal
/// and hexadecimal character references, and skips the XML declaration
/// and DOCTYPE (internal subsets without entity declarations).
///
/// Usage:
///   Reader r(input);
///   while (true) {
///     NATIX_ASSIGN_OR_RETURN(Reader::Event e, ...)  // or Next() + check
///     if (e.kind == EventKind::kEndDocument) break;
///   }
class Reader {
 public:
  struct Event {
    EventKind kind = EventKind::kEndDocument;
    /// Element name (start/end element), PI target, or empty.
    std::string name;
    /// Text content, comment content, or PI data.
    std::string text;
    /// Attributes of a start element, in document order.
    std::vector<Attribute> attributes;
    /// True for `<a/>`: a start element with no matching end event emitted
    /// separately — the reader synthesizes the end event itself, so
    /// consumers never need to look at this flag; it is exposed for tests.
    bool self_closing = false;
  };

  explicit Reader(std::string_view input) : input_(input) {}

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Advances to the next event. After kEndDocument (or an error), further
  /// calls keep returning kEndDocument (or the same error).
  Status Next(Event* event);

  /// 1-based line of the current parse position, for error messages.
  int line() const { return line_; }

 private:
  Status Fail(std::string_view message);
  Status ParseElementStart(Event* event);
  Status ParseElementEnd(Event* event);
  Status ParseComment(Event* event);
  Status ParsePIOrDeclaration(Event* event, bool* skipped);
  Status ParseCData(Event* event);
  Status ParseText(Event* event);
  Status ParseAttributeValue(std::string* value);
  Status ParseName(std::string* name);
  Status ParseReference(std::string* out);
  Status SkipDoctype();
  void SkipWhitespace();

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view token) const;
  void Advance(size_t n);

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  /// Open element stack for well-formedness checking.
  std::vector<std::string> open_elements_;
  /// Pending synthesized end-element event for self-closing tags.
  bool pending_end_ = false;
  std::string pending_end_name_;
  bool seen_root_ = false;
  bool failed_ = false;
  Status failure_;
};

}  // namespace natix::xml

#endif  // NATIX_XML_READER_H_
