#ifndef NATIX_XML_ESCAPE_H_
#define NATIX_XML_ESCAPE_H_

#include <string>
#include <string_view>

namespace natix::xml {

/// Escapes `<`, `>`, `&` for element content.
std::string EscapeText(std::string_view s);

/// Escapes `<`, `&`, `"` for double-quoted attribute values.
std::string EscapeAttribute(std::string_view s);

}  // namespace natix::xml

#endif  // NATIX_XML_ESCAPE_H_
