#include "xml/reader.h"

#include <cstdint>

#include "base/strings.h"

namespace natix::xml {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

}  // namespace

bool Reader::LookingAt(std::string_view token) const {
  return input_.substr(pos_, token.size()) == token;
}

void Reader::Advance(size_t n) {
  for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
}

void Reader::SkipWhitespace() {
  while (!AtEnd() && IsXmlWhitespace(Peek())) Advance(1);
}

Status Reader::Fail(std::string_view message) {
  failed_ = true;
  failure_ = Status::InvalidArgument("XML parse error at line " +
                                     std::to_string(line_) + ": " +
                                     std::string(message));
  return failure_;
}

Status Reader::ParseName(std::string* name) {
  if (AtEnd() || !IsNameStartChar(Peek())) return Fail("expected a name");
  size_t begin = pos_;
  while (!AtEnd() && IsNameChar(Peek())) Advance(1);
  name->assign(input_.substr(begin, pos_ - begin));
  return Status::OK();
}

Status Reader::ParseReference(std::string* out) {
  // Caller consumed '&'.
  if (LookingAt("#")) {
    Advance(1);
    uint32_t cp = 0;
    bool hex = false;
    if (LookingAt("x") || LookingAt("X")) {
      hex = true;
      Advance(1);
    }
    size_t digits = 0;
    while (!AtEnd() && Peek() != ';') {
      char c = Peek();
      uint32_t d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (hex && c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (hex && c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return Fail("bad character reference");
      }
      cp = cp * (hex ? 16 : 10) + d;
      if (cp > 0x10FFFF) return Fail("character reference out of range");
      ++digits;
      Advance(1);
    }
    if (digits == 0 || AtEnd()) return Fail("unterminated character reference");
    Advance(1);  // ';'
    Utf8Append(cp, *out);
    return Status::OK();
  }
  std::string name;
  size_t begin = pos_;
  while (!AtEnd() && Peek() != ';' && pos_ - begin < 8) Advance(1);
  if (AtEnd() || Peek() != ';') return Fail("unterminated entity reference");
  name.assign(input_.substr(begin, pos_ - begin));
  Advance(1);  // ';'
  if (name == "lt") {
    out->push_back('<');
  } else if (name == "gt") {
    out->push_back('>');
  } else if (name == "amp") {
    out->push_back('&');
  } else if (name == "apos") {
    out->push_back('\'');
  } else if (name == "quot") {
    out->push_back('"');
  } else {
    return Fail("unknown entity '&" + name + ";'");
  }
  return Status::OK();
}

Status Reader::ParseAttributeValue(std::string* value) {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Fail("expected quoted attribute value");
  }
  char quote = Peek();
  Advance(1);
  while (!AtEnd() && Peek() != quote) {
    char c = Peek();
    if (c == '<') return Fail("'<' in attribute value");
    if (c == '&') {
      Advance(1);
      NATIX_RETURN_IF_ERROR(ParseReference(value));
    } else {
      // Attribute-value normalization: whitespace becomes a space.
      value->push_back(IsXmlWhitespace(c) ? ' ' : c);
      Advance(1);
    }
  }
  if (AtEnd()) return Fail("unterminated attribute value");
  Advance(1);  // closing quote
  return Status::OK();
}

Status Reader::ParseElementStart(Event* event) {
  // Caller consumed '<'.
  event->kind = EventKind::kStartElement;
  NATIX_RETURN_IF_ERROR(ParseName(&event->name));
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return Fail("unterminated start tag");
    if (Peek() == '>') {
      Advance(1);
      open_elements_.push_back(event->name);
      return Status::OK();
    }
    if (LookingAt("/>")) {
      Advance(2);
      event->self_closing = true;
      pending_end_ = true;
      pending_end_name_ = event->name;
      return Status::OK();
    }
    Attribute attr;
    NATIX_RETURN_IF_ERROR(ParseName(&attr.name));
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Fail("expected '=' after attribute");
    Advance(1);
    SkipWhitespace();
    NATIX_RETURN_IF_ERROR(ParseAttributeValue(&attr.value));
    for (const Attribute& existing : event->attributes) {
      if (existing.name == attr.name) {
        return Fail("duplicate attribute '" + attr.name + "'");
      }
    }
    event->attributes.push_back(std::move(attr));
  }
}

Status Reader::ParseElementEnd(Event* event) {
  // Caller consumed '</'.
  event->kind = EventKind::kEndElement;
  NATIX_RETURN_IF_ERROR(ParseName(&event->name));
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') return Fail("expected '>' in end tag");
  Advance(1);
  if (open_elements_.empty() || open_elements_.back() != event->name) {
    return Fail("mismatched end tag '</" + event->name + ">'");
  }
  open_elements_.pop_back();
  return Status::OK();
}

Status Reader::ParseComment(Event* event) {
  // Caller consumed '<!--'.
  event->kind = EventKind::kComment;
  size_t begin = pos_;
  while (!AtEnd() && !LookingAt("--")) Advance(1);
  if (!LookingAt("-->")) return Fail("'--' inside comment or unterminated");
  event->text.assign(input_.substr(begin, pos_ - begin));
  Advance(3);
  return Status::OK();
}

Status Reader::ParsePIOrDeclaration(Event* event, bool* skipped) {
  // Caller consumed '<?'.
  *skipped = false;
  std::string target;
  NATIX_RETURN_IF_ERROR(ParseName(&target));
  size_t begin = pos_;
  while (!AtEnd() && !LookingAt("?>")) Advance(1);
  if (AtEnd()) return Fail("unterminated processing instruction");
  std::string data(input_.substr(begin, pos_ - begin));
  Advance(2);
  if (target == "xml" || target == "XML") {
    *skipped = true;  // XML declaration is not a PI node
    return Status::OK();
  }
  event->kind = EventKind::kProcessingInstruction;
  event->name = target;
  // Strip the single whitespace separating target and data.
  size_t i = 0;
  while (i < data.size() && IsXmlWhitespace(data[i])) ++i;
  event->text = data.substr(i);
  return Status::OK();
}

Status Reader::ParseCData(Event* event) {
  // Caller consumed '<![CDATA['.
  event->kind = EventKind::kText;
  size_t begin = pos_;
  while (!AtEnd() && !LookingAt("]]>")) Advance(1);
  if (AtEnd()) return Fail("unterminated CDATA section");
  event->text.assign(input_.substr(begin, pos_ - begin));
  Advance(3);
  return Status::OK();
}

Status Reader::SkipDoctype() {
  // Caller consumed '<!DOCTYPE'. Skip to the matching '>' honoring an
  // internal subset in brackets; entity declarations are not supported.
  int bracket_depth = 0;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    } else if (c == '>' && bracket_depth == 0) {
      Advance(1);
      return Status::OK();
    }
    Advance(1);
  }
  return Fail("unterminated DOCTYPE");
}

Status Reader::ParseText(Event* event) {
  event->kind = EventKind::kText;
  while (!AtEnd() && Peek() != '<') {
    char c = Peek();
    if (c == '&') {
      Advance(1);
      NATIX_RETURN_IF_ERROR(ParseReference(&event->text));
    } else {
      if (LookingAt("]]>")) return Fail("']]>' in character data");
      event->text.push_back(c);
      Advance(1);
    }
  }
  return Status::OK();
}

Status Reader::Next(Event* event) {
  *event = Event();
  if (failed_) return failure_;

  if (pending_end_) {
    pending_end_ = false;
    event->kind = EventKind::kEndElement;
    event->name = pending_end_name_;
    return Status::OK();
  }

  while (true) {
    if (AtEnd()) {
      if (!open_elements_.empty()) {
        return Fail("unexpected end of input: '<" + open_elements_.back() +
                    ">' is not closed");
      }
      if (!seen_root_) return Fail("document has no root element");
      event->kind = EventKind::kEndDocument;
      return Status::OK();
    }

    if (Peek() != '<') {
      if (open_elements_.empty()) {
        // Whitespace is allowed outside the root element; anything else
        // is a well-formedness violation.
        size_t begin = pos_;
        while (!AtEnd() && Peek() != '<') {
          if (!IsXmlWhitespace(Peek())) {
            return Fail("character data outside the root element");
          }
          Advance(1);
        }
        (void)begin;
        continue;
      }
      NATIX_RETURN_IF_ERROR(ParseText(event));
      if (event->text.empty()) continue;
      return Status::OK();
    }

    Advance(1);  // '<'
    if (LookingAt("!--")) {
      Advance(3);
      return ParseComment(event);
    }
    if (LookingAt("![CDATA[")) {
      if (open_elements_.empty()) return Fail("CDATA outside root element");
      Advance(8);
      NATIX_RETURN_IF_ERROR(ParseCData(event));
      if (event->text.empty()) continue;
      return Status::OK();
    }
    if (LookingAt("!DOCTYPE")) {
      if (seen_root_) return Fail("DOCTYPE after root element");
      Advance(8);
      NATIX_RETURN_IF_ERROR(SkipDoctype());
      continue;
    }
    if (LookingAt("?")) {
      Advance(1);
      bool skipped = false;
      NATIX_RETURN_IF_ERROR(ParsePIOrDeclaration(event, &skipped));
      if (skipped) continue;
      return Status::OK();
    }
    if (LookingAt("/")) {
      Advance(1);
      return ParseElementEnd(event);
    }
    if (open_elements_.empty() && seen_root_) {
      return Fail("multiple root elements");
    }
    seen_root_ = true;
    return ParseElementStart(event);
  }
}

}  // namespace natix::xml
