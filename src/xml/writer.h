#ifndef NATIX_XML_WRITER_H_
#define NATIX_XML_WRITER_H_

#include <string>

#include "base/statusor.h"
#include "storage/stored_node.h"

namespace natix::xml {

/// Serializes a stored node back to XML text:
///  * elements as their full subtree (attributes, children),
///  * the document node as the serialization of its children,
///  * attributes as `name="value"`,
///  * text content escaped, comments/PIs in their markup form.
///
/// Character data round-trips through EscapeText/EscapeAttribute; CDATA
/// sections and entity references are not reconstructed (they were
/// resolved at parse time).
StatusOr<std::string> OuterXml(const storage::StoredNode& node);

/// Serialization of the node's content only (for elements: children
/// without the element tag itself).
StatusOr<std::string> InnerXml(const storage::StoredNode& node);

}  // namespace natix::xml

#endif  // NATIX_XML_WRITER_H_
