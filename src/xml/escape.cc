#include "xml/escape.h"

namespace natix::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace natix::xml
