#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/nvm_dataflow.h"
#include "analysis/plan_verifier.h"
#include "runtime/conversions.h"

namespace natix::analysis {

namespace {

using nvm::Instruction;
using nvm::OpCode;
using nvm::OpCodeName;
using nvm::Program;

Status Malformed(const Program& program, size_t pc, const std::string& detail) {
  const Instruction& ins = program.code[pc];
  return Status::Internal("plan verifier (nvm): pc " + std::to_string(pc) +
                          " " + OpCodeName(ins.op) + ": " + detail + " [" +
                          RenderNvmInstruction(program, pc) + "]");
}

/// Definitely-written frame registers, merged by intersection at control
/// flow joins.
using Defs = std::vector<bool>;

void Intersect(Defs* into, const Defs& other) {
  for (size_t i = 0; i < into->size(); ++i) {
    (*into)[i] = (*into)[i] && other[i];
  }
}

}  // namespace

Status VerifyProgram(const Program& program, size_t tuple_register_count,
                     size_t nested_count) {
  const std::vector<Instruction>& code = program.code;
  if (code.empty()) {
    return Status::Internal("plan verifier (nvm): empty program");
  }

  // Structural pass: operand bounds for every instruction, reachable or
  // not, and no instruction whose fall-through leaves the program. The
  // operand-role model is shared with the dataflow framework
  // (nvm_dataflow.h), so optimizer-introduced superinstructions are
  // checked by the same table the passes justify themselves with.
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& ins = code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (roles.writes_a && ins.a >= program.register_count) {
      return Malformed(program, pc,
                       "writes register r" + std::to_string(ins.a) +
                           " outside the frame of " +
                           std::to_string(program.register_count));
    }
    for (int i = 0; i < roles.read_count; ++i) {
      if (roles.read(ins, i) >= program.register_count) {
        return Malformed(program, pc,
                         "reads register r" +
                             std::to_string(roles.read(ins, i)) +
                             " outside the frame of " +
                             std::to_string(program.register_count));
      }
    }
    if (roles.const_b && ins.b >= program.constants.size()) {
      return Malformed(program, pc,
                       "constant index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.const_c && ins.c >= program.constants.size()) {
      return Malformed(program, pc,
                       "constant index " + std::to_string(ins.c) +
                           " out of range");
    }
    if (roles.var_b && ins.b >= program.variable_names.size()) {
      return Malformed(program, pc,
                       "variable index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.attr_b && ins.b >= tuple_register_count) {
      return Malformed(program, pc,
                       "tuple register r" + std::to_string(ins.b) +
                           " outside the plan register file of " +
                           std::to_string(tuple_register_count));
    }
    if (roles.nested_b && ins.b >= nested_count) {
      return Malformed(program, pc,
                       "nested plan index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.jump_b && ins.b >= code.size()) {
      return Malformed(program, pc,
                       "jump target " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.jump_a && ins.a >= code.size()) {
      return Malformed(program, pc,
                       "jump target " + std::to_string(ins.a) +
                           " out of range");
    }
    if (roles.cmp_d) {
      const uint16_t op_bits =
          roles.cmp_flag_d ? static_cast<uint16_t>(ins.d & 0xFF) : ins.d;
      if (op_bits > static_cast<uint16_t>(runtime::CompareOp::kGe)) {
        return Malformed(program, pc,
                         "invalid comparison code " + std::to_string(op_bits));
      }
      if (roles.cmp_flag_d && ins.d > (nvm::kCmpFlagBit | 0xFF)) {
        return Malformed(program, pc,
                         "invalid comparison flags " + std::to_string(ins.d));
      }
    }
    bool falls_through = ins.op != OpCode::kHalt && ins.op != OpCode::kJump;
    if (falls_through && pc + 1 == code.size()) {
      return Malformed(program, pc, "program can fall off the end");
    }
  }

  // Dataflow pass: no read of a never-written register on any path.
  // Forward must-analysis with intersection at merges.
  std::vector<Defs> in(code.size());
  std::vector<bool> seen(code.size(), false);
  std::deque<size_t> worklist;
  in[0] = Defs(program.register_count, false);
  seen[0] = true;
  worklist.push_back(0);

  std::vector<size_t> succs;
  while (!worklist.empty()) {
    size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& ins = code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    for (int i = 0; i < roles.read_count; ++i) {
      if (!in[pc][roles.read(ins, i)]) {
        return Malformed(program, pc,
                         "reads register r" +
                             std::to_string(roles.read(ins, i)) +
                             " before it is written on every path");
      }
    }
    Defs out = in[pc];
    if (roles.writes_a) out[ins.a] = true;

    NvmSuccessors(program, pc, &succs);
    for (size_t succ : succs) {
      if (!seen[succ]) {
        in[succ] = out;
        seen[succ] = true;
        worklist.push_back(succ);
        continue;
      }
      // Re-queue only when the merge actually removes definitions.
      Defs merged = in[succ];
      Intersect(&merged, out);
      if (merged != in[succ]) {
        in[succ] = std::move(merged);
        worklist.push_back(succ);
      }
    }
  }
  return Status::OK();
}

}  // namespace natix::analysis
