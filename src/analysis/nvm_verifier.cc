#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/plan_verifier.h"
#include "runtime/conversions.h"

namespace natix::analysis {

namespace {

using nvm::Instruction;
using nvm::OpCode;
using nvm::OpCodeName;
using nvm::Program;

/// Operand roles of one instruction, derived from the VM's dispatch
/// loop: which fields name frame registers (read/written), table
/// indices, or jump targets.
struct OperandRoles {
  uint16_t reads[3];
  int read_count = 0;
  bool writes_a = false;
  bool const_b = false;    // b indexes program.constants
  bool var_b = false;      // b indexes program.variable_names
  bool attr_b = false;     // b indexes the plan (tuple) register file
  bool nested_b = false;   // b indexes the nested-iterator table
  bool jump_b = false;     // b is a jump target
  bool cmp_d = false;      // d encodes a runtime::CompareOp
};

OperandRoles RolesOf(const Instruction& ins) {
  OperandRoles roles;
  auto read = [&roles](uint16_t reg) { roles.reads[roles.read_count++] = reg; };
  switch (ins.op) {
    case OpCode::kLoadConst:
      roles.writes_a = true;
      roles.const_b = true;
      break;
    case OpCode::kLoadAttr:
      roles.writes_a = true;
      roles.attr_b = true;
      break;
    case OpCode::kLoadVar:
      roles.writes_a = true;
      roles.var_b = true;
      break;
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kConcat2:
    case OpCode::kStartsWith:
    case OpCode::kContains:
    case OpCode::kSubstringBefore:
    case OpCode::kSubstringAfter:
    case OpCode::kSubstring2:
    case OpCode::kLang:
      roles.writes_a = true;
      read(ins.b);
      read(ins.c);
      break;
    case OpCode::kCompare:
      roles.writes_a = true;
      read(ins.b);
      read(ins.c);
      roles.cmp_d = true;
      break;
    case OpCode::kSubstring3:
    case OpCode::kTranslate:
      roles.writes_a = true;
      read(ins.b);
      read(ins.c);
      read(ins.d);
      break;
    case OpCode::kNeg:
    case OpCode::kNot:
    case OpCode::kToBool:
    case OpCode::kToNum:
    case OpCode::kToStr:
    case OpCode::kStringLength:
    case OpCode::kNormalizeSpace:
    case OpCode::kFloor:
    case OpCode::kCeiling:
    case OpCode::kRound:
    case OpCode::kRoot:
    case OpCode::kNodeName:
    case OpCode::kNodeLocalName:
      roles.writes_a = true;
      read(ins.b);
      break;
    case OpCode::kJump:
      roles.jump_b = true;
      break;
    case OpCode::kJumpIfTrue:
    case OpCode::kJumpIfFalse:
      read(ins.a);
      roles.jump_b = true;
      break;
    case OpCode::kEvalNested:
      roles.writes_a = true;
      roles.nested_b = true;
      break;
    case OpCode::kHalt:
      read(ins.a);
      break;
  }
  return roles;
}

Status Malformed(size_t pc, const Instruction& ins,
                 const std::string& detail) {
  return Status::Internal("plan verifier (nvm): pc " + std::to_string(pc) +
                          " " + OpCodeName(ins.op) + ": " + detail);
}

/// Definitely-written frame registers, merged by intersection at control
/// flow joins.
using Defs = std::vector<bool>;

void Intersect(Defs* into, const Defs& other) {
  for (size_t i = 0; i < into->size(); ++i) {
    (*into)[i] = (*into)[i] && other[i];
  }
}

}  // namespace

Status VerifyProgram(const Program& program, size_t tuple_register_count,
                     size_t nested_count) {
  const std::vector<Instruction>& code = program.code;
  if (code.empty()) {
    return Status::Internal("plan verifier (nvm): empty program");
  }

  // Structural pass: operand bounds for every instruction, reachable or
  // not, and no instruction whose fall-through leaves the program.
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& ins = code[pc];
    OperandRoles roles = RolesOf(ins);
    if (roles.writes_a && ins.a >= program.register_count) {
      return Malformed(pc, ins,
                       "writes register r" + std::to_string(ins.a) +
                           " outside the frame of " +
                           std::to_string(program.register_count));
    }
    for (int i = 0; i < roles.read_count; ++i) {
      if (roles.reads[i] >= program.register_count) {
        return Malformed(pc, ins,
                         "reads register r" + std::to_string(roles.reads[i]) +
                             " outside the frame of " +
                             std::to_string(program.register_count));
      }
    }
    if (roles.const_b && ins.b >= program.constants.size()) {
      return Malformed(pc, ins,
                       "constant index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.var_b && ins.b >= program.variable_names.size()) {
      return Malformed(pc, ins,
                       "variable index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.attr_b && ins.b >= tuple_register_count) {
      return Malformed(pc, ins,
                       "tuple register r" + std::to_string(ins.b) +
                           " outside the plan register file of " +
                           std::to_string(tuple_register_count));
    }
    if (roles.nested_b && ins.b >= nested_count) {
      return Malformed(pc, ins,
                       "nested plan index " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.jump_b && ins.b >= code.size()) {
      return Malformed(pc, ins,
                       "jump target " + std::to_string(ins.b) +
                           " out of range");
    }
    if (roles.cmp_d &&
        ins.d > static_cast<uint16_t>(runtime::CompareOp::kGe)) {
      return Malformed(pc, ins,
                       "invalid comparison code " + std::to_string(ins.d));
    }
    bool falls_through = ins.op != OpCode::kHalt && ins.op != OpCode::kJump;
    if (falls_through && pc + 1 == code.size()) {
      return Malformed(pc, ins, "program can fall off the end");
    }
  }

  // Dataflow pass: no read of a never-written register on any path.
  // Forward must-analysis with intersection at merges.
  std::vector<Defs> in(code.size());
  std::vector<bool> seen(code.size(), false);
  std::deque<size_t> worklist;
  in[0] = Defs(program.register_count, false);
  seen[0] = true;
  worklist.push_back(0);

  while (!worklist.empty()) {
    size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& ins = code[pc];
    OperandRoles roles = RolesOf(ins);
    for (int i = 0; i < roles.read_count; ++i) {
      if (!in[pc][roles.reads[i]]) {
        return Malformed(pc, ins,
                         "reads register r" +
                             std::to_string(roles.reads[i]) +
                             " before it is written on every path");
      }
    }
    Defs out = in[pc];
    if (roles.writes_a) out[ins.a] = true;

    auto propagate = [&](size_t succ) {
      if (!seen[succ]) {
        in[succ] = out;
        seen[succ] = true;
        worklist.push_back(succ);
        return;
      }
      // Re-queue only when the merge actually removes definitions.
      Defs merged = in[succ];
      Intersect(&merged, out);
      if (merged != in[succ]) {
        in[succ] = std::move(merged);
        worklist.push_back(succ);
      }
    };

    switch (ins.op) {
      case OpCode::kHalt:
        break;
      case OpCode::kJump:
        propagate(ins.b);
        break;
      case OpCode::kJumpIfTrue:
      case OpCode::kJumpIfFalse:
        propagate(ins.b);
        propagate(pc + 1);
        break;
      default:
        propagate(pc + 1);
        break;
    }
  }
  return Status::OK();
}

}  // namespace natix::analysis
