#ifndef NATIX_ANALYSIS_FUSABILITY_H_
#define NATIX_ANALYSIS_FUSABILITY_H_

#include <string>
#include <vector>

#include "algebra/operator.h"
#include "base/status.h"

namespace natix::analysis {

/// Fusability segmentation: partitions a plan into maximal
/// non-materializing, effect-free pipeline segments (σ, Π, χ, navigation
/// steps, Limit) separated by materialization / blocking / control-flow
/// boundaries. Each fusable segment is a candidate for NVM operator
/// fusion: its operators can be compiled into a single push-style
/// bytecode loop, replacing N virtual Next calls per tuple with one
/// dispatch (the top ROADMAP item). The segment descriptors are surfaced
/// through PlanTemplate / --explain / --explain-json and double as the
/// fusion compiler's work list.

/// One maximal run of operators, listed top-down (consumer first).
struct PipelineSegment {
  /// Stable id in depth-first plan order.
  int id = 0;
  /// Operator summaries (analysis::OperatorSummary), top-down.
  std::vector<std::string> ops;
  /// True when every operator in the run is non-materializing and
  /// effect-free — the segment may be fused into one NVM program.
  bool fusable = false;
  /// For non-fusable (boundary) segments: why fusion is unsound.
  std::string barrier;
};

struct Segmentation {
  std::vector<PipelineSegment> segments;

  size_t fusable_count() const {
    size_t n = 0;
    for (const PipelineSegment& s : segments) n += s.fusable ? 1 : 0;
    return n;
  }
};

/// Whether one operator is fusable in isolation: it neither materializes
/// tuples nor carries side effects, and its subscript (if any) evaluates
/// no nested plan. When the operator is a boundary, `why` (optional)
/// receives the reason.
bool OperatorFusable(const algebra::Operator& op, std::string* why);

/// Partitions the plan (and, recursively, nested subscript plans) into
/// maximal segments in depth-first order. Deterministic: equal plans
/// yield equal segmentations.
Segmentation SegmentPlan(const algebra::Operator& root);

/// Multi-line human-readable rendering (natixq --explain).
std::string RenderSegments(const Segmentation& seg);

/// JSON array of segment objects (natixq --explain-json):
/// [{"id":0,"fusable":true,"ops":[...]}, {"id":1,"fusable":false,
///   "barrier":"...","ops":[...]}].
std::string SegmentsJson(const Segmentation& seg);

/// Layer-4 cross-check: re-derives the segmentation of `root` and
/// verifies `seg` agrees — every operator claimed fusable must actually
/// be effect-free and non-materializing, and segment boundaries must
/// fall on real barriers. kInternal naming the first mislabeled
/// operator otherwise.
Status VerifySegments(const algebra::Operator& root, const Segmentation& seg);

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_FUSABILITY_H_
