#include "analysis/nvm_optimizer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/nvm_dataflow.h"
#include "analysis/plan_verifier.h"
#include "runtime/conversions.h"

namespace natix::analysis {

namespace {

using nvm::Instruction;
using nvm::OpCode;
using nvm::Program;
using runtime::Value;

NvmOptimizerTestPass g_test_pass = nullptr;

struct PassState {
  Program* program;
  const std::string& site;
  algebra::RewriteLog* log;
};

void LogEvent(PassState& state, const char* pass, size_t pc,
              std::string justification) {
  if (state.log == nullptr) return;
  algebra::RewriteEvent event;
  event.rule = std::string("nvm:") + pass;
  event.target = state.site + " pc " + std::to_string(pc) + " " +
                 OpCodeName(state.program->code[pc].op);
  event.justification = std::move(justification);
  state.log->push_back(std::move(event));
}

/// Removes the instructions marked dead and remaps every jump target to
/// the first surviving instruction at or after it. Returns whether
/// anything was removed.
bool Compact(Program* program, const std::vector<bool>& dead) {
  const size_t n = program->code.size();
  std::vector<uint16_t> new_index(n + 1, 0);
  uint16_t kept = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    new_index[pc] = kept;
    if (!dead[pc]) ++kept;
  }
  new_index[n] = kept;
  if (kept == n) return false;

  std::vector<Instruction> code;
  code.reserve(kept);
  for (size_t pc = 0; pc < n; ++pc) {
    if (dead[pc]) continue;
    Instruction ins = program->code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    // A target whose instruction died remaps to the next survivor (the
    // removed instruction fell through); a target past every survivor
    // becomes out of range and the re-verification rejects it.
    if (roles.jump_b) ins.b = new_index[ins.b];
    if (roles.jump_a) ins.a = new_index[ins.a];
    code.push_back(ins);
  }
  program->code = std::move(code);
  return true;
}

uint16_t AddConstant(Program* program, Value value) {
  // Identical constants are shared; the pool stays small and the final
  // pool compaction drops orphaned entries.
  program->constants.push_back(std::move(value));
  return static_cast<uint16_t>(program->constants.size() - 1);
}

std::string DescribeValue(const Value& v) { return v.DebugString(); }

// ---------------------------------------------------------------------------
// const-fold: replace pure instructions whose operands are all constant
// with a kLoadConst of the value the real Vm computes for them.

bool ConstFoldPass(PassState& state) {
  Program& p = *state.program;
  NvmConstants consts = NvmConstants::Compute(p);
  NvmKinds kinds = NvmKinds::Compute(p);
  NvmCfg cfg = NvmCfg::Build(p);
  bool changed = false;
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    if (!cfg.Reachable(pc)) continue;
    Instruction& ins = p.code[pc];
    if (ins.op == OpCode::kLoadConst) continue;
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (!roles.writes_a || roles.read_count == 0) continue;

    if (ins.op == OpCode::kMove) {
      const NvmConst& src = consts.In(pc, ins.b);
      if (src.state != NvmConst::State::kConst) continue;
      std::string fact = "constants: source r" + std::to_string(ins.b) +
                         " is always " + DescribeValue(src.value);
      Value value = src.value;
      ins.op = OpCode::kLoadConst;
      ins.b = AddConstant(&p, std::move(value));
      ins.c = ins.d = 0;
      LogEvent(state, "const-fold", pc, std::move(fact));
      changed = true;
      continue;
    }

    if (!NvmInstructionIsPure(p, pc, kinds)) continue;
    std::vector<Value> operands;
    std::string fact = "constants:";
    bool all_const = true;
    for (int i = 0; i < roles.read_count; ++i) {
      uint16_t r = roles.read(ins, i);
      const NvmConst& c = consts.In(pc, r);
      // Purity already proved the operand kinds atomic; a constant of a
      // non-atomic kind cannot occur, but stay defensive.
      if (c.state != NvmConst::State::kConst ||
          !NvmKindIsAtomic(NvmKindOfValue(c.value))) {
        all_const = false;
        break;
      }
      fact += std::string(i == 0 ? " " : ", ") + "r" + std::to_string(r) +
              " = " + DescribeValue(c.value);
      operands.push_back(c.value);
    }
    if (!all_const) continue;
    StatusOr<Value> folded = NvmEvaluateConstInstruction(p, pc, operands);
    if (!folded.ok()) continue;  // never for pure ops; keep the program
    fact += "; folds to " + DescribeValue(*folded);
    ins.op = OpCode::kLoadConst;
    ins.b = AddConstant(&p, std::move(folded).value());
    ins.c = ins.d = 0;
    LogEvent(state, "const-fold", pc, std::move(fact));
    changed = true;
  }
  return changed;
}

// ---------------------------------------------------------------------------
// copy-prop: a read whose sole reaching definition is a register move
// reads the move's source instead, provided the source is unmodified on
// every path from the move.

bool CopyPropPass(PassState& state) {
  Program& p = *state.program;
  NvmReachingDefs rd = NvmReachingDefs::Compute(p);
  NvmCfg cfg = NvmCfg::Build(p);
  bool changed = false;
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    if (!cfg.Reachable(pc)) continue;
    Instruction& ins = p.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    for (int i = 0; i < roles.read_count; ++i) {
      uint16_t r = roles.read(ins, i);
      std::vector<size_t> defs = rd.DefsReaching(pc, r);
      if (defs.size() != 1) continue;
      size_t def = defs[0];
      const Instruction& move = p.code[def];
      if (move.op != OpCode::kMove || move.a != r || move.b == r) continue;
      // The source must reach this read untouched: the definitions of
      // the source seen here must be exactly those seen at the move.
      if (rd.DefsReaching(pc, move.b) != rd.DefsReaching(def, move.b)) {
        continue;
      }
      ins.*(roles.read_fields[i]) = move.b;
      LogEvent(state, "copy-prop", pc,
               "reaching-defs: r" + std::to_string(r) +
                   " is solely defined by the move at pc " +
                   std::to_string(def) + "; source r" +
                   std::to_string(move.b) + " is unmodified in between");
      changed = true;
    }
  }
  return changed;
}

// ---------------------------------------------------------------------------
// conversion-elim: a conversion applied to a value statically of the
// target kind is the identity and becomes a register move.

bool ConversionElimPass(PassState& state) {
  Program& p = *state.program;
  NvmKinds kinds = NvmKinds::Compute(p);
  NvmCfg cfg = NvmCfg::Build(p);
  bool changed = false;
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    if (!cfg.Reachable(pc)) continue;
    Instruction& ins = p.code[pc];
    NvmKind wanted;
    switch (ins.op) {
      case OpCode::kToBool:
        wanted = NvmKind::kBoolean;
        break;
      case OpCode::kToNum:
        wanted = NvmKind::kNumber;
        break;
      case OpCode::kToStr:
        wanted = NvmKind::kString;
        break;
      default:
        continue;
    }
    if (kinds.In(pc, ins.b) != wanted) continue;
    std::string fact = std::string("kinds: r") + std::to_string(ins.b) +
                       " is statically " + NvmKindName(wanted) + "; " +
                       OpCodeName(ins.op) + " is the identity";
    ins.op = OpCode::kMove;
    LogEvent(state, "conversion-elim", pc, std::move(fact));
    changed = true;
  }
  return changed;
}

// ---------------------------------------------------------------------------
// jump-thread: resolve constant branch conditions, chase chains of
// unconditional jumps, and drop jumps to the fall-through successor.

bool JumpThreadPass(PassState& state) {
  Program& p = *state.program;
  const size_t n = p.code.size();
  NvmConstants consts = NvmConstants::Compute(p);
  NvmCfg cfg = NvmCfg::Build(p);
  std::vector<bool> dead(n, false);
  bool changed = false;

  // Constant branch conditions. boolean() is total for every value
  // kind, so resolving the branch direction statically is always sound.
  runtime::EvalContext null_ctx;
  for (size_t pc = 0; pc < n; ++pc) {
    if (!cfg.Reachable(pc)) continue;
    Instruction& ins = p.code[pc];
    if (ins.op != OpCode::kJumpIfTrue && ins.op != OpCode::kJumpIfFalse) {
      continue;
    }
    const NvmConst& cond = consts.In(pc, ins.a);
    if (cond.state != NvmConst::State::kConst ||
        !NvmKindIsAtomic(NvmKindOfValue(cond.value))) {
      continue;
    }
    StatusOr<bool> truth = runtime::ToBoolean(cond.value, null_ctx);
    if (!truth.ok()) continue;
    const bool taken = (ins.op == OpCode::kJumpIfTrue) == *truth;
    std::string fact = "constants: condition r" + std::to_string(ins.a) +
                       " is always " + (*truth ? "true" : "false") +
                       (taken ? "; branch always taken"
                              : "; branch never taken");
    LogEvent(state, "jump-thread", pc, std::move(fact));
    if (taken) {
      ins.op = OpCode::kJump;
      ins.a = 0;
    } else {
      dead[pc] = true;
    }
    changed = true;
  }

  // Chase chains of unconditional jumps (with a visited set: an
  // empty-body self-loop must not spin the optimizer).
  auto final_target = [&](size_t target) {
    std::vector<bool> visited(n, false);
    while (target < n && !dead[target] &&
           p.code[target].op == OpCode::kJump && !visited[target]) {
      visited[target] = true;
      target = p.code[target].b;
    }
    return target;
  };
  for (size_t pc = 0; pc < n; ++pc) {
    if (dead[pc] || !cfg.Reachable(pc)) continue;
    Instruction& ins = p.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    uint16_t* target = roles.jump_b ? &ins.b : roles.jump_a ? &ins.a : nullptr;
    if (target == nullptr) continue;
    size_t threaded = final_target(*target);
    if (threaded == *target || threaded >= n) continue;
    LogEvent(state, "jump-thread", pc,
             "cfg: target @" + std::to_string(*target) +
                 " is an unconditional jump chain ending at @" +
                 std::to_string(threaded));
    *target = static_cast<uint16_t>(threaded);
    changed = true;
  }

  // Jumps (conditional or not) to the fall-through successor do
  // nothing. Conditional ones are removable because boolean() of the
  // condition cannot fail.
  for (size_t pc = 0; pc + 1 < n; ++pc) {
    if (dead[pc]) continue;
    const Instruction& ins = p.code[pc];
    const bool is_jump = ins.op == OpCode::kJump ||
                         ins.op == OpCode::kJumpIfTrue ||
                         ins.op == OpCode::kJumpIfFalse;
    if (!is_jump || ins.b != pc + 1) continue;
    LogEvent(state, "jump-thread", pc,
             "cfg: both successors are the fall-through instruction");
    dead[pc] = true;
    changed = true;
  }

  if (Compact(&p, dead)) changed = true;
  return changed;
}

// ---------------------------------------------------------------------------
// peephole: superinstruction formation. Both fusions require that no
// jump lands inside the fused range and that the intermediate registers
// are dead afterwards (liveness is the proving fact).

bool PeepholePass(PassState& state) {
  Program& p = *state.program;
  const size_t n = p.code.size();
  NvmLiveness live = NvmLiveness::Compute(p);
  NvmCfg cfg = NvmCfg::Build(p);
  std::vector<bool> is_target(n, false);
  for (size_t pc = 0; pc < n; ++pc) {
    NvmOperandRoles roles = NvmRolesOf(p.code[pc]);
    if (roles.jump_b && p.code[pc].b < n) is_target[p.code[pc].b] = true;
    if (roles.jump_a && p.code[pc].a < n) is_target[p.code[pc].a] = true;
  }
  std::vector<bool> dead(n, false);
  bool changed = false;

  // load_attr + load_const + compare (either load order) -> kCmpAttrConst.
  for (size_t pc = 0; pc + 2 < n; ++pc) {
    if (dead[pc] || dead[pc + 1] || dead[pc + 2]) continue;
    if (!cfg.Reachable(pc)) continue;
    if (is_target[pc + 1] || is_target[pc + 2]) continue;
    const Instruction& first = p.code[pc];
    const Instruction& second = p.code[pc + 1];
    const Instruction& cmp = p.code[pc + 2];
    if (cmp.op != OpCode::kCompare) continue;
    const Instruction* attr_load = nullptr;
    const Instruction* const_load = nullptr;
    if (first.op == OpCode::kLoadAttr && second.op == OpCode::kLoadConst) {
      attr_load = &first;
      const_load = &second;
    } else if (first.op == OpCode::kLoadConst &&
               second.op == OpCode::kLoadAttr) {
      attr_load = &second;
      const_load = &first;
    } else {
      continue;
    }
    const uint16_t attr_reg = attr_load->a;
    const uint16_t const_reg = const_load->a;
    if (attr_reg == const_reg) continue;
    bool swapped;  // constant on the left of the comparison
    if (cmp.b == attr_reg && cmp.c == const_reg) {
      swapped = false;
    } else if (cmp.b == const_reg && cmp.c == attr_reg) {
      swapped = true;
    } else {
      continue;
    }
    // The loads' destinations must die with the compare (the compare's
    // own destination may reuse one of them — the fused instruction
    // still writes it).
    if (attr_reg != cmp.a && live.LiveOut(pc + 2, attr_reg)) continue;
    if (const_reg != cmp.a && live.LiveOut(pc + 2, const_reg)) continue;

    Instruction fused;
    fused.op = OpCode::kCmpAttrConst;
    fused.a = cmp.a;
    fused.b = attr_load->b;
    fused.c = const_load->b;
    fused.d =
        static_cast<uint16_t>(cmp.d | (swapped ? nvm::kCmpFlagBit : 0));
    p.code[pc] = fused;
    dead[pc + 1] = true;
    dead[pc + 2] = true;
    LogEvent(state, "peephole", pc,
             "liveness: r" + std::to_string(attr_reg) + ", r" +
                 std::to_string(const_reg) + " are dead after pc " +
                 std::to_string(pc + 2) +
                 "; cfg: no jump enters the fused range");
    changed = true;
  }

  // compare + conditional jump -> kCmpBranch when the boolean result is
  // used only to branch.
  for (size_t pc = 0; pc + 1 < n; ++pc) {
    if (dead[pc] || dead[pc + 1]) continue;
    if (!cfg.Reachable(pc)) continue;
    if (is_target[pc + 1]) continue;
    const Instruction& cmp = p.code[pc];
    const Instruction& branch = p.code[pc + 1];
    if (cmp.op != OpCode::kCompare) continue;
    if (branch.op != OpCode::kJumpIfTrue &&
        branch.op != OpCode::kJumpIfFalse) {
      continue;
    }
    if (branch.a != cmp.a) continue;
    if (live.LiveOut(pc + 1, cmp.a)) continue;

    Instruction fused;
    fused.op = OpCode::kCmpBranch;
    fused.a = branch.b;  // jump target
    fused.b = cmp.b;
    fused.c = cmp.c;
    fused.d = static_cast<uint16_t>(
        cmp.d |
        (branch.op == OpCode::kJumpIfTrue ? nvm::kCmpFlagBit : 0));
    p.code[pc] = fused;
    dead[pc + 1] = true;
    LogEvent(state, "peephole", pc,
             "liveness: r" + std::to_string(cmp.a) +
                 " is dead after the branch at pc " + std::to_string(pc + 1) +
                 " on both paths; cfg: no jump enters the fused range");
    changed = true;
  }

  if (Compact(&p, dead)) changed = true;
  return changed;
}

// ---------------------------------------------------------------------------
// dce: unreachable blocks, then stores that are provably pure and dead.

bool DcePass(PassState& state) {
  Program& p = *state.program;
  const size_t n = p.code.size();
  NvmCfg cfg = NvmCfg::Build(p);
  NvmLiveness live = NvmLiveness::Compute(p);
  NvmKinds kinds = NvmKinds::Compute(p);
  std::vector<bool> dead(n, false);
  bool changed = false;

  for (const NvmCfg::Block& block : cfg.blocks) {
    if (block.reachable) continue;
    LogEvent(state, "dce", block.begin,
             "cfg: block at pc " + std::to_string(block.begin) + "-" +
                 std::to_string(block.end - 1) +
                 " is unreachable from the entry");
    for (size_t pc = block.begin; pc < block.end; ++pc) dead[pc] = true;
    changed = true;
  }

  for (size_t pc = 0; pc < n; ++pc) {
    if (dead[pc] || !cfg.Reachable(pc)) continue;
    const Instruction& ins = p.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (!roles.writes_a || live.LiveOut(pc, ins.a)) continue;
    if (!NvmInstructionIsPure(p, pc, kinds)) continue;
    LogEvent(state, "dce", pc,
             "liveness: r" + std::to_string(ins.a) + " is dead after pc " +
                 std::to_string(pc) +
                 "; kinds: evaluation is pure (total, store-free)");
    dead[pc] = true;
    changed = true;
  }

  if (Compact(&p, dead)) changed = true;
  return changed;
}

// ---------------------------------------------------------------------------
// Epilogue cleanups (no instruction-count effect, not logged): shrink
// the frame to the registers actually referenced and drop orphaned
// constant-pool entries.

void ShrinkFrame(Program* program) {
  uint16_t max_reg = 0;
  bool any = false;
  for (const Instruction& ins : program->code) {
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (roles.writes_a) {
      max_reg = std::max(max_reg, ins.a);
      any = true;
    }
    for (int i = 0; i < roles.read_count; ++i) {
      max_reg = std::max(max_reg, roles.read(ins, i));
      any = true;
    }
  }
  uint16_t needed = any ? static_cast<uint16_t>(max_reg + 1) : 0;
  if (needed < program->register_count) program->register_count = needed;
}

void CompactConstantPool(Program* program) {
  std::vector<bool> used(program->constants.size(), false);
  for (const Instruction& ins : program->code) {
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (roles.const_b && ins.b < used.size()) used[ins.b] = true;
    if (roles.const_c && ins.c < used.size()) used[ins.c] = true;
  }
  std::vector<uint16_t> remap(program->constants.size(), 0);
  std::vector<Value> pool;
  for (size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) continue;
    remap[i] = static_cast<uint16_t>(pool.size());
    pool.push_back(program->constants[i]);
  }
  if (pool.size() == program->constants.size()) return;
  for (Instruction& ins : program->code) {
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (roles.const_b) ins.b = remap[ins.b];
    if (roles.const_c) ins.c = remap[ins.c];
  }
  program->constants = std::move(pool);
}

}  // namespace

void SetNvmOptimizerTestPass(NvmOptimizerTestPass pass) {
  g_test_pass = pass;
}

Status OptimizeNvmProgram(Program* program, const std::string& site,
                          size_t tuple_register_count, size_t nested_count,
                          algebra::RewriteLog* log) {
  struct PassEntry {
    const char* name;
    bool (*fn)(PassState&);
  };
  static constexpr PassEntry kPasses[] = {
      {"const-fold", ConstFoldPass},   {"copy-prop", CopyPropPass},
      {"conversion-elim", ConversionElimPass},
      {"jump-thread", JumpThreadPass}, {"peephole", PeepholePass},
      {"dce", DcePass},
  };

  PassState state{program, site, log};
  auto verify_after = [&](const char* pass) {
    Status st = VerifyProgram(*program, tuple_register_count, nested_count);
    if (st.ok()) return st;
    return Status::Internal(std::string("nvm optimizer: pass '") + pass +
                            "' left a malformed program for " + site + ": " +
                            st.message());
  };

  // Passes enable each other (a fold exposes a dead store, a fused
  // compare exposes a jump thread); a few rounds reach the fixpoint on
  // the small programs subscripts compile to.
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const PassEntry& pass : kPasses) {
      if (pass.fn(state)) {
        NATIX_RETURN_IF_ERROR(verify_after(pass.name));
        changed = true;
      }
    }
    if (g_test_pass != nullptr && g_test_pass(program)) {
      NATIX_RETURN_IF_ERROR(verify_after("test-hook"));
      changed = true;
    }
    if (!changed) break;
  }

  ShrinkFrame(program);
  CompactConstantPool(program);
  return verify_after("epilogue");
}

}  // namespace natix::analysis
