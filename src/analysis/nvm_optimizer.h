#ifndef NATIX_ANALYSIS_NVM_OPTIMIZER_H_
#define NATIX_ANALYSIS_NVM_OPTIMIZER_H_

#include <cstddef>
#include <string>

#include "algebra/rewriter.h"
#include "base/status.h"
#include "nvm/program.h"

// Analysis-justified optimization of NVM subscript programs, built on
// the dataflow framework of nvm_dataflow.h. The pipeline runs
//
//   const-fold        constant propagation + folding (the fold executes
//                     the real Vm over a one-instruction program)
//   copy-prop         reaching-defs-justified copy propagation
//   conversion-elim   kind-justified to_bool/to_num/to_str -> move
//   jump-thread       jump chains, constant branch conditions,
//                     jumps to the fall-through successor
//   peephole          superinstruction formation: kCmpAttrConst
//                     (load_attr + load_const + compare) and kCmpBranch
//                     (compare + conditional jump)
//   dce               unreachable blocks + dead pure stores
//
// to a fixpoint (bounded rounds). Every applied transformation records
// the analysis fact that proves it sound in the rewrite log (the same
// surface the property-justified plan rewrites use), and the Layer-3
// verifier re-runs after every pass that changed the program: a pass
// that emits a malformed program aborts compilation instead of reaching
// execution — analysis claims are checked, not trusted.

namespace natix::analysis {

/// Optimizes `program` in place. `site` labels the subscript's host
/// operator in log events and error messages; `tuple_register_count` /
/// `nested_count` bound the tuple-register and nested-plan operands for
/// the per-pass Layer-3 re-verification. `log` may be null (events
/// dropped); rule names are "nvm:<pass>".
Status OptimizeNvmProgram(nvm::Program* program, const std::string& site,
                          size_t tuple_register_count, size_t nested_count,
                          algebra::RewriteLog* log);

/// Test-only: installs an extra pass appended to every pipeline round
/// (nullptr to remove). Broken-pass negative tests use this to prove
/// that a Layer-3 violation aborts compilation rather than executing.
/// Returns whether the pass changed the program. Not thread-safe.
using NvmOptimizerTestPass = bool (*)(nvm::Program*);
void SetNvmOptimizerTestPass(NvmOptimizerTestPass pass);

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_NVM_OPTIMIZER_H_
