#ifndef NATIX_ANALYSIS_PHYSICAL_MODEL_H_
#define NATIX_ANALYSIS_PHYSICAL_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nvm/program.h"
#include "runtime/register_file.h"

namespace natix::analysis {

/// How a physical operator propagates register definitions to its output
/// under the open/next protocol.
enum class PhysNodeKind : uint8_t {
  /// No children; output definitions = input definitions + writes
  /// (singleton scan).
  kLeaf,
  /// One child evaluated inline; output definitions = the child's
  /// definitions + writes (select, map, counter, unnest-map, unnest,
  /// dup-elim, sort, Tmp^cs, MemoX, id-deref).
  kPipeline,
  /// Two children; the second is (re-)opened per first-child tuple and
  /// sees its definitions. Output carries both sides' definitions
  /// (d-join, cross product).
  kDependent,
  /// Like kDependent, but only the first child's tuple survives to the
  /// output — the probe side's registers are scratch (semi-join,
  /// anti-join, binary grouping).
  kDependentLeft,
  /// One child drained entirely during Next; the output tuple defines
  /// only this node's writes on top of the node's *input* definitions
  /// (the aggregation operator's singleton output).
  kBarrier,
  /// Several children played back to back; downstream consumers may rely
  /// only on registers every branch defines (concat).
  kConcat,
};

const char* PhysNodeKindName(PhysNodeKind kind);

/// One node of the physical dataflow model: the register footprint of a
/// compiled iterator. The code generator records one PhysNode per
/// iterator it builds; the Layer-2 verifier walks the model, never the
/// iterators themselves.
struct PhysNode {
  PhysNodeKind kind = PhysNodeKind::kPipeline;
  /// Diagnostic label, e.g. "UnnestMap[c1@r3]".
  std::string label;
  /// Registers this iterator reads from each input tuple (subscript
  /// kLoadAttr operands, context/key/sort attributes).
  std::vector<runtime::RegisterId> reads;
  /// Registers this iterator writes per output tuple.
  std::vector<runtime::RegisterId> writes;
  /// The SaveRow/RestoreRow register list of materializing iterators.
  std::vector<runtime::RegisterId> row_regs;
  /// Input iterators, in evaluation order.
  std::vector<std::unique_ptr<PhysNode>> children;
  /// Nested sequence-valued subplans evaluated by this node's subscript
  /// (kEvalNested), paired with the register the nested aggregate reads.
  std::vector<std::pair<std::unique_ptr<PhysNode>, runtime::RegisterId>>
      nested;
};

using PhysNodePtr = std::unique_ptr<PhysNode>;

/// The register dataflow of one compiled plan, plus every NVM subscript
/// program the plan embeds (for the Layer-3 sweep).
struct PhysicalModel {
  PhysNodePtr root;
  /// Size of the plan-wide register file.
  size_t register_count = 0;
  /// Registers bound by the execution context before Open (cn/cp0/cs0).
  std::vector<runtime::RegisterId> context_regs;
  /// Register the plan's result is read from.
  runtime::RegisterId result_reg = 0;
  /// Size of the plan's nested-iterator table (bounds kEvalNested).
  size_t nested_count = 0;
  /// Compiled subscript programs with their site labels.
  std::vector<std::pair<std::string, nvm::Program>> programs;
};

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_PHYSICAL_MODEL_H_
