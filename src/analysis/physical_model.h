#ifndef NATIX_ANALYSIS_PHYSICAL_MODEL_H_
#define NATIX_ANALYSIS_PHYSICAL_MODEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nvm/program.h"
#include "runtime/register_file.h"

namespace natix::analysis {

/// How a physical operator propagates register definitions to its output
/// under the open/next protocol.
enum class PhysNodeKind : uint8_t {
  /// No children; output definitions = input definitions + writes
  /// (singleton scan).
  kLeaf,
  /// One child evaluated inline; output definitions = the child's
  /// definitions + writes (select, map, counter, unnest-map, unnest,
  /// dup-elim, sort, Tmp^cs, MemoX, id-deref).
  kPipeline,
  /// Two children; the second is (re-)opened per first-child tuple and
  /// sees its definitions. Output carries both sides' definitions
  /// (d-join, cross product).
  kDependent,
  /// Like kDependent, but only the first child's tuple survives to the
  /// output — the probe side's registers are scratch (semi-join,
  /// anti-join, binary grouping).
  kDependentLeft,
  /// One child drained entirely during Next; the output tuple defines
  /// only this node's writes on top of the node's *input* definitions
  /// (the aggregation operator's singleton output).
  kBarrier,
  /// Several children played back to back; downstream consumers may rely
  /// only on registers every branch defines (concat).
  kConcat,
};

const char* PhysNodeKindName(PhysNodeKind kind);

// ---------------------------------------------------------------------------
// Layer-4 resource effects
// ---------------------------------------------------------------------------

/// What kind of tuple spool (materialized state) an iterator keeps between
/// Next calls.
enum class SpoolKind : uint8_t {
  /// No materialized tuples.
  kNone,
  /// One context group at a time (Tmp^cs replay buffer): bounded by the
  /// largest group, must be dropped on Close.
  kGroup,
  /// The entire input (Sort rows, DupElim seen-sets): must be dropped on
  /// Close.
  kFull,
  /// A keyed memo that intentionally outlives Open/Close cycles within
  /// one execution context (MemoX table, chi^mat cache, id-deref
  /// indexes). Exempt from the release-on-close obligation; bounded by
  /// the execution context's lifetime instead.
  kMemo,
};

const char* SpoolKindName(SpoolKind kind);

/// How an iterator's Close() treats one of its children.
enum class ChildClose : uint8_t {
  /// CloseImpl leaves the child as it found it. Legal only if the child
  /// subtree holds no resources (cursors, spools).
  kNone,
  /// Whenever this node is Closed, the child ends closed — either
  /// CloseImpl forwards Close unconditionally, or the node tracks the
  /// child's open state and the guard covers every path (Limit, d-join
  /// right side, concat branches).
  kOnClose,
  /// The child is opened and closed entirely inside a single Next (or
  /// subscript evaluation) on every control path, including error paths
  /// — it is never open between calls, so an external Close never finds
  /// it open (semi/anti-join probe side, BinaryGroup right side, the
  /// aggregate's nested plan).
  kProbeContained,
};

const char* ChildCloseName(ChildClose mode);

/// The declared resource behaviour of one compiled iterator. The code
/// generator states these facts per operator it builds (mirroring the
/// iterator implementations in src/qe/); the Layer-4 verifier proves the
/// plan-wide consequences: page-pin balance, spool lifetime containment,
/// and Close-reachability on all control paths — including early Close
/// via Limit and deadline/cancel abort.
struct ResourceEffects {
  /// Holds a storage cursor (page pins via pinned PageHandles) between
  /// Next calls while active.
  bool holds_cursor = false;
  /// CloseImpl releases the cursor (drops its page pins).
  bool cursor_released_on_close = false;
  /// Materialized tuple state kept between Next calls.
  SpoolKind spool = SpoolKind::kNone;
  /// CloseImpl drops the spool (required for kGroup/kFull).
  bool spool_released_on_close = false;
  /// Per-child Close obligation; must match children.size().
  std::vector<ChildClose> child_close;
};

/// One node of the physical dataflow model: the register footprint of a
/// compiled iterator. The code generator records one PhysNode per
/// iterator it builds; the Layer-2 verifier walks the model, never the
/// iterators themselves.
struct PhysNode {
  PhysNodeKind kind = PhysNodeKind::kPipeline;
  /// Diagnostic label, e.g. "UnnestMap[c1@r3]".
  std::string label;
  /// Registers this iterator reads from each input tuple (subscript
  /// kLoadAttr operands, context/key/sort attributes).
  std::vector<runtime::RegisterId> reads;
  /// Registers this iterator writes per output tuple.
  std::vector<runtime::RegisterId> writes;
  /// The SaveRow/RestoreRow register list of materializing iterators.
  std::vector<runtime::RegisterId> row_regs;
  /// Declared resource behaviour (Layer-4 input).
  ResourceEffects effects;
  /// Input iterators, in evaluation order.
  std::vector<std::unique_ptr<PhysNode>> children;
  /// Nested sequence-valued subplans evaluated by this node's subscript
  /// (kEvalNested), paired with the register the nested aggregate reads.
  std::vector<std::pair<std::unique_ptr<PhysNode>, runtime::RegisterId>>
      nested;
};

using PhysNodePtr = std::unique_ptr<PhysNode>;

/// The register dataflow of one compiled plan, plus every NVM subscript
/// program the plan embeds (for the Layer-3 sweep).
struct PhysicalModel {
  PhysNodePtr root;
  /// Size of the plan-wide register file.
  size_t register_count = 0;
  /// Registers bound by the execution context before Open (cn/cp0/cs0).
  std::vector<runtime::RegisterId> context_regs;
  /// Register the plan's result is read from.
  runtime::RegisterId result_reg = 0;
  /// Size of the plan's nested-iterator table (bounds kEvalNested).
  size_t nested_count = 0;
  /// Compiled subscript programs with their site labels.
  std::vector<std::pair<std::string, nvm::Program>> programs;
};

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_PHYSICAL_MODEL_H_
