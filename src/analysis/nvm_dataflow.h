#ifndef NATIX_ANALYSIS_NVM_DATAFLOW_H_
#define NATIX_ANALYSIS_NVM_DATAFLOW_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "nvm/program.h"
#include "runtime/value.h"

// Static analysis over NVM bytecode: the operand-role model shared with
// the Layer-3 verifier, a basic-block CFG built from the jump targets,
// and the classic instruction-level dataflow analyses (liveness,
// reaching definitions, constant propagation, value-kind propagation)
// the optimization passes in nvm_optimizer.h justify themselves with.
//
// NVM programs are tiny (a subscript compiles to tens of instructions),
// so every analysis keeps per-pc states and iterates a worklist to the
// fixpoint; the CFG exists for reachability, for pattern-safety checks
// (no jump into the middle of a fused sequence) and for the labeled
// disassembly natixq --dump-nvm and the verifier diagnostics share.

namespace natix::analysis {

/// Operand roles of one NVM instruction, derived from the VM's dispatch
/// loop: which fields name frame registers (read/written), table
/// indices, or jump targets. `read_fields` points at the Instruction
/// members holding the read registers so that transformation passes can
/// rewrite operands without re-encoding the per-opcode field layout.
struct NvmOperandRoles {
  using Field = uint16_t nvm::Instruction::*;
  Field read_fields[3] = {nullptr, nullptr, nullptr};
  int read_count = 0;
  bool writes_a = false;
  bool const_b = false;    // b indexes program.constants
  bool var_b = false;      // b indexes program.variable_names
  bool attr_b = false;     // b indexes the plan (tuple) register file
  bool nested_b = false;   // b indexes the nested-iterator table
  bool jump_b = false;     // b is a jump target
  bool const_c = false;    // c indexes program.constants (kCmpAttrConst)
  bool jump_a = false;     // a is a jump target (kCmpBranch)
  bool cmp_d = false;      // d encodes a runtime::CompareOp
  /// d additionally carries the swap/sense flag in bit 8
  /// (kCmpAttrConst / kCmpBranch).
  bool cmp_flag_d = false;

  uint16_t read(const nvm::Instruction& ins, int i) const {
    return ins.*read_fields[i];
  }
};

NvmOperandRoles NvmRolesOf(const nvm::Instruction& ins);

/// Fall-through/branch successors of the instruction at `pc` (indices
/// into program.code; kHalt has none).
void NvmSuccessors(const nvm::Program& program, size_t pc,
                   std::vector<size_t>* out);

/// Basic-block CFG: block leaders are the entry, every jump target, and
/// every instruction after a (conditional) branch.
struct NvmCfg {
  struct Block {
    size_t begin = 0;  ///< first pc of the block
    size_t end = 0;    ///< one past the last pc
    std::vector<size_t> succs;  ///< successor block indices
    std::vector<size_t> preds;  ///< predecessor block indices
    bool reachable = false;     ///< reachable from the entry block
  };
  std::vector<Block> blocks;
  /// pc -> index of the containing block.
  std::vector<size_t> block_of;

  static NvmCfg Build(const nvm::Program& program);

  /// "L<i>" when `pc` starts a block, "" otherwise.
  std::string LabelAt(size_t pc) const;
  bool Reachable(size_t pc) const { return blocks[block_of[pc]].reachable; }
};

/// Backward may-analysis: which registers hold a value some future
/// instruction reads.
class NvmLiveness {
 public:
  static NvmLiveness Compute(const nvm::Program& program);
  bool LiveIn(size_t pc, uint16_t reg) const { return in_[pc][reg]; }
  bool LiveOut(size_t pc, uint16_t reg) const { return out_[pc][reg]; }

 private:
  std::vector<std::vector<bool>> in_, out_;
};

/// Forward may-analysis: the set of definition sites (pcs) whose written
/// value can reach each instruction.
class NvmReachingDefs {
 public:
  static NvmReachingDefs Compute(const nvm::Program& program);
  /// Definition pcs of `reg` reaching the entry of `pc`, ascending.
  std::vector<size_t> DefsReaching(size_t pc, uint16_t reg) const;

 private:
  /// in_[pc][reg] is a bitset over definition pcs.
  std::vector<std::vector<std::vector<bool>>> in_;
};

/// The three-point constant lattice per register.
struct NvmConst {
  enum class State : uint8_t { kUndef, kConst, kVarying };
  State state = State::kUndef;
  runtime::Value value;  ///< meaningful only in state kConst
};

/// Forward must-analysis tracking kLoadConst/kMove-propagated constants.
class NvmConstants {
 public:
  static NvmConstants Compute(const nvm::Program& program);
  /// State of `reg` at the entry of `pc` (kUndef for unreachable pcs).
  const NvmConst& In(size_t pc, uint16_t reg) const { return in_[pc][reg]; }

 private:
  std::vector<std::vector<NvmConst>> in_;
};

/// Static value-kind lattice: kAtomic covers {boolean, number, string}
/// (the kinds whose conversions are total and store-free), kAny admits
/// nodes and sequences as well.
enum class NvmKind : uint8_t {
  kUndef,
  kBoolean,
  kNumber,
  kString,
  kNode,
  kAtomic,
  kAny
};

const char* NvmKindName(NvmKind kind);
bool NvmKindIsAtomic(NvmKind kind);
NvmKind NvmKindOfValue(const runtime::Value& value);

/// Forward kind propagation over the operand-role model: justifies
/// conversion elimination and the purity side of dead-store elimination.
class NvmKinds {
 public:
  static NvmKinds Compute(const nvm::Program& program);
  NvmKind In(size_t pc, uint16_t reg) const { return in_[pc][reg]; }

 private:
  std::vector<std::vector<NvmKind>> in_;
};

/// True when evaluating the instruction at `pc` can neither fail nor
/// touch anything outside the frame (store, $variables, nested
/// iterators), given the statically inferred operand kinds. Such an
/// instruction may be removed when its destination is dead and folded
/// when its operands are constant.
bool NvmInstructionIsPure(const nvm::Program& program, size_t pc,
                          const NvmKinds& kinds);

/// Evaluates one register-pure instruction over concrete operand values
/// by running it on a scratch Vm (constant folding executes the real
/// interpreter, never a reimplementation of its semantics). `operands`
/// are the values of the instruction's register reads, in role order.
StatusOr<runtime::Value> NvmEvaluateConstInstruction(
    const nvm::Program& program, size_t pc,
    const std::vector<runtime::Value>& operands);

/// Symbolic rendering of one instruction: opcode name, register
/// operands, resolved constants/variables, comparison mnemonics. Shared
/// by the Layer-3 verifier diagnostics and --dump-nvm.
std::string RenderNvmInstruction(const nvm::Program& program, size_t pc);

/// Full symbolic listing with basic-block labels ("L<i>:") and labeled
/// jump targets.
std::string RenderNvmProgram(const nvm::Program& program);

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_NVM_DATAFLOW_H_
