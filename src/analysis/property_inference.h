#ifndef NATIX_ANALYSIS_PROPERTY_INFERENCE_H_
#define NATIX_ANALYSIS_PROPERTY_INFERENCE_H_

#include <map>
#include <string>

#include "algebra/operator.h"
#include "base/statusor.h"

namespace natix::analysis {

/// Static property inference over the logical algebra: a bottom-up
/// abstract interpretation that annotates every operator with the
/// ordering state of each attribute, duplicate-freedom, a cardinality
/// bound, and the static node class used to decide emptiness of axis
/// compositions (e.g. attribute::x/child::y yields nothing).
///
/// The claims justify the rewriter's Sort / duplicate-elimination
/// removals (Hidders/Michiels-style order and duplicate analysis, which
/// the paper lists as future work in Sec. 4.1), are re-checked across
/// every rewrite by the Layer-1.5 verifier pass, and are asserted
/// against actual tuples by the debug-mode runtime property oracle
/// (src/qe/property_oracle.h).

/// Ordering state of one attribute over a tuple stream. kDocOrdered
/// means NON-strictly ascending by document order (runs of equal nodes
/// allowed — pipeline fan-out repeats input values); kGrouped means
/// equal values are consecutive (what Tmp^cs_c and reset counters need).
/// doc-ordered implies grouped.
enum class OrderState : uint8_t { kDocOrdered, kGrouped, kUnknown };

/// Cardinality bound of a stream per Open(). Dependent subplans are
/// re-opened per outer tuple, so their bound holds per evaluation.
enum class Cardinality : uint8_t {
  kEmpty,       // provably no tuples
  kExactlyOne,  // provably exactly one tuple
  kAtMostOne,   // zero or one tuple
  kMany         // unknown / unbounded
};

/// Static class of the values an attribute holds; drives the emptiness
/// analysis of axis/node-test compositions. Only classes whose axis
/// behavior the runtime cursor fixes (src/runtime/node_ops.cc) make
/// emptiness claims; kAnyNode / kNonNode never do.
enum class NodeClass : uint8_t {
  kRoot,       // the document root node (root*(·))
  kElement,    // element nodes only (name tests on non-attribute axes)
  kAttribute,  // attribute nodes only
  kLeafText,   // text / comment / PI nodes: no children, no attributes
  kAnyNode,    // some node, kind unknown
  kNonNode     // atomic value
};

const char* OrderStateName(OrderState order);
const char* CardinalityName(Cardinality card);
const char* NodeClassName(NodeClass node_class);

/// True for kEmpty / kExactlyOne / kAtMostOne.
bool CardinalityAtMostOne(Cardinality card);
/// `a` is at least as precise a bound as `b`.
bool CardinalityRefines(Cardinality a, Cardinality b);
/// `a` is at least as strong an ordering claim as `b`.
bool OrderRefines(OrderState a, OrderState b);

/// Per-attribute claims about one operator's output stream.
struct AttrProperties {
  OrderState order = OrderState::kUnknown;
  /// No two tuples carry the same value (nodes: same identity).
  bool duplicate_free = false;
  /// No value is a proper ancestor of another value — the side condition
  /// under which child/descendant steps preserve order and descendant
  /// steps preserve duplicate-freedom (disjoint subtrees).
  bool non_nested = false;
  NodeClass node_class = NodeClass::kAnyNode;
};

/// Inferred properties of one operator's output.
struct PlanProperties {
  Cardinality cardinality = Cardinality::kMany;
  /// One entry per attribute BOUND in the subtree (claims may be all
  /// conservative). Free attributes are per-evaluation constants and are
  /// folded in by Lookup().
  std::map<std::string, AttrProperties> attrs;

  bool AtMostOne() const { return CardinalityAtMostOne(cardinality); }

  /// Effective claims for `name`: the materialized entry plus the trivial
  /// claims of a <=1-tuple stream, plus the constancy of free attributes
  /// (constant values are trivially non-decreasing and never properly
  /// nest, but are full of duplicates).
  AttrProperties Lookup(const std::string& name) const;
};

/// True when `axis::test` from a context node of class `cls` provably
/// yields no nodes. Mirrors runtime::AxisCursor (attributes and leaf
/// nodes have no children; name tests match only the axis' principal
/// node kind; the root has no parent, siblings or attributes).
bool StaticallyEmptyStep(NodeClass cls, runtime::Axis axis,
                         const xpath::AstNodeTest& test);

/// Bottom-up inference for one subtree (conservative: every claim holds
/// in every evaluation).
PlanProperties InferPlanProperties(const algebra::Operator& op);

/// Properties for every operator of the plan, including operators inside
/// nested scalar subplans, keyed by node address.
using PropertyMap = std::map<const algebra::Operator*, PlanProperties>;
PropertyMap AnnotatePlan(const algebra::Operator& root);

/// A one-line operator descriptor without register assignments, e.g.
/// "UnnestMap[c3 := c2/child::b]" (rewrite-log targets, JSON).
std::string OperatorSummary(const algebra::Operator& op);

/// "{card:n, ord:doc(c3), dup-free(c3), non-nested(c3)}" — the claims
/// about `focus_attr` plus the cardinality bound. Empty focus: bound
/// only. (Colon-separated tags; no '=' so EXPLAIN goldens can normalize
/// numbers.)
std::string RenderProperties(const PlanProperties& props,
                             const std::string& focus_attr);

/// The logical plan tree with a property tag per operator.
std::string RenderAnnotatedPlan(const algebra::Operator& root);

/// JSON rendering of the operator tree with full inferred properties
/// (natixq --explain-json).
std::string PlanToJson(const algebra::Operator& root);

/// Layer-1.5 of the plan verifier: checks that a rewrite did not weaken
/// the inferred properties of the rewritten subtree — cardinality bound,
/// per-attribute order, duplicate-freedom, non-nesting and node class
/// must all be at least as precise after the rule as before. Returns a
/// violation naming `rule`.
Status CheckPropertyPreservation(const PlanProperties& before,
                                 const PlanProperties& after,
                                 const char* rule);

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_PROPERTY_INFERENCE_H_
