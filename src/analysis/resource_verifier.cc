// Layer 4 of the static plan verifier: resource-effect abstract
// interpretation over the compiled iterator tree (model in
// physical_model.h, effect declarations recorded by the code generator).
//
// The analysis proves three properties for every plan, on every control
// path — including early Close injected by the Limit operator and the
// deadline/cancel abort paths of the drain loop, both of which reduce to
// "the root is Closed early":
//
//   1. Close-reachability: every node whose subtree holds resources is
//      guaranteed to end closed whenever the plan root is Closed.
//   2. Page-pin balance: storage cursors (which hold page pins between
//      Next calls) are released by Close.
//   3. Spool lifetime containment: group/full spools die with Close;
//      only keyed memo state (MemoX, chi^mat, id-deref indexes) may
//      persist, bounded by the execution context.
//
// The runtime cross-check lives in the execution context's resource
// ledger (src/qe/exec_context.h), armed together with the property
// oracle whenever verification is enabled.

#include <string>

#include "analysis/plan_verifier.h"
#include "obs/trace.h"

namespace natix::analysis {

namespace {

Status Violation(const PhysNode& node, const std::string& detail) {
  return Status::Internal("plan verifier (resources): " + node.label + ": " +
                          detail);
}

/// Whether the subtree rooted at `node` holds any resource that an
/// unreached Close would leak (cursor pins or a non-memo spool). Memo
/// spools are excluded: they survive Close by design and are reclaimed
/// with the execution context.
bool SubtreeHoldsResources(const PhysNode& node) {
  if (node.effects.holds_cursor) return true;
  if (node.effects.spool == SpoolKind::kGroup ||
      node.effects.spool == SpoolKind::kFull) {
    return true;
  }
  for (const auto& child : node.children) {
    if (SubtreeHoldsResources(*child)) return true;
  }
  for (const auto& [nested, reg] : node.nested) {
    (void)reg;
    if (SubtreeHoldsResources(*nested)) return true;
  }
  return false;
}

class ResourceVerifier {
 public:
  explicit ResourceVerifier(const PhysicalModel& model) : model_(model) {}

  Status Run() {
    if (model_.root == nullptr) {
      return Status::Internal("plan verifier (resources): model has no root");
    }
    // The drain loop Closes the root on every path (success, limit
    // early-exit, cancellation, error) — the root is close-reachable by
    // construction.
    return Visit(*model_.root, /*close_guaranteed=*/true);
  }

 private:
  Status Visit(const PhysNode& node, bool close_guaranteed) {
    const ResourceEffects& fx = node.effects;

    if (fx.child_close.size() != node.children.size()) {
      return Violation(node,
                       "declares " + std::to_string(fx.child_close.size()) +
                           " child-close modes for " +
                           std::to_string(node.children.size()) + " children");
    }

    // Local obligations. They apply even to nodes that are not
    // close-guaranteed: a probe-contained subtree still goes through its
    // own Close, which must balance.
    if (fx.holds_cursor && !fx.cursor_released_on_close) {
      return Violation(node,
                       "holds a storage cursor but does not release it on "
                       "Close — page pins survive early exit "
                       "(pin-balance violation)");
    }
    if ((fx.spool == SpoolKind::kGroup || fx.spool == SpoolKind::kFull) &&
        !fx.spool_released_on_close) {
      return Violation(node,
                       std::string("keeps a ") + SpoolKindName(fx.spool) +
                           " spool that Close does not drop "
                           "(spool-containment violation)");
    }
    if (fx.spool == SpoolKind::kNone && fx.spool_released_on_close) {
      return Violation(node, "declares a spool release but no spool");
    }

    // Close-reachability: a resource-holding subtree behind a kNone edge
    // is never Closed when the plan aborts between Next calls.
    if (!close_guaranteed && SubtreeHoldsResources(node)) {
      return Violation(node,
                       "subtree holds resources but no Close reaches it on "
                       "the abort path (close-on-all-paths violation)");
    }

    for (size_t i = 0; i < node.children.size(); ++i) {
      const ChildClose mode = fx.child_close[i];
      // A probe-contained child is balanced inside each Next call, so it
      // is never open when an external Close arrives; it counts as
      // close-guaranteed regardless of this node's own reachability. A
      // kOnClose child inherits this node's guarantee; a kNone child
      // inherits nothing.
      bool child_guaranteed;
      switch (mode) {
        case ChildClose::kOnClose:
          child_guaranteed = close_guaranteed;
          break;
        case ChildClose::kProbeContained:
          child_guaranteed = true;
          break;
        case ChildClose::kNone:
        default:
          child_guaranteed = false;
          break;
      }
      NATIX_RETURN_IF_ERROR(Visit(*node.children[i], child_guaranteed));
    }

    // Nested subscript plans are opened, drained, and closed inside one
    // subscript evaluation on every path (subscripts.cc), i.e.
    // probe-contained by construction.
    for (const auto& [nested, reg] : node.nested) {
      (void)reg;
      NATIX_RETURN_IF_ERROR(Visit(*nested, /*close_guaranteed=*/true));
    }
    return Status::OK();
  }

  const PhysicalModel& model_;
};

}  // namespace

const char* SpoolKindName(SpoolKind kind) {
  switch (kind) {
    case SpoolKind::kNone:
      return "none";
    case SpoolKind::kGroup:
      return "group";
    case SpoolKind::kFull:
      return "full";
    case SpoolKind::kMemo:
      return "memo";
  }
  return "?";
}

const char* ChildCloseName(ChildClose mode) {
  switch (mode) {
    case ChildClose::kNone:
      return "none";
    case ChildClose::kOnClose:
      return "on-close";
    case ChildClose::kProbeContained:
      return "probe-contained";
  }
  return "?";
}

Status VerifyResources(const PhysicalModel& model) {
  obs::ScopedSpan span("compile/verify", "resources");
  return ResourceVerifier(model).Run();
}

}  // namespace natix::analysis
