#include <vector>

#include "analysis/plan_verifier.h"
#include "obs/trace.h"

namespace natix::analysis {

namespace {

using runtime::RegisterId;

/// Definite register definitions as a dense bitset over the plan
/// register file.
class DefSet {
 public:
  explicit DefSet(size_t size) : bits_(size, false) {}

  bool Has(RegisterId reg) const { return bits_[reg]; }
  void Add(RegisterId reg) { bits_[reg] = true; }

  void IntersectWith(const DefSet& other) {
    for (size_t i = 0; i < bits_.size(); ++i) {
      bits_[i] = bits_[i] && other.bits_[i];
    }
  }

 private:
  std::vector<bool> bits_;
};

Status Malformed(const PhysNode& node, const std::string& detail) {
  return Status::Internal("plan verifier (physical): " + node.label + ": " +
                          detail);
}

class PhysicalVerifier {
 public:
  explicit PhysicalVerifier(const PhysicalModel& model) : model_(model) {}

  Status Run() {
    if (model_.root == nullptr) {
      return Status::Internal("plan verifier (physical): model has no root");
    }
    DefSet defs(model_.register_count);
    for (RegisterId reg : model_.context_regs) {
      NATIX_RETURN_IF_ERROR(CheckBounds(*model_.root, reg, "context"));
      defs.Add(reg);
    }
    NATIX_RETURN_IF_ERROR(Visit(*model_.root, &defs));
    if (model_.result_reg >= model_.register_count ||
        !defs.Has(model_.result_reg)) {
      return Status::Internal(
          "plan verifier (physical): result register r" +
          std::to_string(model_.result_reg) +
          " is not defined at the plan root");
    }
    return Status::OK();
  }

 private:
  Status CheckBounds(const PhysNode& node, RegisterId reg,
                     const char* role) {
    if (reg >= model_.register_count) {
      return Malformed(node, std::string(role) + " register r" +
                                 std::to_string(reg) +
                                 " is out of bounds (register file holds " +
                                 std::to_string(model_.register_count) +
                                 ")");
    }
    return Status::OK();
  }

  /// Walks the iterator model; on return `defs` holds the registers
  /// definitely written whenever this node has produced a tuple.
  Status Visit(const PhysNode& node, DefSet* defs) {
    const DefSet defs_in = *defs;

    // Child evaluation order under the open/next protocol.
    switch (node.kind) {
      case PhysNodeKind::kLeaf:
        if (!node.children.empty()) {
          return Malformed(node, "leaf node has children");
        }
        break;
      case PhysNodeKind::kPipeline:
      case PhysNodeKind::kBarrier:
        if (node.children.size() != 1) {
          return Malformed(node, "expects exactly one child");
        }
        NATIX_RETURN_IF_ERROR(Visit(*node.children[0], defs));
        break;
      case PhysNodeKind::kDependent:
      case PhysNodeKind::kDependentLeft: {
        if (node.children.size() != 2) {
          return Malformed(node, "expects exactly two children");
        }
        // The dependent right side opens after the left produced a
        // tuple, so it sees the left side's definitions.
        NATIX_RETURN_IF_ERROR(Visit(*node.children[0], defs));
        NATIX_RETURN_IF_ERROR(Visit(*node.children[1], defs));
        break;
      }
      case PhysNodeKind::kConcat: {
        if (node.children.empty()) {
          return Malformed(node, "expects at least one child");
        }
        DefSet meet(model_.register_count);
        for (size_t i = 0; i < node.children.size(); ++i) {
          DefSet branch = defs_in;
          NATIX_RETURN_IF_ERROR(Visit(*node.children[i], &branch));
          if (i == 0) {
            meet = branch;
          } else {
            meet.IntersectWith(branch);
          }
        }
        *defs = meet;
        break;
      }
    }

    // Reads resolve against the definitions available once the last
    // child has produced a tuple.
    for (RegisterId reg : node.reads) {
      NATIX_RETURN_IF_ERROR(CheckBounds(node, reg, "read"));
      if (!defs->Has(reg)) {
        return Malformed(node, "reads register r" + std::to_string(reg) +
                                   " before any write dominates it");
      }
    }
    // Row snapshot lists only need to be in-bounds: a register in the
    // list may legitimately never be written on some paths (e.g. the
    // probe side of an anti-join that produced no tuple), and snapshot
    // and restore are symmetric, so an unwritten register round-trips
    // its initial null.
    for (RegisterId reg : node.row_regs) {
      NATIX_RETURN_IF_ERROR(CheckBounds(node, reg, "row"));
    }

    // Nested subscript plans run per tuple at this site and see the same
    // definitions the subscript sees.
    for (const auto& [nested, input_reg] : node.nested) {
      DefSet nested_defs = *defs;
      NATIX_RETURN_IF_ERROR(Visit(*nested, &nested_defs));
      NATIX_RETURN_IF_ERROR(CheckBounds(node, input_reg, "nested input"));
      if (!nested_defs.Has(input_reg)) {
        return Malformed(node,
                         "nested aggregate reads register r" +
                             std::to_string(input_reg) +
                             " that its plan never writes");
      }
    }

    // Output definitions.
    switch (node.kind) {
      case PhysNodeKind::kDependentLeft: {
        // Only the left tuple survives: recompute from the left branch.
        DefSet left = defs_in;
        NATIX_RETURN_IF_ERROR(VisitDefsOnly(*node.children[0], &left));
        *defs = left;
        break;
      }
      case PhysNodeKind::kBarrier:
        *defs = defs_in;
        break;
      default:
        break;
    }
    for (RegisterId reg : node.writes) {
      NATIX_RETURN_IF_ERROR(CheckBounds(node, reg, "write"));
      defs->Add(reg);
    }
    return Status::OK();
  }

  /// Definition-propagation-only re-walk (no re-checking) used to
  /// recover the left branch's definition set.
  Status VisitDefsOnly(const PhysNode& node, DefSet* defs) {
    return Visit(node, defs);
  }

  const PhysicalModel& model_;
};

}  // namespace

const char* PhysNodeKindName(PhysNodeKind kind) {
  switch (kind) {
    case PhysNodeKind::kLeaf:
      return "leaf";
    case PhysNodeKind::kPipeline:
      return "pipeline";
    case PhysNodeKind::kDependent:
      return "dependent";
    case PhysNodeKind::kDependentLeft:
      return "dependent-left";
    case PhysNodeKind::kBarrier:
      return "barrier";
    case PhysNodeKind::kConcat:
      return "concat";
  }
  return "?";
}

Status VerifyPhysical(const PhysicalModel& model) {
  obs::ScopedSpan span("compile/verify", "physical");
  NATIX_RETURN_IF_ERROR(PhysicalVerifier(model).Run());
  // Layer 3 sweep over every subscript program the plan embeds.
  for (const auto& [site, program] : model.programs) {
    Status st = VerifyProgram(program, model.register_count,
                              model.nested_count);
    if (!st.ok()) {
      return Status::Internal(st.message() + " (subscript of " + site + ")");
    }
  }
  return Status::OK();
}

}  // namespace natix::analysis
