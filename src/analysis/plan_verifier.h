#ifndef NATIX_ANALYSIS_PLAN_VERIFIER_H_
#define NATIX_ANALYSIS_PLAN_VERIFIER_H_

#include <set>
#include <string>

#include "algebra/operator.h"
#include "analysis/physical_model.h"
#include "base/status.h"
#include "nvm/program.h"
#include "translate/translator.h"

namespace natix::analysis {

/// The three-layer static plan verifier. Every layer is a pure analysis:
/// it never mutates its input and reports the first violation through
/// Status (code kInternal — a malformed plan is a compiler bug, never a
/// user error). The layers mirror the compiler pipeline of Sec. 5.1:
///
///   Layer 1 (logical)    — well-formedness of the algebra Operator tree
///                          produced by translation and rewriting,
///   Layer 1.5 (property) — every rewrite rule must preserve the
///                          statically inferred stream properties
///                          (property_inference.h); run by
///                          algebra::SimplifyPlanChecked after each rule,
///   Layer 2 (physical)   — register dataflow of the compiled iterator
///                          tree under the open/next protocol,
///   Layer 3 (NVM)        — bytecode well-formedness of every compiled
///                          subscript program,
///   Layer 4 (resources)  — resource-effect abstract interpretation over
///                          the iterator tree: page-pin balance,
///                          Tmp^cs/MemoX spool lifetime containment, and
///                          Close-reachability on all control paths
///                          (docs/STATIC-ANALYSIS.md).
///
/// Verification is on by default in debug builds and opt-in in release
/// builds (natixq --verify-plans, SetVerificationEnabled(true), or the
/// NATIX_VERIFY_PLANS environment variable). When enabled it also arms
/// the runtime property oracle (src/qe/property_oracle.h), which
/// cross-checks the static claims against actual tuples.

/// Whether the Translator / Rewriter / Codegen hooks run the verifier.
bool VerificationEnabled();
void SetVerificationEnabled(bool enabled);

// ---------------------------------------------------------------------------
// Layer 1: logical plans
// ---------------------------------------------------------------------------

/// Verifies the plan rooted at `root`, treating the attributes in
/// `outer` as bound by the enclosing context (the execution context's
/// cn/cp0/cs0, or — for the dependent branch of a d-join — the outer
/// binding set). Checked invariants:
///   * operator arity and required subscripts/attributes per OpKind,
///   * def-before-use: every attribute an operator or subscript reads is
///     produced upstream or covered by `outer`,
///   * dependent branches (d-join right sides, nested subscript plans)
///     have their free attributes covered by the outer binding set,
///   * projection lists and renames are injective (no duplicate
///     projection attributes, no rebinding of a live attribute),
///   * grouping-sensitive operators (Tmp^cs_c, the resetting position
///     counter) receive inputs whose grouping on the context attribute
///     is actually established.
Status VerifyLogicalPlan(const algebra::Operator& root,
                         const std::set<std::string>& outer);

/// Verifies a translation result: the plan under the execution-context
/// attributes, plus that the result attribute is bound by the plan.
Status VerifyTranslation(const translate::TranslationResult& translation);

/// The execution-context attributes every top-level plan may read.
std::set<std::string> ExecutionContextAttributes();

// ---------------------------------------------------------------------------
// Layer 2: physical register dataflow (model in physical_model.h)
// ---------------------------------------------------------------------------

/// Verifies the physical dataflow model the code generator records
/// alongside the iterator tree. Checked invariants:
///   * every register index (reads, writes, row lists) is within the
///     register file,
///   * every register read is dominated by a write under the open/next
///     protocol (dependent branches see the outer side's definitions,
///     concat consumers see only the intersection of branch definitions),
///   * SaveRow/RestoreRow register lists are within the register file
///     (definedness is not required: snapshot and restore are symmetric,
///     so a never-written register round-trips its initial null),
///   * the result register is defined at the plan root.
Status VerifyPhysical(const PhysicalModel& model);

// ---------------------------------------------------------------------------
// Layer 4: resource effects (declarations in physical_model.h)
// ---------------------------------------------------------------------------

/// Verifies the declared resource effects of the compiled iterator tree.
/// Abstract interpretation over the open/next/close protocol; checked
/// invariants, each failure naming the offending operator:
///   * effect arity: every child has a declared ChildClose mode,
///   * Close-reachability: every node whose subtree holds resources
///     (cursors or spools) is guaranteed to be Closed on all control
///     paths — the chain of kOnClose edges from the root must reach it,
///     or it must be probe-contained (opened and closed entirely inside
///     a single Next of its parent). This covers early Close via Limit
///     and deadline/cancel abort, which Close the root: the same chain
///     applies.
///   * page-pin balance: a cursor-holding node must release the cursor
///     (and hence its page pins) in Close,
///   * spool lifetime containment: kGroup/kFull spools must be dropped
///     on Close; only keyed kMemo state may outlive a Close, and it is
///     bounded by the execution context.
Status VerifyResources(const PhysicalModel& model);

// ---------------------------------------------------------------------------
// Layer 3: NVM subscript programs
// ---------------------------------------------------------------------------

/// Verifies a compiled NVM program. `tuple_register_count` bounds the
/// plan registers kLoadAttr may touch and `nested_count` the nested-plan
/// indices kEvalNested may reference (pass SIZE_MAX to skip either
/// check). Checked invariants:
///   * the program is non-empty and cannot fall off the end,
///   * operand arity/roles per opcode: frame registers < register_count,
///     constant/variable/nested indices in range, comparison codes valid,
///   * jump targets are in range,
///   * no instruction reads a frame register that is not definitely
///     written on every path reaching it.
Status VerifyProgram(const nvm::Program& program,
                     size_t tuple_register_count, size_t nested_count);

}  // namespace natix::analysis

#endif  // NATIX_ANALYSIS_PLAN_VERIFIER_H_
