#include "analysis/property_inference.h"

#include <cstdio>
#include <vector>

namespace natix::analysis {

using algebra::AggKind;
using algebra::Operator;
using algebra::OpKind;
using algebra::Scalar;
using algebra::ScalarKind;
using runtime::Axis;
using xpath::AstNodeTest;

const char* OrderStateName(OrderState order) {
  switch (order) {
    case OrderState::kDocOrdered:
      return "doc";
    case OrderState::kGrouped:
      return "grouped";
    case OrderState::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* CardinalityName(Cardinality card) {
  switch (card) {
    case Cardinality::kEmpty:
      return "0";
    case Cardinality::kExactlyOne:
      return "1";
    case Cardinality::kAtMostOne:
      return "<=1";
    case Cardinality::kMany:
      return "n";
  }
  return "?";
}

const char* NodeClassName(NodeClass node_class) {
  switch (node_class) {
    case NodeClass::kRoot:
      return "root";
    case NodeClass::kElement:
      return "element";
    case NodeClass::kAttribute:
      return "attribute";
    case NodeClass::kLeafText:
      return "leaf";
    case NodeClass::kAnyNode:
      return "node";
    case NodeClass::kNonNode:
      return "value";
  }
  return "?";
}

bool CardinalityAtMostOne(Cardinality card) {
  return card != Cardinality::kMany;
}

bool CardinalityRefines(Cardinality a, Cardinality b) {
  if (a == b || b == Cardinality::kMany) return true;
  // kAtMostOne covers both kEmpty and kExactlyOne; nothing else nests.
  return b == Cardinality::kAtMostOne && CardinalityAtMostOne(a);
}

bool OrderRefines(OrderState a, OrderState b) {
  if (a == b || b == OrderState::kUnknown) return true;
  // doc-ordered (non-strict) implies grouped: equal values repeat only
  // in consecutive runs of a non-decreasing sequence.
  return b == OrderState::kGrouped && a == OrderState::kDocOrdered;
}

namespace {

/// `a` is the same class as `b`, or `b` admits any node.
bool NodeClassRefines(NodeClass a, NodeClass b) {
  return a == b || b == NodeClass::kAnyNode;
}

NodeClass MeetNodeClass(NodeClass a, NodeClass b) {
  return a == b ? a : NodeClass::kAnyNode;
}

/// True when `test` matches only the axis' principal node kind
/// (elements, or attributes on the attribute axis) — never text-like
/// nodes or the root.
bool TestRequiresPrincipal(const AstNodeTest& test) {
  return test.kind == AstNodeTest::Kind::kName ||
         test.kind == AstNodeTest::Kind::kAnyName;
}

bool TestRequiresTextLike(const AstNodeTest& test) {
  switch (test.kind) {
    case AstNodeTest::Kind::kText:
    case AstNodeTest::Kind::kComment:
    case AstNodeTest::Kind::kPi:
    case AstNodeTest::Kind::kPiTarget:
      return true;
    default:
      return false;
  }
}

}  // namespace

AttrProperties PlanProperties::Lookup(const std::string& name) const {
  AttrProperties props;
  auto it = attrs.find(name);
  if (it != attrs.end()) props = it->second;
  if (CardinalityAtMostOne(cardinality)) {
    // A <=1-tuple stream is trivially ordered, duplicate-free and
    // non-nested on every attribute.
    props.order = OrderState::kDocOrdered;
    props.duplicate_free = true;
    props.non_nested = true;
  } else if (it == attrs.end()) {
    // Free attribute: one fixed value per evaluation (the dependent-join
    // contract). Constant values are non-decreasing and never properly
    // nest, but repeat on every tuple.
    props.order = OrderState::kDocOrdered;
    props.non_nested = true;
  }
  return props;
}

bool StaticallyEmptyStep(NodeClass cls, Axis axis,
                         const AstNodeTest& test) {
  // The attribute axis yields only attribute nodes: text()/comment()/
  // pi() tests can never match, whatever the context.
  if (axis == Axis::kAttribute && TestRequiresTextLike(test)) return true;
  switch (cls) {
    case NodeClass::kAttribute:
      switch (axis) {
        // Attribute nodes have no children, attributes or siblings
        // (AxisCursor emits nothing for these contexts).
        case Axis::kChild:
        case Axis::kDescendant:
        case Axis::kAttribute:
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling:
          return true;
        // self / descendant-or-self reach only the attribute itself,
        // which never matches an element name test.
        case Axis::kSelf:
        case Axis::kDescendantOrSelf:
          return TestRequiresPrincipal(test);
        default:
          return false;
      }
    case NodeClass::kLeafText:
      switch (axis) {
        case Axis::kChild:
        case Axis::kDescendant:
        case Axis::kAttribute:
          return true;
        case Axis::kSelf:
        case Axis::kDescendantOrSelf:
          // Both reach only the leaf itself, which is not an element.
          return TestRequiresPrincipal(test);
        default:
          return false;
      }
    case NodeClass::kRoot:
      switch (axis) {
        // The root has no parent, siblings, attributes — and nothing
        // precedes or follows it.
        case Axis::kParent:
        case Axis::kAncestor:
        case Axis::kFollowing:
        case Axis::kFollowingSibling:
        case Axis::kPreceding:
        case Axis::kPrecedingSibling:
        case Axis::kAttribute:
          return true;
        case Axis::kSelf:
        case Axis::kAncestorOrSelf:
          // The root node itself is not an element.
          return TestRequiresPrincipal(test);
        default:
          return false;
      }
    case NodeClass::kElement:
    case NodeClass::kAnyNode:
    case NodeClass::kNonNode:
      return false;
  }
  return false;
}

namespace {

/// Output node class of an axis step.
NodeClass StepNodeClass(Axis axis, const AstNodeTest& test) {
  if (axis == Axis::kAttribute) return NodeClass::kAttribute;
  if (TestRequiresPrincipal(test)) return NodeClass::kElement;
  if (TestRequiresTextLike(test)) return NodeClass::kLeafText;
  return NodeClass::kAnyNode;  // node()
}

/// Cardinality of a stream that appends the fan-outs of `input` tuples.
Cardinality ExpandCardinality(Cardinality input) {
  return input == Cardinality::kEmpty ? Cardinality::kEmpty
                                      : Cardinality::kMany;
}

/// Weakens an exact bound to its upper bound (selection may drop the
/// tuple).
Cardinality FilterCardinality(Cardinality input) {
  return input == Cardinality::kExactlyOne ? Cardinality::kAtMostOne
                                           : input;
}

/// Fan-out over the input stream: every input attribute keeps its order
/// (runs stay contiguous and non-decreasing), nesting state and class,
/// but values repeat whenever one tuple expands to several.
void DropDistinctness(PlanProperties* props) {
  for (auto& [name, attr] : props->attrs) attr.duplicate_free = false;
}

PlanProperties Infer(const Operator& op, PropertyMap* map);

void AnnotateScalar(const Scalar& scalar, PropertyMap* map) {
  if (scalar.kind == ScalarKind::kNested && scalar.plan != nullptr) {
    Infer(*scalar.plan, map);
  }
  for (const algebra::ScalarPtr& child : scalar.children) {
    AnnotateScalar(*child, map);
  }
}

/// Class (and constancy) of a mapped scalar value. Only attribute
/// references and root*() produce nodes; everything else is atomic.
AttrProperties MapOutputProperties(const Scalar& scalar,
                                   const PlanProperties& input) {
  AttrProperties out;
  switch (scalar.kind) {
    case ScalarKind::kAttrRef:
      // Alias: the same value per tuple as the source attribute.
      return input.Lookup(scalar.name);
    case ScalarKind::kNumberConst:
    case ScalarKind::kStringConst:
    case ScalarKind::kBoolConst:
    case ScalarKind::kVarRef:
      // Constant over the stream (variables are fixed per execution).
      out.node_class = NodeClass::kNonNode;
      out.order = OrderState::kGrouped;
      out.non_nested = true;
      return out;
    case ScalarKind::kFunc:
      if (scalar.function == xpath::FunctionId::kRootInternal) {
        // root*(x): the document root — one fixed node per evaluation.
        out.node_class = NodeClass::kRoot;
        out.order = OrderState::kDocOrdered;
        out.non_nested = true;
        return out;
      }
      out.node_class = NodeClass::kNonNode;
      return out;
    case ScalarKind::kArith:
    case ScalarKind::kNegate:
    case ScalarKind::kLogical:
    case ScalarKind::kCompare:
    case ScalarKind::kNested:
      out.node_class = NodeClass::kNonNode;
      return out;
  }
  return out;
}

PlanProperties Infer(const Operator& op, PropertyMap* map) {
  PlanProperties props;
  if (op.scalar != nullptr && map != nullptr) {
    AnnotateScalar(*op.scalar, map);
  }
  switch (op.kind) {
    case OpKind::kSingletonScan:
      props.cardinality = Cardinality::kExactlyOne;
      break;

    case OpKind::kSelect: {
      props = Infer(*op.children[0], map);
      if (op.scalar->kind == ScalarKind::kBoolConst) {
        // Constant predicates fix the outcome: true keeps the exact
        // bound, false empties the stream.
        if (!op.scalar->boolean) props.cardinality = Cardinality::kEmpty;
      } else {
        props.cardinality = FilterCardinality(props.cardinality);
      }
      break;
    }

    case OpKind::kMap: {
      props = Infer(*op.children[0], map);
      AttrProperties out = MapOutputProperties(*op.scalar, props);
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kCounter: {
      props = Infer(*op.children[0], map);
      AttrProperties out;
      out.node_class = NodeClass::kNonNode;
      // Without a reset attribute the counter numbers the whole stream
      // 1..n; with one it restarts per group and values repeat.
      out.duplicate_free = op.ctx_attr.empty();
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kTmpCs: {
      props = Infer(*op.children[0], map);
      AttrProperties out;
      out.node_class = NodeClass::kNonNode;
      // cs is constant per context group, and groups are consecutive.
      out.order = OrderState::kGrouped;
      out.non_nested = true;
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kUnnestMap: {
      PlanProperties input = Infer(*op.children[0], map);
      AttrProperties ctx = input.Lookup(op.ctx_attr);
      props = input;
      DropDistinctness(&props);
      if (input.cardinality == Cardinality::kEmpty ||
          StaticallyEmptyStep(ctx.node_class, op.axis, op.test)) {
        props.cardinality = Cardinality::kEmpty;
      } else {
        switch (op.axis) {
          case Axis::kSelf:
            // At most one output per context.
            props.cardinality = FilterCardinality(input.cardinality);
            break;
          case Axis::kChild:
            // A document node has exactly one element child (the
            // document element), so a child step with an element test
            // from a root context yields at most one node per context.
            props.cardinality =
                ctx.node_class == NodeClass::kRoot &&
                        TestRequiresPrincipal(op.test) && input.AtMostOne()
                    ? Cardinality::kAtMostOne
                    : ExpandCardinality(input.cardinality);
            break;
          case Axis::kParent:
            // At most one parent per context.
            props.cardinality = input.AtMostOne() ? Cardinality::kAtMostOne
                                                  : Cardinality::kMany;
            break;
          case Axis::kAttribute:
            // Attribute names are unique per element.
            props.cardinality =
                op.test.kind == AstNodeTest::Kind::kName &&
                        input.AtMostOne()
                    ? Cardinality::kAtMostOne
                    : ExpandCardinality(input.cardinality);
            break;
          default:
            props.cardinality = ExpandCardinality(input.cardinality);
            break;
        }
      }

      AttrProperties out;
      out.node_class = StepNodeClass(op.axis, op.test);
      // Duplicate-freedom (Hidders/Michiels): child/attribute/self map
      // distinct contexts to disjoint results; descendant steps need the
      // contexts pairwise non-nested on top (disjoint subtrees).
      switch (op.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
        case Axis::kSelf:
          out.duplicate_free = ctx.duplicate_free;
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          out.duplicate_free = ctx.duplicate_free && ctx.non_nested;
          break;
        default:
          break;
      }
      // Document order. The cursor emits each context's results in
      // document order (forward axes); the concatenation over contexts
      // stays non-decreasing only when context groups cannot interleave:
      // duplicate-free ordered contexts, plus disjoint subtrees for
      // child/descendant.
      switch (op.axis) {
        case Axis::kSelf:
          out.order = ctx.order;
          out.non_nested = ctx.non_nested;
          break;
        case Axis::kAttribute:
          // Attributes sit directly after their element, before its
          // children — and are never ancestors of anything.
          if (ctx.order == OrderState::kDocOrdered && ctx.duplicate_free) {
            out.order = OrderState::kDocOrdered;
          }
          out.non_nested = true;
          break;
        case Axis::kChild:
          if (ctx.order == OrderState::kDocOrdered &&
              ctx.duplicate_free && ctx.non_nested) {
            out.order = OrderState::kDocOrdered;
          }
          out.non_nested = ctx.non_nested;
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          if (ctx.order == OrderState::kDocOrdered &&
              ctx.duplicate_free && ctx.non_nested) {
            out.order = OrderState::kDocOrdered;
          }
          // Descendant values nest by construction.
          break;
        case Axis::kFollowingSibling:
          // A single context's siblings are ordered and non-nested; for
          // several contexts the sibling runs interleave.
          if (input.AtMostOne()) {
            out.order = OrderState::kDocOrdered;
            out.non_nested = true;
          }
          break;
        case Axis::kFollowing:
          if (input.AtMostOne()) out.order = OrderState::kDocOrdered;
          break;
        default:
          // Reverse axes emit in reverse document order: no claims.
          break;
      }
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kDJoin:
    case OpKind::kCross: {
      PlanProperties left = Infer(*op.children[0], map);
      PlanProperties right = Infer(*op.children[1], map);
      // Cardinality of the product of per-left-tuple evaluations.
      if (left.cardinality == Cardinality::kEmpty ||
          right.cardinality == Cardinality::kEmpty) {
        props.cardinality = Cardinality::kEmpty;
      } else if (left.cardinality == Cardinality::kExactlyOne &&
                 right.cardinality == Cardinality::kExactlyOne) {
        props.cardinality = Cardinality::kExactlyOne;
      } else if (left.AtMostOne() && right.AtMostOne()) {
        props.cardinality = Cardinality::kAtMostOne;
      } else {
        props.cardinality = Cardinality::kMany;
      }
      // Left attributes: each left tuple's fan-out is consecutive, so
      // order/grouping/nesting survive; distinctness survives only when
      // the right side yields at most one tuple per left tuple.
      props.attrs = left.attrs;
      if (!right.AtMostOne()) DropDistinctness(&props);
      // Right attributes: claims hold per re-evaluation; across left
      // tuples only when there is at most one left tuple.
      for (const auto& [name, attr] : right.attrs) {
        if (left.AtMostOne()) {
          props.attrs[name] = attr;
        } else {
          AttrProperties weakened;
          weakened.node_class = attr.node_class;
          props.attrs[name] = weakened;
        }
      }
      break;
    }

    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin: {
      PlanProperties left = Infer(*op.children[0], map);
      PlanProperties right = Infer(*op.children[1], map);
      props = left;
      props.cardinality = FilterCardinality(left.cardinality);
      if (right.cardinality == Cardinality::kEmpty) {
        // An empty right side makes a semi join empty and an anti join
        // the identity.
        props.cardinality = op.kind == OpKind::kSemiJoin
                                ? Cardinality::kEmpty
                                : left.cardinality;
      }
      break;
    }

    case OpKind::kUnnest: {
      props = Infer(*op.children[0], map);
      DropDistinctness(&props);
      props.cardinality = ExpandCardinality(props.cardinality);
      props.attrs[op.attr] = AttrProperties{};
      break;
    }

    case OpKind::kConcat: {
      std::vector<PlanProperties> branches;
      branches.reserve(op.children.size());
      for (const algebra::OpPtr& child : op.children) {
        branches.push_back(Infer(*child, map));
      }
      // Statically empty branches contribute nothing.
      std::vector<const PlanProperties*> live;
      for (const PlanProperties& branch : branches) {
        if (branch.cardinality != Cardinality::kEmpty) {
          live.push_back(&branch);
        }
      }
      if (live.empty()) {
        props.cardinality = Cardinality::kEmpty;
      } else if (live.size() == 1) {
        props.cardinality = live.front()->cardinality;
      } else {
        props.cardinality = Cardinality::kMany;
      }
      // The concatenation defines the intersection of the branches'
      // attributes. With one live branch its claims carry over; with
      // several, branch streams follow each other with unknown overlap.
      if (!branches.empty()) {
        for (const auto& [name, attr] : branches.front().attrs) {
          bool everywhere = true;
          NodeClass cls = attr.node_class;
          for (size_t i = 1; i < branches.size(); ++i) {
            auto it = branches[i].attrs.find(name);
            if (it == branches[i].attrs.end()) {
              everywhere = false;
              break;
            }
            cls = MeetNodeClass(cls, it->second.node_class);
          }
          if (!everywhere) continue;
          AttrProperties merged;
          merged.node_class = cls;
          if (live.size() == 1) {
            auto it = live.front()->attrs.find(name);
            if (it != live.front()->attrs.end()) {
              merged = it->second;
              merged.node_class = cls;
            }
          }
          props.attrs[name] = merged;
        }
      }
      break;
    }

    case OpKind::kDupElim: {
      props = Infer(*op.children[0], map);
      props.attrs[op.attr].duplicate_free = true;
      // A subset in input order: every other claim survives.
      break;
    }

    case OpKind::kProject: {
      props = Infer(*op.children[0], map);
      std::map<std::string, AttrProperties> kept;
      for (const std::string& name : op.attrs) {
        auto it = props.attrs.find(name);
        if (it != props.attrs.end()) kept.emplace(name, it->second);
      }
      props.attrs = std::move(kept);
      break;
    }

    case OpKind::kSort: {
      props = Infer(*op.children[0], map);
      // Reordering by op.attr destroys every other attribute's order
      // and grouping (value sets survive: distinctness and nesting keep).
      for (auto& [name, attr] : props.attrs) {
        if (name != op.attr) attr.order = OrderState::kUnknown;
      }
      props.attrs[op.attr].order = OrderState::kDocOrdered;
      break;
    }

    case OpKind::kAggregate: {
      Infer(*op.children[0], map);
      props.cardinality = Cardinality::kExactlyOne;
      AttrProperties out;
      out.node_class = NodeClass::kNonNode;
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kBinaryGroup: {
      props = Infer(*op.children[0], map);
      Infer(*op.children[1], map);
      AttrProperties out;
      out.node_class = NodeClass::kNonNode;
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kMemoX:
      // Replays the child stream unchanged.
      props = Infer(*op.children[0], map);
      break;

    case OpKind::kIdDeref: {
      props = Infer(*op.children[0], map);
      DropDistinctness(&props);
      props.cardinality = ExpandCardinality(props.cardinality);
      AttrProperties out;
      out.node_class = NodeClass::kElement;
      props.attrs[op.attr] = out;
      break;
    }

    case OpKind::kLimit:
      props = Infer(*op.children[0], map);
      // A prefix of the input stream: every per-attribute claim
      // survives, and no tuple below the bound is dropped, so exact
      // cardinalities keep. Limit 1 caps an unbounded input at a
      // single tuple.
      if (op.limit == 1 && props.cardinality == Cardinality::kMany) {
        props.cardinality = Cardinality::kAtMostOne;
      }
      break;
  }
  if (map != nullptr) map->emplace(&op, props);
  return props;
}

}  // namespace

PlanProperties InferPlanProperties(const Operator& op) {
  return Infer(op, nullptr);
}

PropertyMap AnnotatePlan(const Operator& root) {
  PropertyMap map;
  Infer(root, &map);
  return map;
}

std::string OperatorSummary(const Operator& op) {
  std::string out = algebra::OpKindName(op.kind);
  switch (op.kind) {
    case OpKind::kMap:
      out += std::string(op.materialize ? "^mat" : "") + "[" + op.attr +
             " := " + op.scalar->ToString() + "]";
      break;
    case OpKind::kSelect:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      out += "[" + op.scalar->ToString() + "]";
      break;
    case OpKind::kUnnestMap:
      out += "[" + op.attr + " := " + op.ctx_attr + "/" +
             runtime::AxisName(op.axis) + "::" + op.test.ToString() + "]";
      break;
    case OpKind::kCounter:
      out += "[" + op.attr +
             (op.ctx_attr.empty() ? "" : ", reset on " + op.ctx_attr) + "]";
      break;
    case OpKind::kTmpCs:
      out += "[" + op.attr +
             (op.ctx_attr.empty() ? "" : "; context " + op.ctx_attr) + "]";
      break;
    case OpKind::kDupElim:
    case OpKind::kSort:
    case OpKind::kUnnest:
    case OpKind::kIdDeref:
      out += "[" + op.attr + "]";
      break;
    case OpKind::kAggregate:
      out += "[" + op.attr + " := " +
             std::string(algebra::AggKindName(op.agg)) + "(" + op.ctx_attr +
             ")]";
      break;
    case OpKind::kMemoX: {
      out += "[";
      for (size_t i = 0; i < op.key_attrs.size(); ++i) {
        if (i > 0) out += ", ";
        out += op.key_attrs[i];
      }
      out += "]";
      break;
    }
    case OpKind::kLimit:
      out += "[" + std::to_string(op.limit) + "]";
      break;
    default:
      break;
  }
  return out;
}

std::string RenderProperties(const PlanProperties& props,
                             const std::string& focus_attr) {
  std::string out = "{card:";
  out += CardinalityName(props.cardinality);
  if (!focus_attr.empty()) {
    AttrProperties attr = props.Lookup(focus_attr);
    if (attr.order != OrderState::kUnknown) {
      out += std::string(", ord:") + OrderStateName(attr.order) + "(" +
             focus_attr + ")";
    }
    if (attr.duplicate_free) out += ", dup-free(" + focus_attr + ")";
    if (attr.non_nested) out += ", non-nested(" + focus_attr + ")";
    if (attr.node_class != NodeClass::kAnyNode) {
      out += std::string(", class:") + NodeClassName(attr.node_class);
    }
  }
  out += "}";
  return out;
}

namespace {

/// The attribute whose claims matter at this operator (its output, or
/// for pass-through operators the attribute it operates on).
std::string FocusAttr(const Operator& op) {
  switch (op.kind) {
    case OpKind::kSingletonScan:
    case OpKind::kProject:
    case OpKind::kSelect:
    case OpKind::kDJoin:
    case OpKind::kCross:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kConcat:
    case OpKind::kMemoX:
      return std::string();
    default:
      return op.attr;
  }
}

void RenderAnnotated(const Operator& op, const PropertyMap& map, int depth,
                     std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += OperatorSummary(op);
  auto it = map.find(&op);
  if (it != map.end()) {
    *out += "  " + RenderProperties(it->second, FocusAttr(op));
  }
  *out += "\n";
  if (op.scalar != nullptr) {
    // Nested scalar subplans carry their own annotations.
    struct ScalarWalker {
      const PropertyMap& map;
      int depth;
      std::string* out;
      void Walk(const Scalar& scalar) {
        if (scalar.kind == ScalarKind::kNested && scalar.plan != nullptr) {
          out->append(static_cast<size_t>(depth) * 2, ' ');
          *out += "nested " + std::string(algebra::AggKindName(scalar.agg)) +
                  "(" + scalar.input_attr + "):\n";
          RenderAnnotated(*scalar.plan, map, depth + 1, out);
        }
        for (const algebra::ScalarPtr& child : scalar.children) {
          Walk(*child);
        }
      }
    };
    ScalarWalker{map, depth + 1, out}.Walk(*op.scalar);
  }
  for (const algebra::OpPtr& child : op.children) {
    RenderAnnotated(*child, map, depth + 1, out);
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonForOp(const Operator& op, const PropertyMap& map, std::string* out) {
  *out += "{\"op\":\"" + std::string(algebra::OpKindName(op.kind)) + "\"";
  *out += ",\"summary\":\"" + JsonEscape(OperatorSummary(op)) + "\"";
  auto it = map.find(&op);
  if (it != map.end()) {
    const PlanProperties& props = it->second;
    *out += ",\"cardinality\":\"" +
            std::string(CardinalityName(props.cardinality)) + "\"";
    *out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [name, attr] : props.attrs) {
      if (!first) *out += ",";
      first = false;
      *out += "\"" + JsonEscape(name) + "\":{\"order\":\"" +
              std::string(OrderStateName(attr.order)) +
              "\",\"duplicate_free\":" +
              (attr.duplicate_free ? "true" : "false") +
              ",\"non_nested\":" + (attr.non_nested ? "true" : "false") +
              ",\"class\":\"" + NodeClassName(attr.node_class) + "\"}";
    }
    *out += "}";
  }
  // Nested scalar subplans.
  std::vector<const Scalar*> nested;
  struct Collector {
    std::vector<const Scalar*>* nested;
    void Walk(const Scalar& scalar) {
      if (scalar.kind == ScalarKind::kNested && scalar.plan != nullptr) {
        nested->push_back(&scalar);
      }
      for (const algebra::ScalarPtr& child : scalar.children) Walk(*child);
    }
  };
  if (op.scalar != nullptr) Collector{&nested}.Walk(*op.scalar);
  if (!nested.empty()) {
    *out += ",\"nested\":[";
    for (size_t i = 0; i < nested.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "{\"agg\":\"" +
              std::string(algebra::AggKindName(nested[i]->agg)) +
              "\",\"input\":\"" + JsonEscape(nested[i]->input_attr) +
              "\",\"plan\":";
      JsonForOp(*nested[i]->plan, map, out);
      *out += "}";
    }
    *out += "]";
  }
  if (!op.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < op.children.size(); ++i) {
      if (i > 0) *out += ",";
      JsonForOp(*op.children[i], map, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string RenderAnnotatedPlan(const Operator& root) {
  PropertyMap map = AnnotatePlan(root);
  std::string out;
  RenderAnnotated(root, map, 0, &out);
  return out;
}

std::string PlanToJson(const Operator& root) {
  PropertyMap map = AnnotatePlan(root);
  std::string out;
  JsonForOp(root, map, &out);
  out += "\n";
  return out;
}

Status CheckPropertyPreservation(const PlanProperties& before,
                                 const PlanProperties& after,
                                 const char* rule) {
  auto violation = [rule](const std::string& detail) {
    return Status::Internal(std::string("rewrite rule '") + rule +
                            "' weakened inferred properties: " + detail);
  };
  if (!CardinalityRefines(after.cardinality, before.cardinality)) {
    return violation(std::string("cardinality bound ") +
                     CardinalityName(before.cardinality) + " became " +
                     CardinalityName(after.cardinality));
  }
  // A provably empty stream satisfies every per-attribute claim
  // vacuously — there is no tuple a claim could fail on.
  if (after.cardinality == Cardinality::kEmpty) return Status::OK();
  for (const auto& [name, attr] : before.attrs) {
    AttrProperties b = before.Lookup(name);
    AttrProperties a = after.Lookup(name);
    if (!OrderRefines(a.order, b.order)) {
      return violation("order " + std::string(OrderStateName(b.order)) +
                       "(" + name + ") became " + OrderStateName(a.order));
    }
    if (b.duplicate_free && !a.duplicate_free) {
      return violation("duplicate-freedom of '" + name + "' was lost");
    }
    if (b.non_nested && !a.non_nested) {
      return violation("non-nesting of '" + name + "' was lost");
    }
    if (!NodeClassRefines(a.node_class, b.node_class)) {
      return violation("node class " +
                       std::string(NodeClassName(b.node_class)) + "(" +
                       name + ") became " + NodeClassName(a.node_class));
    }
  }
  return Status::OK();
}

}  // namespace natix::analysis
