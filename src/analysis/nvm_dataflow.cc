#include "analysis/nvm_dataflow.h"

#include <algorithm>
#include <deque>

#include "nvm/vm.h"
#include "runtime/conversions.h"
#include "runtime/register_file.h"

namespace natix::analysis {

namespace {

using nvm::Instruction;
using nvm::OpCode;
using nvm::Program;
using runtime::Value;
using runtime::ValueKind;

}  // namespace

NvmOperandRoles NvmRolesOf(const Instruction& ins) {
  NvmOperandRoles roles;
  auto read = [&roles](NvmOperandRoles::Field field) {
    roles.read_fields[roles.read_count++] = field;
  };
  switch (ins.op) {
    case OpCode::kLoadConst:
      roles.writes_a = true;
      roles.const_b = true;
      break;
    case OpCode::kLoadAttr:
      roles.writes_a = true;
      roles.attr_b = true;
      break;
    case OpCode::kLoadVar:
      roles.writes_a = true;
      roles.var_b = true;
      break;
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kConcat2:
    case OpCode::kStartsWith:
    case OpCode::kContains:
    case OpCode::kSubstringBefore:
    case OpCode::kSubstringAfter:
    case OpCode::kSubstring2:
    case OpCode::kLang:
      roles.writes_a = true;
      read(&Instruction::b);
      read(&Instruction::c);
      break;
    case OpCode::kCompare:
      roles.writes_a = true;
      read(&Instruction::b);
      read(&Instruction::c);
      roles.cmp_d = true;
      break;
    case OpCode::kSubstring3:
    case OpCode::kTranslate:
      roles.writes_a = true;
      read(&Instruction::b);
      read(&Instruction::c);
      read(&Instruction::d);
      break;
    case OpCode::kNeg:
    case OpCode::kNot:
    case OpCode::kToBool:
    case OpCode::kToNum:
    case OpCode::kToStr:
    case OpCode::kStringLength:
    case OpCode::kNormalizeSpace:
    case OpCode::kFloor:
    case OpCode::kCeiling:
    case OpCode::kRound:
    case OpCode::kRoot:
    case OpCode::kNodeName:
    case OpCode::kNodeLocalName:
    case OpCode::kMove:
      roles.writes_a = true;
      read(&Instruction::b);
      break;
    case OpCode::kJump:
      roles.jump_b = true;
      break;
    case OpCode::kJumpIfTrue:
    case OpCode::kJumpIfFalse:
      read(&Instruction::a);
      roles.jump_b = true;
      break;
    case OpCode::kEvalNested:
      roles.writes_a = true;
      roles.nested_b = true;
      break;
    case OpCode::kHalt:
      read(&Instruction::a);
      break;
    case OpCode::kCmpAttrConst:
      roles.writes_a = true;
      roles.attr_b = true;
      roles.const_c = true;
      roles.cmp_d = true;
      roles.cmp_flag_d = true;
      break;
    case OpCode::kCmpBranch:
      read(&Instruction::b);
      read(&Instruction::c);
      roles.jump_a = true;
      roles.cmp_d = true;
      roles.cmp_flag_d = true;
      break;
  }
  return roles;
}

void NvmSuccessors(const Program& program, size_t pc,
                   std::vector<size_t>* out) {
  out->clear();
  const Instruction& ins = program.code[pc];
  switch (ins.op) {
    case OpCode::kHalt:
      break;
    case OpCode::kJump:
      out->push_back(ins.b);
      break;
    case OpCode::kJumpIfTrue:
    case OpCode::kJumpIfFalse:
      out->push_back(ins.b);
      if (pc + 1 < program.code.size()) out->push_back(pc + 1);
      break;
    case OpCode::kCmpBranch:
      out->push_back(ins.a);
      if (pc + 1 < program.code.size()) out->push_back(pc + 1);
      break;
    default:
      if (pc + 1 < program.code.size()) out->push_back(pc + 1);
      break;
  }
}

NvmCfg NvmCfg::Build(const Program& program) {
  NvmCfg cfg;
  const size_t n = program.code.size();
  if (n == 0) return cfg;

  // Leaders: the entry, every jump target, and every fall-through
  // successor of an instruction that also branches elsewhere (or ends
  // the block).
  std::vector<bool> leader(n, false);
  leader[0] = true;
  std::vector<size_t> succs;
  for (size_t pc = 0; pc < n; ++pc) {
    const Instruction& ins = program.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    if (roles.jump_b && ins.b < n) leader[ins.b] = true;
    if (roles.jump_a && ins.a < n) leader[ins.a] = true;
    const bool ends_block = ins.op == OpCode::kJump ||
                            ins.op == OpCode::kJumpIfTrue ||
                            ins.op == OpCode::kJumpIfFalse ||
                            ins.op == OpCode::kCmpBranch ||
                            ins.op == OpCode::kHalt;
    if (ends_block && pc + 1 < n) leader[pc + 1] = true;
  }

  cfg.block_of.assign(n, 0);
  for (size_t pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      Block block;
      block.begin = pc;
      cfg.blocks.push_back(block);
    }
    cfg.block_of[pc] = cfg.blocks.size() - 1;
    cfg.blocks.back().end = pc + 1;
  }

  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    const size_t last = cfg.blocks[b].end - 1;
    NvmSuccessors(program, last, &succs);
    for (size_t succ_pc : succs) {
      size_t succ = cfg.block_of[succ_pc];
      if (std::find(cfg.blocks[b].succs.begin(), cfg.blocks[b].succs.end(),
                    succ) == cfg.blocks[b].succs.end()) {
        cfg.blocks[b].succs.push_back(succ);
        cfg.blocks[succ].preds.push_back(b);
      }
    }
  }

  std::deque<size_t> worklist;
  cfg.blocks[0].reachable = true;
  worklist.push_back(0);
  while (!worklist.empty()) {
    size_t b = worklist.front();
    worklist.pop_front();
    for (size_t succ : cfg.blocks[b].succs) {
      if (!cfg.blocks[succ].reachable) {
        cfg.blocks[succ].reachable = true;
        worklist.push_back(succ);
      }
    }
  }
  return cfg;
}

std::string NvmCfg::LabelAt(size_t pc) const {
  size_t b = block_of[pc];
  if (blocks[b].begin != pc) return std::string();
  return "L" + std::to_string(b);
}

NvmLiveness NvmLiveness::Compute(const Program& program) {
  NvmLiveness live;
  const size_t n = program.code.size();
  live.in_.assign(n, std::vector<bool>(program.register_count, false));
  live.out_.assign(n, std::vector<bool>(program.register_count, false));

  std::vector<size_t> succs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = n; i-- > 0;) {
      const Instruction& ins = program.code[i];
      NvmOperandRoles roles = NvmRolesOf(ins);
      std::vector<bool> out(program.register_count, false);
      NvmSuccessors(program, i, &succs);
      for (size_t succ : succs) {
        for (size_t r = 0; r < out.size(); ++r) {
          if (live.in_[succ][r]) out[r] = true;
        }
      }
      std::vector<bool> in = out;
      if (roles.writes_a) in[ins.a] = false;
      for (int k = 0; k < roles.read_count; ++k) in[roles.read(ins, k)] = true;
      if (out != live.out_[i] || in != live.in_[i]) {
        live.out_[i] = std::move(out);
        live.in_[i] = std::move(in);
        changed = true;
      }
    }
  }
  return live;
}

NvmReachingDefs NvmReachingDefs::Compute(const Program& program) {
  NvmReachingDefs rd;
  const size_t n = program.code.size();
  rd.in_.assign(n, std::vector<std::vector<bool>>(
                       program.register_count, std::vector<bool>(n, false)));

  std::vector<size_t> succs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      const Instruction& ins = program.code[i];
      NvmOperandRoles roles = NvmRolesOf(ins);
      // out = in, except the written register's defs collapse to {i}.
      std::vector<std::vector<bool>> out = rd.in_[i];
      if (roles.writes_a) {
        std::fill(out[ins.a].begin(), out[ins.a].end(), false);
        out[ins.a][i] = true;
      }
      NvmSuccessors(program, i, &succs);
      for (size_t succ : succs) {
        for (size_t r = 0; r < out.size(); ++r) {
          for (size_t d = 0; d < n; ++d) {
            if (out[r][d] && !rd.in_[succ][r][d]) {
              rd.in_[succ][r][d] = true;
              changed = true;
            }
          }
        }
      }
    }
  }
  return rd;
}

std::vector<size_t> NvmReachingDefs::DefsReaching(size_t pc,
                                                  uint16_t reg) const {
  std::vector<size_t> defs;
  for (size_t d = 0; d < in_[pc][reg].size(); ++d) {
    if (in_[pc][reg][d]) defs.push_back(d);
  }
  return defs;
}

namespace {

/// Bitwise value identity for the constant lattice: NaN meets NaN as
/// equal so a join of two NaN-producing paths stays constant.
bool SameConstant(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBoolean:
      return a.AsBoolean() == b.AsBoolean();
    case ValueKind::kNumber: {
      double x = a.AsNumber();
      double y = b.AsNumber();
      uint64_t xb, yb;
      static_assert(sizeof(double) == sizeof(uint64_t), "");
      __builtin_memcpy(&xb, &x, sizeof(xb));
      __builtin_memcpy(&yb, &y, sizeof(yb));
      return xb == yb;
    }
    case ValueKind::kString:
      return a.AsString() == b.AsString();
    default:
      return false;  // nodes/sequences are never tracked as constants
  }
}

/// Meet of the constant lattice: kUndef is top, kVarying bottom.
void MeetConst(NvmConst* into, const NvmConst& other) {
  if (other.state == NvmConst::State::kUndef) return;
  if (into->state == NvmConst::State::kUndef) {
    *into = other;
    return;
  }
  if (into->state == NvmConst::State::kVarying) return;
  if (other.state == NvmConst::State::kVarying ||
      !SameConstant(into->value, other.value)) {
    into->state = NvmConst::State::kVarying;
    into->value = Value();
  }
}

}  // namespace

NvmConstants NvmConstants::Compute(const Program& program) {
  NvmConstants consts;
  const size_t n = program.code.size();
  consts.in_.assign(n, std::vector<NvmConst>(program.register_count));

  std::vector<bool> seen(n, false);
  std::deque<size_t> worklist;
  seen[0] = true;
  worklist.push_back(0);
  std::vector<size_t> succs;
  while (!worklist.empty()) {
    size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& ins = program.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    std::vector<NvmConst> out = consts.in_[pc];
    if (roles.writes_a) {
      NvmConst result;
      result.state = NvmConst::State::kVarying;
      if (ins.op == OpCode::kLoadConst) {
        result.state = NvmConst::State::kConst;
        result.value = program.constants[ins.b];
      } else if (ins.op == OpCode::kMove) {
        result = out[ins.b];
        // An unwritten (kUndef) source stays kUndef: the verifier has
        // already rejected reads of never-written registers.
      }
      out[ins.a] = std::move(result);
    }
    NvmSuccessors(program, pc, &succs);
    for (size_t succ : succs) {
      if (!seen[succ]) {
        consts.in_[succ] = out;
        seen[succ] = true;
        worklist.push_back(succ);
        continue;
      }
      bool changed = false;
      for (size_t r = 0; r < out.size(); ++r) {
        NvmConst merged = consts.in_[succ][r];
        MeetConst(&merged, out[r]);
        if (merged.state != consts.in_[succ][r].state ||
            (merged.state == NvmConst::State::kConst &&
             !SameConstant(merged.value, consts.in_[succ][r].value))) {
          consts.in_[succ][r] = std::move(merged);
          changed = true;
        }
      }
      if (changed) worklist.push_back(succ);
    }
  }
  return consts;
}

const char* NvmKindName(NvmKind kind) {
  switch (kind) {
    case NvmKind::kUndef:
      return "undef";
    case NvmKind::kBoolean:
      return "boolean";
    case NvmKind::kNumber:
      return "number";
    case NvmKind::kString:
      return "string";
    case NvmKind::kNode:
      return "node";
    case NvmKind::kAtomic:
      return "atomic";
    case NvmKind::kAny:
      return "any";
  }
  return "?";
}

bool NvmKindIsAtomic(NvmKind kind) {
  return kind == NvmKind::kBoolean || kind == NvmKind::kNumber ||
         kind == NvmKind::kString || kind == NvmKind::kAtomic;
}

NvmKind NvmKindOfValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kBoolean:
      return NvmKind::kBoolean;
    case ValueKind::kNumber:
      return NvmKind::kNumber;
    case ValueKind::kString:
      return NvmKind::kString;
    case ValueKind::kNode:
      return NvmKind::kNode;
    default:
      return NvmKind::kAny;
  }
}

namespace {

NvmKind JoinKind(NvmKind a, NvmKind b) {
  if (a == NvmKind::kUndef) return b;
  if (b == NvmKind::kUndef) return a;
  if (a == b) return a;
  if (NvmKindIsAtomic(a) && NvmKindIsAtomic(b)) return NvmKind::kAtomic;
  return NvmKind::kAny;
}

NvmKind ResultKind(const Program& program, const Instruction& ins,
                   const std::vector<NvmKind>& in) {
  switch (ins.op) {
    case OpCode::kLoadConst:
      return NvmKindOfValue(program.constants[ins.b]);
    case OpCode::kMove:
      return in[ins.b];
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kNeg:
    case OpCode::kToNum:
    case OpCode::kStringLength:
    case OpCode::kFloor:
    case OpCode::kCeiling:
    case OpCode::kRound:
      return NvmKind::kNumber;
    case OpCode::kNot:
    case OpCode::kToBool:
    case OpCode::kCompare:
    case OpCode::kCmpAttrConst:
    case OpCode::kStartsWith:
    case OpCode::kContains:
    case OpCode::kLang:
      return NvmKind::kBoolean;
    case OpCode::kToStr:
    case OpCode::kConcat2:
    case OpCode::kSubstringBefore:
    case OpCode::kSubstringAfter:
    case OpCode::kSubstring2:
    case OpCode::kSubstring3:
    case OpCode::kNormalizeSpace:
    case OpCode::kTranslate:
    case OpCode::kNodeName:
    case OpCode::kNodeLocalName:
      return NvmKind::kString;
    case OpCode::kRoot:
      return NvmKind::kNode;
    case OpCode::kEvalNested:
      // Nested aggregates reduce to number/boolean/string (Sec. 5.2.5).
      return NvmKind::kAtomic;
    default:
      return NvmKind::kAny;  // kLoadAttr, kLoadVar
  }
}

}  // namespace

NvmKinds NvmKinds::Compute(const Program& program) {
  NvmKinds kinds;
  const size_t n = program.code.size();
  kinds.in_.assign(n, std::vector<NvmKind>(program.register_count,
                                           NvmKind::kUndef));

  std::deque<size_t> worklist;
  std::vector<bool> seen(n, false);
  seen[0] = true;
  worklist.push_back(0);
  std::vector<size_t> succs;
  while (!worklist.empty()) {
    size_t pc = worklist.front();
    worklist.pop_front();
    const Instruction& ins = program.code[pc];
    NvmOperandRoles roles = NvmRolesOf(ins);
    std::vector<NvmKind> out = kinds.in_[pc];
    if (roles.writes_a) out[ins.a] = ResultKind(program, ins, kinds.in_[pc]);
    NvmSuccessors(program, pc, &succs);
    for (size_t succ : succs) {
      if (!seen[succ]) {
        kinds.in_[succ] = out;
        seen[succ] = true;
        worklist.push_back(succ);
        continue;
      }
      bool changed = false;
      for (size_t r = 0; r < out.size(); ++r) {
        NvmKind joined = JoinKind(kinds.in_[succ][r], out[r]);
        if (joined != kinds.in_[succ][r]) {
          kinds.in_[succ][r] = joined;
          changed = true;
        }
      }
      if (changed) worklist.push_back(succ);
    }
  }
  return kinds;
}

bool NvmInstructionIsPure(const Program& program, size_t pc,
                          const NvmKinds& kinds) {
  const Instruction& ins = program.code[pc];
  switch (ins.op) {
    case OpCode::kLoadConst:
    case OpCode::kLoadAttr:
    case OpCode::kMove:
      // Plain copies: no conversion, no failure mode.
      return true;
    case OpCode::kNot:
    case OpCode::kToBool:
      // boolean() is total for every value kind and never touches the
      // store (runtime/conversions.cc), so these are pure even over
      // nodes.
      return true;
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMod:
    case OpCode::kNeg:
    case OpCode::kToNum:
    case OpCode::kToStr:
    case OpCode::kCompare:
    case OpCode::kConcat2:
    case OpCode::kStartsWith:
    case OpCode::kContains:
    case OpCode::kSubstringBefore:
    case OpCode::kSubstringAfter:
    case OpCode::kSubstring2:
    case OpCode::kSubstring3:
    case OpCode::kStringLength:
    case OpCode::kNormalizeSpace:
    case OpCode::kTranslate:
    case OpCode::kFloor:
    case OpCode::kCeiling:
    case OpCode::kRound: {
      // number()/string() of a node reads its string-value from the
      // page buffer; of an atomic they are total and store-free.
      NvmOperandRoles roles = NvmRolesOf(ins);
      for (int i = 0; i < roles.read_count; ++i) {
        if (!NvmKindIsAtomic(kinds.In(pc, roles.read(ins, i)))) return false;
      }
      return true;
    }
    default:
      // kLoadVar can fail on an unbound variable, kEvalNested runs a
      // subplan, node navigation reads the store, control flow is not a
      // store. All stay untouched.
      return false;
  }
}

StatusOr<Value> NvmEvaluateConstInstruction(
    const Program& program, size_t pc, const std::vector<Value>& operands) {
  const Instruction& ins = program.code[pc];
  NvmOperandRoles roles = NvmRolesOf(ins);
  if (!roles.writes_a ||
      roles.read_count != static_cast<int>(operands.size())) {
    return Status::Internal("const fold: operand arity mismatch");
  }
  Program mini;
  mini.constants = operands;
  for (size_t i = 0; i < operands.size(); ++i) {
    Instruction load;
    load.op = OpCode::kLoadConst;
    load.a = static_cast<uint16_t>(i);
    load.b = static_cast<uint16_t>(i);
    mini.code.push_back(load);
  }
  Instruction clone = ins;
  for (int i = 0; i < roles.read_count; ++i) {
    clone.*(roles.read_fields[i]) = static_cast<uint16_t>(i);
  }
  clone.a = static_cast<uint16_t>(operands.size());
  mini.code.push_back(clone);
  Instruction halt;
  halt.op = OpCode::kHalt;
  halt.a = clone.a;
  mini.code.push_back(halt);
  mini.register_count = static_cast<uint16_t>(operands.size() + 1);

  // The real interpreter evaluates the fold; purity guarantees it never
  // dereferences the (null) store or the nested table.
  nvm::Vm vm(&mini);
  runtime::RegisterFile tuple(0);
  runtime::EvalContext ctx;
  nvm::NestedEvaluator nested = [](size_t) -> StatusOr<Value> {
    return Status::Internal("const fold: nested plan access");
  };
  return vm.Run(tuple, ctx, {}, nested);
}

namespace {

std::string RenderTarget(const NvmCfg* cfg, size_t target) {
  if (cfg != nullptr && target < cfg->block_of.size()) {
    std::string label = cfg->LabelAt(target);
    if (!label.empty()) return "-> " + label;
  }
  return "-> @" + std::to_string(target);
}

std::string RenderInstruction(const Program& program, size_t pc,
                              const NvmCfg* cfg) {
  const Instruction& ins = program.code[pc];
  std::string out = OpCodeName(ins.op);
  auto reg = [](uint16_t r) { return " r" + std::to_string(r); };
  auto cmp_name = [](uint16_t d) {
    return std::string(
        runtime::CompareOpName(static_cast<runtime::CompareOp>(d & 0xFF)));
  };
  switch (ins.op) {
    case OpCode::kLoadConst:
      out += reg(ins.a) + ", " +
             (ins.b < program.constants.size()
                  ? program.constants[ins.b].DebugString()
                  : "c?" + std::to_string(ins.b));
      break;
    case OpCode::kLoadAttr:
      out += reg(ins.a) + ", t" + std::to_string(ins.b);
      break;
    case OpCode::kLoadVar:
      out += reg(ins.a) + ", $" +
             (ins.b < program.variable_names.size()
                  ? program.variable_names[ins.b]
                  : "?" + std::to_string(ins.b));
      break;
    case OpCode::kCompare:
      out += reg(ins.a) + "," + reg(ins.b) + " " + cmp_name(ins.d) +
             reg(ins.c);
      break;
    case OpCode::kJump:
      out += " " + RenderTarget(cfg, ins.b);
      break;
    case OpCode::kJumpIfTrue:
    case OpCode::kJumpIfFalse:
      out += reg(ins.a) + " " + RenderTarget(cfg, ins.b);
      break;
    case OpCode::kEvalNested:
      out += reg(ins.a) + ", nested#" + std::to_string(ins.b);
      break;
    case OpCode::kHalt:
      out += reg(ins.a);
      break;
    case OpCode::kCmpAttrConst: {
      std::string attr = "t" + std::to_string(ins.b);
      std::string constant = ins.c < program.constants.size()
                                 ? program.constants[ins.c].DebugString()
                                 : "c?" + std::to_string(ins.c);
      bool swapped = (ins.d & nvm::kCmpFlagBit) != 0;
      out += reg(ins.a) + ", " + (swapped ? constant : attr) + " " +
             cmp_name(ins.d) + " " + (swapped ? attr : constant);
      break;
    }
    case OpCode::kCmpBranch:
      out += reg(ins.b) + " " + cmp_name(ins.d) + reg(ins.c) + ", on " +
             ((ins.d & nvm::kCmpFlagBit) != 0 ? "true " : "false ") +
             RenderTarget(cfg, ins.a);
      break;
    default: {
      NvmOperandRoles roles = NvmRolesOf(ins);
      out += reg(ins.a);
      for (int i = 0; i < roles.read_count; ++i) {
        out += "," + reg(roles.read(ins, i));
      }
      break;
    }
  }
  return out;
}

}  // namespace

std::string RenderNvmInstruction(const Program& program, size_t pc) {
  return RenderInstruction(program, pc, nullptr);
}

std::string RenderNvmProgram(const Program& program) {
  if (program.code.empty()) return "(empty program)\n";
  NvmCfg cfg = NvmCfg::Build(program);
  std::string out;
  for (size_t pc = 0; pc < program.code.size(); ++pc) {
    std::string label = cfg.LabelAt(pc);
    if (!label.empty()) {
      out += label + ":";
      if (!cfg.Reachable(pc)) out += "  ; unreachable";
      out += "\n";
    }
    out += "  " + std::to_string(pc) + ": " +
           RenderInstruction(program, pc, &cfg) + "\n";
  }
  return out;
}

}  // namespace natix::analysis
