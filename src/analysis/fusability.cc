#include "analysis/fusability.h"

#include <cstdio>
#include <utility>

#include "analysis/property_inference.h"

namespace natix::analysis {

namespace {

using algebra::OpKind;
using algebra::Operator;
using algebra::Scalar;
using algebra::ScalarKind;

/// A subscript that evaluates a nested sequence-valued plan is not
/// effect-free: it opens, drains and closes a whole subplan per tuple.
bool ScalarHasNested(const Scalar& scalar) {
  if (scalar.kind == ScalarKind::kNested) return true;
  for (const auto& child : scalar.children) {
    if (ScalarHasNested(*child)) return true;
  }
  return false;
}

class Segmenter {
 public:
  Segmentation Run(const Operator& root) {
    Walk(root);
    Flush();
    return std::move(result_);
  }

 private:
  void Flush() {
    if (current_.empty()) return;
    PipelineSegment seg;
    seg.id = next_id_++;
    seg.ops = std::move(current_);
    seg.fusable = true;
    current_.clear();
    result_.segments.push_back(std::move(seg));
  }

  void Boundary(const Operator& op, std::string why) {
    Flush();
    PipelineSegment seg;
    seg.id = next_id_++;
    seg.ops.push_back(OperatorSummary(op));
    seg.fusable = false;
    seg.barrier = std::move(why);
    result_.segments.push_back(std::move(seg));
  }

  void WalkNested(const Scalar& scalar) {
    if (scalar.kind == ScalarKind::kNested && scalar.plan != nullptr) {
      Walk(*scalar.plan);
      Flush();
    }
    for (const auto& child : scalar.children) WalkNested(*child);
  }

  void Walk(const Operator& op) {
    std::string why;
    if (OperatorFusable(op, &why)) {
      current_.push_back(OperatorSummary(op));
      if (op.children.empty()) {
        Flush();
        return;
      }
      Walk(*op.children[0]);
      return;
    }
    Boundary(op, std::move(why));
    // Each input of a boundary operator starts a fresh segment; nested
    // subscript plans (existential predicates, aggregates) are
    // segmented too — they are pipelines in their own right.
    for (const auto& child : op.children) {
      Walk(*child);
      Flush();
    }
    if (op.scalar != nullptr) WalkNested(*op.scalar);
  }

  Segmentation result_;
  std::vector<std::string> current_;
  int next_id_ = 0;
};

}  // namespace

bool OperatorFusable(const algebra::Operator& op, std::string* why) {
  auto barrier = [why](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (op.scalar != nullptr && ScalarHasNested(*op.scalar)) {
    return barrier("subscript evaluates a nested plan");
  }
  switch (op.kind) {
    case OpKind::kSingletonScan:
    case OpKind::kSelect:
    case OpKind::kCounter:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kProject:
    case OpKind::kLimit:
      return true;
    case OpKind::kMap:
      if (op.materialize) {
        return barrier("materializing map (chi^mat result cache)");
      }
      return true;
    case OpKind::kSort:
      return barrier("blocking: materializes and sorts the whole input");
    case OpKind::kTmpCs:
      return barrier("materializes one context group (Tmp^cs spool)");
    case OpKind::kMemoX:
      return barrier("keyed memo table survives re-Opens");
    case OpKind::kDupElim:
      return barrier("stateful: duplicate seen-set");
    case OpKind::kAggregate:
      return barrier("blocking: drains the input to one tuple");
    case OpKind::kBinaryGroup:
      return barrier("control-flow boundary: binary grouping");
    case OpKind::kDJoin:
      return barrier("control-flow boundary: dependent join");
    case OpKind::kCross:
      return barrier("control-flow boundary: cross product");
    case OpKind::kSemiJoin:
      return barrier("control-flow boundary: semi-join probe");
    case OpKind::kAntiJoin:
      return barrier("control-flow boundary: anti-join probe");
    case OpKind::kConcat:
      return barrier("control-flow boundary: concatenation");
    case OpKind::kIdDeref:
      return barrier("side effect: lazily built id index");
  }
  return barrier("unknown operator");
}

Segmentation SegmentPlan(const algebra::Operator& root) {
  return Segmenter().Run(root);
}

std::string RenderSegments(const Segmentation& seg) {
  std::string out = "pipeline segments: " +
                    std::to_string(seg.segments.size()) + " (" +
                    std::to_string(seg.fusable_count()) + " fusable)\n";
  for (const PipelineSegment& s : seg.segments) {
    out += "  segment " + std::to_string(s.id) +
           (s.fusable ? " [fusable]" : " [boundary: " + s.barrier + "]") +
           "\n";
    for (const std::string& op : s.ops) {
      out += "    " + op + "\n";
    }
  }
  return out;
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string SegmentsJson(const Segmentation& seg) {
  std::string out = "[";
  for (size_t i = 0; i < seg.segments.size(); ++i) {
    const PipelineSegment& s = seg.segments[i];
    if (i > 0) out += ",";
    out += "{\"id\":" + std::to_string(s.id) +
           ",\"fusable\":" + (s.fusable ? "true" : "false");
    if (!s.fusable) {
      out += ",\"barrier\":";
      AppendJsonString(s.barrier, &out);
    }
    out += ",\"ops\":[";
    for (size_t j = 0; j < s.ops.size(); ++j) {
      if (j > 0) out += ",";
      AppendJsonString(s.ops[j], &out);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

Status VerifySegments(const algebra::Operator& root,
                      const Segmentation& seg) {
  const Segmentation truth = SegmentPlan(root);
  if (truth.segments.size() != seg.segments.size()) {
    return Status::Internal(
        "plan verifier (segments): segmentation claims " +
        std::to_string(seg.segments.size()) + " segments, analysis finds " +
        std::to_string(truth.segments.size()));
  }
  for (size_t i = 0; i < truth.segments.size(); ++i) {
    const PipelineSegment& want = truth.segments[i];
    const PipelineSegment& got = seg.segments[i];
    const std::string where =
        want.ops.empty() ? std::string("<empty>") : want.ops.front();
    if (got.ops != want.ops) {
      return Status::Internal(
          "plan verifier (segments): segment " + std::to_string(want.id) +
          " boundary mismatch at " + where);
    }
    if (got.fusable != want.fusable) {
      return Status::Internal(
          "plan verifier (segments): segment " + std::to_string(want.id) +
          " (" + where + ") is mislabeled " +
          (got.fusable ? "fusable — operator is a " + want.barrier
                       : "non-fusable — all operators are effect-free"));
    }
  }
  return Status::OK();
}

}  // namespace natix::analysis
