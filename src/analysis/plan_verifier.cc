#include "analysis/plan_verifier.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "algebra/properties.h"
#include "obs/trace.h"

namespace natix::analysis {

namespace {

using algebra::Operator;
using algebra::OpKind;
using algebra::OpKindName;
using algebra::Scalar;
using algebra::ScalarKind;

/// Release builds verify only on request; debug builds always verify.
#ifdef NDEBUG
constexpr bool kVerifyByDefault = false;
#else
constexpr bool kVerifyByDefault = true;
#endif

/// The NATIX_VERIFY_PLANS environment variable overrides the build-type
/// default ("0"/"" keep it off, anything else forces verification — and
/// with it the runtime property oracle — on, e.g. for the verify-oracle
/// CI job running release binaries under sanitizers).
bool VerifyInitiallyEnabled() {
  const char* env = std::getenv("NATIX_VERIFY_PLANS");
  if (env == nullptr) return kVerifyByDefault;
  return env[0] != '\0' && std::string_view(env) != "0";
}

std::atomic<bool> g_verification_enabled{VerifyInitiallyEnabled()};

Status Malformed(const Operator& op, const std::string& detail) {
  return Status::Internal(std::string("plan verifier (logical): ") +
                          OpKindName(op.kind) + ": " + detail);
}

/// Expected child count per operator; -1 = one or more (concat).
int ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kSingletonScan:
      return 0;
    case OpKind::kDJoin:
    case OpKind::kCross:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
    case OpKind::kBinaryGroup:
      return 2;
    case OpKind::kConcat:
      return -1;
    default:
      return 1;
  }
}

bool WritesAttr(OpKind kind) {
  switch (kind) {
    case OpKind::kMap:
    case OpKind::kCounter:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kAggregate:
    case OpKind::kBinaryGroup:
    case OpKind::kTmpCs:
    case OpKind::kIdDeref:
      return true;
    default:
      return false;
  }
}

class LogicalVerifier {
 public:
  Status Verify(const Operator& root, const std::set<std::string>& outer,
                std::set<std::string>* defs_out) {
    return VerifyOp(root, outer, defs_out);
  }

 private:
  Status RequireBound(const Operator& op, const std::string& attr,
                      const std::set<std::string>& avail,
                      const char* role) {
    if (attr.empty()) {
      return Malformed(op, std::string("missing ") + role + " attribute");
    }
    if (avail.count(attr) == 0) {
      return Malformed(op, std::string("reads unbound ") + role +
                               " attribute '" + attr + "'");
    }
    return Status::OK();
  }

  /// Verifies a scalar subscript against the attributes available at its
  /// site: attribute references must be bound, and nested plans are
  /// verified as dependent branches whose outer binding set is `avail`.
  Status VerifyScalar(const Operator& host, const Scalar& scalar,
                      const std::set<std::string>& avail) {
    if (scalar.kind == ScalarKind::kAttrRef) {
      if (avail.count(scalar.name) == 0) {
        return Malformed(host, "subscript reads unbound attribute '" +
                                   scalar.name + "'");
      }
    }
    if (scalar.kind == ScalarKind::kNested) {
      if (scalar.plan == nullptr) {
        return Malformed(host, "nested subscript without a plan");
      }
      std::set<std::string> nested_defs;
      NATIX_RETURN_IF_ERROR(VerifyOp(*scalar.plan, avail, &nested_defs));
      if (!scalar.input_attr.empty() &&
          nested_defs.count(scalar.input_attr) == 0) {
        return Malformed(host,
                         "nested aggregate reads unbound attribute '" +
                             scalar.input_attr + "'");
      }
    }
    for (const algebra::ScalarPtr& child : scalar.children) {
      NATIX_RETURN_IF_ERROR(VerifyScalar(host, *child, avail));
    }
    return Status::OK();
  }

  /// Whether runs of equal `attr` values survive from the operator that
  /// establishes them up to the consumer sitting on top of `op`. Grouping
  /// is established by the attribute's binder (pipeline expansion keeps
  /// each input tuple's fan-out consecutive), by a duplicate elimination
  /// or document-order sort on the attribute itself (equal values become
  /// adjacent or unique), or by the attribute being free (one fixed value
  /// per evaluation of a dependent branch). Sorts on other attributes and
  /// concatenations destroy the guarantee.
  Status CheckGrouping(const Operator& consumer, const Operator& op,
                       const std::string& attr) {
    if (WritesAttr(op.kind) && op.attr == attr) return Status::OK();
    if ((op.kind == OpKind::kDupElim || op.kind == OpKind::kSort) &&
        op.attr == attr) {
      return Status::OK();
    }
    switch (op.kind) {
      case OpKind::kSingletonScan:
        // `attr` is free here: constant per evaluation.
        return Status::OK();
      case OpKind::kConcat:
        return Malformed(consumer,
                         "grouping on '" + attr +
                             "' is not established: input concatenates "
                             "several branches");
      case OpKind::kSort:
        return Malformed(consumer,
                         "grouping on '" + attr +
                             "' is not established: input is re-sorted on '" +
                             op.attr + "'");
      case OpKind::kDJoin:
      case OpKind::kCross:
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
      case OpKind::kBinaryGroup: {
        // Left attributes repeat consecutively per left tuple; dependent
        // right-side values may recur across left tuples.
        if (algebra::WrittenAttributes(*op.children[1]).count(attr) > 0) {
          return Malformed(consumer,
                           "grouping on '" + attr +
                               "' is not established: bound by a dependent "
                               "join branch");
        }
        return CheckGrouping(consumer, *op.children[0], attr);
      }
      case OpKind::kAggregate:
        // Singleton output: trivially grouped.
        return Status::OK();
      default:
        return CheckGrouping(consumer, *op.children[0], attr);
    }
  }

  Status VerifyOp(const Operator& op, const std::set<std::string>& outer,
                  std::set<std::string>* defs_out) {
    // Arity.
    int expected = ExpectedArity(op.kind);
    if (expected >= 0 &&
        op.children.size() != static_cast<size_t>(expected)) {
      return Malformed(op, "expects " + std::to_string(expected) +
                               " child(ren), has " +
                               std::to_string(op.children.size()));
    }
    if (expected < 0 && op.children.empty()) {
      return Malformed(op, "expects at least one child");
    }

    // Required subscripts.
    bool needs_scalar = op.kind == OpKind::kSelect ||
                        op.kind == OpKind::kMap ||
                        op.kind == OpKind::kSemiJoin ||
                        op.kind == OpKind::kAntiJoin;
    if (needs_scalar && op.scalar == nullptr) {
      return Malformed(op, "missing scalar subscript");
    }

    // Children, honoring dependent evaluation: the right branch of the
    // join family sees the left branch's bindings as its outer set.
    std::vector<std::set<std::string>> child_defs(op.children.size());
    bool dependent = op.kind == OpKind::kDJoin || op.kind == OpKind::kCross ||
                     op.kind == OpKind::kSemiJoin ||
                     op.kind == OpKind::kAntiJoin ||
                     op.kind == OpKind::kBinaryGroup;
    for (size_t i = 0; i < op.children.size(); ++i) {
      const std::set<std::string>& child_outer =
          (dependent && i == 1) ? child_defs[0] : outer;
      NATIX_RETURN_IF_ERROR(
          VerifyOp(*op.children[i], child_outer, &child_defs[i]));
    }

    // The attribute set reads of this operator are resolved against.
    std::set<std::string> avail;
    switch (op.kind) {
      case OpKind::kSingletonScan:
        avail = outer;
        break;
      case OpKind::kConcat: {
        // Downstream may rely only on what every branch binds.
        avail = child_defs[0];
        for (size_t i = 1; i < child_defs.size(); ++i) {
          std::set<std::string> meet;
          for (const std::string& a : avail) {
            if (child_defs[i].count(a) > 0) meet.insert(a);
          }
          avail = std::move(meet);
        }
        break;
      }
      case OpKind::kDJoin:
      case OpKind::kCross:
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
      case OpKind::kBinaryGroup:
        avail = child_defs[1];  // includes child_defs[0] transitively
        break;
      default:
        avail = child_defs[0];
        break;
    }

    // Per-operator read obligations.
    switch (op.kind) {
      case OpKind::kUnnestMap:
      case OpKind::kUnnest:
        NATIX_RETURN_IF_ERROR(RequireBound(op, op.ctx_attr, avail, "context"));
        break;
      case OpKind::kAggregate:
        NATIX_RETURN_IF_ERROR(RequireBound(op, op.ctx_attr, avail, "input"));
        break;
      case OpKind::kIdDeref:
        NATIX_RETURN_IF_ERROR(RequireBound(op, op.ctx_attr, avail, "context"));
        break;
      case OpKind::kCounter:
      case OpKind::kTmpCs:
        if (!op.ctx_attr.empty()) {
          NATIX_RETURN_IF_ERROR(
              RequireBound(op, op.ctx_attr, avail, "context"));
          NATIX_RETURN_IF_ERROR(
              CheckGrouping(op, *op.children[0], op.ctx_attr));
        }
        break;
      case OpKind::kDupElim:
      case OpKind::kSort:
        NATIX_RETURN_IF_ERROR(RequireBound(op, op.attr, avail, "operand"));
        break;
      case OpKind::kBinaryGroup:
        NATIX_RETURN_IF_ERROR(
            RequireBound(op, op.left_attr, child_defs[0], "left join"));
        NATIX_RETURN_IF_ERROR(
            RequireBound(op, op.right_attr, child_defs[1], "right join"));
        NATIX_RETURN_IF_ERROR(
            RequireBound(op, op.ctx_attr, child_defs[1], "aggregate input"));
        break;
      case OpKind::kProject: {
        std::set<std::string> seen;
        for (const std::string& attr : op.attrs) {
          NATIX_RETURN_IF_ERROR(RequireBound(op, attr, avail, "projection"));
          if (!seen.insert(attr).second) {
            return Malformed(op, "projection list repeats attribute '" +
                                     attr + "'");
          }
        }
        break;
      }
      case OpKind::kMemoX:
        if (op.key_attrs.empty()) {
          return Malformed(op, "memoization requires at least one key");
        }
        for (const std::string& key : op.key_attrs) {
          NATIX_RETURN_IF_ERROR(RequireBound(op, key, avail, "memo key"));
        }
        break;
      case OpKind::kLimit:
        // A limit of 0 is a statically-empty plan, which rewrites spell
        // differently; a Limit node always carries a positive bound.
        if (op.limit == 0) {
          return Malformed(op, "limit bound must be at least 1");
        }
        break;
      default:
        break;
    }

    // Subscript reads.
    if (op.scalar != nullptr) {
      NATIX_RETURN_IF_ERROR(VerifyScalar(op, *op.scalar, avail));
    }

    // Binding: writers must name an output attribute and must not shadow
    // a live binding (the attribute manager would silently alias two
    // distinct values onto one register).
    if (WritesAttr(op.kind)) {
      if (op.attr.empty()) {
        return Malformed(op, "missing output attribute");
      }
      const std::set<std::string>& live =
          op.kind == OpKind::kAggregate ? outer : avail;
      if (live.count(op.attr) > 0) {
        return Malformed(op, "rebinds live attribute '" + op.attr + "'");
      }
    }

    // Output definitions.
    switch (op.kind) {
      case OpKind::kSingletonScan:
        *defs_out = outer;
        break;
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
        // Only the left tuple survives.
        *defs_out = std::move(child_defs[0]);
        break;
      case OpKind::kBinaryGroup:
        *defs_out = std::move(child_defs[0]);
        defs_out->insert(op.attr);
        break;
      case OpKind::kAggregate:
        // Singleton output tuple: input attributes are consumed.
        *defs_out = outer;
        defs_out->insert(op.attr);
        break;
      case OpKind::kProject:
        *defs_out = outer;
        for (const std::string& attr : op.attrs) defs_out->insert(attr);
        break;
      default:
        *defs_out = std::move(avail);
        if (WritesAttr(op.kind)) defs_out->insert(op.attr);
        break;
    }
    return Status::OK();
  }
};

}  // namespace

bool VerificationEnabled() {
  return g_verification_enabled.load(std::memory_order_relaxed);
}

void SetVerificationEnabled(bool enabled) {
  g_verification_enabled.store(enabled, std::memory_order_relaxed);
}

std::set<std::string> ExecutionContextAttributes() {
  return {translate::kContextNodeAttr, translate::kContextPositionAttr,
          translate::kContextSizeAttr};
}

Status VerifyLogicalPlan(const algebra::Operator& root,
                         const std::set<std::string>& outer) {
  std::set<std::string> defs;
  return LogicalVerifier().Verify(root, outer, &defs);
}

Status VerifyTranslation(const translate::TranslationResult& translation) {
  obs::ScopedSpan span("compile/verify", "logical");
  if (translation.plan == nullptr) {
    return Status::Internal("plan verifier (logical): translation has no plan");
  }
  std::set<std::string> defs;
  NATIX_RETURN_IF_ERROR(LogicalVerifier().Verify(
      *translation.plan, ExecutionContextAttributes(), &defs));
  if (defs.count(translation.result_attr) == 0) {
    return Status::Internal(
        "plan verifier (logical): result attribute '" +
        translation.result_attr + "' is not bound by the plan");
  }
  return Status::OK();
}

}  // namespace natix::analysis
