#include "qe/exec_context.h"
#include "qe/operators.h"

#include <algorithm>

#include "obs/trace.h"

namespace natix::qe {

using runtime::Row;
using runtime::Value;
using runtime::ValueKind;

void DupElimIterator::DropSeen() {
  state_->LedgerSpoolDropped(seen_nodes_.size() + seen_other_.size());
  seen_nodes_.clear();
  seen_other_.clear();
}

Status DupElimIterator::OpenImpl() {
  DropSeen();
  return child_->Open();
}

Status DupElimIterator::CloseImpl() {
  DropSeen();
  return child_->Close();
}

Status DupElimIterator::NextImpl(bool* has) {
  while (true) {
    NATIX_RETURN_IF_ERROR(child_->Next(has));
    if (!*has) return Status::OK();
    const Value& v = state_->registers[attr_];
    bool fresh = v.kind() == ValueKind::kNode
                     ? seen_nodes_.insert(v.AsNode().id).second
                     : seen_other_.insert(EncodeValueKey(v)).second;
    if (fresh) {
      state_->LedgerSpoolGrew(1);
      return Status::OK();
    }
  }
}

void SortIterator::DropRows() {
  state_->LedgerSpoolDropped(rows_.size());
  rows_.clear();
  pos_ = 0;
}

Status SortIterator::CloseImpl() {
  DropRows();
  return child_->Close();
}

Status SortIterator::OpenImpl() {
  obs::ScopedSpan span("exec/materialize", "sort");
  DropRows();
  NATIX_RETURN_IF_ERROR(child_->Open());
  while (true) {
    bool has = false;
    NATIX_RETURN_IF_ERROR(child_->Next(&has));
    if (!has) break;
    const Value& key = state_->registers[attr_];
    uint64_t order =
        key.kind() == ValueKind::kNode ? key.AsNode().order : 0;
    Row row;
    state_->registers.SaveRow(row_regs_, &row);
    rows_.emplace_back(order, std::move(row));
    state_->LedgerSpoolGrew(1);
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return Status::OK();
}

Status SortIterator::NextImpl(bool* has) {
  if (pos_ >= rows_.size()) {
    *has = false;
    return Status::OK();
  }
  state_->registers.RestoreRow(row_regs_, rows_[pos_].second);
  ++pos_;
  *has = true;
  return Status::OK();
}

void TmpCsIterator::DropGroup() {
  state_->LedgerSpoolDropped(group_.size() + (have_pending_ ? 1 : 0));
  group_.clear();
  replay_pos_ = 0;
  have_pending_ = false;
  pending_row_ = Row();
  pending_key_.clear();
}

Status TmpCsIterator::OpenImpl() {
  DropGroup();
  child_exhausted_ = false;
  return child_->Open();
}

Status TmpCsIterator::CloseImpl() {
  DropGroup();
  return child_->Close();
}

Status TmpCsIterator::FillGroup() {
  // Materializes the next context: the whole input when no context
  // attribute is set, otherwise the run of tuples sharing the context
  // attribute's value (Sec. 5.2.4).
  obs::ScopedSpan span("exec/materialize", "tmp-cs");
  state_->LedgerSpoolDropped(group_.size());
  group_.clear();
  replay_pos_ = 0;
  if (have_pending_) {
    // Replaying the previous group overwrote the registers; restore the
    // pipeline frontier (the first tuple of this group) before resuming
    // the child, so operators below that watch their registers (the
    // counter's reset check, our own boundary check) see live values.
    state_->registers.RestoreRow(row_regs_, pending_row_);
    group_.push_back(std::move(pending_row_));
    have_pending_ = false;
  }
  std::string group_key = pending_key_;
  while (!child_exhausted_) {
    bool has = false;
    NATIX_RETURN_IF_ERROR(child_->Next(&has));
    if (!has) {
      child_exhausted_ = true;
      break;
    }
    Row row;
    state_->registers.SaveRow(row_regs_, &row);
    // Each input tuple is pulled from the child and snapshotted exactly
    // once, whether it lands in this group or becomes the pending head
    // of the next one — this is the single-pass materialization counter
    // the behavioral tests pin down.
    NATIX_OBS_COUNT(stats_, spooled_rows, 1);
    state_->LedgerSpoolGrew(1);
    if (ctx_reg_.has_value()) {
      std::string key = EncodeValueKey(state_->registers[*ctx_reg_]);
      if (group_.empty()) {
        group_key = key;
      } else if (key != group_key) {
        // First tuple of the next context: keep it for the next group.
        pending_row_ = std::move(row);
        pending_key_ = std::move(key);
        have_pending_ = true;
        break;
      }
    }
    group_.push_back(std::move(row));
  }
  pending_key_ = have_pending_ ? pending_key_ : std::string();
  if (!group_.empty()) NATIX_OBS_COUNT(stats_, groups, 1);
  return Status::OK();
}

Status TmpCsIterator::NextImpl(bool* has) {
  while (true) {
    if (replay_pos_ < group_.size()) {
      state_->registers.RestoreRow(row_regs_, group_[replay_pos_]);
      state_->registers[out_] =
          Value::Number(static_cast<double>(group_.size()));
      ++replay_pos_;
      NATIX_OBS_COUNT(stats_, replayed_rows, 1);
      *has = true;
      return Status::OK();
    }
    if (child_exhausted_ && !have_pending_) {
      *has = false;
      return Status::OK();
    }
    NATIX_RETURN_IF_ERROR(FillGroup());
    if (group_.empty() && child_exhausted_ && !have_pending_) {
      *has = false;
      return Status::OK();
    }
  }
}

Status MemoXIterator::OpenImpl() {
  // Key on the current binding of the free variables (the context node
  // handed in by the d-join).
  current_key_ = EncodeRowKey(*state_, key_regs_);
  auto it = table_.find(current_key_);
  if (it != table_.end()) {
    replaying_ = true;
    replay_rows_ = &it->second;
    replay_pos_ = 0;
    recording_ = false;
    child_open_ = false;
    ++hits_;
    NATIX_OBS_COUNT(stats_, memo_hits, 1);
    return Status::OK();
  }
  ++misses_;
  NATIX_OBS_COUNT(stats_, memo_misses, 1);
  replaying_ = false;
  recording_ = true;
  state_->LedgerSpoolDropped(recorded_.size());
  recorded_.clear();
  NATIX_RETURN_IF_ERROR(child_->Open());
  child_open_ = true;
  return Status::OK();
}

Status MemoXIterator::NextImpl(bool* has) {
  if (replaying_) {
    if (replay_pos_ >= replay_rows_->size()) {
      *has = false;
      return Status::OK();
    }
    state_->registers.RestoreRow(row_regs_, (*replay_rows_)[replay_pos_]);
    ++replay_pos_;
    NATIX_OBS_COUNT(stats_, replayed_rows, 1);
    *has = true;
    return Status::OK();
  }
  NATIX_RETURN_IF_ERROR(child_->Next(has));
  if (*has) {
    Row row;
    state_->registers.SaveRow(row_regs_, &row);
    recorded_.push_back(std::move(row));
    NATIX_OBS_COUNT(stats_, spooled_rows, 1);
    state_->LedgerSpoolGrew(1);
    return Status::OK();
  }
  // Child drained completely: commit the memo entry (partial drains must
  // not be committed — see Close). Committed rows graduate from the
  // in-flight spool to the keyed memo, which is exempt from the
  // release-on-close obligation (SpoolKind::kMemo).
  if (recording_) {
    state_->LedgerSpoolDropped(recorded_.size());
    table_.emplace(current_key_, std::move(recorded_));
    recorded_.clear();
    recording_ = false;
  }
  return Status::OK();
}

Status MemoXIterator::CloseImpl() {
  // A Close before exhaustion (e.g. an early-exiting exists() above us)
  // leaves the entry uncommitted so a later evaluation recomputes it.
  recording_ = false;
  state_->LedgerSpoolDropped(recorded_.size());
  recorded_.clear();
  replaying_ = false;
  if (child_open_) {
    child_open_ = false;
    return child_->Close();
  }
  return Status::OK();
}

}  // namespace natix::qe
