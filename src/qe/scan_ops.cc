#include "qe/operators.h"

namespace natix::qe {

Status ConcatIterator::OpenImpl() {
  current_ = 0;
  open_ = false;
  return Status::OK();
}

Status ConcatIterator::NextImpl(bool* has) {
  *has = false;
  while (current_ < children_.size()) {
    if (!open_) {
      NATIX_RETURN_IF_ERROR(children_[current_]->Open());
      open_ = true;
    }
    NATIX_RETURN_IF_ERROR(children_[current_]->Next(has));
    if (*has) return Status::OK();
    NATIX_RETURN_IF_ERROR(children_[current_]->Close());
    open_ = false;
    ++current_;
  }
  return Status::OK();
}

Status ConcatIterator::CloseImpl() {
  if (open_ && current_ < children_.size()) {
    NATIX_RETURN_IF_ERROR(children_[current_]->Close());
    open_ = false;
  }
  return Status::OK();
}

}  // namespace natix::qe
