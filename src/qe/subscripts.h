#ifndef NATIX_QE_SUBSCRIPTS_H_
#define NATIX_QE_SUBSCRIPTS_H_

#include <memory>
#include <vector>

#include "algebra/operator.h"
#include "nvm/program.h"
#include "nvm/vm.h"
#include "qe/iterator.h"

namespace natix::qe {

/// One nested sequence-valued subplan referenced by an NVM kEvalNested
/// instruction (Sec. 5.2.3), together with the aggregate that reduces it
/// to an atomic value (Sec. 5.2.5).
struct NestedPlan {
  IteratorPtr iter;
  algebra::AggKind agg = algebra::AggKind::kExists;
  runtime::RegisterId input_reg = 0;
  /// Stats node of the aggregate wrapping this subplan (null: stats
  /// collection off). Tracks evaluations, consumed tuples, and smart
  /// aggregation early exits (Sec. 5.2.5).
  obs::OpStats* stats = nullptr;
};

using NestedTable = std::vector<std::unique_ptr<NestedPlan>>;

/// Runs a nested plan to completion (with smart-aggregation early exit
/// where the aggregate allows it) and returns the aggregated value.
StatusOr<runtime::Value> RunNestedAggregate(NestedPlan* nested,
                                            ExecutionContext* state);

/// A compiled NVM subscript bound to its plan: evaluating it reads the
/// current tuple from the plan registers. Non-movable (the Vm holds a
/// pointer to the program).
class Subscript {
 public:
  Subscript(nvm::Program program, ExecutionContext* state, NestedTable* nested)
      : program_(std::move(program)),
        vm_(&program_),
        state_(state),
        nested_(nested),
        nested_eval_([this](size_t index) -> StatusOr<runtime::Value> {
          if (index >= nested_->size()) {
            return Status::Internal("nested plan index out of range");
          }
          return RunNestedAggregate((*nested_)[index].get(), state_);
        }) {}

  Subscript(const Subscript&) = delete;
  Subscript& operator=(const Subscript&) = delete;

  StatusOr<runtime::Value> Evaluate();
  StatusOr<bool> EvaluateBool();

  const nvm::Program& program() const { return program_; }

 private:
  nvm::Program program_;
  nvm::Vm vm_;
  ExecutionContext* state_;
  NestedTable* nested_;
  nvm::NestedEvaluator nested_eval_;
};

using SubscriptPtr = std::unique_ptr<Subscript>;

}  // namespace natix::qe

#endif  // NATIX_QE_SUBSCRIPTS_H_
