#include "qe/iterator.h"

#include <cstring>

#include "qe/exec_context.h"

namespace natix::qe {

std::string EncodeValueKey(const runtime::Value& value) {
  using runtime::ValueKind;
  switch (value.kind()) {
    case ValueKind::kNull:
      return "_";
    case ValueKind::kBoolean:
      return value.AsBoolean() ? "b1" : "b0";
    case ValueKind::kNumber: {
      double d = value.AsNumber();
      char buf[1 + sizeof(double)];
      buf[0] = 'd';
      std::memcpy(buf + 1, &d, sizeof(double));
      return std::string(buf, sizeof(buf));
    }
    case ValueKind::kString:
      return "s" + value.AsString();
    case ValueKind::kNode: {
      uint64_t id = value.AsNode().id;
      char buf[1 + sizeof(uint64_t)];
      buf[0] = 'n';
      std::memcpy(buf + 1, &id, sizeof(uint64_t));
      return std::string(buf, sizeof(buf));
    }
    case ValueKind::kSequence: {
      std::string out = "q[";
      for (const runtime::Value& item : *value.AsSequence()) {
        std::string k = EncodeValueKey(item);
        uint32_t len = static_cast<uint32_t>(k.size());
        out.append(reinterpret_cast<const char*>(&len), sizeof(len));
        out += k;
      }
      return out + "]";
    }
  }
  return "?";
}

std::string EncodeRowKey(const ExecutionContext& state,
                         const std::vector<runtime::RegisterId>& regs) {
  std::string out;
  for (runtime::RegisterId reg : regs) {
    std::string k = EncodeValueKey(state.registers[reg]);
    uint32_t len = static_cast<uint32_t>(k.size());
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out += k;
  }
  return out;
}

}  // namespace natix::qe
