#include "qe/exec_context.h"
#include "qe/property_oracle.h"

#include <utility>

namespace natix::qe {

PropertyOracleIterator::PropertyOracleIterator(
    ExecutionContext* state, IteratorPtr child, runtime::RegisterId reg,
    bool check_order, bool check_duplicate_free, std::string label)
    : state_(state),
      child_(std::move(child)),
      reg_(reg),
      check_order_(check_order),
      check_duplicate_free_(check_duplicate_free),
      label_(std::move(label)) {}

Status PropertyOracleIterator::OpenImpl() {
  last_order_ = 0;
  has_last_ = false;
  produced_ = 0;
  seen_nodes_.clear();
  seen_values_.clear();
  return child_->Open();
}

Status PropertyOracleIterator::NextImpl(bool* has) {
  NATIX_RETURN_IF_ERROR(child_->Next(has));
  if (!*has) return Status::OK();
  if (max_tuples_ > 0 && ++produced_ > max_tuples_) {
    return Status::Internal(
        "property oracle: stream '" + label_ +
        "' violated its limit contract (more than " +
        std::to_string(max_tuples_) + " tuples)");
  }
  if (!check_order_ && !check_duplicate_free_) return Status::OK();
  const runtime::Value& value = state_->registers[reg_];
  if (value.kind() == runtime::ValueKind::kNode) {
    const runtime::NodeRef node = value.AsNode();
    if (check_order_) {
      if (has_last_ && node.order < last_order_) {
        return Status::Internal(
            "property oracle: stream '" + label_ +
            "' violated its document-order claim (order key " +
            std::to_string(node.order) + " after " +
            std::to_string(last_order_) + ")");
      }
      last_order_ = node.order;
      has_last_ = true;
    }
    if (check_duplicate_free_ && !seen_nodes_.insert(node.id).second) {
      return Status::Internal(
          "property oracle: stream '" + label_ +
          "' violated its duplicate-freedom claim (node id " +
          std::to_string(node.id) + " seen twice)");
    }
  } else if (check_duplicate_free_ &&
             value.kind() != runtime::ValueKind::kNull) {
    // Atomic claims (counters without reset) key by encoded value.
    if (!seen_values_.insert(EncodeValueKey(value)).second) {
      return Status::Internal("property oracle: stream '" + label_ +
                              "' violated its duplicate-freedom claim "
                              "(atomic value seen twice)");
    }
  }
  return Status::OK();
}

Status PropertyOracleIterator::CloseImpl() { return child_->Close(); }

}  // namespace natix::qe
