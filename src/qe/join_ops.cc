#include "qe/operators.h"

namespace natix::qe {

Status DJoinIterator::OpenImpl() {
  right_open_ = false;
  return left_->Open();
}

Status DJoinIterator::NextImpl(bool* has) {
  *has = false;
  while (true) {
    if (!right_open_) {
      bool left_has = false;
      NATIX_RETURN_IF_ERROR(left_->Next(&left_has));
      if (!left_has) return Status::OK();
      // The left tuple's attributes are in the registers; opening the
      // dependent side binds its free variables to them (Sec. 3.1.1).
      NATIX_RETURN_IF_ERROR(right_->Open());
      right_open_ = true;
    }
    NATIX_RETURN_IF_ERROR(right_->Next(has));
    if (*has) return Status::OK();
    NATIX_RETURN_IF_ERROR(right_->Close());
    right_open_ = false;
  }
}

Status DJoinIterator::CloseImpl() {
  if (right_open_) {
    NATIX_RETURN_IF_ERROR(right_->Close());
    right_open_ = false;
  }
  return left_->Close();
}

Status SemiJoinIterator::NextImpl(bool* has) {
  *has = false;
  while (true) {
    bool left_has = false;
    NATIX_RETURN_IF_ERROR(left_->Next(&left_has));
    if (!left_has) return Status::OK();
    // Existential probe of the dependent right side; stops at the first
    // qualifying tuple (the embedded smart-aggregation early exit).
    NATIX_RETURN_IF_ERROR(right_->Open());
    bool match = false;
    while (true) {
      bool right_has = false;
      Status st = right_->Next(&right_has);
      if (!st.ok()) {
        (void)right_->Close();
        return st;
      }
      if (!right_has) break;
      auto pass = predicate_->EvaluateBool();
      if (!pass.ok()) {
        (void)right_->Close();
        return pass.status();
      }
      if (*pass) {
        // The probe stops at the first qualifying tuple: the embedded
        // smart-aggregation early exit (Sec. 5.2.5).
        match = true;
        NATIX_OBS_COUNT(stats_, early_exits, 1);
        break;
      }
    }
    NATIX_RETURN_IF_ERROR(right_->Close());
    if (match == (mode_ == Mode::kSemi)) {
      *has = true;
      return Status::OK();
    }
  }
}

}  // namespace natix::qe
