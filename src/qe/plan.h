#ifndef NATIX_QE_PLAN_H_
#define NATIX_QE_PLAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/rewriter.h"
#include "qe/iterator.h"
#include "qe/subscripts.h"
#include "xpath/ast.h"

namespace natix::qe {

namespace internal {
class CodegenImpl;
}  // namespace internal

/// A compiled, executable physical plan: the iterator tree, the nested
/// iterator table, the plan-wide register file, and the binding of the
/// execution context (context node, $variables).
class Plan {
 public:
  Plan() = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Binds the execution context's context node (the free cn of the
  /// paper's top-level map). Must be called before Execute for queries
  /// that reference the context.
  void SetContextNode(runtime::NodeRef node);

  /// Binds an XPath $variable.
  void SetVariable(const std::string& name, runtime::Value value);

  /// Runs a node-set query, returning the result nodes in plan order
  /// (set semantics: no duplicates). Call SortResultNodes for document
  /// order.
  StatusOr<std::vector<runtime::NodeRef>> ExecuteNodes();

  /// Runs a scalar query (boolean/number/string), returning the value of
  /// its single result tuple.
  StatusOr<runtime::Value> ExecuteValue();

  xpath::ExprType result_type() const { return result_type_; }

  /// The logical plan this was compiled from (explain output).
  const std::string& logical_plan() const { return logical_plan_; }

  /// The physical iterator tree with register assignments and NVM
  /// subscript disassembly (the NQE execution plan).
  const std::string& physical_plan() const { return physical_plan_; }

  /// One-line verdict of the static plan verifier: "VERIFIED (...)" when
  /// all three layers passed, or a note that verification was skipped
  /// (violations never reach a Plan — compilation fails instead).
  const std::string& verification() const { return verification_; }

  /// The logical plan annotated with the inferred stream properties
  /// (ordering, duplicate-freedom, cardinality, node class) per operator.
  const std::string& properties_plan() const { return properties_plan_; }

  /// JSON rendering of the operator tree with the full inferred
  /// properties (natixq --explain-json).
  const std::string& properties_json() const { return properties_json_; }

  /// The property-justified rewrites applied during translation, each
  /// with the inferred property that proved it sound.
  const algebra::RewriteLog& rewrites() const { return rewrites_; }

  /// Whether the result stream is statically guaranteed to arrive in
  /// (non-strict) document order, making the final result sort
  /// redundant.
  bool result_document_ordered() const { return result_document_ordered_; }

  /// Ablation knob (benchmarks, differential tests): when set, ordered
  /// evaluations sort the result even if inference proved the stream
  /// document-ordered — the pre-inference behavior.
  void set_force_result_sort(bool force) { force_result_sort_ = force; }
  bool force_result_sort() const { return force_result_sort_; }

  ExecState* state() { return state_.get(); }

  /// The per-operator stats collector (EXPLAIN ANALYZE), or null when
  /// the plan was compiled without stats collection. Counters accumulate
  /// across executions until QueryStats::Reset().
  obs::QueryStats* stats() { return stats_.get(); }
  const obs::QueryStats* stats() const { return stats_.get(); }

 private:
  friend class internal::CodegenImpl;

  std::unique_ptr<ExecState> state_;
  std::unique_ptr<obs::QueryStats> stats_;
  IteratorPtr root_;
  NestedTable nested_;
  runtime::RegisterId result_reg_ = 0;
  runtime::RegisterId cn_reg_ = 0;
  runtime::RegisterId cp0_reg_ = 0;
  runtime::RegisterId cs0_reg_ = 0;
  xpath::ExprType result_type_ = xpath::ExprType::kUnknown;
  std::string logical_plan_;
  std::string physical_plan_;
  std::string verification_;
  std::string properties_plan_;
  std::string properties_json_;
  algebra::RewriteLog rewrites_;
  bool result_document_ordered_ = false;
  bool force_result_sort_ = false;
};

/// Sorts node references into document order (ascending order keys).
void SortResultNodes(std::vector<runtime::NodeRef>* nodes);

}  // namespace natix::qe

#endif  // NATIX_QE_PLAN_H_
