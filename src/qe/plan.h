#ifndef NATIX_QE_PLAN_H_
#define NATIX_QE_PLAN_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "algebra/rewriter.h"
#include "analysis/fusability.h"
#include "analysis/property_inference.h"
#include "base/statusor.h"
#include "nvm/program.h"
#include "qe/exec_context.h"
#include "translate/translator.h"
#include "xpath/ast.h"

namespace natix::storage {
class NodeStore;
}  // namespace natix::storage

namespace natix::qe {

namespace internal {
class CodegenImpl;
}  // namespace internal

class Codegen;

/// The immutable, shareable half of a compiled query: the translated
/// algebra plan, its inferred stream properties, the explain renderings
/// and the verification verdict — everything that is a function of the
/// XPath text and the store schema, nothing that execution mutates.
///
/// Compilation (parse, rewrite, translation, property inference, static
/// verification, explain rendering) happens exactly once per template;
/// each evaluation then instantiates a fresh ExecutionContext, which
/// re-runs only the deterministic lowering of the operator tree into an
/// iterator tree over a private register file.
///
/// Thread safety: a template is deeply const after Codegen::Prepare
/// returns it. Any number of threads may call NewContext and the
/// accessors concurrently; the contexts themselves are single-threaded.
class PlanTemplate {
 public:
  PlanTemplate(const PlanTemplate&) = delete;
  PlanTemplate& operator=(const PlanTemplate&) = delete;

  /// Instantiates the plan into a fresh, independent execution context.
  /// With `collect_stats` the context carries a per-operator stats tree
  /// (src/obs) and every iterator is instrumented; without it the
  /// context runs uninstrumented (one dormant branch per iterator call).
  StatusOr<std::unique_ptr<ExecutionContext>> NewContext(
      bool collect_stats = false) const;

  xpath::ExprType result_type() const { return translation_.type; }

  /// The logical plan this was compiled from (explain output).
  const std::string& logical_plan() const { return logical_plan_; }

  /// The physical iterator tree with register assignments and NVM
  /// subscript disassembly (the NQE execution plan).
  const std::string& physical_plan() const { return physical_plan_; }

  /// One-line verdict of the static plan verifier: "VERIFIED (...)" when
  /// all three layers passed, or a note that verification was skipped
  /// (violations never reach a PlanTemplate — compilation fails instead).
  const std::string& verification() const { return verification_; }

  /// The logical plan annotated with the inferred stream properties
  /// (ordering, duplicate-freedom, cardinality, node class) per operator.
  const std::string& properties_plan() const { return properties_plan_; }

  /// JSON object with the operator tree ("plan": full inferred
  /// properties per operator) and the fusability segmentation
  /// ("segments") — natixq --explain-json.
  const std::string& properties_json() const { return properties_json_; }

  /// Fusability segmentation: maximal non-materializing, effect-free
  /// pipeline segments and the materialization/blocking boundaries
  /// between them. The descriptors the NVM fusion compiler consumes.
  const analysis::Segmentation& segments() const { return segmentation_; }

  /// Human-readable segment listing (natixq --explain).
  const std::string& segments_text() const { return segments_text_; }

  /// The property-justified rewrites applied during translation plus the
  /// analysis-justified NVM bytecode rewrites ("nvm:<pass>" rules), each
  /// with the inferred property or dataflow fact that proved it sound.
  const algebra::RewriteLog& rewrites() const { return rewrites_; }

  /// Symbolic disassembly of every compiled NVM subscript program before
  /// and after the bytecode optimizer (identical when optimize_nvm is
  /// off). Shown by natixq --dump-nvm.
  const std::string& nvm_listing_before() const {
    return nvm_listing_before_;
  }
  const std::string& nvm_listing_after() const { return nvm_listing_after_; }

  /// Static instruction totals across all subscript programs, before and
  /// after the bytecode optimizer.
  size_t nvm_insns_before() const { return nvm_insns_before_; }
  size_t nvm_insns_after() const { return nvm_insns_after_; }

  /// Whether the result stream is statically guaranteed to arrive in
  /// (non-strict) document order, making the final result sort
  /// redundant.
  bool result_document_ordered() const { return result_document_ordered_; }

  /// Registers each instantiated context allocates (fixed at prepare
  /// time; lowering is deterministic).
  size_t register_count() const { return register_count_; }

  const storage::NodeStore* store() const { return store_; }

 private:
  friend class internal::CodegenImpl;
  friend class Codegen;

  PlanTemplate() = default;

  /// Owns the operator tree; the property map below points into it, so
  /// the template must own both with matching lifetime.
  translate::TranslationResult translation_;
  const storage::NodeStore* store_ = nullptr;
  /// Inferred static stream properties per logical operator, computed
  /// once and consulted by every instantiation (stats labels, oracle
  /// wrappers, final-sort skip).
  analysis::PropertyMap props_;
  size_t register_count_ = 0;
  std::string logical_plan_;
  std::string physical_plan_;
  std::string verification_;
  std::string properties_plan_;
  std::string properties_json_;
  analysis::Segmentation segmentation_;
  std::string segments_text_;
  algebra::RewriteLog rewrites_;
  bool result_document_ordered_ = false;
  /// The final (optimized) subscript programs in deterministic compile
  /// order: instantiation replays them so the optimizer and its per-pass
  /// verification run once per template, not once per context.
  std::vector<nvm::Program> nvm_programs_;
  std::string nvm_listing_before_;
  std::string nvm_listing_after_;
  size_t nvm_insns_before_ = 0;
  size_t nvm_insns_after_ = 0;
};

/// Sorts node references into document order (ascending order keys).
void SortResultNodes(std::vector<runtime::NodeRef>* nodes);

}  // namespace natix::qe

#endif  // NATIX_QE_PLAN_H_
