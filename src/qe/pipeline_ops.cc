#include "obs/metrics.h"
#include "qe/exec_context.h"
#include "qe/operators.h"

namespace natix::qe {

using runtime::Value;
using runtime::ValueKind;

Status SelectIterator::NextImpl(bool* has) {
  while (true) {
    NATIX_RETURN_IF_ERROR(child_->Next(has));
    if (!*has) return Status::OK();
    NATIX_ASSIGN_OR_RETURN(bool pass, predicate_->EvaluateBool());
    if (pass) return Status::OK();
  }
}

Status MapIterator::NextImpl(bool* has) {
  NATIX_RETURN_IF_ERROR(child_->Next(has));
  if (!*has) return Status::OK();
  if (materialize_) {
    std::string key = EncodeRowKey(*state_, key_regs_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      NATIX_OBS_COUNT(stats_, cache_hits, 1);
      state_->registers[out_] = it->second;
      return Status::OK();
    }
    NATIX_OBS_COUNT(stats_, cache_misses, 1);
    NATIX_ASSIGN_OR_RETURN(Value v, subscript_->Evaluate());
    cache_.emplace(std::move(key), v);
    state_->registers[out_] = std::move(v);
    return Status::OK();
  }
  NATIX_ASSIGN_OR_RETURN(Value v, subscript_->Evaluate());
  state_->registers[out_] = std::move(v);
  return Status::OK();
}

Status LimitIterator::NextImpl(bool* has) {
  if (count_ >= limit_) {
    *has = false;
    if (child_open_) {
      // The bound is reached: close the input pipeline now, cascading
      // Close() down to the page scans, instead of holding it open
      // until the consumer tears the plan down.
      child_open_ = false;
      NATIX_OBS_COUNT(stats_, early_exits, 1);
      // Also feeds the process-wide registry so /metrics sees early
      // exits from uninstrumented (serving) executions.
      obs::MetricsRegistry::Global().early_exits.Add();
      return child_->Close();
    }
    return Status::OK();
  }
  NATIX_RETURN_IF_ERROR(child_->Next(has));
  if (*has) ++count_;
  return Status::OK();
}

Status CounterIterator::OpenImpl() {
  counter_ = 0;
  have_key_ = false;
  last_key_.clear();
  return child_->Open();
}

Status CounterIterator::NextImpl(bool* has) {
  NATIX_RETURN_IF_ERROR(child_->Next(has));
  if (!*has) return Status::OK();
  if (reset_reg_.has_value()) {
    std::string key = EncodeValueKey(state_->registers[*reset_reg_]);
    if (!have_key_ || key != last_key_) {
      counter_ = 0;
      last_key_ = std::move(key);
      have_key_ = true;
    }
  }
  ++counter_;
  state_->registers[out_] = Value::Number(static_cast<double>(counter_));
  return Status::OK();
}

void UnnestMapIterator::ReleaseCursor() {
  if (cursor_active_) {
    cursor_active_ = false;
    state_->LedgerCursorReleased();
  }
  // Reassignment drops the cursor's node accessor and with it the page
  // pins it caches — an exhausted cursor may still hold its last page.
  cursor_ = runtime::AxisCursor(state_->eval_ctx.store);
}

Status UnnestMapIterator::OpenImpl() {
  ReleaseCursor();
  return child_->Open();
}

Status UnnestMapIterator::CloseImpl() {
  ReleaseCursor();
  return child_->Close();
}

Status UnnestMapIterator::NextImpl(bool* has) {
  *has = false;
  while (true) {
    if (!cursor_active_) {
      bool child_has = false;
      NATIX_RETURN_IF_ERROR(child_->Next(&child_has));
      if (!child_has) return Status::OK();
      const Value& ctx = state_->registers[ctx_];
      if (ctx.kind() != ValueKind::kNode) {
        // A null / non-node context contributes no step results.
        continue;
      }
      NATIX_RETURN_IF_ERROR(
          cursor_.Open(axis_, test_, ctx.AsNode().node_id()));
      cursor_active_ = true;
      state_->LedgerCursorActivated();
    }
    bool cursor_has = false;
    runtime::NodeRef node;
    NATIX_RETURN_IF_ERROR(cursor_.Next(&cursor_has, &node));
    if (cursor_has) {
      state_->registers[out_] = Value::Node(node);
      ++state_->tuples_produced;
      *has = true;
      return Status::OK();
    }
    cursor_active_ = false;
    state_->LedgerCursorReleased();
  }
}

}  // namespace natix::qe
