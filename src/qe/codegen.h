#ifndef NATIX_QE_CODEGEN_H_
#define NATIX_QE_CODEGEN_H_

#include <memory>

#include "base/statusor.h"
#include "qe/plan.h"
#include "storage/node_store.h"
#include "translate/translator.h"

namespace natix::qe {

/// Code generation (step 6 of the compiler pipeline, Sec. 5.1): lowers a
/// logical algebra plan to a physical iterator tree over a plan-wide
/// register file. The attribute manager maps attribute names onto
/// registers; renaming maps (chi_{a := b}) emit no copies — both names
/// alias one register — exactly as the paper describes.
class Codegen {
 public:
  /// Compiles `translation` into an executable plan bound to `store`.
  /// With `collect_stats` the plan carries a per-operator stats tree
  /// (src/obs) and every iterator is instrumented; without it the plan
  /// runs uninstrumented (one dormant branch per iterator call).
  static StatusOr<std::unique_ptr<Plan>> Compile(
      const translate::TranslationResult& translation,
      const storage::NodeStore* store, bool collect_stats = false);
};

}  // namespace natix::qe

#endif  // NATIX_QE_CODEGEN_H_
