#ifndef NATIX_QE_CODEGEN_H_
#define NATIX_QE_CODEGEN_H_

#include <memory>

#include "base/statusor.h"
#include "qe/plan.h"
#include "storage/node_store.h"
#include "translate/translator.h"

namespace natix::qe {

/// Code generation (step 6 of the compiler pipeline, Sec. 5.1): lowers a
/// logical algebra plan to a physical iterator tree over a plan-wide
/// register file. The attribute manager maps attribute names onto
/// registers; renaming maps (chi_{a := b}) emit no copies — both names
/// alias one register — exactly as the paper describes.
///
/// Codegen is split along the compile-once / execute-many axis:
/// Prepare() runs the expensive, deterministic-per-query work exactly
/// once (property inference, a validation lowering that fixes the
/// register assignment, static verification, explain rendering) and
/// returns an immutable PlanTemplate; PlanTemplate::NewContext() then
/// re-runs only the lowering pass to instantiate a private iterator
/// tree per execution context.
class Codegen {
 public:
  /// Prepares `translation` into an immutable plan template bound to
  /// `store`. The template takes ownership of the translation (the
  /// inferred property map points into its operator tree).
  static StatusOr<std::unique_ptr<PlanTemplate>> Prepare(
      translate::TranslationResult translation,
      const storage::NodeStore* store);
};

}  // namespace natix::qe

#endif  // NATIX_QE_CODEGEN_H_
