#ifndef NATIX_QE_OPERATORS_H_
#define NATIX_QE_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qe/iterator.h"
#include "qe/subscripts.h"
#include "runtime/node_ops.h"

namespace natix::qe {

// ---------------------------------------------------------------------------
// Scan / pipeline operators
// ---------------------------------------------------------------------------

/// The singleton scan (Fig. 1): one empty tuple.
class SingletonScanIterator : public Iterator {
 public:
  Status OpenImpl() override {
    done_ = false;
    return Status::OK();
  }
  Status NextImpl(bool* has) override {
    *has = !done_;
    done_ = true;
    return Status::OK();
  }
  Status CloseImpl() override { return Status::OK(); }

 private:
  bool done_ = true;
};

/// Selection sigma_p.
class SelectIterator : public Iterator {
 public:
  SelectIterator(IteratorPtr child, SubscriptPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status OpenImpl() override { return child_->Open(); }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  IteratorPtr child_;
  SubscriptPtr predicate_;
};

/// Map chi_{a := subscript}; with `materialize` it is the chi^mat of
/// Sec. 4.3.2: results are cached per distinct binding of the
/// subscript's free attributes (Hellerstein/Naughton-style caching of
/// expensive predicates).
class MapIterator : public Iterator {
 public:
  MapIterator(ExecutionContext* state, IteratorPtr child, SubscriptPtr subscript,
              runtime::RegisterId out, bool materialize,
              std::vector<runtime::RegisterId> key_regs)
      : state_(state),
        child_(std::move(child)),
        subscript_(std::move(subscript)),
        out_(out),
        materialize_(materialize),
        key_regs_(std::move(key_regs)) {}
  Status OpenImpl() override { return child_->Open(); }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  ExecutionContext* state_;
  IteratorPtr child_;
  SubscriptPtr subscript_;
  runtime::RegisterId out_;
  bool materialize_;
  std::vector<runtime::RegisterId> key_regs_;
  std::unordered_map<std::string, runtime::Value> cache_;
};

/// The position counter chi_{cp := counter++} (Sec. 3.3.3), resetting
/// whenever the reset attribute's value changes (Sec. 4.3.1) — or only on
/// Open when there is no reset attribute (canonical translation / filter
/// expressions).
class CounterIterator : public Iterator {
 public:
  CounterIterator(ExecutionContext* state, IteratorPtr child,
                  runtime::RegisterId out,
                  std::optional<runtime::RegisterId> reset_reg)
      : state_(state),
        child_(std::move(child)),
        out_(out),
        reset_reg_(reset_reg) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId out_;
  std::optional<runtime::RegisterId> reset_reg_;
  uint64_t counter_ = 0;
  std::string last_key_;
  bool have_key_ = false;
};

/// Limit: passes the first `limit` tuples through, then reports
/// exhaustion and closes the input pipeline immediately — the
/// whole-query analogue of the smart-aggregation early exit
/// (Sec. 5.2.5) for positional predicates. The early Close() cascades
/// down to the page scans feeding the pipeline; `early_exits` counts
/// every time the cap fired before the child reported exhaustion
/// itself.
class LimitIterator : public Iterator {
 public:
  LimitIterator(IteratorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}
  Status OpenImpl() override {
    count_ = 0;
    child_open_ = true;
    return child_->Open();
  }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override {
    if (!child_open_) return Status::OK();
    child_open_ = false;
    return child_->Close();
  }

 private:
  IteratorPtr child_;
  uint64_t limit_;
  uint64_t count_ = 0;
  bool child_open_ = false;
};

/// The unnest-map Upsilon_{a := c/axis::test} (Sec. 3.2): the location
/// step. Streams the axis nodes of each input tuple's context node,
/// navigating the page buffer directly.
class UnnestMapIterator : public Iterator {
 public:
  UnnestMapIterator(ExecutionContext* state, IteratorPtr child,
                    runtime::RegisterId ctx, runtime::RegisterId out,
                    runtime::Axis axis, runtime::NodeTest test)
      : state_(state),
        child_(std::move(child)),
        ctx_(ctx),
        out_(out),
        axis_(axis),
        test_(test),
        cursor_(nullptr) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  /// Releases the axis cursor (and the page pins its node accessor
  /// holds) before closing the child: pins must not survive an early
  /// Close via Limit or a deadline/cancel abort.
  Status CloseImpl() override;

 private:
  /// Deactivates and resets the cursor, updating the resource ledger.
  void ReleaseCursor();

  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId ctx_;
  runtime::RegisterId out_;
  runtime::Axis axis_;
  runtime::NodeTest test_;
  runtime::AxisCursor cursor_;
  bool cursor_active_ = false;
};

/// Concatenation ⊕ of several inputs.
class ConcatIterator : public Iterator {
 public:
  explicit ConcatIterator(std::vector<IteratorPtr> children)
      : children_(std::move(children)) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override;

 private:
  std::vector<IteratorPtr> children_;
  size_t current_ = 0;
  bool open_ = false;
};

// ---------------------------------------------------------------------------
// Join operators
// ---------------------------------------------------------------------------

/// The d-join e1 < e2 > (Sec. 3.1.1): for every left tuple the dependent
/// right side is re-opened, reading the left tuple's attributes as free
/// variables. Also serves as the cross product when the right side is
/// independent.
class DJoinIterator : public Iterator {
 public:
  DJoinIterator(IteratorPtr left, IteratorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override;

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  bool right_open_ = false;
};

/// Semi-join (kSemi) and anti-join (kAnti) with existential predicate
/// check over the dependent right side; the probe stops at the first
/// match (Sec. 5.2.5 applies to the embedded existence test).
class SemiJoinIterator : public Iterator {
 public:
  enum class Mode { kSemi, kAnti };
  SemiJoinIterator(Mode mode, IteratorPtr left, IteratorPtr right,
                   SubscriptPtr predicate)
      : mode_(mode),
        left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)) {}
  Status OpenImpl() override { return left_->Open(); }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return left_->Close(); }

 private:
  Mode mode_;
  IteratorPtr left_;
  IteratorPtr right_;
  SubscriptPtr predicate_;
};

// ---------------------------------------------------------------------------
// Materializing operators
// ---------------------------------------------------------------------------

/// Duplicate elimination Pi^D on one attribute, preserving the remaining
/// attributes and the input order of first occurrences.
class DupElimIterator : public Iterator {
 public:
  DupElimIterator(ExecutionContext* state, IteratorPtr child,
                  runtime::RegisterId attr)
      : state_(state), child_(std::move(child)), attr_(attr) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  /// Drops the seen-sets with the pipeline: a full spool must not
  /// outlive Close (spool containment).
  Status CloseImpl() override;

 private:
  /// Empties the seen-sets, updating the resource ledger.
  void DropSeen();

  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId attr_;
  /// Fast path: node attributes dedup on packed node ids.
  std::unordered_set<uint64_t> seen_nodes_;
  std::unordered_set<std::string> seen_other_;
};

/// Sort by document order of a node attribute (Sec. 3.4.2). Materializes
/// the child's written registers.
class SortIterator : public Iterator {
 public:
  SortIterator(ExecutionContext* state, IteratorPtr child, runtime::RegisterId attr,
               std::vector<runtime::RegisterId> row_regs)
      : state_(state),
        child_(std::move(child)),
        attr_(attr),
        row_regs_(std::move(row_regs)) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  /// Drops the sorted spool with the pipeline (spool containment).
  Status CloseImpl() override;

 private:
  /// Empties the spool, updating the resource ledger.
  void DropRows();

  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId attr_;
  std::vector<runtime::RegisterId> row_regs_;
  std::vector<std::pair<uint64_t, runtime::Row>> rows_;
  size_t pos_ = 0;
};

/// Tmp^cs / Tmp^cs_c (Sec. 3.3.4 / 4.3.1 / 5.2.4): materializes one
/// context (the whole input, or the run of tuples sharing the context
/// attribute value), remembers its size, and replays it with the context
/// size attribute attached. One implementation covers both, as in the
/// paper ("Actually, there is just one implementation Tmp^cs_c which
/// covers Tmp^cs as a special case").
class TmpCsIterator : public Iterator {
 public:
  TmpCsIterator(ExecutionContext* state, IteratorPtr child, runtime::RegisterId out,
                std::optional<runtime::RegisterId> ctx_reg,
                std::vector<runtime::RegisterId> row_regs)
      : state_(state),
        child_(std::move(child)),
        out_(out),
        ctx_reg_(ctx_reg),
        row_regs_(std::move(row_regs)) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  /// Drops the group spool and the pending head with the pipeline
  /// (spool containment).
  Status CloseImpl() override;

 private:
  Status FillGroup();
  /// Empties the group spool and pending head, updating the ledger.
  void DropGroup();

  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId out_;
  std::optional<runtime::RegisterId> ctx_reg_;
  std::vector<runtime::RegisterId> row_regs_;
  std::vector<runtime::Row> group_;
  size_t replay_pos_ = 0;
  bool child_exhausted_ = false;
  bool have_pending_ = false;
  runtime::Row pending_row_;
  std::string pending_key_;
};

/// The MemoX operator (Sec. 4.2.2): keyed on its free variables, caches
/// the tuple sequence its child produces and replays it on later
/// evaluations with the same key. The memo table survives re-Opens (that
/// is its purpose: the operator sits in the dependent branch of a
/// d-join); entries are only committed when the child was drained
/// completely.
class MemoXIterator : public Iterator {
 public:
  MemoXIterator(ExecutionContext* state, IteratorPtr child,
                std::vector<runtime::RegisterId> key_regs,
                std::vector<runtime::RegisterId> row_regs)
      : state_(state),
        child_(std::move(child)),
        key_regs_(std::move(key_regs)),
        row_regs_(std::move(row_regs)) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override;

  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  ExecutionContext* state_;
  IteratorPtr child_;
  std::vector<runtime::RegisterId> key_regs_;
  std::vector<runtime::RegisterId> row_regs_;
  std::unordered_map<std::string, std::vector<runtime::Row>> table_;
  // Current evaluation:
  bool replaying_ = false;
  const std::vector<runtime::Row>* replay_rows_ = nullptr;
  size_t replay_pos_ = 0;
  bool recording_ = false;
  bool child_open_ = false;
  std::string current_key_;
  std::vector<runtime::Row> recorded_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// ---------------------------------------------------------------------------
// Aggregation / remaining Fig. 1 operators
// ---------------------------------------------------------------------------

/// The aggregation operator 𝔄_{a;f}: reduces its input to a singleton
/// tuple carrying the aggregate in `out`.
class AggregateIterator : public Iterator {
 public:
  AggregateIterator(ExecutionContext* state, IteratorPtr child,
                    algebra::AggKind agg, runtime::RegisterId input,
                    runtime::RegisterId out)
      : state_(state), out_(out) {
    nested_.iter = std::move(child);
    nested_.agg = agg;
    nested_.input_reg = input;
  }
  /// Routes the embedded nested-aggregate counters (consumed tuples,
  /// smart-aggregation early exits) onto this operator's stats node.
  void BindNestedStats(obs::OpStats* stats) { nested_.stats = stats; }
  Status OpenImpl() override {
    done_ = false;
    return Status::OK();
  }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return Status::OK(); }

 private:
  ExecutionContext* state_;
  NestedPlan nested_;
  runtime::RegisterId out_;
  bool done_ = false;
};

/// Binary grouping Gamma (Fig. 1): extends each left tuple with the
/// aggregate of the right tuples whose right_attr equals the left tuple's
/// left_attr. The right side is re-evaluated per left tuple (dependent
/// nested-loop form).
class BinaryGroupIterator : public Iterator {
 public:
  BinaryGroupIterator(ExecutionContext* state, IteratorPtr left, IteratorPtr right,
                      algebra::AggKind agg, runtime::RegisterId left_attr,
                      runtime::RegisterId right_attr,
                      runtime::RegisterId agg_input,
                      runtime::RegisterId out)
      : state_(state),
        left_(std::move(left)),
        right_(std::move(right)),
        agg_(agg),
        left_attr_(left_attr),
        right_attr_(right_attr),
        agg_input_(agg_input),
        out_(out) {}
  Status OpenImpl() override { return left_->Open(); }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return left_->Close(); }

 private:
  ExecutionContext* state_;
  IteratorPtr left_;
  IteratorPtr right_;
  algebra::AggKind agg_;
  runtime::RegisterId left_attr_;
  runtime::RegisterId right_attr_;
  runtime::RegisterId agg_input_;
  runtime::RegisterId out_;
};

/// Unnest mu_g: explodes a sequence-valued attribute, one output tuple
/// per element, the element placed in `out`.
class UnnestIterator : public Iterator {
 public:
  UnnestIterator(ExecutionContext* state, IteratorPtr child,
                 runtime::RegisterId seq_attr, runtime::RegisterId out)
      : state_(state),
        child_(std::move(child)),
        seq_attr_(seq_attr),
        out_(out) {}
  Status OpenImpl() override {
    pos_ = 0;
    current_.reset();
    return child_->Open();
  }
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId seq_attr_;
  runtime::RegisterId out_;
  runtime::SequencePtr current_;
  size_t pos_ = 0;
};

/// id() dereferencing (Sec. 3.6.3): resolves whitespace-separated id
/// tokens to the elements carrying a matching `id` attribute (this build
/// treats attributes named "id" as ID-typed; there is no DTD). Tokens
/// come either from the string-values of input nodes (`ctx` set) or from
/// one evaluation of a scalar subscript.
class IdDerefIterator : public Iterator {
 public:
  IdDerefIterator(ExecutionContext* state, IteratorPtr child,
                  std::optional<runtime::RegisterId> ctx,
                  SubscriptPtr scalar, runtime::RegisterId out)
      : state_(state),
        child_(std::move(child)),
        ctx_(ctx),
        scalar_(std::move(scalar)),
        out_(out) {}
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override { return child_->Close(); }

 private:
  /// Finds (building lazily) the id index of the document containing
  /// `node`.
  StatusOr<const std::unordered_map<std::string, runtime::NodeRef>*>
  IndexFor(runtime::NodeRef node);
  Status LoadTokens();

  ExecutionContext* state_;
  IteratorPtr child_;
  std::optional<runtime::RegisterId> ctx_;
  SubscriptPtr scalar_;
  runtime::RegisterId out_;
  std::vector<runtime::NodeRef> pending_;
  size_t pos_ = 0;
  bool scalar_done_ = false;
};

}  // namespace natix::qe

#endif  // NATIX_QE_OPERATORS_H_
