#include "qe/plan.h"

#include <algorithm>

namespace natix::qe {

// PlanTemplate::NewContext lives in codegen.cc: instantiation is the
// code generator's Build pass re-run against a fresh context.

void SortResultNodes(std::vector<runtime::NodeRef>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const runtime::NodeRef& a, const runtime::NodeRef& b) {
              return a.order < b.order;
            });
}

}  // namespace natix::qe
