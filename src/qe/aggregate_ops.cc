#include "qe/exec_context.h"
#include "qe/operators.h"

#include "base/strings.h"

namespace natix::qe {

using runtime::NodeRef;
using runtime::Value;
using runtime::ValueKind;

Status AggregateIterator::NextImpl(bool* has) {
  if (done_) {
    *has = false;
    return Status::OK();
  }
  NATIX_ASSIGN_OR_RETURN(Value v, RunNestedAggregate(&nested_, state_));
  state_->registers[out_] = std::move(v);
  done_ = true;
  *has = true;
  return Status::OK();
}

Status BinaryGroupIterator::NextImpl(bool* has) {
  NATIX_RETURN_IF_ERROR(left_->Next(has));
  if (!*has) return Status::OK();
  // Aggregate the matching right tuples for this left tuple. The left
  // tuple's attributes stay in the registers while the right side runs.
  std::string left_key = EncodeValueKey(state_->registers[left_attr_]);
  uint64_t count = 0;
  double sum = 0;
  bool exists = false;
  NATIX_RETURN_IF_ERROR(right_->Open());
  while (true) {
    bool right_has = false;
    Status st = right_->Next(&right_has);
    if (!st.ok()) {
      (void)right_->Close();
      return st;
    }
    if (!right_has) break;
    if (EncodeValueKey(state_->registers[right_attr_]) != left_key) continue;
    switch (agg_) {
      case algebra::AggKind::kCount:
        ++count;
        break;
      case algebra::AggKind::kExists:
        exists = true;
        break;
      case algebra::AggKind::kSum: {
        auto n = runtime::ToNumber(state_->registers[agg_input_],
                                   state_->eval_ctx);
        if (!n.ok()) {
          (void)right_->Close();
          return n.status();
        }
        sum += *n;
        break;
      }
      default:
        (void)right_->Close();
        return Status::NotSupported(
            "binary grouping supports count/sum/exists");
    }
  }
  NATIX_RETURN_IF_ERROR(right_->Close());
  switch (agg_) {
    case algebra::AggKind::kCount:
      state_->registers[out_] = Value::Number(static_cast<double>(count));
      break;
    case algebra::AggKind::kExists:
      state_->registers[out_] = Value::Boolean(exists);
      break;
    default:
      state_->registers[out_] = Value::Number(sum);
      break;
  }
  return Status::OK();
}

Status UnnestIterator::NextImpl(bool* has) {
  while (true) {
    if (current_ != nullptr && pos_ < current_->size()) {
      state_->registers[out_] = (*current_)[pos_];
      ++pos_;
      *has = true;
      return Status::OK();
    }
    current_.reset();
    bool child_has = false;
    NATIX_RETURN_IF_ERROR(child_->Next(&child_has));
    if (!child_has) {
      *has = false;
      return Status::OK();
    }
    const Value& v = state_->registers[seq_attr_];
    if (v.kind() != ValueKind::kSequence) {
      return Status::Internal("unnest input is not sequence-valued");
    }
    current_ = v.AsSequence();
    pos_ = 0;
  }
}

StatusOr<const std::unordered_map<std::string, NodeRef>*>
IdDerefIterator::IndexFor(NodeRef node) {
  const storage::NodeStore* store = state_->eval_ctx.store;
  // Climb to the document node.
  storage::NodeId current = node.node_id();
  storage::NodeRecord record;
  while (true) {
    NATIX_RETURN_IF_ERROR(store->ReadNode(current, &record));
    if (!record.parent.valid()) break;
    current = record.parent;
  }
  uint64_t root_key = current.Pack();
  auto it = state_->id_indexes.find(root_key);
  if (it != state_->id_indexes.end()) return &it->second;

  // Build the index: elements carrying an attribute named "id" (treated
  // as ID-typed; this build does not process DTDs).
  std::unordered_map<std::string, NodeRef> index;
  uint32_t id_name = store->names()->Lookup("id");
  if (id_name != storage::kInvalidNameId) {
    runtime::AxisCursor cursor(store);
    runtime::NodeTest any_element;
    any_element.kind = runtime::NodeTest::Kind::kAnyName;
    NATIX_RETURN_IF_ERROR(
        cursor.Open(runtime::Axis::kDescendant, any_element, current));
    while (true) {
      bool has = false;
      NodeRef element;
      NATIX_RETURN_IF_ERROR(cursor.Next(&has, &element));
      if (!has) break;
      NATIX_RETURN_IF_ERROR(store->ReadNode(element.node_id(), &record));
      storage::NodeId attr = record.first_attr;
      while (attr.valid()) {
        storage::NodeRecord attr_record;
        NATIX_RETURN_IF_ERROR(store->ReadNode(attr, &attr_record));
        if (attr_record.name_id == id_name) {
          // The first element wins for duplicate ids.
          index.emplace(attr_record.inline_text, element);
          break;
        }
        attr = attr_record.next_sibling;
      }
    }
  }
  auto [inserted, _] = state_->id_indexes.emplace(root_key, std::move(index));
  return &inserted->second;
}

Status IdDerefIterator::OpenImpl() {
  pending_.clear();
  pos_ = 0;
  scalar_done_ = false;
  return child_->Open();
}

Status IdDerefIterator::LoadTokens() {
  pending_.clear();
  pos_ = 0;
  const Value& ctx_value = state_->registers[*ctx_];
  if (ctx_value.kind() != ValueKind::kNode) {
    return Status::OK();  // no context document: empty result
  }
  NATIX_ASSIGN_OR_RETURN(const auto* index, IndexFor(ctx_value.AsNode()));

  std::string tokens;
  if (scalar_ != nullptr) {
    NATIX_ASSIGN_OR_RETURN(Value v, scalar_->Evaluate());
    NATIX_ASSIGN_OR_RETURN(tokens,
                           runtime::ToStringValue(v, state_->eval_ctx));
  } else {
    NATIX_ASSIGN_OR_RETURN(
        tokens, runtime::NodeStringValue(ctx_value.AsNode(),
                                         state_->eval_ctx));
  }
  for (const std::string& token : SplitWhitespace(tokens)) {
    auto it = index->find(token);
    if (it != index->end()) pending_.push_back(it->second);
  }
  return Status::OK();
}

Status IdDerefIterator::NextImpl(bool* has) {
  while (true) {
    if (pos_ < pending_.size()) {
      state_->registers[out_] = Value::Node(pending_[pos_]);
      ++pos_;
      *has = true;
      return Status::OK();
    }
    if (scalar_ != nullptr && scalar_done_) {
      *has = false;
      return Status::OK();
    }
    bool child_has = false;
    NATIX_RETURN_IF_ERROR(child_->Next(&child_has));
    if (!child_has) {
      *has = false;
      return Status::OK();
    }
    NATIX_RETURN_IF_ERROR(LoadTokens());
    if (scalar_ != nullptr) scalar_done_ = true;
  }
}

}  // namespace natix::qe
