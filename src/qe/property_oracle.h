#ifndef NATIX_QE_PROPERTY_ORACLE_H_
#define NATIX_QE_PROPERTY_ORACLE_H_

#include <string>
#include <unordered_set>

#include "qe/iterator.h"

namespace natix::qe {

/// The runtime property oracle: a transparent iterator wrapper that
/// dynamically checks the static property-inference claims (document
/// order, duplicate-freedom — src/analysis/property_inference.h) against
/// the actual tuples of one stream. The code generator inserts a wrapper
/// over every operator whose output attribute carries a claim, but only
/// while plan verification is enabled (NATIX_VERIFY_PLANS / ctest /
/// --verify-plans); production plans never pay for it.
///
/// A violated claim is a compiler bug — the inference engine promised a
/// property the rewriter may have relied on — so violations surface as
/// kInternal execution errors naming the stream and claim, failing
/// whichever unit/conformance/fuzz run triggered them.
///
/// Claims hold per Open(): dependent branches are re-opened per outer
/// tuple and promise order/distinctness within each evaluation, so the
/// oracle resets its state on Open.
class PropertyOracleIterator : public Iterator {
 public:
  PropertyOracleIterator(ExecutionContext* state, IteratorPtr child,
                         runtime::RegisterId reg, bool check_order,
                         bool check_duplicate_free, std::string label);

  /// Arms the Limit contract: the wrapped stream must emit at most
  /// `max_tuples` tuples per Open (0 disarms). The code generator sets
  /// this on the wrapper over every Limit operator, so an unsound
  /// pushdown — a cap that the capped iterator fails to honor — aborts
  /// execution instead of silently truncating or over-producing.
  void set_max_tuples(uint64_t max_tuples) { max_tuples_ = max_tuples; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(bool* has) override;
  Status CloseImpl() override;

 private:
  ExecutionContext* state_;
  IteratorPtr child_;
  runtime::RegisterId reg_;
  bool check_order_;
  bool check_duplicate_free_;
  std::string label_;
  /// Limit contract (0 = no bound to enforce).
  uint64_t max_tuples_ = 0;
  uint64_t produced_ = 0;

  /// Document-order key of the last node seen since Open.
  uint64_t last_order_ = 0;
  bool has_last_ = false;
  /// Packed node ids seen since Open (duplicate-freedom); non-node
  /// values are keyed through EncodeValueKey.
  std::unordered_set<uint64_t> seen_nodes_;
  std::unordered_set<std::string> seen_values_;
};

}  // namespace natix::qe

#endif  // NATIX_QE_PROPERTY_ORACLE_H_
