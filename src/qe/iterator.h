#ifndef NATIX_QE_ITERATOR_H_
#define NATIX_QE_ITERATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "obs/stats.h"
#include "runtime/conversions.h"
#include "runtime/register_file.h"
#include "runtime/value.h"

namespace natix::qe {

/// The per-execution state one iterator tree runs against: the plan-wide
/// register file (the attribute manager's memory, Sec. 5.1), the store
/// handle, the execution-context variables, and caches. Defined in
/// qe/exec_context.h; iterators only hold a pointer.
class ExecutionContext;

/// The iterator interface of the Natix Query Execution Engine
/// (Sec. 5.2.1, after Graefe): Open / Next / Close. Iterators communicate
/// through the plan register file; Next() returning true means the
/// iterator's output registers hold the next tuple.
///
/// The interface is non-virtual: the public methods route through
/// OpenImpl/NextImpl/CloseImpl so that per-operator instrumentation
/// (call counts, tuples, wall time, page I/O — src/obs) lives in exactly
/// one place. An uninstrumented iterator (stats_ == nullptr, the
/// default) pays a single predicted branch per call; building with
/// NATIX_OBS_DISABLED removes even that.
class Iterator {
 public:
  virtual ~Iterator() = default;

  Status Open() {
    if (ObsOff()) return OpenImpl();
    ++stats_->open_calls;
    obs::ScopedOpTimer timer(stats_);
    return OpenImpl();
  }

  /// Produces the next tuple into the registers. Sets *has to false at
  /// the end of the sequence.
  Status Next(bool* has) {
    if (ObsOff()) return NextImpl(has);
    ++stats_->next_calls;
    obs::ScopedOpTimer timer(stats_);
    Status st = NextImpl(has);
    if (st.ok() && *has) ++stats_->tuples;
    return st;
  }

  Status Close() {
    if (ObsOff()) return CloseImpl();
    ++stats_->close_calls;
    obs::ScopedOpTimer timer(stats_);
    return CloseImpl();
  }

  /// Attaches the per-operator stats node (codegen, when the query was
  /// compiled with stats collection). Null detaches.
  void BindStats(obs::OpStats* stats) { stats_ = stats; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Status NextImpl(bool* has) = 0;
  virtual Status CloseImpl() = 0;

  /// The operator's stats node; operators bump their family-specific
  /// counters on it through NATIX_OBS_COUNT.
  obs::OpStats* stats_ = nullptr;

 private:
  bool ObsOff() const {
#if defined(NATIX_OBS_DISABLED)
    return true;
#else
    return stats_ == nullptr;
#endif
  }
};

using IteratorPtr = std::unique_ptr<Iterator>;

/// Serializes register values into a hashable key (duplicate elimination,
/// MemoX and chi^mat cache keys). Nodes key by identity, atomic values by
/// tagged content.
std::string EncodeValueKey(const runtime::Value& value);
std::string EncodeRowKey(const ExecutionContext& state,
                         const std::vector<runtime::RegisterId>& regs);

}  // namespace natix::qe

#endif  // NATIX_QE_ITERATOR_H_
