#include "qe/codegen.h"

#include <set>
#include <utility>

#include "algebra/properties.h"
#include "analysis/nvm_dataflow.h"
#include "analysis/nvm_optimizer.h"
#include "analysis/plan_verifier.h"
#include "analysis/property_inference.h"
#include "nvm/assembler.h"
#include "obs/trace.h"
#include "qe/exec_context.h"
#include "qe/operators.h"
#include "qe/property_oracle.h"

namespace natix::qe {

namespace internal {

using algebra::Operator;
using algebra::OpKind;
using algebra::Scalar;
using runtime::RegisterId;

using analysis::PhysNode;
using analysis::PhysNodeKind;
using analysis::PhysNodePtr;

/// Iterator plus the registers its subtree writes (needed by
/// materializing parents for row snapshots), the node of the Layer-2
/// dataflow model mirroring the iterator, and the per-operator stats
/// node (null unless the context is instantiated with stats collection).
struct BuildResult {
  IteratorPtr iter;
  std::set<RegisterId> written;
  PhysNodePtr node;
  obs::OpStats* stats = nullptr;
};

/// Starts a dataflow-model node for the iterator being built.
PhysNodePtr MakeNode(PhysNodeKind kind, std::string label) {
  auto node = std::make_unique<PhysNode>();
  node->kind = kind;
  node->label = std::move(label);
  return node;
}

using analysis::ChildClose;
using analysis::SpoolKind;

/// Declares the Layer-4 resource behaviour of the iterator a node
/// models. The declarations must mirror the implementations in src/qe/
/// (operators.h and the *_ops.cc files); the resource verifier proves
/// the plan-wide consequences, and the execution context's resource
/// ledger cross-checks them at runtime.
PhysNode* Effects(PhysNode* node, std::vector<ChildClose> child_close,
                  SpoolKind spool = SpoolKind::kNone,
                  bool spool_released_on_close = false,
                  bool holds_cursor = false,
                  bool cursor_released_on_close = false) {
  node->effects.child_close = std::move(child_close);
  node->effects.spool = spool;
  node->effects.spool_released_on_close = spool_released_on_close;
  node->effects.holds_cursor = holds_cursor;
  node->effects.cursor_released_on_close = cursor_released_on_close;
  return node;
}

/// Renders the physical shape of the compiled plan: the logical operator
/// tree annotated with the attribute manager's register assignments.
/// Pure-rename maps that compiled to register aliases are marked.
class PhysicalPrinter {
 public:
  explicit PhysicalPrinter(
      const std::unordered_map<std::string, RegisterId>& attribute_map)
      : attribute_map_(attribute_map) {}

  std::string Render(const Operator& op) {
    out_.clear();
    Print(op, 0);
    return out_;
  }

 private:
  std::string Reg(const std::string& attr) const {
    auto it = attribute_map_.find(attr);
    if (it == attribute_map_.end()) return attr + "@?";
    return attr + "@r" + std::to_string(it->second);
  }

  void PrintScalar(const algebra::Scalar& scalar, int depth) {
    if (scalar.kind == algebra::ScalarKind::kNested) {
      out_.append(static_cast<size_t>(depth) * 2, ' ');
      out_ += "nested " + std::string(algebra::AggKindName(scalar.agg)) +
              "(" + Reg(scalar.input_attr) + "):\n";
      Print(*scalar.plan, depth + 1);
    }
    for (const auto& child : scalar.children) PrintScalar(*child, depth);
  }

  void Print(const Operator& op, int depth) {
    out_.append(static_cast<size_t>(depth) * 2, ' ');
    out_ += algebra::OpKindName(op.kind);
    switch (op.kind) {
      case OpKind::kMap: {
        bool alias = op.scalar->kind == algebra::ScalarKind::kAttrRef &&
                     !op.materialize;
        out_ += std::string(op.materialize ? "^mat" : "") + "[" +
                Reg(op.attr) + " := " + op.scalar->ToString() +
                (alias ? " (register alias, no code)" : "") + "]";
        break;
      }
      case OpKind::kSelect:
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
        out_ += "[" + op.scalar->ToString() + "]";
        break;
      case OpKind::kUnnestMap:
        out_ += "[" + Reg(op.attr) + " := " + Reg(op.ctx_attr) + "/" +
                runtime::AxisName(op.axis) + "::" + op.test.ToString() +
                "]";
        break;
      case OpKind::kCounter:
        out_ += "[" + Reg(op.attr) + " := counter++" +
                (op.ctx_attr.empty() ? "" : ", reset on " + Reg(op.ctx_attr)) +
                "]";
        break;
      case OpKind::kTmpCs:
        out_ += "[" + Reg(op.attr) +
                (op.ctx_attr.empty() ? "" : "; context " + Reg(op.ctx_attr)) +
                "]";
        break;
      case OpKind::kDupElim:
      case OpKind::kSort:
        out_ += "[" + Reg(op.attr) + "]";
        break;
      case OpKind::kAggregate:
        out_ += "[" + Reg(op.attr) + " := " +
                algebra::AggKindName(op.agg) + "(" + Reg(op.ctx_attr) + ")]";
        break;
      case OpKind::kMemoX: {
        out_ += "[";
        for (size_t i = 0; i < op.key_attrs.size(); ++i) {
          if (i > 0) out_ += ", ";
          out_ += Reg(op.key_attrs[i]);
        }
        out_ += "]";
        break;
      }
      case OpKind::kIdDeref:
        out_ += "[" + Reg(op.attr) + "]";
        break;
      case OpKind::kLimit:
        out_ += "[" + std::to_string(op.limit) + "]";
        break;
      default:
        break;
    }
    out_ += "\n";
    if (op.scalar != nullptr) PrintScalar(*op.scalar, depth + 1);
    for (const auto& child : op.children) Print(*child, depth + 1);
  }

  const std::unordered_map<std::string, RegisterId>& attribute_map_;
  std::string out_;
};

/// Declared a friend of PlanTemplate and ExecutionContext; lives in the
/// internal namespace so the friendship can be expressed across
/// translation units. One CodegenImpl lowers one template into one
/// context: Prepare runs it once against a scratch context (fixing the
/// register assignment, rendering the physical plan and verifying);
/// NewContext runs it once per instantiation.
class CodegenImpl {
 public:
  /// `prepare` additionally collects the compiled NVM programs for the
  /// Layer-3 verification sweep (instantiation skips the copies).
  CodegenImpl(const PlanTemplate& tmpl, ExecutionContext* ctx, bool prepare)
      : tmpl_(tmpl),
        ctx_(ctx),
        store_(tmpl.store_),
        props_(tmpl.props_),
        prepare_(prepare) {}

  Status Instantiate(bool collect_stats) {
    const translate::TranslationResult& translation = tmpl_.translation_;
    ctx_->template_ = &tmpl_;
    ctx_->eval_ctx.store = store_;
    state_ = ctx_;
    // The runtime half of Layer 4: the resource ledger cross-checks the
    // static pin-balance / spool-containment proof on every execution,
    // abort paths included.
    if (analysis::VerificationEnabled()) ctx_->ArmResourceLedger();
    if (collect_stats) {
      ctx_->stats_ = std::make_unique<obs::QueryStats>();
      qstats_ = ctx_->stats_.get();
    }

    // Reserved execution-context attributes (the paper's top-level map).
    ctx_->cn_reg_ = Bind(translate::kContextNodeAttr);
    ctx_->cp0_reg_ = Bind(translate::kContextPositionAttr);
    ctx_->cs0_reg_ = Bind(translate::kContextSizeAttr);

    NATIX_ASSIGN_OR_RETURN(BuildResult root, Build(*translation.plan));
    NATIX_ASSIGN_OR_RETURN(ctx_->result_reg_,
                           Resolve(translation.result_attr));
    if (qstats_ != nullptr) qstats_->set_root(root.stats);

    // Under verification, the oracle also guards the root stream's
    // statically inferred claims across the whole execution (operators
    // inside dependent branches only assert per re-evaluation).
    analysis::AttrProperties result_props;
    if (auto it = props_.find(translation.plan.get()); it != props_.end()) {
      result_props = it->second.Lookup(translation.result_attr);
    }
    if (analysis::VerificationEnabled() &&
        translation.type == xpath::ExprType::kNodeSet &&
        (result_props.order == analysis::OrderState::kDocOrdered ||
         result_props.duplicate_free)) {
      root.iter = std::make_unique<PropertyOracleIterator>(
          state_, std::move(root.iter), ctx_->result_reg_,
          result_props.order == analysis::OrderState::kDocOrdered,
          result_props.duplicate_free,
          "result " + translation.result_attr);
    }

    ctx_->root_ = std::move(root.iter);
    ctx_->result_type_ = translation.type;
    ctx_->registers.Resize(next_register_);
    root_node_ = std::move(root.node);
    return Status::OK();
  }

  /// Prepare-time epilogue: fixes the template's register count, renders
  /// the physical plan and runs the static verifier (Layers 1-3) over
  /// the validation lowering. Violations fail compilation: a malformed
  /// plan must never reach execution.
  Status FinishPrepare(PlanTemplate* tmpl) {
    const translate::TranslationResult& translation = tmpl->translation_;
    tmpl->register_count_ = next_register_;
    tmpl->physical_plan_ =
        "registers: " + std::to_string(next_register_) + ", nested plans: " +
        std::to_string(ctx_->nested_.size()) + "\n" +
        PhysicalPrinter(attribute_map_).Render(*translation.plan);
    tmpl->nvm_programs_ = std::move(optimized_programs_);
    tmpl->nvm_listing_before_ = std::move(nvm_listing_before_);
    tmpl->nvm_listing_after_ = std::move(nvm_listing_after_);
    tmpl->nvm_insns_before_ = nvm_insns_before_;
    tmpl->nvm_insns_after_ = nvm_insns_after_;
    tmpl->rewrites_.insert(tmpl->rewrites_.end(), nvm_rewrites_.begin(),
                           nvm_rewrites_.end());

    obs::ScopedSpan verify_span(
        "compile/verify",
        analysis::VerificationEnabled() ? "layers 1-4" : "skipped");
    if (analysis::VerificationEnabled()) {
      analysis::PhysicalModel model;
      model.root = std::move(root_node_);
      model.register_count = next_register_;
      model.context_regs = {ctx_->cn_reg_, ctx_->cp0_reg_, ctx_->cs0_reg_};
      model.result_reg = ctx_->result_reg_;
      model.nested_count = ctx_->nested_.size();
      model.programs = std::move(programs_);
      NATIX_RETURN_IF_ERROR(analysis::VerifyTranslation(translation));
      NATIX_RETURN_IF_ERROR(analysis::VerifyPhysical(model));
      NATIX_RETURN_IF_ERROR(analysis::VerifyResources(model));
      tmpl->verification_ =
          "VERIFIED (logical: " +
          std::to_string(algebra::PlanSize(*translation.plan)) +
          " operators; physical: " + std::to_string(next_register_) +
          " registers; nvm: " + std::to_string(model.programs.size()) +
          " subscript programs; properties: " +
          std::to_string(props_.size()) + " operators annotated, " +
          std::to_string(translation.rewrites.size()) +
          " property-justified rewrites; nvm optimizer: " +
          std::to_string(nvm_rewrites_.size()) +
          " bytecode rewrites; resources: pin-balanced, "
          "close-on-all-paths)";
    } else {
      tmpl->verification_ =
          "not verified (release build; enable with --verify-plans)";
    }
    return Status::OK();
  }

  size_t register_count() const { return next_register_; }

 private:
  /// Allocates a stats node in the context's collector; null when stats
  /// collection is off, so every call site stays branch-free.
  obs::OpStats* NewStats(std::string label) {
    if (qstats_ == nullptr) return nullptr;
    obs::OpStats* node = qstats_->NewOp(std::move(label));
    node->buffer = store_->buffer_manager();
    return node;
  }

  /// Links children and binds the node to its iterator. Null children
  /// (structural no-ops like register-alias maps) are skipped. Iterator
  /// children precede any NestedAgg nodes the subscript registrar
  /// already hung off the node.
  obs::OpStats* AttachStats(obs::OpStats* node, Iterator* iter,
                            std::initializer_list<obs::OpStats*> children) {
    if (node == nullptr) return nullptr;
    size_t at = 0;
    for (obs::OpStats* c : children) {
      if (c == nullptr) continue;
      node->children.insert(node->children.begin() + at, c);
      ++at;
    }
    iter->BindStats(node);
    return node;
  }

  /// One-shot: allocate + link + bind (operators without subscripts).
  obs::OpStats* Observe(std::string label, Iterator* iter,
                        std::initializer_list<obs::OpStats*> children) {
    return AttachStats(NewStats(std::move(label)), iter, children);
  }

  /// Binds a fresh attribute name to a new register (or returns the
  /// existing register when re-bound, e.g. the shared output attribute of
  /// union branches).
  RegisterId Bind(const std::string& name) {
    auto it = attribute_map_.find(name);
    if (it != attribute_map_.end()) return it->second;
    RegisterId reg = next_register_++;
    attribute_map_.emplace(name, reg);
    return reg;
  }

  /// Aliases `name` onto an existing register (the attribute-manager
  /// no-copy rename). Fails if `name` is already bound elsewhere.
  bool Alias(const std::string& name, RegisterId reg) {
    auto it = attribute_map_.find(name);
    if (it != attribute_map_.end()) return it->second == reg;
    attribute_map_.emplace(name, reg);
    return true;
  }

  StatusOr<RegisterId> Resolve(const std::string& name) {
    auto it = attribute_map_.find(name);
    if (it == attribute_map_.end()) {
      return Status::Internal("unbound attribute '" + name + "'");
    }
    return it->second;
  }

  StatusOr<std::vector<RegisterId>> ResolveAll(
      const std::set<std::string>& names) {
    std::vector<RegisterId> regs;
    regs.reserve(names.size());
    for (const std::string& name : names) {
      NATIX_ASSIGN_OR_RETURN(RegisterId reg, Resolve(name));
      regs.push_back(reg);
    }
    return regs;
  }

  /// Compiles a scalar subscript for the iterator modeled by `host`,
  /// recording the compiled program's tuple-register reads and nested
  /// subplans in the dataflow model. Nested subplans hang their
  /// aggregate stats node off `host_stats` (null: collection off).
  StatusOr<SubscriptPtr> CompileSubscript(const Scalar& scalar,
                                          PhysNode* host,
                                          obs::OpStats* host_stats) {
    nvm::AttrResolver resolver =
        [this](const std::string& name) -> StatusOr<RegisterId> {
      return Resolve(name);
    };
    nvm::NestedRegistrar registrar =
        [this, host, host_stats](const Scalar& nested) -> StatusOr<size_t> {
      NATIX_ASSIGN_OR_RETURN(BuildResult sub, Build(*nested.plan));
      NATIX_ASSIGN_OR_RETURN(RegisterId input, Resolve(nested.input_attr));
      auto entry = std::make_unique<NestedPlan>();
      entry->iter = std::move(sub.iter);
      entry->agg = nested.agg;
      entry->input_reg = input;
      if (host_stats != nullptr) {
        obs::OpStats* agg = NewStats(
            std::string("NestedAgg[") +
            std::string(algebra::AggKindName(nested.agg)) + "]");
        agg->nested = true;
        if (sub.stats != nullptr) agg->children.push_back(sub.stats);
        entry->stats = agg;
        host_stats->children.push_back(agg);
      }
      ctx_->nested_.push_back(std::move(entry));
      host->nested.emplace_back(std::move(sub.node), input);
      return ctx_->nested_.size() - 1;
    };
    NATIX_ASSIGN_OR_RETURN(nvm::Program program,
                           nvm::CompileScalar(scalar, resolver, registrar));
    // Claimed after CompileScalar so subscripts inside nested plans
    // (compiled during the registrar's recursion) take earlier indices:
    // compile order is deterministic across prepare and instantiation.
    const size_t index = subscript_index_++;
    if (prepare_) {
      nvm_listing_before_ += "== " + host->label + " ==\n" +
                             analysis::RenderNvmProgram(program);
      nvm_insns_before_ += program.code.size();
      if (tmpl_.translation_.optimize_nvm) {
        NATIX_RETURN_IF_ERROR(analysis::OptimizeNvmProgram(
            &program, host->label, next_register_, ctx_->nested_.size(),
            &nvm_rewrites_));
      }
      nvm_listing_after_ += "== " + host->label + " ==\n" +
                            analysis::RenderNvmProgram(program);
      nvm_insns_after_ += program.code.size();
      optimized_programs_.push_back(program);
    } else {
      // Instantiation replays the prepare-time result: the optimizer and
      // its per-pass verification run once per template, not per context.
      if (index >= tmpl_.nvm_programs_.size()) {
        return Status::Internal(
            "plan instantiation diverged from the prepared template "
            "(subscript count)");
      }
      program = tmpl_.nvm_programs_[index];
    }
    // The program's tuple-register operands are exactly the plan
    // registers the subscript reads per tuple (the fused kCmpAttrConst
    // reads its tuple register directly).
    for (const nvm::Instruction& ins : program.code) {
      if (ins.op == nvm::OpCode::kLoadAttr ||
          ins.op == nvm::OpCode::kCmpAttrConst) {
        host->reads.push_back(ins.b);
      }
    }
    if (prepare_) programs_.emplace_back(host->label, program);
    return std::make_unique<Subscript>(std::move(program), state_,
                                       &ctx_->nested_);
  }

  StatusOr<runtime::NodeTest> ResolveNodeTest(const xpath::AstNodeTest& t) {
    runtime::NodeTest test;
    switch (t.kind) {
      case xpath::AstNodeTest::Kind::kName:
        test.kind = runtime::NodeTest::Kind::kName;
        // A name absent from the dictionary occurs nowhere in the store:
        // the invalid id matches no node, which is exactly right.
        test.name_id = store_->names()->Lookup(t.name);
        break;
      case xpath::AstNodeTest::Kind::kAnyName:
        test.kind = runtime::NodeTest::Kind::kAnyName;
        break;
      case xpath::AstNodeTest::Kind::kText:
        test.kind = runtime::NodeTest::Kind::kText;
        break;
      case xpath::AstNodeTest::Kind::kComment:
        test.kind = runtime::NodeTest::Kind::kComment;
        break;
      case xpath::AstNodeTest::Kind::kPi:
        test.kind = runtime::NodeTest::Kind::kPi;
        break;
      case xpath::AstNodeTest::Kind::kPiTarget:
        test.kind = runtime::NodeTest::Kind::kPiTarget;
        test.name_id = store_->names()->Lookup(t.name);
        break;
      case xpath::AstNodeTest::Kind::kAnyKind:
        test.kind = runtime::NodeTest::Kind::kAnyKind;
        break;
    }
    return test;
  }

  /// The inferred-property tag appended to EXPLAIN ANALYZE labels, e.g.
  /// " {card:n, ord:doc(c3), dup-free(c3)}". Colon-separated so golden
  /// normalizations of numeric counters ("=N") leave it alone.
  std::string PropTag(const Operator& op) const {
    auto it = props_.find(&op);
    if (it == props_.end()) return std::string();
    return " " + analysis::RenderProperties(it->second, op.attr);
  }

  /// Wraps stream-producing operators in the runtime property oracle
  /// while verification is on: the wrapper asserts the static order /
  /// duplicate-freedom claims of op.attr against the actual tuples.
  /// Transparent otherwise: no stats node, no register writes.
  void WrapOracle(const Operator& op, BuildResult* result) {
    if (!analysis::VerificationEnabled()) return;
    if (op.kind == OpKind::kLimit) {
      WrapLimitOracle(op, result);
      return;
    }
    switch (op.kind) {
      case OpKind::kUnnestMap:
      case OpKind::kDupElim:
      case OpKind::kSort:
      case OpKind::kCounter:
      case OpKind::kUnnest:
      case OpKind::kIdDeref:
        break;
      default:
        return;
    }
    auto it = props_.find(&op);
    if (it == props_.end()) return;
    analysis::AttrProperties attr = it->second.Lookup(op.attr);
    bool check_order = attr.order == analysis::OrderState::kDocOrdered;
    bool check_dup = attr.duplicate_free;
    if (!check_order && !check_dup) return;
    StatusOr<RegisterId> reg = Resolve(op.attr);
    if (!reg.ok()) return;
    result->iter = std::make_unique<PropertyOracleIterator>(
        state_, std::move(result->iter), *reg, check_order, check_dup,
        analysis::OperatorSummary(op) + PropTag(op));
  }

  /// The Limit contract: at most op.limit tuples per Open, and the
  /// surviving prefix keeps the input's document-order claim. A Limit
  /// writes no attribute of its own, so the order check keys on the
  /// stream attribute produced below it (descending through the
  /// attribute-transparent operators); the tuple bound needs no
  /// register at all.
  void WrapLimitOracle(const Operator& op, BuildResult* result) {
    const Operator* p = op.children[0].get();
    while (true) {
      switch (p->kind) {
        case OpKind::kSelect:
        case OpKind::kCounter:
        case OpKind::kTmpCs:
        case OpKind::kLimit:
        case OpKind::kMap:
        case OpKind::kProject:
        case OpKind::kMemoX:
          p = p->children[0].get();
          continue;
        default:
          break;
      }
      break;
    }
    std::string stream_attr;
    switch (p->kind) {
      case OpKind::kUnnestMap:
      case OpKind::kUnnest:
      case OpKind::kIdDeref:
      case OpKind::kDupElim:
      case OpKind::kSort:
        stream_attr = p->attr;
        break;
      default:
        break;
    }
    bool check_order = false;
    RegisterId reg = 0;
    auto it = props_.find(&op);
    if (!stream_attr.empty() && it != props_.end()) {
      analysis::AttrProperties attr = it->second.Lookup(stream_attr);
      StatusOr<RegisterId> resolved = Resolve(stream_attr);
      if (resolved.ok() &&
          attr.order == analysis::OrderState::kDocOrdered) {
        check_order = true;
        reg = *resolved;
      }
    }
    auto oracle = std::make_unique<PropertyOracleIterator>(
        state_, std::move(result->iter), reg, check_order,
        /*check_duplicate_free=*/false,
        analysis::OperatorSummary(op) + PropTag(op));
    oracle->set_max_tuples(op.limit);
    result->iter = std::move(oracle);
  }

  StatusOr<BuildResult> Build(const Operator& op) {
    NATIX_ASSIGN_OR_RETURN(BuildResult result, BuildOp(op));
    WrapOracle(op, &result);
    return result;
  }

  StatusOr<BuildResult> BuildOp(const Operator& op) {
    switch (op.kind) {
      case OpKind::kSingletonScan: {
        BuildResult result;
        result.iter = std::make_unique<SingletonScanIterator>();
        result.node = MakeNode(PhysNodeKind::kLeaf, "SingletonScan");
        result.stats = Observe("SingletonScan", result.iter.get(), {});
        return result;
      }
      case OpKind::kSelect: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "Select");
        Effects(node.get(), {ChildClose::kOnClose});
        obs::OpStats* stats =
            NewStats("Select[" + op.scalar->ToString() + "]");
        NATIX_ASSIGN_OR_RETURN(
            SubscriptPtr predicate,
            CompileSubscript(*op.scalar, node.get(), stats));
        child.iter = std::make_unique<SelectIterator>(std::move(child.iter),
                                                      std::move(predicate));
        child.stats = AttachStats(stats, child.iter.get(), {child.stats});
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kMap: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        // Attribute-manager fast path: a pure rename emits no code.
        if (op.scalar->kind == algebra::ScalarKind::kAttrRef &&
            !op.materialize) {
          NATIX_ASSIGN_OR_RETURN(RegisterId source,
                                 Resolve(op.scalar->name));
          if (Alias(op.attr, source)) {
            child.written.insert(source);
            return child;
          }
          // Already bound elsewhere (e.g. union branches sharing one
          // output attribute): fall through to a real copy.
        }
        RegisterId out = Bind(op.attr);
        PhysNodePtr node =
            MakeNode(PhysNodeKind::kPipeline,
                     "Map[" + op.attr + "@r" + std::to_string(out) + "]");
        // chi^mat keeps a keyed result cache that intentionally outlives
        // Open/Close cycles within one execution context.
        Effects(node.get(), {ChildClose::kOnClose},
                op.materialize ? SpoolKind::kMemo : SpoolKind::kNone);
        obs::OpStats* stats = NewStats(
            std::string("Map") + (op.materialize ? "^mat" : "") + "[" +
            op.attr + " := " + op.scalar->ToString() + "]" + PropTag(op));
        std::vector<RegisterId> key_regs;
        if (op.materialize) {
          NATIX_ASSIGN_OR_RETURN(
              key_regs,
              ResolveAll(algebra::ScalarFreeAttributes(*op.scalar)));
          node->reads.insert(node->reads.end(), key_regs.begin(),
                             key_regs.end());
        }
        NATIX_ASSIGN_OR_RETURN(
            SubscriptPtr subscript,
            CompileSubscript(*op.scalar, node.get(), stats));
        child.iter = std::make_unique<MapIterator>(
            state_, std::move(child.iter), std::move(subscript), out,
            op.materialize, std::move(key_regs));
        child.stats = AttachStats(stats, child.iter.get(), {child.stats});
        child.written.insert(out);
        node->writes.push_back(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kCounter: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        RegisterId out = Bind(op.attr);
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "Counter");
        Effects(node.get(), {ChildClose::kOnClose});
        std::optional<RegisterId> reset;
        if (!op.ctx_attr.empty()) {
          NATIX_ASSIGN_OR_RETURN(RegisterId reg, Resolve(op.ctx_attr));
          reset = reg;
          node->reads.push_back(reg);
        }
        child.iter = std::make_unique<CounterIterator>(
            state_, std::move(child.iter), out, reset);
        child.stats = Observe(
            "Counter[" + op.attr +
                (op.ctx_attr.empty() ? "" : ", reset on " + op.ctx_attr) +
                "]",
            child.iter.get(), {child.stats});
        child.written.insert(out);
        node->writes.push_back(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kUnnestMap: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId ctx, Resolve(op.ctx_attr));
        RegisterId out = Bind(op.attr);
        NATIX_ASSIGN_OR_RETURN(runtime::NodeTest test,
                               ResolveNodeTest(op.test));
        child.iter = std::make_unique<UnnestMapIterator>(
            state_, std::move(child.iter), ctx, out, op.axis, test);
        child.stats = Observe("UnnestMap[" + op.attr + " := " +
                                  op.ctx_attr + "/" +
                                  runtime::AxisName(op.axis) +
                                  "::" + op.test.ToString() + "]" +
                                  PropTag(op),
                              child.iter.get(), {child.stats});
        child.written.insert(out);
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "UnnestMap");
        // The axis cursor pins pages between Next calls while active;
        // Close drops it (pin balance on early exit).
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kNone,
                /*spool_released_on_close=*/false, /*holds_cursor=*/true,
                /*cursor_released_on_close=*/true);
        node->reads.push_back(ctx);
        node->writes.push_back(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kDJoin:
      case OpKind::kCross: {
        NATIX_ASSIGN_OR_RETURN(BuildResult left, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(BuildResult right, Build(*op.children[1]));
        BuildResult result;
        result.iter = std::make_unique<DJoinIterator>(std::move(left.iter),
                                                      std::move(right.iter));
        result.stats =
            Observe(op.kind == OpKind::kDJoin ? "DJoin" : "Cross",
                    result.iter.get(), {left.stats, right.stats});
        result.written = std::move(left.written);
        result.written.insert(right.written.begin(), right.written.end());
        result.node = MakeNode(PhysNodeKind::kDependent,
                               op.kind == OpKind::kDJoin ? "DJoin" : "Cross");
        Effects(result.node.get(),
                {ChildClose::kOnClose, ChildClose::kOnClose});
        result.node->children.push_back(std::move(left.node));
        result.node->children.push_back(std::move(right.node));
        return result;
      }
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin: {
        NATIX_ASSIGN_OR_RETURN(BuildResult left, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(BuildResult right, Build(*op.children[1]));
        PhysNodePtr node = MakeNode(
            PhysNodeKind::kDependentLeft,
            op.kind == OpKind::kSemiJoin ? "SemiJoin" : "AntiJoin");
        // The probe side is opened and closed inside every Next call,
        // including error paths — never open across calls.
        Effects(node.get(),
                {ChildClose::kOnClose, ChildClose::kProbeContained});
        obs::OpStats* stats = NewStats(
            std::string(op.kind == OpKind::kSemiJoin ? "SemiJoin"
                                                     : "AntiJoin") +
            "[" + op.scalar->ToString() + "]");
        NATIX_ASSIGN_OR_RETURN(
            SubscriptPtr predicate,
            CompileSubscript(*op.scalar, node.get(), stats));
        BuildResult result;
        result.iter = std::make_unique<SemiJoinIterator>(
            op.kind == OpKind::kSemiJoin ? SemiJoinIterator::Mode::kSemi
                                         : SemiJoinIterator::Mode::kAnti,
            std::move(left.iter), std::move(right.iter),
            std::move(predicate));
        result.stats = AttachStats(stats, result.iter.get(),
                                   {left.stats, right.stats});
        result.written = std::move(left.written);
        result.written.insert(right.written.begin(), right.written.end());
        node->children.push_back(std::move(left.node));
        node->children.push_back(std::move(right.node));
        result.node = std::move(node);
        return result;
      }
      case OpKind::kConcat: {
        BuildResult result;
        result.node = MakeNode(PhysNodeKind::kConcat, "Concat");
        std::vector<IteratorPtr> children;
        std::vector<obs::OpStats*> child_stats;
        for (const algebra::OpPtr& c : op.children) {
          NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*c));
          children.push_back(std::move(child.iter));
          if (child.stats != nullptr) child_stats.push_back(child.stats);
          result.written.insert(child.written.begin(), child.written.end());
          result.node->children.push_back(std::move(child.node));
        }
        result.iter = std::make_unique<ConcatIterator>(std::move(children));
        // Branches are opened lazily and each is closed before the next
        // opens; Close finds at most the current branch open.
        Effects(result.node.get(),
                std::vector<ChildClose>(result.node->children.size(),
                                        ChildClose::kOnClose));
        result.stats = Observe("Concat", result.iter.get(), {});
        if (result.stats != nullptr) result.stats->children = child_stats;
        return result;
      }
      case OpKind::kDupElim: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId attr, Resolve(op.attr));
        child.iter = std::make_unique<DupElimIterator>(
            state_, std::move(child.iter), attr);
        child.stats = Observe("DupElim[" + op.attr + "]" + PropTag(op),
                              child.iter.get(), {child.stats});
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "DupElim");
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kFull,
                /*spool_released_on_close=*/true);
        node->reads.push_back(attr);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kProject:
        // Logical only: registers are not reclaimed, so projection needs
        // no runtime work (and no dataflow-model node).
        return Build(*op.children[0]);
      case OpKind::kSort: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId attr, Resolve(op.attr));
        std::vector<RegisterId> rows(child.written.begin(),
                                     child.written.end());
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "Sort");
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kFull,
                /*spool_released_on_close=*/true);
        node->reads.push_back(attr);
        node->row_regs = rows;
        child.iter = std::make_unique<SortIterator>(
            state_, std::move(child.iter), attr, std::move(rows));
        child.stats = Observe("Sort[" + op.attr + "]" + PropTag(op),
                              child.iter.get(), {child.stats});
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kAggregate: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId input, Resolve(op.ctx_attr));
        RegisterId out = Bind(op.attr);
        auto agg_iter = std::make_unique<AggregateIterator>(
            state_, std::move(child.iter), op.agg, input, out);
        obs::OpStats* stats = Observe(
            "Aggregate[" + op.attr + " := " +
                std::string(algebra::AggKindName(op.agg)) + "(" +
                op.ctx_attr + ")]" + PropTag(op),
            agg_iter.get(), {child.stats});
        // The embedded nested plan's smart-aggregation counters land on
        // the Aggregate's own node.
        if (stats != nullptr) agg_iter->BindNestedStats(stats);
        BuildResult result;
        result.iter = std::move(agg_iter);
        result.stats = stats;
        result.written.insert(out);
        result.node = MakeNode(PhysNodeKind::kBarrier, "Aggregate");
        // The input is drained and closed inside a single Next via the
        // nested-aggregate machinery (subscripts.cc), error paths
        // included.
        Effects(result.node.get(), {ChildClose::kProbeContained});
        result.node->reads.push_back(input);
        result.node->writes.push_back(out);
        result.node->children.push_back(std::move(child.node));
        return result;
      }
      case OpKind::kBinaryGroup: {
        NATIX_ASSIGN_OR_RETURN(BuildResult left, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(BuildResult right, Build(*op.children[1]));
        NATIX_ASSIGN_OR_RETURN(RegisterId left_attr, Resolve(op.left_attr));
        NATIX_ASSIGN_OR_RETURN(RegisterId right_attr,
                               Resolve(op.right_attr));
        NATIX_ASSIGN_OR_RETURN(RegisterId agg_input, Resolve(op.ctx_attr));
        RegisterId out = Bind(op.attr);
        BuildResult result;
        result.iter = std::make_unique<BinaryGroupIterator>(
            state_, std::move(left.iter), std::move(right.iter), op.agg,
            left_attr, right_attr, agg_input, out);
        result.stats = Observe(
            "BinaryGroup[" + op.attr + " := " +
                std::string(algebra::AggKindName(op.agg)) + "; " +
                op.left_attr + " = " + op.right_attr + "]",
            result.iter.get(), {left.stats, right.stats});
        result.written = std::move(left.written);
        result.written.insert(out);
        result.node = MakeNode(PhysNodeKind::kDependentLeft, "BinaryGroup");
        Effects(result.node.get(),
                {ChildClose::kOnClose, ChildClose::kProbeContained});
        result.node->reads = {left_attr, right_attr, agg_input};
        result.node->writes.push_back(out);
        result.node->children.push_back(std::move(left.node));
        result.node->children.push_back(std::move(right.node));
        return result;
      }
      case OpKind::kTmpCs: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        RegisterId out = Bind(op.attr);
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "TmpCs");
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kGroup,
                /*spool_released_on_close=*/true);
        std::optional<RegisterId> ctx;
        if (!op.ctx_attr.empty()) {
          NATIX_ASSIGN_OR_RETURN(RegisterId reg, Resolve(op.ctx_attr));
          ctx = reg;
          node->reads.push_back(reg);
        }
        std::vector<RegisterId> rows(child.written.begin(),
                                     child.written.end());
        node->row_regs = rows;
        node->writes.push_back(out);
        child.iter = std::make_unique<TmpCsIterator>(
            state_, std::move(child.iter), out, ctx, std::move(rows));
        child.stats = Observe(
            "TmpCs[" + op.attr +
                (op.ctx_attr.empty() ? "" : "; context " + op.ctx_attr) +
                "]" + PropTag(op),
            child.iter.get(), {child.stats});
        child.written.insert(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kMemoX: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        std::vector<RegisterId> keys;
        for (const std::string& key : op.key_attrs) {
          NATIX_ASSIGN_OR_RETURN(RegisterId reg, Resolve(key));
          keys.push_back(reg);
        }
        std::vector<RegisterId> rows(child.written.begin(),
                                     child.written.end());
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "MemoX");
        // The memo table is keyed on the free variables and intentionally
        // survives Open/Close cycles; in-flight recordings are discarded
        // on Close.
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kMemo);
        node->reads = keys;
        node->row_regs = rows;
        child.iter = std::make_unique<MemoXIterator>(
            state_, std::move(child.iter), std::move(keys),
            std::move(rows));
        std::string key_list;
        for (size_t i = 0; i < op.key_attrs.size(); ++i) {
          if (i > 0) key_list += ", ";
          key_list += op.key_attrs[i];
        }
        child.stats = Observe("MemoX[" + key_list + "]", child.iter.get(),
                              {child.stats});
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kUnnest: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId seq, Resolve(op.ctx_attr));
        RegisterId out = Bind(op.attr);
        child.iter = std::make_unique<UnnestIterator>(
            state_, std::move(child.iter), seq, out);
        child.stats = Observe("Unnest[" + op.attr + "]", child.iter.get(),
                              {child.stats});
        child.written.insert(out);
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "Unnest");
        Effects(node.get(), {ChildClose::kOnClose});
        node->reads.push_back(seq);
        node->writes.push_back(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kIdDeref: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        NATIX_ASSIGN_OR_RETURN(RegisterId ctx, Resolve(op.ctx_attr));
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "IdDeref");
        // The lazily built id indexes live in the execution context and
        // are shared across Opens — keyed memo state by design.
        Effects(node.get(), {ChildClose::kOnClose}, SpoolKind::kMemo);
        node->reads.push_back(ctx);
        obs::OpStats* stats = NewStats("IdDeref[" + op.attr + "]");
        SubscriptPtr scalar;
        if (op.scalar != nullptr) {
          NATIX_ASSIGN_OR_RETURN(
              scalar, CompileSubscript(*op.scalar, node.get(), stats));
        }
        RegisterId out = Bind(op.attr);
        child.iter = std::make_unique<IdDerefIterator>(
            state_, std::move(child.iter), ctx, std::move(scalar), out);
        child.stats = AttachStats(stats, child.iter.get(), {child.stats});
        child.written.insert(out);
        node->writes.push_back(out);
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
      case OpKind::kLimit: {
        NATIX_ASSIGN_OR_RETURN(BuildResult child, Build(*op.children[0]));
        child.iter = std::make_unique<LimitIterator>(std::move(child.iter),
                                                     op.limit);
        child.stats =
            Observe("Limit[" + std::to_string(op.limit) + "]" + PropTag(op),
                    child.iter.get(), {child.stats});
        PhysNodePtr node = MakeNode(PhysNodeKind::kPipeline, "Limit");
        // Early exit closes the child inside Next; Close re-checks the
        // open flag, so the child ends closed on every path.
        Effects(node.get(), {ChildClose::kOnClose});
        node->children.push_back(std::move(child.node));
        child.node = std::move(node);
        return child;
      }
    }
    return Status::Internal("unknown operator kind");
  }

  const PlanTemplate& tmpl_;
  ExecutionContext* ctx_;
  const storage::NodeStore* store_;
  /// The template's property map (computed once at prepare time); the
  /// lowering only reads it.
  const analysis::PropertyMap& props_;
  const bool prepare_;
  ExecutionContext* state_ = nullptr;
  /// The context's stats collector; null unless instantiated with stats.
  obs::QueryStats* qstats_ = nullptr;
  std::unordered_map<std::string, RegisterId> attribute_map_;
  RegisterId next_register_ = 0;
  /// Root of the Layer-2 dataflow model (consumed by FinishPrepare).
  PhysNodePtr root_node_;
  /// Every compiled NVM subscript with its site label (Layer-3 sweep;
  /// collected at prepare time only).
  std::vector<std::pair<std::string, nvm::Program>> programs_;
  /// Post-order subscript counter pairing each compiled subscript with
  /// its template slot across prepare and instantiation.
  size_t subscript_index_ = 0;
  /// Prepare-time collections moved into the template by FinishPrepare.
  std::vector<nvm::Program> optimized_programs_;
  std::string nvm_listing_before_;
  std::string nvm_listing_after_;
  size_t nvm_insns_before_ = 0;
  size_t nvm_insns_after_ = 0;
  algebra::RewriteLog nvm_rewrites_;
};

}  // namespace internal

StatusOr<std::unique_ptr<PlanTemplate>> Codegen::Prepare(
    translate::TranslationResult translation,
    const storage::NodeStore* store) {
  obs::ScopedSpan span("compile/codegen");
  std::unique_ptr<PlanTemplate> tmpl(new PlanTemplate());
  tmpl->store_ = store;

  // Static property inference over the logical plan (ordering,
  // duplicate-freedom, cardinality, node classes). Runs once per
  // template: the annotations drive the EXPLAIN property tags, the
  // result-order guarantee, and — under verification — the runtime
  // property oracle wrappers of every instantiation.
  tmpl->props_ = analysis::AnnotatePlan(*translation.plan);
  tmpl->logical_plan_ = translation.plan->ToString();
  tmpl->properties_plan_ = analysis::RenderAnnotatedPlan(*translation.plan);
  tmpl->rewrites_ = translation.rewrites;

  // Fusability segmentation (Layer 4): maximal non-materializing,
  // effect-free pipeline segments with their boundaries — the NVM
  // fusion compiler's work list, surfaced through --explain and
  // --explain-json.
  tmpl->segmentation_ = analysis::SegmentPlan(*translation.plan);
  if (analysis::VerificationEnabled()) {
    NATIX_RETURN_IF_ERROR(
        analysis::VerifySegments(*translation.plan, tmpl->segmentation_));
  }
  tmpl->segments_text_ = analysis::RenderSegments(tmpl->segmentation_);
  std::string plan_json = analysis::PlanToJson(*translation.plan);
  while (!plan_json.empty() && plan_json.back() == '\n') plan_json.pop_back();
  tmpl->properties_json_ =
      "{\"plan\":" + plan_json +
      ",\"segments\":" + analysis::SegmentsJson(tmpl->segmentation_) + "}\n";

  // Result-order guarantee: when the root stream is provably in
  // (non-strict) document order on the result attribute, the API skips
  // its final result sort.
  analysis::AttrProperties result_props;
  if (auto it = tmpl->props_.find(translation.plan.get());
      it != tmpl->props_.end()) {
    result_props = it->second.Lookup(translation.result_attr);
  }
  tmpl->result_document_ordered_ =
      translation.type == xpath::ExprType::kNodeSet &&
      result_props.order == analysis::OrderState::kDocOrdered;

  // The template takes ownership of the operator tree; the property map
  // keys stay valid (moving the TranslationResult moves the root
  // pointer, not the operators).
  tmpl->translation_ = std::move(translation);

  // Validation lowering: one throwaway context fixes the (deterministic)
  // register assignment, renders the physical plan, and feeds the static
  // verifier. Real executions instantiate their own contexts later.
  ExecutionContext scratch;
  internal::CodegenImpl impl(*tmpl, &scratch, /*prepare=*/true);
  NATIX_RETURN_IF_ERROR(impl.Instantiate(/*collect_stats=*/false));
  NATIX_RETURN_IF_ERROR(impl.FinishPrepare(tmpl.get()));
  return tmpl;
}

StatusOr<std::unique_ptr<ExecutionContext>> PlanTemplate::NewContext(
    bool collect_stats) const {
  obs::ScopedSpan span("exec/instantiate");
  auto ctx = std::make_unique<ExecutionContext>();
  internal::CodegenImpl impl(*this, ctx.get(), /*prepare=*/false);
  NATIX_RETURN_IF_ERROR(impl.Instantiate(collect_stats));
  if (impl.register_count() != register_count_) {
    return Status::Internal(
        "plan instantiation diverged from the prepared template (register "
        "assignment is expected to be deterministic)");
  }
  return ctx;
}

}  // namespace natix::qe
