#include "qe/exec_context.h"

#include "base/clock.h"
#include "obs/trace.h"

namespace natix::qe {

Status ExecutionContext::CheckCancellation() const {
  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("execution cancelled");
  }
  if (deadline_ns_ != 0 && MonotonicNanos() >= deadline_ns_) {
    return Status::DeadlineExceeded("execution deadline exceeded");
  }
  return Status::OK();
}

Status ExecutionContext::VerifyLedgerQuiescent() const {
  if (!ledger_armed_) return Status::OK();
  if (ledger_.cursors_active != 0) {
    return Status::Internal(
        "resource ledger: " + std::to_string(ledger_.cursors_active) +
        " storage cursor(s) still active after Close — page pins leaked "
        "(pin-balance violation)");
  }
  if (ledger_.spool_rows != 0) {
    return Status::Internal(
        "resource ledger: " + std::to_string(ledger_.spool_rows) +
        " spool row(s) survive Close (spool-containment violation)");
  }
  return Status::OK();
}

namespace {

/// Closes the root on an abort path and audits the resource ledger: the
/// whole point of close-on-all-paths is that an early exit leaves no
/// pins or spools behind, so a ledger imbalance here is a bug worth
/// more than the original abort status.
Status AbortClose(Iterator* root, const ExecutionContext& ctx, Status st) {
  (void)root->Close();
  Status ledger = ctx.VerifyLedgerQuiescent();
  if (!ledger.ok()) return ledger;
  return st;
}

}  // namespace

void ExecutionContext::SetContextNode(runtime::NodeRef node) {
  registers[cn_reg_] = runtime::Value::Node(node);
  // Default context position/size: a singleton context.
  registers[cp0_reg_] = runtime::Value::Number(1);
  registers[cs0_reg_] = runtime::Value::Number(1);
}

void ExecutionContext::SetVariable(const std::string& name,
                                   runtime::Value value) {
  variables[name] = std::move(value);
}

StatusOr<std::vector<runtime::NodeRef>> ExecutionContext::ExecuteNodes() {
  if (result_type_ != xpath::ExprType::kNodeSet) {
    return Status::InvalidArgument(
        "ExecuteNodes called on a non-node-set query");
  }
  obs::ScopedSpan exec_span("exec/nodes");
  std::vector<runtime::NodeRef> result;
  {
    obs::ScopedSpan span("exec/open");
    NATIX_RETURN_IF_ERROR(root_->Open());
  }
  bool has = false;
  {
    // The first Next is where pipeline-breaking operators do their
    // work (spooling, sorting); it gets its own span so startup cost
    // separates from the per-tuple drain.
    obs::ScopedSpan span("exec/first-next");
    Status st = root_->Next(&has);
    if (!st.ok()) {
      return AbortClose(root_.get(), *this, std::move(st));
    }
  }
  {
    obs::ScopedSpan span("exec/drain");
    uint64_t drained = 0;
    while (has) {
      // Cooperative cancellation: a request whose deadline expired (or
      // whose client went away) closes the whole pipeline — cascading
      // Close() down to the page scans — instead of finishing the drain.
      if (drained++ % kCancelCheckInterval == 0) {
        Status st = CheckCancellation();
        if (!st.ok()) {
          return AbortClose(root_.get(), *this, std::move(st));
        }
      }
      const runtime::Value& v = registers[result_reg_];
      if (v.kind() != runtime::ValueKind::kNode) {
        return AbortClose(
            root_.get(), *this,
            Status::Internal("node-set plan produced a non-node value"));
      }
      result.push_back(v.AsNode());
      Status st = root_->Next(&has);
      if (!st.ok()) {
        return AbortClose(root_.get(), *this, std::move(st));
      }
    }
  }
  {
    obs::ScopedSpan span("exec/close");
    NATIX_RETURN_IF_ERROR(root_->Close());
  }
  NATIX_RETURN_IF_ERROR(VerifyLedgerQuiescent());
  return result;
}

StatusOr<runtime::Value> ExecutionContext::ExecuteValue() {
  if (result_type_ == xpath::ExprType::kNodeSet) {
    return Status::InvalidArgument(
        "ExecuteValue called on a node-set query");
  }
  obs::ScopedSpan exec_span("exec/value");
  // Scalar plans drain inside aggregate subscripts, so the per-tuple
  // check above never sees them; at least refuse to start work for a
  // request that is already over deadline or cancelled.
  NATIX_RETURN_IF_ERROR(CheckCancellation());
  {
    obs::ScopedSpan span("exec/open");
    NATIX_RETURN_IF_ERROR(root_->Open());
  }
  bool has = false;
  {
    obs::ScopedSpan span("exec/first-next");
    Status st = root_->Next(&has);
    if (!st.ok()) {
      return AbortClose(root_.get(), *this, std::move(st));
    }
  }
  if (!has) {
    return AbortClose(root_.get(), *this,
                      Status::Internal("scalar plan produced no tuple"));
  }
  runtime::Value result = registers[result_reg_];
  {
    obs::ScopedSpan span("exec/close");
    NATIX_RETURN_IF_ERROR(root_->Close());
  }
  NATIX_RETURN_IF_ERROR(VerifyLedgerQuiescent());
  return result;
}

}  // namespace natix::qe
