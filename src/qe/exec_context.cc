#include "qe/exec_context.h"

#include "base/clock.h"
#include "obs/trace.h"

namespace natix::qe {

Status ExecutionContext::CheckCancellation() const {
  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("execution cancelled");
  }
  if (deadline_ns_ != 0 && MonotonicNanos() >= deadline_ns_) {
    return Status::DeadlineExceeded("execution deadline exceeded");
  }
  return Status::OK();
}

void ExecutionContext::SetContextNode(runtime::NodeRef node) {
  registers[cn_reg_] = runtime::Value::Node(node);
  // Default context position/size: a singleton context.
  registers[cp0_reg_] = runtime::Value::Number(1);
  registers[cs0_reg_] = runtime::Value::Number(1);
}

void ExecutionContext::SetVariable(const std::string& name,
                                   runtime::Value value) {
  variables[name] = std::move(value);
}

StatusOr<std::vector<runtime::NodeRef>> ExecutionContext::ExecuteNodes() {
  if (result_type_ != xpath::ExprType::kNodeSet) {
    return Status::InvalidArgument(
        "ExecuteNodes called on a non-node-set query");
  }
  obs::ScopedSpan exec_span("exec/nodes");
  std::vector<runtime::NodeRef> result;
  {
    obs::ScopedSpan span("exec/open");
    NATIX_RETURN_IF_ERROR(root_->Open());
  }
  bool has = false;
  {
    // The first Next is where pipeline-breaking operators do their
    // work (spooling, sorting); it gets its own span so startup cost
    // separates from the per-tuple drain.
    obs::ScopedSpan span("exec/first-next");
    Status st = root_->Next(&has);
    if (!st.ok()) {
      (void)root_->Close();
      return st;
    }
  }
  {
    obs::ScopedSpan span("exec/drain");
    uint64_t drained = 0;
    while (has) {
      // Cooperative cancellation: a request whose deadline expired (or
      // whose client went away) closes the whole pipeline — cascading
      // Close() down to the page scans — instead of finishing the drain.
      if (drained++ % kCancelCheckInterval == 0) {
        Status st = CheckCancellation();
        if (!st.ok()) {
          (void)root_->Close();
          return st;
        }
      }
      const runtime::Value& v = registers[result_reg_];
      if (v.kind() != runtime::ValueKind::kNode) {
        (void)root_->Close();
        return Status::Internal("node-set plan produced a non-node value");
      }
      result.push_back(v.AsNode());
      Status st = root_->Next(&has);
      if (!st.ok()) {
        (void)root_->Close();
        return st;
      }
    }
  }
  {
    obs::ScopedSpan span("exec/close");
    NATIX_RETURN_IF_ERROR(root_->Close());
  }
  return result;
}

StatusOr<runtime::Value> ExecutionContext::ExecuteValue() {
  if (result_type_ == xpath::ExprType::kNodeSet) {
    return Status::InvalidArgument(
        "ExecuteValue called on a node-set query");
  }
  obs::ScopedSpan exec_span("exec/value");
  // Scalar plans drain inside aggregate subscripts, so the per-tuple
  // check above never sees them; at least refuse to start work for a
  // request that is already over deadline or cancelled.
  NATIX_RETURN_IF_ERROR(CheckCancellation());
  {
    obs::ScopedSpan span("exec/open");
    NATIX_RETURN_IF_ERROR(root_->Open());
  }
  bool has = false;
  {
    obs::ScopedSpan span("exec/first-next");
    Status st = root_->Next(&has);
    if (!st.ok()) {
      (void)root_->Close();
      return st;
    }
  }
  if (!has) {
    (void)root_->Close();
    return Status::Internal("scalar plan produced no tuple");
  }
  runtime::Value result = registers[result_reg_];
  {
    obs::ScopedSpan span("exec/close");
    NATIX_RETURN_IF_ERROR(root_->Close());
  }
  return result;
}

}  // namespace natix::qe
