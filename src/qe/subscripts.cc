#include "qe/exec_context.h"
#include "qe/subscripts.h"

#include <cmath>
#include <limits>
#include <optional>

namespace natix::qe {

namespace {

using algebra::AggKind;
using runtime::NodeRef;
using runtime::Value;
using runtime::ValueKind;

}  // namespace

StatusOr<Value> RunNestedAggregate(NestedPlan* nested, ExecutionContext* state) {
  // Time the whole evaluation onto the NestedAgg node so the host
  // operator's exclusive time excludes subscript-driven subplans. A
  // top-level Aggregate routes its embedded plan onto its own node,
  // which the iterator NVI wrapper already times — no second timer.
  std::optional<obs::ScopedOpTimer> timer;
#if !defined(NATIX_OBS_DISABLED)
  if (nested->stats != nullptr && nested->stats->nested) {
    timer.emplace(nested->stats);
  }
#endif
  NATIX_OBS_COUNT(nested->stats, agg_evals, 1);
  NATIX_RETURN_IF_ERROR(nested->iter->Open());

  uint64_t count = 0;
  double sum = 0;
  double max = std::numeric_limits<double>::quiet_NaN();
  double min = std::numeric_limits<double>::quiet_NaN();
  bool exists = false;
  NodeRef first;
  bool have_first = false;

  while (true) {
    bool has = false;
    Status st = nested->iter->Next(&has);
    if (!st.ok()) {
      (void)nested->iter->Close();
      return st;
    }
    if (!has) break;
    NATIX_OBS_COUNT(nested->stats, agg_input, 1);
    const Value& value = state->registers[nested->input_reg];
    switch (nested->agg) {
      case AggKind::kCount:
        ++count;
        break;
      case AggKind::kSum: {
        auto n = runtime::ToNumber(value, state->eval_ctx);
        if (!n.ok()) {
          (void)nested->iter->Close();
          return n.status();
        }
        sum += *n;
        break;
      }
      case AggKind::kExists:
        // Smart aggregation (Sec. 5.2.5): one tuple decides the result;
        // the remaining input is not evaluated.
        exists = true;
        break;
      case AggKind::kMax:
      case AggKind::kMin: {
        auto n = runtime::ToNumber(value, state->eval_ctx);
        if (!n.ok()) {
          (void)nested->iter->Close();
          return n.status();
        }
        if (nested->agg == AggKind::kMax) {
          if (std::isnan(max) || *n > max) max = *n;
        } else {
          if (std::isnan(min) || *n < min) min = *n;
        }
        break;
      }
      case AggKind::kFirstString:
      case AggKind::kFirstName:
      case AggKind::kFirstLocalName: {
        if (value.kind() == ValueKind::kNode) {
          NodeRef node = value.AsNode();
          if (!have_first || node.order < first.order) {
            first = node;
            have_first = true;
          }
        }
        break;
      }
    }
    if (nested->agg == AggKind::kExists && exists) {
      // Smart aggregation: the remaining input is never produced.
      NATIX_OBS_COUNT(nested->stats, early_exits, 1);
      break;
    }
  }
  NATIX_RETURN_IF_ERROR(nested->iter->Close());

  switch (nested->agg) {
    case AggKind::kCount:
      return Value::Number(static_cast<double>(count));
    case AggKind::kSum:
      return Value::Number(sum);
    case AggKind::kExists:
      return Value::Boolean(exists);
    case AggKind::kMax:
      return Value::Number(max);
    case AggKind::kMin:
      return Value::Number(min);
    case AggKind::kFirstString: {
      if (!have_first) return Value::String(std::string());
      NATIX_ASSIGN_OR_RETURN(std::string s,
                             runtime::NodeStringValue(first,
                                                      state->eval_ctx));
      return Value::String(std::move(s));
    }
    case AggKind::kFirstName:
    case AggKind::kFirstLocalName: {
      if (!have_first) return Value::String(std::string());
      storage::NodeRecord record;
      NATIX_RETURN_IF_ERROR(
          state->eval_ctx.store->ReadNode(first.node_id(), &record));
      std::string name;
      if (record.name_id != storage::kInvalidNameId) {
        name = state->eval_ctx.store->names()->NameOf(record.name_id);
      }
      if (nested->agg == AggKind::kFirstLocalName) {
        auto colon = name.rfind(':');
        if (colon != std::string::npos) name = name.substr(colon + 1);
      }
      return Value::String(std::move(name));
    }
  }
  return Status::Internal("unknown aggregate");
}

StatusOr<Value> Subscript::Evaluate() {
  return vm_.Run(state_->registers, state_->eval_ctx, state_->variables,
                 nested_eval_, &state_->nvm_insns_retired);
}

StatusOr<bool> Subscript::EvaluateBool() {
  NATIX_ASSIGN_OR_RETURN(Value v, Evaluate());
  return runtime::ToBoolean(v, state_->eval_ctx);
}

}  // namespace natix::qe
