#ifndef NATIX_QE_EXEC_CONTEXT_H_
#define NATIX_QE_EXEC_CONTEXT_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "obs/stats.h"
#include "qe/iterator.h"
#include "qe/subscripts.h"
#include "runtime/conversions.h"
#include "runtime/register_file.h"
#include "runtime/value.h"
#include "xpath/ast.h"

namespace natix::qe {

namespace internal {
class CodegenImpl;
}  // namespace internal

class PlanTemplate;

/// The per-execution half of a compiled query: one iterator tree
/// instantiated from a PlanTemplate together with everything the tree
/// mutates while running — the plan-wide register file (the attribute
/// manager's memory, Sec. 5.1), the execution-context bindings (context
/// node, $variables), per-context caches, and the optional per-operator
/// stats collector.
///
/// Contexts are cheap relative to compilation (no parse / rewrite /
/// inference / verification — only the deterministic lowering pass) and
/// reusable: Execute* may be called any number of times, rebinding the
/// context node between calls. A context is single-threaded; concurrency
/// comes from instantiating one context per thread off a shared
/// template. Non-movable: iterators and NVM subscripts hold stable
/// pointers into it.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Binds the execution context's context node (the free cn of the
  /// paper's top-level map). Must be called before Execute for queries
  /// that reference the context.
  void SetContextNode(runtime::NodeRef node);

  /// Binds an XPath $variable.
  void SetVariable(const std::string& name, runtime::Value value);

  /// Runs a node-set query, returning the result nodes in plan order
  /// (set semantics: no duplicates). Call SortResultNodes for document
  /// order.
  StatusOr<std::vector<runtime::NodeRef>> ExecuteNodes();

  /// Runs a scalar query (boolean/number/string), returning the value of
  /// its single result tuple.
  StatusOr<runtime::Value> ExecuteValue();

  xpath::ExprType result_type() const { return result_type_; }

  /// The template this context was instantiated from (null for bare
  /// contexts built directly in operator unit tests).
  const PlanTemplate* plan() const { return template_; }

  /// Ablation knob (benchmarks, differential tests): when set, ordered
  /// evaluations sort the result even if inference proved the stream
  /// document-ordered — the pre-inference behavior.
  void set_force_result_sort(bool force) { force_result_sort_ = force; }
  bool force_result_sort() const { return force_result_sort_; }

  /// The per-operator stats collector (EXPLAIN ANALYZE), or null when
  /// the context was instantiated without stats collection. Counters
  /// accumulate across executions until QueryStats::Reset().
  obs::QueryStats* stats() { return stats_.get(); }
  const obs::QueryStats* stats() const { return stats_.get(); }

  // -- Cooperative cancellation (per-request serving deadlines) -----------

  /// Tuples drained between cancellation checks: cheap enough that a
  /// deadline can only overrun by one batch, coarse enough that the
  /// steady-clock read stays off the per-tuple path.
  static constexpr uint64_t kCancelCheckInterval = 32;

  /// Absolute steady-clock deadline (base/clock.h MonotonicNanos) after
  /// which ExecuteNodes aborts mid-drain with kDeadlineExceeded, closing
  /// the iterator pipeline (and its page scans) instead of finishing the
  /// drain. 0 disables the deadline. Sticky across executions until
  /// rebound — serving binds one per request.
  void set_deadline_ns(uint64_t abs_ns) { deadline_ns_ = abs_ns; }
  uint64_t deadline_ns() const { return deadline_ns_; }

  /// External cancel flag checked alongside the deadline (server
  /// shutdown, client disconnect); fires kCancelled. The flag must
  /// outlive the execution. Null disables.
  void set_cancel_flag(const std::atomic<bool>* flag) {
    cancel_flag_ = flag;
  }

  /// OK, or the kDeadlineExceeded / kCancelled status the current
  /// execution should abort with. Called by the drain loop every
  /// kCancelCheckInterval tuples and by scalar execution before Open.
  Status CheckCancellation() const;

  // -- Layer-4 runtime resource ledger ------------------------------------

  /// Runtime cross-check of the static Layer-4 resource claims
  /// (docs/STATIC-ANALYSIS.md): counts active storage cursors (page-pin
  /// holders) and live non-memo spool rows. Armed together with the
  /// property oracle when verification is enabled; the Ledger* helpers
  /// are single-branch no-ops otherwise.
  struct ResourceLedger {
    /// Cursors currently holding page pins between Next calls.
    int64_t cursors_active = 0;
    /// Rows currently materialized in group/full spools.
    int64_t spool_rows = 0;
    /// Lifetime activation count (diagnostics).
    uint64_t cursors_activated = 0;
  };

  void ArmResourceLedger() { ledger_armed_ = true; }
  bool ledger_armed() const { return ledger_armed_; }
  const ResourceLedger& ledger() const { return ledger_; }

  void LedgerCursorActivated() {
    if (!ledger_armed_) return;
    ++ledger_.cursors_active;
    ++ledger_.cursors_activated;
  }
  void LedgerCursorReleased() {
    if (ledger_armed_) --ledger_.cursors_active;
  }
  void LedgerSpoolGrew(size_t rows) {
    if (ledger_armed_) ledger_.spool_rows += static_cast<int64_t>(rows);
  }
  void LedgerSpoolDropped(size_t rows) {
    if (ledger_armed_) ledger_.spool_rows -= static_cast<int64_t>(rows);
  }

  /// After the root has been Closed, every cursor must be inactive and
  /// every non-memo spool empty — the runtime form of the pin-balance /
  /// spool-containment proof. kInternal naming the imbalance otherwise.
  Status VerifyLedgerQuiescent() const;

  // -- Mutable execution state, written by the iterators ------------------

  runtime::RegisterFile registers{0};
  runtime::EvalContext eval_ctx;
  std::unordered_map<std::string, runtime::Value> variables;
  /// Lazily built id() indexes: document root (packed) -> id token ->
  /// element node.
  std::unordered_map<uint64_t,
                     std::unordered_map<std::string, runtime::NodeRef>>
      id_indexes;
  /// Statistics for tests/benchmarks.
  uint64_t tuples_produced = 0;
  /// NVM instructions retired by subscript programs (successful runs
  /// only); accumulates across executions like tuples_produced.
  uint64_t nvm_insns_retired = 0;

 private:
  friend class internal::CodegenImpl;

  const PlanTemplate* template_ = nullptr;
  IteratorPtr root_;
  NestedTable nested_;
  std::unique_ptr<obs::QueryStats> stats_;
  runtime::RegisterId result_reg_ = 0;
  runtime::RegisterId cn_reg_ = 0;
  runtime::RegisterId cp0_reg_ = 0;
  runtime::RegisterId cs0_reg_ = 0;
  xpath::ExprType result_type_ = xpath::ExprType::kUnknown;
  bool force_result_sort_ = false;
  uint64_t deadline_ns_ = 0;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  bool ledger_armed_ = false;
  ResourceLedger ledger_;
};

}  // namespace natix::qe

#endif  // NATIX_QE_EXEC_CONTEXT_H_
