#ifndef NATIX_API_PLAN_CACHE_H_
#define NATIX_API_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "translate/translator.h"

namespace natix {

class PreparedQuery;

/// An LRU cache of prepared plans, keyed by the XPath text plus a
/// fingerprint of the translation strategy (two compilations of the
/// same text under different TranslatorOptions are different plans).
///
/// PreparedQuery is immutable and shareable, so a hit hands out the
/// same shared_ptr any number of times; evicted plans stay alive while
/// executions still pin them. Thread-safe behind one mutex — the
/// critical section is a hash lookup plus a list splice, never a
/// compilation, so contention is negligible next to the compile it
/// saves. Capacity 0 disables caching (every lookup misses).
///
/// The cache does not observe store mutations: the owner must Clear()
/// when documents are (re)loaded, since prepared plans bake in name
/// dictionary ids resolved at compile time.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cache key of one (query text, translation strategy) pair.
  static std::string MakeKey(std::string_view xpath,
                             const translate::TranslatorOptions& options);

  /// Returns the cached plan and refreshes its recency, or null on miss.
  /// Feeds the process-wide plan_cache_hits / plan_cache_misses metrics.
  std::shared_ptr<const PreparedQuery> Lookup(const std::string& key);

  /// Inserts (or refreshes) `plan` under `key`, evicting the least
  /// recently used entry when over capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedQuery> plan);

  /// Drops every entry (document loads invalidate all prepared plans).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  uint64_t hit_count() const;
  uint64_t miss_count() const;
  uint64_t eviction_count() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedQuery>>;

  mutable std::mutex mutex_;
  const size_t capacity_;
  /// Most recently used first.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace natix

#endif  // NATIX_API_PLAN_CACHE_H_
