#include "api/plan_cache.h"

#include "obs/lock_ledger.h"
#include "obs/metrics.h"

namespace natix {

std::string PlanCache::MakeKey(std::string_view xpath,
                               const translate::TranslatorOptions& options) {
  // The option fingerprint is one character per strategy switch,
  // separated from the text by a byte that cannot occur in XPath.
  std::string key;
  key.reserve(xpath.size() + 8);
  key += options.stacked_outer_paths ? '1' : '0';
  key += options.push_duplicate_elimination ? '1' : '0';
  key += options.memoize_inner_paths ? '1' : '0';
  key += options.split_expensive_predicates ? '1' : '0';
  key += options.simplify_plan ? '1' : '0';
  key += options.optimize_nvm ? '1' : '0';
  key += options.limit_pushdown ? '1' : '0';
  // The result cap is a value, not a switch: plans baked with different
  // bounds must not alias in the cache.
  if (options.result_limit > 0) {
    key += std::to_string(options.result_limit);
  }
  key += '\n';
  key += xpath;
  return key;
}

std::shared_ptr<const PreparedQuery> PlanCache::Lookup(
    const std::string& key) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    metrics.plan_cache_misses.Add();
    return nullptr;
  }
  ++hits_;
  metrics.plan_cache_hits.Add();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedQuery> plan) {
  if (capacity_ == 0) return;
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing thread prepared the same query first; keep the newer
    // plan and refresh recency.
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  index_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  return lru_.size();
}

uint64_t PlanCache::hit_count() const {
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  return hits_;
}

uint64_t PlanCache::miss_count() const {
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  return misses_;
}

uint64_t PlanCache::eviction_count() const {
  obs::LedgeredMutexLock lock(mutex_, obs::LockClass::kPlanCache);
  return evictions_;
}

}  // namespace natix
