#include "api/database.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/document_loader.h"

namespace natix {

namespace {

/// The minimum pool size under which even a single query thrashes: the
/// index root-to-leaf path plus record/extent pages held pinned across
/// nested iterators.
constexpr size_t kMinBufferPages = 16;

size_t DefaultShards() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 8);
}

}  // namespace

Status Database::Options::Validate() const {
  if (buffer_pages < kMinBufferPages) {
    return Status::InvalidArgument(
        "buffer_pages=" + std::to_string(buffer_pages) +
        " is below the minimum working set of " +
        std::to_string(kMinBufferPages) +
        " pages (index root-to-leaf path plus pinned record pages)");
  }
  const size_t shards = EffectiveShards();
  if (buffer_pages < 2 * shards) {
    return Status::InvalidArgument(
        "buffer_pages=" + std::to_string(buffer_pages) +
        " is too small for " + std::to_string(shards) +
        " buffer shards (need at least 2 pages per shard)");
  }
  return Status::OK();
}

size_t Database::Options::EffectiveShards() const {
  size_t shards = buffer_shards == 0 ? DefaultShards() : buffer_shards;
  // Auto-selection never renders a valid pool invalid: clamp so every
  // shard keeps at least 2 pages.
  if (buffer_shards == 0 && buffer_pages < 2 * shards) {
    shards = std::max<size_t>(1, buffer_pages / 2);
  }
  return shards;
}

namespace {

StatusOr<storage::NodeStore::Options> StoreOptions(
    const Database::Options& options) {
  NATIX_RETURN_IF_ERROR(options.Validate());
  storage::NodeStore::Options store_options;
  store_options.buffer_pages = options.buffer_pages;
  store_options.buffer_shards = options.EffectiveShards();
  return store_options;
}

}  // namespace

StatusOr<std::unique_ptr<Database>> Database::Create(
    const std::string& path, const Options& options) {
  NATIX_ASSIGN_OR_RETURN(storage::NodeStore::Options store_options,
                         StoreOptions(options));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::NodeStore> store,
                         storage::NodeStore::Create(path, store_options));
  return std::unique_ptr<Database>(new Database(std::move(store), options));
}

StatusOr<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                   const Options& options) {
  NATIX_ASSIGN_OR_RETURN(storage::NodeStore::Options store_options,
                         StoreOptions(options));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::NodeStore> store,
                         storage::NodeStore::Open(path, store_options));
  return std::unique_ptr<Database>(new Database(std::move(store), options));
}

StatusOr<std::unique_ptr<Database>> Database::CreateTemp(
    const Options& options) {
  NATIX_ASSIGN_OR_RETURN(storage::NodeStore::Options store_options,
                         StoreOptions(options));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::NodeStore> store,
                         storage::NodeStore::CreateTemp(store_options));
  return std::unique_ptr<Database>(new Database(std::move(store), options));
}

StatusOr<storage::DocumentInfo> Database::LoadDocument(
    std::string_view name, std::string_view xml_text) {
  // Any load can grow the name dictionary; cached plans resolved their
  // NodeTest name ids against the old dictionary state, so drop them.
  plan_cache_.Clear();
  return storage::LoadDocument(store_.get(), name, xml_text);
}

StatusOr<storage::DocumentInfo> Database::LoadDocumentFile(
    std::string_view name, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadDocument(name, buffer.str());
}

StatusOr<storage::StoredNode> Database::Root(std::string_view name) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(name));
  return storage::StoredNode(store_.get(), info.root);
}

StatusOr<std::shared_ptr<const PreparedQuery>> Database::Prepare(
    std::string_view xpath,
    const translate::TranslatorOptions& options) const {
  const std::string key = PlanCache::MakeKey(xpath, options);
  if (std::shared_ptr<const PreparedQuery> hit = plan_cache_.Lookup(key)) {
    return hit;
  }
  NATIX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                         PreparedQuery::Prepare(xpath, store_.get(), options));
  plan_cache_.Insert(key, prepared);
  return prepared;
}

StatusOr<std::unique_ptr<CompiledQuery>> Database::Compile(
    std::string_view xpath, const translate::TranslatorOptions& options,
    bool collect_stats) const {
  NATIX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                         Prepare(xpath, options));
  return CompiledQuery::FromPrepared(std::move(prepared), collect_stats);
}

StatusOr<std::vector<storage::StoredNode>> Database::QueryNodes(
    std::string_view document, std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateNodes(info.root);
}

StatusOr<std::string> Database::QueryString(std::string_view document,
                                            std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateString(info.root);
}

StatusOr<double> Database::QueryNumber(std::string_view document,
                                       std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateNumber(info.root);
}

StatusOr<bool> Database::QueryBoolean(std::string_view document,
                                      std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateBoolean(info.root);
}

Status Database::Flush() { return store_->Flush(); }

void Database::StartTrace() { obs::Tracer::Global().Start(); }

std::string Database::StopTrace() { return obs::Tracer::Global().StopJson(); }

std::string Database::MetricsSnapshot() {
  return obs::MetricsRegistry::Global().SnapshotJson();
}

void Database::SetSlowQueryThresholdNs(uint64_t ns) {
  obs::MetricsRegistry::Global().slow_log().set_threshold_ns(ns);
}

std::string Database::SlowQueryLogText() {
  return obs::MetricsRegistry::Global().slow_log().RenderText();
}

}  // namespace natix
