#include "api/database.h"

#include <fstream>
#include <sstream>

#include "base/xpath_number.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/conversions.h"
#include "storage/document_loader.h"

namespace natix {

namespace {

storage::NodeStore::Options StoreOptions(const Database::Options& options) {
  storage::NodeStore::Options store_options;
  store_options.buffer_pages = options.buffer_pages;
  return store_options;
}

}  // namespace

StatusOr<std::unique_ptr<Database>> Database::Create(
    const std::string& path, const Options& options) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::NodeStore> store,
                         storage::NodeStore::Create(path,
                                                    StoreOptions(options)));
  return std::unique_ptr<Database>(new Database(std::move(store)));
}

StatusOr<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                   const Options& options) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<storage::NodeStore> store,
                         storage::NodeStore::Open(path,
                                                  StoreOptions(options)));
  return std::unique_ptr<Database>(new Database(std::move(store)));
}

StatusOr<std::unique_ptr<Database>> Database::CreateTemp(
    const Options& options) {
  NATIX_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::NodeStore> store,
      storage::NodeStore::CreateTemp(StoreOptions(options)));
  return std::unique_ptr<Database>(new Database(std::move(store)));
}

StatusOr<storage::DocumentInfo> Database::LoadDocument(
    std::string_view name, std::string_view xml_text) {
  return storage::LoadDocument(store_.get(), name, xml_text);
}

StatusOr<storage::DocumentInfo> Database::LoadDocumentFile(
    std::string_view name, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadDocument(name, buffer.str());
}

StatusOr<storage::StoredNode> Database::Root(std::string_view name) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(name));
  return storage::StoredNode(store_.get(), info.root);
}

StatusOr<std::unique_ptr<CompiledQuery>> Database::Compile(
    std::string_view xpath, const translate::TranslatorOptions& options,
    bool collect_stats) const {
  return CompiledQuery::Compile(xpath, store_.get(), options,
                                collect_stats);
}

StatusOr<std::vector<storage::StoredNode>> Database::QueryNodes(
    std::string_view document, std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateNodes(info.root);
}

StatusOr<std::string> Database::QueryString(std::string_view document,
                                            std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateString(info.root);
}

StatusOr<double> Database::QueryNumber(std::string_view document,
                                       std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateNumber(info.root);
}

StatusOr<bool> Database::QueryBoolean(std::string_view document,
                                      std::string_view xpath) const {
  NATIX_ASSIGN_OR_RETURN(storage::DocumentInfo info,
                         store_->FindDocument(document));
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                         Compile(xpath));
  return query->EvaluateBoolean(info.root);
}

Status Database::Flush() { return store_->Flush(); }

void Database::StartTrace() { obs::Tracer::Global().Start(); }

std::string Database::StopTrace() { return obs::Tracer::Global().StopJson(); }

std::string Database::MetricsSnapshot() {
  return obs::MetricsRegistry::Global().SnapshotJson();
}

void Database::SetSlowQueryThresholdNs(uint64_t ns) {
  obs::MetricsRegistry::Global().slow_log().set_threshold_ns(ns);
}

std::string Database::SlowQueryLogText() {
  return obs::MetricsRegistry::Global().slow_log().RenderText();
}

}  // namespace natix
