#ifndef NATIX_API_QUERY_H_
#define NATIX_API_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "qe/plan.h"
#include "storage/node_store.h"
#include "storage/stored_node.h"
#include "translate/translator.h"

namespace natix {

/// Counters from the most recent evaluation of a compiled query.
struct ExecutionStats {
  /// Tuples produced by location-step (unnest-map) iterators.
  uint64_t step_tuples = 0;
  /// Pages faulted into the buffer pool during the evaluation.
  uint64_t page_faults = 0;
};

/// A compiled XPath query bound to a store: the product of the full
/// compiler pipeline of Sec. 5.1 (parse, normalize, semantic analysis,
/// rewrite, translation into algebra, code generation). Reusable across
/// context nodes; not thread-safe (it owns its register file).
class CompiledQuery {
 public:
  /// Compiles `xpath` for `store` with the given translation strategy.
  /// With `collect_stats` the plan carries per-operator counters
  /// (Stats/ExplainAnalyze); without it the query runs uninstrumented.
  static StatusOr<std::unique_ptr<CompiledQuery>> Compile(
      std::string_view xpath, const storage::NodeStore* store,
      const translate::TranslatorOptions& options =
          translate::TranslatorOptions::Improved(),
      bool collect_stats = false);

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  /// Binds an XPath $variable (atomic values only).
  void SetVariable(const std::string& name, runtime::Value value);

  /// The query's static result type.
  xpath::ExprType result_type() const { return plan_->result_type(); }

  /// Evaluates a node-set query from `context`. Results carry set
  /// semantics; with `document_order` they are sorted, otherwise they
  /// arrive in plan order.
  StatusOr<std::vector<storage::StoredNode>> EvaluateNodes(
      storage::NodeId context, bool document_order = true);

  /// Evaluates a scalar (boolean/number/string) query from `context`.
  StatusOr<runtime::Value> EvaluateValue(storage::NodeId context);

  /// Evaluates any query and converts the result to a string: scalar
  /// results via string(), node-set results via the string-value of the
  /// node first in document order ("" for an empty result).
  StatusOr<std::string> EvaluateString(storage::NodeId context);

  /// Evaluates any query and converts the result with number() / the
  /// node-set conversion rules.
  StatusOr<double> EvaluateNumber(storage::NodeId context);

  /// Evaluates any query and converts with boolean() (node sets:
  /// non-emptiness — evaluated without sorting, and scalar plans convert
  /// their single value).
  StatusOr<bool> EvaluateBoolean(storage::NodeId context);

  /// Multi-line rendering of the translated logical plan.
  const std::string& ExplainLogical() const {
    return plan_->logical_plan();
  }

  /// The physical execution plan: the iterator tree with the attribute
  /// manager's register assignments (aliases marked).
  const std::string& ExplainPhysical() const {
    return plan_->physical_plan();
  }

  /// One-line verdict of the static plan verifier (Layers 1-3): "VERIFIED
  /// (...)" when every check passed, or a note that verification was
  /// skipped. Violations never produce a CompiledQuery — Compile fails.
  const std::string& VerificationReport() const {
    return plan_->verification();
  }

  /// The logical plan annotated per operator with its inferred stream
  /// properties (cardinality, ordering, duplicate-freedom, node class).
  const std::string& ExplainProperties() const {
    return plan_->properties_plan();
  }

  /// JSON rendering of the annotated operator tree (natixq
  /// --explain-json).
  const std::string& ExplainJson() const {
    return plan_->properties_json();
  }

  /// The property-justified rewrites applied during translation, each
  /// with the inferred property that proved it sound.
  const algebra::RewriteLog& rewrites() const { return plan_->rewrites(); }

  /// Whether the plan's result stream is statically guaranteed to arrive
  /// in document order, letting Evaluate* skip the final sort.
  bool ResultDocumentOrdered() const {
    return plan_->result_document_ordered();
  }

  /// Ablation knob (benchmarks, differential tests): force the final
  /// result sort even when inference proved it redundant.
  void SetForceResultSort(bool force) {
    plan_->set_force_result_sort(force);
  }

  /// The XPath text this query was compiled from (slow-query log tag).
  const std::string& text() const { return text_; }

  /// Counters from the most recent Evaluate* call.
  const ExecutionStats& last_stats() const { return last_stats_; }

  /// The per-operator stats collector, or null when the query was
  /// compiled without `collect_stats`. Counters accumulate across
  /// Evaluate* calls until QueryStats::Reset().
  const obs::QueryStats* Stats() const { return plan_->stats(); }
  obs::QueryStats* MutableStats() { return plan_->stats(); }

  /// The EXPLAIN ANALYZE rendering of the accumulated per-operator
  /// counters ("" when compiled without stats collection).
  std::string ExplainAnalyze() const {
    return plan_->stats() == nullptr ? std::string()
                                     : plan_->stats()->RenderAnalyze();
  }

  qe::Plan* plan() { return plan_.get(); }

 private:
  CompiledQuery(const storage::NodeStore* store,
                std::unique_ptr<qe::Plan> plan)
      : store_(store), plan_(std::move(plan)) {}

  Status BindContext(storage::NodeId context);
  void BeginStats();
  void EndStats();
  /// Bind + execute + stats/registry accounting for node-set plans.
  StatusOr<std::vector<runtime::NodeRef>> RunNodes(storage::NodeId context);

  const storage::NodeStore* store_;
  std::unique_ptr<qe::Plan> plan_;
  std::string text_;
  ExecutionStats last_stats_;
  uint64_t tuples_baseline_ = 0;
  uint64_t exec_begin_ns_ = 0;
  obs::BufferCounters buffer_baseline_;
};

}  // namespace natix

#endif  // NATIX_API_QUERY_H_
