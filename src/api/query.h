#ifndef NATIX_API_QUERY_H_
#define NATIX_API_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/prepared_query.h"
#include "base/statusor.h"
#include "storage/node_store.h"
#include "storage/stored_node.h"
#include "translate/translator.h"

namespace natix {

/// A compiled XPath query bound to a store — the classic single-object
/// API, kept as a thin shim over the PreparedQuery / Execution split so
/// existing call sites compile unchanged.
///
/// A CompiledQuery is one PreparedQuery plus one Execution: reusable
/// across context nodes, but single-threaded (it owns its register
/// file). New code that shares plans across threads, or executes the
/// same query many times, should use Database::Prepare /
/// PreparedQuery::NewExecution directly — one prepared plan, one cheap
/// execution per thread — and gets the prepared-plan cache for free.
class CompiledQuery {
 public:
  /// Compiles `xpath` for `store` with the given translation strategy.
  /// With `collect_stats` the query carries per-operator counters
  /// (Stats/ExplainAnalyze); without it the query runs uninstrumented.
  static StatusOr<std::unique_ptr<CompiledQuery>> Compile(
      std::string_view xpath, const storage::NodeStore* store,
      const translate::TranslatorOptions& options =
          translate::TranslatorOptions::Improved(),
      bool collect_stats = false);

  /// Wraps an already-prepared plan (the Database::Compile plan-cache
  /// path) in a fresh execution.
  static StatusOr<std::unique_ptr<CompiledQuery>> FromPrepared(
      std::shared_ptr<const PreparedQuery> prepared,
      bool collect_stats = false);

  CompiledQuery(const CompiledQuery&) = delete;
  CompiledQuery& operator=(const CompiledQuery&) = delete;

  /// Binds an XPath $variable (atomic values only).
  void SetVariable(const std::string& name, runtime::Value value) {
    exec_->SetVariable(name, std::move(value));
  }

  /// The query's static result type.
  xpath::ExprType result_type() const { return prepared_->result_type(); }

  /// Evaluates a node-set query from `context`. Results carry set
  /// semantics; with `document_order` they are sorted, otherwise they
  /// arrive in plan order.
  StatusOr<std::vector<storage::StoredNode>> EvaluateNodes(
      storage::NodeId context, bool document_order = true) {
    return exec_->EvaluateNodes(context, document_order);
  }

  /// Evaluates a scalar (boolean/number/string) query from `context`.
  StatusOr<runtime::Value> EvaluateValue(storage::NodeId context) {
    return exec_->EvaluateValue(context);
  }

  /// Evaluates any query and converts the result to a string.
  StatusOr<std::string> EvaluateString(storage::NodeId context) {
    return exec_->EvaluateString(context);
  }

  /// Evaluates any query and converts the result with number().
  StatusOr<double> EvaluateNumber(storage::NodeId context) {
    return exec_->EvaluateNumber(context);
  }

  /// Evaluates any query and converts with boolean().
  StatusOr<bool> EvaluateBoolean(storage::NodeId context) {
    return exec_->EvaluateBoolean(context);
  }

  /// Multi-line rendering of the translated logical plan.
  const std::string& ExplainLogical() const {
    return prepared_->ExplainLogical();
  }

  /// The physical execution plan: the iterator tree with the attribute
  /// manager's register assignments (aliases marked).
  const std::string& ExplainPhysical() const {
    return prepared_->ExplainPhysical();
  }

  /// One-line verdict of the static plan verifier (Layers 1-3).
  const std::string& VerificationReport() const {
    return prepared_->VerificationReport();
  }

  /// The logical plan annotated per operator with its inferred stream
  /// properties (cardinality, ordering, duplicate-freedom, node class).
  const std::string& ExplainProperties() const {
    return prepared_->ExplainProperties();
  }

  /// JSON rendering of the annotated operator tree plus the fusability
  /// segmentation (natixq --explain-json).
  const std::string& ExplainJson() const { return prepared_->ExplainJson(); }

  /// The fusability segmentation as a human-readable listing (natixq
  /// --explain).
  const std::string& ExplainSegments() const {
    return prepared_->ExplainSegments();
  }

  /// The property-justified rewrites applied during translation.
  const algebra::RewriteLog& rewrites() const {
    return prepared_->rewrites();
  }

  /// Whether the plan's result stream is statically guaranteed to arrive
  /// in document order, letting Evaluate* skip the final sort.
  bool ResultDocumentOrdered() const {
    return prepared_->ResultDocumentOrdered();
  }

  /// Ablation knob (benchmarks, differential tests): force the final
  /// result sort even when inference proved it redundant.
  void SetForceResultSort(bool force) { exec_->SetForceResultSort(force); }

  /// The XPath text this query was compiled from (slow-query log tag).
  const std::string& text() const { return prepared_->text(); }

  /// Counters from the most recent Evaluate* call.
  const ExecutionStats& last_stats() const { return exec_->last_stats(); }

  /// The per-operator stats collector, or null when the query was
  /// compiled without `collect_stats`. Counters accumulate across
  /// Evaluate* calls until QueryStats::Reset().
  const obs::QueryStats* Stats() const { return exec_->Stats(); }
  obs::QueryStats* MutableStats() { return exec_->MutableStats(); }

  /// The EXPLAIN ANALYZE rendering of the accumulated per-operator
  /// counters ("" when compiled without stats collection).
  std::string ExplainAnalyze() const { return exec_->ExplainAnalyze(); }

  /// The shared immutable plan behind this query.
  const PreparedQuery& prepared() const { return *prepared_; }
  /// This query's private execution.
  PreparedQuery::Execution* execution() { return exec_.get(); }

 private:
  CompiledQuery(std::shared_ptr<const PreparedQuery> prepared,
                std::unique_ptr<PreparedQuery::Execution> exec)
      : prepared_(std::move(prepared)), exec_(std::move(exec)) {}

  std::shared_ptr<const PreparedQuery> prepared_;
  std::unique_ptr<PreparedQuery::Execution> exec_;
};

}  // namespace natix

#endif  // NATIX_API_QUERY_H_
