#include "api/prepared_query.h"

#include "base/xpath_number.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qe/codegen.h"
#include "runtime/conversions.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix {

namespace {

/// The compiler pipeline of Sec. 5.1. Each phase emits its own trace
/// span; this helper exists so the caller can time and account for the
/// whole pipeline once, success or failure.
StatusOr<std::unique_ptr<qe::PlanTemplate>> RunCompilePipeline(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options) {
  NATIX_ASSIGN_OR_RETURN(xpath::ExprPtr ast, xpath::ParseXPath(xpath));
  NATIX_RETURN_IF_ERROR(xpath::Analyze(ast.get()));
  xpath::FoldConstants(ast.get());
  xpath::Normalize(ast.get());
  NATIX_ASSIGN_OR_RETURN(translate::TranslationResult translation,
                         translate::Translate(*ast, options));
  return qe::Codegen::Prepare(std::move(translation), store);
}

/// Feeds the registry for a failed evaluation: deadline expiry and
/// cooperative cancellation are operational outcomes with their own
/// counters (serving telemetry), everything else is an exec error.
void CountExecutionFailure(const Status& status) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      metrics.deadline_exceeded.Add();
      break;
    case StatusCode::kCancelled:
      metrics.queries_cancelled.Add();
      break;
    default:
      metrics.exec_errors.Add();
      break;
  }
}

}  // namespace

StatusOr<std::shared_ptr<const PreparedQuery>> PreparedQuery::Prepare(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options) {
  obs::ScopedSpan span("compile", xpath);
  const uint64_t begin_ns = obs::MonotonicNowNs();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  auto plan = RunCompilePipeline(xpath, store, options);
  if (!plan.ok()) {
    metrics.compile_errors.Add();
    return plan.status();
  }
  metrics.compile_ns.Record(obs::MonotonicNowNs() - begin_ns);
  metrics.queries_compiled.Add();
  return std::shared_ptr<const PreparedQuery>(new PreparedQuery(
      store, std::move(plan).value(), std::string(xpath)));
}

StatusOr<std::unique_ptr<PreparedQuery::Execution>>
PreparedQuery::NewExecution(bool collect_stats) const {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<qe::ExecutionContext> context,
                         plan_->NewContext(collect_stats));
  return std::unique_ptr<Execution>(
      new Execution(shared_from_this(), std::move(context)));
}

void PreparedQuery::Execution::SetVariable(const std::string& name,
                                           runtime::Value value) {
  context_->SetVariable(name, std::move(value));
}

Status PreparedQuery::Execution::BindContext(storage::NodeId context) {
  storage::NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(context, &record));
  context_->SetContextNode(runtime::NodeRef::Make(context, record.order));
  BeginStats();
  return Status::OK();
}

void PreparedQuery::Execution::BeginStats() {
  tuples_baseline_ = context_->tuples_produced;
  nvm_baseline_ = context_->nvm_insns_retired;
  // Coherent per-query baseline: with concurrent executions over a
  // striped pool, relaxed multi-counter reads could tear.
  buffer_baseline_ = obs::SnapshotBufferCounters(store_->buffer_manager());
  exec_begin_ns_ = obs::MonotonicNowNs();
}

void PreparedQuery::Execution::EndStats() {
  last_stats_.step_tuples = context_->tuples_produced - tuples_baseline_;
  last_stats_.nvm_insns = context_->nvm_insns_retired - nvm_baseline_;
  obs::BufferCounters now =
      obs::SnapshotBufferCounters(store_->buffer_manager());
  last_stats_.page_faults = now.page_reads - buffer_baseline_.page_reads;
  if (obs::QueryStats* stats = context_->stats()) {
    // Query-level buffer deltas accumulate across evaluations alongside
    // the per-operator counters.
    stats->buffer() += obs::BufferCounters{
        now.page_reads - buffer_baseline_.page_reads,
        now.page_hits - buffer_baseline_.page_hits,
        now.page_writes - buffer_baseline_.page_writes,
        now.evictions - buffer_baseline_.evictions};
    stats->RecordExecution();
  }

  // Feed the process-wide registry (compiles away under NATIX_OBS=OFF).
  const uint64_t exec_ns = obs::MonotonicNowNs() - exec_begin_ns_;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.exec_ns.Record(exec_ns);
  metrics.pages_per_query.Record(last_stats_.page_faults);
  metrics.tuples_per_query.Record(last_stats_.step_tuples);
  metrics.nvm_insns_retired.Add(last_stats_.nvm_insns);
  metrics.queries_executed.Add();
  obs::SlowQueryLog& slow_log = metrics.slow_log();
  if (slow_log.ShouldLog(exec_ns)) {
    metrics.slow_queries.Add();
    obs::SlowQueryEntry entry;
    entry.xpath = prepared_->text();
    entry.exec_ns = exec_ns;
    entry.page_faults = last_stats_.page_faults;
    entry.tuples = last_stats_.step_tuples;
    entry.analyze = ExplainAnalyze();
    slow_log.Record(std::move(entry));
  }
}

StatusOr<std::vector<runtime::NodeRef>> PreparedQuery::Execution::RunNodes(
    storage::NodeId context) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  StatusOr<std::vector<runtime::NodeRef>> refs = context_->ExecuteNodes();
  if (!refs.ok()) {
    CountExecutionFailure(refs.status());
    return refs.status();
  }
  EndStats();
  return refs;
}

StatusOr<std::vector<storage::StoredNode>>
PreparedQuery::Execution::EvaluateNodes(storage::NodeId context,
                                        bool document_order) {
  NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                         RunNodes(context));
  // The sort is skipped when property inference proved the plan's result
  // stream arrives document-ordered already (the oracle asserts the claim
  // under NATIX_VERIFY_PLANS).
  if (document_order && (context_->force_result_sort() ||
                         !prepared_->ResultDocumentOrdered())) {
    obs::ScopedSpan span("exec/sort");
    qe::SortResultNodes(&refs);
  }
  std::vector<storage::StoredNode> nodes;
  nodes.reserve(refs.size());
  for (const runtime::NodeRef& ref : refs) {
    nodes.emplace_back(store_, ref.node_id());
  }
  return nodes;
}

StatusOr<runtime::Value> PreparedQuery::Execution::EvaluateValue(
    storage::NodeId context) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  StatusOr<runtime::Value> value = context_->ExecuteValue();
  if (!value.ok()) {
    CountExecutionFailure(value.status());
    return value.status();
  }
  EndStats();
  return value;
}

StatusOr<double> PreparedQuery::Execution::EvaluateNumber(
    storage::NodeId context) {
  xpath::ExprType type = prepared_->result_type();
  if (type == xpath::ExprType::kNodeSet ||
      type == xpath::ExprType::kString) {
    NATIX_ASSIGN_OR_RETURN(std::string s, EvaluateString(context));
    return StringToXPathNumber(s);
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToNumber(value, ctx);
}

StatusOr<bool> PreparedQuery::Execution::EvaluateBoolean(
    storage::NodeId context) {
  if (prepared_->result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           RunNodes(context));
    return !refs.empty();
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToBoolean(value, ctx);
}

StatusOr<std::string> PreparedQuery::Execution::EvaluateString(
    storage::NodeId context) {
  if (prepared_->result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           RunNodes(context));
    if (refs.empty()) return std::string();
    if (!prepared_->ResultDocumentOrdered()) qe::SortResultNodes(&refs);
    return store_->StringValue(refs.front().node_id());
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToStringValue(value, ctx);
}

}  // namespace natix
